package willump

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"willump/internal/pipeline"
	"willump/internal/value"
)

// optimizeBenchmark builds and optimizes one of the paper's benchmark
// pipelines at test scale.
func optimizeBenchmark(t *testing.T, name string, n int, opts ...Option) (*pipeline.Benchmark, *Optimized) {
	t.Helper()
	b, err := pipeline.ByName(name, pipeline.Config{Seed: 5, N: n})
	if err != nil {
		t.Fatalf("building %s: %v", name, err)
	}
	t.Cleanup(func() { b.Close() })
	o, _, err := Optimize(context.Background(), b.Pipeline, b.Train, b.Valid, opts...)
	if err != nil {
		t.Fatalf("optimizing %s: %v", name, err)
	}
	return b, o
}

// roundTrip saves o and loads it back through the public API.
func roundTrip(t *testing.T, o *Optimized, opts ...LoadOption) *Optimized {
	t.Helper()
	var buf bytes.Buffer
	if err := Save(o, &buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()), opts...)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return loaded
}

// assertSamePreds fails unless two prediction slices are bit-identical.
func assertSamePreds(t *testing.T, label string, want, got []float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d predictions vs %d", label, len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: prediction %d differs: %v vs %v", label, i, want[i], got[i])
		}
	}
}

// TestArtifactHeaderGolden pins the artifact version header: every artifact
// stream must begin with the exact bytes in the golden file, so old readers
// fail loudly on new formats and vice versa. Bumping the format version
// must update the golden file deliberately.
func TestArtifactHeaderGolden(t *testing.T) {
	_, o := optimizeBenchmark(t, "product", 400)
	var buf bytes.Buffer
	if err := Save(o, &buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "artifact_header.golden"))
	if err != nil {
		t.Fatalf("reading golden header: %v", err)
	}
	if !bytes.HasPrefix(buf.Bytes(), golden) {
		n := len(golden)
		if buf.Len() < n {
			n = buf.Len()
		}
		t.Fatalf("artifact header changed:\n got %q\nwant %q", buf.Bytes()[:n], golden)
	}
}

func TestLoadRejectsBadHeader(t *testing.T) {
	cases := []struct {
		name, doc, want string
	}{
		{"wrong magic", `{"magic":"not-willump","version":1}`, "not a willump artifact"},
		{"future version", fmt.Sprintf(`{"magic":"willump/artifact","version":%d}`, 999), "version 999 not supported"},
		{"not json", "PK\x03\x04 zip junk", "decoding"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Load(strings.NewReader(tc.doc))
			if err == nil {
				t.Fatalf("Load succeeded, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Load error = %q, want it to contain %q", err, tc.want)
			}
		})
	}
}

// TestArtifactRoundTripFamilies saves and reloads pipelines spanning all
// four model families and the benchmark operator families (TF-IDF chains,
// lookups, encoders, the non-compilable ratio op), asserting the loaded
// pipeline's PredictBatch and PredictPoint are bit-identical to the
// in-memory Optimized — with cascades and top-K where configured.
func TestArtifactRoundTripFamilies(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		bench string
		opts  []Option
	}{
		{"toxic", []Option{WithCascades(0.01), WithTopK(0, 0)}}, // logistic + cascade + top-K
		{"music", []Option{WithCascades(0.01)}},                 // GBDT classification + cascade
		{"credit", nil},                                         // GBDT regression + python (ratio) node
		{"price", nil},                                          // MLP regression
	}
	for _, tc := range cases {
		t.Run(tc.bench, func(t *testing.T) {
			b, o := optimizeBenchmark(t, tc.bench, 1000, tc.opts...)
			loaded := roundTrip(t, o)

			want, err := o.PredictBatch(ctx, b.Test.Inputs)
			if err != nil {
				t.Fatalf("in-memory PredictBatch: %v", err)
			}
			got, err := loaded.PredictBatch(ctx, b.Test.Inputs)
			if err != nil {
				t.Fatalf("loaded PredictBatch: %v", err)
			}
			assertSamePreds(t, "PredictBatch", want, got)

			for _, row := range []int{0, 7, 42} {
				in := b.Test.Row(row).Inputs
				wp, err := o.PredictPoint(ctx, in)
				if err != nil {
					t.Fatalf("in-memory PredictPoint(%d): %v", row, err)
				}
				gp, err := loaded.PredictPoint(ctx, in)
				if err != nil {
					t.Fatalf("loaded PredictPoint(%d): %v", row, err)
				}
				if wp != gp {
					t.Fatalf("PredictPoint(%d) differs: %v vs %v", row, wp, gp)
				}
			}

			if o.Cascade != nil && loaded.Cascade == nil {
				t.Error("cascade lost in round trip")
			}
			if loaded.Cascade != nil && loaded.Cascade.Threshold != o.Cascade.Threshold {
				t.Errorf("cascade threshold drifted: %v vs %v", loaded.Cascade.Threshold, o.Cascade.Threshold)
			}
			if o.Filter != nil {
				if loaded.Filter == nil {
					t.Fatal("top-K filter lost in round trip")
				}
				const k = 15
				wantK, err := o.TopK(ctx, b.Test.Inputs, k)
				if err != nil {
					t.Fatalf("in-memory TopK: %v", err)
				}
				gotK, err := loaded.TopK(ctx, b.Test.Inputs, k)
				if err != nil {
					t.Fatalf("loaded TopK: %v", err)
				}
				for i := range wantK {
					if wantK[i] != gotK[i] {
						t.Fatalf("TopK index %d differs: %d vs %d", i, wantK[i], gotK[i])
					}
				}
			}
		})
	}
}

// TestArtifactFileRoundTrip exercises SaveFile/LoadFile on disk.
func TestArtifactFileRoundTrip(t *testing.T) {
	ctx := context.Background()
	b, o := optimizeBenchmark(t, "product", 600, WithCascades(0.01), WithFeatureCache(1024))
	path := filepath.Join(t.TempDir(), "product.willump")
	if err := SaveFile(o, path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	// Deployment processes often run as a different user than training;
	// artifacts must not keep CreateTemp's owner-only permissions.
	if info, err := os.Stat(path); err != nil {
		t.Fatal(err)
	} else if perm := info.Mode().Perm(); perm != 0o644 {
		t.Errorf("artifact permissions = %o, want 644", perm)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	want, err := o.PredictBatch(ctx, b.Test.Inputs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.PredictBatch(ctx, b.Test.Inputs)
	if err != nil {
		t.Fatal(err)
	}
	assertSamePreds(t, "PredictBatch", want, got)
}

// TestServeLoadedArtifact proves the deployment path the willump-serve
// binary uses: a loaded artifact hosted behind the HTTP serving frontend
// returns the same predictions the training process computed in memory.
func TestServeLoadedArtifact(t *testing.T) {
	ctx := context.Background()
	b, o := optimizeBenchmark(t, "toxic", 800, WithCascades(0.01))
	loaded := roundTrip(t, o)

	server := Serve(loaded, ServeOptions{})
	url, err := server.Start()
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer server.Close()

	rows := make([]int, 64)
	for i := range rows {
		rows[i] = i
	}
	sub := b.Test.Gather(rows)
	want, err := o.PredictBatch(ctx, sub.Inputs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewClient(url).Predict(ctx, sub.Inputs)
	if err != nil {
		t.Fatalf("Predict over HTTP: %v", err)
	}
	assertSamePreds(t, "HTTP predictions", want, got)
}

// scaleOp is a custom user operator with serializable state, exercising the
// RegisterOp extension hook.
type scaleOp struct {
	Factor float64 `json:"factor"`
}

func (s *scaleOp) Name() string      { return "test_scale" }
func (s *scaleOp) Compilable() bool  { return true }
func (s *scaleOp) Commutative() bool { return false }
func (s *scaleOp) Apply(ins []value.Value) (value.Value, error) {
	out := make([]float64, len(ins[0].Floats))
	for i, v := range ins[0].Floats {
		out[i] = v * s.Factor
	}
	return value.NewFloats(out), nil
}
func (s *scaleOp) ApplyBoxed(ins []any) (any, error) {
	return ins[0].(float64) * s.Factor, nil
}
func (s *scaleOp) MarshalState() ([]byte, error)     { return json.Marshal(s) }
func (s *scaleOp) UnmarshalState(state []byte) error { return json.Unmarshal(state, s) }

var registerScaleOp = sync.OnceFunc(func() {
	RegisterOp("test_scale", func() Op { return &scaleOp{} })
})

func TestArtifactCustomRegisteredOp(t *testing.T) {
	registerScaleOp()
	ctx := context.Background()
	pipe, err := NewPipeline().
		Input("x").
		Node("scaled", &scaleOp{Factor: 2.5}, "x").
		Node("stats", NumericStats(), "scaled").
		Model(NewLogistic(LinearConfig{Epochs: 3, Seed: 1})).
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	train := twoColumnData(64)
	o, _, err := Optimize(ctx, pipe, train, Dataset{})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	loaded := roundTrip(t, o)
	want, err := o.PredictBatch(ctx, train.Inputs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.PredictBatch(ctx, train.Inputs)
	if err != nil {
		t.Fatal(err)
	}
	assertSamePreds(t, "custom-op PredictBatch", want, got)
}

// unserializableOp has no registration, so Save must refuse it with a
// pointer at RegisterOp.
type unserializableOp struct{}

func (unserializableOp) Name() string                                 { return "mystery" }
func (unserializableOp) Compilable() bool                             { return true }
func (unserializableOp) Commutative() bool                            { return false }
func (unserializableOp) Apply(ins []value.Value) (value.Value, error) { return ins[0], nil }
func (unserializableOp) ApplyBoxed(ins []any) (any, error)            { return ins[0], nil }

func TestSaveRejectsUnregisteredOp(t *testing.T) {
	ctx := context.Background()
	pipe, err := NewPipeline().
		Input("x").
		Node("m", unserializableOp{}, "x").
		Node("stats", NumericStats(), "m").
		Model(NewLogistic(LinearConfig{Epochs: 2})).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	o, _, err := Optimize(ctx, pipe, twoColumnData(32), Dataset{})
	if err != nil {
		t.Fatal(err)
	}
	err = Save(o, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "RegisterOp") {
		t.Fatalf("Save = %v, want unregistered-op error mentioning RegisterOp", err)
	}
}

// remoteStub is a Table that cannot be inlined into an artifact, standing
// in for a remote feature store.
type remoteStub struct{ rows map[int64][]float64 }

func (r *remoteStub) Dim() int { return 2 }
func (r *remoteStub) LookupBatch(keys []int64) ([][]float64, error) {
	out := make([][]float64, len(keys))
	for i, k := range keys {
		out[i] = r.rows[k]
	}
	return out, nil
}
func (r *remoteStub) Requests() int64 { return 0 }

func TestLoadBindsExternalTables(t *testing.T) {
	ctx := context.Background()
	rows := map[int64][]float64{}
	for k := int64(0); k < 64; k++ {
		rows[k] = []float64{float64(k%7) - 3, float64(k % 5)}
	}
	table := &remoteStub{rows: rows}
	pipe, err := NewPipeline().
		Input("id").
		Node("features", Lookup("users", table), "id").
		Model(NewLogistic(LinearConfig{Epochs: 3, Seed: 1})).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]int64, 128)
	ys := make([]float64, 128)
	for i := range ids {
		ids[i] = int64(i % 64)
		if rows[ids[i]][0] > 0 {
			ys[i] = 1
		}
	}
	train := Dataset{Inputs: Inputs{"id": Ints(ids)}, Y: ys}
	o, _, err := Optimize(ctx, pipe, train, Dataset{})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := Save(o, &buf); err != nil {
		t.Fatalf("Save: %v", err)
	}

	// Loading without a binding must fail, naming the missing table.
	_, err = Load(bytes.NewReader(buf.Bytes()))
	if err == nil || !strings.Contains(err.Error(), `"users"`) {
		t.Fatalf("Load without binding = %v, want missing-table error naming \"users\"", err)
	}

	loaded, err := Load(bytes.NewReader(buf.Bytes()), WithTableBinding("users", table))
	if err != nil {
		t.Fatalf("Load with binding: %v", err)
	}
	want, err := o.PredictBatch(ctx, train.Inputs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.PredictBatch(ctx, train.Inputs)
	if err != nil {
		t.Fatal(err)
	}
	assertSamePreds(t, "rebound-table PredictBatch", want, got)
}

// TestOptimizeDoesNotMutateCallerModel pins the train-a-Fresh-clone fix:
// the caller's model stays untrained, and optimizing the same pipeline
// twice yields identical results.
func TestOptimizeDoesNotMutateCallerModel(t *testing.T) {
	ctx := context.Background()
	m := NewLogistic(LinearConfig{Epochs: 3, Seed: 1})
	pipe, err := NewPipeline().
		Input("x").
		Node("stats", NumericStats(), "x").
		Model(m).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	train := twoColumnData(64)
	o1, _, err := Optimize(ctx, pipe, train, Dataset{})
	if err != nil {
		t.Fatalf("first Optimize: %v", err)
	}
	if m.NumFeatures() != 0 {
		t.Fatalf("caller's model was trained in place (NumFeatures = %d)", m.NumFeatures())
	}
	o2, _, err := Optimize(ctx, pipe, train, Dataset{})
	if err != nil {
		t.Fatalf("second Optimize: %v", err)
	}
	p1, err := o1.PredictBatch(ctx, train.Inputs)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := o2.PredictBatch(ctx, train.Inputs)
	if err != nil {
		t.Fatal(err)
	}
	assertSamePreds(t, "repeated Optimize", p1, p2)
}

func TestOptimizeValidatesDatasets(t *testing.T) {
	ctx := context.Background()
	pipe := buildSlowPipeline(t, 0)
	ragged := Dataset{
		Inputs: Inputs{
			"x": Floats([]float64{1, 2, 3}),
			"y": Floats([]float64{1, 2}),
		},
		Y: []float64{0, 1, 0},
	}
	_, _, err := Optimize(ctx, pipe, ragged, Dataset{})
	if err == nil || !strings.HasPrefix(err.Error(), "willump:") {
		t.Fatalf("Optimize(ragged) = %v, want willump:-prefixed error", err)
	}
	if !strings.Contains(err.Error(), "rows") {
		t.Errorf("error %q does not describe the column mismatch", err)
	}

	mislabeled := Dataset{
		Inputs: Inputs{"x": Floats([]float64{1, 2, 3})},
		Y:      []float64{0, 1},
	}
	_, _, err = Optimize(ctx, pipe, mislabeled, Dataset{})
	if err == nil || !strings.Contains(err.Error(), "labels") {
		t.Fatalf("Optimize(mislabeled) = %v, want label-mismatch error", err)
	}

	// Ragged validation sets are rejected too.
	good := twoColumnData(16)
	_, _, err = Optimize(ctx, pipe, good, ragged)
	if err == nil || !strings.Contains(err.Error(), "validation") {
		t.Fatalf("Optimize(good, ragged valid) = %v, want validation-dataset error", err)
	}
}

func TestWithWorkersClampsNegative(t *testing.T) {
	got := resolveOptions(WithWorkers(-4))
	if got.Workers != 0 {
		t.Errorf("WithWorkers(-4) resolved to %d workers, want 0", got.Workers)
	}
}
