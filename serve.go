package willump

import (
	"context"
	"net/http"
	"time"

	"willump/internal/serving"
)

// Predictor is the black box a serving frontend hosts: a context-aware batch
// prediction function. Adapt an *Optimized pipeline with
// PredictorFunc(o.BatchPredictor()).
type Predictor = serving.Predictor

// PredictorFunc adapts a function to the Predictor interface.
type PredictorFunc = serving.PredictorFunc

// Registry hosts many named, versioned models behind one serving frontend.
// Deploy atomically swaps a model's active version while the old version's
// batcher drains its in-flight work (zero-downtime hot swap); every
// deployed model gets its own bounded request queue, adaptive batcher, and
// serving telemetry.
type Registry = serving.Registry

// ModelInfo describes one deployed model (GET /v1/models).
type ModelInfo = serving.ModelInfo

// ModelStats is a snapshot of one model's serving telemetry
// (GET /v1/models/{name}/stats): request counts, rejections, QPS, latency
// quantiles, cascade hit rate.
type ModelStats = serving.ModelStats

// RequestTrace is one retained per-request trace (GET /v1/traces):
// head-sampled requests carry their stage spans, tail-sampled slow or
// failed requests carry totals only.
type RequestTrace = serving.RequestTrace

// TraceSpan is one timed stage within a RequestTrace (queue wait, batch
// assembly, fused weld steps, cache lookup/fill, cascade small/resume,
// model scoring).
type TraceSpan = serving.TraceSpan

// SlowQuery is one retained slow or failed request on the per-model stats
// recent-slow list.
type SlowQuery = serving.SlowQuery

// Server is the HTTP serving frontend over a model registry: versioned
// model routes (/v1/models/{name}/predict, /topk, /stats), the legacy
// /predict route against the default model, request queueing with
// bounded-queue admission control (HTTP 429 on overload), adaptive
// batching, and graceful context-based shutdown (Shutdown drains in-flight
// batches and rejects new requests).
type Server = serving.Server

// Client is the RPC client for a serving frontend; Predict/PredictModel/
// TopK take a context whose cancellation propagates to the server.
type Client = serving.Client

// ClientOption configures a Client at construction (HTTP timeout, shared
// *http.Client).
type ClientOption = serving.ClientOption

// ServeOptions configures a serving frontend: batch bounds, batching
// timeout, per-model queue depth (admission control), prediction cache.
type ServeOptions = serving.Options

// ErrOverloaded is returned (wrapped) by Client calls rejected with HTTP
// 429: the model's bounded request queue was full, or its SLO admission
// controller predicted the request could not finish in time. It is
// retryable — back off and resend. Test with errors.Is(err,
// willump.ErrOverloaded); errors.As with *OverloadedError additionally
// yields the server's suggested backoff.
var ErrOverloaded = serving.ErrOverloaded

// OverloadedError is the typed form of an HTTP 429 rejection, wrapping
// ErrOverloaded and carrying the server's Retry-After suggestion (the
// admission controller's queue drain forecast) so callers can back off
// intelligently. Retrieve with errors.As.
type OverloadedError = serving.OverloadedError

// PredictResult is the full outcome of one Client prediction RPC:
// predictions plus the server's brownout degradation marker ("small-only",
// "budget", "cache"; empty at full fidelity).
type PredictResult = serving.PredictResult

// ErrModelNotFound is returned (wrapped) by Client calls naming a model the
// server does not host. Test with errors.Is(err, willump.ErrModelNotFound).
var ErrModelNotFound = serving.ErrModelNotFound

// NewRegistry returns an empty model registry using default serving
// options; NewRegistryWithOptions tunes them. Deploy models, then host the
// registry with ServeRegistry.
func NewRegistry() *Registry {
	return serving.NewRegistry(serving.Options{})
}

// NewRegistryWithOptions returns an empty model registry whose deployed
// models use the given serving options (batch bounds, queue depth, cache).
func NewRegistryWithOptions(opts ServeOptions) *Registry {
	return serving.NewRegistry(opts)
}

// ServeRegistry hosts a registry's models behind a new serving frontend
// (not yet started). The server owns the registry's lifecycle: its
// Shutdown/Close drains and closes the registry.
func ServeRegistry(reg *Registry) *Server {
	return serving.NewRegistryServer(reg)
}

// NewPredictorServer wraps a single predictor with the serving frontend,
// deploying it as the default model of a fresh registry, and reports
// deployment failures as errors. Call Start to listen and Shutdown (or
// Close) to drain and stop.
func NewPredictorServer(p Predictor, opts ServeOptions) (*Server, error) {
	return serving.NewPredictorServer(p, opts)
}

// NewServer wraps a single predictor with the serving frontend, deploying
// it as the default model of a fresh registry.
//
// Deprecated: NewServer panics when the default model cannot deploy (nil
// predictor, or a prediction cache without key columns). Use
// NewPredictorServer, which returns the error instead.
func NewServer(p Predictor, opts ServeOptions) *Server {
	return serving.NewServer(p, opts)
}

// Serve hosts an optimized pipeline behind a new serving frontend (not yet
// started), deployed as the default model — so the legacy /predict route,
// per-request options, and /topk (when the pipeline was optimized for
// top-K) all work against it.
func Serve(o *Optimized, opts ServeOptions) *Server {
	reg := serving.NewRegistry(opts)
	if err := reg.Deploy(serving.DefaultModelName, "v1", o); err != nil {
		// Deploy only fails on a nil pipeline or malformed name; surface the
		// nil-pipeline misuse the same way a nil predictor always has.
		reg.Close(context.Background()) //nolint:errcheck
		panic("willump: Serve called with a nil optimized pipeline")
	}
	return serving.NewRegistryServer(reg)
}

// NewClient returns a client for the serving frontend at base URL.
// Options configure the HTTP timeout or supply a shared *http.Client.
func NewClient(base string, opts ...ClientOption) *Client {
	return serving.NewClient(base, opts...)
}

// WithHTTPTimeout sets a Client's end-to-end HTTP timeout (default 30s).
func WithHTTPTimeout(d time.Duration) ClientOption { return serving.WithHTTPTimeout(d) }

// WithHTTPClient supplies the Client's underlying *http.Client verbatim,
// for shared connection pools and custom transports.
func WithHTTPClient(h *http.Client) ClientOption { return serving.WithHTTPClient(h) }
