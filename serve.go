package willump

import "willump/internal/serving"

// Predictor is the black box a serving frontend hosts: a context-aware batch
// prediction function. An *Optimized pipeline's PredictBatch method satisfies
// it via PredictorFunc.
type Predictor = serving.Predictor

// PredictorFunc adapts a function to the Predictor interface.
type PredictorFunc = serving.PredictorFunc

// Server is the Clipper-like HTTP serving frontend: request queueing,
// adaptive batching, optional end-to-end prediction caching, and graceful
// context-based shutdown (Shutdown drains in-flight batches and rejects new
// requests).
type Server = serving.Server

// Client is the RPC client for a serving frontend; Predict takes a context
// whose cancellation propagates to the server.
type Client = serving.Client

// ServeOptions configures a serving frontend (batch bounds, batching
// timeout, prediction cache).
type ServeOptions = serving.Options

// NewServer wraps a predictor with the serving frontend. Call Start to
// listen and Shutdown (or Close) to drain and stop.
func NewServer(p Predictor, opts ServeOptions) *Server {
	return serving.NewServer(p, opts)
}

// Serve hosts an optimized pipeline's batch-prediction path behind a new
// serving frontend (not yet started).
func Serve(o *Optimized, opts ServeOptions) *Server {
	return serving.NewServer(PredictorFunc(o.PredictBatch), opts)
}

// NewClient returns a client for the serving frontend at base URL.
func NewClient(base string) *Client {
	return serving.NewClient(base)
}
