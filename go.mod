module willump

go 1.24
