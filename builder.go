package willump

import (
	"fmt"

	"willump/internal/core"
	"willump/internal/graph"
)

// PipelineBuilder assembles a Pipeline fluently: declare raw inputs, add
// named transformation nodes wired by name, attach a model, and Build.
// Errors (duplicate names, unknown references, missing model) accumulate and
// are reported by Build, so call chains stay unbroken:
//
//	pipe, err := willump.NewPipeline().
//		Input("user").
//		Node("uf", userFeaturesOp, "user").
//		Model(m).
//		Build()
//
// Unless Output is called, the last node added is the pipeline's output
// (the feature vector handed to the model).
type PipelineBuilder struct {
	gb     *graph.Builder
	ids    map[string]graph.NodeID
	model  Model
	output string
	last   string
	errs   []error
}

// NewPipeline returns an empty pipeline builder.
func NewPipeline() *PipelineBuilder {
	return &PipelineBuilder{gb: graph.NewBuilder(), ids: make(map[string]graph.NodeID)}
}

func (b *PipelineBuilder) errf(format string, args ...any) *PipelineBuilder {
	b.errs = append(b.errs, fmt.Errorf(format, args...))
	return b
}

// Input declares a raw input column with the given name.
func (b *PipelineBuilder) Input(name string) *PipelineBuilder {
	if name == "" {
		return b.errf("willump: empty input name")
	}
	if _, dup := b.ids[name]; dup {
		return b.errf("willump: duplicate node name %q", name)
	}
	b.ids[name] = b.gb.Input(name)
	return b
}

// Node adds a transformation node named name, applying op to the named
// inputs (raw inputs or earlier nodes).
func (b *PipelineBuilder) Node(name string, op Op, inputs ...string) *PipelineBuilder {
	if name == "" {
		return b.errf("willump: empty node name")
	}
	if op == nil {
		return b.errf("willump: node %q has a nil op", name)
	}
	if _, dup := b.ids[name]; dup {
		return b.errf("willump: duplicate node name %q", name)
	}
	ins := make([]graph.NodeID, len(inputs))
	for i, in := range inputs {
		id, ok := b.ids[in]
		if !ok {
			return b.errf("willump: node %q reads unknown input %q", name, in)
		}
		ins[i] = id
	}
	b.ids[name] = b.gb.Add(name, op, ins...)
	b.last = name
	return b
}

// Output marks the named node as the pipeline's output (the feature vector
// fed to the model). Without it, the last node added is the output.
func (b *PipelineBuilder) Output(name string) *PipelineBuilder {
	if _, ok := b.ids[name]; !ok {
		return b.errf("willump: output references unknown node %q", name)
	}
	b.output = name
	return b
}

// Model attaches the model executed on the pipeline's feature vector.
func (b *PipelineBuilder) Model(m Model) *PipelineBuilder {
	if m == nil {
		return b.errf("willump: nil model")
	}
	b.model = m
	return b
}

// Build validates the accumulated pipeline and returns it. The first
// construction error encountered (in call order) is returned.
func (b *PipelineBuilder) Build() (*Pipeline, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	if b.model == nil {
		return nil, fmt.Errorf("willump: pipeline has no model; call Model before Build")
	}
	out := b.output
	if out == "" {
		out = b.last
	}
	if out == "" {
		return nil, fmt.Errorf("willump: pipeline has no transformation nodes")
	}
	b.gb.SetOutput(b.ids[out])
	g, err := b.gb.Build()
	if err != nil {
		return nil, err
	}
	return &core.Pipeline{Graph: g, Model: b.model}, nil
}
