package willump

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"willump/internal/value"
)

// slowOp is an identity transform over a float column that burns wall-clock
// time, so tests can cancel a context while a batch is in flight.
type slowOp struct{ d time.Duration }

func (s slowOp) Name() string      { return "slow" }
func (s slowOp) Compilable() bool  { return true }
func (s slowOp) Commutative() bool { return false }
func (s slowOp) Apply(ins []value.Value) (value.Value, error) {
	time.Sleep(s.d)
	return ins[0], nil
}
func (s slowOp) ApplyBoxed(ins []any) (any, error) {
	return []float64{ins[0].(float64)}, nil
}

// twoColumnData builds a tiny labeled dataset over one float input.
func twoColumnData(n int) Dataset {
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i%7) - 3
		if xs[i] > 0 {
			ys[i] = 1
		}
	}
	return Dataset{Inputs: Inputs{"x": Floats(xs)}, Y: ys}
}

func buildSlowPipeline(t *testing.T, d time.Duration) *Pipeline {
	t.Helper()
	pipe, err := NewPipeline().
		Input("x").
		Node("slow1", slowOp{d: d}, "x").
		Node("slow2", slowOp{d: d}, "slow1").
		Model(NewLogistic(LinearConfig{Epochs: 2, Seed: 1})).
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return pipe
}

func TestBuilderRoundTrip(t *testing.T) {
	pipe := buildSlowPipeline(t, 0)
	train := twoColumnData(64)
	o, rep, err := Optimize(context.Background(), pipe, train, Dataset{})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if rep.NumIFVs != 1 {
		t.Errorf("NumIFVs = %d, want 1", rep.NumIFVs)
	}
	preds, err := o.PredictBatch(context.Background(), train.Inputs)
	if err != nil {
		t.Fatalf("PredictBatch: %v", err)
	}
	if len(preds) != train.Len() {
		t.Errorf("got %d predictions, want %d", len(preds), train.Len())
	}
	p, err := o.PredictPoint(context.Background(), Inputs{"x": Floats([]float64{2})})
	if err != nil {
		t.Fatalf("PredictPoint: %v", err)
	}
	if p < 0 || p > 1 {
		t.Errorf("PredictPoint = %v, want a probability", p)
	}
}

func TestBuilderErrors(t *testing.T) {
	m := NewLogistic(LinearConfig{})
	cases := []struct {
		name string
		b    *PipelineBuilder
		want string
	}{
		{
			"duplicate node name",
			NewPipeline().Input("x").Node("f", slowOp{}, "x").Node("f", slowOp{}, "x").Model(m),
			"duplicate node name",
		},
		{
			"duplicate input name",
			NewPipeline().Input("x").Input("x").Model(m),
			"duplicate node name",
		},
		{
			"unknown input reference",
			NewPipeline().Input("x").Node("f", slowOp{}, "y").Model(m),
			"unknown input",
		},
		{
			"missing model",
			NewPipeline().Input("x").Node("f", slowOp{}, "x"),
			"no model",
		},
		{
			"nil model",
			NewPipeline().Input("x").Node("f", slowOp{}, "x").Model(nil),
			"nil model",
		},
		{
			"nil op",
			NewPipeline().Input("x").Node("f", nil, "x").Model(m),
			"nil op",
		},
		{
			"no nodes",
			NewPipeline().Input("x").Model(m),
			"no transformation nodes",
		},
		{
			"unknown output",
			NewPipeline().Input("x").Node("f", slowOp{}, "x").Output("g").Model(m),
			"unknown node",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := tc.b.Build()
			if err == nil {
				t.Fatalf("Build succeeded (%+v), want error containing %q", p, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Build error = %q, want it to contain %q", err, tc.want)
			}
		})
	}
}

func TestBuilderExplicitOutput(t *testing.T) {
	pipe, err := NewPipeline().
		Input("x").
		Node("a", slowOp{}, "x").
		Node("b", slowOp{}, "a").
		Output("a"). // b would be the default; override back to a
		Model(NewLogistic(LinearConfig{})).
		Build()
	if err == nil {
		// Node b no longer reaches the output, which the graph rejects: that
		// is the correct behavior for a dead node.
		t.Fatalf("Build = %+v, want unreachable-node error", pipe)
	}
	if !strings.Contains(err.Error(), "does not reach the output") {
		t.Errorf("Build error = %q, want unreachable-node error", err)
	}
}

func TestOptionDefaultsMatchPaperConstants(t *testing.T) {
	got := resolveOptions()
	if got.AccuracyTarget != 0.001 {
		t.Errorf("default AccuracyTarget = %v, want 0.001", got.AccuracyTarget)
	}
	if got.Gamma != 0.25 {
		t.Errorf("default Gamma = %v, want 0.25", got.Gamma)
	}
	if got.CK != 10 {
		t.Errorf("default CK = %v, want 10", got.CK)
	}
	if got.MinSubsetFrac != 0.05 {
		t.Errorf("default MinSubsetFrac = %v, want 0.05", got.MinSubsetFrac)
	}
	if got.Cascades || got.TopK || got.FeatureCache || got.Workers != 0 {
		t.Errorf("optimizations enabled by default: %+v", got)
	}

	// Zero-valued option arguments keep the paper defaults.
	got = resolveOptions(WithCascades(0), WithTopK(0, 0))
	if !got.Cascades || !got.TopK {
		t.Errorf("WithCascades/WithTopK did not enable their optimizations: %+v", got)
	}
	if got.AccuracyTarget != 0.001 || got.CK != 10 || got.MinSubsetFrac != 0.05 {
		t.Errorf("zero-valued options overrode paper defaults: %+v", got)
	}

	// Explicit arguments override.
	got = resolveOptions(WithCascades(0.01), WithGamma(0.5), WithTopK(20, 0.1),
		WithFeatureCache(128), WithWorkers(4))
	if got.AccuracyTarget != 0.01 || got.Gamma != 0.5 || got.CK != 20 ||
		got.MinSubsetFrac != 0.1 {
		t.Errorf("explicit options not applied: %+v", got)
	}
	if !got.FeatureCache || got.FeatureCacheCapacity != 128 || got.Workers != 4 {
		t.Errorf("cache/worker options not applied: %+v", got)
	}
}

func TestPredictBatchContextCancellation(t *testing.T) {
	// Each of the two ops sleeps long enough that cancellation lands while
	// the first is executing; the run must abort at the next block boundary.
	pipe := buildSlowPipeline(t, 100*time.Millisecond)
	train := twoColumnData(32)
	o, _, err := Optimize(context.Background(), pipe, train, Dataset{})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = o.PredictBatch(ctx, train.Inputs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("PredictBatch = %v, want context.Canceled", err)
	}
	// Both ops would take >= 200ms; a prompt abort returns well before the
	// second op runs.
	if elapsed := time.Since(start); elapsed > 180*time.Millisecond {
		t.Errorf("PredictBatch took %v after cancellation; abort was not prompt", elapsed)
	}

	// A pre-cancelled context fails immediately.
	dead, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := o.PredictBatch(dead, train.Inputs); !errors.Is(err, context.Canceled) {
		t.Fatalf("PredictBatch(dead ctx) = %v, want context.Canceled", err)
	}
}

func TestOptimizeContextCancellation(t *testing.T) {
	pipe := buildSlowPipeline(t, 50*time.Millisecond)
	train := twoColumnData(32)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if _, _, err := Optimize(ctx, pipe, train, Dataset{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Optimize = %v, want context.Canceled", err)
	}
}
