package willump_test

import (
	"context"
	"net/http"
	"testing"

	"willump"
	"willump/internal/core"
	"willump/internal/observ"
)

// TestObservabilityE2E exercises the full observability loop through the
// public API: a traced deployment serves live traffic, the shadow profile
// accumulates per-node costs from that traffic (Registry.LiveProfile), the
// trace ring is readable through the client, /metrics parses as Prometheus
// text exposition, and AdoptLiveProfile drains the measurements into the
// cost model exactly once.
func TestObservabilityE2E(t *testing.T) {
	o, fx := allocFixture(t, core.Options{})
	o.EnableTracing(1, 64) // head-sample every request
	reg := willump.NewRegistry()
	if err := reg.Deploy("fixture", "v1", o); err != nil {
		t.Fatal(err)
	}
	srv := willump.ServeRegistry(reg)
	base, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cl := willump.NewClient(base)
	ctx := context.Background()

	// Live traffic on both modalities: merged-eligible batches and a point
	// query on the zero-alloc path.
	for i := 0; i < 4; i++ {
		if _, err := cl.PredictModel(ctx, "fixture", fx.Test.Inputs); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.PredictModel(ctx, "fixture", onePoint(), willump.WithPointQuery()); err != nil {
		t.Fatal(err)
	}

	// Shadow profiling: the registry exposes per-node costs measured from
	// the traffic above.
	lp, err := reg.LiveProfile("fixture")
	if err != nil {
		t.Fatal(err)
	}
	snap := lp.Snapshot()
	if len(snap.NodeSeconds) == 0 {
		t.Fatal("live profile has no per-node costs after traced traffic")
	}
	var total float64
	for _, sec := range snap.NodeSeconds {
		total += float64(sec)
	}
	if total <= 0 {
		t.Fatalf("live profile node seconds sum to %v, want > 0", total)
	}
	var rows int64
	for _, n := range snap.NodeRows {
		rows += n
	}
	if rows == 0 {
		t.Fatal("live profile recorded no rows")
	}

	// Retained traces are readable through the client, with stage spans.
	trs, err := cl.Traces(ctx, "fixture", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(trs) == 0 {
		t.Fatal("no traces retained with sampling on every request")
	}
	if len(trs[0].Spans) == 0 {
		t.Errorf("newest trace has no spans: %+v", trs[0])
	}

	// The Prometheus endpoint serves a parseable exposition covering the
	// traffic above.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	counts, err := observ.ParseExposition(resp.Body)
	if err != nil {
		t.Fatalf("/metrics does not parse: %v", err)
	}
	if counts["willump_requests_total"] == 0 || counts["willump_request_duration_seconds_bucket"] == 0 {
		t.Errorf("core series missing from /metrics: %v", counts)
	}

	// Continuous-profiling feedback: adoption drains the accumulator into
	// the cost model, so a second adoption with no new traffic is a no-op.
	if !o.AdoptLiveProfile() {
		t.Fatal("AdoptLiveProfile adopted nothing despite live measurements")
	}
	if o.AdoptLiveProfile() {
		t.Fatal("second AdoptLiveProfile re-adopted drained measurements")
	}
	after := o.LiveProfile().Snapshot()
	if len(after.NodeSeconds) != 0 {
		t.Errorf("live profile still holds %d node costs after adoption", len(after.NodeSeconds))
	}
}
