//go:build race

package willump_test

// raceEnabled reports whether the race detector instruments this build.
// Allocation-count assertions are skipped under race: the detector's
// instrumentation allocates shadow state of its own, so AllocsPerRun counts
// stop measuring the production executor.
const raceEnabled = true
