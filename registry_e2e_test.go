package willump

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"willump/internal/pipeline"
)

// equalFloats asserts bitwise equality (the repo's bit-identical serving
// guarantee, not approximate closeness).
func equalFloats(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d predictions, want %d", label, len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: prediction %d = %v, want %v (not bit-identical)", label, i, got[i], want[i])
		}
	}
}

func equalIndices(t *testing.T, label string, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %v, want %v", label, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: got %v, want %v", label, got, want)
		}
	}
}

// TestRegistryEndToEnd is the redesign's acceptance test: two named
// artifacts served from one server, a zero-downtime hot swap under
// concurrent client load, per-request cascade-threshold and top-K overrides
// behaving over HTTP exactly as in process, and no-override requests
// remaining bit-identical to the pre-redesign single-model path — including
// through the legacy /predict route.
func TestRegistryEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end serving test in -short mode")
	}
	ctx := context.Background()

	// --- Train and save two artifacts (the offline optimization phase).
	toxicBench, err := pipeline.Toxic(pipeline.Config{Seed: 5, N: 1200})
	if err != nil {
		t.Fatal(err)
	}
	defer toxicBench.Close()
	toxicOpt, toxicRep, err := Optimize(ctx, toxicBench.Pipeline, toxicBench.Train, toxicBench.Valid,
		WithCascades(0.01), WithTopK(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !toxicRep.CascadeBuilt {
		t.Fatal("toxic benchmark did not build a cascade; the override checks need one")
	}

	productBench, err := pipeline.Product(pipeline.Config{Seed: 17, N: 1200})
	if err != nil {
		t.Fatal(err)
	}
	defer productBench.Close()
	productOpt, _, err := Optimize(ctx, productBench.Pipeline, productBench.Train, productBench.Valid,
		WithCascades(0.01))
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	toxicPath := filepath.Join(dir, "toxic.willump")
	productPath := filepath.Join(dir, "product.willump")
	if err := SaveFile(toxicOpt, toxicPath); err != nil {
		t.Fatal(err)
	}
	if err := SaveFile(productOpt, productPath); err != nil {
		t.Fatal(err)
	}

	// --- Deploy both artifacts behind one server (the serving phase).
	toxicV1, err := LoadFile(toxicPath)
	if err != nil {
		t.Fatal(err)
	}
	productV1, err := LoadFile(productPath)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	if err := reg.Deploy("toxic", "v1", toxicV1); err != nil {
		t.Fatal(err)
	}
	if err := reg.Deploy("product", "v1", productV1); err != nil {
		t.Fatal(err)
	}
	srv := ServeRegistry(reg)
	base, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli := NewClient(base, WithHTTPTimeout(time.Minute))

	models, err := cli.Models(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 2 {
		t.Fatalf("Models = %+v, want 2 entries", models)
	}
	for _, m := range models {
		if !m.Cascade {
			t.Errorf("model %s reports no cascade", m.Name)
		}
		if m.Name == "toxic" && !m.TopK {
			t.Errorf("toxic model reports no top-K support")
		}
	}

	toxicFeed := toxicBench.Test.Gather(seqRows(0, 200)).Inputs
	productFeed := productBench.Test.Gather(seqRows(0, 100)).Inputs

	// --- (b) No-override requests are bit-identical to the pre-redesign
	// single-model path: the in-process default entry point, the named
	// route, and the legacy /predict route all agree.
	wantToxic, err := toxicV1.PredictBatch(ctx, toxicFeed)
	if err != nil {
		t.Fatal(err)
	}
	gotNamed, err := cli.PredictModel(ctx, "toxic", toxicFeed)
	if err != nil {
		t.Fatal(err)
	}
	equalFloats(t, "named route vs in-process", gotNamed, wantToxic)

	gotLegacy, err := cli.Predict(ctx, toxicFeed) // toxic deployed first: the default
	if err != nil {
		t.Fatal(err)
	}
	equalFloats(t, "legacy /predict vs in-process", gotLegacy, wantToxic)

	wantProduct, err := productV1.PredictBatch(ctx, productFeed)
	if err != nil {
		t.Fatal(err)
	}
	gotProduct, err := cli.PredictModel(ctx, "product", productFeed)
	if err != nil {
		t.Fatal(err)
	}
	equalFloats(t, "second model vs in-process", gotProduct, wantProduct)

	// The pre-redesign single-model surface (Serve) still serves the same
	// bits through its legacy route.
	single := Serve(toxicV1, ServeOptions{})
	singleBase, err := single.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	gotSingle, err := NewClient(singleBase).Predict(ctx, toxicFeed)
	if err != nil {
		t.Fatal(err)
	}
	equalFloats(t, "single-model Serve vs in-process", gotSingle, wantToxic)

	// --- (a) Per-request overrides behave over HTTP exactly as in process.
	// Threshold 2.0 routes every row to the full model; 0.49 trusts the
	// small model everywhere (confidence is always > 0.49).
	for _, th := range []float64{0.49, 2.0} {
		inProc, err := toxicV1.PredictBatch(ctx, toxicFeed, WithThreshold(th))
		if err != nil {
			t.Fatal(err)
		}
		overHTTP, err := cli.PredictModel(ctx, "toxic", toxicFeed, WithThreshold(th))
		if err != nil {
			t.Fatal(err)
		}
		equalFloats(t, fmt.Sprintf("threshold %v over HTTP vs in-process", th), overHTTP, inProc)
	}
	// The override genuinely changes behavior: pure-small-model and
	// pure-full-model outputs differ somewhere on a real batch.
	allSmall, _ := cli.PredictModel(ctx, "toxic", toxicFeed, WithThreshold(0.49))
	allFull, _ := cli.PredictModel(ctx, "toxic", toxicFeed, WithThreshold(2.0))
	differs := false
	for i := range allSmall {
		if allSmall[i] != allFull[i] {
			differs = true
			break
		}
	}
	if !differs {
		t.Error("threshold overrides did not change behavior: small-only and full-only outputs identical")
	}

	// Top-K: default budget and an explicit per-request budget, HTTP vs
	// in-process.
	wantTop, err := toxicV1.TopK(ctx, toxicFeed, 10)
	if err != nil {
		t.Fatal(err)
	}
	gotTop, err := cli.TopK(ctx, "toxic", toxicFeed, 10)
	if err != nil {
		t.Fatal(err)
	}
	equalIndices(t, "topk over HTTP vs in-process", gotTop, wantTop)

	wantTopB, err := toxicV1.TopK(ctx, toxicFeed, 10, WithBudget(150))
	if err != nil {
		t.Fatal(err)
	}
	gotTopB, err := cli.TopK(ctx, "toxic", toxicFeed, 10, WithBudget(150))
	if err != nil {
		t.Fatal(err)
	}
	equalIndices(t, "topk budget override over HTTP vs in-process", gotTopB, wantTopB)

	// Point modality over HTTP matches the in-process point path.
	pointFeed := toxicBench.Test.Gather([]int{3}).Inputs
	wantPoint, err := toxicV1.PredictPoint(ctx, pointFeed)
	if err != nil {
		t.Fatal(err)
	}
	gotPoint, err := cli.PredictModel(ctx, "toxic", pointFeed, WithPointQuery())
	if err != nil {
		t.Fatal(err)
	}
	if len(gotPoint) != 1 || math.Float64bits(gotPoint[0]) != math.Float64bits(wantPoint) {
		t.Fatalf("point over HTTP = %v, want [%v]", gotPoint, wantPoint)
	}

	// --- Hot swap under concurrent load: deploy toxic v2 (a freshly loaded
	// copy of the same artifact) while clients hammer the model; no request
	// may fail, and every response must stay bit-identical (v1 and v2 serve
	// the same artifact).
	toxicV2, err := LoadFile(toxicPath)
	if err != nil {
		t.Fatal(err)
	}
	smallFeed := toxicBench.Test.Gather(seqRows(0, 5)).Inputs
	wantSmall, err := toxicV1.PredictBatch(ctx, smallFeed)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var served atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				preds, err := cli.PredictModel(ctx, "toxic", smallFeed)
				if err != nil {
					t.Errorf("request failed during hot swap: %v", err)
					return
				}
				for i := range preds {
					if math.Float64bits(preds[i]) != math.Float64bits(wantSmall[i]) {
						t.Errorf("prediction drifted during hot swap: %v vs %v", preds[i], wantSmall[i])
						return
					}
				}
				served.Add(1)
			}
		}()
	}
	time.Sleep(50 * time.Millisecond) // load is flowing
	if err := reg.Deploy("toxic", "v2", toxicV2); err != nil {
		t.Fatalf("hot swap: %v", err)
	}
	time.Sleep(100 * time.Millisecond) // keep hammering across the drain
	close(stop)
	wg.Wait()
	if served.Load() == 0 {
		t.Fatal("no requests served across the hot swap")
	}

	models, err = cli.Models(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range models {
		if m.Name == "toxic" && m.Version != "v2" {
			t.Errorf("toxic version after swap = %s, want v2", m.Version)
		}
	}

	// --- Telemetry: the stats route reports traffic and cascade activity.
	st, err := cli.Stats(ctx, "toxic")
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests == 0 {
		t.Error("stats report zero requests after the load test")
	}
	if st.CascadeTotal == 0 {
		t.Error("stats report zero cascade activity for a cascade-serving model")
	}
	if st.Version != "v2" {
		t.Errorf("stats version = %s, want v2", st.Version)
	}

	// --- Typed errors reach the client.
	if _, err := cli.PredictModel(ctx, "missing", smallFeed); !errors.Is(err, ErrModelNotFound) {
		t.Errorf("unknown model error = %v, want ErrModelNotFound", err)
	}

	// Artifacts on disk stay readable after everything above (sanity that
	// serving never mutates them).
	if _, err := os.Stat(toxicPath); err != nil {
		t.Error(err)
	}
}

func seqRows(start, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = start + i
	}
	return out
}
