package willump

import "willump/internal/model"

// LinearConfig configures the linear models (logistic classification and
// linear regression).
type LinearConfig = model.LinearConfig

// GBDTConfig configures the gradient-boosted decision tree model.
type GBDTConfig = model.GBDTConfig

// MLPConfig configures the multi-layer perceptron model.
type MLPConfig = model.MLPConfig

// Task kinds for GBDTConfig.Task.
const (
	Classification = model.Classification
	Regression     = model.Regression
)

// NewLogistic returns an untrained logistic-regression classifier.
func NewLogistic(cfg LinearConfig) Model { return model.NewLogistic(cfg) }

// NewLinearRegression returns an untrained linear regressor.
func NewLinearRegression(cfg LinearConfig) Model { return model.NewLinearRegression(cfg) }

// NewGBDT returns an untrained gradient-boosted decision tree model.
func NewGBDT(cfg GBDTConfig) Model { return model.NewGBDT(cfg) }

// NewMLP returns an untrained multi-layer perceptron.
func NewMLP(cfg MLPConfig) Model { return model.NewMLP(cfg) }

// Accuracy is the fraction of rows where the thresholded probability matches
// the binary label.
func Accuracy(probs, y []float64) float64 { return model.Accuracy(probs, y) }

// MSE is the mean squared error of predictions against targets.
func MSE(preds, y []float64) float64 { return model.MSE(preds, y) }
