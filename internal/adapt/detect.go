// Package adapt closes Willump's statistical loop online: everything the
// optimizer fits from training data (cascade thresholds, feature-cache
// budget splits) drifts as production traffic does. A per-model
// controller shadow-samples live requests into drift detectors, re-fits
// the statistical plan from a reservoir of recent traffic when drift is
// confirmed, and rolls the candidate plan in through the serving tier's
// zero-downtime hot swap as a guarded canary: automatic promotion when
// the candidate beats the incumbent on guard metrics, automatic rollback
// plus cooldown when it regresses. Nothing here runs on the request hot
// path — sampling is a lock-free counter and a non-blocking channel send.
package adapt

import (
	"math"
	"sort"
)

// PageHinkley is a two-sided Page–Hinkley test: a sequential
// change-point detector for a shift in the mean of a stream. delta is
// the magnitude of mean change considered insignificant (absorbs noise);
// lambda is the detection threshold on the cumulative deviation. Small
// lambda detects faster but false-positives sooner.
type PageHinkley struct {
	delta, lambda float64

	n       int64
	mean    float64
	up      float64 // cumulative deviation toward an upward shift
	upMin   float64
	down    float64 // cumulative deviation toward a downward shift
	downMax float64
}

// NewPageHinkley returns a detector; non-positive parameters take the
// package defaults (delta 0.005, lambda 0.5 — tuned for probability
// streams in [0, 1]).
func NewPageHinkley(delta, lambda float64) *PageHinkley {
	if delta <= 0 {
		delta = 0.005
	}
	if lambda <= 0 {
		lambda = 0.5
	}
	return &PageHinkley{delta: delta, lambda: lambda}
}

// Add folds one observation and reports whether the test has tripped.
func (ph *PageHinkley) Add(x float64) bool {
	ph.n++
	ph.mean += (x - ph.mean) / float64(ph.n)
	ph.up += x - ph.mean - ph.delta
	if ph.up < ph.upMin {
		ph.upMin = ph.up
	}
	ph.down += x - ph.mean + ph.delta
	if ph.down > ph.downMax {
		ph.downMax = ph.down
	}
	return ph.Score() > ph.lambda
}

// Score returns the current cumulative deviation (compared against
// lambda); it rises toward detection and is exported on stats.
func (ph *PageHinkley) Score() float64 {
	return math.Max(ph.up-ph.upMin, ph.downMax-ph.down)
}

// Reset clears the detector for a new regime.
func (ph *PageHinkley) Reset() {
	ph.n, ph.mean = 0, 0
	ph.up, ph.upMin, ph.down, ph.downMax = 0, 0, 0, 0
}

// KSWindow is a two-sample Kolmogorov–Smirnov drift test between a
// frozen reference sample (the distribution the plan was fit to, or the
// first observed window) and a sliding window of recent observations.
type KSWindow struct {
	refSize int
	crit    float64 // critical coefficient c(alpha); 1.628 ~ alpha 0.01

	ref    []float64 // sorted once frozen
	frozen bool

	win  []float64
	idx  int
	full bool
}

// NewKSWindow returns a detector with the given reference and sliding
// window sizes; non-positive sizes default to 256, non-positive crit to
// 1.628 (alpha ~ 0.01).
func NewKSWindow(refSize, window int, crit float64) *KSWindow {
	if refSize <= 0 {
		refSize = 256
	}
	if window <= 0 {
		window = 256
	}
	if crit <= 0 {
		crit = 1.628
	}
	return &KSWindow{refSize: refSize, crit: crit, win: make([]float64, window)}
}

// Add folds one observation: the first refSize observations build the
// frozen reference, later ones enter the sliding window. Reports whether
// the two samples currently differ beyond the critical distance.
func (k *KSWindow) Add(x float64) bool {
	if !k.frozen {
		k.ref = append(k.ref, x)
		if len(k.ref) == k.refSize {
			sort.Float64s(k.ref)
			k.frozen = true
		}
		return false
	}
	k.win[k.idx] = x
	k.idx++
	if k.idx == len(k.win) {
		k.idx = 0
		k.full = true
	}
	return k.Drifted()
}

// SetReference freezes an explicit reference sample (copied and sorted),
// bypassing the bootstrap phase.
func (k *KSWindow) SetReference(xs []float64) {
	k.ref = append(k.ref[:0], xs...)
	sort.Float64s(k.ref)
	k.frozen = len(k.ref) > 0
}

// Statistic returns the two-sample KS distance sup|F_ref - F_win|, or 0
// until both samples are populated.
func (k *KSWindow) Statistic() float64 {
	if !k.frozen || !k.full {
		return 0
	}
	recent := append([]float64(nil), k.win...)
	sort.Float64s(recent)
	var d float64
	i, j := 0, 0
	n, m := len(k.ref), len(recent)
	for i < n && j < m {
		// Advance past whole tie groups — on both sides when the heads are
		// equal — and evaluate the CDF gap only at distinct-value
		// boundaries. Stepping one element at a time would read the gap
		// mid-tie-group: two identical duplicate-heavy samples (the norm
		// for scores under high key reuse) would report D up to 1.0
		// instead of 0 and drive spurious drift detections.
		v := k.ref[i]
		if recent[j] < v {
			v = recent[j]
		}
		for i < n && k.ref[i] == v {
			i++
		}
		for j < m && recent[j] == v {
			j++
		}
		if diff := math.Abs(float64(i)/float64(n) - float64(j)/float64(m)); diff > d {
			d = diff
		}
	}
	return d
}

// Drifted reports whether the KS distance exceeds the critical value
// c(alpha) * sqrt((n+m)/(n*m)).
func (k *KSWindow) Drifted() bool {
	if !k.frozen || !k.full {
		return false
	}
	n, m := float64(len(k.ref)), float64(len(k.win))
	return k.Statistic() > k.crit*math.Sqrt((n+m)/(n*m))
}

// Reset clears both samples (reference rebuilds from the stream).
func (k *KSWindow) Reset() {
	k.ref = k.ref[:0]
	k.frozen = false
	k.idx = 0
	k.full = false
}

// ReuseDrift watches live key reuse against the cache plan's estimated
// hit rate. Each full window of sampled key hashes yields one observed
// reuse measurement (1 - distinct/window, the same estimator the planner
// ran over training keys); a run of consecutive windows outside the
// tolerance band trips the detector — the hysteresis that keeps one
// anomalous window from triggering a re-fit.
type ReuseDrift struct {
	window   []uint64
	n        int
	expected float64
	haveExp  bool
	tol      float64
	need     int

	strikes  int
	observed float64
	haveObs  bool
}

// NewReuseDrift returns a detector. window is the sample count per
// measurement (default 256), tol the allowed |observed - expected|
// (default 0.2), need the consecutive out-of-band windows required
// (default 2).
func NewReuseDrift(window int, tol float64, need int) *ReuseDrift {
	if window <= 0 {
		window = 256
	}
	if tol <= 0 {
		tol = 0.2
	}
	if need <= 0 {
		need = 2
	}
	return &ReuseDrift{window: make([]uint64, window), tol: tol, need: need}
}

// SetExpected installs the plan's estimated hit rate as the reference.
// Without one, the first full window's observation becomes the baseline
// (pipelines loaded from artifacts persist capacities, not estimates).
func (r *ReuseDrift) SetExpected(e float64) {
	r.expected = e
	r.haveExp = true
	r.strikes = 0
}

// Add folds one sampled key hash and reports whether the detector has
// tripped. Evaluation happens once per full window, so the per-sample
// cost is one store.
func (r *ReuseDrift) Add(h uint64) bool {
	r.window[r.n] = h
	r.n++
	if r.n < len(r.window) {
		return r.strikes >= r.need
	}
	r.n = 0
	distinct := make(map[uint64]struct{}, len(r.window))
	for _, k := range r.window {
		distinct[k] = struct{}{}
	}
	r.observed = 1 - float64(len(distinct))/float64(len(r.window))
	r.haveObs = true
	if !r.haveExp {
		r.SetExpected(r.observed)
		return false
	}
	if math.Abs(r.observed-r.expected) > r.tol {
		r.strikes++
	} else {
		r.strikes = 0
	}
	return r.strikes >= r.need
}

// Observed returns the last full-window reuse measurement.
func (r *ReuseDrift) Observed() (float64, bool) { return r.observed, r.haveObs }

// Expected returns the reference hit rate the detector compares against.
func (r *ReuseDrift) Expected() (float64, bool) { return r.expected, r.haveExp }

// Reset clears observations and strikes, keeping the expected rate.
func (r *ReuseDrift) Reset() {
	r.n = 0
	r.strikes = 0
	r.haveObs = false
}
