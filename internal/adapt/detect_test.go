package adapt

import (
	"math"
	"testing"
)

// Synthetic streams are fully deterministic: key sequences are modular
// arithmetic, score sequences are fixed oscillations. Detection bounds
// ("within N samples") and the zero-false-positive control all run at the
// package default sensitivities.

func TestReuseDriftDetectsAbruptHotsetShift(t *testing.T) {
	const window = 128
	r := NewReuseDrift(window, 0.2, 2)
	// The plan estimated 90% reuse (a skewed hot set).
	r.SetExpected(0.9)

	// Phase 1: traffic matching the plan — 8 hot keys, observed reuse
	// 1 - 8/128 = 0.9375, inside tolerance. No detection over 20 windows.
	for i := 0; i < 20*window; i++ {
		if r.Add(uint64(i % 8)) {
			t.Fatalf("false positive at sample %d of the matching phase", i)
		}
	}

	// Phase 2: abrupt shift to unique keys — observed reuse 0. The
	// detector requires 2 consecutive out-of-band windows, so detection
	// must land within 3 windows of the shift.
	detectedAt := -1
	for i := 0; i < 4*window; i++ {
		if r.Add(uint64(1_000_000 + i)) {
			detectedAt = i
			break
		}
	}
	if detectedAt < 0 {
		t.Fatal("abrupt hotset shift never detected")
	}
	if detectedAt >= 3*window {
		t.Fatalf("detection took %d samples, want < %d", detectedAt, 3*window)
	}
	obs, ok := r.Observed()
	if !ok || obs > 0.05 {
		t.Fatalf("observed reuse %.3f (ok=%v), want ~0 after unique keys", obs, ok)
	}
}

func TestReuseDriftBootstrapsBaselineWithoutPlan(t *testing.T) {
	const window = 64
	r := NewReuseDrift(window, 0.2, 2)
	// No SetExpected: the first full window freezes the baseline.
	for i := 0; i < window; i++ {
		r.Add(uint64(i % 4))
	}
	exp, ok := r.Expected()
	if !ok {
		t.Fatal("baseline not frozen after first window")
	}
	if want := 1 - 4.0/window; math.Abs(exp-want) > 1e-9 {
		t.Fatalf("baseline %.4f, want %.4f", exp, want)
	}
	// Shifted traffic against the bootstrapped baseline still detects.
	detected := false
	for i := 0; i < 3*window; i++ {
		if r.Add(uint64(1_000 + i)) {
			detected = true
			break
		}
	}
	if !detected {
		t.Fatal("drift against bootstrapped baseline not detected")
	}
}

// controlScore is the drift-free score stream: a fixed oscillation around
// 0.72 (a confident classifier's typical output), mean-stationary.
func controlScore(i int) float64 {
	return 0.72 + 0.05*math.Sin(float64(i)*0.7)
}

func TestPageHinkleyDetectsGradualScoreDrift(t *testing.T) {
	ph := NewPageHinkley(0, 0) // package defaults
	const warm = 2_000
	for i := 0; i < warm; i++ {
		if ph.Add(controlScore(i)) {
			t.Fatalf("false positive at warmup sample %d", i)
		}
	}
	// Gradual drift: the mean score slides down 0.0005 per sample (the
	// small model losing confidence as the input distribution moves).
	detectedAt := -1
	for i := 0; i < 2_000; i++ {
		x := controlScore(warm+i) - 0.0005*float64(i)
		if ph.Add(x) {
			detectedAt = i
			break
		}
	}
	if detectedAt < 0 {
		t.Fatal("gradual score drift never detected")
	}
	if detectedAt >= 1_500 {
		t.Fatalf("detection took %d drift samples, want < 1500", detectedAt)
	}
}

func TestPageHinkleyNoFalsePositiveOnControl(t *testing.T) {
	ph := NewPageHinkley(0, 0)
	for i := 0; i < 100_000; i++ {
		if ph.Add(controlScore(i)) {
			t.Fatalf("false positive on drift-free control at sample %d (score %.4f)", i, ph.Score())
		}
	}
}

func TestKSWindowDetectsDistributionShift(t *testing.T) {
	k := NewKSWindow(256, 256, 0) // default crit (alpha ~ 0.01)
	// Bootstrap the frozen reference from the control stream.
	for i := 0; i < 256; i++ {
		k.Add(controlScore(i))
	}
	// Fill the sliding window with more control data: no drift.
	for i := 256; i < 2_048; i++ {
		if k.Add(controlScore(i)) {
			t.Fatalf("false positive on control at sample %d (stat %.4f)", i, k.Statistic())
		}
	}
	// Shift the distribution's center by +0.1: an abrupt score shift.
	detectedAt := -1
	for i := 0; i < 512; i++ {
		if k.Add(0.1 + controlScore(i)) {
			detectedAt = i
			break
		}
	}
	if detectedAt < 0 {
		t.Fatalf("distribution shift never detected (stat %.4f)", k.Statistic())
	}
	if detectedAt >= 400 {
		t.Fatalf("detection took %d shifted samples, want < 400", detectedAt)
	}
}

func TestKSWindowIdenticalTieHeavySamplesAreNotDrift(t *testing.T) {
	// Duplicate-heavy streams are the norm for scores under high key
	// reuse: identically distributed reference and window samples over a
	// tiny support must yield D = 0, not a mid-tie-group gap.
	tied := func(i int) float64 {
		if i%2 == 0 {
			return 0.3
		}
		return 0.7
	}
	k := NewKSWindow(256, 256, 0)
	for i := 0; i < 1_024; i++ {
		if k.Add(tied(i)) {
			t.Fatalf("false positive on identical tied samples at %d (stat %.4f)", i, k.Statistic())
		}
	}
	if d := k.Statistic(); d != 0 {
		t.Fatalf("KS distance %.4f on identical tied samples, want 0", d)
	}

	// Degenerate all-equal case: every observation the same value.
	k2 := NewKSWindow(128, 128, 0)
	for i := 0; i < 512; i++ {
		if k2.Add(0.5) {
			t.Fatalf("false positive on constant stream at %d (stat %.4f)", i, k2.Statistic())
		}
	}
	if d := k2.Statistic(); d != 0 {
		t.Fatalf("KS distance %.4f on constant streams, want 0", d)
	}
}

func TestKSWindowDetectsMassShiftOnTiedSupport(t *testing.T) {
	k := NewKSWindow(256, 256, 0)
	// Reference: 50/50 over {0.3, 0.7}.
	for i := 0; i < 256; i++ {
		if i%2 == 0 {
			k.Add(0.3)
		} else {
			k.Add(0.7)
		}
	}
	// Recent traffic: 90/10 over the same support. The tie-group merge
	// must still see the mass shift at the 0.3/0.7 boundary (D = 0.4).
	detected := false
	for i := 0; i < 512; i++ {
		x := 0.3
		if i%10 == 9 {
			x = 0.7
		}
		if k.Add(x) {
			detected = true
			break
		}
	}
	if !detected {
		t.Fatalf("mass shift on tied support never detected (stat %.4f)", k.Statistic())
	}
}

func TestKSWindowResetRebuildsReference(t *testing.T) {
	k := NewKSWindow(64, 64, 0)
	for i := 0; i < 512; i++ {
		k.Add(controlScore(i))
	}
	k.Reset()
	if k.Drifted() || k.Statistic() != 0 {
		t.Fatal("reset detector still reports state")
	}
	// After reset the shifted regime becomes the new reference: no drift.
	for i := 0; i < 512; i++ {
		if k.Add(0.1 + controlScore(i)) {
			t.Fatalf("drift reported against post-reset reference at %d", i)
		}
	}
}
