package adapt

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"willump/internal/cache"
	"willump/internal/core"
	"willump/internal/value"
	"willump/internal/weld"
)

// Config tunes one model's adaptation controller. The zero value is
// usable: every field defaults to production-safe settings; tests and
// the loadgen drift scenario compress cadences.
type Config struct {
	// SampleEvery shadow-samples one request in N into the detectors
	// (default 8; 1 samples everything).
	SampleEvery int
	// ShadowQueue bounds the sample queue between the hot path and the
	// shadow worker; full means drop, never block (default 64).
	ShadowQueue int
	// Reservoir is the sliding reservoir of sampled request rows re-fits
	// draw from (default 512).
	Reservoir int
	// MinReservoir is the row floor before any re-fit (default
	// core.ReplanMinReservoirRows; values below it are raised to it).
	MinReservoir int
	// KeyWindow is the key-reuse drift window (default 256 samples).
	KeyWindow int
	// ReuseTolerance is the allowed |observed - planned| hit-rate gap
	// (default 0.2); ReuseStrikes the consecutive out-of-band windows
	// required (default 2).
	ReuseTolerance float64
	ReuseStrikes   int
	// ScoreRef / ScoreWindow size the KS test's frozen reference and
	// sliding window (default 256 each); KSCrit its critical coefficient
	// (default 1.628, alpha ~ 0.01). PHDelta / PHLambda tune the
	// Page–Hinkley test (defaults 0.005 / 0.5).
	ScoreRef    int
	ScoreWindow int
	KSCrit      float64
	PHDelta     float64
	PHLambda    float64
	// CheckEvery is the detector-evaluation and canary-judgement cadence
	// (default 250ms).
	CheckEvery time.Duration
	// CanaryFraction is the share of traffic routed to a candidate plan
	// (default 0.10, clamped to [0.01, 0.5]).
	CanaryFraction float64
	// CanaryMinRequests is the per-arm request floor before a judgement
	// counts (default 200). CanaryTimeout rolls back a canary that never
	// accumulates judgeable traffic (default 60s).
	CanaryMinRequests int64
	CanaryTimeout     time.Duration
	// Guard tolerances: the canary fails a check when its delta error
	// rate exceeds the incumbent's by more than GuardErrorTol (default
	// 0.01); when its p99 exceeds both the SLO and the incumbent's p99
	// scaled by 1+GuardLatencyTol (default 0.5); when its cache hit rate
	// falls more than GuardHitRateSlack below the incumbent's (default
	// 0.10); or when its small-model routing rate exceeds the re-fit's
	// predicted rate by more than GuardSmallRateSlack (default 0.25).
	GuardErrorTol       float64
	GuardLatencyTol     float64
	GuardHitRateSlack   float64
	GuardSmallRateSlack float64
	// SLO is the latency target the p99 guard compares against (0 keeps
	// the guard purely relative to the incumbent).
	SLO time.Duration
	// PassStreak / FailStreak are the hysteresis: consecutive passing
	// judgements required to promote, consecutive failing ones to roll
	// back (default 2 each).
	PassStreak int
	FailStreak int
	// Cooldown suppresses re-fits after a rollback (default 30s).
	Cooldown time.Duration
	// MutateCandidate, when set, rewrites the candidate before it
	// canaries — a fault-injection hook for chaos drills and the
	// injected-bad-plan rollback test.
	MutateCandidate func(*core.Optimized)
}

func (c Config) withDefaults() Config {
	if c.SampleEvery <= 0 {
		c.SampleEvery = 8
	}
	if c.ShadowQueue <= 0 {
		c.ShadowQueue = 64
	}
	if c.Reservoir <= 0 {
		c.Reservoir = 512
	}
	if c.MinReservoir < core.ReplanMinReservoirRows {
		c.MinReservoir = core.ReplanMinReservoirRows
	}
	if c.KeyWindow <= 0 {
		c.KeyWindow = 256
	}
	if c.ReuseStrikes <= 0 {
		c.ReuseStrikes = 2
	}
	if c.CheckEvery <= 0 {
		c.CheckEvery = 250 * time.Millisecond
	}
	if c.CanaryFraction <= 0 {
		c.CanaryFraction = 0.10
	}
	if c.CanaryFraction < 0.01 {
		c.CanaryFraction = 0.01
	}
	if c.CanaryFraction > 0.5 {
		c.CanaryFraction = 0.5
	}
	if c.CanaryMinRequests <= 0 {
		c.CanaryMinRequests = 200
	}
	if c.CanaryTimeout <= 0 {
		c.CanaryTimeout = 60 * time.Second
	}
	if c.GuardErrorTol <= 0 {
		c.GuardErrorTol = 0.01
	}
	if c.GuardLatencyTol <= 0 {
		c.GuardLatencyTol = 0.5
	}
	if c.GuardHitRateSlack <= 0 {
		c.GuardHitRateSlack = 0.10
	}
	if c.GuardSmallRateSlack <= 0 {
		c.GuardSmallRateSlack = 0.25
	}
	if c.PassStreak <= 0 {
		c.PassStreak = 2
	}
	if c.FailStreak <= 0 {
		c.FailStreak = 2
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 30 * time.Second
	}
	return c
}

// Guard is one serving arm's guard-metric snapshot: cumulative counters
// plus the current windowed p99. The controller judges canaries on
// counter deltas from the canary's start.
type Guard struct {
	Requests     int64
	Errors       int64
	P99          time.Duration
	CacheHits    int64
	CacheMisses  int64
	CascadeTotal int64
	CascadeSmall int64
	Sheds        int64
}

func (g Guard) errRate(base Guard) float64 {
	n := g.Requests - base.Requests
	if n <= 0 {
		return 0
	}
	return float64(g.Errors-base.Errors) / float64(n)
}

func (g Guard) hitRate(base Guard) (float64, bool) {
	h := g.CacheHits - base.CacheHits
	m := g.CacheMisses - base.CacheMisses
	if h+m <= 0 {
		return 0, false
	}
	return float64(h) / float64(h+m), true
}

func (g Guard) smallRate(base Guard) (float64, bool) {
	n := g.CascadeTotal - base.CascadeTotal
	if n <= 0 {
		return 0, false
	}
	return float64(g.CascadeSmall-base.CascadeSmall) / float64(n), true
}

// Hooks connects a controller to the serving tier without importing it:
// the registry supplies closures over its own canary machinery.
type Hooks struct {
	// StartCanary deploys the candidate beside the incumbent at the
	// given traffic fraction.
	StartCanary func(tag string, cand *core.Optimized, fraction float64) error
	// Promote makes the canary the active version (the incumbent drains);
	// Rollback discards the canary.
	Promote  func() error
	Rollback func() error
	// Guards snapshots both arms; ok is false when no canary is running
	// (e.g. an operator deploy displaced it).
	Guards func() (incumbent, canary Guard, ok bool)
}

// State names the controller's lifecycle phase.
type State int32

const (
	// StateIdle: detectors watching, no candidate in flight.
	StateIdle State = iota
	// StateCanarying: a candidate plan is serving a traffic fraction.
	StateCanarying
	// StateCooldown: a rollback happened recently; re-fits suppressed.
	StateCooldown
)

func (s State) String() string {
	switch s {
	case StateCanarying:
		return "canarying"
	case StateCooldown:
		return "cooldown"
	default:
		return "idle"
	}
}

// sample is one shadow-sampled request row.
type sample struct {
	inputs map[string]value.Value // single row
}

// Controller is one model's adaptation loop. The hot path touches only
// ObserveRequest (an atomic counter and a non-blocking channel send);
// detector state, the reservoir, and the canary state machine live on
// the shadow worker and ticker goroutines behind one mutex.
type Controller struct {
	cfg   Config
	hooks Hooks

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	tick    atomic.Int64
	sampled atomic.Int64
	dropped atomic.Int64

	shadowQ chan sample

	mu        sync.Mutex
	opt       *core.Optimized // incumbent (replaced on promote)
	candidate *core.Optimized
	inputs    []string // incumbent request schema, sorted for stable keys

	// shadow is a cache-free runtime clone of the incumbent that shadow
	// predictions run on: scoring sampled rows on the incumbent itself
	// would re-look-up keys just served through its live feature caches,
	// inflating the hit counters the canary hit-rate guard compares arms
	// by and biasing judgement against every candidate.
	shadow *core.Optimized

	// anchorCols are the raw source columns of the plan's highest-budget
	// cached IFV: the key tuple whose live reuse the plan's estimate is
	// checked against. Empty falls back to the whole request key.
	anchorCols []string

	reuse *ReuseDrift
	ph    *PageHinkley
	ks    *KSWindow

	keyDrift   bool
	scoreDrift bool

	reservoir []sample // sliding ring of recent sampled rows
	resIdx    int
	resFull   bool
	smalls    []float64 // shadow score pairs, same ring discipline
	fulls     []float64

	state         State
	canaryTag     string
	canaryStart   time.Time
	baseInc       Guard
	baseCan       Guard
	passStreak    int
	failStreak    int
	cooldownUntil time.Time
	predSmallFrac float64
	havePredSmall bool

	keyDriftEvents   atomic.Int64
	scoreDriftEvents atomic.Int64
	refits           atomic.Int64
	canaries         atomic.Int64
	promotions       atomic.Int64
	rollbacks        atomic.Int64
	canaryErrors     atomic.Int64

	lastObserved       float64
	lastExpected       float64
	lastRollbackReason string
	started            bool
	closeOnce          sync.Once
}

// New builds a controller for the given incumbent pipeline. Call Start
// to launch its goroutines and ObserveRequest from the request path.
func New(opt *core.Optimized, cfg Config, hooks Hooks) *Controller {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	c := &Controller{
		cfg:     cfg,
		hooks:   hooks,
		ctx:     ctx,
		cancel:  cancel,
		shadowQ: make(chan sample, cfg.ShadowQueue),
		opt:     opt,
		reuse:   NewReuseDrift(cfg.KeyWindow, cfg.ReuseTolerance, cfg.ReuseStrikes),
		ph:      NewPageHinkley(cfg.PHDelta, cfg.PHLambda),
		ks:      NewKSWindow(cfg.ScoreRef, cfg.ScoreWindow, cfg.KSCrit),
	}
	c.reservoir = make([]sample, 0, cfg.Reservoir)
	c.bindIncumbent(opt)
	return c
}

// bindIncumbent resolves the schema and drift reference for a (new)
// incumbent plan. Caller holds mu (or is the constructor).
func (c *Controller) bindIncumbent(opt *core.Optimized) {
	c.opt = opt
	c.shadow = opt.CloneForRefit()
	c.shadow.Prog.DisableFeatureCaching()
	c.inputs = append([]string(nil), opt.Inputs()...)
	c.anchorCols = nil
	specs := opt.Prog.CacheSpecs()
	best, bestCap := -1, int64(-1)
	for _, sp := range specs {
		capa := int64(sp.Capacity)
		if capa <= 0 {
			capa = 1 << 40 // unbounded outranks any budget
		}
		if capa > bestCap {
			best, bestCap = sp.IFV, capa
		}
	}
	if best >= 0 {
		ifv := opt.Prog.A.IFVs[best]
		for _, sid := range ifv.Sources {
			c.anchorCols = append(c.anchorCols, opt.Prog.G.Node(sid).Label)
		}
	}
	for _, st := range opt.CachePlan() {
		if st.IFV == best && st.Cached {
			c.reuse.SetExpected(st.EstimatedHitRate)
			c.lastExpected = st.EstimatedHitRate
			return
		}
	}
	if rate, ok := opt.PlannedHitRate(); ok {
		c.reuse.SetExpected(rate)
		c.lastExpected = rate
	}
	// No plan stats (artifact-loaded pipeline): the first observed window
	// bootstraps the baseline inside ReuseDrift.
}

// Start launches the shadow worker and the check ticker.
func (c *Controller) Start() {
	c.mu.Lock()
	if c.started {
		c.mu.Unlock()
		return
	}
	c.started = true
	c.mu.Unlock()
	c.wg.Add(2)
	go c.shadowWorker()
	go c.ticker()
}

// Close stops the controller's goroutines. It never touches the serving
// tier — a live canary stays up for the registry to resolve.
func (c *Controller) Close() {
	c.closeOnce.Do(func() {
		c.cancel()
		c.wg.Wait()
	})
}

// ObserveRequest offers one live request to the shadow sampler: one in
// SampleEvery requests has its first row cloned onto the shadow queue.
// Never blocks; a full queue drops the sample.
func (c *Controller) ObserveRequest(inputs map[string]value.Value, rows int) {
	if c == nil || rows <= 0 {
		return
	}
	if n := c.tick.Add(1); int(n%int64(c.cfg.SampleEvery)) != 0 {
		return
	}
	row := make(map[string]value.Value, len(inputs))
	for k, v := range inputs {
		if v.Len() < 1 {
			return
		}
		if v.Len() == 1 {
			row[k] = v
		} else {
			row[k] = v.Gather([]int{0})
		}
	}
	select {
	case c.shadowQ <- sample{inputs: row}:
		c.sampled.Add(1)
	default:
		c.dropped.Add(1)
	}
}

func (c *Controller) shadowWorker() {
	defer c.wg.Done()
	for {
		select {
		case <-c.ctx.Done():
			return
		case s := <-c.shadowQ:
			c.processSample(s)
		}
	}
}

// fnv1a hashes a key buffer (inline FNV-1a, no allocation).
func fnv1a(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// processSample runs one shadow evaluation: key-reuse accounting on the
// anchor key tuple, small+full shadow predictions feeding the score
// detectors and the re-fit pair reservoir, and the row reservoir.
func (c *Controller) processSample(s sample) {
	c.mu.Lock()
	shadow := c.shadow
	anchor := c.anchorCols
	if len(anchor) == 0 {
		anchor = c.inputs
	}
	c.mu.Unlock()

	cols := make([]value.Value, 0, len(anchor))
	for _, name := range anchor {
		v, ok := s.inputs[name]
		if !ok {
			return // schema mismatch (mid-swap sample); skip
		}
		cols = append(cols, v)
	}
	key := fnv1a(cache.AppendRowKey(nil, cols, 0))

	// Shadow predictions run off the hot path on the cache-free shadow
	// clone, so they never touch the incumbent's live feature caches or
	// its guard counters. With an approximate model present, the small
	// score is the drift signal and (small, full) pairs feed threshold
	// re-fits; without one, the full score alone feeds the distribution
	// detectors.
	var score float64
	var small, full float64
	haveSmall := false
	if shadow.Approx != nil {
		sp, err := shadow.Approx.SmallOnlyPredict(c.ctx, s.inputs)
		if err != nil || len(sp) == 0 {
			return
		}
		small, haveSmall = sp[0], true
		score = small
	}
	fp, err := shadow.PredictFull(c.ctx, s.inputs)
	if err != nil || len(fp) == 0 {
		return
	}
	full = fp[0]
	if !haveSmall {
		score = full
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.reuse.Add(key) && !c.keyDrift {
		c.keyDrift = true
		c.keyDriftEvents.Add(1)
	}
	phHit := c.ph.Add(score)
	ksHit := c.ks.Add(score)
	if (phHit || ksHit) && !c.scoreDrift {
		c.scoreDrift = true
		c.scoreDriftEvents.Add(1)
	}
	if obs, ok := c.reuse.Observed(); ok {
		c.lastObserved = obs
	}
	if exp, ok := c.reuse.Expected(); ok {
		c.lastExpected = exp
	}
	if cap(c.reservoir) == 0 {
		return
	}
	if len(c.reservoir) < cap(c.reservoir) {
		c.reservoir = append(c.reservoir, s)
		if haveSmall {
			c.smalls = append(c.smalls, small)
			c.fulls = append(c.fulls, full)
		}
		return
	}
	c.resFull = true
	c.reservoir[c.resIdx] = s
	if haveSmall && c.resIdx < len(c.smalls) {
		c.smalls[c.resIdx] = small
		c.fulls[c.resIdx] = full
	}
	c.resIdx = (c.resIdx + 1) % cap(c.reservoir)
}

func (c *Controller) ticker() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.CheckEvery)
	defer t.Stop()
	for {
		select {
		case <-c.ctx.Done():
			return
		case <-t.C:
			c.step(time.Now())
		}
	}
}

// step advances the state machine one judgement cycle.
func (c *Controller) step(now time.Time) {
	c.mu.Lock()
	state := c.state
	c.mu.Unlock()
	switch state {
	case StateCanarying:
		c.judgeCanary(now)
	case StateCooldown:
		c.mu.Lock()
		if now.After(c.cooldownUntil) {
			c.state = StateIdle
		}
		c.mu.Unlock()
	default:
		c.maybeRefit()
	}
}

// maybeRefit re-fits the statistical plan and launches a canary when
// drift is confirmed and the reservoir clears the size floors.
func (c *Controller) maybeRefit() {
	c.mu.Lock()
	if c.state != StateIdle || (!c.keyDrift && !c.scoreDrift) {
		c.mu.Unlock()
		return
	}
	if len(c.reservoir) < c.cfg.MinReservoir {
		c.mu.Unlock()
		return
	}
	opt := c.opt
	rows := append([]sample(nil), c.reservoir...)
	smalls := append([]float64(nil), c.smalls...)
	fulls := append([]float64(nil), c.fulls...)
	c.mu.Unlock()

	ds, err := buildDataset(rows, c.inputs)
	if err != nil {
		return
	}

	// Fold shadow-profiled live costs into the incumbent's cost model
	// before cloning, so the candidate plans against production costs.
	opt.AdoptLiveProfile()
	cand := opt.CloneForRefit()

	changed := false
	havePred := false
	var predSmall float64
	if opt.Cascade != nil && len(smalls) >= core.RefitMinScorePairs {
		if rr, err := core.RefitCascadeThreshold(smalls, fulls, opt.AccuracyTarget()); err == nil {
			cand.SetCascadeThreshold(rr.Threshold, rr.Agreement)
			predSmall, havePred = rr.SmallFrac, true
			if old, ok := opt.CascadeThreshold(); !ok || old != rr.Threshold {
				changed = true
			}
		}
	}
	if specs, stats, err := cand.ReplanFeatureCache(ds, 0); err == nil {
		// A replanned split identical to the incumbent's is not a change:
		// canarying it would only churn versions (promotion resets the
		// detectors, the same drift re-confirms, the same plan re-canaries,
		// forever).
		if !sameCacheSpecs(specs, cand.Prog.CacheSpecs()) {
			changed = true
		}
		cand.ApplyCacheSpecs(specs, stats)
	}
	if !changed {
		// Nothing to adapt — no cascade and no cache budget, or re-fitting
		// reproduced the incumbent's own plan. The drift is real but a
		// re-fit cannot act on it, so adopt the observed regime as the
		// detectors' new baseline: detection re-arms against current
		// traffic instead of re-tripping instantly on drift the controller
		// has already established it cannot fix.
		c.mu.Lock()
		if obs, ok := c.reuse.Observed(); ok {
			c.reuse.SetExpected(obs)
			c.lastExpected = obs
		}
		c.ks.Reset()
		c.clearDriftLocked()
		c.mu.Unlock()
		return
	}
	c.refits.Add(1)
	if c.cfg.MutateCandidate != nil {
		c.cfg.MutateCandidate(cand)
	}

	tag := fmt.Sprintf("adapt-%d", c.canaries.Load()+1)
	if err := c.hooks.StartCanary(tag, cand, c.cfg.CanaryFraction); err != nil {
		c.canaryErrors.Add(1)
		c.mu.Lock()
		c.clearDriftLocked()
		c.mu.Unlock()
		return
	}
	c.canaries.Add(1)
	inc, can, _ := c.hooks.Guards()
	c.mu.Lock()
	c.state = StateCanarying
	c.candidate = cand
	c.canaryTag = tag
	c.canaryStart = time.Now()
	c.baseInc, c.baseCan = inc, can
	c.passStreak, c.failStreak = 0, 0
	c.predSmallFrac, c.havePredSmall = predSmall, havePred
	c.mu.Unlock()
}

// judgeCanary compares the canary's guard metrics against the incumbent
// with hysteresis, promoting or rolling back when a streak completes.
func (c *Controller) judgeCanary(now time.Time) {
	inc, can, ok := c.hooks.Guards()
	if !ok {
		// The canary vanished underneath us (operator deploy / undeploy):
		// abandon the candidate and return to watching.
		c.mu.Lock()
		c.candidate = nil
		c.state = StateIdle
		c.clearDriftLocked()
		c.mu.Unlock()
		return
	}
	c.mu.Lock()
	baseInc, baseCan := c.baseInc, c.baseCan
	start := c.canaryStart
	havePred, predSmall := c.havePredSmall, c.predSmallFrac
	c.mu.Unlock()

	dIncReq := inc.Requests - baseInc.Requests
	dCanReq := can.Requests - baseCan.Requests
	if dCanReq < c.cfg.CanaryMinRequests || dIncReq < c.cfg.CanaryMinRequests {
		if now.Sub(start) > c.cfg.CanaryTimeout {
			c.resolveCanary(false, "timeout: insufficient judgeable traffic")
		}
		return
	}

	pass := true
	if can.errRate(baseCan) > inc.errRate(baseInc)+c.cfg.GuardErrorTol {
		pass = false
	}
	latCeil := time.Duration(float64(inc.P99) * (1 + c.cfg.GuardLatencyTol))
	if can.P99 > latCeil && (c.cfg.SLO <= 0 || can.P99 > c.cfg.SLO) {
		pass = false
	}
	if canHR, ok := can.hitRate(baseCan); ok {
		if incHR, ok2 := inc.hitRate(baseInc); ok2 && canHR < incHR-c.cfg.GuardHitRateSlack {
			pass = false
		}
	} else if _, ok2 := inc.hitRate(baseInc); ok2 {
		// The incumbent serves cache traffic and the candidate serves
		// none at all: the candidate lost its caches (a degenerate plan).
		pass = false
	}
	if havePred {
		if sr, ok := can.smallRate(baseCan); ok && sr > predSmall+c.cfg.GuardSmallRateSlack {
			pass = false
		}
	}
	dCanShed := can.Sheds - baseCan.Sheds
	dIncShed := inc.Sheds - baseInc.Sheds
	if dCanReq > 0 && dIncReq > 0 {
		if float64(dCanShed)/float64(dCanReq) > float64(dIncShed)/float64(dIncReq)+c.cfg.GuardErrorTol {
			pass = false
		}
	}

	c.mu.Lock()
	if pass {
		c.passStreak++
		c.failStreak = 0
	} else {
		c.failStreak++
		c.passStreak = 0
	}
	promote := c.passStreak >= c.cfg.PassStreak
	rollback := c.failStreak >= c.cfg.FailStreak
	c.mu.Unlock()

	if promote {
		c.resolveCanary(true, "")
	} else if rollback {
		c.resolveCanary(false, "guard regression")
	}
}

// resolveCanary finishes a canary: promote adopts the candidate as the
// new incumbent and re-arms the detectors for its regime; rollback
// discards it and enters cooldown. Either way the serving tier re-primes
// admission state across the swap.
func (c *Controller) resolveCanary(promote bool, reason string) {
	if !promote {
		c.mu.Lock()
		c.lastRollbackReason = reason
		c.mu.Unlock()
	}
	if promote {
		if err := c.hooks.Promote(); err != nil {
			c.canaryErrors.Add(1)
			c.mu.Lock()
			c.candidate = nil
			c.state = StateIdle
			c.mu.Unlock()
			return
		}
		c.promotions.Add(1)
		c.mu.Lock()
		if c.candidate != nil {
			c.bindIncumbent(c.candidate)
		}
		c.candidate = nil
		c.state = StateIdle
		c.resetDetectorsLocked()
		c.mu.Unlock()
		return
	}
	if err := c.hooks.Rollback(); err != nil {
		c.canaryErrors.Add(1)
	}
	c.rollbacks.Add(1)
	c.mu.Lock()
	c.candidate = nil
	c.state = StateCooldown
	c.cooldownUntil = time.Now().Add(c.cfg.Cooldown)
	// The environment still looks drifted — the candidate was just bad.
	// Clear the score detectors' accumulated state so the cooldown ends
	// with a fresh confirmation rather than an instant re-trigger, but
	// keep the reservoir: more data makes the next fit better.
	c.clearDriftLocked()
	c.mu.Unlock()
}

// clearDriftLocked drops latched drift flags and resets detector
// accumulators (keeping references/baselines). Caller holds mu.
func (c *Controller) clearDriftLocked() {
	c.keyDrift = false
	c.scoreDrift = false
	c.ph.Reset()
	c.reuse.Reset()
}

// resetDetectorsLocked re-arms everything for a new incumbent regime:
// score references rebuild from post-swap traffic, the reservoir drops
// rows sampled under the old plan. Caller holds mu.
func (c *Controller) resetDetectorsLocked() {
	c.clearDriftLocked()
	c.ks.Reset()
	c.reservoir = c.reservoir[:0]
	c.smalls = c.smalls[:0]
	c.fulls = c.fulls[:0]
	c.resIdx = 0
	c.resFull = false
}

// sameCacheSpecs reports whether two cache plans cache identical IFVs at
// identical capacities (order-insensitive).
func sameCacheSpecs(a, b []weld.CacheSpec) bool {
	if len(a) != len(b) {
		return false
	}
	caps := make(map[int]int, len(a))
	for _, sp := range a {
		caps[sp.IFV] = sp.Capacity
	}
	for _, sp := range b {
		if capa, ok := caps[sp.IFV]; !ok || capa != sp.Capacity {
			return false
		}
	}
	return true
}

// buildDataset assembles a core.Dataset from reservoir rows (no labels —
// re-fits are label-free). Rows whose column kinds can't be concatenated
// are skipped.
func buildDataset(rows []sample, schema []string) (core.Dataset, error) {
	if len(rows) == 0 {
		return core.Dataset{}, fmt.Errorf("adapt: empty reservoir")
	}
	inputs := make(map[string]value.Value, len(schema))
	for _, name := range schema {
		first, ok := rows[0].inputs[name]
		if !ok {
			return core.Dataset{}, fmt.Errorf("adapt: reservoir missing column %q", name)
		}
		switch first.Kind {
		case value.Ints:
			col := make([]int64, 0, len(rows))
			for _, r := range rows {
				v := r.inputs[name]
				if v.Kind != value.Ints || len(v.Ints) == 0 {
					return core.Dataset{}, fmt.Errorf("adapt: reservoir column %q changed kind", name)
				}
				col = append(col, v.Ints[0])
			}
			inputs[name] = value.NewInts(col)
		case value.Floats:
			col := make([]float64, 0, len(rows))
			for _, r := range rows {
				v := r.inputs[name]
				if v.Kind != value.Floats || len(v.Floats) == 0 {
					return core.Dataset{}, fmt.Errorf("adapt: reservoir column %q changed kind", name)
				}
				col = append(col, v.Floats[0])
			}
			inputs[name] = value.NewFloats(col)
		case value.Strings:
			col := make([]string, 0, len(rows))
			for _, r := range rows {
				v := r.inputs[name]
				if v.Kind != value.Strings || len(v.Strings) == 0 {
					return core.Dataset{}, fmt.Errorf("adapt: reservoir column %q changed kind", name)
				}
				col = append(col, v.Strings[0])
			}
			inputs[name] = value.NewStrings(col)
		default:
			return core.Dataset{}, fmt.Errorf("adapt: reservoir column %q has unsupported kind %v", name, first.Kind)
		}
	}
	return core.Dataset{Inputs: inputs}, nil
}

// Snapshot is the controller's exported state for stats and metrics.
type Snapshot struct {
	State          string
	CanaryTag      string
	CanaryFraction float64

	Sampled       int64
	ShadowDropped int64
	ReservoirRows int

	KeyReuseObserved float64
	KeyReuseExpected float64
	ScorePH          float64
	ScoreKS          float64
	KeyDrift         bool
	ScoreDrift       bool

	KeyDriftEvents   int64
	ScoreDriftEvents int64
	Refits           int64
	Canaries         int64
	Promotions       int64
	Rollbacks        int64
	CanaryErrors     int64

	// LastRollback is the most recent rollback's reason ("" before any).
	LastRollback string
}

// Snapshot copies the controller's observable state.
func (c *Controller) Snapshot() Snapshot {
	if c == nil {
		return Snapshot{}
	}
	c.mu.Lock()
	s := Snapshot{
		State:            c.state.String(),
		KeyReuseObserved: c.lastObserved,
		KeyReuseExpected: c.lastExpected,
		ScorePH:          c.ph.Score(),
		ScoreKS:          c.ks.Statistic(),
		KeyDrift:         c.keyDrift,
		ScoreDrift:       c.scoreDrift,
		ReservoirRows:    len(c.reservoir),
	}
	s.LastRollback = c.lastRollbackReason
	if c.state == StateCanarying {
		s.CanaryTag = c.canaryTag
		s.CanaryFraction = c.cfg.CanaryFraction
	}
	c.mu.Unlock()
	s.Sampled = c.sampled.Load()
	s.ShadowDropped = c.dropped.Load()
	s.KeyDriftEvents = c.keyDriftEvents.Load()
	s.ScoreDriftEvents = c.scoreDriftEvents.Load()
	s.Refits = c.refits.Load()
	s.Canaries = c.canaries.Load()
	s.Promotions = c.promotions.Load()
	s.Rollbacks = c.rollbacks.Load()
	s.CanaryErrors = c.canaryErrors.Load()
	return s
}
