package cascade

import (
	"context"
	"fmt"
	"sort"

	"willump/internal/feature"
	"willump/internal/model"
	"willump/internal/value"
	"willump/internal/weld"
)

// OracleSelect exhaustively evaluates every non-trivial IFV subset as a
// candidate efficient set, trains a small model for each, and returns the
// subset minimizing expected per-row serving cost while meeting the accuracy
// target on the validation set. It is the "Oracle" column of Table 8 and is
// exponential in the number of IFVs, which is why Willump approximates it
// with Algorithm 1.
func OracleSelect(ctx context.Context, prog *weld.Program, fullModel model.Model,
	trainInputs map[string]value.Value, trainX feature.Matrix, trainY []float64,
	validInputs map[string]value.Value, validY []float64, accuracyTarget float64) ([]int, error) {
	if fullModel.Task() != model.Classification {
		return nil, fmt.Errorf("cascade: oracle selection requires a classifier")
	}
	stats, err := ComputeStats(prog, fullModel, trainX, trainY)
	if err != nil {
		return nil, err
	}
	n := len(stats)
	if n > 16 {
		return nil, fmt.Errorf("cascade: oracle selection infeasible for %d IFVs", n)
	}
	var totalCost float64
	for _, s := range stats {
		totalCost += s.Cost
	}

	trainRun, err := prog.NewRun(ctx, trainInputs)
	if err != nil {
		return nil, err
	}
	validRun, err := prog.NewRun(ctx, validInputs)
	if err != nil {
		return nil, err
	}
	fullValidX, err := validRun.Matrix(prog.AllIFVs())
	if err != nil {
		return nil, err
	}
	fullP := fullModel.Predict(fullValidX)
	fullAcc := model.Accuracy(fullP, validY)

	best := []int(nil)
	bestCost := totalCost // serving cost of the no-cascade baseline
	for mask := 1; mask < (1<<n)-1; mask++ {
		var subset []int
		var subsetCost float64
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				subset = append(subset, stats[i].Index)
				subsetCost += stats[i].Cost
			}
		}
		sort.Ints(subset)
		effTrainX, err := trainRun.Matrix(subset)
		if err != nil {
			return nil, err
		}
		small := fullModel.Fresh()
		if err := small.Train(effTrainX, trainY); err != nil {
			return nil, err
		}
		effValidX, err := validRun.Matrix(subset)
		if err != nil {
			return nil, err
		}
		smallP := small.Predict(effValidX)
		// Lowest valid threshold for this subset, as in selectThreshold.
		for _, t := range thresholdCandidates {
			mixed := make([]float64, len(smallP))
			confident := 0
			for i := range mixed {
				if model.Confidence(smallP[i]) > t {
					mixed[i] = smallP[i]
					confident++
				} else {
					mixed[i] = fullP[i]
				}
			}
			if model.Accuracy(mixed, validY) < fullAcc-accuracyTarget {
				continue
			}
			// Expected serving cost: efficient features always, remaining
			// features for the cascaded fraction.
			cascFrac := 1 - float64(confident)/float64(len(smallP))
			expected := subsetCost + cascFrac*(totalCost-subsetCost)
			if expected < bestCost {
				bestCost = expected
				best = subset
			}
			break
		}
	}
	if best == nil {
		return nil, fmt.Errorf("cascade: oracle found no subset meeting the accuracy target")
	}
	return best, nil
}
