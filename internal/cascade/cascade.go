package cascade

import (
	"context"
	"fmt"
	"math"
	"time"

	"willump/internal/feature"
	"willump/internal/model"
	"willump/internal/trace"
	"willump/internal/value"
	"willump/internal/weld"
)

// Config controls cascade construction.
type Config struct {
	// AccuracyTarget is the maximum allowed validation accuracy loss versus
	// the full model (paper default in the evaluation: 0.001, i.e. < 0.1%).
	AccuracyTarget float64
	// Gamma is the stopping constant of Algorithm 1: selection stops once
	// the next IFV's cost-effectiveness falls below Gamma times the running
	// average of the efficient set. Default 0.25.
	Gamma float64
	// DisableGammaRule turns off the stopping rule (the section 6.4
	// ablation), keeping only the half-total-cost budget.
	DisableGammaRule bool
	// Selection overrides the IFV selection strategy (for the Table 8
	// comparison). Nil selects Algorithm 1.
	Selection func(stats []IFVStat) []int
}

func (c Config) withDefaults() Config {
	if c.AccuracyTarget <= 0 {
		c.AccuracyTarget = 0.001
	}
	if c.Gamma <= 0 {
		c.Gamma = 0.25
	}
	return c
}

// Approx is the approximate-model half of a cascade: the small model trained
// on the efficient IFVs. It is also the filter model of the top-K
// optimization (section 4.3), which shares stages 1-3 of cascade
// construction but needs no confidence threshold.
type Approx struct {
	Prog *weld.Program
	// Small is the approximate model, trained on the efficient IFVs'
	// concatenation.
	Small model.Model
	// Efficient and Rest partition the program's IFV indices.
	Efficient []int
	Rest      []int
	// Stats are the per-IFV statistics selection was based on.
	Stats []IFVStat
}

// BuildApprox runs cascade stages 1-3: compute IFV statistics, select the
// efficient set, and train the small model from the efficient feature
// vectors. fullModel must already be trained on the full feature matrix x.
func BuildApprox(ctx context.Context, prog *weld.Program, fullModel model.Model, trainInputs map[string]value.Value, x feature.Matrix, y []float64, cfg Config) (*Approx, error) {
	cfg = cfg.withDefaults()
	stats, err := ComputeStats(prog, fullModel, x, y)
	if err != nil {
		return nil, err
	}
	var efficient []int
	switch {
	case cfg.Selection != nil:
		efficient = cfg.Selection(stats)
	case cfg.DisableGammaRule:
		efficient = EfficientIFVs(stats, 0)
	default:
		efficient = EfficientIFVs(stats, cfg.Gamma)
	}
	if len(efficient) == 0 || len(efficient) == len(stats) {
		return nil, fmt.Errorf("cascade: degenerate efficient set (%d of %d IFVs)", len(efficient), len(stats))
	}
	run, err := prog.NewRun(ctx, trainInputs)
	if err != nil {
		return nil, err
	}
	effX, err := run.Matrix(efficient)
	if err != nil {
		return nil, fmt.Errorf("cascade: computing efficient training features: %w", err)
	}
	small := fullModel.Fresh()
	if err := small.Train(effX, y); err != nil {
		return nil, fmt.Errorf("cascade: training small model: %w", err)
	}
	return &Approx{
		Prog:      prog,
		Small:     small,
		Efficient: efficient,
		Rest:      Complement(stats, efficient),
		Stats:     stats,
	}, nil
}

// Cascade is a deployed end-to-end cascade: small model on efficient IFVs,
// full model on everything, and the confidence threshold that routes between
// them.
type Cascade struct {
	*Approx
	// Full is the full model over the complete feature vector.
	Full model.Model
	// Threshold is the cascade threshold t_c: a small-model prediction is
	// returned when its confidence strictly exceeds Threshold. A threshold
	// above 1 sends every input to the full model.
	Threshold float64
	// FullAccuracy and CascadeAccuracy are the validation accuracies
	// recorded during threshold selection.
	FullAccuracy    float64
	CascadeAccuracy float64
}

// thresholdCandidates are the integer multiples of 0.1 the paper restricts
// thresholds to, avoiding overfitting to the validation set. Confidences lie
// in [0.5, 1], so candidates below 0.5 are redundant with 0.5.
var thresholdCandidates = []float64{0.5, 0.6, 0.7, 0.8, 0.9, 1.0}

// Train builds a complete cascade: BuildApprox plus threshold selection on
// the validation set (cascade stage 4). fullModel must be a trained
// classifier.
func Train(ctx context.Context, prog *weld.Program, fullModel model.Model,
	trainInputs map[string]value.Value, trainX feature.Matrix, trainY []float64,
	validInputs map[string]value.Value, validY []float64, cfg Config) (*Cascade, error) {
	cfg = cfg.withDefaults()
	if fullModel.Task() != model.Classification {
		return nil, fmt.Errorf("cascade: end-to-end cascades require a classification model")
	}
	approx, err := BuildApprox(ctx, prog, fullModel, trainInputs, trainX, trainY, cfg)
	if err != nil {
		return nil, err
	}
	c := &Cascade{Approx: approx, Full: fullModel}
	if err := c.selectThreshold(ctx, validInputs, validY, cfg.AccuracyTarget); err != nil {
		return nil, err
	}
	return c, nil
}

// selectThreshold implements cascade stage 4: the threshold is the lowest
// candidate such that routing confident inputs to the small model keeps
// validation accuracy within the target of the full model's accuracy.
func (c *Cascade) selectThreshold(ctx context.Context, validInputs map[string]value.Value, validY []float64, target float64) error {
	run, err := c.Prog.NewRun(ctx, validInputs)
	if err != nil {
		return err
	}
	effX, err := run.Matrix(c.Efficient)
	if err != nil {
		return err
	}
	fullX, err := run.Matrix(c.Prog.AllIFVs())
	if err != nil {
		return err
	}
	smallP := c.Small.Predict(effX)
	fullP := c.Full.Predict(fullX)
	c.FullAccuracy = model.Accuracy(fullP, validY)

	chosen := math.Inf(1)
	chosenAcc := c.FullAccuracy
	for _, t := range thresholdCandidates {
		mixed := make([]float64, len(smallP))
		for i := range mixed {
			if model.Confidence(smallP[i]) > t {
				mixed[i] = smallP[i]
			} else {
				mixed[i] = fullP[i]
			}
		}
		acc := model.Accuracy(mixed, validY)
		if acc >= c.FullAccuracy-target {
			chosen = t
			chosenAcc = acc
			break // candidates ascend; the first valid is the lowest
		}
	}
	c.Threshold = chosen
	c.CascadeAccuracy = chosenAcc
	return nil
}

// Restore reassembles a deployed cascade from persisted state (an
// artifact): the decoded approximate model, the trained full model, and the
// threshold selected at optimization time. No training or validation data
// is touched — the counterpart of Train for the deploy phase.
func Restore(approx *Approx, full model.Model, threshold, fullAccuracy, cascadeAccuracy float64) *Cascade {
	return &Cascade{
		Approx:          approx,
		Full:            full,
		Threshold:       threshold,
		FullAccuracy:    fullAccuracy,
		CascadeAccuracy: cascadeAccuracy,
	}
}

// ServeStats reports how a batch was served.
type ServeStats struct {
	// Total rows in the batch.
	Total int
	// SmallOnly rows were answered by the small model alone.
	SmallOnly int
	// Cascaded rows required the full model.
	Cascaded int
}

// PredictBatch serves a batch through the cascade (cascade stage 5): compute
// efficient IFVs, predict with the small model, return confident predictions
// directly, and cascade only the unconfident rows to the full model —
// computing the remaining IFVs for those rows alone.
func (c *Cascade) PredictBatch(ctx context.Context, inputs map[string]value.Value) ([]float64, ServeStats, error) {
	return c.PredictBatchThreshold(ctx, inputs, c.Threshold)
}

// PredictBatchThreshold serves a batch using an explicit threshold (the
// Figure 7 threshold sweep). The run and its hard-row sub-run execute on
// pooled states with shared feature buffers: predictions are extracted
// before both are recycled, so the steady-state batch path allocates only
// its result and routing slices.
func (c *Cascade) PredictBatchThreshold(ctx context.Context, inputs map[string]value.Value, threshold float64) ([]float64, ServeStats, error) {
	run, err := c.Prog.NewRun(ctx, inputs)
	if err != nil {
		return nil, ServeStats{}, err
	}
	defer run.Close()
	tr := trace.FromContext(ctx)
	var t0 time.Time
	if tr != nil {
		t0 = time.Now()
	}
	effX, err := run.MatrixShared(c.Efficient)
	if err != nil {
		return nil, ServeStats{}, err
	}
	out := c.Small.Predict(effX)
	if tr != nil {
		tr.Record(trace.StageCascadeSmall, t0)
	}
	stats := ServeStats{Total: len(out)}
	hardRows := make([]int, 0, len(out)) // one allocation instead of log2(n) regrows
	for i, p := range out {
		if model.Confidence(p) > threshold {
			stats.SmallOnly++
		} else {
			hardRows = append(hardRows, i)
		}
	}
	stats.Cascaded = len(hardRows)
	if len(hardRows) > 0 {
		if tr != nil {
			t0 = time.Now()
		}
		sub := run.SubsetRun(hardRows)
		defer sub.Close()
		fullX, err := sub.MatrixShared(c.Prog.AllIFVs())
		if err != nil {
			return nil, ServeStats{}, err
		}
		fullP := c.Full.Predict(fullX)
		for k, row := range hardRows {
			out[row] = fullP[k]
		}
		if tr != nil {
			tr.Record(trace.StageCascadeResume, t0)
		}
	}
	return out, stats, nil
}

// PredictPoint serves one example-at-a-time query through the cascade.
func (c *Cascade) PredictPoint(ctx context.Context, inputs map[string]value.Value) (float64, error) {
	return c.PredictPointThreshold(ctx, inputs, c.Threshold)
}

// PredictPointThreshold serves one example-at-a-time query using an
// explicit confidence threshold (the serving layer's per-request override).
// The query executes on the pooled point path: efficient IFVs materialize
// into the state's feature-vector buffer, the small model scores in place,
// and only unconfident queries resume the same state to compute the
// remaining IFVs — zero heap allocations once warm.
func (c *Cascade) PredictPointThreshold(ctx context.Context, inputs map[string]value.Value, threshold float64) (float64, error) {
	run, err := c.Prog.NewRun(ctx, inputs)
	if err != nil {
		return 0, err
	}
	defer run.Close()
	if run.Len() != 1 {
		return 0, fmt.Errorf("cascade: point query got %d rows", run.Len())
	}
	s := model.GetScratch()
	defer model.PutScratch(s)
	tr := trace.FromContext(ctx)
	var t0 time.Time
	if tr != nil {
		t0 = time.Now()
	}
	effX, err := run.PointMatrix(c.Efficient)
	if err != nil {
		return 0, err
	}
	p := model.ScoreRow(c.Small, effX, 0, s)
	if tr != nil {
		tr.Record(trace.StageCascadeSmall, t0)
	}
	if model.Confidence(p) > threshold {
		return p, nil
	}
	if tr != nil {
		t0 = time.Now()
	}
	fullX, err := run.PointMatrix(c.Prog.AllIFVs())
	if err != nil {
		return 0, err
	}
	p = model.ScoreRow(c.Full, fullX, 0, s)
	if tr != nil {
		tr.Record(trace.StageCascadeResume, t0)
	}
	return p, nil
}

// SmallOnlyPredict runs only the small model over a batch (the orange-X
// point of Figure 7 and the first stage of top-K filtering).
func (a *Approx) SmallOnlyPredict(ctx context.Context, inputs map[string]value.Value) ([]float64, error) {
	run, err := a.Prog.NewRun(ctx, inputs)
	if err != nil {
		return nil, err
	}
	defer run.Close()
	effX, err := run.MatrixShared(a.Efficient)
	if err != nil {
		return nil, err
	}
	return a.Small.Predict(effX), nil
}
