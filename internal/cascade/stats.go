// Package cascade implements Willump's automatic end-to-end cascades (paper
// section 4.2): computing per-IFV prediction importances and computational
// costs, selecting the efficient IFV set (Algorithm 1), training the small
// approximate model, choosing the cascade threshold against a user-specified
// accuracy target, and serving data inputs through the small-model/full-model
// cascade. The same machinery (minus the threshold) builds the top-K filter
// models of section 4.3.
package cascade

import (
	"fmt"
	"sort"

	"willump/internal/feature"
	"willump/internal/model"
	"willump/internal/weld"
)

// IFVStat pairs an independent feature vector with its two cascade
// statistics: prediction importance and computational cost.
type IFVStat struct {
	// Index into the program's IFV list.
	Index int
	// Importance is the summed prediction importance of the IFV's features.
	Importance float64
	// Cost is the measured per-row cost (seconds) of the IFV's generator.
	Cost float64
}

// CostEffectiveness returns importance per unit cost, the quantity
// Algorithm 1 ranks by. Zero-cost IFVs are maximally cost-effective.
func (s IFVStat) CostEffectiveness() float64 {
	if s.Cost <= 0 {
		if s.Importance <= 0 {
			return 0
		}
		return inf
	}
	return s.Importance / s.Cost
}

const inf = 1e308

// ComputeStats computes per-IFV statistics for a fitted program and trained
// model, using the training matrix for importance estimation.
//
// Importances follow the paper's model-specific rules: native importances
// for linear models (|coefficient| x mean |value|) and ensembles (split
// gain); for models with no importance metric (the MLP), a proxy GBDT is
// trained on the same data and its importances are used instead.
func ComputeStats(prog *weld.Program, m model.Model, x feature.Matrix, y []float64) ([]IFVStat, error) {
	if len(prog.Spans) != len(prog.A.IFVs) {
		return nil, fmt.Errorf("cascade: program has no column spans; call Fit first")
	}
	imp, err := featureImportances(m, x, y)
	if err != nil {
		return nil, err
	}
	if len(imp) != x.Cols() {
		return nil, fmt.Errorf("cascade: %d importances for %d features", len(imp), x.Cols())
	}
	stats := make([]IFVStat, len(prog.A.IFVs))
	for i := range prog.A.IFVs {
		span := prog.Spans[i]
		var total float64
		for c := span.Start; c < span.End; c++ {
			total += imp[c]
		}
		stats[i] = IFVStat{
			Index:      i,
			Importance: total,
			Cost:       prog.Prof.IFVCost(prog.A, i),
		}
	}
	return stats, nil
}

// featureImportances returns per-feature importances for the model, training
// a proxy GBDT when the model has none.
func featureImportances(m model.Model, x feature.Matrix, y []float64) ([]float64, error) {
	if imp, ok := m.(model.Importancer); ok {
		return imp.Importances(), nil
	}
	proxy := model.NewGBDT(model.GBDTConfig{
		Task:     m.Task(),
		Trees:    20,
		MaxDepth: 4,
		Seed:     7,
	})
	if err := proxy.Train(x, y); err != nil {
		return nil, fmt.Errorf("cascade: training proxy GBDT for importances: %w", err)
	}
	return proxy.Importances(), nil
}

// EfficientIFVs implements Algorithm 1 of the paper: greedily add the most
// cost-effective IFVs to the efficient set, skipping any IFV that would push
// the set's cost past half the total cost, and stopping once the next IFV is
// substantially less cost-effective (below gamma times the running average
// cost-effectiveness of the set). It returns the selected IFV indices in
// ascending order.
func EfficientIFVs(stats []IFVStat, gamma float64) []int {
	queue := make([]IFVStat, len(stats))
	copy(queue, stats)
	sort.Slice(queue, func(i, j int) bool {
		ci, cj := queue[i].CostEffectiveness(), queue[j].CostEffectiveness()
		if ci != cj {
			return ci > cj
		}
		return queue[i].Index < queue[j].Index
	})
	var totalCost float64
	for _, s := range stats {
		totalCost += s.Cost
	}
	var (
		selected      []int
		selImportance float64
		selCost       float64
	)
	for _, f := range queue {
		avgCE := 0.0
		if selCost > 0 {
			avgCE = selImportance / selCost
		}
		if f.CostEffectiveness() < gamma*avgCE {
			break
		}
		if selCost+f.Cost > totalCost/2 {
			continue
		}
		selected = append(selected, f.Index)
		selImportance += f.Importance
		selCost += f.Cost
	}
	sort.Ints(selected)
	return selected
}

// SelectMostImportant is the "Important" baseline of Table 8: greedily add
// by raw importance, subject to the same half-total-cost budget.
func SelectMostImportant(stats []IFVStat) []int {
	queue := make([]IFVStat, len(stats))
	copy(queue, stats)
	sort.Slice(queue, func(i, j int) bool {
		if queue[i].Importance != queue[j].Importance {
			return queue[i].Importance > queue[j].Importance
		}
		return queue[i].Index < queue[j].Index
	})
	var totalCost float64
	for _, s := range stats {
		totalCost += s.Cost
	}
	var selected []int
	var selCost float64
	for _, f := range queue {
		if selCost+f.Cost > totalCost/2 {
			continue
		}
		selected = append(selected, f.Index)
		selCost += f.Cost
	}
	sort.Ints(selected)
	return selected
}

// SelectCheapest is the "Cheap" baseline of Table 8: greedily add the
// cheapest IFVs, subject to the same half-total-cost budget.
func SelectCheapest(stats []IFVStat) []int {
	queue := make([]IFVStat, len(stats))
	copy(queue, stats)
	sort.Slice(queue, func(i, j int) bool {
		if queue[i].Cost != queue[j].Cost {
			return queue[i].Cost < queue[j].Cost
		}
		return queue[i].Index < queue[j].Index
	})
	var totalCost float64
	for _, s := range stats {
		totalCost += s.Cost
	}
	var selected []int
	var selCost float64
	for _, f := range queue {
		if selCost+f.Cost > totalCost/2 {
			continue
		}
		selected = append(selected, f.Index)
		selCost += f.Cost
	}
	sort.Ints(selected)
	return selected
}

// Complement returns the IFV indices not in the selected set.
func Complement(stats []IFVStat, selected []int) []int {
	in := make(map[int]bool, len(selected))
	for _, i := range selected {
		in[i] = true
	}
	var rest []int
	for _, s := range stats {
		if !in[s.Index] {
			rest = append(rest, s.Index)
		}
	}
	sort.Ints(rest)
	return rest
}
