package cascade

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"willump/internal/fixture"
	"willump/internal/model"
	"willump/internal/value"
)

// pointInput extracts row i of a fixture split as a single-row input map.
func pointInput(d fixture.Data, i int) map[string]value.Value {
	out := make(map[string]value.Value, len(d.Inputs))
	for k, v := range d.Inputs {
		out[k] = v.Gather([]int{i})
	}
	return out
}

func TestEfficientIFVsAlgorithm1(t *testing.T) {
	// IFV 0: cheap and important (CE 10); IFV 1: expensive, some importance
	// (CE 0.2); IFV 2: cheap, low importance (CE 2).
	stats := []IFVStat{
		{Index: 0, Importance: 10, Cost: 1},
		{Index: 1, Importance: 2, Cost: 10},
		{Index: 2, Importance: 1, Cost: 0.5},
	}
	got := EfficientIFVs(stats, 0.25)
	// Total cost 11.5, budget 5.75. Queue by CE: 0 (10), 2 (2), 1 (0.2).
	// Add 0 (cost 1). avgCE=10; IFV 2 CE=2 < 0.25*10=2.5 -> stop.
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("EfficientIFVs = %v, want [0]", got)
	}
	// Without the gamma rule, IFV 2 joins (budget still allows it) but IFV 1
	// would blow the half-cost budget.
	got = EfficientIFVs(stats, 0)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("EfficientIFVs(gamma=0) = %v, want [0 2]", got)
	}
}

func TestEfficientIFVsHalfCostBudget(t *testing.T) {
	stats := []IFVStat{
		{Index: 0, Importance: 100, Cost: 6}, // CE ~16.7 but over half of total 10
		{Index: 1, Importance: 1, Cost: 4},
	}
	got := EfficientIFVs(stats, 0.25)
	// IFV 0 costs 6 > 10/2: skipped (continue). IFV 1 costs 4 <= 5: added.
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("EfficientIFVs = %v, want [1] (half-cost rule skips 0)", got)
	}
}

func TestEfficientIFVsZeroCost(t *testing.T) {
	stats := []IFVStat{
		{Index: 0, Importance: 1, Cost: 0},
		{Index: 1, Importance: 5, Cost: 10},
	}
	got := EfficientIFVs(stats, 0.25)
	// The free IFV is infinitely cost-effective and within budget.
	found := false
	for _, i := range got {
		if i == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("EfficientIFVs = %v, want to include free IFV 0", got)
	}
}

func TestSelectionBaselines(t *testing.T) {
	stats := []IFVStat{
		{Index: 0, Importance: 10, Cost: 4},
		{Index: 1, Importance: 5, Cost: 1},
		{Index: 2, Importance: 1, Cost: 4},
	}
	// Total 9, budget 4.5.
	imp := SelectMostImportant(stats)
	if len(imp) != 1 || imp[0] != 0 {
		t.Errorf("SelectMostImportant = %v, want [0]", imp)
	}
	cheap := SelectCheapest(stats)
	// Cheapest: 1 (1), then 0 and 2 both cost 4 -> 1+4 > 4.5 skip both.
	if len(cheap) != 1 || cheap[0] != 1 {
		t.Errorf("SelectCheapest = %v, want [1]", cheap)
	}
	rest := Complement(stats, imp)
	if len(rest) != 2 || rest[0] != 1 || rest[1] != 2 {
		t.Errorf("Complement = %v, want [1 2]", rest)
	}
}

// Property: Algorithm 1's efficient set always respects the half-total-cost
// budget and never selects duplicates.
func TestEfficientIFVsInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		stats := make([]IFVStat, n)
		var total float64
		for i := range stats {
			stats[i] = IFVStat{
				Index:      i,
				Importance: rng.Float64() * 10,
				Cost:       rng.Float64()*5 + 0.01,
			}
			total += stats[i].Cost
		}
		sel := EfficientIFVs(stats, rng.Float64())
		seen := make(map[int]bool)
		var selCost float64
		for _, i := range sel {
			if seen[i] || i < 0 || i >= n {
				return false
			}
			seen[i] = true
			selCost += stats[i].Cost
		}
		return selCost <= total/2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func newFixture(t *testing.T) *fixture.Classification {
	t.Helper()
	fx, err := fixture.NewClassification(11, 1500, 600, 600, 0.7, 400)
	if err != nil {
		t.Fatalf("fixture: %v", err)
	}
	if err := fx.Check(); err != nil {
		t.Fatalf("fixture: %v", err)
	}
	return fx
}

func TestComputeStatsCostsAndImportances(t *testing.T) {
	fx := newFixture(t)
	stats, err := ComputeStats(fx.Prog, fx.Model, fx.TrainX, fx.Train.Y)
	if err != nil {
		t.Fatalf("ComputeStats: %v", err)
	}
	if len(stats) != 2 {
		t.Fatalf("stats = %d IFVs, want 2", len(stats))
	}
	// The heavy generator must be measurably more expensive.
	if stats[1].Cost <= stats[0].Cost {
		t.Errorf("heavy IFV cost %v <= cheap IFV cost %v", stats[1].Cost, stats[0].Cost)
	}
	// Both carry importance; the cheap one decides most labels.
	if stats[0].Importance <= 0 || stats[1].Importance <= 0 {
		t.Errorf("importances = %+v, want both positive", stats)
	}
	if stats[0].Importance <= stats[1].Importance {
		t.Errorf("cheap importance %v should exceed heavy %v (70%% easy rows)",
			stats[0].Importance, stats[1].Importance)
	}
}

func TestBuildApproxSelectsCheapIFV(t *testing.T) {
	fx := newFixture(t)
	approx, err := BuildApprox(context.Background(), fx.Prog, fx.Model, fx.Train.Inputs, fx.TrainX, fx.Train.Y, Config{})
	if err != nil {
		t.Fatalf("BuildApprox: %v", err)
	}
	if len(approx.Efficient) != 1 || approx.Efficient[0] != 0 {
		t.Errorf("Efficient = %v, want [0] (the cheap, important IFV)", approx.Efficient)
	}
	if len(approx.Rest) != 1 || approx.Rest[0] != 1 {
		t.Errorf("Rest = %v, want [1]", approx.Rest)
	}
	if approx.Small.NumFeatures() != 2 {
		t.Errorf("small model trained on %d features, want 2", approx.Small.NumFeatures())
	}
}

func TestTrainCascadeMeetsAccuracyTarget(t *testing.T) {
	fx := newFixture(t)
	c, err := Train(context.Background(), fx.Prog, fx.Model, fx.Train.Inputs, fx.TrainX, fx.Train.Y,
		fx.Valid.Inputs, fx.Valid.Y, Config{AccuracyTarget: 0.01})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if c.CascadeAccuracy < c.FullAccuracy-0.01 {
		t.Errorf("cascade accuracy %.4f below target (full %.4f)", c.CascadeAccuracy, c.FullAccuracy)
	}
	// Evaluate on held-out test data: accuracy loss should stay small and a
	// meaningful fraction should be served by the small model.
	preds, stats, err := c.PredictBatch(context.Background(), fx.Test.Inputs)
	if err != nil {
		t.Fatalf("PredictBatch: %v", err)
	}
	fullX, err := fx.Prog.RunBatch(context.Background(), fx.Test.Inputs)
	if err != nil {
		t.Fatal(err)
	}
	fullAcc := model.Accuracy(fx.Model.Predict(fullX), fx.Test.Y)
	cascAcc := model.Accuracy(preds, fx.Test.Y)
	if cascAcc < fullAcc-0.05 {
		t.Errorf("test cascade accuracy %.4f far below full %.4f", cascAcc, fullAcc)
	}
	if !math.IsInf(c.Threshold, 1) && stats.SmallOnly == 0 {
		t.Error("cascade never used the small model despite a finite threshold")
	}
	if stats.Total != stats.SmallOnly+stats.Cascaded {
		t.Errorf("stats don't add up: %+v", stats)
	}
}

func TestCascadeThresholdSemantics(t *testing.T) {
	fx := newFixture(t)
	c, err := Train(context.Background(), fx.Prog, fx.Model, fx.Train.Inputs, fx.TrainX, fx.Train.Y,
		fx.Valid.Inputs, fx.Valid.Y, Config{AccuracyTarget: 0.01})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	// Threshold above 1: every row cascades; predictions equal the full model.
	preds, stats, err := c.PredictBatchThreshold(context.Background(), fx.Test.Inputs, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SmallOnly != 0 || stats.Cascaded != stats.Total {
		t.Errorf("threshold 1.5 should cascade everything: %+v", stats)
	}
	fullX, err := fx.Prog.RunBatch(context.Background(), fx.Test.Inputs)
	if err != nil {
		t.Fatal(err)
	}
	fullP := fx.Model.Predict(fullX)
	for i := range preds {
		if preds[i] != fullP[i] {
			t.Fatalf("row %d: cascade-all prediction %v != full %v", i, preds[i], fullP[i])
		}
	}
	// Threshold 0 (below min confidence 0.5): every row is small-only.
	_, statsZero, err := c.PredictBatchThreshold(context.Background(), fx.Test.Inputs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if statsZero.Cascaded != 0 {
		t.Errorf("threshold 0 should never cascade: %+v", statsZero)
	}
}

func TestCascadeReducesHeavyLookups(t *testing.T) {
	fx := newFixture(t)
	c, err := Train(context.Background(), fx.Prog, fx.Model, fx.Train.Inputs, fx.TrainX, fx.Train.Y,
		fx.Valid.Inputs, fx.Valid.Y, Config{AccuracyTarget: 0.01})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if math.IsInf(c.Threshold, 1) {
		t.Skip("threshold selection chose never-small; no reduction to measure")
	}
	before := fx.HeavyTable.Requests()
	_, stats, err := c.PredictBatch(context.Background(), fx.Test.Inputs)
	if err != nil {
		t.Fatal(err)
	}
	heavyLookups := fx.HeavyTable.Requests() - before
	if stats.SmallOnly > 0 && heavyLookups >= int64(stats.Total) {
		t.Errorf("heavy lookups = %d for %d rows with %d small-only; cascade did not skip work",
			heavyLookups, stats.Total, stats.SmallOnly)
	}
}

func TestPredictPoint(t *testing.T) {
	fx := newFixture(t)
	c, err := Train(context.Background(), fx.Prog, fx.Model, fx.Train.Inputs, fx.TrainX, fx.Train.Y,
		fx.Valid.Inputs, fx.Valid.Y, Config{AccuracyTarget: 0.01})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	one := pointInput(fx.Test, 0)
	p, err := c.PredictPoint(context.Background(), one)
	if err != nil {
		t.Fatalf("PredictPoint: %v", err)
	}
	if p < 0 || p > 1 {
		t.Errorf("point prediction %v outside [0,1]", p)
	}
}

func TestTrainRejectsRegression(t *testing.T) {
	fx := newFixture(t)
	reg := model.NewGBDT(model.GBDTConfig{Task: model.Regression})
	_, err := Train(context.Background(), fx.Prog, reg, fx.Train.Inputs, fx.TrainX, fx.Train.Y,
		fx.Valid.Inputs, fx.Valid.Y, Config{})
	if err == nil {
		t.Error("want error training a cascade on a regression model")
	}
}

func TestOracleSelectFindsValidSubset(t *testing.T) {
	fx := newFixture(t)
	subset, err := OracleSelect(context.Background(), fx.Prog, fx.Model, fx.Train.Inputs, fx.TrainX, fx.Train.Y,
		fx.Valid.Inputs, fx.Valid.Y, 0.01)
	if err != nil {
		t.Fatalf("OracleSelect: %v", err)
	}
	if len(subset) == 0 || len(subset) >= 2 {
		t.Errorf("oracle subset = %v, want exactly one of two IFVs", subset)
	}
	// The oracle should agree with Algorithm 1 here: the cheap IFV.
	if subset[0] != 0 {
		t.Errorf("oracle picked %v, expected the cheap IFV [0]", subset)
	}
}

func TestThresholdRobustAcrossValidationSets(t *testing.T) {
	// Section 6.4: choose threshold on one validation set, evaluate accuracy
	// on another; loss must stay within the target band (plus sampling
	// slack).
	fx := newFixture(t)
	c, err := Train(context.Background(), fx.Prog, fx.Model, fx.Train.Inputs, fx.TrainX, fx.Train.Y,
		fx.Valid.Inputs, fx.Valid.Y, Config{AccuracyTarget: 0.01})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	preds, _, err := c.PredictBatch(context.Background(), fx.Test.Inputs)
	if err != nil {
		t.Fatal(err)
	}
	fullX, err := fx.Prog.RunBatch(context.Background(), fx.Test.Inputs)
	if err != nil {
		t.Fatal(err)
	}
	fullAcc := model.Accuracy(fx.Model.Predict(fullX), fx.Test.Y)
	cascAcc := model.Accuracy(preds, fx.Test.Y)
	if cascAcc < fullAcc-0.05 {
		t.Errorf("held-out accuracy %.4f not robust vs full %.4f", cascAcc, fullAcc)
	}
}
