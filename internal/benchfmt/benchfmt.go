// Package benchfmt is the shared BENCH_<rev>.json trajectory format: one
// row per workload or load scenario, tracked across PRs so performance and
// SLO drift is visible in review. Both willump-bench (micro/perf workloads)
// and willump-loadgen (open-loop serving scenarios) write it, and both
// support a warn-only comparison against a committed baseline file.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"
)

// Row is one workload's measurement. The perf fields (ns/op, allocs) come
// from testing.Benchmark-style loops; the loadgen fields (request/error
// counts, offered vs achieved QPS) are zero and omitted for perf rows, so
// files written before the loadgen subsystem decode and re-encode
// unchanged.
type Row struct {
	Workload    string  `json:"workload"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	P50Ns       int64   `json:"p50_ns"`
	P99Ns       int64   `json:"p99_ns"`
	P999Ns      int64   `json:"p999_ns,omitempty"`

	// Load-scenario extensions (willump-loadgen): for these rows NsPerOp is
	// the mean end-to-end latency and the quantiles are measured from each
	// request's scheduled start (coordinated-omission corrected).
	Requests    int64   `json:"requests,omitempty"`
	Errors      int64   `json:"errors,omitempty"`
	Overloaded  int64   `json:"overloaded,omitempty"`
	Degraded    int64   `json:"degraded,omitempty"`
	OfferedQPS  float64 `json:"offered_qps,omitempty"`
	AchievedQPS float64 `json:"achieved_qps,omitempty"`
}

// File is the BENCH_<rev>.json schema.
type File struct {
	Revision  string `json:"revision"`
	Timestamp string `json:"timestamp"`
	Rows      []Row  `json:"workloads"`
}

// Path returns dir/BENCH_<rev>.json.
func Path(dir, rev string) string {
	return filepath.Join(dir, fmt.Sprintf("BENCH_%s.json", rev))
}

// Write records rows as BENCH_<rev>.json in dir and returns the path.
func Write(dir, rev string, rows []Row) (string, error) {
	path := Path(dir, rev)
	f := File{
		Revision:  rev,
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Rows:      rows,
	}
	if err := writeFile(path, f); err != nil {
		return "", err
	}
	return path, nil
}

// Append merges rows into an existing BENCH file, replacing rows whose
// workload name matches (so re-running a scenario updates its row instead
// of duplicating it) and appending the rest. A missing file is created with
// revision rev.
func Append(path, rev string, rows []Row) error {
	f, err := Read(path)
	if err != nil {
		if !os.IsNotExist(err) {
			return err
		}
		f = File{Revision: rev}
	}
	f.Timestamp = time.Now().UTC().Format(time.RFC3339)
	byName := make(map[string]int, len(f.Rows))
	for i, r := range f.Rows {
		byName[r.Workload] = i
	}
	for _, r := range rows {
		if i, ok := byName[r.Workload]; ok {
			f.Rows[i] = r
		} else {
			byName[r.Workload] = len(f.Rows)
			f.Rows = append(f.Rows, r)
		}
	}
	return writeFile(path, f)
}

func writeFile(path string, f File) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(f); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// Read loads a BENCH file. A missing file returns the underlying
// os.IsNotExist error.
func Read(path string) (File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return File{}, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return File{}, fmt.Errorf("benchfmt: decoding %s: %w", path, err)
	}
	return f, nil
}

// SlackFactor is how much slower a workload may run than the committed
// baseline before Compare warns: CI machines differ from the machine the
// baseline was recorded on, so only substantial drift is worth surfacing.
const SlackFactor = 1.5

// Compare prints a warn-only comparison of rows against a committed BENCH
// file: allocation increases (deterministic) and ns/op regressions beyond
// the slack factor (noisy) both land in the job log, but never fail the
// build.
func Compare(w io.Writer, rows []Row, baselinePath string) {
	base, err := Read(baselinePath)
	if err != nil {
		fmt.Fprintf(w, "WARN baseline %s unreadable: %v\n", baselinePath, err)
		return
	}
	byName := make(map[string]Row, len(base.Rows))
	for _, r := range base.Rows {
		byName[r.Workload] = r
	}
	fmt.Fprintf(w, "\ncomparing against baseline %s (revision %s)\n", baselinePath, base.Revision)
	warned := false
	for _, r := range rows {
		b, ok := byName[r.Workload]
		if !ok {
			fmt.Fprintf(w, "  %-20s new workload (no baseline)\n", r.Workload)
			continue
		}
		if r.AllocsPerOp > b.AllocsPerOp {
			fmt.Fprintf(w, "WARN %-20s allocs/op %d -> %d (baseline %s)\n",
				r.Workload, b.AllocsPerOp, r.AllocsPerOp, base.Revision)
			warned = true
		}
		if b.NsPerOp > 0 && r.NsPerOp > b.NsPerOp*SlackFactor {
			fmt.Fprintf(w, "WARN %-20s ns/op %.0f -> %.0f (%.2fx baseline %s)\n",
				r.Workload, b.NsPerOp, r.NsPerOp, r.NsPerOp/b.NsPerOp, base.Revision)
			warned = true
		}
	}
	if !warned {
		fmt.Fprintln(w, "  no regressions against baseline")
	}
}
