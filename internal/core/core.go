// Package core is the internal engine behind Willump's public API: the
// statistically-aware end-to-end optimizer for ML inference pipelines (the
// paper's primary contribution). It is internal to this module; users should
// import the root willump package, whose PipelineBuilder, functional options,
// and context-aware Optimize/Predict surface are the one supported entry
// point. The root package resolves its functional options into the Options
// struct below and delegates here.
//
// A caller supplies a Pipeline — a transformation graph from raw inputs to a
// feature vector, plus a model — and training/validation data. Optimize runs
// the paper's three stages:
//
//	dataflow:     build and analyze the transformation graph (IFVs, feature
//	              generators, preprocessing);
//	optimization: automatic end-to-end cascades, top-K filter models,
//	              feature-level caching, query-aware parallelization;
//	compilation:  block sorting, operator fusion, driver generation via the
//	              weld package.
//
// The result is an Optimized pipeline with the same prediction signature as
// the original, plus query-modality-specific entry points (PredictBatch,
// PredictPoint, TopK).
package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"willump/internal/cache"
	"willump/internal/cascade"
	"willump/internal/feature"
	"willump/internal/graph"
	"willump/internal/model"
	"willump/internal/ops"
	"willump/internal/topk"
	"willump/internal/trace"
	"willump/internal/value"
	"willump/internal/weld"
)

// Pipeline is an unoptimized ML inference pipeline: what the user hands to
// Willump.
type Pipeline struct {
	// Graph transforms raw inputs into the model's feature vector.
	Graph *graph.Graph
	// Model is the (untrained) model executed on the feature vector.
	Model model.Model
}

// Dataset pairs pipeline inputs with labels.
type Dataset struct {
	Inputs map[string]value.Value
	Y      []float64
}

// Len returns the number of rows (0 for an empty dataset).
func (d Dataset) Len() int {
	for _, v := range d.Inputs {
		return v.Len()
	}
	return 0
}

// Gather returns the dataset restricted to the given rows.
func (d Dataset) Gather(rows []int) Dataset {
	out := Dataset{Inputs: make(map[string]value.Value, len(d.Inputs))}
	for k, v := range d.Inputs {
		out.Inputs[k] = v.Gather(rows)
	}
	if d.Y != nil {
		out.Y = make([]float64, len(rows))
		for i, r := range rows {
			out.Y[i] = d.Y[r]
		}
	}
	return out
}

// Row returns a single-row dataset (an example-at-a-time query).
func (d Dataset) Row(i int) Dataset { return d.Gather([]int{i}) }

// Validate checks the dataset's shape: every input column must have the
// same number of rows, and labels (when present) must match. Len trusts an
// arbitrary column, so API boundaries call Validate before optimization.
func (d Dataset) Validate() error {
	cols := make([]string, 0, len(d.Inputs))
	for k := range d.Inputs {
		cols = append(cols, k)
	}
	sort.Strings(cols)
	n, ref := -1, ""
	for _, k := range cols {
		l := d.Inputs[k].Len()
		if n == -1 {
			n, ref = l, k
			continue
		}
		if l != n {
			return fmt.Errorf("dataset column %q has %d rows, but column %q has %d", k, l, ref, n)
		}
	}
	if d.Y != nil && n >= 0 && len(d.Y) != n {
		return fmt.Errorf("dataset has %d labels for %d rows", len(d.Y), n)
	}
	return nil
}

// Options selects which optimizations Optimize applies.
type Options struct {
	// Cascades enables automatic end-to-end cascades (classification only;
	// silently skipped for regression models, as in the paper).
	Cascades bool
	// AccuracyTarget is the maximum validation accuracy loss for cascades
	// (default 0.001, i.e. less than 0.1%).
	AccuracyTarget float64
	// Gamma is Algorithm 1's stopping constant (default 0.25).
	Gamma float64
	// TopK enables automatic top-K filter-model construction.
	TopK bool
	// CK is the filter subset multiplier (default 10).
	CK int
	// MinSubsetFrac is the filter's minimum subset fraction (default 0.05).
	MinSubsetFrac float64
	// FeatureCache enables feature-level caching: sharded concurrent caches
	// over the IFVs the statistical planner selects (see cacheplan.go).
	FeatureCache bool
	// FeatureCacheCapacity is the flat per-IFV entry capacity (<= 0 for
	// unbounded) used when no FeatureCacheBudget is set.
	FeatureCacheCapacity int
	// FeatureCacheBudget, when positive, is a single global entry budget the
	// planner splits across per-IFV caches proportional to profiled cost x
	// estimated hit rate, caching only IFVs worth the entries. It takes
	// precedence over FeatureCacheCapacity.
	FeatureCacheBudget int
	// Workers sets the thread count for query-aware parallelization of
	// example-at-a-time queries (<= 1 disables).
	Workers int
	// Tracing enables per-request span tracing and shadow profiling on the
	// optimized pipeline (see EnableTracing).
	Tracing bool
	// TraceSampleEvery head-samples one request in N when tracing (<= 0 for
	// the trace package default).
	TraceSampleEvery int
	// TraceBuffer is the retained-trace ring capacity (<= 0 for the trace
	// package default).
	TraceBuffer int
}

// Report summarizes what Optimize did, including the optimization time the
// section 6.4 microbenchmark bounds.
type Report struct {
	// OptimizeTime is the wall-clock cost of Optimize (compile + fit +
	// train + cascade construction).
	OptimizeTime time.Duration
	// NumIFVs is the number of independent feature vectors found.
	NumIFVs int
	// CascadeBuilt reports whether a cascade was deployed.
	CascadeBuilt bool
	// CascadeThreshold is the selected confidence threshold (Inf when every
	// input cascades).
	CascadeThreshold float64
	// EfficientIFVs are the IFV indices of the approximate model, when one
	// was built.
	EfficientIFVs []int
	// TrainAccuracy or TrainMSE describe full-model fit quality.
	TrainAccuracy float64
	TrainMSE      float64
	// CachePlan records the feature-cache planner's per-IFV measurements and
	// decisions (empty when feature caching is off).
	CachePlan []IFVCacheStat
}

// Optimized is the optimized pipeline Optimize returns. It has the same
// logical signature as the input pipeline: raw inputs to predictions.
type Optimized struct {
	Prog  *weld.Program
	Model model.Model

	Cascade *cascade.Cascade // nil unless cascades were built
	Approx  *cascade.Approx  // non-nil when cascades or top-K filters exist
	Filter  *topk.Filter     // nil unless top-K was enabled

	// tracer, when non-nil, samples and retains per-request traces for this
	// pipeline's entry points. nil keeps every fast path branch-predictable
	// and allocation-free.
	tracer *trace.Tracer

	// cachePlan records the statistical cache planner's measurements when
	// feature caching was planned at Optimize time (or re-planned online);
	// the drift detectors compare live key reuse against its estimates.
	cachePlan []IFVCacheStat

	opts Options
}

// Optimize trains and optimizes a pipeline end-to-end. The context bounds
// the whole optimization (fit, train, cascade construction); cancelling it
// aborts between graph blocks.
func Optimize(ctx context.Context, p *Pipeline, train, valid Dataset, opts Options) (*Optimized, *Report, error) {
	start := time.Now()
	if p == nil || p.Graph == nil || p.Model == nil {
		return nil, nil, fmt.Errorf("core: nil pipeline, graph, or model")
	}
	if train.Len() == 0 {
		return nil, nil, fmt.Errorf("core: empty training set")
	}
	prog, err := weld.Compile(p.Graph)
	if err != nil {
		return nil, nil, err
	}
	out, err := prog.Fit(ctx, train.Inputs)
	if err != nil {
		return nil, nil, err
	}
	x, err := out.AsMatrix()
	if err != nil {
		return nil, nil, err
	}
	// Model training itself is not preemptible; check the context around it
	// so a cancelled optimization never reports success.
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	// Train a fresh clone, never the caller's model: optimizing the same
	// Pipeline twice (or concurrently) must not retrain shared state.
	full := p.Model.Fresh()
	if full == nil {
		return nil, nil, fmt.Errorf("core: model %T returned a nil Fresh clone", p.Model)
	}
	if err := full.Train(x, train.Y); err != nil {
		return nil, nil, fmt.Errorf("core: training full model: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}

	o := &Optimized{Prog: prog, Model: full, opts: opts}
	rep := &Report{NumIFVs: len(prog.A.IFVs)}
	preds := full.Predict(x)
	if full.Task() == model.Classification {
		rep.TrainAccuracy = model.Accuracy(preds, train.Y)
	} else {
		rep.TrainMSE = model.MSE(preds, train.Y)
	}

	ccfg := cascade.Config{AccuracyTarget: opts.AccuracyTarget, Gamma: opts.Gamma}
	needApprox := (opts.Cascades && full.Task() == model.Classification) || opts.TopK
	if needApprox && len(prog.A.IFVs) > 1 {
		if opts.Cascades && full.Task() == model.Classification {
			if valid.Len() == 0 {
				return nil, nil, fmt.Errorf("core: cascades require a validation set")
			}
			c, err := cascade.Train(ctx, prog, full, train.Inputs, x, train.Y,
				valid.Inputs, valid.Y, ccfg)
			if err != nil {
				return nil, nil, fmt.Errorf("core: building cascade: %w", err)
			}
			o.Cascade = c
			o.Approx = c.Approx
			rep.CascadeBuilt = true
			rep.CascadeThreshold = c.Threshold
			rep.EfficientIFVs = c.Efficient
		} else {
			a, err := cascade.BuildApprox(ctx, prog, full, train.Inputs, x, train.Y, ccfg)
			if err != nil {
				return nil, nil, fmt.Errorf("core: building filter model: %w", err)
			}
			o.Approx = a
			rep.EfficientIFVs = a.Efficient
		}
	}
	if opts.TopK {
		if o.Approx == nil {
			return nil, nil, fmt.Errorf("core: top-K filter models need at least two IFVs")
		}
		o.Filter = topk.NewFilter(o.Approx, full, topk.Config{CK: opts.CK, MinSubsetFrac: opts.MinSubsetFrac})
	}
	if opts.FeatureCache {
		specs, cstats := planFeatureCaches(prog, train, opts)
		prog.EnableFeatureCachingSpecs(specs)
		rep.CachePlan = cstats
		o.cachePlan = cstats
	}
	if opts.Tracing {
		o.EnableTracing(opts.TraceSampleEvery, opts.TraceBuffer)
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	rep.OptimizeTime = time.Since(start)
	return o, rep, nil
}

// EnableTracing installs a request tracer on the pipeline (head-sampling
// one request in sampleEvery, retaining buffer traces; <= 0 picks the trace
// package defaults) and turns on shadow profiling, so traced requests feed
// live per-node costs the cost model can adopt. Tracing is a runtime
// property, not part of the optimization artifact: deployments enable it
// after Load. Returns the installed tracer.
func (o *Optimized) EnableTracing(sampleEvery, buffer int) *trace.Tracer {
	o.tracer = trace.NewTracer(trace.Config{SampleEvery: sampleEvery, Buffer: buffer})
	o.Prog.EnableLiveProfile()
	return o.tracer
}

// Tracer returns the pipeline's request tracer, or nil when tracing is
// disabled.
func (o *Optimized) Tracer() *trace.Tracer { return o.tracer }

// LiveProfile returns a snapshot of the shadow profile accumulated from
// traced production traffic, or nil when tracing was never enabled.
func (o *Optimized) LiveProfile() *weld.Profile { return o.Prog.LiveProfile() }

// AdoptLiveProfile folds the accumulated shadow profile into the pipeline's
// cost model and resets the live accumulator (repeated adoption never
// double-counts). Reports whether any live measurements were adopted.
func (o *Optimized) AdoptLiveProfile() bool { return o.Prog.AdoptLiveProfile() }

// Inputs returns the pipeline's raw input column names in declaration
// order: the request schema a serving frontend should expect.
func (o *Optimized) Inputs() []string {
	srcs := o.Prog.G.Sources()
	out := make([]string, len(srcs))
	for i, id := range srcs {
		out[i] = o.Prog.G.Node(id).Label
	}
	return out
}

// FeatureCacheStats reports the feature-level caches' cumulative counters
// and whether feature caching is enabled at all.
func (o *Optimized) FeatureCacheStats() (cache.Stats, bool) {
	if len(o.Prog.CacheSpecs()) == 0 {
		return cache.Stats{}, false
	}
	return o.Prog.FeatureCacheStats(), true
}

// FeatureStoreStats aggregates remote feature-store client health over the
// pipeline's lookup tables: every distinct table implementing
// ops.StoreStatsReporter contributes one snapshot (counters sum, quantiles
// and breaker state take the worst). Reports false when no bound table is a
// reporting store client.
func (o *Optimized) FeatureStoreStats() (ops.StoreStats, bool) {
	var snaps []ops.StoreStats
	seen := make(map[ops.StoreStatsReporter]bool)
	for _, n := range o.Prog.G.Nodes() {
		if n.IsSource() {
			continue
		}
		th, ok := n.Op.(interface{ Table() ops.Table })
		if !ok {
			continue
		}
		rep, ok := th.Table().(ops.StoreStatsReporter)
		if !ok || seen[rep] {
			continue
		}
		seen[rep] = true
		snaps = append(snaps, rep.StoreStats())
	}
	if len(snaps) == 0 {
		return ops.StoreStats{}, false
	}
	return ops.MergeStoreStats(snaps...), true
}

// Features computes the full feature matrix for a batch on the compiled
// path (no cascades).
func (o *Optimized) Features(ctx context.Context, inputs map[string]value.Value) (feature.Matrix, error) {
	return o.Prog.RunBatch(ctx, inputs)
}

// PredictBatch predicts a batch of inputs, through the cascade when one is
// deployed and through the compiled full pipeline otherwise. Per-request
// options (cascade-threshold override, deadline) apply to this call alone;
// with no options the result is bit-identical to the pipeline's defaults.
func (o *Optimized) PredictBatch(ctx context.Context, inputs map[string]value.Value, opts ...PredictOption) ([]float64, error) {
	preds, _, err := o.PredictBatchOptions(ctx, inputs, ResolvePredict(opts...))
	return preds, err
}

// PredictFull predicts a batch with the compiled full pipeline, bypassing
// any cascade (the "Willump Compilation" configuration of Figures 5 and 6).
// The features materialize into a pooled run state that is recycled once
// the model has consumed them.
func (o *Optimized) PredictFull(ctx context.Context, inputs map[string]value.Value) ([]float64, error) {
	run, x, err := o.Prog.RunBatchShared(ctx, inputs)
	if err != nil {
		return nil, err
	}
	defer run.Close()
	return o.Model.Predict(x), nil
}

// PredictPoint answers one example-at-a-time query, applying query-aware
// parallelization when Workers > 1 and cascades when deployed. Per-request
// options (cascade-threshold override, deadline) apply to this call alone.
func (o *Optimized) PredictPoint(ctx context.Context, inputs map[string]value.Value, opts ...PredictOption) (float64, error) {
	return o.PredictPointOptions(ctx, inputs, ResolvePredict(opts...))
}

// predictPointCompiled is the compiled (no-cascade) point path: a pooled
// run state, the plan executed over the single row (query-aware parallel
// when Workers > 1), the feature vector materialized into the state's
// buffer, and the model scored in place — zero heap allocations once warm
// for fully compiled plans.
func (o *Optimized) predictPointCompiled(ctx context.Context, inputs map[string]value.Value) (float64, error) {
	run, err := o.Prog.NewRun(ctx, inputs)
	if err != nil {
		return 0, err
	}
	defer run.Close()
	if run.Len() != 1 {
		return 0, fmt.Errorf("core: point query got %d rows", run.Len())
	}
	if o.opts.Workers > 1 {
		if err := run.ComputeIFVsParallel(o.Prog.AllIFVs(), o.opts.Workers); err != nil {
			return 0, err
		}
	}
	x, err := run.PointMatrix(o.Prog.AllIFVs())
	if err != nil {
		return 0, err
	}
	s := model.GetScratch()
	defer model.PutScratch(s)
	if tr := trace.FromContext(ctx); tr != nil {
		t0 := time.Now()
		p := model.ScoreRow(o.Model, x, 0, s)
		tr.Record(trace.StageModelScore, t0)
		return p, nil
	}
	return model.ScoreRow(o.Model, x, 0, s), nil
}

// PredictInterpreted predicts a batch on the interpreted ("Python") path:
// the unoptimized baseline of every end-to-end experiment.
func (o *Optimized) PredictInterpreted(ctx context.Context, inputs map[string]value.Value) ([]float64, error) {
	x, err := o.Prog.RunInterpreted(ctx, inputs)
	if err != nil {
		return nil, err
	}
	return o.Model.Predict(x), nil
}

// TopK answers a top-K query with the automatically constructed filter
// model. It requires Options.TopK at Optimize time. Per-request options
// (filter budget override, deadline) apply to this call alone.
func (o *Optimized) TopK(ctx context.Context, inputs map[string]value.Value, k int, opts ...PredictOption) ([]int, error) {
	po := ResolvePredict(opts...)
	po.K = k
	return o.TopKOptions(ctx, inputs, po)
}

// TopKExact answers a top-K query with the unoptimized full pipeline
// (ground truth for filter accuracy).
func (o *Optimized) TopKExact(ctx context.Context, inputs map[string]value.Value, k int) ([]int, []float64, error) {
	if o.Filter == nil {
		return nil, nil, fmt.Errorf("core: pipeline was not optimized for top-K queries")
	}
	return o.Filter.ExactTopK(ctx, inputs, k)
}
