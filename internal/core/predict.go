package core

import (
	"context"
	"fmt"
	"time"

	"willump/internal/cascade"
	"willump/internal/trace"
	"willump/internal/value"
)

// PredictOptions carries the per-request serving knobs of an individual
// prediction or top-K call. Willump's statistically-aware parameters — the
// cascade confidence threshold and the top-K filter budget — are selected
// once at Optimize time, but a production operator wants to tune them per
// request class (lower the threshold for latency-critical traffic, raise
// the budget for recall-critical ranking). The zero value applies no
// overrides: a call with zero PredictOptions is bit-identical to the
// corresponding plain entry point.
//
// PredictOptions travels over the serving wire protocol; every field must
// therefore stay representable in JSON.
type PredictOptions struct {
	// CascadeThreshold overrides the trained cascade's confidence threshold
	// t_c for this call only. Nil keeps the threshold selected at Optimize
	// time. A value above 1 routes every row to the full model; 0.5 or below
	// trusts the small model everywhere confidences reach. Ignored by
	// pipelines without a deployed cascade.
	CascadeThreshold *float64
	// K is the top-K result count for serving-layer top-K calls, where it
	// arrives on the wire rather than as a positional argument. In-process
	// TopK calls set it from their k parameter.
	K int
	// Budget overrides the top-K filter's candidate subset size (the
	// paper's c_k*K / 5%-floor policy) for this call. Zero keeps the
	// configured policy; values below K are raised to K.
	Budget int
	// Point selects the example-at-a-time modality: the request is a single
	// row and executes on the point path (query-aware parallelization,
	// no cross-request batching).
	Point bool
	// Deadline bounds the call's wall-clock time. Zero means no per-request
	// deadline; the caller's context still applies.
	Deadline time.Duration
	// SmallOnly forces cascade small-model-only scoring: every row is
	// answered by the approximate model, the full model never runs. The
	// serving tier's brownout ladder sets it to return a cheaper answer
	// instead of an error under overload; pipelines without a cascade
	// ignore it (a degrade directive must never turn into a failure).
	SmallOnly bool
	// Criticality classifies the request for the serving tier's brownout
	// ladder: "high" traffic degrades last, "low" first, ""/"normal" in
	// between. It does not change what executes — see BatchableZero.
	Criticality string
}

// IsZero reports whether the options request no overrides. Zero-option
// requests are eligible for cross-request batch merging in the serving
// layer; requests with overrides execute alone so one request's knobs never
// leak into another's results.
func (po PredictOptions) IsZero() bool { return po == PredictOptions{} }

// BatchableZero reports whether the options are zero apart from
// Criticality. Criticality orders requests for admission and brownout but
// never changes what executes, so criticality-only requests stay eligible
// for cross-request batch merging — unlike real overrides, which force a
// request to execute alone.
func (po PredictOptions) BatchableZero() bool {
	po.Criticality = ""
	return po == PredictOptions{}
}

// Validate rejects option combinations that could silently corrupt results.
func (po PredictOptions) Validate() error {
	if po.CascadeThreshold != nil && (*po.CascadeThreshold != *po.CascadeThreshold) {
		return fmt.Errorf("core: cascade threshold override is NaN")
	}
	if po.K < 0 {
		return fmt.Errorf("core: top-K k=%d is negative", po.K)
	}
	if po.Budget < 0 {
		return fmt.Errorf("core: top-K budget %d is negative", po.Budget)
	}
	if po.Deadline < 0 {
		return fmt.Errorf("core: deadline %v is negative", po.Deadline)
	}
	switch po.Criticality {
	case "", "low", "normal", "high":
	default:
		return fmt.Errorf("core: unknown criticality %q", po.Criticality)
	}
	return nil
}

// boundCtx applies the per-request deadline, when one is set.
func (po PredictOptions) boundCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if po.Deadline > 0 {
		return context.WithTimeout(ctx, po.Deadline)
	}
	return ctx, func() {}
}

// PredictOption mutates one PredictOptions field; the variadic entry points
// (PredictBatch, PredictPoint, TopK) fold a list of them over the zero
// value, so calls passing no options keep their original behavior exactly.
type PredictOption func(*PredictOptions)

// ResolvePredict folds per-request options over the zero configuration.
// The zero-option path returns before the options struct is declared:
// taking its address for the option callbacks forces it to the heap, and
// default predictions must stay allocation-free.
func ResolvePredict(opts ...PredictOption) PredictOptions {
	if len(opts) == 0 {
		return PredictOptions{}
	}
	var po PredictOptions
	for _, opt := range opts {
		if opt != nil {
			opt(&po)
		}
	}
	return po
}

// WithCascadeThreshold overrides the cascade confidence threshold for one
// call.
func WithCascadeThreshold(t float64) PredictOption {
	return func(po *PredictOptions) { po.CascadeThreshold = &t }
}

// WithTopKBudget overrides the top-K filter's candidate subset size for one
// call (values <= 0 keep the configured policy).
func WithTopKBudget(n int) PredictOption {
	return func(po *PredictOptions) {
		if n > 0 {
			po.Budget = n
		}
	}
}

// WithPointQuery marks the call as an example-at-a-time query.
func WithPointQuery() PredictOption {
	return func(po *PredictOptions) { po.Point = true }
}

// WithPredictDeadline bounds one call's wall-clock time (values <= 0 keep
// the caller's context alone).
func WithPredictDeadline(d time.Duration) PredictOption {
	return func(po *PredictOptions) {
		if d > 0 {
			po.Deadline = d
		}
	}
}

// WithSmallOnly forces cascade small-model-only scoring for one call: the
// approximate model answers every row and the full model never runs.
// Pipelines without a cascade ignore it.
func WithSmallOnly() PredictOption {
	return func(po *PredictOptions) { po.SmallOnly = true }
}

// WithCriticality classifies one call for the serving tier's brownout
// ladder ("low", "normal", "high"): high-criticality traffic degrades and
// sheds last. Unknown values are rejected by Validate.
func WithCriticality(c string) PredictOption {
	return func(po *PredictOptions) { po.Criticality = c }
}

// PredictBatchOptions is the options-resolved batch entry point: it applies
// the per-request deadline and cascade-threshold override and reports how
// the cascade served the batch (zero ServeStats when no cascade ran). The
// serving layer calls it directly; in-process callers normally use
// PredictBatch.
func (o *Optimized) PredictBatchOptions(ctx context.Context, inputs map[string]value.Value, po PredictOptions) ([]float64, cascade.ServeStats, error) {
	// When the context is trace-owned — it carries a trace, or the serving
	// handler marked it while leaving the request unsampled — an outer
	// owner already counted the request against this tracer; beginning a
	// second time here would double-count it. No deferred closure: closures
	// capture and allocate, and this path must stay allocation-free when
	// unsampled.
	if o.tracer == nil || trace.Owned(ctx) {
		return o.predictBatchOptions(ctx, inputs, po)
	}
	start := time.Now()
	tr := o.tracer.Begin("batch")
	if tr != nil {
		ctx = trace.NewContext(ctx, tr)
	}
	preds, stats, err := o.predictBatchOptions(ctx, inputs, po)
	o.tracer.Finish(tr, "batch", start, err)
	return preds, stats, err
}

func (o *Optimized) predictBatchOptions(ctx context.Context, inputs map[string]value.Value, po PredictOptions) ([]float64, cascade.ServeStats, error) {
	if err := po.Validate(); err != nil {
		return nil, cascade.ServeStats{}, err
	}
	ctx, cancel := po.boundCtx(ctx)
	defer cancel()
	if o.Cascade != nil {
		t := o.Cascade.Threshold
		if po.CascadeThreshold != nil {
			t = *po.CascadeThreshold
		}
		if po.SmallOnly {
			// Threshold 0 trusts the small model on every row (confidences
			// are >= 0.5 by construction), so the full model never runs.
			t = 0
		}
		return o.Cascade.PredictBatchThreshold(ctx, inputs, t)
	}
	if o.opts.Workers > 1 {
		// Data-parallel compiled batch: contiguous row shards end-to-end on
		// separate workers. Every operator is row-local, so the merged
		// result is bit-identical to the sequential path.
		x, err := o.Prog.RunBatchSharded(ctx, inputs, o.opts.Workers)
		if err != nil {
			return nil, cascade.ServeStats{}, err
		}
		return o.Model.Predict(x), cascade.ServeStats{}, nil
	}
	run, x, err := o.Prog.RunBatchShared(ctx, inputs)
	if err != nil {
		return nil, cascade.ServeStats{}, err
	}
	defer run.Close()
	if tr := trace.FromContext(ctx); tr != nil {
		t0 := time.Now()
		preds := o.Model.Predict(x)
		tr.Record(trace.StageModelScore, t0)
		return preds, cascade.ServeStats{}, nil
	}
	return o.Model.Predict(x), cascade.ServeStats{}, nil
}

// PredictPointOptions is the options-resolved example-at-a-time entry
// point.
func (o *Optimized) PredictPointOptions(ctx context.Context, inputs map[string]value.Value, po PredictOptions) (float64, error) {
	if o.tracer == nil || trace.Owned(ctx) {
		return o.predictPointOptions(ctx, inputs, po)
	}
	start := time.Now()
	tr := o.tracer.Begin("point")
	if tr != nil {
		ctx = trace.NewContext(ctx, tr)
	}
	p, err := o.predictPointOptions(ctx, inputs, po)
	o.tracer.Finish(tr, "point", start, err)
	return p, err
}

func (o *Optimized) predictPointOptions(ctx context.Context, inputs map[string]value.Value, po PredictOptions) (float64, error) {
	if err := po.Validate(); err != nil {
		return 0, err
	}
	ctx, cancel := po.boundCtx(ctx)
	defer cancel()
	if o.Cascade != nil {
		t := o.Cascade.Threshold
		if po.CascadeThreshold != nil {
			t = *po.CascadeThreshold
		}
		if po.SmallOnly {
			t = 0
		}
		return o.Cascade.PredictPointThreshold(ctx, inputs, t)
	}
	return o.predictPointCompiled(ctx, inputs)
}

// BatchPredictor returns the pipeline's default batch path as a plain
// two-argument function, the exact signature serving frontends host as a
// black box (the variadic PredictBatch itself no longer converts directly).
func (o *Optimized) BatchPredictor() func(context.Context, map[string]value.Value) ([]float64, error) {
	return func(ctx context.Context, inputs map[string]value.Value) ([]float64, error) {
		return o.PredictBatch(ctx, inputs)
	}
}

// TopKOptions is the options-resolved top-K entry point: po.K rows are
// returned, and po.Budget (when positive) overrides the filter's candidate
// subset size.
func (o *Optimized) TopKOptions(ctx context.Context, inputs map[string]value.Value, po PredictOptions) ([]int, error) {
	if o.tracer == nil || trace.Owned(ctx) {
		return o.topKOptions(ctx, inputs, po)
	}
	start := time.Now()
	tr := o.tracer.Begin("topk")
	if tr != nil {
		ctx = trace.NewContext(ctx, tr)
	}
	idx, err := o.topKOptions(ctx, inputs, po)
	o.tracer.Finish(tr, "topk", start, err)
	return idx, err
}

func (o *Optimized) topKOptions(ctx context.Context, inputs map[string]value.Value, po PredictOptions) ([]int, error) {
	if o.Filter == nil {
		return nil, fmt.Errorf("core: pipeline was not optimized for top-K queries")
	}
	if err := po.Validate(); err != nil {
		return nil, err
	}
	ctx, cancel := po.boundCtx(ctx)
	defer cancel()
	subset := -1
	if po.Budget > 0 {
		subset = po.Budget
	}
	return o.Filter.TopKSubset(ctx, inputs, po.K, subset)
}
