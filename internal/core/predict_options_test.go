package core

import (
	"context"
	"testing"
)

func TestPredictOptionsBatchableZero(t *testing.T) {
	if !(PredictOptions{}).BatchableZero() {
		t.Fatal("zero options not BatchableZero")
	}
	// Criticality alone never changes execution, so it stays batchable.
	po := ResolvePredict(WithCriticality("high"))
	if po.IsZero() {
		t.Fatal("criticality-only options report IsZero")
	}
	if !po.BatchableZero() {
		t.Fatal("criticality-only options not BatchableZero")
	}
	for _, opt := range []PredictOption{
		WithSmallOnly(), WithPointQuery(), WithTopKBudget(8), WithCascadeThreshold(0.9),
	} {
		if ResolvePredict(opt, WithCriticality("low")).BatchableZero() {
			t.Fatal("options with a real override report BatchableZero")
		}
	}
}

func TestPredictOptionsValidateCriticality(t *testing.T) {
	for _, ok := range []string{"", "low", "normal", "high"} {
		if err := (PredictOptions{Criticality: ok}).Validate(); err != nil {
			t.Fatalf("Validate(%q): %v", ok, err)
		}
	}
	if err := (PredictOptions{Criticality: "urgent"}).Validate(); err == nil {
		t.Fatal("Validate accepted unknown criticality")
	}
}

// TestSmallOnlyNeverRunsFullModel pins the brownout degrade primitive: with
// SmallOnly set, the cascade's small model answers every row and the full
// model contributes nothing.
func TestSmallOnlyNeverRunsFullModel(t *testing.T) {
	p, train, valid, test := classificationPipeline(t)
	o, rep, err := Optimize(context.Background(), p, train, valid, Options{Cascades: true, AccuracyTarget: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.CascadeBuilt {
		t.Fatal("cascade not built")
	}
	preds, stats, err := o.PredictBatchOptions(context.Background(), test.Inputs, PredictOptions{SmallOnly: true})
	if err != nil {
		t.Fatalf("PredictBatchOptions small-only: %v", err)
	}
	if len(preds) != len(test.Y) {
		t.Fatalf("got %d predictions, want %d", len(preds), len(test.Y))
	}
	if stats.Cascaded != 0 || stats.SmallOnly != stats.Total || stats.Total == 0 {
		t.Fatalf("small-only stats = %+v, want everything small, nothing cascaded", stats)
	}

	// Point path: same contract, and still a valid prediction.
	pt, err := o.PredictPointOptions(context.Background(), test.Row(0).Inputs, PredictOptions{SmallOnly: true, Point: true})
	if err != nil {
		t.Fatalf("PredictPointOptions small-only: %v", err)
	}
	if pt != pt || pt < 0 || pt > 1 {
		t.Fatalf("small-only point prediction = %v, want a score in [0, 1]", pt)
	}
}

// TestSmallOnlyWithoutCascadeIsNoop pins that a degrade directive never
// turns into an error on pipelines with no cascade to degrade to.
func TestSmallOnlyWithoutCascadeIsNoop(t *testing.T) {
	p, train, valid, test := classificationPipeline(t)
	o, _, err := Optimize(context.Background(), p, train, valid, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := o.PredictBatch(context.Background(), test.Inputs)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := o.PredictBatchOptions(context.Background(), test.Inputs, PredictOptions{SmallOnly: true})
	if err != nil {
		t.Fatalf("small-only without cascade errored: %v", err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("row %d: small-only %v != plain %v without a cascade", i, got[i], want[i])
		}
	}
}
