package core

import (
	"fmt"
	"math"

	"willump/internal/cascade"
	"willump/internal/model"
	"willump/internal/topk"
	"willump/internal/weld"
)

// Online re-fitting: the entry points the adaptation controller
// (internal/adapt) uses to re-derive the statistical plan — cascade
// threshold and feature-cache budget split — from a reservoir of live
// traffic instead of the original training Dataset. Both have input-size
// floors: a tiny reservoir is noise, and a plan fit to noise is worse
// than the stale plan it would replace.

const (
	// RefitMinScorePairs is the minimum number of shadow-scored
	// (small, full) prediction pairs RefitCascadeThreshold accepts.
	RefitMinScorePairs = 64
	// ReplanMinReservoirRows is the minimum reservoir size
	// ReplanFeatureCache accepts.
	ReplanMinReservoirRows = 64
)

// RefitResult reports what a cascade-threshold re-fit chose.
type RefitResult struct {
	// Threshold is the selected confidence threshold (+Inf when no
	// candidate met the target: every input cascades to the full model).
	Threshold float64
	// Agreement is the fraction of reservoir rows on which the mixed
	// (cascade-routed) prediction agrees with the full model at the
	// chosen threshold — the label-free accuracy proxy.
	Agreement float64
	// SmallFrac is the fraction of reservoir rows the chosen threshold
	// routes to the small model alone (the serving-time guard compares
	// the canary's observed small-only rate against this).
	SmallFrac float64
}

// RefitCascadeThreshold re-selects the cascade confidence threshold from
// shadow-scored prediction pairs: small[i] and full[i] are the small and
// full model's probabilities for the same sampled live request. Live
// traffic has no labels, so agreement with the full model stands in for
// validation accuracy (the full model defines correctness for the
// cascade by construction); the chosen threshold is the lowest candidate
// whose mixed predictions keep agreement within target of 1.
func RefitCascadeThreshold(small, full []float64, target float64) (RefitResult, error) {
	if len(small) != len(full) {
		return RefitResult{}, fmt.Errorf("core: refit got %d small scores for %d full scores", len(small), len(full))
	}
	if len(small) < RefitMinScorePairs {
		return RefitResult{}, fmt.Errorf("core: refit needs >= %d score pairs, got %d", RefitMinScorePairs, len(small))
	}
	if target <= 0 {
		target = 0.001
	}
	fullLabels := make([]float64, len(full))
	for i, p := range full {
		if p >= 0.5 {
			fullLabels[i] = 1
		}
	}
	res := RefitResult{Threshold: math.Inf(1), Agreement: 1}
	mixed := make([]float64, len(small))
	for _, t := range thresholdCandidates() {
		routed := 0
		for i := range mixed {
			if model.Confidence(small[i]) > t {
				mixed[i] = small[i]
				routed++
			} else {
				mixed[i] = full[i]
			}
		}
		agree := model.Accuracy(mixed, fullLabels)
		if agree >= 1-target {
			res.Threshold = t
			res.Agreement = agree
			res.SmallFrac = float64(routed) / float64(len(small))
			break // candidates ascend; the first valid is the lowest
		}
	}
	return res, nil
}

// thresholdCandidates mirrors the cascade package's candidate grid (0.1
// multiples over the confidence range, avoiding validation overfitting).
func thresholdCandidates() []float64 { return []float64{0.5, 0.6, 0.7, 0.8, 0.9, 1.0} }

// ReplanFeatureCache re-splits the feature-cache entry budget from a
// reservoir of sampled live request rows, reusing the statistical cache
// planner (cost x estimated key reuse, proportional split). Costs come
// from the pipeline's current cost model — call AdoptLiveProfile first
// so shadow-profiled production costs are folded in. budget <= 0 uses
// the budget the pipeline was optimized with. The returned specs are not
// installed; apply them to a candidate clone with ApplyCacheSpecs.
func (o *Optimized) ReplanFeatureCache(reservoir Dataset, budget int) ([]weld.CacheSpec, []IFVCacheStat, error) {
	if err := reservoir.Validate(); err != nil {
		return nil, nil, fmt.Errorf("core: replan reservoir: %w", err)
	}
	if n := reservoir.Len(); n < ReplanMinReservoirRows {
		return nil, nil, fmt.Errorf("core: replan needs >= %d reservoir rows, got %d", ReplanMinReservoirRows, n)
	}
	if budget <= 0 {
		budget = o.opts.FeatureCacheBudget
	}
	if budget <= 0 {
		return nil, nil, fmt.Errorf("core: replan needs a feature-cache budget (pipeline was optimized without one)")
	}
	opts := o.opts
	opts.FeatureCache = true
	opts.FeatureCacheBudget = budget
	specs, stats := planFeatureCaches(o.Prog, reservoir, opts)
	if len(specs) == 0 {
		return nil, nil, fmt.Errorf("core: replan produced no cacheable IFVs")
	}
	return specs, stats, nil
}

// CloneForRefit returns a candidate pipeline for canarying an alternative
// plan: it shares the fitted operators, graph, and models (read-only at
// inference time) with the incumbent but owns its own feature caches,
// run-state pool, and cascade routing state, so SetCascadeThreshold and
// ApplyCacheSpecs on the clone never touch the incumbent. The clone's
// tracer is nil — canary candidates are observed through guard metrics,
// not traces.
func (o *Optimized) CloneForRefit() *Optimized {
	prog := o.Prog.CloneRuntime()
	c := &Optimized{Prog: prog, Model: o.Model, opts: o.opts}
	c.cachePlan = append([]IFVCacheStat(nil), o.cachePlan...)
	if o.Approx != nil {
		ap := *o.Approx
		ap.Prog = prog
		c.Approx = &ap
	}
	if o.Cascade != nil {
		c.Cascade = cascade.Restore(c.Approx, o.Cascade.Full,
			o.Cascade.Threshold, o.Cascade.FullAccuracy, o.Cascade.CascadeAccuracy)
	}
	if o.Filter != nil {
		c.Filter = topk.NewFilter(c.Approx, o.Filter.Full, o.Filter.Config())
	}
	return c
}

// SetCascadeThreshold installs a re-fit confidence threshold and its
// agreement proxy. No-op on pipelines without a cascade.
func (o *Optimized) SetCascadeThreshold(t, agreement float64) {
	if o.Cascade == nil {
		return
	}
	o.Cascade.Threshold = t
	o.Cascade.CascadeAccuracy = agreement
}

// CascadeThreshold returns the deployed confidence threshold and whether
// a cascade exists.
func (o *Optimized) CascadeThreshold() (float64, bool) {
	if o.Cascade == nil {
		return 0, false
	}
	return o.Cascade.Threshold, true
}

// ApplyCacheSpecs replaces the pipeline's feature-cache plan (fresh empty
// caches built per spec) and records the planner stats that produced it.
func (o *Optimized) ApplyCacheSpecs(specs []weld.CacheSpec, stats []IFVCacheStat) {
	o.Prog.EnableFeatureCachingSpecs(specs)
	if stats != nil {
		o.cachePlan = stats
	}
}

// CachePlan returns the statistical cache plan the pipeline's caches were
// built from (nil for pipelines loaded from artifacts, which persist only
// the resulting capacities).
func (o *Optimized) CachePlan() []IFVCacheStat { return o.cachePlan }

// PlannedHitRate returns the capacity-weighted mean of the cache plan's
// per-IFV EstimatedHitRate: the hit rate the planner fit the budget
// split to, and the reference the key-reuse drift detector compares live
// traffic against. ok is false when no planner stats are available.
func (o *Optimized) PlannedHitRate() (rate float64, ok bool) {
	var wsum, rsum float64
	for _, st := range o.cachePlan {
		if !st.Cached {
			continue
		}
		w := float64(st.Capacity)
		if w <= 0 {
			w = 1
		}
		wsum += w
		rsum += w * st.EstimatedHitRate
	}
	if wsum == 0 {
		return 0, false
	}
	return rsum / wsum, true
}

// FeatureCacheBudget returns the entry budget the pipeline was optimized
// under (0 when feature caching was flat-capacity or off).
func (o *Optimized) FeatureCacheBudget() int { return o.opts.FeatureCacheBudget }

// AccuracyTarget returns the configured cascade accuracy-loss target
// (the Optimize default when unset).
func (o *Optimized) AccuracyTarget() float64 {
	if o.opts.AccuracyTarget <= 0 {
		return 0.001
	}
	return o.opts.AccuracyTarget
}
