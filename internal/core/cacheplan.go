package core

import (
	"sort"

	"willump/internal/cache"
	"willump/internal/value"
	"willump/internal/weld"
)

// Statistically-aware cache planning (the optimizer half of the paper's
// section 4.5): Willump caches the feature computations that are worth
// caching, not every IFV uniformly. Two measurements drive the decision,
// both available at Optimize time:
//
//   - cost: the profiled per-row cost of the IFV's feature generator, from
//     the same Fit-time measurements the cascades cost model uses;
//   - key reuse: how often the generator's raw-input key tuple repeats in
//     the training set, an empirical estimate of the serving hit rate under
//     the skewed real-world query distributions the paper targets.
//
// Their product — expected seconds saved per served row — scores each IFV.
// Under a global entry budget (Options.FeatureCacheBudget) the planner caches
// only IFVs with a positive score and splits the budget proportional to the
// scores, so a cheap generator over near-unique keys gets no entries while
// an expensive generator over a skewed key space gets nearly all of them.

const (
	// cachePlanSampleRows bounds the training rows scanned for key-reuse
	// estimation; planning must stay a negligible slice of Optimize time.
	cachePlanSampleRows = 4096
	// cachePlanMinEntries is the selection threshold under a budget: an IFV
	// whose proportional share falls below it is not cached at all (so few
	// entries would thrash without serving hits), keeping the planned total
	// within the user's budget instead of padding past it.
	cachePlanMinEntries = 8
)

// IFVCacheStat records one IFV's cache-planning measurements, reported on
// the optimization Report.
type IFVCacheStat struct {
	// IFV is the feature generator's index.
	IFV int
	// Cost is the profiled per-row generator cost in seconds.
	Cost float64
	// EstimatedHitRate is 1 - distinct/sampled over the training-set key
	// tuples: the hit rate an unbounded cache would have seen on training
	// traffic.
	EstimatedHitRate float64
	// Score is Cost * EstimatedHitRate — expected seconds saved per row.
	Score float64
	// Capacity is the planned entry budget (0 = unbounded); absent from the
	// plan entirely when the IFV was not selected.
	Capacity int
	// Cached reports whether the planner selected this IFV.
	Cached bool
}

// planFeatureCaches decides which IFVs get a feature-level cache and how
// large each one is. With a positive FeatureCacheBudget the split is
// profile-driven as described above; otherwise every cacheable IFV gets the
// flat legacy capacity (FeatureCacheCapacity, <= 0 unbounded) and only the
// selection — skipping uncacheable generators — is statistical.
func planFeatureCaches(prog *weld.Program, train Dataset, opts Options) ([]weld.CacheSpec, []IFVCacheStat) {
	a, g := prog.A, prog.G
	stats := make([]IFVCacheStat, 0, len(a.IFVs))
	var cacheable []int
	for i := range a.IFVs {
		if !a.Cacheable(g, i) {
			continue
		}
		st := IFVCacheStat{
			IFV:              i,
			Cost:             prog.Prof.IFVCost(a, i),
			EstimatedHitRate: estimateKeyReuse(prog, train, i),
		}
		st.Score = st.Cost * st.EstimatedHitRate
		stats = append(stats, st)
		cacheable = append(cacheable, i)
	}
	if len(cacheable) == 0 {
		return nil, stats
	}

	if opts.FeatureCacheBudget <= 0 {
		// Legacy flat configuration: one capacity for every cacheable IFV.
		specs := make([]weld.CacheSpec, len(cacheable))
		for j, i := range cacheable {
			specs[j] = weld.CacheSpec{IFV: i, Capacity: opts.FeatureCacheCapacity}
			stats[j].Capacity = max(0, opts.FeatureCacheCapacity)
			stats[j].Cached = true
		}
		return specs, stats
	}

	// Budgeted split: select scored IFVs and divide proportionally.
	total := 0.0
	for _, st := range stats {
		total += st.Score
	}
	if total == 0 {
		// No measured reuse anywhere (e.g. fully unique training keys): fall
		// back to an even split rather than caching nothing, since serving
		// traffic is usually more skewed than training data. The split still
		// honors the budget: when an even split over every cacheable IFV
		// would fall below the selection threshold, only the most expensive
		// generators (where a serving-time hit saves the most) get a cache.
		k := len(cacheable)
		if maxK := opts.FeatureCacheBudget / cachePlanMinEntries; k > maxK {
			k = maxK
		}
		if k == 0 {
			k = 1 // tiny budget: one cache with whatever entries remain
		}
		order := make([]int, len(stats))
		for j := range order {
			order[j] = j
		}
		sort.SliceStable(order, func(a, b int) bool { return stats[order[a]].Cost > stats[order[b]].Cost })
		per := opts.FeatureCacheBudget / k
		specs := make([]weld.CacheSpec, 0, k)
		for _, j := range order[:k] {
			stats[j].Capacity = per
			stats[j].Cached = true
			specs = append(specs, weld.CacheSpec{IFV: stats[j].IFV, Capacity: per})
		}
		return specs, stats
	}
	// Select scored IFVs, then enforce the budget: an IFV whose proportional
	// share falls below the floor is dropped outright (a handful of entries
	// would thrash without serving hits — that budget does more good on the
	// high-score generators) and shares are recomputed among the survivors.
	// The planned capacities therefore never sum past the budget; only the
	// sharded cache's per-shard rounding (bounded by its shard count, see
	// Sharded.Capacity) can add a few entries on top.
	selected := make([]int, 0, len(stats))
	for j := range stats {
		if stats[j].Score > 0 {
			selected = append(selected, j)
		}
	}
	for {
		sum := 0.0
		for _, j := range selected {
			sum += stats[j].Score
		}
		kept := selected[:0]
		for _, j := range selected {
			share := int(float64(opts.FeatureCacheBudget) * stats[j].Score / sum)
			if share >= cachePlanMinEntries {
				kept = append(kept, j)
			}
		}
		if len(kept) == len(selected) || len(kept) == 0 {
			selected = kept
			break
		}
		selected = kept
	}
	if len(selected) == 0 && opts.FeatureCacheBudget >= cachePlanMinEntries {
		// Every share rounded below the floor (tiny budget, many IFVs):
		// spend the whole budget on the single best generator.
		best := -1
		for j := range stats {
			if stats[j].Score > 0 && (best < 0 || stats[j].Score > stats[best].Score) {
				best = j
			}
		}
		if best >= 0 {
			selected = append(selected, best)
		}
	}
	var specs []weld.CacheSpec
	sum := 0.0
	for _, j := range selected {
		sum += stats[j].Score
	}
	for _, j := range selected {
		st := &stats[j]
		st.Capacity = int(float64(opts.FeatureCacheBudget) * st.Score / sum)
		st.Cached = true
		specs = append(specs, weld.CacheSpec{IFV: st.IFV, Capacity: st.Capacity})
	}
	return specs, stats
}

// estimateKeyReuse returns 1 - distinct/sampled over IFV i's raw-source key
// tuples in the training inputs (0 when the sample is empty or every key is
// unique).
func estimateKeyReuse(prog *weld.Program, train Dataset, i int) float64 {
	ifv := prog.A.IFVs[i]
	cols := make([]value.Value, 0, len(ifv.Sources))
	n := -1
	for _, sid := range ifv.Sources {
		label := prog.G.Node(sid).Label
		v, ok := train.Inputs[label]
		if !ok {
			return 0 // source column absent; cannot estimate
		}
		cols = append(cols, v)
		if n == -1 || v.Len() < n {
			n = v.Len()
		}
	}
	if n <= 0 {
		return 0
	}
	if n > cachePlanSampleRows {
		n = cachePlanSampleRows
	}
	distinct := make(map[string]struct{}, n)
	var buf []byte
	for row := 0; row < n; row++ {
		buf = cache.AppendRowKey(buf[:0], cols, row)
		if _, ok := distinct[string(buf)]; !ok {
			distinct[string(buf)] = struct{}{}
		}
	}
	return 1 - float64(len(distinct))/float64(n)
}
