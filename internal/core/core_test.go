package core

import (
	"context"
	"math"
	"testing"

	"willump/internal/fixture"
	"willump/internal/graph"
	"willump/internal/model"
	"willump/internal/ops"
	"willump/internal/value"
)

// rebuildPipeline reconstructs an (untrained) Pipeline from a fixture's
// graph so core.Optimize can own training.
func classificationPipeline(t *testing.T) (*Pipeline, Dataset, Dataset, Dataset) {
	t.Helper()
	fx, err := fixture.NewClassification(31, 1200, 500, 500, 0.7, 300)
	if err != nil {
		t.Fatalf("fixture: %v", err)
	}
	p := &Pipeline{
		Graph: fx.Prog.G,
		Model: model.NewGBDT(model.GBDTConfig{Task: model.Classification, Trees: 30, MaxDepth: 4, Seed: 31}),
	}
	train := Dataset{Inputs: fx.Train.Inputs, Y: fx.Train.Y}
	valid := Dataset{Inputs: fx.Valid.Inputs, Y: fx.Valid.Y}
	test := Dataset{Inputs: fx.Test.Inputs, Y: fx.Test.Y}
	return p, train, valid, test
}

func TestOptimizeBaseline(t *testing.T) {
	p, train, valid, test := classificationPipeline(t)
	o, rep, err := Optimize(context.Background(), p, train, valid, Options{})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if rep.NumIFVs != 2 {
		t.Errorf("NumIFVs = %d, want 2", rep.NumIFVs)
	}
	if rep.CascadeBuilt {
		t.Error("cascade built without being requested")
	}
	if rep.TrainAccuracy < 0.8 {
		t.Errorf("train accuracy = %.3f, want >= 0.8", rep.TrainAccuracy)
	}
	preds, err := o.PredictBatch(context.Background(), test.Inputs)
	if err != nil {
		t.Fatalf("PredictBatch: %v", err)
	}
	if acc := model.Accuracy(preds, test.Y); acc < 0.75 {
		t.Errorf("test accuracy = %.3f, want >= 0.75", acc)
	}
}

func TestOptimizeWithCascades(t *testing.T) {
	p, train, valid, test := classificationPipeline(t)
	o, rep, err := Optimize(context.Background(), p, train, valid, Options{Cascades: true, AccuracyTarget: 0.01})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if !rep.CascadeBuilt {
		t.Fatal("cascade not built")
	}
	if len(rep.EfficientIFVs) == 0 {
		t.Error("no efficient IFVs reported")
	}
	cascPreds, err := o.PredictBatch(context.Background(), test.Inputs)
	if err != nil {
		t.Fatal(err)
	}
	fullPreds, err := o.PredictFull(context.Background(), test.Inputs)
	if err != nil {
		t.Fatal(err)
	}
	cascAcc := model.Accuracy(cascPreds, test.Y)
	fullAcc := model.Accuracy(fullPreds, test.Y)
	if cascAcc < fullAcc-0.05 {
		t.Errorf("cascade accuracy %.3f far below full %.3f", cascAcc, fullAcc)
	}
}

func TestOptimizeInterpretedMatchesCompiled(t *testing.T) {
	p, train, valid, test := classificationPipeline(t)
	o, _, err := Optimize(context.Background(), p, train, valid, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := o.PredictFull(context.Background(), test.Inputs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := o.PredictInterpreted(context.Background(), test.Inputs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			t.Fatalf("row %d: compiled %v != interpreted %v", i, a[i], b[i])
		}
	}
}

func TestOptimizePointQueries(t *testing.T) {
	p, train, valid, test := classificationPipeline(t)
	o, _, err := Optimize(context.Background(), p, train, valid, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := o.PredictFull(context.Background(), test.Inputs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		got, err := o.PredictPoint(context.Background(), test.Row(i).Inputs)
		if err != nil {
			t.Fatalf("PredictPoint(%d): %v", i, err)
		}
		if math.Abs(got-batch[i]) > 1e-9 {
			t.Fatalf("point %d = %v, batch = %v", i, got, batch[i])
		}
	}
}

func TestOptimizeTopK(t *testing.T) {
	p, train, valid, test := classificationPipeline(t)
	o, _, err := Optimize(context.Background(), p, train, valid, Options{TopK: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := o.TopK(context.Background(), test.Inputs, 20)
	if err != nil {
		t.Fatalf("TopK: %v", err)
	}
	if len(got) != 20 {
		t.Fatalf("TopK returned %d rows, want 20", len(got))
	}
	exact, _, err := o.TopKExact(context.Background(), test.Inputs, 20)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	set := make(map[int]bool)
	for _, e := range exact {
		set[e] = true
	}
	for _, g := range got {
		if set[g] {
			hits++
		}
	}
	if hits == 0 {
		t.Error("filtered top-K shares nothing with exact top-K")
	}
}

func TestOptimizeTopKWithoutOption(t *testing.T) {
	p, train, valid, test := classificationPipeline(t)
	o, _, err := Optimize(context.Background(), p, train, valid, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.TopK(context.Background(), test.Inputs, 5); err == nil {
		t.Error("want error using TopK without Options.TopK")
	}
}

func TestOptimizeFeatureCache(t *testing.T) {
	p, train, valid, test := classificationPipeline(t)
	o, _, err := Optimize(context.Background(), p, train, valid, Options{FeatureCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.PredictBatch(context.Background(), test.Inputs); err != nil {
		t.Fatal(err)
	}
	if _, err := o.PredictBatch(context.Background(), test.Inputs); err != nil {
		t.Fatal(err)
	}
	hits, _ := o.Prog.CacheStats()
	if hits == 0 {
		t.Error("feature cache recorded no hits over a repeated batch")
	}
}

func TestOptimizeValidation(t *testing.T) {
	if _, _, err := Optimize(context.Background(), nil, Dataset{}, Dataset{}, Options{}); err == nil {
		t.Error("want error for nil pipeline")
	}
	p, train, _, _ := classificationPipeline(t)
	if _, _, err := Optimize(context.Background(), p, Dataset{}, Dataset{}, Options{}); err == nil {
		t.Error("want error for empty training set")
	}
	// Cascades without a validation set must fail loudly.
	p2, train2, _, _ := classificationPipeline(t)
	if _, _, err := Optimize(context.Background(), p2, train2, Dataset{}, Options{Cascades: true}); err == nil {
		t.Error("want error for cascades without validation data")
	}
	_ = train
}

func TestOptimizeRegressionSkipsCascades(t *testing.T) {
	fx, err := fixture.NewRegression(41, 800, 300, 300, 200)
	if err != nil {
		t.Fatalf("fixture: %v", err)
	}
	p := &Pipeline{
		Graph: fx.Prog.G,
		Model: model.NewGBDT(model.GBDTConfig{Task: model.Regression, Trees: 30, MaxDepth: 4, Seed: 41}),
	}
	train := Dataset{Inputs: fx.Train.Inputs, Y: fx.Train.Y}
	valid := Dataset{Inputs: fx.Valid.Inputs, Y: fx.Valid.Y}
	o, rep, err := Optimize(context.Background(), p, train, valid, Options{Cascades: true, TopK: true})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if rep.CascadeBuilt {
		t.Error("cascades must not deploy for regression (paper section 6.3)")
	}
	if o.Filter == nil {
		t.Error("top-K filters should still deploy for regression")
	}
}

func TestDatasetHelpers(t *testing.T) {
	d := Dataset{
		Inputs: map[string]value.Value{"x": value.NewInts([]int64{1, 2, 3})},
		Y:      []float64{0.1, 0.2, 0.3},
	}
	if d.Len() != 3 {
		t.Errorf("Len = %d", d.Len())
	}
	g := d.Gather([]int{2, 0})
	if g.Inputs["x"].Ints[0] != 3 || g.Y[1] != 0.1 {
		t.Error("Gather wrong")
	}
	r := d.Row(1)
	if r.Len() != 1 || r.Y[0] != 0.2 {
		t.Error("Row wrong")
	}
	if (Dataset{}).Len() != 0 {
		t.Error("empty dataset Len should be 0")
	}
}

func TestOptimizeSingleIFVGraphNoApprox(t *testing.T) {
	// A single-generator pipeline cannot cascade: Optimize should succeed
	// without cascades rather than fail.
	b := graph.NewBuilder()
	x := b.Input("x")
	ns := b.Add("stats", ops.NewNumericStats(), x)
	cat := b.Add("concat", ops.NewConcat(), ns)
	b.SetOutput(cat)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]float64, 300)
	ys := make([]float64, 300)
	for i := range xs {
		xs[i] = float64(i%10) - 5
		if xs[i] > 0 {
			ys[i] = 1
		}
	}
	train := Dataset{Inputs: map[string]value.Value{"x": value.NewFloats(xs)}, Y: ys}
	p := &Pipeline{Graph: g, Model: model.NewLogistic(model.LinearConfig{Seed: 5})}
	o, rep, err := Optimize(context.Background(), p, train, train, Options{Cascades: true})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if rep.CascadeBuilt {
		t.Error("cascade built on a single-IFV graph")
	}
	preds, err := o.PredictBatch(context.Background(), train.Inputs)
	if err != nil {
		t.Fatal(err)
	}
	if acc := model.Accuracy(preds, ys); acc < 0.9 {
		t.Errorf("accuracy = %.3f", acc)
	}
}
