package core

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"willump/internal/artifact"
	"willump/internal/fixture"
	"willump/internal/graph"
	"willump/internal/model"
	"willump/internal/ops"
	"willump/internal/value"
	"willump/internal/weld"
)

// cachePlanFixture builds the asymmetric pipeline the planner exists for:
//
//   - a cheap lookup over a huge key space (training keys nearly unique, so
//     caching it is almost worthless);
//   - an expensive lookup (HeavyOp) over a small key space with skewed
//     (Zipfian) training keys, so a cache absorbs most of its cost.
//
// It returns the pipeline, train/valid datasets, and a Zipfian serving
// workload drawn from the same distributions.
func cachePlanFixture(t *testing.T, nTrain, nServe int) (*Pipeline, Dataset, Dataset, []map[string]value.Value) {
	t.Helper()
	const (
		cheapKeys = 100000
		heavyKeys = 2048
	)
	rng := rand.New(rand.NewSource(11))
	cheapRows := make(map[int64][]float64, cheapKeys)
	for k := int64(0); k < cheapKeys; k++ {
		cheapRows[k] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	heavyRows := make(map[int64][]float64, heavyKeys)
	for k := int64(0); k < heavyKeys; k++ {
		heavyRows[k] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	cheapTable := ops.NewLocalTable(2, cheapRows)
	heavyTable := ops.NewLocalTable(2, heavyRows)

	b := graph.NewBuilder()
	cheapID := b.Input("cheap_id")
	heavyID := b.Input("heavy_id")
	cf := b.Add("cheap_features", ops.NewLookup("cheap", cheapTable), cheapID)
	hf := b.Add("heavy_features", fixture.NewHeavyOp("heavy", heavyTable, 200), heavyID)
	cat := b.Add("concat", ops.NewConcat(), cf, hf)
	b.SetOutput(cat)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	zipf := rand.NewZipf(rng, 1.1, 1, heavyKeys-1)
	gen := func(n int) Dataset {
		cheap := make([]int64, n)
		heavy := make([]int64, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			cheap[i] = rng.Int63n(cheapKeys) // near-unique
			heavy[i] = int64(zipf.Uint64())  // skewed
			hvec := heavyRows[heavy[i]]
			if hvec[0] > 0 {
				y[i] = 1
			}
		}
		return Dataset{
			Inputs: map[string]value.Value{
				"cheap_id": value.NewInts(cheap),
				"heavy_id": value.NewInts(heavy),
			},
			Y: y,
		}
	}
	train := gen(nTrain)
	valid := gen(nTrain / 4)
	serve := make([]map[string]value.Value, nServe)
	for i := range serve {
		serve[i] = map[string]value.Value{
			"cheap_id": value.NewInts([]int64{rng.Int63n(cheapKeys)}),
			"heavy_id": value.NewInts([]int64{int64(zipf.Uint64())}),
		}
	}
	p := &Pipeline{
		Graph: g,
		Model: model.NewGBDT(model.GBDTConfig{Task: model.Classification, Trees: 10, MaxDepth: 3, Seed: 11}),
	}
	return p, train, valid, serve
}

// TestCachePlanBudgetSplit checks the planner's decisions on the asymmetric
// fixture: the heavy, high-reuse IFV gets (nearly) the whole budget and the
// cheap, no-reuse IFV gets (nearly) none.
func TestCachePlanBudgetSplit(t *testing.T) {
	p, train, valid, _ := cachePlanFixture(t, 2000, 0)
	const budget = 512
	o, rep, err := Optimize(context.Background(), p, train, valid,
		Options{FeatureCache: true, FeatureCacheBudget: budget})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.CachePlan) != 2 {
		t.Fatalf("CachePlan has %d entries, want 2: %+v", len(rep.CachePlan), rep.CachePlan)
	}
	var cheap, heavy IFVCacheStat
	for _, st := range rep.CachePlan {
		// IFV order follows leaf order: cheap_features first.
		if st.IFV == 0 {
			cheap = st
		} else {
			heavy = st
		}
	}
	if heavy.EstimatedHitRate < 0.3 {
		t.Errorf("heavy (Zipfian) estimated hit rate = %.3f, want substantial", heavy.EstimatedHitRate)
	}
	if cheap.EstimatedHitRate > 0.15 {
		t.Errorf("cheap (near-unique) estimated hit rate = %.3f, want near zero", cheap.EstimatedHitRate)
	}
	if heavy.Cost <= cheap.Cost {
		t.Errorf("profiled heavy cost %.3g not above cheap cost %.3g", heavy.Cost, cheap.Cost)
	}
	if !heavy.Cached {
		t.Fatal("heavy IFV not cached")
	}
	if heavy.Capacity < budget/2 {
		t.Errorf("heavy IFV got %d of %d entries, want the dominant share", heavy.Capacity, budget)
	}
	if cheap.Cached && cheap.Capacity > budget/8 {
		t.Errorf("cheap IFV got %d entries, want a trivial share", cheap.Capacity)
	}
	specs := o.Prog.CacheSpecs()
	if len(specs) == 0 {
		t.Fatal("program has no cache plan installed")
	}
	if _, ok := o.FeatureCacheStats(); !ok {
		t.Error("FeatureCacheStats reports caching off")
	}
}

// TestCachePlanBudgetNeverExceeded: the planned capacities must sum within
// the user's global budget — low-score IFVs are dropped, not padded up to a
// floor that would overrun the memory bound the operator set.
func TestCachePlanBudgetNeverExceeded(t *testing.T) {
	p, train, valid, _ := cachePlanFixture(t, 2000, 0)
	for _, budget := range []int{16, 32, 64, 512} {
		o, rep, err := Optimize(context.Background(), p, train, valid,
			Options{FeatureCache: true, FeatureCacheBudget: budget})
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, sp := range o.Prog.CacheSpecs() {
			if sp.Capacity <= 0 {
				t.Fatalf("budget %d: unbounded spec %+v", budget, sp)
			}
			total += sp.Capacity
		}
		if total > budget {
			t.Errorf("budget %d: planned capacities sum to %d (%+v)", budget, total, rep.CachePlan)
		}
		if total == 0 {
			t.Errorf("budget %d: nothing cached despite a scorable heavy IFV", budget)
		}
	}
}

// TestCachePlanZeroReuseFallbackHonorsBudget: when no training reuse is
// measurable anywhere, the even-split fallback must still keep the planned
// total within the budget, caching fewer (most expensive first) IFVs rather
// than padding every one up to the floor.
func TestCachePlanZeroReuseFallbackHonorsBudget(t *testing.T) {
	p, train, valid, _ := cachePlanFixture(t, 2000, 0)
	// Make both IFVs' keys unique in training so every score is zero.
	n := train.Len()
	uniq := make([]int64, n)
	for i := range uniq {
		uniq[i] = int64(i) % 2048
	}
	perm := rand.New(rand.NewSource(3)).Perm(n)
	shuffled := make([]int64, n)
	for i, pi := range perm {
		shuffled[i] = uniq[pi]
	}
	train.Inputs = map[string]value.Value{
		"cheap_id": train.Inputs["cheap_id"],
		"heavy_id": value.NewInts(shuffled),
	}
	cheap := make([]int64, n)
	for i := range cheap {
		cheap[i] = int64(i) * 13 % 100000
	}
	train.Inputs["cheap_id"] = value.NewInts(cheap)

	const budget = 12 // below 2 x selection threshold: only one IFV may be cached
	o, rep, err := Optimize(context.Background(), p, train, valid,
		Options{FeatureCache: true, FeatureCacheBudget: budget})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, sp := range o.Prog.CacheSpecs() {
		total += sp.Capacity
	}
	if total > budget || total == 0 {
		t.Errorf("fallback planned %d entries for budget %d (%+v)", total, budget, rep.CachePlan)
	}
	if len(o.Prog.CacheSpecs()) != 1 {
		t.Errorf("fallback cached %d IFVs, want 1 (most expensive)", len(o.Prog.CacheSpecs()))
	}
	// The surviving cache belongs to the expensive generator.
	if sp := o.Prog.CacheSpecs()[0]; sp.IFV != 1 {
		t.Errorf("fallback cached IFV %d, want the heavy generator (1)", sp.IFV)
	}
}

// TestApplyLoadedCachePlan pins the artifact-ambiguity fix: a planner
// artifact with an empty plan means "cache nothing" and must not fall back
// to flat caching on every IFV, while genuine pre-planner artifacts still
// get the legacy flat layout.
func TestApplyLoadedCachePlan(t *testing.T) {
	p, train, valid, _ := cachePlanFixture(t, 500, 0)
	o, _, err := Optimize(context.Background(), p, train, valid, Options{})
	if err != nil {
		t.Fatal(err)
	}
	prog := o.Prog

	applyLoadedCachePlan(prog, artifact.Options{FeatureCache: true, FeatureCachePlanned: true})
	if n := len(prog.CacheSpecs()); n != 0 {
		t.Errorf("planner artifact with empty plan installed %d caches, want 0", n)
	}

	applyLoadedCachePlan(prog, artifact.Options{
		FeatureCache: true, FeatureCachePlanned: true,
		FeatureCachePlan: []artifact.CacheSpec{{IFV: 1, Capacity: 32}},
	})
	if specs := prog.CacheSpecs(); len(specs) != 1 || specs[0] != (weld.CacheSpec{IFV: 1, Capacity: 32}) {
		t.Errorf("planner artifact plan replayed as %+v", prog.CacheSpecs())
	}

	// Pre-planner artifact: legacy flat layout over all IFVs.
	applyLoadedCachePlan(prog, artifact.Options{FeatureCache: true, FeatureCacheCapacity: 64})
	if n := len(prog.CacheSpecs()); n != 2 {
		t.Errorf("legacy artifact installed %d caches, want 2", n)
	}
}

// TestCachePlanArtifactRoundTrip: the plan chosen from training statistics
// must survive Save/Load byte-for-byte, since deployment processes cannot
// re-derive it (they never see training data).
func TestCachePlanArtifactRoundTrip(t *testing.T) {
	// Registered (serializable) operators only: two plain lookups with
	// asymmetric key reuse.
	rng := rand.New(rand.NewSource(7))
	rows := func(n int64) map[int64][]float64 {
		m := make(map[int64][]float64, n)
		for k := int64(0); k < n; k++ {
			m[k] = []float64{rng.NormFloat64(), rng.NormFloat64()}
		}
		return m
	}
	aTable := ops.NewLocalTable(2, rows(4096))
	bTable := ops.NewLocalTable(2, rows(64))
	b := graph.NewBuilder()
	aID := b.Input("a_id")
	bID := b.Input("b_id")
	af := b.Add("a_features", ops.NewLookup("a", aTable), aID)
	bf := b.Add("b_features", ops.NewLookup("b", bTable), bID)
	cat := b.Add("concat", ops.NewConcat(), af, bf)
	b.SetOutput(cat)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	n := 800
	aKeys, bKeys, y := make([]int64, n), make([]int64, n), make([]float64, n)
	for i := 0; i < n; i++ {
		aKeys[i] = rng.Int63n(4096)
		bKeys[i] = rng.Int63n(64)
		if aKeys[i]%2 == 0 {
			y[i] = 1
		}
	}
	train := Dataset{Inputs: map[string]value.Value{
		"a_id": value.NewInts(aKeys), "b_id": value.NewInts(bKeys),
	}, Y: y}
	p := &Pipeline{Graph: g, Model: model.NewGBDT(model.GBDTConfig{Task: model.Classification, Trees: 5, MaxDepth: 3, Seed: 7})}
	o, _, err := Optimize(context.Background(), p, train, Dataset{},
		Options{FeatureCache: true, FeatureCacheBudget: 256})
	if err != nil {
		t.Fatal(err)
	}
	want := o.Prog.CacheSpecs()
	if len(want) == 0 {
		t.Fatal("no plan to round-trip")
	}
	var buf bytes.Buffer
	if err := Save(o, &buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := loaded.Prog.CacheSpecs()
	if len(got) != len(want) {
		t.Fatalf("loaded plan has %d specs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("spec %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if loaded.opts.FeatureCacheBudget != 256 {
		t.Errorf("budget = %d, want 256", loaded.opts.FeatureCacheBudget)
	}
}

// TestCachePlanSplitBeatsFlat serves the same Zipfian point-query stream
// through the profile-driven budget split and through a flat split of the
// identical total budget, and requires the statistically-aware layout to
// absorb strictly more of the expensive generator's work — the property the
// paper's section 4.5 caching optimization is built on. Everything involved
// (workload, CLOCK eviction, single-threaded serving) is deterministic.
func TestCachePlanSplitBeatsFlat(t *testing.T) {
	p, train, valid, serve := cachePlanFixture(t, 2000, 3000)
	const budget = 512
	o, rep, err := Optimize(context.Background(), p, train, valid,
		Options{FeatureCache: true, FeatureCacheBudget: budget})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	heavyIFV := 1 // leaf order: cheap_features is IFV 0
	runWorkload := func() (heavyHits, heavyMisses int64) {
		for _, q := range serve {
			if _, err := o.PredictPoint(ctx, q); err != nil {
				t.Fatal(err)
			}
		}
		st, ok := o.Prog.IFVCacheStats(heavyIFV)
		if !ok {
			t.Fatal("heavy IFV has no cache")
		}
		return st.Hits, st.Misses
	}

	// Profile-driven split (installed by Optimize).
	splitHits, splitMisses := runWorkload()

	// Flat split of the same total budget, on the same optimized pipeline.
	o.Prog.EnableFeatureCachingSpecs([]weld.CacheSpec{
		{IFV: 0, Capacity: budget / 2},
		{IFV: 1, Capacity: budget / 2},
	})
	flatHits, flatMisses := runWorkload()

	splitRate := float64(splitHits) / float64(splitHits+splitMisses)
	flatRate := float64(flatHits) / float64(flatHits+flatMisses)
	t.Logf("heavy-IFV hit rate: split %.3f (plan %+v), flat %.3f", splitRate, rep.CachePlan, flatRate)
	if splitHits <= flatHits {
		t.Errorf("profile-driven split served %d heavy hits, flat split %d; want split > flat", splitHits, flatHits)
	}
}
