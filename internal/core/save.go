package core

import (
	"fmt"
	"io"
	"sort"

	"willump/internal/artifact"
	"willump/internal/cascade"
	"willump/internal/graph"
	"willump/internal/model"
	"willump/internal/ops"
	"willump/internal/topk"
	"willump/internal/weld"
)

// TableBinder is implemented by operators (ops.Lookup, and any custom
// registered operator) that reference an external keyed table which cannot
// be inlined into an artifact. Load binds tables supplied by the caller to
// every operator still needing one.
type TableBinder interface {
	// NeedsTable reports whether the operator still lacks its table.
	NeedsTable() bool
	// TableRef names the table for load-time binding.
	TableRef() string
	// BindTable attaches the table.
	BindTable(t ops.Table) error
}

// Save serializes an optimized pipeline into the versioned artifact format:
// graph topology, fitted operator state, trained model weights, cascade and
// top-K filter state, profiled costs, and the resolved options. The written
// artifact is everything a fresh process needs to serve identical
// predictions — Load never touches training data.
func Save(o *Optimized, w io.Writer) error {
	if o == nil || o.Prog == nil || o.Model == nil {
		return fmt.Errorf("core: Save: nil optimized pipeline")
	}
	if !o.Prog.Fitted() {
		return fmt.Errorf("core: Save: program is not fitted")
	}
	gspec, err := o.Prog.G.Spec(ops.Codec{})
	if err != nil {
		return err
	}
	mk, ms, err := model.EncodeModel(o.Model)
	if err != nil {
		return err
	}
	art := &artifact.Artifact{
		Options: artifact.Options{
			Cascades:             o.opts.Cascades,
			AccuracyTarget:       o.opts.AccuracyTarget,
			Gamma:                o.opts.Gamma,
			TopK:                 o.opts.TopK,
			CK:                   o.opts.CK,
			MinSubsetFrac:        o.opts.MinSubsetFrac,
			FeatureCache:         o.opts.FeatureCache,
			FeatureCacheCapacity: o.opts.FeatureCacheCapacity,
			FeatureCacheBudget:   o.opts.FeatureCacheBudget,
			FeatureCachePlanned:  o.opts.FeatureCache,
			FeatureCachePlan:     encodeCachePlan(o.Prog.CacheSpecs()),
			Workers:              o.opts.Workers,
		},
		Graph:   *gspec,
		Widths:  make(map[int]int, len(o.Prog.Widths)),
		Profile: o.Prog.Prof.Snapshot(),
		Model:   artifact.Model{Kind: mk, State: ms},
	}
	for id, width := range o.Prog.Widths {
		art.Widths[int(id)] = width
	}
	if o.Filter != nil {
		cfg := o.Filter.Config()
		art.Options.TopK = true
		art.Options.CK = cfg.CK
		art.Options.MinSubsetFrac = cfg.MinSubsetFrac
	}
	if o.Approx != nil {
		sk, ss, err := model.EncodeModel(o.Approx.Small)
		if err != nil {
			return fmt.Errorf("core: Save: approximate model: %w", err)
		}
		spec := &artifact.Approx{
			Small:     artifact.Model{Kind: sk, State: ss},
			Efficient: append([]int(nil), o.Approx.Efficient...),
			Rest:      append([]int(nil), o.Approx.Rest...),
			Stats:     make([]artifact.IFVStat, len(o.Approx.Stats)),
		}
		for i, s := range o.Approx.Stats {
			spec.Stats[i] = artifact.IFVStat{
				Index:      s.Index,
				Importance: artifact.Scalar(s.Importance),
				Cost:       artifact.Scalar(s.Cost),
			}
		}
		art.Approx = spec
	}
	if o.Cascade != nil {
		art.Cascade = &artifact.Cascade{
			Threshold:       artifact.Scalar(o.Cascade.Threshold),
			FullAccuracy:    artifact.Scalar(o.Cascade.FullAccuracy),
			CascadeAccuracy: artifact.Scalar(o.Cascade.CascadeAccuracy),
		}
	}
	return artifact.Write(w, art)
}

// Load reconstructs an optimized pipeline from an artifact stream: the
// graph is rebuilt from decoded operators (their fitted state intact), the
// weld program is recompiled and fused in-process, and the trained models,
// cascade, and top-K filter are reassembled — all without touching training
// data. tables supplies backing stores for lookup operators whose tables
// were not inlined in the artifact (remote tables); it may be nil when
// every table was inlined.
func Load(r io.Reader, tables map[string]ops.Table) (*Optimized, error) {
	return LoadWithResolver(r, tables, nil)
}

// TableResolver produces a backing table for an unbound table reference by
// name — typically by dialing a remote feature-store client. It is
// consulted only for names absent from the explicit tables map, and only
// once per distinct name per load.
type TableResolver func(name string) (ops.Table, error)

// LoadWithResolver is Load with a fallback resolver for table references
// the explicit map does not cover, letting a serving process bind every
// remote table in an artifact to a store client without naming each one.
func LoadWithResolver(r io.Reader, tables map[string]ops.Table, resolve TableResolver) (*Optimized, error) {
	art, err := artifact.Read(r)
	if err != nil {
		return nil, err
	}
	g, err := graph.FromSpec(&art.Graph, ops.Codec{})
	if err != nil {
		return nil, err
	}
	if err := bindTables(g, tables, resolve); err != nil {
		return nil, err
	}
	prog, err := weld.Compile(g)
	if err != nil {
		return nil, err
	}
	widths := make(map[graph.NodeID]int, len(art.Widths))
	for id, width := range art.Widths {
		widths[graph.NodeID(id)] = width
	}
	if err := prog.Restore(widths, weld.ProfileFromSnapshot(art.Profile)); err != nil {
		return nil, err
	}
	m, err := model.DecodeModel(art.Model.Kind, art.Model.State)
	if err != nil {
		return nil, err
	}
	o := &Optimized{
		Prog:  prog,
		Model: m,
		opts: Options{
			Cascades:             art.Options.Cascades,
			AccuracyTarget:       art.Options.AccuracyTarget,
			Gamma:                art.Options.Gamma,
			TopK:                 art.Options.TopK,
			CK:                   art.Options.CK,
			MinSubsetFrac:        art.Options.MinSubsetFrac,
			FeatureCache:         art.Options.FeatureCache,
			FeatureCacheCapacity: art.Options.FeatureCacheCapacity,
			FeatureCacheBudget:   art.Options.FeatureCacheBudget,
			Workers:              art.Options.Workers,
		},
	}
	if art.Approx != nil {
		small, err := model.DecodeModel(art.Approx.Small.Kind, art.Approx.Small.State)
		if err != nil {
			return nil, fmt.Errorf("core: loading approximate model: %w", err)
		}
		nIFVs := len(prog.A.IFVs)
		for _, idx := range art.Approx.Efficient {
			if idx < 0 || idx >= nIFVs {
				return nil, fmt.Errorf("core: artifact efficient IFV index %d out of range [0, %d)", idx, nIFVs)
			}
		}
		approx := &cascade.Approx{
			Prog:      prog,
			Small:     small,
			Efficient: append([]int(nil), art.Approx.Efficient...),
			Rest:      append([]int(nil), art.Approx.Rest...),
			Stats:     make([]cascade.IFVStat, len(art.Approx.Stats)),
		}
		for i, s := range art.Approx.Stats {
			approx.Stats[i] = cascade.IFVStat{
				Index:      s.Index,
				Importance: float64(s.Importance),
				Cost:       float64(s.Cost),
			}
		}
		o.Approx = approx
		if art.Cascade != nil {
			o.Cascade = cascade.Restore(approx, m,
				float64(art.Cascade.Threshold),
				float64(art.Cascade.FullAccuracy),
				float64(art.Cascade.CascadeAccuracy))
		}
	}
	if o.opts.TopK {
		if o.Approx == nil {
			return nil, fmt.Errorf("core: artifact enables top-K but carries no filter model")
		}
		o.Filter = topk.NewFilter(o.Approx, m, topk.Config{CK: o.opts.CK, MinSubsetFrac: o.opts.MinSubsetFrac})
	}
	applyLoadedCachePlan(prog, art.Options)
	return o, nil
}

// applyLoadedCachePlan re-installs a loaded artifact's feature-cache layout.
// Planner-written artifacts (FeatureCachePlanned) replay their recorded plan
// verbatim — an empty plan means the planner deliberately cached nothing
// (e.g. every generator was uncacheable), not that information is missing.
// Only pre-planner artifacts fall back to the legacy flat layout.
func applyLoadedCachePlan(prog *weld.Program, opts artifact.Options) {
	if !opts.FeatureCache {
		return
	}
	if opts.FeatureCachePlanned {
		specs := make([]weld.CacheSpec, len(opts.FeatureCachePlan))
		for i, sp := range opts.FeatureCachePlan {
			specs[i] = weld.CacheSpec{IFV: sp.IFV, Capacity: sp.Capacity}
		}
		prog.EnableFeatureCachingSpecs(specs)
		return
	}
	prog.EnableFeatureCaching(opts.FeatureCacheCapacity, nil)
}

// encodeCachePlan converts the program's active cache plan to its artifact
// form (nil when caching is off).
func encodeCachePlan(specs []weld.CacheSpec) []artifact.CacheSpec {
	if len(specs) == 0 {
		return nil
	}
	out := make([]artifact.CacheSpec, len(specs))
	for i, sp := range specs {
		out[i] = artifact.CacheSpec{IFV: sp.IFV, Capacity: sp.Capacity}
	}
	return out
}

// bindTables attaches caller-supplied tables to every decoded operator
// still needing one, failing with the full list of unbound table names so
// the operator of a deployment process sees everything missing at once.
func bindTables(g *graph.Graph, tables map[string]ops.Table, resolve TableResolver) error {
	var missing []string
	resolved := make(map[string]ops.Table)
	for _, n := range g.Nodes() {
		if n.IsSource() {
			continue
		}
		tb, ok := n.Op.(TableBinder)
		if !ok || !tb.NeedsTable() {
			continue
		}
		name := tb.TableRef()
		t, have := tables[name]
		if !have {
			t, have = resolved[name]
		}
		if !have && resolve != nil {
			rt, err := resolve(name)
			if err != nil {
				return fmt.Errorf("core: resolving table %q: %w", name, err)
			}
			if rt != nil {
				t, have = rt, true
				resolved[name] = rt
			}
		}
		if !have {
			missing = append(missing, name)
			continue
		}
		if err := tb.BindTable(t); err != nil {
			return fmt.Errorf("core: binding table %q: %w", name, err)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return fmt.Errorf("core: artifact references external tables %q: bind them at load time", missing)
	}
	return nil
}
