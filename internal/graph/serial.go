package graph

import (
	"fmt"

	"willump/internal/artifact"
)

// OpCodec translates operators to and from their serialized (kind, state)
// form. The canonical implementation is the registry in internal/ops;
// defining the contract here keeps the graph package free of operator
// knowledge while letting it own its topology serialization.
type OpCodec interface {
	// EncodeOp returns the operator's registry kind and serialized state.
	EncodeOp(op Op) (kind string, state []byte, err error)
	// DecodeOp reconstructs an operator from its kind and state.
	DecodeOp(kind string, state []byte) (Op, error)
}

// Spec serializes the graph's topology, encoding each node's operator
// through the codec. Node order is NodeID order, so positions double as ids.
func (g *Graph) Spec(codec OpCodec) (*artifact.Graph, error) {
	spec := &artifact.Graph{Nodes: make([]artifact.Node, 0, len(g.nodes)), Output: int(g.output)}
	for _, n := range g.nodes {
		ns := artifact.Node{Label: n.Label}
		if !n.IsSource() {
			kind, state, err := codec.EncodeOp(n.Op)
			if err != nil {
				return nil, fmt.Errorf("graph: encoding node %d (%s): %w", n.ID, n.Label, err)
			}
			ns.Op = &artifact.OpState{Kind: kind, State: state}
			ns.Inputs = make([]int, len(n.Inputs))
			for i, in := range n.Inputs {
				ns.Inputs[i] = int(in)
			}
		}
		spec.Nodes = append(spec.Nodes, ns)
	}
	return spec, nil
}

// FromSpec rebuilds a graph from its serialized topology, decoding each
// node's operator through the codec. The result passes the same validation
// as a graph assembled through a Builder.
func FromSpec(spec *artifact.Graph, codec OpCodec) (*Graph, error) {
	b := NewBuilder()
	for i, ns := range spec.Nodes {
		if ns.Op == nil {
			if id := b.Input(ns.Label); int(id) != i {
				return nil, fmt.Errorf("graph: source %q decoded out of position (%d != %d)", ns.Label, id, i)
			}
			continue
		}
		op, err := codec.DecodeOp(ns.Op.Kind, ns.Op.State)
		if err != nil {
			return nil, fmt.Errorf("graph: decoding node %d (%s): %w", i, ns.Label, err)
		}
		ins := make([]NodeID, len(ns.Inputs))
		for j, in := range ns.Inputs {
			if in < 0 || in >= len(spec.Nodes) {
				return nil, fmt.Errorf("graph: node %d (%s) input %d out of range", i, ns.Label, in)
			}
			ins[j] = NodeID(in)
		}
		if id := b.Add(ns.Label, op, ins...); int(id) != i {
			return nil, fmt.Errorf("graph: node %q decoded out of position (%d != %d)", ns.Label, id, i)
		}
	}
	if spec.Output < 0 || spec.Output >= len(spec.Nodes) {
		return nil, fmt.Errorf("graph: output id %d out of range", spec.Output)
	}
	b.SetOutput(NodeID(spec.Output))
	return b.Build()
}
