package graph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"willump/internal/value"
)

// fakeOp is a configurable stand-in operator for graph-analysis tests.
type fakeOp struct {
	name        string
	compilable  bool
	commutative bool
}

func (f *fakeOp) Name() string                                 { return f.name }
func (f *fakeOp) Apply(ins []value.Value) (value.Value, error) { return value.Value{}, nil }
func (f *fakeOp) ApplyBoxed(ins []any) (any, error)            { return nil, nil }
func (f *fakeOp) Compilable() bool                             { return f.compilable }
func (f *fakeOp) Commutative() bool                            { return f.commutative }

func op(name string) *fakeOp   { return &fakeOp{name: name, compilable: true} }
func pyOp(name string) *fakeOp { return &fakeOp{name: name} }
func concatOp() *fakeOp        { return &fakeOp{name: "concat", compilable: true, commutative: true} }

// musicRecGraph reproduces the Figure 1 topology: three lookup feature
// generators concatenated ahead of the model.
func musicRecGraph(t *testing.T) (*Graph, NodeID, NodeID, NodeID) {
	t.Helper()
	b := NewBuilder()
	user := b.Input("user")
	song := b.Input("song")
	genre := b.Input("genre")
	uf := b.Add("user_features", op("lookup"), user)
	sf := b.Add("song_features", op("lookup"), song)
	gf := b.Add("genre_features", op("lookup"), genre)
	cat := b.Add("concat", concatOp(), uf, sf, gf)
	b.SetOutput(cat)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g, uf, sf, gf
}

func TestBuildValidation(t *testing.T) {
	b := NewBuilder()
	if _, err := b.Build(); err == nil {
		t.Error("want error when no output set")
	}

	b2 := NewBuilder()
	in := b2.Input("x")
	n := b2.Add("f", op("f"), in)
	b2.Add("orphan", op("g"), in) // unreachable from output
	b2.SetOutput(n)
	if _, err := b2.Build(); err == nil {
		t.Error("want error for unreachable transformation node")
	}

	b3 := NewBuilder()
	x := b3.Input("x")
	y := b3.Add("f", op("f"), x)
	b3.SetOutput(y)
	g, err := b3.Build()
	if err != nil {
		t.Fatalf("valid graph rejected: %v", err)
	}
	if len(g.Sources()) != 1 || g.Output() != y {
		t.Error("graph metadata wrong")
	}
}

func TestAnalyzeMusicRec(t *testing.T) {
	g, uf, sf, gf := musicRecGraph(t)
	a, err := Analyze(g)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if len(a.IFVs) != 3 {
		t.Fatalf("IFVs = %d, want 3", len(a.IFVs))
	}
	wantRoots := []NodeID{uf, sf, gf}
	for i, ifv := range a.IFVs {
		if ifv.Root != wantRoots[i] {
			t.Errorf("IFV %d root = %d, want %d", i, ifv.Root, wantRoots[i])
		}
		if len(ifv.Nodes) != 1 || ifv.Nodes[0] != wantRoots[i] {
			t.Errorf("IFV %d nodes = %v, want [%d]", i, ifv.Nodes, wantRoots[i])
		}
		if len(ifv.Sources) != 1 {
			t.Errorf("IFV %d sources = %v, want exactly one", i, ifv.Sources)
		}
		if ifv.LeafPos != i {
			t.Errorf("IFV %d leaf pos = %d, want %d", i, ifv.LeafPos, i)
		}
	}
	if len(a.Preprocessing) != 0 {
		t.Errorf("Preprocessing = %v, want none", a.Preprocessing)
	}
	if len(a.Spine) != 1 {
		t.Errorf("Spine = %v, want the concat node only", a.Spine)
	}
}

func TestAnalyzeDeepGeneratorsAndPreprocessing(t *testing.T) {
	// text --clean--> tok --> {ngram1 -> tfidf1, ngram2 -> tfidf2} -> concat
	// clean and tok feed BOTH generators, so they are preprocessing.
	b := NewBuilder()
	text := b.Input("text")
	clean := b.Add("clean", op("clean"), text)
	tok := b.Add("tok", op("tok"), clean)
	ng1 := b.Add("ng1", op("ngram"), tok)
	tf1 := b.Add("tf1", op("tfidf"), ng1)
	ng2 := b.Add("ng2", op("ngram"), tok)
	tf2 := b.Add("tf2", op("tfidf"), ng2)
	cat := b.Add("concat", concatOp(), tf1, tf2)
	b.SetOutput(cat)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	a, err := Analyze(g)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if len(a.IFVs) != 2 {
		t.Fatalf("IFVs = %d, want 2", len(a.IFVs))
	}
	if a.IFVs[0].Root != tf1 || a.IFVs[1].Root != tf2 {
		t.Errorf("roots = %d,%d want %d,%d", a.IFVs[0].Root, a.IFVs[1].Root, tf1, tf2)
	}
	// Rule 2: ngram nodes belong to their generator.
	if got := a.IFVOf(ng1); got != 0 {
		t.Errorf("IFVOf(ng1) = %d, want 0", got)
	}
	if got := a.IFVOf(ng2); got != 1 {
		t.Errorf("IFVOf(ng2) = %d, want 1", got)
	}
	// Rule 3: clean and tok reach both roots -> preprocessing.
	pre := map[NodeID]bool{}
	for _, id := range a.Preprocessing {
		pre[id] = true
	}
	if !pre[clean] || !pre[tok] {
		t.Errorf("Preprocessing = %v, want to include clean=%d tok=%d", a.Preprocessing, clean, tok)
	}
	if a.IFVOf(clean) != -1 {
		t.Error("preprocessing node assigned to a generator")
	}
}

func TestAnalyzeNonCommutativeOutput(t *testing.T) {
	// Output is not commutative: whole graph is one feature generator.
	b := NewBuilder()
	x := b.Input("x")
	f := b.Add("f", op("f"), x)
	g2 := b.Add("g", op("g"), f)
	b.SetOutput(g2)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	a, err := Analyze(g)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if len(a.IFVs) != 1 {
		t.Fatalf("IFVs = %d, want 1", len(a.IFVs))
	}
	if a.IFVs[0].Root != g2 {
		t.Errorf("root = %d, want output %d", a.IFVs[0].Root, g2)
	}
	if len(a.IFVs[0].Nodes) != 2 {
		t.Errorf("generator nodes = %v, want both transformation nodes", a.IFVs[0].Nodes)
	}
}

func TestAnalyzeNestedCommutativeSpine(t *testing.T) {
	// concat(concat(a,b), c): nested spine should flatten to 3 leaves in order.
	b := NewBuilder()
	x := b.Input("x")
	y := b.Input("y")
	z := b.Input("z")
	fa := b.Add("fa", op("f"), x)
	fb := b.Add("fb", op("f"), y)
	fc := b.Add("fc", op("f"), z)
	inner := b.Add("inner", concatOp(), fa, fb)
	outer := b.Add("outer", concatOp(), inner, fc)
	b.SetOutput(outer)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	a, err := Analyze(g)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if len(a.IFVs) != 3 {
		t.Fatalf("IFVs = %d, want 3", len(a.IFVs))
	}
	want := []NodeID{fa, fb, fc}
	for i, ifv := range a.IFVs {
		if ifv.Root != want[i] {
			t.Errorf("leaf %d = %d, want %d", i, ifv.Root, want[i])
		}
	}
	if len(a.Spine) != 2 {
		t.Errorf("spine = %v, want two concat nodes", a.Spine)
	}
}

func TestColumnSpans(t *testing.T) {
	g, uf, sf, gf := musicRecGraph(t)
	a, err := Analyze(g)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	spans, err := a.ColumnSpans(map[NodeID]int{uf: 4, sf: 2, gf: 3})
	if err != nil {
		t.Fatalf("ColumnSpans: %v", err)
	}
	want := []Span{{0, 4}, {4, 6}, {6, 9}}
	for i := range want {
		if spans[i] != want[i] {
			t.Errorf("span %d = %+v, want %+v", i, spans[i], want[i])
		}
	}
	if _, err := a.ColumnSpans(map[NodeID]int{uf: 4}); err == nil {
		t.Error("want error for missing width")
	}
}

func TestExecutionOrderSubset(t *testing.T) {
	b := NewBuilder()
	text := b.Input("text")
	clean := b.Add("clean", op("clean"), text)
	f1 := b.Add("f1", op("f"), clean)
	f2 := b.Add("f2", op("f"), clean)
	cat := b.Add("concat", concatOp(), f1, f2)
	b.SetOutput(cat)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	a, err := Analyze(g)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	order := a.ExecutionOrder(g, []int{1})
	// Must include preprocessing (clean) and f2, not f1.
	if len(order) != 2 || order[0] != clean || order[1] != f2 {
		t.Errorf("ExecutionOrder = %v, want [clean f2] = [%d %d]", order, clean, f2)
	}
}

func TestBlockSortClustersAndPreservesTopo(t *testing.T) {
	// Python preprocessing feeding two Weld chains; block sort should produce
	// [python block][weld block] with one transition.
	b := NewBuilder()
	x := b.Input("x")
	w1 := b.Add("w1", op("w"), x)
	p1 := b.Add("p1", pyOp("p"), x)
	w2 := b.Add("w2", op("w"), w1)
	w3 := b.Add("w3", op("w"), p1)
	cat := b.Add("cat", concatOp(), w2, w3)
	b.SetOutput(cat)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	order := BlockSort(g)
	if !ValidTopo(g, order) {
		t.Fatalf("BlockSort output is not a valid topological order: %v", order)
	}
	if tr := Transitions(g, order); tr != 1 {
		t.Errorf("Transitions = %d, want 1 (python first, then weld)", tr)
	}
	blocks := Blocks(g, order)
	if len(blocks) != 2 || blocks[0].Compiled || !blocks[1].Compiled {
		t.Errorf("Blocks = %+v, want [python, weld]", blocks)
	}
}

func TestBlockSortNoWorseThanNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder()
		n := 3 + rng.Intn(10)
		ids := []NodeID{b.Input("x")}
		for i := 0; i < n; i++ {
			k := 1 + rng.Intn(2)
			var ins []NodeID
			for j := 0; j < k; j++ {
				ins = append(ins, ids[rng.Intn(len(ids))])
			}
			o := &fakeOp{name: "n", compilable: rng.Float64() < 0.6}
			ids = append(ids, b.Add("n", o, ins...))
		}
		// Tie every leaf into a final commutative output so all nodes reach it.
		used := make(map[NodeID]bool)
		for _, nd := range ids {
			used[nd] = false
		}
		bg := b // silence shadow confusion
		_ = bg
		var leaves []NodeID
		consumed := make(map[NodeID]bool)
		// recompute consumption by scanning builder via Build on a trial graph is
		// complex; instead simply concat everything non-source.
		for _, nd := range ids[1:] {
			leaves = append(leaves, nd)
			_ = consumed
		}
		outID := b.Add("out", concatOp(), leaves...)
		b.SetOutput(outID)
		g, err := b.Build()
		if err != nil {
			return true // skip structurally invalid randoms (shouldn't happen)
		}
		sorted := BlockSort(g)
		if !ValidTopo(g, sorted) {
			return false
		}
		return Transitions(g, sorted) <= Transitions(g, g.Topo())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSourcesOf(t *testing.T) {
	g, uf, _, _ := musicRecGraph(t)
	src := g.SourcesOf(uf)
	if len(src) != 1 || g.Node(src[0]).Label != "user" {
		t.Errorf("SourcesOf(user_features) = %v, want [user]", src)
	}
	all := g.SourcesOf(g.Output())
	if len(all) != 3 {
		t.Errorf("SourcesOf(output) = %v, want all three inputs", all)
	}
}
