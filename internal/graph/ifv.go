package graph

import (
	"fmt"
	"sort"
)

// IFV describes one independent feature vector: the output of one feature
// generator (paper section 4.1). Feature generators form disjoint subgraphs;
// the features of an IFV are computed independently of all other IFVs.
type IFV struct {
	// Root is the feature generator's root node: the non-commutative node
	// closest to the model whose output is the IFV.
	Root NodeID
	// Nodes are all nodes of the feature generator (including Root),
	// excluding preprocessing nodes, in topological order.
	Nodes []NodeID
	// Sources are the raw-input nodes the generator reads, in declaration
	// order. They key the feature-level cache for this IFV.
	Sources []NodeID
	// LeafPos is the position of the IFV among the spine's leaves in
	// left-to-right concatenation order; it determines the IFV's column span
	// in the full feature vector.
	LeafPos int
}

// Analysis is the result of IFV identification on a graph.
type Analysis struct {
	// IFVs in concatenation (leaf) order.
	IFVs []IFV
	// Spine is the set of commutative nodes between the feature generators
	// and the model (the concatenation spine), in topological order.
	Spine []NodeID
	// Preprocessing nodes: ancestors of more than one feature-generator
	// root. They execute before any feature generator.
	Preprocessing []NodeID

	ifvOfNode map[NodeID]int // node -> index into IFVs, -1 for spine/preprocessing
}

// IFVOf returns the index in IFVs of the feature generator containing the
// node, or -1 if the node is a source, spine, or preprocessing node.
func (a *Analysis) IFVOf(id NodeID) int {
	if i, ok := a.ifvOfNode[id]; ok {
		return i
	}
	return -1
}

// Analyze identifies the graph's independent feature vectors and feature
// generators using the three rules of paper section 5.1:
//
//  1. Any ancestor of a commutative node that is not itself commutative is
//     the root node of a feature generator.
//  2. Any ancestor of the root node of exactly one feature generator is part
//     of that feature generator.
//  3. Any ancestor of the root nodes of multiple feature generators is a
//     preprocessing node, executed before any features are computed.
//
// The descent starts at the node closest to the model (the graph output) and
// recursively descends commutative nodes. If the output node itself is not
// commutative, the whole graph forms a single feature generator.
func Analyze(g *Graph) (*Analysis, error) {
	a := &Analysis{ifvOfNode: make(map[NodeID]int)}

	// Walk the commutative spine from the output toward the inputs,
	// recording the feature-generator roots in left-to-right leaf order.
	spine := make(map[NodeID]bool)
	var roots []NodeID
	rootSeen := make(map[NodeID]bool)
	var descend func(id NodeID)
	descend = func(id NodeID) {
		n := g.Node(id)
		if !n.IsSource() && n.Op.Commutative() {
			spine[id] = true
			for _, in := range n.Inputs {
				descend(in)
			}
			return
		}
		// Rule 1: non-commutative ancestor of a commutative node (or a bare
		// source feeding the spine) roots a feature generator.
		if !rootSeen[id] {
			rootSeen[id] = true
			roots = append(roots, id)
		}
	}
	out := g.Node(g.Output())
	if !out.IsSource() && out.Op.Commutative() {
		descend(g.Output())
	} else {
		roots = append(roots, g.Output())
	}

	// Rules 2 and 3: assign every non-spine node to the generator(s) whose
	// root it reaches. Reaching multiple roots makes it preprocessing.
	reachedRoots := make(map[NodeID]map[NodeID]bool) // node -> set of roots reachable downstream
	for _, r := range roots {
		reachedRoots[r] = map[NodeID]bool{r: true}
		for anc := range g.AncestorsOf(r) {
			if reachedRoots[anc] == nil {
				reachedRoots[anc] = make(map[NodeID]bool)
			}
			reachedRoots[anc][r] = true
		}
	}

	rootIdx := make(map[NodeID]int, len(roots))
	for i, r := range roots {
		rootIdx[r] = i
		src := g.SourcesOf(r)
		a.IFVs = append(a.IFVs, IFV{Root: r, Sources: src, LeafPos: i})
	}

	for _, id := range g.Topo() {
		n := g.Node(id)
		if spine[id] {
			a.Spine = append(a.Spine, id)
			continue
		}
		rs := reachedRoots[id]
		switch {
		case len(rs) == 0:
			if id == g.Output() || n.IsSource() {
				continue
			}
			return nil, fmt.Errorf("graph: node %d (%s) reaches no feature generator", id, n.Label)
		case len(rs) == 1:
			if n.IsSource() {
				continue // sources are recorded via IFV.Sources, not Nodes
			}
			var root NodeID
			for r := range rs {
				root = r
			}
			i := rootIdx[root]
			a.IFVs[i].Nodes = append(a.IFVs[i].Nodes, id)
			a.ifvOfNode[id] = i
		default:
			if n.IsSource() {
				continue
			}
			a.Preprocessing = append(a.Preprocessing, id)
		}
	}

	// Feature generators must be disjoint by construction; verify as a
	// defensive invariant.
	seen := make(map[NodeID]int)
	for i, ifv := range a.IFVs {
		for _, id := range ifv.Nodes {
			if j, dup := seen[id]; dup {
				return nil, fmt.Errorf("graph: node %d assigned to generators %d and %d", id, j, i)
			}
			seen[id] = i
		}
	}
	return a, nil
}

// NonDeterministic is an optional Op extension: operators whose output is
// not a pure function of their inputs (sampling transforms, wall-clock
// features) implement it to opt their feature generator out of feature-level
// caching. Operators without the method are assumed deterministic.
type NonDeterministic interface {
	NonDeterministic() bool
}

// Cacheable reports whether IFV i can be served from a feature-level cache:
// its generator must read at least one raw source (the cache key) and every
// generator op must be deterministic, so a cached row is a faithful stand-in
// for recomputation. The cache planner consults this before assigning any
// budget.
func (a *Analysis) Cacheable(g *Graph, i int) bool {
	ifv := a.IFVs[i]
	if len(ifv.Sources) == 0 {
		return false
	}
	for _, id := range ifv.Nodes {
		if nd, ok := g.Node(id).Op.(NonDeterministic); ok && nd.NonDeterministic() {
			return false
		}
	}
	return true
}

// Span is a half-open column interval [Start, End) in the full feature vector.
type Span struct {
	Start, End int
}

// Width returns End - Start.
func (s Span) Width() int { return s.End - s.Start }

// ColumnSpans maps each IFV to its column span in the full concatenated
// feature vector, given the output width of every feature-generator root
// (widths are known only after fitting, e.g. TF-IDF vocabulary size).
// Spans follow leaf order, which is the concatenation order of the spine.
func (a *Analysis) ColumnSpans(widths map[NodeID]int) ([]Span, error) {
	spans := make([]Span, len(a.IFVs))
	off := 0
	for i, ifv := range a.IFVs {
		w, ok := widths[ifv.Root]
		if !ok {
			return nil, fmt.Errorf("graph: no width recorded for IFV root %d", ifv.Root)
		}
		if w < 0 {
			return nil, fmt.Errorf("graph: negative width %d for IFV root %d", w, ifv.Root)
		}
		spans[i] = Span{Start: off, End: off + w}
		off += w
	}
	return spans, nil
}

// ExecutionOrder returns the node ids needed to compute the given subset of
// IFVs (by index), comprising all preprocessing nodes followed by the
// generators' nodes, in global topological order. Passing every IFV index
// yields the order for the full feature vector minus the spine.
func (a *Analysis) ExecutionOrder(g *Graph, ifvs []int) []NodeID {
	want := make(map[NodeID]bool)
	for _, id := range a.Preprocessing {
		want[id] = true
	}
	for _, i := range ifvs {
		for _, id := range a.IFVs[i].Nodes {
			want[id] = true
		}
	}
	var order []NodeID
	for _, id := range g.Topo() {
		if want[id] {
			order = append(order, id)
		}
	}
	return order
}

// SortedIFVIndices returns 0..len(IFVs)-1; a convenience for callers that
// need the full set.
func (a *Analysis) SortedIFVIndices() []int {
	idx := make([]int, len(a.IFVs))
	for i := range idx {
		idx[i] = i
	}
	sort.Ints(idx)
	return idx
}
