package graph

// BlockSort orders the graph's nodes for compilation: a topological sort that
// heuristically minimizes the number of transitions between compilable (Weld)
// nodes and non-compilable (Python) nodes, since every transition costs a
// marshaling step (paper section 5.2, "Sorting"). The heuristic schedules
// each Python node at the earliest position its dependencies allow (Kahn's
// algorithm preferring ready Python nodes), which clusters Python
// preprocessing at the front and leaves long uninterrupted Weld runs behind
// it. BlockSort returns whichever of the heuristic order and the naive
// topological order has fewer transitions, so it never does worse than not
// sorting at all.
func BlockSort(g *Graph) []NodeID {
	heuristic := pythonFirstTopo(g)
	naive := g.Topo()
	if Transitions(g, heuristic) <= Transitions(g, naive) {
		return heuristic
	}
	out := make([]NodeID, len(naive))
	copy(out, naive)
	return out
}

// pythonFirstTopo is Kahn's algorithm emitting ready non-compilable nodes
// before ready compilable ones, with NodeID order as the tie-break.
func pythonFirstTopo(g *Graph) []NodeID {
	indeg := make([]int, g.NumNodes())
	for _, n := range g.Nodes() {
		indeg[n.ID] = len(n.Inputs)
	}
	// Two ready pools: python (non-compilable) and weld (compilable+sources).
	var pyReady, weldReady []NodeID
	push := func(id NodeID) {
		n := g.Node(id)
		if !n.IsSource() && !n.Op.Compilable() {
			pyReady = insertSorted(pyReady, id)
		} else {
			weldReady = insertSorted(weldReady, id)
		}
	}
	for _, n := range g.Nodes() {
		if indeg[n.ID] == 0 {
			push(n.ID)
		}
	}
	order := make([]NodeID, 0, g.NumNodes())
	for len(pyReady)+len(weldReady) > 0 {
		var id NodeID
		if len(pyReady) > 0 {
			id, pyReady = pyReady[0], pyReady[1:]
		} else {
			id, weldReady = weldReady[0], weldReady[1:]
		}
		order = append(order, id)
		for _, c := range g.Consumers(id) {
			indeg[c]--
			if indeg[c] == 0 {
				push(c)
			}
		}
	}
	return order
}

func insertSorted(a []NodeID, id NodeID) []NodeID {
	i := len(a)
	a = append(a, id)
	for i > 0 && a[i-1] > id {
		a[i] = a[i-1]
		i--
	}
	a[i] = id
	return a
}

// Block is a maximal run of nodes executing in the same runtime.
type Block struct {
	// Compiled is true for Weld blocks, false for Python blocks.
	Compiled bool
	// Nodes in execution order. Source nodes never appear in blocks.
	Nodes []NodeID
}

// Blocks partitions a node ordering into maximal same-runtime blocks,
// skipping source nodes (raw inputs are materialized before execution).
func Blocks(g *Graph, order []NodeID) []Block {
	var blocks []Block
	for _, id := range order {
		n := g.Node(id)
		if n.IsSource() {
			continue
		}
		c := n.Op.Compilable()
		if len(blocks) == 0 || blocks[len(blocks)-1].Compiled != c {
			blocks = append(blocks, Block{Compiled: c})
		}
		b := &blocks[len(blocks)-1]
		b.Nodes = append(b.Nodes, id)
	}
	return blocks
}

// Transitions counts runtime transitions in an ordering: the number of
// adjacent block pairs with different runtimes. Lower is better.
func Transitions(g *Graph, order []NodeID) int {
	b := Blocks(g, order)
	if len(b) == 0 {
		return 0
	}
	return len(b) - 1
}

// ValidTopo reports whether order is a permutation of all nodes where every
// node appears after all of its inputs.
func ValidTopo(g *Graph, order []NodeID) bool {
	if len(order) != g.NumNodes() {
		return false
	}
	pos := make(map[NodeID]int, len(order))
	for i, id := range order {
		if _, dup := pos[id]; dup {
			return false
		}
		pos[id] = i
	}
	for _, n := range g.Nodes() {
		for _, in := range n.Inputs {
			if pos[in] >= pos[n.ID] {
				return false
			}
		}
	}
	return true
}
