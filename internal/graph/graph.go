// Package graph implements Willump's transformation graph: the directed
// acyclic graph that represents an ML inference pipeline from raw inputs to
// the feature vector consumed by the model (paper section 5.1). It also
// implements the dataflow analyses the optimizations depend on: independent
// feature vector (IFV) identification, feature-generator partitioning,
// preprocessing-node detection, topological sorting, and transition-minimizing
// block ordering for compilation.
package graph

import (
	"context"
	"fmt"

	"willump/internal/value"
)

// Op is a feature transformation. Operators implement both execution paths:
// Apply is the compiled columnar fast path; ApplyBoxed is the row-at-a-time
// boxed path used by the interpreted ("Python") executor.
type Op interface {
	// Name identifies the operator type (e.g. "tfidf").
	Name() string
	// Apply evaluates the operator over a whole columnar batch.
	Apply(ins []value.Value) (value.Value, error)
	// ApplyBoxed evaluates the operator for a single row of boxed inputs.
	ApplyBoxed(ins []any) (any, error)
	// Compilable reports whether the node can execute inside a compiled
	// (Weld) block. Non-compilable nodes run in the interpreted runtime and
	// force a language transition.
	Compilable() bool
	// Commutative reports whether the operator commutes with vector
	// concatenation (true for concatenation itself and for stateless
	// elementwise transforms). Commutative nodes form the spine the IFV
	// analysis descends through.
	Commutative() bool
}

// IntoApplier is an optional Op extension for allocation-free steady-state
// execution. ApplyInto evaluates the operator exactly like Apply, but may
// reuse the buffers of *out — the value the same plan slot produced on a
// previous execution, dead by the executor's pooling contract — and *scratch,
// an operator-owned reusable state cell the executor keeps per plan step
// (never shared across concurrent runs). Implementations must write a value
// bit-identical to Apply's into *out and must not retain ins.
type IntoApplier interface {
	ApplyInto(ins []value.Value, out *value.Value, scratch *any) error
}

// CtxBoxedApplier is an optional Op extension for interpreted-path
// operators that can honor a request context — remote lookups, chiefly.
// ApplyBoxedCtx evaluates exactly like ApplyBoxed, but the request's
// deadline and cancellation reach the operator's I/O (the deprecated
// context-free table path falls back to a fixed timeout instead). The
// interpreted drivers prefer it whenever they hold a context.
type CtxBoxedApplier interface {
	ApplyBoxedCtx(ctx context.Context, ins []any) (any, error)
}

// Elementwise is an optional extension for commutative spine operators that
// map each feature value independently. The pooled executor applies
// ApplyScalar in place over materialized feature buffers instead of routing
// through Apply. When applied to sparse matrices only stored entries are
// mapped, matching the operators' own sparse Apply semantics (implicit zeros
// stay zero).
type Elementwise interface {
	ApplyScalar(v float64) float64
}

// NodeID indexes a node within its graph.
type NodeID int

// Node is one vertex of a transformation graph. Source nodes (raw pipeline
// inputs) have a nil Op and no inputs.
type Node struct {
	ID     NodeID
	Label  string
	Op     Op // nil for source nodes
	Inputs []NodeID
}

// IsSource reports whether the node is a raw input.
func (n *Node) IsSource() bool { return n.Op == nil }

// Graph is an immutable transformation graph produced by a Builder.
type Graph struct {
	nodes   []*Node
	sources []NodeID
	output  NodeID
	topo    []NodeID // topological order, sources first
	outEdge [][]NodeID
}

// Nodes returns all nodes indexed by NodeID.
func (g *Graph) Nodes() []*Node { return g.nodes }

// Node returns the node with the given id.
func (g *Graph) Node(id NodeID) *Node { return g.nodes[id] }

// Sources returns the raw-input node ids in declaration order.
func (g *Graph) Sources() []NodeID { return g.sources }

// Output returns the sink node id (the final feature vector fed to the model).
func (g *Graph) Output() NodeID { return g.output }

// Topo returns a topological ordering of all nodes (inputs before users).
func (g *Graph) Topo() []NodeID { return g.topo }

// Consumers returns the ids of nodes that read the output of id.
func (g *Graph) Consumers(id NodeID) []NodeID { return g.outEdge[id] }

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// Builder assembles a Graph. The zero Builder is not usable; call NewBuilder.
type Builder struct {
	nodes   []*Node
	sources []NodeID
	output  NodeID
	hasOut  bool
}

// NewBuilder returns an empty graph builder.
func NewBuilder() *Builder { return &Builder{output: -1} }

// Input declares a raw input source with the given name and returns its id.
func (b *Builder) Input(name string) NodeID {
	id := NodeID(len(b.nodes))
	b.nodes = append(b.nodes, &Node{ID: id, Label: name})
	b.sources = append(b.sources, id)
	return id
}

// Add appends a transformation node applying op to the given inputs.
func (b *Builder) Add(label string, op Op, inputs ...NodeID) NodeID {
	if op == nil {
		panic("graph: Add called with nil op; use Input for sources")
	}
	id := NodeID(len(b.nodes))
	ins := make([]NodeID, len(inputs))
	copy(ins, inputs)
	b.nodes = append(b.nodes, &Node{ID: id, Label: label, Op: op, Inputs: ins})
	return id
}

// SetOutput marks the node whose value is the model's feature vector.
func (b *Builder) SetOutput(id NodeID) {
	b.output = id
	b.hasOut = true
}

// Build validates the graph (single output, edges in range, acyclic — acyclic
// by construction since inputs must precede their users, which Build checks)
// and returns it.
func (b *Builder) Build() (*Graph, error) {
	if !b.hasOut {
		return nil, fmt.Errorf("graph: no output set")
	}
	if int(b.output) < 0 || int(b.output) >= len(b.nodes) {
		return nil, fmt.Errorf("graph: output id %d out of range", b.output)
	}
	for _, n := range b.nodes {
		for _, in := range n.Inputs {
			if in < 0 || int(in) >= len(b.nodes) {
				return nil, fmt.Errorf("graph: node %d (%s) has input %d out of range", n.ID, n.Label, in)
			}
			if in >= n.ID {
				return nil, fmt.Errorf("graph: node %d (%s) depends on node %d which does not precede it", n.ID, n.Label, in)
			}
		}
	}
	g := &Graph{nodes: b.nodes, sources: b.sources, output: b.output}
	g.outEdge = make([][]NodeID, len(b.nodes))
	for _, n := range b.nodes {
		for _, in := range n.Inputs {
			g.outEdge[in] = append(g.outEdge[in], n.ID)
		}
	}
	g.topo = make([]NodeID, len(b.nodes))
	for i := range g.topo {
		g.topo[i] = NodeID(i) // ids are already topologically ordered by construction
	}
	// Check reachability: every node should be an ancestor of the output or a
	// source; unreachable transformation nodes indicate a pipeline bug.
	reach := g.AncestorsOf(g.output)
	reach[g.output] = true
	for _, n := range b.nodes {
		if !n.IsSource() && !reach[n.ID] {
			return nil, fmt.Errorf("graph: node %d (%s) does not reach the output", n.ID, n.Label)
		}
	}
	return g, nil
}

// AncestorsOf returns the set of nodes from which id is reachable (upstream
// closure, excluding id itself).
func (g *Graph) AncestorsOf(id NodeID) map[NodeID]bool {
	seen := make(map[NodeID]bool)
	var visit func(NodeID)
	visit = func(n NodeID) {
		for _, in := range g.nodes[n].Inputs {
			if !seen[in] {
				seen[in] = true
				visit(in)
			}
		}
	}
	visit(id)
	return seen
}

// SourcesOf returns the raw-input node ids that id transitively depends on,
// in declaration order.
func (g *Graph) SourcesOf(id NodeID) []NodeID {
	anc := g.AncestorsOf(id)
	anc[id] = true
	var out []NodeID
	for _, s := range g.sources {
		if anc[s] {
			out = append(out, s)
		}
	}
	return out
}
