// Package ops implements Willump's feature-computing operators: string
// processing, tokenization, word and character n-grams, TF-IDF and count
// vectorization, feature hashing, categorical encoding, numeric scaling,
// local and remote table lookups (joins), and vector concatenation. These are
// the operator families of the paper's six benchmarks (Table 1).
//
// Every operator implements graph.Op twice over: a columnar batch fast path
// (Apply) used by the compiled Weld-like executor, and a boxed row-at-a-time
// slow path (ApplyBoxed) used by the interpreted "Python" executor. Stateful
// operators additionally implement Fitter and learn their parameters
// (vocabularies, IDF weights, category maps, scaling statistics) from the
// training set before serving.
package ops

import (
	"fmt"

	"willump/internal/value"
)

// Fitter is implemented by operators that learn state from training data
// (e.g. TF-IDF vocabularies). Fit is called exactly once, during pipeline
// training, with the operator's columnar inputs over the training batch.
type Fitter interface {
	Fit(ins []value.Value) error
	// Fitted reports whether Fit has been called.
	Fitted() bool
}

// errArity formats a consistent arity error.
func errArity(op string, got, want int) error {
	return fmt.Errorf("ops: %s: got %d inputs, want %d", op, got, want)
}

// errKind formats a consistent input-kind error.
func errKind(op string, pos int, got value.Kind, want value.Kind) error {
	return fmt.Errorf("ops: %s: input %d is %s, want %s", op, pos, got, want)
}

// errBoxed formats a consistent boxed-type error.
func errBoxed(op string, pos int, got any, want string) error {
	return fmt.Errorf("ops: %s: boxed input %d is %T, want %s", op, pos, got, want)
}
