package ops

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"willump/internal/graph"
	"willump/internal/value"
)

// applyStrings is a test helper running an op's columnar path on strings.
func applyStrings(t *testing.T, op graph.Op, in []string) value.Value {
	t.Helper()
	out, err := op.Apply([]value.Value{value.NewStrings(in)})
	if err != nil {
		t.Fatalf("%s.Apply: %v", op.Name(), err)
	}
	return out
}

func TestCleanNormalizes(t *testing.T) {
	out := applyStrings(t, NewClean(), []string{"Hello, World!", "a-b_c"})
	want := []string{"hello  world ", "a b c"}
	if !reflect.DeepEqual(out.Strings, want) {
		t.Errorf("Clean = %q, want %q", out.Strings, want)
	}
}

func TestTokenize(t *testing.T) {
	out, err := NewTokenize().Apply([]value.Value{value.NewStrings([]string{"a b  c", ""})})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if !reflect.DeepEqual(out.Tokens[0], []string{"a", "b", "c"}) {
		t.Errorf("tokens = %v", out.Tokens[0])
	}
	if len(out.Tokens[1]) != 0 {
		t.Errorf("empty string should have no tokens, got %v", out.Tokens[1])
	}
}

func TestTextStats(t *testing.T) {
	ts := NewTextStats([]string{"damn"})
	out := applyStrings(t, ts, []string{"DAMN you", "ok"})
	m := out.Mat
	if m.Cols() != ts.Width() {
		t.Fatalf("cols = %d, want %d", m.Cols(), ts.Width())
	}
	if m.At(0, 0) != 8 { // length
		t.Errorf("len = %v, want 8", m.At(0, 0))
	}
	if m.At(0, 1) != 2 { // words
		t.Errorf("words = %v, want 2", m.At(0, 1))
	}
	if m.At(0, 3) != 1 { // keyword count catches lowercased DAMN
		t.Errorf("keywords = %v, want 1", m.At(0, 3))
	}
	if m.At(1, 3) != 0 {
		t.Errorf("keywords = %v, want 0", m.At(1, 3))
	}
}

func TestWordNGrams(t *testing.T) {
	w := NewWordNGrams(1, 2)
	out, err := w.Apply([]value.Value{value.NewTokens([][]string{{"a", "b", "c"}})})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	want := []string{"a", "b", "c", "a b", "b c"}
	if !reflect.DeepEqual(out.Tokens[0], want) {
		t.Errorf("ngrams = %v, want %v", out.Tokens[0], want)
	}
}

func TestCharNGrams(t *testing.T) {
	c := NewCharNGrams(2, 3)
	out := applyStrings(t, c, []string{"abcd"})
	want := []string{"ab", "bc", "cd", "abc", "bcd"}
	if !reflect.DeepEqual(out.Tokens[0], want) {
		t.Errorf("char ngrams = %v, want %v", out.Tokens[0], want)
	}
}

func fitTFIDF(t *testing.T, docs [][]string, maxFeat int, norm Norm) *TFIDF {
	t.Helper()
	tf := NewTFIDF(maxFeat, norm)
	if err := tf.Fit([]value.Value{value.NewTokens(docs)}); err != nil {
		t.Fatalf("TFIDF.Fit: %v", err)
	}
	return tf
}

func TestTFIDFFitAndTransform(t *testing.T) {
	docs := [][]string{{"a", "b", "a"}, {"b", "c"}, {"c"}}
	tf := fitTFIDF(t, docs, 100, NormNone)
	if tf.Width() != 3 {
		t.Fatalf("vocab size = %d, want 3", tf.Width())
	}
	out, err := tf.Apply([]value.Value{value.NewTokens(docs)})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	m := out.Mat
	colA := tf.Vocabulary()["a"]
	colC := tf.Vocabulary()["c"]
	// "a" appears twice in doc 0 and in 1 of 3 docs: weight 2 * idf_a.
	idfA := math.Log(4.0/2.0) + 1
	if got := m.At(0, colA); math.Abs(got-2*idfA) > 1e-12 {
		t.Errorf("tfidf(a, doc0) = %v, want %v", got, 2*idfA)
	}
	if got := m.At(0, colC); got != 0 {
		t.Errorf("tfidf(c, doc0) = %v, want 0", got)
	}
}

func TestTFIDFL2NormRowsAreUnit(t *testing.T) {
	docs := [][]string{{"a", "b"}, {"b", "c", "c"}}
	tf := fitTFIDF(t, docs, 100, NormL2)
	out, err := tf.Apply([]value.Value{value.NewTokens(docs)})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	for r := 0; r < out.Mat.Rows(); r++ {
		var sq float64
		out.Mat.ForEachNZ(r, func(c int, v float64) { sq += v * v })
		if math.Abs(math.Sqrt(sq)-1) > 1e-9 {
			t.Errorf("row %d norm = %v, want 1", r, math.Sqrt(sq))
		}
	}
}

func TestTFIDFMaxFeaturesKeepsMostFrequent(t *testing.T) {
	docs := [][]string{{"x", "y"}, {"x", "z"}, {"x"}}
	tf := fitTFIDF(t, docs, 1, NormNone)
	if tf.Width() != 1 {
		t.Fatalf("vocab size = %d, want 1", tf.Width())
	}
	if _, ok := tf.Vocabulary()["x"]; !ok {
		t.Errorf("vocabulary = %v, want to keep most frequent term x", tf.Vocabulary())
	}
}

func TestTFIDFApplyBeforeFitErrors(t *testing.T) {
	tf := NewTFIDF(10, NormNone)
	if _, err := tf.Apply([]value.Value{value.NewTokens([][]string{{"a"}})}); err == nil {
		t.Error("want error applying unfitted TFIDF")
	}
	if _, err := tf.ApplyBoxed([]any{[]string{"a"}}); err == nil {
		t.Error("want error on boxed path too")
	}
}

func TestCountVectorizer(t *testing.T) {
	cv := NewCountVectorizer(10, false)
	docs := [][]string{{"a", "a", "b"}}
	if err := cv.Fit([]value.Value{value.NewTokens(docs)}); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	out, err := cv.Apply([]value.Value{value.NewTokens(docs)})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if got := out.Mat.At(0, 0); got != 2 { // "a" sorts first
		t.Errorf("count(a) = %v, want 2", got)
	}
	bin := NewCountVectorizer(10, true)
	if err := bin.Fit([]value.Value{value.NewTokens(docs)}); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	outB, err := bin.Apply([]value.Value{value.NewTokens(docs)})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if got := outB.Mat.At(0, 0); got != 1 {
		t.Errorf("binary count(a) = %v, want 1", got)
	}
}

func TestHashingVectorizerStableAndBounded(t *testing.T) {
	hv := NewHashingVectorizer(8)
	out, err := hv.Apply([]value.Value{value.NewTokens([][]string{{"tok", "tok", "other"}})})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if out.Mat.Cols() != 8 {
		t.Fatalf("cols = %d, want 8", out.Mat.Cols())
	}
	want := 2.0
	if hv.bucket("other") == hv.bucket("tok") {
		want = 3 // collision folds "other" into the same bucket
	}
	if got := out.Mat.At(0, hv.bucket("tok")); got != want {
		t.Errorf("bucket(tok) = %v, want %v", got, want)
	}
}

func TestOneHot(t *testing.T) {
	oh := NewOneHot(10)
	train := value.NewStrings([]string{"red", "blue", "red"})
	if err := oh.Fit([]value.Value{train}); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	out, err := oh.Apply([]value.Value{value.NewStrings([]string{"red", "green"})})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if out.Mat.Cols() != 2 {
		t.Fatalf("cols = %d, want 2", out.Mat.Cols())
	}
	if out.Mat.RowNNZ(0) != 1 {
		t.Errorf("known category should have one hot bit")
	}
	if out.Mat.RowNNZ(1) != 0 {
		t.Errorf("unknown category should be all zeros")
	}
}

func TestOneHotMaxCategories(t *testing.T) {
	oh := NewOneHot(2)
	train := value.NewStrings([]string{"a", "a", "b", "b", "c"})
	if err := oh.Fit([]value.Value{train}); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if oh.Width() != 2 {
		t.Errorf("width = %d, want 2 (capped)", oh.Width())
	}
}

func TestOrdinal(t *testing.T) {
	o := NewOrdinal()
	train := value.NewStrings([]string{"x", "x", "y"})
	if err := o.Fit([]value.Value{train}); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	out, err := o.Apply([]value.Value{value.NewStrings([]string{"x", "y", "zzz"})})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if out.Floats[0] != 0 || out.Floats[1] != 1 || out.Floats[2] != -1 {
		t.Errorf("codes = %v, want [0 1 -1]", out.Floats)
	}
}

func TestStandardScale(t *testing.T) {
	s := NewStandardScale()
	in := value.NewFloats([]float64{0, 10})
	if err := s.Fit([]value.Value{in}); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	out, err := s.Apply([]value.Value{in})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if math.Abs(out.Mat.At(0, 0)+1) > 1e-12 || math.Abs(out.Mat.At(1, 0)-1) > 1e-12 {
		t.Errorf("scaled = [%v %v], want [-1 1]", out.Mat.At(0, 0), out.Mat.At(1, 0))
	}
}

func TestNumericStats(t *testing.T) {
	n := NewNumericStats()
	out, err := n.Apply([]value.Value{value.NewFloats([]float64{0, -2})})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if out.Mat.At(0, 3) != 1 {
		t.Error("is_zero flag should be 1 for 0")
	}
	if out.Mat.At(1, 0) != -2 || out.Mat.At(1, 2) != 4 {
		t.Errorf("row = [%v %v %v %v]", out.Mat.At(1, 0), out.Mat.At(1, 1), out.Mat.At(1, 2), out.Mat.At(1, 3))
	}
}

func TestConcatMixedKinds(t *testing.T) {
	c := NewConcat()
	m, _ := value.NewFloats([]float64{1, 2}).AsMatrix()
	out, err := c.Apply([]value.Value{
		value.NewMat(m),
		value.NewInts([]int64{10, 20}),
	})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if out.Mat.Cols() != 2 || out.Mat.At(1, 1) != 20 {
		t.Errorf("concat wrong: cols=%d at(1,1)=%v", out.Mat.Cols(), out.Mat.At(1, 1))
	}
}

func TestClip(t *testing.T) {
	c := NewClip(-1, 1)
	out, err := c.Apply([]value.Value{value.NewFloats([]float64{-5, 0.5, 5})})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	want := []float64{-1, 0.5, 1}
	if !reflect.DeepEqual(out.Floats, want) {
		t.Errorf("clip = %v, want %v", out.Floats, want)
	}
}

func TestLookupLocalTable(t *testing.T) {
	table := NewLocalTable(2, map[int64][]float64{
		1: {1.5, 2.5},
		2: {3, 4},
	})
	l := NewLookup("users", table)
	out, err := l.Apply([]value.Value{value.NewInts([]int64{2, 99, 1})})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if out.Mat.At(0, 1) != 4 {
		t.Errorf("lookup(2) = %v, want 4", out.Mat.At(0, 1))
	}
	if out.Mat.RowNNZ(1) != 0 {
		t.Error("missing key should give zero vector")
	}
	if out.Mat.At(2, 0) != 1.5 {
		t.Errorf("lookup(1) = %v, want 1.5", out.Mat.At(2, 0))
	}
	if table.Requests() != 3 {
		t.Errorf("requests = %d, want 3 (one per key for local tables)", table.Requests())
	}
}

// Property: for every op, the boxed row path agrees with the columnar path.
func TestBoxedColumnarAgreementProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	vocabWords := []string{"apple", "banana", "cherry", "dog", "echo", "fox"}
	randomDocs := func(n int) []string {
		docs := make([]string, n)
		for i := range docs {
			k := 1 + rng.Intn(6)
			s := ""
			for j := 0; j < k; j++ {
				if j > 0 {
					s += " "
				}
				s += vocabWords[rng.Intn(len(vocabWords))]
			}
			docs[i] = s
		}
		return docs
	}
	docs := randomDocs(50)

	// Build a fitted text chain to test stateful ops.
	tok := NewTokenize()
	tokens, err := tok.Apply([]value.Value{value.NewStrings(docs)})
	if err != nil {
		t.Fatal(err)
	}
	tfidf := NewTFIDF(20, NormL2)
	if err := tfidf.Fit([]value.Value{tokens}); err != nil {
		t.Fatal(err)
	}

	checkTextOp := func(op graph.Op, in []string) {
		t.Helper()
		colOut, err := op.Apply([]value.Value{value.NewStrings(in)})
		if err != nil {
			t.Fatalf("%s.Apply: %v", op.Name(), err)
		}
		for r := 0; r < len(in); r++ {
			boxed, err := op.ApplyBoxed([]any{in[r]})
			if err != nil {
				t.Fatalf("%s.ApplyBoxed: %v", op.Name(), err)
			}
			if !reflect.DeepEqual(boxed, colOut.Box(r)) {
				t.Fatalf("%s row %d: boxed %v != columnar %v", op.Name(), r, boxed, colOut.Box(r))
			}
		}
	}
	checkTextOp(NewClean(), docs)
	checkTextOp(NewCharNGrams(2, 3), docs)
	checkTextOp(NewTextStats([]string{"dog"}), docs)

	// Token-consuming ops.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(5)
		toks := make([]string, n)
		for i := range toks {
			toks[i] = vocabWords[r.Intn(len(vocabWords))]
		}
		in := value.NewTokens([][]string{toks})
		for _, op := range []graph.Op{NewWordNGrams(1, 2), tfidf, NewHashingVectorizer(16)} {
			col, err := op.Apply([]value.Value{in})
			if err != nil {
				return false
			}
			boxed, err := op.ApplyBoxed([]any{toks})
			if err != nil {
				return false
			}
			want := col.Box(0)
			if bf, ok := boxed.([]float64); ok {
				wf := want.([]float64)
				if len(bf) != len(wf) {
					return false
				}
				for i := range bf {
					if math.Abs(bf[i]-wf[i]) > 1e-12 {
						return false
					}
				}
			} else if !reflect.DeepEqual(boxed, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFuseTextChainMatchesUnfused(t *testing.T) {
	docs := []string{"The Quick Brown fox", "jumps OVER the lazy dog", "the dog!"}
	clean := NewClean()
	tok := NewTokenize()
	ng := NewWordNGrams(1, 2)
	tfidf := NewTFIDF(50, NormL2)

	// Unfused pipeline.
	v := value.NewStrings(docs)
	cv, err := clean.Apply([]value.Value{v})
	if err != nil {
		t.Fatal(err)
	}
	tv, err := tok.Apply([]value.Value{cv})
	if err != nil {
		t.Fatal(err)
	}
	nv, err := ng.Apply([]value.Value{tv})
	if err != nil {
		t.Fatal(err)
	}
	if err := tfidf.Fit([]value.Value{nv}); err != nil {
		t.Fatal(err)
	}
	want, err := tfidf.Apply([]value.Value{nv})
	if err != nil {
		t.Fatal(err)
	}

	fused, ok := FuseTextChain([]graph.Op{clean, tok, ng, tfidf})
	if !ok {
		t.Fatal("FuseTextChain refused a canonical chain")
	}
	got, err := fused.Apply([]value.Value{v})
	if err != nil {
		t.Fatalf("fused Apply: %v", err)
	}
	if got.Mat.Rows() != want.Mat.Rows() || got.Mat.Cols() != want.Mat.Cols() {
		t.Fatalf("fused shape (%d,%d) != unfused (%d,%d)",
			got.Mat.Rows(), got.Mat.Cols(), want.Mat.Rows(), want.Mat.Cols())
	}
	for r := 0; r < want.Mat.Rows(); r++ {
		for c := 0; c < want.Mat.Cols(); c++ {
			if math.Abs(got.Mat.At(r, c)-want.Mat.At(r, c)) > 1e-12 {
				t.Fatalf("fused (%d,%d) = %v, want %v", r, c, got.Mat.At(r, c), want.Mat.At(r, c))
			}
		}
	}
}

func TestFuseTextChainVariants(t *testing.T) {
	tfidf := NewTFIDF(10, NormNone)
	_ = tfidf.Fit([]value.Value{value.NewTokens([][]string{{"ab", "bc"}})})
	if _, ok := FuseTextChain([]graph.Op{NewCharNGrams(2, 2), tfidf}); !ok {
		t.Error("char-ngram + tfidf should fuse")
	}
	if _, ok := FuseTextChain([]graph.Op{NewClean(), NewTokenize()}); ok {
		t.Error("chain without vectorizer should not fuse")
	}
	unfitted := NewTFIDF(10, NormNone)
	if _, ok := FuseTextChain([]graph.Op{NewTokenize(), unfitted}); ok {
		t.Error("unfitted vectorizer should not fuse")
	}
	if _, ok := FuseTextChain([]graph.Op{NewConcat()}); ok {
		t.Error("single op should not fuse")
	}
}
