package ops

import (
	"context"
	"encoding/json"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"willump/internal/artifact"
	"willump/internal/feature"
	"willump/internal/value"
)

// Table is a keyed feature table: the abstraction behind the paper's "remote
// data lookup, data joins" operators (Music, Credit, Tracking benchmarks).
// Implementations include the in-memory LocalTable and the kvstore client's
// remote table.
type Table interface {
	// Dim returns the width of each stored feature vector.
	Dim() int
	// LookupBatch fetches feature vectors for all keys. Missing keys yield
	// nil entries; callers substitute a default vector. Implementations may
	// batch or pipeline the fetches.
	LookupBatch(keys []int64) ([][]float64, error)
	// Requests returns the cumulative number of lookup requests issued
	// (cache misses reaching the backing store count; for remote tables this
	// counts actual remote requests, the metric of paper Table 2).
	Requests() int64
}

// AsyncTable is an optional Table extension for remote stores that can
// begin a batched lookup without blocking, so the network round trip
// overlaps local feature compute. The weld runtime detects it at plan-fuse
// time and kicks off the fetch when a run starts, joining only where the
// lookup's output is first consumed.
type AsyncTable interface {
	Table
	// StartLookup begins fetching keys and returns immediately. The fetch
	// is bounded by ctx; callers must Wait or Cancel the handle.
	StartLookup(ctx context.Context, keys []int64) PendingLookup
}

// PendingLookup is one in-flight asynchronous multi-get.
type PendingLookup interface {
	// Wait blocks until the fetch completes or ctx ends, returning the rows
	// in key order (nil entries for missing keys). Wait runs on the request
	// goroutine, so implementations may record trace spans here.
	Wait(ctx context.Context) ([][]float64, error)
	// Cancel abandons the fetch without waiting for its result.
	Cancel()
}

// CtxTable is an optional Table extension for stores whose lookups honor a
// request context (deadline propagation, cancellation). The compiled batch
// path prefers it over the context-free LookupBatch when present.
type CtxTable interface {
	Table
	LookupBatchCtx(ctx context.Context, keys []int64) ([][]float64, error)
}

// SchemaChecker is an optional Table extension for remote tables that can
// validate their server-side schema against the operator's expectations up
// front, so a bad binding surfaces at artifact Load/rebind time with a
// descriptive error instead of failing on the first predict.
type SchemaChecker interface {
	CheckSchema(dim int) error
}

// StoreStats is a point-in-time snapshot of a production remote-store
// client's health counters, surfaced per model on /stats and /metrics. It
// lives in ops (rather than the store package) so core and serving can
// aggregate it without importing the client implementation.
type StoreStats struct {
	// Requests counts remote multi-get calls that reached the network path.
	Requests int64
	// Retries counts re-attempts after transient failures.
	Retries int64
	// HedgesIssued / HedgesWon count speculative second attempts launched
	// against tail latency, and how many returned before the primary.
	HedgesIssued int64
	HedgesWon    int64
	// Degraded counts requests answered from cached/default feature values
	// while the circuit breaker was open (the request still succeeded).
	Degraded int64
	// BreakerOpens counts closed/half-open -> open transitions.
	BreakerOpens int64
	// Inflight is the number of lookups currently on the wire.
	Inflight int64
	// BreakerState is "closed", "half-open", or "open".
	BreakerState string
	// P50Millis / P99Millis are windowed lookup latency quantiles.
	P50Millis float64
	P99Millis float64
}

// merged folds another snapshot into this one (multiple store clients bound
// to one pipeline): counters sum, quantiles take the worst, and the breaker
// state reports the most degraded client.
func (s StoreStats) merged(o StoreStats) StoreStats {
	s.Requests += o.Requests
	s.Retries += o.Retries
	s.HedgesIssued += o.HedgesIssued
	s.HedgesWon += o.HedgesWon
	s.Degraded += o.Degraded
	s.BreakerOpens += o.BreakerOpens
	s.Inflight += o.Inflight
	if breakerRank(o.BreakerState) > breakerRank(s.BreakerState) {
		s.BreakerState = o.BreakerState
	}
	s.P50Millis = max(s.P50Millis, o.P50Millis)
	s.P99Millis = max(s.P99Millis, o.P99Millis)
	return s
}

func breakerRank(state string) int {
	switch state {
	case "open":
		return 2
	case "half-open":
		return 1
	default:
		return 0
	}
}

// Merge folds snapshots from several reporters into one pipeline-level view.
func MergeStoreStats(snaps ...StoreStats) StoreStats {
	var out StoreStats
	for i, s := range snaps {
		if i == 0 {
			out = s
			continue
		}
		out = out.merged(s)
	}
	return out
}

// StoreStatsReporter is implemented by remote-store clients that expose
// health counters. Optimized pipelines walk their lookup tables for it when
// building per-model stats.
type StoreStatsReporter interface {
	StoreStats() StoreStats
}

// LocalTable is an in-memory feature table (a local Pandas-dataframe join in
// the original benchmarks).
type LocalTable struct {
	dim      int
	rows     map[int64][]float64
	requests atomic.Int64
}

// NewLocalTable builds a local table of feature vectors with width dim.
func NewLocalTable(dim int, rows map[int64][]float64) *LocalTable {
	for k, v := range rows {
		if len(v) != dim {
			panic(fmt.Sprintf("ops: NewLocalTable: key %d has %d features, want %d", k, len(v), dim))
		}
	}
	return &LocalTable{dim: dim, rows: rows}
}

// Dim implements Table.
func (t *LocalTable) Dim() int { return t.dim }

// LookupBatch implements Table.
func (t *LocalTable) LookupBatch(keys []int64) ([][]float64, error) {
	t.requests.Add(int64(len(keys)))
	out := make([][]float64, len(keys))
	for i, k := range keys {
		out[i] = t.rows[k] // nil if missing
	}
	return out, nil
}

// Requests implements Table.
func (t *LocalTable) Requests() int64 { return t.requests.Load() }

// Rows returns the backing row map (shared, do not mutate). Artifact
// serialization inlines it so a deployment process needs no external store.
func (t *LocalTable) Rows() map[int64][]float64 { return t.rows }

// Lookup joins a key column against a feature table, producing one dense
// feature vector per row. Missing keys produce zero vectors. Lookup is
// compilable: batch lookups pipeline through the table's LookupBatch.
//
// A Lookup decoded from an artifact may arrive without a bound table (when
// the table was remote and could not be inlined); it must be bound with
// BindTable before use.
type Lookup struct {
	TableName string
	table     Table
	dim       int

	mu       sync.Mutex
	defaults []float64
}

// NewLookup returns a lookup operator against the given table.
func NewLookup(tableName string, table Table) *Lookup {
	return &Lookup{
		TableName: tableName,
		table:     table,
		dim:       table.Dim(),
		defaults:  make([]float64, table.Dim()),
	}
}

// Name implements graph.Op.
func (l *Lookup) Name() string { return "lookup(" + l.TableName + ")" }

// Compilable implements graph.Op.
func (l *Lookup) Compilable() bool { return true }

// Commutative implements graph.Op.
func (l *Lookup) Commutative() bool { return false }

// Width returns the joined feature width.
func (l *Lookup) Width() int { return l.dim }

// Table returns the backing table (nil for an unbound decoded Lookup).
func (l *Lookup) Table() Table { return l.table }

// NeedsTable reports whether the lookup still needs a table bound to it.
func (l *Lookup) NeedsTable() bool { return l.table == nil }

// TableRef returns the name callers use to bind a table at load time.
func (l *Lookup) TableRef() string { return l.TableName }

// BindTable attaches a backing table to an unbound decoded Lookup. The
// table's width must match the width the operator was fitted with.
func (l *Lookup) BindTable(t Table) error {
	if t == nil {
		return fmt.Errorf("ops: %s: BindTable(nil)", l.Name())
	}
	if t.Dim() != l.dim {
		return fmt.Errorf("ops: %s: bound table has width %d, artifact expects %d", l.Name(), t.Dim(), l.dim)
	}
	if sc, ok := t.(SchemaChecker); ok {
		// Remote tables can report a locally-configured width that disagrees
		// with what the server actually holds; validate against the server
		// now so the mismatch is a bind-time error, not a first-predict one.
		if err := sc.CheckSchema(l.dim); err != nil {
			return fmt.Errorf("ops: %s: schema validation: %w", l.Name(), err)
		}
	}
	l.table = t
	return nil
}

// Materialize builds the lookup's dense output from rows fetched out of
// band (a batch fetch, or an async prefetch joining at consume time). Rows
// arrive in key order; nil rows produce the default zero vector.
func (l *Lookup) Materialize(rows [][]float64, n int) (value.Value, error) {
	if len(rows) != n {
		return value.Value{}, fmt.Errorf("ops: %s: table returned %d rows, want %d", l.Name(), len(rows), n)
	}
	out := feature.NewDense(n, l.dim)
	for i, v := range rows {
		if v != nil {
			copy(out.Row(i), v)
		}
	}
	return value.NewMat(out), nil
}

// lookupRows is the one table-fetch path every execution mode funnels
// through: tables that honor contexts (remote store clients) are driven via
// LookupBatchCtx so deadlines and cancellation reach the wire, and only
// context-free tables fall back to the deprecated LookupBatch. Callers
// without a real request context pass context.Background(), which for
// ctx-aware tables is exactly what their own LookupBatch wrapper does.
func (l *Lookup) lookupRows(ctx context.Context, keys []int64) ([][]float64, error) {
	if ct, ok := l.table.(CtxTable); ok && ctx != nil {
		return ct.LookupBatchCtx(ctx, keys)
	}
	return l.table.LookupBatch(keys)
}

// Apply implements graph.Op.
func (l *Lookup) Apply(ins []value.Value) (value.Value, error) {
	return l.ApplyCtx(context.Background(), ins)
}

// ApplyCtx is Apply with request-context propagation: when the bound table
// honors contexts (a remote store client), the request's deadline and
// cancellation reach the wire and store trace spans land on the request's
// trace. Tables without context support use the context-free batch path.
func (l *Lookup) ApplyCtx(ctx context.Context, ins []value.Value) (value.Value, error) {
	if l.table == nil {
		return value.Value{}, fmt.Errorf("ops: %s: no table bound; supply one when loading the artifact", l.Name())
	}
	if len(ins) != 1 {
		return value.Value{}, errArity(l.Name(), len(ins), 1)
	}
	if ins[0].Kind != value.Ints {
		return value.Value{}, errKind(l.Name(), 0, ins[0].Kind, value.Ints)
	}
	keys := ins[0].Ints
	vecs, err := l.lookupRows(ctx, keys)
	if err != nil {
		return value.Value{}, fmt.Errorf("ops: %s: %w", l.Name(), err)
	}
	return l.Materialize(vecs, len(keys))
}

// ApplyBoxed implements graph.Op: one remote/local request per row, exactly
// how an unoptimized Python pipeline issues point lookups.
func (l *Lookup) ApplyBoxed(ins []any) (any, error) {
	return l.ApplyBoxedCtx(context.Background(), ins)
}

// ApplyBoxedCtx implements graph.CtxBoxedApplier: the interpreted drivers
// pass the run's request context here, so even the one-request-per-row
// baseline path propagates deadlines end-to-end instead of falling back to
// the table's fixed I/O timeout.
func (l *Lookup) ApplyBoxedCtx(ctx context.Context, ins []any) (any, error) {
	if l.table == nil {
		return nil, fmt.Errorf("ops: %s: no table bound; supply one when loading the artifact", l.Name())
	}
	if len(ins) != 1 {
		return nil, errArity(l.Name(), len(ins), 1)
	}
	k, ok := ins[0].(int64)
	if !ok {
		return nil, errBoxed(l.Name(), 0, ins[0], "int64")
	}
	vecs, err := l.lookupRows(ctx, []int64{k})
	if err != nil {
		return nil, fmt.Errorf("ops: %s: %w", l.Name(), err)
	}
	out := make([]float64, l.dim)
	if vecs[0] != nil {
		copy(out, vecs[0])
	}
	return out, nil
}

// lookupState is the serialized form of a Lookup operator. For local
// in-memory tables the rows are inlined (keys serialized as decimal
// strings), making the artifact fully self-contained; remote tables
// serialize as unbound references that the loader must rebind.
type lookupState struct {
	TableName string                     `json:"table_name"`
	Dim       int                        `json:"dim"`
	Rows      map[string]artifact.Vector `json:"rows,omitempty"`
	Inline    bool                       `json:"inline,omitempty"`
}

// MarshalState implements StateMarshaler.
func (l *Lookup) MarshalState() ([]byte, error) {
	st := lookupState{TableName: l.TableName, Dim: l.dim}
	if lt, ok := l.table.(*LocalTable); ok {
		st.Inline = true
		st.Rows = make(map[string]artifact.Vector, len(lt.Rows()))
		for k, v := range lt.Rows() {
			st.Rows[strconv.FormatInt(k, 10)] = artifact.Vector(v)
		}
	}
	return json.Marshal(st)
}

// UnmarshalState implements StateUnmarshaler.
func (l *Lookup) UnmarshalState(state []byte) error {
	var st lookupState
	if err := json.Unmarshal(state, &st); err != nil {
		return err
	}
	if st.Dim < 0 {
		return fmt.Errorf("ops: lookup state has negative width %d", st.Dim)
	}
	l.TableName = st.TableName
	l.dim = st.Dim
	l.defaults = make([]float64, st.Dim)
	l.table = nil
	if st.Inline {
		rows := make(map[int64][]float64, len(st.Rows))
		for ks, v := range st.Rows {
			k, err := strconv.ParseInt(ks, 10, 64)
			if err != nil {
				return fmt.Errorf("ops: lookup state key %q: %w", ks, err)
			}
			if len(v) != st.Dim {
				return fmt.Errorf("ops: lookup state key %q has %d features, want %d", ks, len(v), st.Dim)
			}
			rows[k] = []float64(v)
		}
		l.table = NewLocalTable(st.Dim, rows)
	}
	return nil
}
