package ops

import (
	"fmt"
	"sync"
	"sync/atomic"

	"willump/internal/feature"
	"willump/internal/value"
)

// Table is a keyed feature table: the abstraction behind the paper's "remote
// data lookup, data joins" operators (Music, Credit, Tracking benchmarks).
// Implementations include the in-memory LocalTable and the kvstore client's
// remote table.
type Table interface {
	// Dim returns the width of each stored feature vector.
	Dim() int
	// LookupBatch fetches feature vectors for all keys. Missing keys yield
	// nil entries; callers substitute a default vector. Implementations may
	// batch or pipeline the fetches.
	LookupBatch(keys []int64) ([][]float64, error)
	// Requests returns the cumulative number of lookup requests issued
	// (cache misses reaching the backing store count; for remote tables this
	// counts actual remote requests, the metric of paper Table 2).
	Requests() int64
}

// LocalTable is an in-memory feature table (a local Pandas-dataframe join in
// the original benchmarks).
type LocalTable struct {
	dim      int
	rows     map[int64][]float64
	requests atomic.Int64
}

// NewLocalTable builds a local table of feature vectors with width dim.
func NewLocalTable(dim int, rows map[int64][]float64) *LocalTable {
	for k, v := range rows {
		if len(v) != dim {
			panic(fmt.Sprintf("ops: NewLocalTable: key %d has %d features, want %d", k, len(v), dim))
		}
	}
	return &LocalTable{dim: dim, rows: rows}
}

// Dim implements Table.
func (t *LocalTable) Dim() int { return t.dim }

// LookupBatch implements Table.
func (t *LocalTable) LookupBatch(keys []int64) ([][]float64, error) {
	t.requests.Add(int64(len(keys)))
	out := make([][]float64, len(keys))
	for i, k := range keys {
		out[i] = t.rows[k] // nil if missing
	}
	return out, nil
}

// Requests implements Table.
func (t *LocalTable) Requests() int64 { return t.requests.Load() }

// Lookup joins a key column against a feature table, producing one dense
// feature vector per row. Missing keys produce zero vectors. Lookup is
// compilable: batch lookups pipeline through the table's LookupBatch.
type Lookup struct {
	TableName string
	table     Table

	mu       sync.Mutex
	defaults []float64
}

// NewLookup returns a lookup operator against the given table.
func NewLookup(tableName string, table Table) *Lookup {
	return &Lookup{
		TableName: tableName,
		table:     table,
		defaults:  make([]float64, table.Dim()),
	}
}

// Name implements graph.Op.
func (l *Lookup) Name() string { return "lookup(" + l.TableName + ")" }

// Compilable implements graph.Op.
func (l *Lookup) Compilable() bool { return true }

// Commutative implements graph.Op.
func (l *Lookup) Commutative() bool { return false }

// Width returns the joined feature width.
func (l *Lookup) Width() int { return l.table.Dim() }

// Table returns the backing table.
func (l *Lookup) Table() Table { return l.table }

// Apply implements graph.Op.
func (l *Lookup) Apply(ins []value.Value) (value.Value, error) {
	if len(ins) != 1 {
		return value.Value{}, errArity(l.Name(), len(ins), 1)
	}
	if ins[0].Kind != value.Ints {
		return value.Value{}, errKind(l.Name(), 0, ins[0].Kind, value.Ints)
	}
	keys := ins[0].Ints
	vecs, err := l.table.LookupBatch(keys)
	if err != nil {
		return value.Value{}, fmt.Errorf("ops: %s: %w", l.Name(), err)
	}
	out := feature.NewDense(len(keys), l.table.Dim())
	for i, v := range vecs {
		if v != nil {
			copy(out.Row(i), v)
		}
	}
	return value.NewMat(out), nil
}

// ApplyBoxed implements graph.Op: one remote/local request per row, exactly
// how an unoptimized Python pipeline issues point lookups.
func (l *Lookup) ApplyBoxed(ins []any) (any, error) {
	if len(ins) != 1 {
		return nil, errArity(l.Name(), len(ins), 1)
	}
	k, ok := ins[0].(int64)
	if !ok {
		return nil, errBoxed(l.Name(), 0, ins[0], "int64")
	}
	vecs, err := l.table.LookupBatch([]int64{k})
	if err != nil {
		return nil, fmt.Errorf("ops: %s: %w", l.Name(), err)
	}
	out := make([]float64, l.table.Dim())
	if vecs[0] != nil {
		copy(out, vecs[0])
	}
	return out, nil
}
