package ops

import (
	"encoding/json"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"willump/internal/artifact"
	"willump/internal/feature"
	"willump/internal/value"
)

// Table is a keyed feature table: the abstraction behind the paper's "remote
// data lookup, data joins" operators (Music, Credit, Tracking benchmarks).
// Implementations include the in-memory LocalTable and the kvstore client's
// remote table.
type Table interface {
	// Dim returns the width of each stored feature vector.
	Dim() int
	// LookupBatch fetches feature vectors for all keys. Missing keys yield
	// nil entries; callers substitute a default vector. Implementations may
	// batch or pipeline the fetches.
	LookupBatch(keys []int64) ([][]float64, error)
	// Requests returns the cumulative number of lookup requests issued
	// (cache misses reaching the backing store count; for remote tables this
	// counts actual remote requests, the metric of paper Table 2).
	Requests() int64
}

// LocalTable is an in-memory feature table (a local Pandas-dataframe join in
// the original benchmarks).
type LocalTable struct {
	dim      int
	rows     map[int64][]float64
	requests atomic.Int64
}

// NewLocalTable builds a local table of feature vectors with width dim.
func NewLocalTable(dim int, rows map[int64][]float64) *LocalTable {
	for k, v := range rows {
		if len(v) != dim {
			panic(fmt.Sprintf("ops: NewLocalTable: key %d has %d features, want %d", k, len(v), dim))
		}
	}
	return &LocalTable{dim: dim, rows: rows}
}

// Dim implements Table.
func (t *LocalTable) Dim() int { return t.dim }

// LookupBatch implements Table.
func (t *LocalTable) LookupBatch(keys []int64) ([][]float64, error) {
	t.requests.Add(int64(len(keys)))
	out := make([][]float64, len(keys))
	for i, k := range keys {
		out[i] = t.rows[k] // nil if missing
	}
	return out, nil
}

// Requests implements Table.
func (t *LocalTable) Requests() int64 { return t.requests.Load() }

// Rows returns the backing row map (shared, do not mutate). Artifact
// serialization inlines it so a deployment process needs no external store.
func (t *LocalTable) Rows() map[int64][]float64 { return t.rows }

// Lookup joins a key column against a feature table, producing one dense
// feature vector per row. Missing keys produce zero vectors. Lookup is
// compilable: batch lookups pipeline through the table's LookupBatch.
//
// A Lookup decoded from an artifact may arrive without a bound table (when
// the table was remote and could not be inlined); it must be bound with
// BindTable before use.
type Lookup struct {
	TableName string
	table     Table
	dim       int

	mu       sync.Mutex
	defaults []float64
}

// NewLookup returns a lookup operator against the given table.
func NewLookup(tableName string, table Table) *Lookup {
	return &Lookup{
		TableName: tableName,
		table:     table,
		dim:       table.Dim(),
		defaults:  make([]float64, table.Dim()),
	}
}

// Name implements graph.Op.
func (l *Lookup) Name() string { return "lookup(" + l.TableName + ")" }

// Compilable implements graph.Op.
func (l *Lookup) Compilable() bool { return true }

// Commutative implements graph.Op.
func (l *Lookup) Commutative() bool { return false }

// Width returns the joined feature width.
func (l *Lookup) Width() int { return l.dim }

// Table returns the backing table (nil for an unbound decoded Lookup).
func (l *Lookup) Table() Table { return l.table }

// NeedsTable reports whether the lookup still needs a table bound to it.
func (l *Lookup) NeedsTable() bool { return l.table == nil }

// TableRef returns the name callers use to bind a table at load time.
func (l *Lookup) TableRef() string { return l.TableName }

// BindTable attaches a backing table to an unbound decoded Lookup. The
// table's width must match the width the operator was fitted with.
func (l *Lookup) BindTable(t Table) error {
	if t == nil {
		return fmt.Errorf("ops: %s: BindTable(nil)", l.Name())
	}
	if t.Dim() != l.dim {
		return fmt.Errorf("ops: %s: bound table has width %d, artifact expects %d", l.Name(), t.Dim(), l.dim)
	}
	l.table = t
	return nil
}

// Apply implements graph.Op.
func (l *Lookup) Apply(ins []value.Value) (value.Value, error) {
	if l.table == nil {
		return value.Value{}, fmt.Errorf("ops: %s: no table bound; supply one when loading the artifact", l.Name())
	}
	if len(ins) != 1 {
		return value.Value{}, errArity(l.Name(), len(ins), 1)
	}
	if ins[0].Kind != value.Ints {
		return value.Value{}, errKind(l.Name(), 0, ins[0].Kind, value.Ints)
	}
	keys := ins[0].Ints
	vecs, err := l.table.LookupBatch(keys)
	if err != nil {
		return value.Value{}, fmt.Errorf("ops: %s: %w", l.Name(), err)
	}
	out := feature.NewDense(len(keys), l.dim)
	for i, v := range vecs {
		if v != nil {
			copy(out.Row(i), v)
		}
	}
	return value.NewMat(out), nil
}

// ApplyBoxed implements graph.Op: one remote/local request per row, exactly
// how an unoptimized Python pipeline issues point lookups.
func (l *Lookup) ApplyBoxed(ins []any) (any, error) {
	if l.table == nil {
		return nil, fmt.Errorf("ops: %s: no table bound; supply one when loading the artifact", l.Name())
	}
	if len(ins) != 1 {
		return nil, errArity(l.Name(), len(ins), 1)
	}
	k, ok := ins[0].(int64)
	if !ok {
		return nil, errBoxed(l.Name(), 0, ins[0], "int64")
	}
	vecs, err := l.table.LookupBatch([]int64{k})
	if err != nil {
		return nil, fmt.Errorf("ops: %s: %w", l.Name(), err)
	}
	out := make([]float64, l.dim)
	if vecs[0] != nil {
		copy(out, vecs[0])
	}
	return out, nil
}

// lookupState is the serialized form of a Lookup operator. For local
// in-memory tables the rows are inlined (keys serialized as decimal
// strings), making the artifact fully self-contained; remote tables
// serialize as unbound references that the loader must rebind.
type lookupState struct {
	TableName string                     `json:"table_name"`
	Dim       int                        `json:"dim"`
	Rows      map[string]artifact.Vector `json:"rows,omitempty"`
	Inline    bool                       `json:"inline,omitempty"`
}

// MarshalState implements StateMarshaler.
func (l *Lookup) MarshalState() ([]byte, error) {
	st := lookupState{TableName: l.TableName, Dim: l.dim}
	if lt, ok := l.table.(*LocalTable); ok {
		st.Inline = true
		st.Rows = make(map[string]artifact.Vector, len(lt.Rows()))
		for k, v := range lt.Rows() {
			st.Rows[strconv.FormatInt(k, 10)] = artifact.Vector(v)
		}
	}
	return json.Marshal(st)
}

// UnmarshalState implements StateUnmarshaler.
func (l *Lookup) UnmarshalState(state []byte) error {
	var st lookupState
	if err := json.Unmarshal(state, &st); err != nil {
		return err
	}
	if st.Dim < 0 {
		return fmt.Errorf("ops: lookup state has negative width %d", st.Dim)
	}
	l.TableName = st.TableName
	l.dim = st.Dim
	l.defaults = make([]float64, st.Dim)
	l.table = nil
	if st.Inline {
		rows := make(map[int64][]float64, len(st.Rows))
		for ks, v := range st.Rows {
			k, err := strconv.ParseInt(ks, 10, 64)
			if err != nil {
				return fmt.Errorf("ops: lookup state key %q: %w", ks, err)
			}
			if len(v) != st.Dim {
				return fmt.Errorf("ops: lookup state key %q has %d features, want %d", ks, len(v), st.Dim)
			}
			rows[k] = []float64(v)
		}
		l.table = NewLocalTable(st.Dim, rows)
	}
	return nil
}
