package ops

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"willump/internal/artifact"
	"willump/internal/feature"
	"willump/internal/value"
)

// Norm selects the row normalization applied by vectorizers.
type Norm int

// Supported norms.
const (
	NormNone Norm = iota
	NormL1
	NormL2
)

// TFIDF converts token lists into TF-IDF weighted sparse feature vectors.
// Fit learns the vocabulary (capped at MaxFeatures by document frequency)
// and smoothed IDF weights; Apply transforms batches to CSR matrices.
// This matches the paper's TF-IDF featurization template, parameterized by
// n-gram source and norm (section 5.2, "Code Generation").
type TFIDF struct {
	MaxFeatures int
	Norm        Norm

	vocab  map[string]int
	idf    []float64
	fitted bool
}

// NewTFIDF returns an unfitted TF-IDF vectorizer.
func NewTFIDF(maxFeatures int, norm Norm) *TFIDF {
	if maxFeatures < 1 {
		panic("ops: NewTFIDF: maxFeatures must be positive")
	}
	return &TFIDF{MaxFeatures: maxFeatures, Norm: norm}
}

// Name implements graph.Op.
func (t *TFIDF) Name() string { return "tfidf" }

// Compilable implements graph.Op.
func (t *TFIDF) Compilable() bool { return true }

// Commutative implements graph.Op.
func (t *TFIDF) Commutative() bool { return false }

// Fitted implements Fitter.
func (t *TFIDF) Fitted() bool { return t.fitted }

// Width returns the learned vocabulary size. Valid after Fit.
func (t *TFIDF) Width() int { return len(t.idf) }

// Vocabulary returns the fitted term -> column map (shared, do not mutate).
func (t *TFIDF) Vocabulary() map[string]int { return t.vocab }

// Fit implements Fitter: learns vocabulary and IDF from the token batch.
func (t *TFIDF) Fit(ins []value.Value) error {
	if len(ins) != 1 {
		return errArity(t.Name(), len(ins), 1)
	}
	if ins[0].Kind != value.Tokens {
		return errKind(t.Name(), 0, ins[0].Kind, value.Tokens)
	}
	docs := ins[0].Tokens
	df := make(map[string]int)
	seen := make(map[string]bool)
	for _, doc := range docs {
		for k := range seen {
			delete(seen, k)
		}
		for _, tok := range doc {
			if !seen[tok] {
				seen[tok] = true
				df[tok]++
			}
		}
	}
	type termDF struct {
		term string
		df   int
	}
	terms := make([]termDF, 0, len(df))
	for term, d := range df {
		terms = append(terms, termDF{term, d})
	}
	sort.Slice(terms, func(i, j int) bool {
		if terms[i].df != terms[j].df {
			return terms[i].df > terms[j].df
		}
		return terms[i].term < terms[j].term
	})
	if len(terms) > t.MaxFeatures {
		terms = terms[:t.MaxFeatures]
	}
	// Stable column order: lexicographic over the kept terms.
	sort.Slice(terms, func(i, j int) bool { return terms[i].term < terms[j].term })
	t.vocab = make(map[string]int, len(terms))
	t.idf = make([]float64, len(terms))
	n := float64(len(docs))
	for i, td := range terms {
		t.vocab[td.term] = i
		// Smoothed IDF as in standard implementations.
		t.idf[i] = math.Log((1+n)/(1+float64(td.df))) + 1
	}
	t.fitted = true
	return nil
}

// tfScratch is reusable per-row state for TF-IDF transformation: the term
// counts plus the touched columns in sorted order. Accumulating the
// normalization sums in sorted column order (instead of map iteration
// order) makes every transform bit-deterministic, which artifact round-trip
// guarantees depend on.
type tfScratch struct {
	counts map[int]int
	cols   []int
}

func newTFScratch() *tfScratch { return &tfScratch{counts: make(map[int]int)} }

// count tallies vocabulary hits for one document and returns the touched
// columns sorted ascending.
func (s *tfScratch) count(doc []string, vocab map[string]int) []int {
	for k := range s.counts {
		delete(s.counts, k)
	}
	s.cols = s.cols[:0]
	for _, tok := range doc {
		if col, ok := vocab[tok]; ok {
			if _, seen := s.counts[col]; !seen {
				s.cols = append(s.cols, col)
			}
			s.counts[col]++
		}
	}
	sort.Ints(s.cols)
	return s.cols
}

// transformRow computes the TF-IDF entries for one document into builder b.
func (t *TFIDF) transformRow(doc []string, s *tfScratch, b *feature.CSRBuilder) {
	cols := s.count(doc, t.vocab)
	switch t.Norm {
	case NormNone:
		for _, col := range cols {
			b.Add(col, float64(s.counts[col])*t.idf[col])
		}
	case NormL1:
		var sum float64
		for _, col := range cols {
			sum += math.Abs(float64(s.counts[col]) * t.idf[col])
		}
		if sum == 0 {
			sum = 1
		}
		for _, col := range cols {
			b.Add(col, float64(s.counts[col])*t.idf[col]/sum)
		}
	case NormL2:
		var sq float64
		for _, col := range cols {
			v := float64(s.counts[col]) * t.idf[col]
			sq += v * v
		}
		norm := math.Sqrt(sq)
		if norm == 0 {
			norm = 1
		}
		for _, col := range cols {
			b.Add(col, float64(s.counts[col])*t.idf[col]/norm)
		}
	}
	b.EndRow()
}

// Apply implements graph.Op.
func (t *TFIDF) Apply(ins []value.Value) (value.Value, error) {
	if !t.fitted {
		return value.Value{}, fmt.Errorf("ops: %s: Apply before Fit", t.Name())
	}
	if len(ins) != 1 {
		return value.Value{}, errArity(t.Name(), len(ins), 1)
	}
	if ins[0].Kind != value.Tokens {
		return value.Value{}, errKind(t.Name(), 0, ins[0].Kind, value.Tokens)
	}
	b := feature.NewCSRBuilder(len(t.idf))
	scratch := newTFScratch()
	for _, doc := range ins[0].Tokens {
		t.transformRow(doc, scratch, b)
	}
	return value.NewMat(b.Build()), nil
}

// ApplyBoxed implements graph.Op. The boxed path returns a fully dense row,
// mirroring the materialization cost a pure-Python pipeline pays.
func (t *TFIDF) ApplyBoxed(ins []any) (any, error) {
	if !t.fitted {
		return nil, fmt.Errorf("ops: %s: ApplyBoxed before Fit", t.Name())
	}
	if len(ins) != 1 {
		return nil, errArity(t.Name(), len(ins), 1)
	}
	doc, ok := ins[0].([]string)
	if !ok {
		return nil, errBoxed(t.Name(), 0, ins[0], "[]string")
	}
	b := feature.NewCSRBuilder(len(t.idf))
	t.transformRow(doc, newTFScratch(), b)
	m := b.Build()
	return feature.RowDense(m, 0, nil), nil
}

// CountVectorizer converts token lists into raw term-count sparse vectors.
type CountVectorizer struct {
	MaxFeatures int
	Binary      bool

	vocab  map[string]int
	fitted bool
}

// NewCountVectorizer returns an unfitted count vectorizer. If binary is true
// the output records term presence instead of counts.
func NewCountVectorizer(maxFeatures int, binary bool) *CountVectorizer {
	if maxFeatures < 1 {
		panic("ops: NewCountVectorizer: maxFeatures must be positive")
	}
	return &CountVectorizer{MaxFeatures: maxFeatures, Binary: binary}
}

// Name implements graph.Op.
func (c *CountVectorizer) Name() string { return "count_vectorizer" }

// Compilable implements graph.Op.
func (c *CountVectorizer) Compilable() bool { return true }

// Commutative implements graph.Op.
func (c *CountVectorizer) Commutative() bool { return false }

// Fitted implements Fitter.
func (c *CountVectorizer) Fitted() bool { return c.fitted }

// Width returns the learned vocabulary size. Valid after Fit.
func (c *CountVectorizer) Width() int { return len(c.vocab) }

// Fit implements Fitter.
func (c *CountVectorizer) Fit(ins []value.Value) error {
	if len(ins) != 1 {
		return errArity(c.Name(), len(ins), 1)
	}
	if ins[0].Kind != value.Tokens {
		return errKind(c.Name(), 0, ins[0].Kind, value.Tokens)
	}
	df := make(map[string]int)
	seen := make(map[string]bool)
	for _, doc := range ins[0].Tokens {
		for k := range seen {
			delete(seen, k)
		}
		for _, tok := range doc {
			if !seen[tok] {
				seen[tok] = true
				df[tok]++
			}
		}
	}
	type termDF struct {
		term string
		df   int
	}
	terms := make([]termDF, 0, len(df))
	for term, d := range df {
		terms = append(terms, termDF{term, d})
	}
	sort.Slice(terms, func(i, j int) bool {
		if terms[i].df != terms[j].df {
			return terms[i].df > terms[j].df
		}
		return terms[i].term < terms[j].term
	})
	if len(terms) > c.MaxFeatures {
		terms = terms[:c.MaxFeatures]
	}
	sort.Slice(terms, func(i, j int) bool { return terms[i].term < terms[j].term })
	c.vocab = make(map[string]int, len(terms))
	for i, td := range terms {
		c.vocab[td.term] = i
	}
	c.fitted = true
	return nil
}

func (c *CountVectorizer) transformRow(doc []string, counts map[int]int, b *feature.CSRBuilder) {
	for k := range counts {
		delete(counts, k)
	}
	for _, tok := range doc {
		if col, ok := c.vocab[tok]; ok {
			counts[col]++
		}
	}
	for col, n := range counts {
		if c.Binary {
			b.Add(col, 1)
		} else {
			b.Add(col, float64(n))
		}
	}
	b.EndRow()
}

// Apply implements graph.Op.
func (c *CountVectorizer) Apply(ins []value.Value) (value.Value, error) {
	if !c.fitted {
		return value.Value{}, fmt.Errorf("ops: %s: Apply before Fit", c.Name())
	}
	if len(ins) != 1 {
		return value.Value{}, errArity(c.Name(), len(ins), 1)
	}
	if ins[0].Kind != value.Tokens {
		return value.Value{}, errKind(c.Name(), 0, ins[0].Kind, value.Tokens)
	}
	b := feature.NewCSRBuilder(len(c.vocab))
	counts := make(map[int]int)
	for _, doc := range ins[0].Tokens {
		c.transformRow(doc, counts, b)
	}
	return value.NewMat(b.Build()), nil
}

// ApplyBoxed implements graph.Op.
func (c *CountVectorizer) ApplyBoxed(ins []any) (any, error) {
	if !c.fitted {
		return nil, fmt.Errorf("ops: %s: ApplyBoxed before Fit", c.Name())
	}
	if len(ins) != 1 {
		return nil, errArity(c.Name(), len(ins), 1)
	}
	doc, ok := ins[0].([]string)
	if !ok {
		return nil, errBoxed(c.Name(), 0, ins[0], "[]string")
	}
	b := feature.NewCSRBuilder(len(c.vocab))
	c.transformRow(doc, make(map[int]int), b)
	return feature.RowDense(b.Build(), 0, nil), nil
}

// HashingVectorizer maps tokens to a fixed number of buckets with FNV
// hashing; it needs no fitting and bounds memory, trading exactness for
// speed like the hashing trick in large-scale pipelines.
type HashingVectorizer struct {
	Buckets int
}

// NewHashingVectorizer returns a hashing vectorizer with the given bucket
// count.
func NewHashingVectorizer(buckets int) *HashingVectorizer {
	if buckets < 1 {
		panic("ops: NewHashingVectorizer: buckets must be positive")
	}
	return &HashingVectorizer{Buckets: buckets}
}

// Name implements graph.Op.
func (h *HashingVectorizer) Name() string { return "hashing_vectorizer" }

// Compilable implements graph.Op.
func (h *HashingVectorizer) Compilable() bool { return true }

// Commutative implements graph.Op.
func (h *HashingVectorizer) Commutative() bool { return false }

// Width returns the bucket count.
func (h *HashingVectorizer) Width() int { return h.Buckets }

func (h *HashingVectorizer) bucket(tok string) int {
	f := fnv.New32a()
	f.Write([]byte(tok))
	return int(f.Sum32() % uint32(h.Buckets))
}

// Apply implements graph.Op.
func (h *HashingVectorizer) Apply(ins []value.Value) (value.Value, error) {
	if len(ins) != 1 {
		return value.Value{}, errArity(h.Name(), len(ins), 1)
	}
	if ins[0].Kind != value.Tokens {
		return value.Value{}, errKind(h.Name(), 0, ins[0].Kind, value.Tokens)
	}
	b := feature.NewCSRBuilder(h.Buckets)
	for _, doc := range ins[0].Tokens {
		for _, tok := range doc {
			b.Add(h.bucket(tok), 1)
		}
		b.EndRow()
	}
	return value.NewMat(b.Build()), nil
}

// ApplyBoxed implements graph.Op.
func (h *HashingVectorizer) ApplyBoxed(ins []any) (any, error) {
	if len(ins) != 1 {
		return nil, errArity(h.Name(), len(ins), 1)
	}
	doc, ok := ins[0].([]string)
	if !ok {
		return nil, errBoxed(h.Name(), 0, ins[0], "[]string")
	}
	b := feature.NewCSRBuilder(h.Buckets)
	for _, tok := range doc {
		b.Add(h.bucket(tok), 1)
	}
	b.EndRow()
	return feature.RowDense(b.Build(), 0, nil), nil
}

// tfidfState is the serialized form of a TFIDF operator. Terms are listed
// in column order, so positions double as column indices.
type tfidfState struct {
	MaxFeatures int             `json:"max_features"`
	Norm        int             `json:"norm"`
	Fitted      bool            `json:"fitted"`
	Terms       []string        `json:"terms,omitempty"`
	IDF         artifact.Vector `json:"idf,omitempty"`
}

// MarshalState implements StateMarshaler.
func (t *TFIDF) MarshalState() ([]byte, error) {
	st := tfidfState{MaxFeatures: t.MaxFeatures, Norm: int(t.Norm), Fitted: t.fitted, IDF: artifact.Vector(t.idf)}
	if t.vocab != nil {
		st.Terms = make([]string, len(t.vocab))
		for term, col := range t.vocab {
			st.Terms[col] = term
		}
	}
	return json.Marshal(st)
}

// UnmarshalState implements StateUnmarshaler.
func (t *TFIDF) UnmarshalState(state []byte) error {
	var st tfidfState
	if err := json.Unmarshal(state, &st); err != nil {
		return err
	}
	if len(st.Terms) != len(st.IDF) {
		return fmt.Errorf("ops: tfidf state has %d terms but %d idf weights", len(st.Terms), len(st.IDF))
	}
	t.MaxFeatures = st.MaxFeatures
	t.Norm = Norm(st.Norm)
	t.fitted = st.Fitted
	t.idf = []float64(st.IDF)
	t.vocab = make(map[string]int, len(st.Terms))
	for col, term := range st.Terms {
		t.vocab[term] = col
	}
	return nil
}

// cvState is the serialized form of a CountVectorizer.
type cvState struct {
	MaxFeatures int      `json:"max_features"`
	Binary      bool     `json:"binary,omitempty"`
	Fitted      bool     `json:"fitted"`
	Terms       []string `json:"terms,omitempty"`
}

// MarshalState implements StateMarshaler.
func (c *CountVectorizer) MarshalState() ([]byte, error) {
	st := cvState{MaxFeatures: c.MaxFeatures, Binary: c.Binary, Fitted: c.fitted}
	if c.vocab != nil {
		st.Terms = make([]string, len(c.vocab))
		for term, col := range c.vocab {
			st.Terms[col] = term
		}
	}
	return json.Marshal(st)
}

// UnmarshalState implements StateUnmarshaler.
func (c *CountVectorizer) UnmarshalState(state []byte) error {
	var st cvState
	if err := json.Unmarshal(state, &st); err != nil {
		return err
	}
	c.MaxFeatures = st.MaxFeatures
	c.Binary = st.Binary
	c.fitted = st.Fitted
	c.vocab = make(map[string]int, len(st.Terms))
	for col, term := range st.Terms {
		c.vocab[term] = col
	}
	return nil
}

// hvState is the serialized form of a HashingVectorizer.
type hvState struct {
	Buckets int `json:"buckets"`
}

// MarshalState implements StateMarshaler.
func (h *HashingVectorizer) MarshalState() ([]byte, error) {
	return json.Marshal(hvState{Buckets: h.Buckets})
}

// UnmarshalState implements StateUnmarshaler.
func (h *HashingVectorizer) UnmarshalState(state []byte) error {
	var st hvState
	if err := json.Unmarshal(state, &st); err != nil {
		return err
	}
	if st.Buckets < 1 {
		return fmt.Errorf("ops: hashing_vectorizer state has %d buckets, want >= 1", st.Buckets)
	}
	h.Buckets = st.Buckets
	return nil
}
