package ops

import (
	"context"
	"fmt"
	"strings"

	"willump/internal/feature"
	"willump/internal/graph"
	"willump/internal/value"
)

// This file implements graph.IntoApplier — the pooled executor's
// allocation-free operator contract — for the hot built-in operators. Every
// ApplyInto produces output bit-identical to the operator's Apply, but
// writes it into buffers owned by the per-step scratch cell the executor
// threads through, so the steady-state predict path stops allocating once
// the buffers have grown to the workload's shape.
//
// All reuse state lives in the scratch cell (never reclaimed from *out):
// the executor guarantees a step's scratch is used by exactly one run at a
// time, which makes the ownership argument local — an operator only ever
// recycles matrices it built itself on a previous execution of the same
// plan slot.

// Interface conformance for the reuse contract.
var (
	_ graph.IntoApplier     = (*TFIDF)(nil)
	_ graph.IntoApplier     = (*CountVectorizer)(nil)
	_ graph.IntoApplier     = (*HashingVectorizer)(nil)
	_ graph.IntoApplier     = (*FusedText)(nil)
	_ graph.IntoApplier     = (*OneHot)(nil)
	_ graph.IntoApplier     = (*Ordinal)(nil)
	_ graph.IntoApplier     = (*StandardScale)(nil)
	_ graph.IntoApplier     = (*NumericStats)(nil)
	_ graph.IntoApplier     = (*TextStats)(nil)
	_ graph.IntoApplier     = (*Lookup)(nil)
	_ graph.CtxBoxedApplier = (*Lookup)(nil)
	_ graph.IntoApplier     = (*Clean)(nil)
	_ graph.IntoApplier     = (*Tokenize)(nil)
	_ graph.IntoApplier     = (*WordNGrams)(nil)
	_ graph.IntoApplier     = (*CharNGrams)(nil)
	_ graph.Elementwise     = (*Clip)(nil)
)

// csrScratch backs the sparse-output vectorizers: a reused CSR builder, the
// matrix whose slices it reclaims between runs, and the per-row tally
// state.
type csrScratch struct {
	b      feature.CSRBuilder
	m      *feature.CSR
	tfs    *tfScratch
	counts map[int]int
	toks   []string
}

func getCSRScratch(scratch *any) *csrScratch {
	s, _ := (*scratch).(*csrScratch)
	if s == nil {
		s = &csrScratch{}
		*scratch = s
	}
	return s
}

// finish builds the CSR result, reusing the scratch-owned matrix header.
func (s *csrScratch) finish() *feature.CSR {
	if s.m == nil {
		s.m = s.b.Build()
	} else {
		s.b.BuildInto(s.m)
	}
	return s.m
}

// bufScratch backs the dense-output and column-output operators.
type bufScratch struct {
	d    *feature.Dense
	f    []float64
	strs []string
	toks [][]string
}

func getBufScratch(scratch *any) *bufScratch {
	s, _ := (*scratch).(*bufScratch)
	if s == nil {
		s = &bufScratch{}
		*scratch = s
	}
	return s
}

func (s *bufScratch) dense(rows, cols int) *feature.Dense {
	s.d = feature.GrowDense(s.d, rows, cols)
	return s.d
}

func (s *bufScratch) floats(n int) []float64 {
	if cap(s.f) < n {
		s.f = make([]float64, n)
	}
	s.f = s.f[:n]
	return s.f
}

func (s *bufScratch) strings(n int) []string {
	if cap(s.strs) < n {
		s.strs = make([]string, n)
	}
	s.strs = s.strs[:n]
	return s.strs
}

func (s *bufScratch) tokens(n int) [][]string {
	if cap(s.toks) < n {
		s.toks = make([][]string, n)
	}
	s.toks = s.toks[:n]
	return s.toks
}

// checkOneTokens validates the single-token-column arity/kind contract.
func checkOneTokens(name string, ins []value.Value) error {
	if len(ins) != 1 {
		return errArity(name, len(ins), 1)
	}
	if ins[0].Kind != value.Tokens {
		return errKind(name, 0, ins[0].Kind, value.Tokens)
	}
	return nil
}

// checkOneStrings validates the single-string-column arity/kind contract.
func checkOneStrings(name string, ins []value.Value) error {
	if len(ins) != 1 {
		return errArity(name, len(ins), 1)
	}
	if ins[0].Kind != value.Strings {
		return errKind(name, 0, ins[0].Kind, value.Strings)
	}
	return nil
}

// ApplyInto implements graph.IntoApplier.
func (t *TFIDF) ApplyInto(ins []value.Value, out *value.Value, scratch *any) error {
	if !t.fitted {
		return fmt.Errorf("ops: %s: Apply before Fit", t.Name())
	}
	if err := checkOneTokens(t.Name(), ins); err != nil {
		return err
	}
	s := getCSRScratch(scratch)
	if s.tfs == nil {
		s.tfs = newTFScratch()
	}
	s.b.ResetFrom(len(t.idf), s.m)
	for _, doc := range ins[0].Tokens {
		t.transformRow(doc, s.tfs, &s.b)
	}
	*out = value.NewMat(s.finish())
	return nil
}

// ApplyInto implements graph.IntoApplier.
func (c *CountVectorizer) ApplyInto(ins []value.Value, out *value.Value, scratch *any) error {
	if !c.fitted {
		return fmt.Errorf("ops: %s: Apply before Fit", c.Name())
	}
	if err := checkOneTokens(c.Name(), ins); err != nil {
		return err
	}
	s := getCSRScratch(scratch)
	if s.counts == nil {
		s.counts = make(map[int]int)
	}
	s.b.ResetFrom(len(c.vocab), s.m)
	for _, doc := range ins[0].Tokens {
		c.transformRow(doc, s.counts, &s.b)
	}
	*out = value.NewMat(s.finish())
	return nil
}

// ApplyInto implements graph.IntoApplier.
func (h *HashingVectorizer) ApplyInto(ins []value.Value, out *value.Value, scratch *any) error {
	if err := checkOneTokens(h.Name(), ins); err != nil {
		return err
	}
	s := getCSRScratch(scratch)
	s.b.ResetFrom(h.Buckets, s.m)
	for _, doc := range ins[0].Tokens {
		for _, tok := range doc {
			s.b.Add(h.bucket(tok), 1)
		}
		s.b.EndRow()
	}
	*out = value.NewMat(s.finish())
	return nil
}

// ApplyInto implements graph.IntoApplier: the fused text chain streams each
// document through cleaning, tokenization, and vectorization into the
// reused CSR builder, with one shared token scratch for the n-gram stages.
func (f *FusedText) ApplyInto(ins []value.Value, out *value.Value, scratch *any) error {
	if err := checkOneStrings(f.Name(), ins); err != nil {
		return err
	}
	s := getCSRScratch(scratch)
	if f.tfidf != nil && s.tfs == nil {
		s.tfs = newTFScratch()
	}
	if f.cv != nil && s.counts == nil {
		s.counts = make(map[int]int)
	}
	s.b.ResetFrom(f.Width(), s.m)
	for _, doc := range ins[0].Strings {
		toks := f.tokensFor(doc, s.toks)
		s.toks = toks[:0]
		switch {
		case f.tfidf != nil:
			f.tfidf.transformRow(toks, s.tfs, &s.b)
		case f.cv != nil:
			f.cv.transformRow(toks, s.counts, &s.b)
		default:
			for _, tok := range toks {
				s.b.Add(f.hv.bucket(tok), 1)
			}
			s.b.EndRow()
		}
	}
	*out = value.NewMat(s.finish())
	return nil
}

// ApplyInto implements graph.IntoApplier.
func (o *OneHot) ApplyInto(ins []value.Value, out *value.Value, scratch *any) error {
	if !o.fitted {
		return fmt.Errorf("ops: %s: Apply before Fit", o.Name())
	}
	if err := checkOneStrings(o.Name(), ins); err != nil {
		return err
	}
	s := getCSRScratch(scratch)
	s.b.ResetFrom(len(o.cats), s.m)
	for _, str := range ins[0].Strings {
		if col, ok := o.cats[str]; ok {
			s.b.Add(col, 1)
		}
		s.b.EndRow()
	}
	*out = value.NewMat(s.finish())
	return nil
}

// ApplyInto implements graph.IntoApplier.
func (o *Ordinal) ApplyInto(ins []value.Value, out *value.Value, scratch *any) error {
	if !o.fitted {
		return fmt.Errorf("ops: %s: Apply before Fit", o.Name())
	}
	if err := checkOneStrings(o.Name(), ins); err != nil {
		return err
	}
	s := getBufScratch(scratch)
	dst := s.floats(len(ins[0].Strings))
	for i, str := range ins[0].Strings {
		if code, ok := o.codes[str]; ok {
			dst[i] = code
		} else {
			dst[i] = -1
		}
	}
	*out = value.NewFloats(dst)
	return nil
}

// ApplyInto implements graph.IntoApplier.
func (s *StandardScale) ApplyInto(ins []value.Value, out *value.Value, scratch *any) error {
	if !s.fitted {
		return fmt.Errorf("ops: %s: Apply before Fit", s.Name())
	}
	if len(ins) != 1 {
		return errArity(s.Name(), len(ins), 1)
	}
	m, err := ins[0].AsMatrix()
	if err != nil {
		return fmt.Errorf("ops: %s: %w", s.Name(), err)
	}
	if m.Cols() != len(s.mean) {
		return fmt.Errorf("ops: %s: input has %d cols, fitted on %d", s.Name(), m.Cols(), len(s.mean))
	}
	sc := getBufScratch(scratch)
	dst := sc.dense(m.Rows(), m.Cols())
	for r := 0; r < m.Rows(); r++ {
		row := dst.Row(r)
		for c := 0; c < m.Cols(); c++ {
			row[c] = (m.At(r, c) - s.mean[c]) * s.invStd[c]
		}
	}
	*out = value.NewMat(dst)
	return nil
}

// ApplyInto implements graph.IntoApplier.
func (n *NumericStats) ApplyInto(ins []value.Value, out *value.Value, scratch *any) error {
	if len(ins) != 1 {
		return errArity(n.Name(), len(ins), 1)
	}
	s := getBufScratch(scratch)
	var xs []float64
	switch ins[0].Kind {
	case value.Floats:
		xs = ins[0].Floats
	case value.Ints:
		xs = s.floats(len(ins[0].Ints))
		for i, v := range ins[0].Ints {
			xs[i] = float64(v)
		}
	default:
		return errKind(n.Name(), 0, ins[0].Kind, value.Floats)
	}
	dst := s.dense(len(xs), n.Width())
	for i, x := range xs {
		n.row(x, dst.Row(i))
	}
	*out = value.NewMat(dst)
	return nil
}

// ApplyInto implements graph.IntoApplier.
func (t *TextStats) ApplyInto(ins []value.Value, out *value.Value, scratch *any) error {
	if err := checkOneStrings(t.Name(), ins); err != nil {
		return err
	}
	s := getBufScratch(scratch)
	dst := s.dense(len(ins[0].Strings), t.Width())
	for i, str := range ins[0].Strings {
		t.statsRow(str, dst.Row(i))
	}
	*out = value.NewMat(dst)
	return nil
}

// Ratio implements no ApplyInto on purpose: it is non-compilable, so the
// executor always routes it through the interpreted-boundary drivers, whose
// buffer reuse lives in the per-step driver scratch (weld's pyScratch and
// value.FromBoxedInto) rather than the operator.

// RowLookup is an optional Table fast path: LookupRow returns the stored
// feature vector for one key (shared, read-only; nil when missing) without
// allocating. Implementations must count requests like LookupBatch.
type RowLookup interface {
	LookupRow(key int64) []float64
}

// LookupRow implements RowLookup.
func (t *LocalTable) LookupRow(key int64) []float64 {
	t.requests.Add(1)
	return t.rows[key]
}

// ApplyInto implements graph.IntoApplier. Tables exposing RowLookup serve
// each key straight into the reused dense output; others fall back to one
// LookupBatch per call.
func (l *Lookup) ApplyInto(ins []value.Value, out *value.Value, scratch *any) error {
	if l.table == nil {
		return fmt.Errorf("ops: %s: no table bound; supply one when loading the artifact", l.Name())
	}
	if len(ins) != 1 {
		return errArity(l.Name(), len(ins), 1)
	}
	if ins[0].Kind != value.Ints {
		return errKind(l.Name(), 0, ins[0].Kind, value.Ints)
	}
	keys := ins[0].Ints
	s := getBufScratch(scratch)
	dst := s.dense(len(keys), l.dim)
	if rl, ok := l.table.(RowLookup); ok {
		for i, k := range keys {
			row := dst.Row(i)
			if v := rl.LookupRow(k); v != nil {
				copy(row, v)
			} else {
				zeroFloats(row)
			}
		}
	} else {
		// No ctx parameter exists on the ApplyInto contract; ctx-aware tables
		// are routed through ApplyCtx by the executor before reaching here,
		// so this funnel only ever sees context-free tables (and lookupRows
		// degrades to their plain LookupBatch).
		vecs, err := l.lookupRows(context.Background(), keys)
		if err != nil {
			return fmt.Errorf("ops: %s: %w", l.Name(), err)
		}
		for i, v := range vecs {
			row := dst.Row(i)
			if v != nil {
				copy(row, v)
			} else {
				zeroFloats(row)
			}
		}
	}
	*out = value.NewMat(dst)
	return nil
}

func zeroFloats(s []float64) {
	for i := range s {
		s[i] = 0
	}
}

// ApplyInto implements graph.IntoApplier. Only the column slice is reused;
// the cleaned strings themselves are fresh (Go strings are immutable).
func (c *Clean) ApplyInto(ins []value.Value, out *value.Value, scratch *any) error {
	if err := checkOneStrings(c.Name(), ins); err != nil {
		return err
	}
	s := getBufScratch(scratch)
	dst := s.strings(len(ins[0].Strings))
	for i, str := range ins[0].Strings {
		dst[i] = cleanString(str)
	}
	*out = value.NewStrings(dst)
	return nil
}

// ApplyInto implements graph.IntoApplier (outer column reuse).
func (t *Tokenize) ApplyInto(ins []value.Value, out *value.Value, scratch *any) error {
	if err := checkOneStrings(t.Name(), ins); err != nil {
		return err
	}
	s := getBufScratch(scratch)
	dst := s.tokens(len(ins[0].Strings))
	for i, str := range ins[0].Strings {
		dst[i] = strings.Fields(str)
	}
	*out = value.NewTokens(dst)
	return nil
}

// ApplyInto implements graph.IntoApplier (outer column reuse).
func (w *WordNGrams) ApplyInto(ins []value.Value, out *value.Value, scratch *any) error {
	if err := checkOneTokens(w.Name(), ins); err != nil {
		return err
	}
	s := getBufScratch(scratch)
	dst := s.tokens(len(ins[0].Tokens))
	for i, toks := range ins[0].Tokens {
		dst[i] = w.expand(toks)
	}
	*out = value.NewTokens(dst)
	return nil
}

// ApplyInto implements graph.IntoApplier (outer column reuse).
func (c *CharNGrams) ApplyInto(ins []value.Value, out *value.Value, scratch *any) error {
	if err := checkOneStrings(c.Name(), ins); err != nil {
		return err
	}
	s := getBufScratch(scratch)
	dst := s.tokens(len(ins[0].Strings))
	for i, str := range ins[0].Strings {
		dst[i] = c.expand(str)
	}
	*out = value.NewTokens(dst)
	return nil
}

// ApplyScalar implements graph.Elementwise: the pooled executor folds the
// clip over materialized feature buffers in place, with the same sparse
// semantics as Apply (only stored entries are mapped).
func (c *Clip) ApplyScalar(v float64) float64 { return c.clip(v) }

// SparseSafe reports whether the elementwise application preserves implicit
// zeros, i.e. whether Apply would accept sparse inputs. The executor routes
// bounds that exclude zero through the generic Apply path so their sparse
// error behavior is preserved.
func (c *Clip) SparseSafe() bool { return c.Lo <= 0 && c.Hi >= 0 }
