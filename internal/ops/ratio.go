package ops

import (
	"math"

	"willump/internal/feature"
	"willump/internal/value"
)

// Ratio computes ratio-derived features [a/b, log1p(a/b)] from two numeric
// columns. It is deliberately marked non-compilable, standing in for the
// custom Python UDFs real pipelines contain (e.g. the Credit benchmark's
// debt-ratio features): executing it forces a compiled program to cross into
// the interpreted runtime through drivers, the overhead the section 6.4
// microbenchmark measures.
type Ratio struct{}

// NewRatio returns a ratio-features operator.
func NewRatio() *Ratio { return &Ratio{} }

// Name implements graph.Op.
func (rt *Ratio) Name() string { return "ratio" }

// Compilable implements graph.Op: false — this is the pipeline's "Python"
// node.
func (rt *Ratio) Compilable() bool { return false }

// Commutative implements graph.Op.
func (rt *Ratio) Commutative() bool { return false }

// Width returns the number of produced features.
func (rt *Ratio) Width() int { return 2 }

func (rt *Ratio) row(a, b float64, dst []float64) {
	r := 0.0
	if b != 0 {
		r = a / b
	}
	dst[0] = r
	dst[1] = math.Log1p(math.Abs(r))
}

// Apply implements graph.Op.
func (rt *Ratio) Apply(ins []value.Value) (value.Value, error) {
	if len(ins) != 2 {
		return value.Value{}, errArity(rt.Name(), len(ins), 2)
	}
	for i := range ins {
		if ins[i].Kind != value.Floats {
			return value.Value{}, errKind(rt.Name(), i, ins[i].Kind, value.Floats)
		}
	}
	n := len(ins[0].Floats)
	m := feature.NewDense(n, rt.Width())
	for i := 0; i < n; i++ {
		rt.row(ins[0].Floats[i], ins[1].Floats[i], m.Row(i))
	}
	return value.NewMat(m), nil
}

// ApplyBoxed implements graph.Op.
func (rt *Ratio) ApplyBoxed(ins []any) (any, error) {
	if len(ins) != 2 {
		return nil, errArity(rt.Name(), len(ins), 2)
	}
	a, ok := ins[0].(float64)
	if !ok {
		return nil, errBoxed(rt.Name(), 0, ins[0], "float64")
	}
	b, ok := ins[1].(float64)
	if !ok {
		return nil, errBoxed(rt.Name(), 1, ins[1], "float64")
	}
	dst := make([]float64, rt.Width())
	rt.row(a, b, dst)
	return dst, nil
}
