package ops

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"willump/internal/value"
)

func insInts(keys []int64) []value.Value {
	return []value.Value{value.NewInts(keys)}
}

// ctxRecordingTable implements CtxTable and records whether the ctx-aware
// path was taken and what deadline it saw.
type ctxRecordingTable struct {
	dim      int
	ctxCalls atomic.Int64
	rawCalls atomic.Int64
	deadline atomic.Bool
}

func (t *ctxRecordingTable) Dim() int { return t.dim }
func (t *ctxRecordingTable) LookupBatch(keys []int64) ([][]float64, error) {
	t.rawCalls.Add(1)
	return make([][]float64, len(keys)), nil
}
func (t *ctxRecordingTable) LookupBatchCtx(ctx context.Context, keys []int64) ([][]float64, error) {
	t.ctxCalls.Add(1)
	if _, ok := ctx.Deadline(); ok {
		t.deadline.Store(true)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return make([][]float64, len(keys)), nil
}
func (t *ctxRecordingTable) Requests() int64 { return t.ctxCalls.Load() + t.rawCalls.Load() }

// TestLookupPrefersCtxPath pins the deprecated-path migration: every Lookup
// execution mode (columnar Apply, ctx Apply, boxed row-at-a-time) reaches a
// ctx-aware table through LookupBatchCtx, never the context-free
// LookupBatch, and a caller deadline is visible at the table.
func TestLookupPrefersCtxPath(t *testing.T) {
	tab := &ctxRecordingTable{dim: 2}
	l := NewLookup("t", tab)
	ins := []any{int64(7)}

	if _, err := l.ApplyBoxed(ins); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if _, err := l.ApplyBoxedCtx(ctx, ins); err != nil {
		t.Fatal(err)
	}
	if !tab.deadline.Load() {
		t.Fatal("ApplyBoxedCtx did not propagate the caller deadline to the table")
	}
	cols := []int64{1, 2, 3}
	vv, err := l.Apply(insInts(cols))
	if err != nil {
		t.Fatal(err)
	}
	if vv.Mat.Rows() != 3 {
		t.Fatalf("Apply produced %d rows, want 3", vv.Mat.Rows())
	}
	if _, err := l.ApplyCtx(ctx, insInts(cols)); err != nil {
		t.Fatal(err)
	}
	if got := tab.rawCalls.Load(); got != 0 {
		t.Fatalf("context-free LookupBatch called %d times; want 0 (deprecated path)", got)
	}
	if got := tab.ctxCalls.Load(); got != 4 {
		t.Fatalf("LookupBatchCtx called %d times, want 4", got)
	}

	// Cancellation surfaces from every mode.
	dead, deadCancel := context.WithCancel(context.Background())
	deadCancel()
	if _, err := l.ApplyCtx(dead, insInts(cols)); err == nil {
		t.Fatal("ApplyCtx with canceled context succeeded")
	}
	if _, err := l.ApplyBoxedCtx(dead, ins); err == nil {
		t.Fatal("ApplyBoxedCtx with canceled context succeeded")
	}
}
