package ops

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"willump/internal/artifact"
	"willump/internal/feature"
	"willump/internal/value"
)

// OneHot encodes a categorical string column as one-hot indicator features.
// Fit learns the category set (capped at MaxCategories by frequency);
// unknown categories at serve time map to an all-zeros row.
type OneHot struct {
	MaxCategories int

	cats   map[string]int
	fitted bool
}

// NewOneHot returns an unfitted one-hot encoder.
func NewOneHot(maxCategories int) *OneHot {
	if maxCategories < 1 {
		panic("ops: NewOneHot: maxCategories must be positive")
	}
	return &OneHot{MaxCategories: maxCategories}
}

// Name implements graph.Op.
func (o *OneHot) Name() string { return "one_hot" }

// Compilable implements graph.Op.
func (o *OneHot) Compilable() bool { return true }

// Commutative implements graph.Op.
func (o *OneHot) Commutative() bool { return false }

// Fitted implements Fitter.
func (o *OneHot) Fitted() bool { return o.fitted }

// Width returns the number of learned categories. Valid after Fit.
func (o *OneHot) Width() int { return len(o.cats) }

// Fit implements Fitter.
func (o *OneHot) Fit(ins []value.Value) error {
	if len(ins) != 1 {
		return errArity(o.Name(), len(ins), 1)
	}
	if ins[0].Kind != value.Strings {
		return errKind(o.Name(), 0, ins[0].Kind, value.Strings)
	}
	freq := make(map[string]int)
	for _, s := range ins[0].Strings {
		freq[s]++
	}
	type catFreq struct {
		cat string
		n   int
	}
	cats := make([]catFreq, 0, len(freq))
	for c, n := range freq {
		cats = append(cats, catFreq{c, n})
	}
	sort.Slice(cats, func(i, j int) bool {
		if cats[i].n != cats[j].n {
			return cats[i].n > cats[j].n
		}
		return cats[i].cat < cats[j].cat
	})
	if len(cats) > o.MaxCategories {
		cats = cats[:o.MaxCategories]
	}
	sort.Slice(cats, func(i, j int) bool { return cats[i].cat < cats[j].cat })
	o.cats = make(map[string]int, len(cats))
	for i, c := range cats {
		o.cats[c.cat] = i
	}
	o.fitted = true
	return nil
}

// Apply implements graph.Op.
func (o *OneHot) Apply(ins []value.Value) (value.Value, error) {
	if !o.fitted {
		return value.Value{}, fmt.Errorf("ops: %s: Apply before Fit", o.Name())
	}
	if len(ins) != 1 {
		return value.Value{}, errArity(o.Name(), len(ins), 1)
	}
	if ins[0].Kind != value.Strings {
		return value.Value{}, errKind(o.Name(), 0, ins[0].Kind, value.Strings)
	}
	b := feature.NewCSRBuilder(len(o.cats))
	for _, s := range ins[0].Strings {
		if col, ok := o.cats[s]; ok {
			b.Add(col, 1)
		}
		b.EndRow()
	}
	return value.NewMat(b.Build()), nil
}

// ApplyBoxed implements graph.Op.
func (o *OneHot) ApplyBoxed(ins []any) (any, error) {
	if !o.fitted {
		return nil, fmt.Errorf("ops: %s: ApplyBoxed before Fit", o.Name())
	}
	if len(ins) != 1 {
		return nil, errArity(o.Name(), len(ins), 1)
	}
	s, ok := ins[0].(string)
	if !ok {
		return nil, errBoxed(o.Name(), 0, ins[0], "string")
	}
	row := make([]float64, len(o.cats))
	if col, hit := o.cats[s]; hit {
		row[col] = 1
	}
	return row, nil
}

// Ordinal encodes a categorical string column as a single learned integer
// code (frequency-ranked), with unknowns mapping to -1. GBDT models split on
// these codes directly.
type Ordinal struct {
	codes  map[string]float64
	fitted bool
}

// NewOrdinal returns an unfitted ordinal encoder.
func NewOrdinal() *Ordinal { return &Ordinal{} }

// Name implements graph.Op.
func (o *Ordinal) Name() string { return "ordinal" }

// Compilable implements graph.Op.
func (o *Ordinal) Compilable() bool { return true }

// Commutative implements graph.Op.
func (o *Ordinal) Commutative() bool { return false }

// Fitted implements Fitter.
func (o *Ordinal) Fitted() bool { return o.fitted }

// Fit implements Fitter.
func (o *Ordinal) Fit(ins []value.Value) error {
	if len(ins) != 1 {
		return errArity(o.Name(), len(ins), 1)
	}
	if ins[0].Kind != value.Strings {
		return errKind(o.Name(), 0, ins[0].Kind, value.Strings)
	}
	freq := make(map[string]int)
	for _, s := range ins[0].Strings {
		freq[s]++
	}
	cats := make([]string, 0, len(freq))
	for c := range freq {
		cats = append(cats, c)
	}
	sort.Slice(cats, func(i, j int) bool {
		if freq[cats[i]] != freq[cats[j]] {
			return freq[cats[i]] > freq[cats[j]]
		}
		return cats[i] < cats[j]
	})
	o.codes = make(map[string]float64, len(cats))
	for i, c := range cats {
		o.codes[c] = float64(i)
	}
	o.fitted = true
	return nil
}

// Apply implements graph.Op.
func (o *Ordinal) Apply(ins []value.Value) (value.Value, error) {
	if !o.fitted {
		return value.Value{}, fmt.Errorf("ops: %s: Apply before Fit", o.Name())
	}
	if len(ins) != 1 {
		return value.Value{}, errArity(o.Name(), len(ins), 1)
	}
	if ins[0].Kind != value.Strings {
		return value.Value{}, errKind(o.Name(), 0, ins[0].Kind, value.Strings)
	}
	out := make([]float64, len(ins[0].Strings))
	for i, s := range ins[0].Strings {
		if code, ok := o.codes[s]; ok {
			out[i] = code
		} else {
			out[i] = -1
		}
	}
	return value.NewFloats(out), nil
}

// ApplyBoxed implements graph.Op.
func (o *Ordinal) ApplyBoxed(ins []any) (any, error) {
	if !o.fitted {
		return nil, fmt.Errorf("ops: %s: ApplyBoxed before Fit", o.Name())
	}
	if len(ins) != 1 {
		return nil, errArity(o.Name(), len(ins), 1)
	}
	s, ok := ins[0].(string)
	if !ok {
		return nil, errBoxed(o.Name(), 0, ins[0], "string")
	}
	if code, hit := o.codes[s]; hit {
		return code, nil
	}
	return float64(-1), nil
}

// StandardScale standardizes a matrix column-wise to zero mean and unit
// variance using statistics learned at Fit time.
type StandardScale struct {
	mean, invStd []float64
	fitted       bool
}

// NewStandardScale returns an unfitted standard scaler.
func NewStandardScale() *StandardScale { return &StandardScale{} }

// Name implements graph.Op.
func (s *StandardScale) Name() string { return "standard_scale" }

// Compilable implements graph.Op.
func (s *StandardScale) Compilable() bool { return true }

// Commutative implements graph.Op.
func (s *StandardScale) Commutative() bool { return false }

// Fitted implements Fitter.
func (s *StandardScale) Fitted() bool { return s.fitted }

// Fit implements Fitter.
func (s *StandardScale) Fit(ins []value.Value) error {
	if len(ins) != 1 {
		return errArity(s.Name(), len(ins), 1)
	}
	m, err := ins[0].AsMatrix()
	if err != nil {
		return fmt.Errorf("ops: %s: %w", s.Name(), err)
	}
	rows, cols := m.Rows(), m.Cols()
	s.mean = make([]float64, cols)
	s.invStd = make([]float64, cols)
	if rows == 0 {
		for i := range s.invStd {
			s.invStd[i] = 1
		}
		s.fitted = true
		return nil
	}
	for r := 0; r < rows; r++ {
		m.ForEachNZ(r, func(c int, v float64) { s.mean[c] += v })
	}
	for c := range s.mean {
		s.mean[c] /= float64(rows)
	}
	variance := make([]float64, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			d := m.At(r, c) - s.mean[c]
			variance[c] += d * d
		}
	}
	for c := range variance {
		sd := math.Sqrt(variance[c] / float64(rows))
		if sd == 0 {
			sd = 1
		}
		s.invStd[c] = 1 / sd
	}
	s.fitted = true
	return nil
}

// Apply implements graph.Op.
func (s *StandardScale) Apply(ins []value.Value) (value.Value, error) {
	if !s.fitted {
		return value.Value{}, fmt.Errorf("ops: %s: Apply before Fit", s.Name())
	}
	if len(ins) != 1 {
		return value.Value{}, errArity(s.Name(), len(ins), 1)
	}
	m, err := ins[0].AsMatrix()
	if err != nil {
		return value.Value{}, fmt.Errorf("ops: %s: %w", s.Name(), err)
	}
	if m.Cols() != len(s.mean) {
		return value.Value{}, fmt.Errorf("ops: %s: input has %d cols, fitted on %d", s.Name(), m.Cols(), len(s.mean))
	}
	out := feature.NewDense(m.Rows(), m.Cols())
	for r := 0; r < m.Rows(); r++ {
		row := out.Row(r)
		for c := 0; c < m.Cols(); c++ {
			row[c] = (m.At(r, c) - s.mean[c]) * s.invStd[c]
		}
	}
	return value.NewMat(out), nil
}

// ApplyBoxed implements graph.Op.
func (s *StandardScale) ApplyBoxed(ins []any) (any, error) {
	if !s.fitted {
		return nil, fmt.Errorf("ops: %s: ApplyBoxed before Fit", s.Name())
	}
	if len(ins) != 1 {
		return nil, errArity(s.Name(), len(ins), 1)
	}
	row, ok := ins[0].([]float64)
	if !ok {
		return nil, errBoxed(s.Name(), 0, ins[0], "[]float64")
	}
	if len(row) != len(s.mean) {
		return nil, fmt.Errorf("ops: %s: row has %d cols, fitted on %d", s.Name(), len(row), len(s.mean))
	}
	out := make([]float64, len(row))
	for c, v := range row {
		out[c] = (v - s.mean[c]) * s.invStd[c]
	}
	return out, nil
}

// NumericStats maps a float column to derived features:
// [x, log1p(|x|), x^2, is_zero].
type NumericStats struct{}

// NewNumericStats returns the derived-numeric-features operator.
func NewNumericStats() *NumericStats { return &NumericStats{} }

// Name implements graph.Op.
func (n *NumericStats) Name() string { return "numeric_stats" }

// Compilable implements graph.Op.
func (n *NumericStats) Compilable() bool { return true }

// Commutative implements graph.Op.
func (n *NumericStats) Commutative() bool { return false }

// Width returns the number of derived features.
func (n *NumericStats) Width() int { return 4 }

func (n *NumericStats) row(x float64, dst []float64) {
	dst[0] = x
	dst[1] = math.Log1p(math.Abs(x))
	dst[2] = x * x
	if x == 0 {
		dst[3] = 1
	} else {
		dst[3] = 0
	}
}

// Apply implements graph.Op.
func (n *NumericStats) Apply(ins []value.Value) (value.Value, error) {
	if len(ins) != 1 {
		return value.Value{}, errArity(n.Name(), len(ins), 1)
	}
	var xs []float64
	switch ins[0].Kind {
	case value.Floats:
		xs = ins[0].Floats
	case value.Ints:
		xs = make([]float64, len(ins[0].Ints))
		for i, v := range ins[0].Ints {
			xs[i] = float64(v)
		}
	default:
		return value.Value{}, errKind(n.Name(), 0, ins[0].Kind, value.Floats)
	}
	m := feature.NewDense(len(xs), n.Width())
	for i, x := range xs {
		n.row(x, m.Row(i))
	}
	return value.NewMat(m), nil
}

// ApplyBoxed implements graph.Op.
func (n *NumericStats) ApplyBoxed(ins []any) (any, error) {
	if len(ins) != 1 {
		return nil, errArity(n.Name(), len(ins), 1)
	}
	var x float64
	switch v := ins[0].(type) {
	case float64:
		x = v
	case int64:
		x = float64(v)
	default:
		return nil, errBoxed(n.Name(), 0, ins[0], "float64 or int64")
	}
	dst := make([]float64, n.Width())
	n.row(x, dst)
	return dst, nil
}

// oneHotState is the serialized form of a OneHot encoder. Categories are
// listed in column order.
type oneHotState struct {
	MaxCategories int      `json:"max_categories"`
	Fitted        bool     `json:"fitted"`
	Categories    []string `json:"categories,omitempty"`
}

// MarshalState implements StateMarshaler.
func (o *OneHot) MarshalState() ([]byte, error) {
	st := oneHotState{MaxCategories: o.MaxCategories, Fitted: o.fitted}
	if o.cats != nil {
		st.Categories = make([]string, len(o.cats))
		for cat, col := range o.cats {
			st.Categories[col] = cat
		}
	}
	return json.Marshal(st)
}

// UnmarshalState implements StateUnmarshaler.
func (o *OneHot) UnmarshalState(state []byte) error {
	var st oneHotState
	if err := json.Unmarshal(state, &st); err != nil {
		return err
	}
	o.MaxCategories = st.MaxCategories
	o.fitted = st.Fitted
	o.cats = make(map[string]int, len(st.Categories))
	for col, cat := range st.Categories {
		o.cats[cat] = col
	}
	return nil
}

// ordinalState is the serialized form of an Ordinal encoder. Categories are
// listed in code order (position i carries code i).
type ordinalState struct {
	Fitted     bool     `json:"fitted"`
	Categories []string `json:"categories,omitempty"`
}

// MarshalState implements StateMarshaler.
func (o *Ordinal) MarshalState() ([]byte, error) {
	st := ordinalState{Fitted: o.fitted}
	if o.codes != nil {
		st.Categories = make([]string, len(o.codes))
		for cat, code := range o.codes {
			st.Categories[int(code)] = cat
		}
	}
	return json.Marshal(st)
}

// UnmarshalState implements StateUnmarshaler.
func (o *Ordinal) UnmarshalState(state []byte) error {
	var st ordinalState
	if err := json.Unmarshal(state, &st); err != nil {
		return err
	}
	o.fitted = st.Fitted
	o.codes = make(map[string]float64, len(st.Categories))
	for code, cat := range st.Categories {
		o.codes[cat] = float64(code)
	}
	return nil
}

// scaleState is the serialized form of a StandardScale operator. Mean and
// inverse standard deviation are stored bit-exactly.
type scaleState struct {
	Fitted bool            `json:"fitted"`
	Mean   artifact.Vector `json:"mean,omitempty"`
	InvStd artifact.Vector `json:"inv_std,omitempty"`
}

// MarshalState implements StateMarshaler.
func (s *StandardScale) MarshalState() ([]byte, error) {
	return json.Marshal(scaleState{Fitted: s.fitted, Mean: artifact.Vector(s.mean), InvStd: artifact.Vector(s.invStd)})
}

// UnmarshalState implements StateUnmarshaler.
func (s *StandardScale) UnmarshalState(state []byte) error {
	var st scaleState
	if err := json.Unmarshal(state, &st); err != nil {
		return err
	}
	if len(st.Mean) != len(st.InvStd) {
		return fmt.Errorf("ops: standard_scale state has %d means but %d inverse stddevs", len(st.Mean), len(st.InvStd))
	}
	s.fitted = st.Fitted
	s.mean = []float64(st.Mean)
	s.invStd = []float64(st.InvStd)
	return nil
}
