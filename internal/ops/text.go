package ops

import (
	"encoding/json"
	"sort"
	"strings"
	"unicode"

	"willump/internal/feature"
	"willump/internal/value"
)

// Clean normalizes raw text: lower-cases it and replaces punctuation with
// spaces. It is the first stage of the paper's string-processing pipelines.
type Clean struct{}

// NewClean returns a text-cleaning operator.
func NewClean() *Clean { return &Clean{} }

// Name implements graph.Op.
func (c *Clean) Name() string { return "clean" }

// Compilable implements graph.Op.
func (c *Clean) Compilable() bool { return true }

// Commutative implements graph.Op.
func (c *Clean) Commutative() bool { return false }

func cleanString(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for _, r := range s {
		switch {
		case unicode.IsUpper(r):
			b.WriteRune(unicode.ToLower(r))
		case unicode.IsLetter(r) || unicode.IsDigit(r) || r == ' ':
			b.WriteRune(r)
		default:
			b.WriteByte(' ')
		}
	}
	return b.String()
}

// Apply implements graph.Op (columnar path).
func (c *Clean) Apply(ins []value.Value) (value.Value, error) {
	if len(ins) != 1 {
		return value.Value{}, errArity(c.Name(), len(ins), 1)
	}
	if ins[0].Kind != value.Strings {
		return value.Value{}, errKind(c.Name(), 0, ins[0].Kind, value.Strings)
	}
	out := make([]string, len(ins[0].Strings))
	for i, s := range ins[0].Strings {
		out[i] = cleanString(s)
	}
	return value.NewStrings(out), nil
}

// ApplyBoxed implements graph.Op (row-at-a-time path).
func (c *Clean) ApplyBoxed(ins []any) (any, error) {
	if len(ins) != 1 {
		return nil, errArity(c.Name(), len(ins), 1)
	}
	s, ok := ins[0].(string)
	if !ok {
		return nil, errBoxed(c.Name(), 0, ins[0], "string")
	}
	return cleanString(s), nil
}

// Tokenize splits cleaned text into whitespace-separated tokens.
type Tokenize struct{}

// NewTokenize returns a whitespace tokenizer.
func NewTokenize() *Tokenize { return &Tokenize{} }

// Name implements graph.Op.
func (t *Tokenize) Name() string { return "tokenize" }

// Compilable implements graph.Op.
func (t *Tokenize) Compilable() bool { return true }

// Commutative implements graph.Op.
func (t *Tokenize) Commutative() bool { return false }

// Apply implements graph.Op.
func (t *Tokenize) Apply(ins []value.Value) (value.Value, error) {
	if len(ins) != 1 {
		return value.Value{}, errArity(t.Name(), len(ins), 1)
	}
	if ins[0].Kind != value.Strings {
		return value.Value{}, errKind(t.Name(), 0, ins[0].Kind, value.Strings)
	}
	out := make([][]string, len(ins[0].Strings))
	for i, s := range ins[0].Strings {
		out[i] = strings.Fields(s)
	}
	return value.NewTokens(out), nil
}

// ApplyBoxed implements graph.Op.
func (t *Tokenize) ApplyBoxed(ins []any) (any, error) {
	if len(ins) != 1 {
		return nil, errArity(t.Name(), len(ins), 1)
	}
	s, ok := ins[0].(string)
	if !ok {
		return nil, errBoxed(t.Name(), 0, ins[0], "string")
	}
	return strings.Fields(s), nil
}

// TextStats computes cheap scalar statistics over raw text: character length,
// word count, upper-case ratio, and the count of words from a keyword list
// (e.g. curse words for the Toxic benchmark, which the paper's introduction
// uses as the canonical "important yet inexpensive" feature).
type TextStats struct {
	keywords map[string]bool
}

// NewTextStats returns a text-statistics operator counting the given keywords.
func NewTextStats(keywords []string) *TextStats {
	kw := make(map[string]bool, len(keywords))
	for _, k := range keywords {
		kw[strings.ToLower(k)] = true
	}
	return &TextStats{keywords: kw}
}

// Name implements graph.Op.
func (t *TextStats) Name() string { return "text_stats" }

// Compilable implements graph.Op.
func (t *TextStats) Compilable() bool { return true }

// Commutative implements graph.Op.
func (t *TextStats) Commutative() bool { return false }

// Width returns the number of produced features.
func (t *TextStats) Width() int { return 4 }

func (t *TextStats) statsRow(s string, dst []float64) {
	var upper, letters int
	for _, r := range s {
		if unicode.IsUpper(r) {
			upper++
		}
		if unicode.IsLetter(r) {
			letters++
		}
	}
	words := strings.Fields(strings.ToLower(s))
	kw := 0
	for _, w := range words {
		if t.keywords[strings.Trim(w, ".,!?;:'\"")] {
			kw++
		}
	}
	dst[0] = float64(len(s))
	dst[1] = float64(len(words))
	if letters > 0 {
		dst[2] = float64(upper) / float64(letters)
	} else {
		dst[2] = 0
	}
	dst[3] = float64(kw)
}

// Apply implements graph.Op.
func (t *TextStats) Apply(ins []value.Value) (value.Value, error) {
	if len(ins) != 1 {
		return value.Value{}, errArity(t.Name(), len(ins), 1)
	}
	if ins[0].Kind != value.Strings {
		return value.Value{}, errKind(t.Name(), 0, ins[0].Kind, value.Strings)
	}
	n := len(ins[0].Strings)
	m := feature.NewDense(n, t.Width())
	for i, s := range ins[0].Strings {
		t.statsRow(s, m.Row(i))
	}
	return value.NewMat(m), nil
}

// ApplyBoxed implements graph.Op.
func (t *TextStats) ApplyBoxed(ins []any) (any, error) {
	if len(ins) != 1 {
		return nil, errArity(t.Name(), len(ins), 1)
	}
	s, ok := ins[0].(string)
	if !ok {
		return nil, errBoxed(t.Name(), 0, ins[0], "string")
	}
	dst := make([]float64, t.Width())
	t.statsRow(s, dst)
	return dst, nil
}

// textStatsState is the serialized form of a TextStats operator: the keyword
// list in sorted order.
type textStatsState struct {
	Keywords []string `json:"keywords,omitempty"`
}

// MarshalState implements StateMarshaler.
func (t *TextStats) MarshalState() ([]byte, error) {
	kws := make([]string, 0, len(t.keywords))
	for k := range t.keywords {
		kws = append(kws, k)
	}
	sort.Strings(kws)
	return json.Marshal(textStatsState{Keywords: kws})
}

// UnmarshalState implements StateUnmarshaler.
func (t *TextStats) UnmarshalState(state []byte) error {
	var st textStatsState
	if err := json.Unmarshal(state, &st); err != nil {
		return err
	}
	t.keywords = make(map[string]bool, len(st.Keywords))
	for _, k := range st.Keywords {
		t.keywords[strings.ToLower(k)] = true
	}
	return nil
}
