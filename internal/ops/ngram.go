package ops

import (
	"encoding/json"
	"fmt"
	"strings"

	"willump/internal/value"
)

// WordNGrams expands token lists into word n-grams for n in [MinN, MaxN].
// Multi-word grams are joined with a single space, matching the convention
// of common vectorizer APIs.
type WordNGrams struct {
	MinN, MaxN int
}

// NewWordNGrams returns a word n-gram expander over the inclusive range
// [minN, maxN].
func NewWordNGrams(minN, maxN int) *WordNGrams {
	if minN < 1 || maxN < minN {
		panic("ops: NewWordNGrams: need 1 <= minN <= maxN")
	}
	return &WordNGrams{MinN: minN, MaxN: maxN}
}

// Name implements graph.Op.
func (w *WordNGrams) Name() string { return "word_ngrams" }

// Compilable implements graph.Op.
func (w *WordNGrams) Compilable() bool { return true }

// Commutative implements graph.Op.
func (w *WordNGrams) Commutative() bool { return false }

func (w *WordNGrams) expand(tokens []string) []string {
	var out []string
	for n := w.MinN; n <= w.MaxN; n++ {
		for i := 0; i+n <= len(tokens); i++ {
			if n == 1 {
				out = append(out, tokens[i])
			} else {
				out = append(out, strings.Join(tokens[i:i+n], " "))
			}
		}
	}
	return out
}

// Apply implements graph.Op.
func (w *WordNGrams) Apply(ins []value.Value) (value.Value, error) {
	if len(ins) != 1 {
		return value.Value{}, errArity(w.Name(), len(ins), 1)
	}
	if ins[0].Kind != value.Tokens {
		return value.Value{}, errKind(w.Name(), 0, ins[0].Kind, value.Tokens)
	}
	out := make([][]string, len(ins[0].Tokens))
	for i, toks := range ins[0].Tokens {
		out[i] = w.expand(toks)
	}
	return value.NewTokens(out), nil
}

// ApplyBoxed implements graph.Op.
func (w *WordNGrams) ApplyBoxed(ins []any) (any, error) {
	if len(ins) != 1 {
		return nil, errArity(w.Name(), len(ins), 1)
	}
	toks, ok := ins[0].([]string)
	if !ok {
		return nil, errBoxed(w.Name(), 0, ins[0], "[]string")
	}
	return w.expand(toks), nil
}

// CharNGrams expands raw strings into character n-grams for n in
// [MinN, MaxN]. It operates on strings (not tokens), like char analyzers in
// common vectorizers.
type CharNGrams struct {
	MinN, MaxN int
}

// NewCharNGrams returns a character n-gram expander over [minN, maxN].
func NewCharNGrams(minN, maxN int) *CharNGrams {
	if minN < 1 || maxN < minN {
		panic("ops: NewCharNGrams: need 1 <= minN <= maxN")
	}
	return &CharNGrams{MinN: minN, MaxN: maxN}
}

// Name implements graph.Op.
func (c *CharNGrams) Name() string { return "char_ngrams" }

// Compilable implements graph.Op.
func (c *CharNGrams) Compilable() bool { return true }

// Commutative implements graph.Op.
func (c *CharNGrams) Commutative() bool { return false }

func (c *CharNGrams) expand(s string) []string {
	var out []string
	for n := c.MinN; n <= c.MaxN; n++ {
		for i := 0; i+n <= len(s); i++ {
			out = append(out, s[i:i+n])
		}
	}
	return out
}

// Apply implements graph.Op.
func (c *CharNGrams) Apply(ins []value.Value) (value.Value, error) {
	if len(ins) != 1 {
		return value.Value{}, errArity(c.Name(), len(ins), 1)
	}
	if ins[0].Kind != value.Strings {
		return value.Value{}, errKind(c.Name(), 0, ins[0].Kind, value.Strings)
	}
	out := make([][]string, len(ins[0].Strings))
	for i, s := range ins[0].Strings {
		out[i] = c.expand(s)
	}
	return value.NewTokens(out), nil
}

// ApplyBoxed implements graph.Op.
func (c *CharNGrams) ApplyBoxed(ins []any) (any, error) {
	if len(ins) != 1 {
		return nil, errArity(c.Name(), len(ins), 1)
	}
	s, ok := ins[0].(string)
	if !ok {
		return nil, errBoxed(c.Name(), 0, ins[0], "string")
	}
	return c.expand(s), nil
}

// ngramState is the serialized configuration shared by the n-gram expanders.
type ngramState struct {
	MinN int `json:"min_n"`
	MaxN int `json:"max_n"`
}

// MarshalState implements StateMarshaler.
func (w *WordNGrams) MarshalState() ([]byte, error) {
	return json.Marshal(ngramState{MinN: w.MinN, MaxN: w.MaxN})
}

// UnmarshalState implements StateUnmarshaler.
func (w *WordNGrams) UnmarshalState(state []byte) error {
	var st ngramState
	if err := json.Unmarshal(state, &st); err != nil {
		return err
	}
	if st.MinN < 1 || st.MaxN < st.MinN {
		return fmt.Errorf("ops: word_ngrams state needs 1 <= min_n <= max_n, got [%d, %d]", st.MinN, st.MaxN)
	}
	w.MinN, w.MaxN = st.MinN, st.MaxN
	return nil
}

// MarshalState implements StateMarshaler.
func (c *CharNGrams) MarshalState() ([]byte, error) {
	return json.Marshal(ngramState{MinN: c.MinN, MaxN: c.MaxN})
}

// UnmarshalState implements StateUnmarshaler.
func (c *CharNGrams) UnmarshalState(state []byte) error {
	var st ngramState
	if err := json.Unmarshal(state, &st); err != nil {
		return err
	}
	if st.MinN < 1 || st.MaxN < st.MinN {
		return fmt.Errorf("ops: char_ngrams state needs 1 <= min_n <= max_n, got [%d, %d]", st.MinN, st.MaxN)
	}
	c.MinN, c.MaxN = st.MinN, st.MaxN
	return nil
}
