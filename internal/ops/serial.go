package ops

import (
	"fmt"
	"reflect"
	"sync"

	"willump/internal/graph"
)

// StateMarshaler is implemented by operators that carry configuration or
// fitted state worth persisting in an artifact. Stateless operators (Clean,
// Tokenize, Concat, ...) need not implement it; their registry factory alone
// reconstructs them.
type StateMarshaler interface {
	// MarshalState serializes the operator's configuration and learned
	// state (vocabularies, category maps, scaling statistics, ...).
	MarshalState() ([]byte, error)
}

// StateUnmarshaler is the decoding half of StateMarshaler: a freshly
// constructed operator restores itself from serialized state.
type StateUnmarshaler interface {
	UnmarshalState(state []byte) error
}

// opRegistry maps stable kind strings to operator factories and operator
// types back to their kinds. It backs artifact (de)serialization: every
// operator type appearing in a saved pipeline must be registered, either
// here (built-ins) or by the user through RegisterOp.
type opRegistry struct {
	mu        sync.RWMutex
	factories map[string]func() graph.Op
	kinds     map[reflect.Type]string
}

var opsReg = &opRegistry{
	factories: make(map[string]func() graph.Op),
	kinds:     make(map[reflect.Type]string),
}

// RegisterOp registers an operator implementation under a stable kind
// string for artifact (de)serialization. The factory must return a new,
// empty operator of a single concrete type; if the operator has state, that
// type must implement StateUnmarshaler (and StateMarshaler for saving).
// Registering a duplicate kind or type panics, mirroring gob.Register.
func RegisterOp(kind string, factory func() graph.Op) {
	if kind == "" {
		panic("ops: RegisterOp with empty kind")
	}
	proto := factory()
	if proto == nil {
		panic(fmt.Sprintf("ops: RegisterOp(%q): factory returned nil", kind))
	}
	t := reflect.TypeOf(proto)
	opsReg.mu.Lock()
	defer opsReg.mu.Unlock()
	if _, dup := opsReg.factories[kind]; dup {
		panic(fmt.Sprintf("ops: RegisterOp: kind %q already registered", kind))
	}
	if prev, dup := opsReg.kinds[t]; dup {
		panic(fmt.Sprintf("ops: RegisterOp: type %v already registered as %q", t, prev))
	}
	opsReg.factories[kind] = factory
	opsReg.kinds[t] = kind
}

// EncodeOp serializes an operator into its registry kind and state payload.
func EncodeOp(op graph.Op) (kind string, state []byte, err error) {
	opsReg.mu.RLock()
	kind, ok := opsReg.kinds[reflect.TypeOf(op)]
	opsReg.mu.RUnlock()
	if !ok {
		return "", nil, fmt.Errorf("ops: operator %s (%T) is not registered; call RegisterOp to make it serializable", op.Name(), op)
	}
	if m, has := op.(StateMarshaler); has {
		state, err = m.MarshalState()
		if err != nil {
			return "", nil, fmt.Errorf("ops: marshaling %s state: %w", op.Name(), err)
		}
	}
	return kind, state, nil
}

// DecodeOp reconstructs an operator from its registry kind and state.
func DecodeOp(kind string, state []byte) (graph.Op, error) {
	opsReg.mu.RLock()
	factory, ok := opsReg.factories[kind]
	opsReg.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("ops: unknown operator kind %q; register it with RegisterOp before loading", kind)
	}
	op := factory()
	if len(state) > 0 {
		u, has := op.(StateUnmarshaler)
		if !has {
			return nil, fmt.Errorf("ops: operator kind %q has state but %T implements no UnmarshalState", kind, op)
		}
		if err := u.UnmarshalState(state); err != nil {
			return nil, fmt.Errorf("ops: unmarshaling %q state: %w", kind, err)
		}
	}
	return op, nil
}

// Codec adapts the operator registry to graph.OpCodec.
type Codec struct{}

// EncodeOp implements graph.OpCodec.
func (Codec) EncodeOp(op graph.Op) (string, []byte, error) { return EncodeOp(op) }

// DecodeOp implements graph.OpCodec.
func (Codec) DecodeOp(kind string, state []byte) (graph.Op, error) { return DecodeOp(kind, state) }

func init() {
	RegisterOp("clean", func() graph.Op { return &Clean{} })
	RegisterOp("tokenize", func() graph.Op { return &Tokenize{} })
	RegisterOp("text_stats", func() graph.Op { return &TextStats{} })
	RegisterOp("word_ngrams", func() graph.Op { return &WordNGrams{} })
	RegisterOp("char_ngrams", func() graph.Op { return &CharNGrams{} })
	RegisterOp("tfidf", func() graph.Op { return &TFIDF{} })
	RegisterOp("count_vectorizer", func() graph.Op { return &CountVectorizer{} })
	RegisterOp("hashing_vectorizer", func() graph.Op { return &HashingVectorizer{} })
	RegisterOp("one_hot", func() graph.Op { return &OneHot{} })
	RegisterOp("ordinal", func() graph.Op { return &Ordinal{} })
	RegisterOp("standard_scale", func() graph.Op { return &StandardScale{} })
	RegisterOp("numeric_stats", func() graph.Op { return &NumericStats{} })
	RegisterOp("concat", func() graph.Op { return &Concat{} })
	RegisterOp("clip", func() graph.Op { return &Clip{} })
	RegisterOp("ratio", func() graph.Op { return &Ratio{} })
	RegisterOp("lookup", func() graph.Op { return &Lookup{} })
}
