package ops

import (
	"strings"

	"willump/internal/feature"
	"willump/internal/graph"
	"willump/internal/value"
)

// FusedText is a fused text-vectorization chain: an optional Clean, then a
// token source (Tokenize optionally followed by WordNGrams, or CharNGrams),
// then a vectorizer (TFIDF, CountVectorizer, or HashingVectorizer). The
// fused operator streams each document through the whole chain in one pass,
// never materializing intermediate token columns for the batch — the
// equivalent of the paper's parameterized Weld TF-IDF template with loop
// fusion applied (section 5.2).
type FusedText struct {
	clean *Clean      // optional
	tok   *Tokenize   // either tok (+ optional wng) or cng
	wng   *WordNGrams // optional
	cng   *CharNGrams
	tfidf *TFIDF // exactly one vectorizer is non-nil
	cv    *CountVectorizer
	hv    *HashingVectorizer

	label string
}

// FuseTextChain attempts to fuse a linear operator chain (in execution
// order) into a single FusedText operator. It returns (nil, false) when the
// chain does not match a known template. Fusion requires every stateful
// operator in the chain to be fitted already.
func FuseTextChain(chain []graph.Op) (graph.Op, bool) {
	if len(chain) < 2 {
		return nil, false
	}
	f := &FusedText{}
	i := 0
	if c, ok := chain[i].(*Clean); ok {
		f.clean = c
		i++
	}
	if i >= len(chain) {
		return nil, false
	}
	switch t := chain[i].(type) {
	case *Tokenize:
		f.tok = t
		i++
		if i < len(chain) {
			if w, ok := chain[i].(*WordNGrams); ok {
				f.wng = w
				i++
			}
		}
	case *CharNGrams:
		f.cng = t
		i++
	default:
		return nil, false
	}
	if i != len(chain)-1 {
		return nil, false
	}
	switch v := chain[i].(type) {
	case *TFIDF:
		if !v.Fitted() {
			return nil, false
		}
		f.tfidf = v
	case *CountVectorizer:
		if !v.Fitted() {
			return nil, false
		}
		f.cv = v
	case *HashingVectorizer:
		f.hv = v
	default:
		return nil, false
	}
	var parts []string
	for _, op := range chain {
		parts = append(parts, op.Name())
	}
	f.label = "fused(" + strings.Join(parts, "+") + ")"
	return f, true
}

// Name implements graph.Op.
func (f *FusedText) Name() string { return f.label }

// Compilable implements graph.Op.
func (f *FusedText) Compilable() bool { return true }

// Commutative implements graph.Op.
func (f *FusedText) Commutative() bool { return false }

// Width returns the fused output width.
func (f *FusedText) Width() int {
	switch {
	case f.tfidf != nil:
		return f.tfidf.Width()
	case f.cv != nil:
		return f.cv.Width()
	default:
		return f.hv.Width()
	}
}

// tokensFor streams one document through the cleaning/tokenizing stages,
// reusing the scratch token slice.
func (f *FusedText) tokensFor(s string, scratch []string) []string {
	if f.clean != nil {
		s = cleanString(s)
	}
	if f.cng != nil {
		scratch = scratch[:0]
		for n := f.cng.MinN; n <= f.cng.MaxN; n++ {
			for i := 0; i+n <= len(s); i++ {
				scratch = append(scratch, s[i:i+n])
			}
		}
		return scratch
	}
	toks := strings.Fields(s)
	if f.wng == nil {
		return toks
	}
	scratch = scratch[:0]
	for n := f.wng.MinN; n <= f.wng.MaxN; n++ {
		for i := 0; i+n <= len(toks); i++ {
			if n == 1 {
				scratch = append(scratch, toks[i])
			} else {
				scratch = append(scratch, strings.Join(toks[i:i+n], " "))
			}
		}
	}
	return scratch
}

// Apply implements graph.Op: one pass per document straight into the CSR
// builder.
func (f *FusedText) Apply(ins []value.Value) (value.Value, error) {
	if len(ins) != 1 {
		return value.Value{}, errArity(f.Name(), len(ins), 1)
	}
	if ins[0].Kind != value.Strings {
		return value.Value{}, errKind(f.Name(), 0, ins[0].Kind, value.Strings)
	}
	b := feature.NewCSRBuilder(f.Width())
	counts := make(map[int]int)
	tfs := newTFScratch()
	var scratch []string
	for _, s := range ins[0].Strings {
		toks := f.tokensFor(s, scratch)
		scratch = toks[:0]
		switch {
		case f.tfidf != nil:
			f.tfidf.transformRow(toks, tfs, b)
		case f.cv != nil:
			f.cv.transformRow(toks, counts, b)
		default:
			for _, tok := range toks {
				b.Add(f.hv.bucket(tok), 1)
			}
			b.EndRow()
		}
	}
	return value.NewMat(b.Build()), nil
}

// ApplyBoxed implements graph.Op. Fused ops never run on the interpreted
// path in practice (the interpreted executor models the unoptimized
// pipeline), but the implementation is provided for interface completeness.
func (f *FusedText) ApplyBoxed(ins []any) (any, error) {
	if len(ins) != 1 {
		return nil, errArity(f.Name(), len(ins), 1)
	}
	s, ok := ins[0].(string)
	if !ok {
		return nil, errBoxed(f.Name(), 0, ins[0], "string")
	}
	v, err := f.Apply([]value.Value{value.NewStrings([]string{s})})
	if err != nil {
		return nil, err
	}
	return feature.RowDense(v.Mat, 0, nil), nil
}
