package ops

import (
	"encoding/json"
	"fmt"

	"willump/internal/artifact"
	"willump/internal/feature"
	"willump/internal/value"
)

// Concat horizontally concatenates its inputs' feature vectors. It is the
// canonical commutative spine operator: the IFV analysis descends through it
// and its inputs' producers root the pipeline's feature generators.
type Concat struct{}

// NewConcat returns a feature-concatenation operator.
func NewConcat() *Concat { return &Concat{} }

// Name implements graph.Op.
func (c *Concat) Name() string { return "concat" }

// Compilable implements graph.Op.
func (c *Concat) Compilable() bool { return true }

// Commutative implements graph.Op: concatenation trivially commutes with
// itself, making it spine material for the IFV analysis.
func (c *Concat) Commutative() bool { return true }

// Apply implements graph.Op.
func (c *Concat) Apply(ins []value.Value) (value.Value, error) {
	if len(ins) == 0 {
		return value.Value{}, errArity(c.Name(), 0, 1)
	}
	mats := make([]feature.Matrix, len(ins))
	for i, in := range ins {
		m, err := in.AsMatrix()
		if err != nil {
			return value.Value{}, fmt.Errorf("ops: %s: input %d: %w", c.Name(), i, err)
		}
		mats[i] = m
	}
	return value.NewMat(feature.HStack(mats...)), nil
}

// ApplyBoxed implements graph.Op: boxed rows concatenate slice-wise, exactly
// like Python list/array concatenation.
func (c *Concat) ApplyBoxed(ins []any) (any, error) {
	if len(ins) == 0 {
		return nil, errArity(c.Name(), 0, 1)
	}
	var out []float64
	for i, in := range ins {
		switch v := in.(type) {
		case []float64:
			out = append(out, v...)
		case float64:
			out = append(out, v)
		case int64:
			out = append(out, float64(v))
		default:
			return nil, errBoxed(c.Name(), i, in, "[]float64, float64, or int64")
		}
	}
	return out, nil
}

// Clip bounds every feature to [Lo, Hi]. It is elementwise and therefore
// commutes with concatenation, exercising the multi-node-spine path of the
// IFV analysis.
type Clip struct {
	Lo, Hi float64
}

// NewClip returns a clipping operator with the given bounds.
func NewClip(lo, hi float64) *Clip {
	if lo > hi {
		panic("ops: NewClip: lo > hi")
	}
	return &Clip{Lo: lo, Hi: hi}
}

// Name implements graph.Op.
func (c *Clip) Name() string { return "clip" }

// Compilable implements graph.Op.
func (c *Clip) Compilable() bool { return true }

// Commutative implements graph.Op: clipping is elementwise, so
// clip(concat(a, b)) == concat(clip(a), clip(b)).
func (c *Clip) Commutative() bool { return true }

func (c *Clip) clip(v float64) float64 {
	if v < c.Lo {
		return c.Lo
	}
	if v > c.Hi {
		return c.Hi
	}
	return v
}

// Apply implements graph.Op.
func (c *Clip) Apply(ins []value.Value) (value.Value, error) {
	if len(ins) != 1 {
		return value.Value{}, errArity(c.Name(), len(ins), 1)
	}
	switch ins[0].Kind {
	case value.Floats:
		out := make([]float64, len(ins[0].Floats))
		for i, v := range ins[0].Floats {
			out[i] = c.clip(v)
		}
		return value.NewFloats(out), nil
	case value.Mat:
		m := ins[0].Mat
		switch src := m.(type) {
		case *feature.Dense:
			out := feature.NewDense(m.Rows(), m.Cols())
			for r := 0; r < m.Rows(); r++ {
				dst := out.Row(r)
				for i, v := range src.Row(r) {
					dst[i] = c.clip(v)
				}
			}
			return value.NewMat(out), nil
		default:
			// Sparse: clip only stored entries; implicit zeros stay zero,
			// which is correct whenever Lo <= 0 <= Hi. Reject otherwise.
			if c.Lo > 0 || c.Hi < 0 {
				return value.Value{}, fmt.Errorf("ops: %s: sparse input requires Lo <= 0 <= Hi", c.Name())
			}
			b := feature.NewCSRBuilder(m.Cols())
			for r := 0; r < m.Rows(); r++ {
				m.ForEachNZ(r, func(col int, v float64) { b.Add(col, c.clip(v)) })
				b.EndRow()
			}
			return value.NewMat(b.Build()), nil
		}
	default:
		return value.Value{}, errKind(c.Name(), 0, ins[0].Kind, value.Mat)
	}
}

// ApplyBoxed implements graph.Op.
func (c *Clip) ApplyBoxed(ins []any) (any, error) {
	if len(ins) != 1 {
		return nil, errArity(c.Name(), len(ins), 1)
	}
	switch v := ins[0].(type) {
	case float64:
		return c.clip(v), nil
	case []float64:
		out := make([]float64, len(v))
		for i, x := range v {
			out[i] = c.clip(x)
		}
		return out, nil
	default:
		return nil, errBoxed(c.Name(), 0, ins[0], "float64 or []float64")
	}
}

// clipState is the serialized form of a Clip operator. Bounds are stored
// bit-exactly (they may be +/-Inf for one-sided clipping).
type clipState struct {
	Lo artifact.Scalar `json:"lo"`
	Hi artifact.Scalar `json:"hi"`
}

// MarshalState implements StateMarshaler.
func (c *Clip) MarshalState() ([]byte, error) {
	return json.Marshal(clipState{Lo: artifact.Scalar(c.Lo), Hi: artifact.Scalar(c.Hi)})
}

// UnmarshalState implements StateUnmarshaler.
func (c *Clip) UnmarshalState(state []byte) error {
	var st clipState
	if err := json.Unmarshal(state, &st); err != nil {
		return err
	}
	if float64(st.Lo) > float64(st.Hi) {
		return fmt.Errorf("ops: clip state has lo %v > hi %v", float64(st.Lo), float64(st.Hi))
	}
	c.Lo, c.Hi = float64(st.Lo), float64(st.Hi)
	return nil
}
