package metrics

import (
	"sync"
	"time"
)

// Window is a bounded ring of the most recent observations, safe for
// concurrent use. The serving layer records per-request latencies into one
// and reads streaming quantiles from it; memory stays fixed no matter how
// long the server runs.
type Window struct {
	mu    sync.Mutex
	buf   []float64
	next  int
	count int   // live observations in buf (<= len(buf))
	total int64 // observations ever recorded
}

// NewWindow returns a window keeping the last capacity observations
// (capacity < 1 is raised to 1).
func NewWindow(capacity int) *Window {
	if capacity < 1 {
		capacity = 1
	}
	return &Window{buf: make([]float64, capacity)}
}

// Observe records one observation, evicting the oldest when full.
func (w *Window) Observe(x float64) {
	w.mu.Lock()
	w.buf[w.next] = x
	w.next = (w.next + 1) % len(w.buf)
	if w.count < len(w.buf) {
		w.count++
	}
	w.total++
	w.mu.Unlock()
}

// Reset drops the windowed observations so a new judgement interval
// starts from an empty window; the ever-recorded total is kept.
func (w *Window) Reset() {
	w.mu.Lock()
	w.next, w.count = 0, 0
	w.mu.Unlock()
}

// Total returns the number of observations ever recorded (not just those
// still in the window).
func (w *Window) Total() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.total
}

// Snapshot copies the live observations out of the ring, oldest first.
func (w *Window) Snapshot() []float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]float64, 0, w.count)
	start := w.next - w.count
	for i := 0; i < w.count; i++ {
		out = append(out, w.buf[(start+i+len(w.buf))%len(w.buf)])
	}
	return out
}

// Quantile returns the p-th percentile (0 <= p <= 100) of the windowed
// observations, 0 when none have been recorded.
func (w *Window) Quantile(p float64) float64 {
	return Percentile(w.Snapshot(), p)
}

// Quantiles returns several percentiles from one snapshot of the window,
// so the observations each quantile is computed over are consistent (and
// the ring is copied once, not once per quantile).
func (w *Window) Quantiles(ps ...float64) []float64 {
	snap := w.Snapshot()
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = Percentile(snap, p)
	}
	return out
}

// Meter counts events against a sliding wall-clock window, for request
// rates (QPS). Events are accumulated into one-second buckets, so memory is
// fixed by the window length and the reported rate never saturates no
// matter how high the event rate climbs.
type Meter struct {
	mu      sync.Mutex
	window  time.Duration
	buckets []int64     // events per second-of-window
	starts  []time.Time // each bucket's second, to expire stale ones
}

// NewMeter returns a meter over a sliding window (window <= 0 defaults to
// one minute; sub-second windows are raised to one second).
func NewMeter(window time.Duration) *Meter {
	if window <= 0 {
		window = time.Minute
	}
	n := int(window / time.Second)
	if n < 1 {
		n = 1
		window = time.Second
	}
	return &Meter{window: window, buckets: make([]int64, n), starts: make([]time.Time, n)}
}

// Mark records one event at time now.
func (m *Meter) Mark(now time.Time) {
	m.mu.Lock()
	sec := now.Truncate(time.Second)
	i := int(sec.Unix()%int64(len(m.buckets))+int64(len(m.buckets))) % len(m.buckets)
	if !m.starts[i].Equal(sec) {
		m.starts[i] = sec
		m.buckets[i] = 0
	}
	m.buckets[i]++
	m.mu.Unlock()
}

// Rate returns events per second over the window ending at now.
func (m *Meter) Rate(now time.Time) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	cutoff := now.Add(-m.window)
	var total int64
	for i := range m.buckets {
		if m.starts[i].After(cutoff) && !m.starts[i].After(now) {
			total += m.buckets[i]
		}
	}
	return float64(total) / m.window.Seconds()
}
