package metrics

import (
	"errors"
	"math"
	"testing"
	"time"
)

func TestThroughputPositive(t *testing.T) {
	tp, err := Throughput(1000, 2, func() error {
		time.Sleep(time.Millisecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if tp <= 0 || tp > 1.1e6 {
		t.Errorf("throughput = %v rows/s, want positive and <= ~1e6", tp)
	}
}

func TestThroughputPropagatesError(t *testing.T) {
	if _, err := Throughput(1, 1, func() error { return errors.New("x") }); err == nil {
		t.Error("want error")
	}
}

func TestLatency(t *testing.T) {
	lat, err := Latency(5, func(int) error {
		time.Sleep(2 * time.Millisecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if lat < 2*time.Millisecond {
		t.Errorf("latency = %v, want >= 2ms", lat)
	}
}

func TestBinomialCI(t *testing.T) {
	ci := BinomialCI(0.9, 1000)
	want := 1.96 * math.Sqrt(0.9*0.1/1000)
	if math.Abs(ci-want) > 1e-12 {
		t.Errorf("CI = %v, want %v", ci, want)
	}
	if BinomialCI(0.5, 0) != 1 {
		t.Error("CI with n=0 should be 1")
	}
}

func TestSignificantLoss(t *testing.T) {
	// 0.1% loss on 1000 samples of 90% accuracy: CI ~ 1.86%, insignificant.
	if SignificantLoss(0.90, 0.899, 1000) {
		t.Error("0.1% loss should be insignificant at n=1000")
	}
	if !SignificantLoss(0.90, 0.80, 1000) {
		t.Error("10% loss should be significant at n=1000")
	}
}

func TestMeanAndPercentile(t *testing.T) {
	xs := []float64{3, 1, 2}
	if Mean(xs) != 2 {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) should be 0")
	}
	if Percentile(xs, 50) != 2 {
		t.Errorf("p50 = %v", Percentile(xs, 50))
	}
	if Percentile(xs, 0) != 1 || Percentile(xs, 100) != 3 {
		t.Error("percentile extremes wrong")
	}
	if Percentile(nil, 50) != 0 {
		t.Error("Percentile(nil) should be 0")
	}
}
