package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestWindowQuantiles(t *testing.T) {
	w := NewWindow(100)
	if got := w.Quantile(50); got != 0 {
		t.Errorf("empty window quantile = %v, want 0", got)
	}
	for i := 1; i <= 100; i++ {
		w.Observe(float64(i))
	}
	if got := w.Quantile(50); got != 50 {
		t.Errorf("p50 = %v, want 50", got)
	}
	if got := w.Quantile(99); got != 99 {
		t.Errorf("p99 = %v, want 99", got)
	}
	if got := w.Total(); got != 100 {
		t.Errorf("Total = %d, want 100", got)
	}
}

func TestWindowEvictsOldest(t *testing.T) {
	w := NewWindow(4)
	for i := 1; i <= 10; i++ {
		w.Observe(float64(i))
	}
	snap := w.Snapshot()
	want := []float64{7, 8, 9, 10}
	if len(snap) != len(want) {
		t.Fatalf("snapshot = %v, want %v", snap, want)
	}
	for i := range want {
		if snap[i] != want[i] {
			t.Fatalf("snapshot = %v, want %v", snap, want)
		}
	}
	if got := w.Total(); got != 10 {
		t.Errorf("Total = %d, want 10", got)
	}
}

func TestWindowConcurrent(t *testing.T) {
	w := NewWindow(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				w.Observe(1)
				w.Quantile(50)
			}
		}()
	}
	wg.Wait()
	if got := w.Total(); got != 800 {
		t.Errorf("Total = %d, want 800", got)
	}
}

// TestWindowConcurrentQuantiles hammers Observe against the multi-quantile
// and snapshot readers (the /metrics and stats scrape paths) from many
// goroutines; correctness here is primarily the race detector's to judge,
// plus basic invariants on every read.
func TestWindowConcurrentQuantiles(t *testing.T) {
	w := NewWindow(128)
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < 500; i++ {
				w.Observe(float64(g*500 + i + 1))
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				qs := w.Quantiles(50, 90, 99, 99.9)
				for i := 1; i < len(qs); i++ {
					if qs[i] < qs[i-1] {
						t.Errorf("quantiles not monotone: %v", qs)
						return
					}
				}
				if snap := w.Snapshot(); len(snap) > 128 {
					t.Errorf("snapshot has %d observations, cap 128", len(snap))
					return
				}
			}
		}()
	}
	writers.Wait() // readers keep scraping while every write lands
	close(stop)
	readers.Wait()
	if got := w.Total(); got != 2000 {
		t.Errorf("Total = %d, want 2000", got)
	}
}

func TestMeterRate(t *testing.T) {
	base := time.Unix(1000, 0)
	m := NewMeter(10 * time.Second)
	for i := 0; i < 50; i++ {
		m.Mark(base.Add(time.Duration(i) * 100 * time.Millisecond))
	}
	// All 50 events fall within the 10s window: 5 events/sec.
	if got := m.Rate(base.Add(5 * time.Second)); got != 5 {
		t.Errorf("Rate = %v, want 5", got)
	}
	// 20s later every event has aged out.
	if got := m.Rate(base.Add(25 * time.Second)); got != 0 {
		t.Errorf("Rate after window = %v, want 0", got)
	}
}

// TestMeterHighRateNoSaturation: the bucketed meter reports true rates at
// loads far beyond what a bounded event ring could remember.
func TestMeterHighRateNoSaturation(t *testing.T) {
	base := time.Unix(2000, 0)
	m := NewMeter(10 * time.Second)
	for s := 0; s < 10; s++ {
		for i := 0; i < 10000; i++ {
			m.Mark(base.Add(time.Duration(s) * time.Second))
		}
	}
	if got := m.Rate(base.Add(9 * time.Second)); got != 10000 {
		t.Errorf("Rate = %v, want 10000 (no saturation)", got)
	}
}

// TestMeterConcurrent marks from many goroutines while readers poll the
// rate: the count must be exact and the poll data-race-free.
func TestMeterConcurrent(t *testing.T) {
	base := time.Unix(4000, 0)
	m := NewMeter(10 * time.Second)
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 1000; i++ {
				m.Mark(base.Add(time.Duration(i) * time.Millisecond))
			}
		}()
	}
	for g := 0; g < 2; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					if r := m.Rate(base.Add(time.Second)); r < 0 {
						t.Errorf("negative rate %v", r)
						return
					}
				}
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	// All 8000 marks land within one second of the 10s window.
	if got := m.Rate(base.Add(5 * time.Second)); got != 800 {
		t.Errorf("Rate = %v, want 800 (8000 events / 10s)", got)
	}
}

// TestMeterBucketReuse: a bucket whose second has lapsed a full window is
// reset, not double-counted, when its slot is reused.
func TestMeterBucketReuse(t *testing.T) {
	base := time.Unix(3000, 0)
	m := NewMeter(2 * time.Second)
	m.Mark(base)
	m.Mark(base.Add(2 * time.Second)) // same slot, new second
	if got := m.Rate(base.Add(2 * time.Second)); got != 0.5 {
		t.Errorf("Rate = %v, want 0.5 (1 event / 2s window)", got)
	}
}
