// Package metrics provides the measurement utilities the evaluation harness
// relies on: throughput/latency timing with warmup, binomial confidence
// intervals for the "no statistically significant accuracy loss" claims
// (section 6.3), and simple summary statistics.
package metrics

import (
	"math"
	"runtime"
	"sort"
	"time"
)

// Throughput measures rows/second for fn processing n rows, running one
// warmup and reps timed repetitions and reporting the best (the standard
// systems-benchmarking convention for steady-state throughput). A garbage
// collection runs before each timed repetition so that allocation debt from
// earlier measurements (e.g. the interpreted baseline's boxing garbage)
// cannot tax this one.
func Throughput(n int, reps int, fn func() error) (float64, error) {
	if reps < 1 {
		reps = 1
	}
	if err := fn(); err != nil { // warmup
		return 0, err
	}
	best := math.Inf(1)
	for i := 0; i < reps; i++ {
		runtime.GC()
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		if sec := time.Since(start).Seconds(); sec < best {
			best = sec
		}
	}
	if best <= 0 {
		return math.Inf(1), nil
	}
	return float64(n) / best, nil
}

// Latency measures the mean per-call latency of fn over k calls after one
// warmup call and a garbage collection.
func Latency(k int, fn func(i int) error) (time.Duration, error) {
	if k < 1 {
		k = 1
	}
	if err := fn(0); err != nil { // warmup
		return 0, err
	}
	runtime.GC()
	start := time.Now()
	for i := 0; i < k; i++ {
		if err := fn(i); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(k), nil
}

// BinomialCI returns the half-width of the normal-approximation 95%
// confidence interval for an observed accuracy over n samples. The paper
// deems an accuracy drop statistically insignificant when it falls within
// this interval (section 6.3).
func BinomialCI(accuracy float64, n int) float64 {
	if n <= 0 {
		return 1
	}
	p := accuracy
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return 1.96 * math.Sqrt(p*(1-p)/float64(n))
}

// SignificantLoss reports whether dropping from baseline to observed
// accuracy over n samples is statistically significant at 95%.
func SignificantLoss(baseline, observed float64, n int) bool {
	return baseline-observed > BinomialCI(baseline, n)
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Percentile returns the p-th percentile (0 <= p <= 100) by
// nearest-rank on a sorted copy.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}
