package serving

import (
	"context"
	"testing"

	"willump/internal/core"
	"willump/internal/fixture"
	"willump/internal/value"
)

// TestRegistryFeatureCacheStats deploys a feature-cached pipeline and checks
// the cache counters surface on the registry's stats — in process and over
// the HTTP stats route — and reset across a hot swap to an uncached version.
func TestRegistryFeatureCacheStats(t *testing.T) {
	fx, err := fixture.NewClassification(9, 600, 200, 200, 0.7, 10)
	if err != nil {
		t.Fatal(err)
	}
	p := &core.Pipeline{Graph: fx.Prog.G, Model: fx.Model}
	train := core.Dataset{Inputs: fx.Train.Inputs, Y: fx.Train.Y}
	valid := core.Dataset{Inputs: fx.Valid.Inputs, Y: fx.Valid.Y}
	ctx := context.Background()
	cached, _, err := core.Optimize(ctx, p, train, valid,
		core.Options{FeatureCache: true, FeatureCacheBudget: 256})
	if err != nil {
		t.Fatal(err)
	}
	uncached, _, err := core.Optimize(ctx, p, train, valid, core.Options{})
	if err != nil {
		t.Fatal(err)
	}

	reg := NewRegistry(Options{})
	if err := reg.Deploy("music", "v1", cached); err != nil {
		t.Fatal(err)
	}
	srv := NewRegistryServer(reg)
	url, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	in := map[string]value.Value{
		"cheap_id": value.NewInts([]int64{3}),
		"heavy_id": value.NewInts([]int64{5}),
	}
	cl := NewClient(url)
	for i := 0; i < 4; i++ { // first request misses, the rest hit
		if _, err := cl.PredictModel(ctx, "music", in); err != nil {
			t.Fatal(err)
		}
	}

	st, err := reg.Stats("music")
	if err != nil {
		t.Fatal(err)
	}
	if st.FeatureCache == nil {
		t.Fatal("stats carry no feature-cache section for a cached pipeline")
	}
	if st.FeatureCache.Hits == 0 || st.FeatureCache.Misses == 0 {
		t.Errorf("feature cache counters = %+v, want hits and misses", *st.FeatureCache)
	}
	if st.FeatureCache.HitRate <= 0 {
		t.Errorf("hit rate = %v, want > 0", st.FeatureCache.HitRate)
	}

	// The same snapshot over the HTTP wire.
	remote, err := cl.Stats(ctx, "music")
	if err != nil {
		t.Fatal(err)
	}
	if remote.FeatureCache == nil {
		t.Fatal("wire stats dropped the feature-cache section")
	}
	if *remote.FeatureCache != *st.FeatureCache {
		t.Errorf("wire feature-cache stats = %+v, want %+v", *remote.FeatureCache, *st.FeatureCache)
	}

	// Hot swap to an uncached version: the section disappears.
	if err := reg.Deploy("music", "v2", uncached); err != nil {
		t.Fatal(err)
	}
	st2, err := reg.Stats("music")
	if err != nil {
		t.Fatal(err)
	}
	if st2.FeatureCache != nil {
		t.Errorf("uncached version still reports feature-cache stats: %+v", *st2.FeatureCache)
	}
}
