//go:build !race

package serving

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = false
