package serving

import (
	"context"
	"errors"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"willump/internal/admission"
	"willump/internal/core"
	"willump/internal/value"
)

// recordingPredictor remembers every row value it was asked to score, and
// optionally blocks until released so tests can hold the batcher mid-batch.
type recordingPredictor struct {
	mu      sync.Mutex
	seen    []float64
	entered chan struct{} // signalled once per call, before blocking
	release chan struct{} // nil: never block
}

func (p *recordingPredictor) PredictBatch(_ context.Context, inputs map[string]value.Value) ([]float64, error) {
	if p.entered != nil {
		p.entered <- struct{}{}
	}
	if p.release != nil {
		<-p.release
	}
	xs := inputs["x"].Floats
	p.mu.Lock()
	p.seen = append(p.seen, xs...)
	p.mu.Unlock()
	return make([]float64, len(xs)), nil
}

func (p *recordingPredictor) sawValue(x float64) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, v := range p.seen {
		if v == x {
			return true
		}
	}
	return false
}

// TestExpiredPendingCulledFromBatch pins the batcher's dead-context cull
// deterministically: a pending whose request context dies while it waits in
// the queue must be counted expired and answered with its context error —
// and its rows must never reach the predictor.
func TestExpiredPendingCulledFromBatch(t *testing.T) {
	pred := &recordingPredictor{entered: make(chan struct{}, 8), release: make(chan struct{})}
	s, err := NewPredictorServer(pred, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	h, err := s.reg.lookup("")
	if err != nil {
		t.Fatal(err)
	}
	row := func(x float64) map[string]value.Value {
		return map[string]value.Value{"x": value.NewFloats([]float64{x})}
	}

	// Occupy the batcher: request A blocks inside the predictor, so
	// everything enqueued next stays in the queue until we release it.
	go s.executeBatched(context.Background(), h, row(1), 1, admission.CritNormal) //nolint:errcheck
	<-pred.entered

	// Request B joins the queue, then its context dies while it waits.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, delivered, err := s.executeBatched(ctx, h, row(2), 1, admission.CritNormal)
	if delivered || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter: delivered=%v err=%v, want abandoned with context.Canceled", delivered, err)
	}

	close(pred.release)
	// Request C proves the batcher moved past the corpse and still serves.
	preds, _, delivered, err := s.executeBatched(context.Background(), h, row(3), 1, admission.CritNormal)
	if err != nil || !delivered || len(preds) != 1 {
		t.Fatalf("live request after cull: preds=%v delivered=%v err=%v", preds, delivered, err)
	}

	if pred.sawValue(2) {
		t.Error("expired pending's rows reached the predictor; it must be culled before execution")
	}
	if got := h.admit.Snapshot().Expired; got < 1 {
		t.Errorf("expired count = %d, want >= 1", got)
	}
	// The expired counter reaches operators through Stats even with
	// admission disabled (no SLO configured).
	st, err := s.reg.Stats("")
	if err != nil {
		t.Fatal(err)
	}
	if st.Admission == nil || st.Admission.Expired < 1 {
		t.Errorf("stats admission block = %+v, want Expired >= 1", st.Admission)
	}
}

// TestRetryAfterSurfacedOnOverloadedError: a predictive shed must answer 429
// with a Retry-After header derived from the drain forecast, and the client
// must surface it as the typed *OverloadedError while errors.Is against
// ErrOverloaded keeps working.
func TestRetryAfterSurfacedOnOverloadedError(t *testing.T) {
	pred := &recordingPredictor{entered: make(chan struct{}, 8), release: make(chan struct{})}
	srv, err := NewPredictorServer(pred, Options{SLOTargetP99: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	cli := NewClient(base)
	h, err := srv.reg.lookup("")
	if err != nil {
		t.Fatal(err)
	}
	// Warm the forecast far past the SLO, then hold one request in flight so
	// the predictive check is live (an idle model always admits — the probe
	// rule — so shedding needs observed history AND work in the system).
	h.admit.Observe(40*time.Millisecond, 40*time.Millisecond, 1)
	go s_executeBatchedBG(srv, h)
	<-pred.entered

	_, err = cli.PredictModel(context.Background(), DefaultModelName,
		map[string]value.Value{"x": value.NewFloats([]float64{9})})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overloaded request error = %v, want ErrOverloaded", err)
	}
	var oe *OverloadedError
	if !errors.As(err, &oe) {
		t.Fatalf("overloaded request error = %T, want *OverloadedError", err)
	}
	// 40ms forecast, ceiled to whole Retry-After seconds: exactly 1s.
	if oe.RetryAfter != time.Second {
		t.Errorf("RetryAfter = %v, want 1s (ceil of the 40ms drain forecast)", oe.RetryAfter)
	}
	if snap := h.admit.Snapshot(); snap.ShedPredicted < 1 {
		t.Errorf("shed_predicted = %d, want >= 1", snap.ShedPredicted)
	}
	close(pred.release)
}

// s_executeBatchedBG holds one batched request in flight in the background.
func s_executeBatchedBG(srv *Server, h *Hosted) {
	srv.executeBatched(context.Background(), h, //nolint:errcheck
		map[string]value.Value{"x": value.NewFloats([]float64{1})}, 1, admission.CritNormal)
}

// TestBrownoutCacheOnlyEndToEnd drives the full brownout round trip through
// serving.Client: under deep measured pressure the cache-only rung answers
// repeat queries from the prediction cache (marked degraded), sheds
// normal-criticality misses with 429, and still computes high-criticality
// misses at a shallower rung.
func TestBrownoutCacheOnlyEndToEnd(t *testing.T) {
	pred := &recordingPredictor{}
	srv, err := NewPredictorServer(pred, Options{
		SLOTargetP99:  10 * time.Millisecond,
		Brownout:      true,
		CacheCapacity: 64,
		CacheKeyOrder: []string{"x"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	cli := NewClient(base)
	ctx := context.Background()
	row := func(x float64) map[string]value.Value {
		return map[string]value.Value{"x": value.NewFloats([]float64{x})}
	}

	// Healthy system: a full-fidelity answer, no degradation marker. This
	// also warms the prediction cache for x=7.
	res, err := cli.PredictModelResult(ctx, DefaultModelName, row(7))
	if err != nil || res.Degraded != "" || len(res.Predictions) != 1 {
		t.Fatalf("healthy request = %+v, %v; want 1 undegraded prediction", res, err)
	}

	// Push measured pressure far past the cache-only threshold (observed
	// latency 5x the SLO, repeated until the EWMA crosses).
	h, err := srv.reg.lookup("")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64 && h.admit.LevelFor(admission.CritNormal) < admission.LevelCacheOnly; i++ {
		h.admit.Observe(time.Millisecond, 50*time.Millisecond, 1)
	}
	if h.admit.LevelFor(admission.CritNormal) < admission.LevelCacheOnly {
		t.Fatal("pressure never reached the cache-only rung")
	}

	// Repeat query: answered from the prediction cache, marked degraded.
	res, err = cli.PredictModelResult(ctx, DefaultModelName, row(7))
	if err != nil {
		t.Fatalf("cache-only repeat query: %v", err)
	}
	if res.Degraded != admission.DegradedCache {
		t.Errorf("repeat query degraded = %q, want %q", res.Degraded, admission.DegradedCache)
	}

	// Uncached normal-criticality query: shed with 429 at the deepest rung.
	_, err = cli.PredictModelResult(ctx, DefaultModelName, row(8))
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("uncached normal-crit query error = %v, want ErrOverloaded", err)
	}

	// Uncached high-criticality query: rides one rung lower on the ladder,
	// so it still computes a real answer instead of being turned away.
	res, err = cli.PredictModelResult(ctx, DefaultModelName, row(9), core.WithCriticality("high"))
	if err != nil || len(res.Predictions) != 1 {
		t.Fatalf("high-crit query = %+v, %v; want a computed prediction", res, err)
	}
	if !pred.sawValue(9) {
		t.Error("high-criticality miss never reached the predictor")
	}

	// The shed and degraded traffic shows up on the wire stats round trip.
	st, err := cli.Stats(ctx, DefaultModelName)
	if err != nil {
		t.Fatal(err)
	}
	if st.Admission == nil {
		t.Fatal("stats over the wire carry no admission block")
	}
	if st.Admission.DegradedCache < 1 || st.Admission.ShedBrownout < 1 {
		t.Errorf("admission stats = %+v, want DegradedCache >= 1 and ShedBrownout >= 1", st.Admission)
	}
	if st.Admission.SLO != 10*time.Millisecond {
		t.Errorf("SLO over the wire = %v, want 10ms", st.Admission.SLO)
	}
}

// TestCriticalityHeaderFoldsIn: when the server is configured with a
// criticality header, a bare request carrying it is classified without any
// wire options — and garbage header values neither fail nor escalate it.
func TestCriticalityHeaderFoldsIn(t *testing.T) {
	pred := &recordingPredictor{}
	srv, err := NewPredictorServer(pred, Options{
		SLOTargetP99:      10 * time.Millisecond,
		Brownout:          true,
		CacheCapacity:     64,
		CacheKeyOrder:     []string{"x"},
		CriticalityHeader: "X-Request-Criticality",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	h, err := srv.reg.lookup("")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64 && h.admit.LevelFor(admission.CritNormal) < admission.LevelCacheOnly; i++ {
		h.admit.Observe(time.Millisecond, 50*time.Millisecond, 1)
	}

	// Each probe uses a distinct input: a computed answer warms the
	// prediction cache, which would turn the next probe into a cache hit.
	post := func(headerVal, x string) int {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, base+"/v1/models/"+DefaultModelName+"/predict",
			strings.NewReader(`{"inputs":{"x":{"kind":"floats","floats":[`+x+`]}}}`))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if headerVal != "" {
			req.Header.Set("X-Request-Criticality", headerVal)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	// Uncached at the cache-only rung: normal criticality is shed...
	if code := post("", "41"); code != http.StatusTooManyRequests {
		t.Errorf("bare request status = %d, want 429", code)
	}
	// ...but a request marked high by header alone computes.
	if code := post("high", "42"); code != http.StatusOK {
		t.Errorf("high-criticality header request status = %d, want 200", code)
	}
	// Garbage never fails (or escalates) the request: treated as normal.
	if code := post("urgent!!", "43"); code != http.StatusTooManyRequests {
		t.Errorf("garbage header status = %d, want 429 (classified normal)", code)
	}
}
