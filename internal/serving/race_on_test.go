//go:build race

package serving

// raceEnabled reports whether the race detector instruments this build.
// Allocation-count assertions are skipped under race (the detector
// allocates shadow state of its own).
const raceEnabled = true
