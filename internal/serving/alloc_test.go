package serving

import (
	"context"
	"testing"
	"time"

	"willump/internal/core"
	"willump/internal/fixture"
	"willump/internal/value"
)

// TestRegistryPointPredictAllocBound guards the in-process half of the
// /v1/models/{name}/predict point path — model lookup, direct-path
// admission, context joining, and the pooled PredictPointOptions execution
// underneath. net/http and JSON codec costs are excluded by construction:
// the test drives the same executeDirect path the HTTP handler calls after
// decoding. The pipeline execution itself is allocation-free (see the root
// TestPredictPointZeroAllocs); the small remaining budget is the per-request
// context plumbing (joinContext's WithCancel + AfterFunc) and the response
// slice.
func TestRegistryPointPredictAllocBound(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	fx, err := fixture.NewClassification(5, 600, 200, 200, 0.7, 10)
	if err != nil {
		t.Fatal(err)
	}
	p := &core.Pipeline{Graph: fx.Prog.G, Model: fx.Model}
	train := core.Dataset{Inputs: fx.Train.Inputs, Y: fx.Train.Y}
	valid := core.Dataset{Inputs: fx.Valid.Inputs, Y: fx.Valid.Y}
	o, _, err := core.Optimize(context.Background(), p, train, valid, core.Options{})
	if err != nil {
		t.Fatal(err)
	}

	reg := NewRegistry(Options{})
	if err := reg.Deploy("m", "v1", o); err != nil {
		t.Fatal(err)
	}
	s := NewRegistryServer(reg)
	defer s.Close()

	h, err := reg.lookup("m")
	if err != nil {
		t.Fatal(err)
	}
	inputs := map[string]value.Value{
		"cheap_id": value.NewInts([]int64{19}),
		"heavy_id": value.NewInts([]int64{7}),
	}
	po := core.PredictOptions{Point: true}
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		if _, err := s.executeDirect(ctx, h, inputs, 1, po); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := s.executeDirect(ctx, h, inputs, 1, po); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 8
	if allocs > budget {
		t.Fatalf("warm registry point predict allocates %.1f objects/op, want <= %d (context plumbing + response slice only)", allocs, budget)
	}
}

// TestRegistryPointPredictAllocBoundAdmissionEnabled holds the same bound
// with SLO admission control and brownout active: the controller's admit /
// release / forecast math is pure atomics and must not add a single
// allocation to the warm point path.
func TestRegistryPointPredictAllocBoundAdmissionEnabled(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	fx, err := fixture.NewClassification(5, 600, 200, 200, 0.7, 10)
	if err != nil {
		t.Fatal(err)
	}
	p := &core.Pipeline{Graph: fx.Prog.G, Model: fx.Model}
	train := core.Dataset{Inputs: fx.Train.Inputs, Y: fx.Train.Y}
	valid := core.Dataset{Inputs: fx.Valid.Inputs, Y: fx.Valid.Y}
	o, _, err := core.Optimize(context.Background(), p, train, valid, core.Options{})
	if err != nil {
		t.Fatal(err)
	}

	reg := NewRegistry(Options{SLOTargetP99: 50 * time.Millisecond, Brownout: true})
	if err := reg.Deploy("m", "v1", o); err != nil {
		t.Fatal(err)
	}
	s := NewRegistryServer(reg)
	defer s.Close()

	h, err := reg.lookup("m")
	if err != nil {
		t.Fatal(err)
	}
	// Warm the forecast so the predictive-shed arithmetic actually runs on
	// every admit (a cold controller skips it).
	h.admit.Observe(10*time.Microsecond, 10*time.Microsecond, 1)
	inputs := map[string]value.Value{
		"cheap_id": value.NewInts([]int64{19}),
		"heavy_id": value.NewInts([]int64{7}),
	}
	po := core.PredictOptions{Point: true}
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		if _, err := s.executeDirect(ctx, h, inputs, 1, po); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := s.executeDirect(ctx, h, inputs, 1, po); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 8
	if allocs > budget {
		t.Fatalf("warm admission-enabled point predict allocates %.1f objects/op, want <= %d (admission must be alloc-free)", allocs, budget)
	}
}
