package serving

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"willump/internal/value"
)

// doubler is a trivial predictor: prediction = 2 * x.
var doubler = PredictorFunc(func(_ context.Context, inputs map[string]value.Value) ([]float64, error) {
	xs := inputs["x"].Floats
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = 2 * x
	}
	return out, nil
})

func startServer(t *testing.T, p Predictor, opts Options) (*Server, *Client) {
	t.Helper()
	srv := NewServer(p, opts)
	base, err := srv.Start()
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, NewClient(base)
}

func TestServeRoundTrip(t *testing.T) {
	_, cli := startServer(t, doubler, Options{})
	preds, err := cli.Predict(context.Background(), map[string]value.Value{
		"x": value.NewFloats([]float64{1, 2, 3}),
	})
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	want := []float64{2, 4, 6}
	for i := range want {
		if preds[i] != want[i] {
			t.Errorf("pred[%d] = %v, want %v", i, preds[i], want[i])
		}
	}
}

func TestServeAllColumnKinds(t *testing.T) {
	echo := PredictorFunc(func(_ context.Context, inputs map[string]value.Value) ([]float64, error) {
		n := inputs["s"].Len()
		out := make([]float64, n)
		for i := range out {
			out[i] = float64(len(inputs["s"].Strings[i])) + float64(inputs["i"].Ints[i]) + inputs["f"].Floats[i]
		}
		return out, nil
	})
	_, cli := startServer(t, echo, Options{})
	preds, err := cli.Predict(context.Background(), map[string]value.Value{
		"s": value.NewStrings([]string{"ab", "c"}),
		"i": value.NewInts([]int64{10, 20}),
		"f": value.NewFloats([]float64{0.5, 0.25}),
	})
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	if preds[0] != 12.5 || preds[1] != 21.25 {
		t.Errorf("preds = %v, want [12.5 21.25]", preds)
	}
}

func TestServeConcurrentRequestsBatch(t *testing.T) {
	var calls, rows int64
	var mu sync.Mutex
	counter := PredictorFunc(func(_ context.Context, inputs map[string]value.Value) ([]float64, error) {
		mu.Lock()
		calls++
		rows += int64(inputs["x"].Len())
		mu.Unlock()
		time.Sleep(time.Millisecond) // make batching windows overlap
		xs := inputs["x"].Floats
		out := make([]float64, len(xs))
		for i, x := range xs {
			out[i] = x
		}
		return out, nil
	})
	_, cli := startServer(t, counter, Options{BatchTimeout: 2 * time.Millisecond})
	const n = 32
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			preds, err := cli.Predict(context.Background(), map[string]value.Value{
				"x": value.NewFloats([]float64{float64(i)}),
			})
			if err != nil {
				errs[i] = err
				return
			}
			if len(preds) != 1 || preds[i%1] != float64(i) {
				errs[i] = fmt.Errorf("wrong result %v for %d", preds, i)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if rows != n {
		t.Errorf("rows = %d, want %d", rows, n)
	}
	if calls >= n {
		t.Errorf("calls = %d; adaptive batching should merge some of %d requests", calls, n)
	}
}

func TestServerError(t *testing.T) {
	boom := PredictorFunc(func(context.Context, map[string]value.Value) ([]float64, error) {
		return nil, fmt.Errorf("boom")
	})
	_, cli := startServer(t, boom, Options{})
	if _, err := cli.Predict(context.Background(), map[string]value.Value{"x": value.NewFloats([]float64{1})}); err == nil {
		t.Error("want propagated server error")
	}
}

func TestEmptyRequestRejected(t *testing.T) {
	_, cli := startServer(t, doubler, Options{})
	if _, err := cli.Predict(context.Background(), map[string]value.Value{}); err == nil {
		t.Error("want error for empty request")
	}
}

func TestCachedPredictor(t *testing.T) {
	var calls int64
	counting := PredictorFunc(func(_ context.Context, inputs map[string]value.Value) ([]float64, error) {
		calls += int64(inputs["x"].Len())
		xs := inputs["x"].Ints
		out := make([]float64, len(xs))
		for i, x := range xs {
			out[i] = float64(x) * 10
		}
		return out, nil
	})
	p := NewCachedPredictor(counting, 0, []string{"x"})
	in := map[string]value.Value{"x": value.NewInts([]int64{1, 2, 1, 3, 2})}
	preds, err := p.PredictBatch(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{10, 20, 10, 30, 20}
	for i := range want {
		if preds[i] != want[i] {
			t.Errorf("pred[%d] = %v, want %v", i, preds[i], want[i])
		}
	}
	if calls != 5 {
		// Note: within one batch, duplicate rows still compute (the cache
		// fills after the batch); across batches, hits apply.
		t.Logf("calls = %d", calls)
	}
	calls = 0
	if _, err := p.PredictBatch(context.Background(), in); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Errorf("repeat batch computed %d rows, want 0 (all cached)", calls)
	}
	hits, _ := p.Stats()
	if hits == 0 {
		t.Error("no cache hits recorded")
	}
}

func TestServerWithE2ECache(t *testing.T) {
	var computed int64
	counting := PredictorFunc(func(_ context.Context, inputs map[string]value.Value) ([]float64, error) {
		computed += int64(inputs["x"].Len())
		xs := inputs["x"].Ints
		out := make([]float64, len(xs))
		for i, x := range xs {
			out[i] = float64(x)
		}
		return out, nil
	})
	_, cli := startServer(t, counting, Options{CacheCapacity: -1, CacheKeyOrder: []string{"x"}})
	in := map[string]value.Value{"x": value.NewInts([]int64{7, 8})}
	if _, err := cli.Predict(context.Background(), in); err != nil {
		t.Fatal(err)
	}
	before := computed
	if _, err := cli.Predict(context.Background(), in); err != nil {
		t.Fatal(err)
	}
	if computed != before {
		t.Errorf("second request computed %d new rows, want 0", computed-before)
	}
}

// TestShutdownDrainsInFlightBatch closes the server while a batch is being
// predicted: the in-flight request must complete successfully, and requests
// arriving after Shutdown began must be rejected cleanly.
func TestShutdownDrainsInFlightBatch(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	slow := PredictorFunc(func(_ context.Context, inputs map[string]value.Value) ([]float64, error) {
		close(started)
		<-release
		return make([]float64, inputs["x"].Len()), nil
	})
	srv := NewServer(slow, Options{})
	base, err := srv.Start()
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	cli := NewClient(base)

	inflight := make(chan error, 1)
	go func() {
		_, err := cli.Predict(context.Background(), map[string]value.Value{
			"x": value.NewFloats([]float64{1}),
		})
		inflight <- err
	}()
	<-started // the batch is now executing inside the predictor

	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()

	// Give Shutdown time to flip the closed flag, then verify new requests
	// are rejected while the old one is still in flight.
	deadline := time.After(2 * time.Second)
	for {
		_, err := cli.Predict(context.Background(), map[string]value.Value{
			"x": value.NewFloats([]float64{2}),
		})
		if err != nil {
			break
		}
		select {
		case <-deadline:
			t.Fatal("new requests still accepted after Shutdown began")
		case <-time.After(5 * time.Millisecond):
		}
	}

	select {
	case err := <-inflight:
		t.Fatalf("in-flight request finished before the predictor released: %v", err)
	default:
	}
	close(release)
	if err := <-inflight; err != nil {
		t.Fatalf("in-flight request failed during Shutdown: %v", err)
	}
	if err := <-closed; err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestShutdownDeadlineCancelsWork verifies that an expired Shutdown context
// cancels in-flight predictions through the execution context.
func TestShutdownDeadlineCancelsWork(t *testing.T) {
	started := make(chan struct{})
	slow := PredictorFunc(func(ctx context.Context, inputs map[string]value.Value) ([]float64, error) {
		close(started)
		<-ctx.Done() // hold until cancelled
		return nil, ctx.Err()
	})
	srv := NewServer(slow, Options{})
	base, err := srv.Start()
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	cli := NewClient(base)
	inflight := make(chan error, 1)
	go func() {
		_, err := cli.Predict(context.Background(), map[string]value.Value{
			"x": value.NewFloats([]float64{1}),
		})
		inflight <- err
	}()
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want deadline exceeded", err)
	}
	if err := <-inflight; err == nil {
		t.Fatal("in-flight request should have been cancelled by the expired Shutdown deadline")
	}
}

// TestClientPredictContextCancel verifies Client.Predict honors its context
// while the server is still working.
func TestClientPredictContextCancel(t *testing.T) {
	var entered atomic.Bool
	slow := PredictorFunc(func(ctx context.Context, inputs map[string]value.Value) ([]float64, error) {
		entered.Store(true)
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(5 * time.Second):
			return make([]float64, inputs["x"].Len()), nil
		}
	})
	_, cli := startServer(t, slow, Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := cli.Predict(ctx, map[string]value.Value{
		"x": value.NewFloats([]float64{1}),
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Predict = %v, want deadline exceeded", err)
	}
	if !entered.Load() {
		t.Fatal("request never reached the predictor")
	}
}

// TestServeAfterCloseRejected verifies post-Close requests fail cleanly.
func TestServeAfterCloseRejected(t *testing.T) {
	srv := NewServer(doubler, Options{})
	base, err := srv.Start()
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	cli := NewClient(base)
	if _, err := cli.Predict(context.Background(), map[string]value.Value{
		"x": value.NewFloats([]float64{1}),
	}); err != nil {
		t.Fatalf("Predict before Close: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := cli.Predict(context.Background(), map[string]value.Value{
		"x": value.NewFloats([]float64{1}),
	}); err == nil {
		t.Fatal("Predict after Close should fail")
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
