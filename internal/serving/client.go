package serving

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"willump/internal/core"
	"willump/internal/value"
)

// Client is an RPC client for a serving frontend.
type Client struct {
	base string
	http *http.Client
}

// ClientOption configures a Client at construction.
type ClientOption func(*clientConfig)

type clientConfig struct {
	timeout    time.Duration
	httpClient *http.Client
}

// WithHTTPTimeout sets the client's end-to-end HTTP timeout (default 30s).
// Ignored when WithHTTPClient supplies a client, whose own timeout governs.
func WithHTTPTimeout(d time.Duration) ClientOption {
	return func(c *clientConfig) {
		if d > 0 {
			c.timeout = d
		}
	}
}

// WithHTTPClient supplies the underlying *http.Client, reused verbatim —
// connection pools, transports, and timeouts stay under the caller's
// control (and may be shared across many Clients).
func WithHTTPClient(h *http.Client) ClientOption {
	return func(c *clientConfig) { c.httpClient = h }
}

// DefaultTransport returns the transport NewClient installs when the caller
// does not supply an *http.Client: net/http's default transport cloned with
// a per-host idle pool sized for high-concurrency drivers. Go's stock
// MaxIdleConnsPerHost of 2 makes any driver with more than two in-flight
// requests against one server churn through fresh TCP connections (connect
// + slow-start on the hot path, TIME_WAIT exhaustion under load tests);
// serving clients overwhelmingly talk to a single host, so the per-host cap
// is raised to match the overall pool.
func DefaultTransport() *http.Transport {
	t := http.DefaultTransport.(*http.Transport).Clone()
	t.MaxIdleConns = 256
	t.MaxIdleConnsPerHost = 256
	t.IdleConnTimeout = 90 * time.Second
	return t
}

// NewClient returns a client for the server at base URL.
func NewClient(base string, opts ...ClientOption) *Client {
	cfg := clientConfig{timeout: 30 * time.Second}
	for _, opt := range opts {
		if opt != nil {
			opt(&cfg)
		}
	}
	hc := cfg.httpClient
	if hc == nil {
		hc = &http.Client{Timeout: cfg.timeout, Transport: DefaultTransport()}
	}
	return &Client{base: strings.TrimRight(base, "/"), http: hc}
}

// OverloadedError is the typed form of an HTTP 429 rejection. It wraps
// ErrOverloaded — errors.Is(err, ErrOverloaded) keeps working — and carries
// the server's Retry-After suggestion so callers can back off intelligently
// instead of guessing. Retrieve it with errors.As:
//
//	var oe *serving.OverloadedError
//	if errors.As(err, &oe) && oe.RetryAfter > 0 { time.Sleep(oe.RetryAfter) }
type OverloadedError struct {
	// RetryAfter is the server's suggested backoff, parsed from its
	// Retry-After header — the admission controller's queue drain forecast.
	// Zero when the server sent no header (e.g. a cold controller with no
	// service-time observations yet).
	RetryAfter time.Duration
	// Server is the server-reported rejection text.
	Server string
}

// Error implements error, keeping the exact message shape the untyped
// wrapping produced so logs and tests see no change.
func (e *OverloadedError) Error() string {
	return fmt.Sprintf("%v (server: %s)", ErrOverloaded, e.Server)
}

// Unwrap makes errors.Is(err, ErrOverloaded) true.
func (e *OverloadedError) Unwrap() error { return ErrOverloaded }

// parseRetryAfter reads an HTTP Retry-After header's delay-seconds form
// (the only form this server emits); anything else yields zero.
func parseRetryAfter(h string) time.Duration {
	if h == "" {
		return 0
	}
	secs, err := strconv.Atoi(h)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// post sends one RPC and maps the transport- and protocol-level failure
// modes: HTTP 429 becomes the retryable *OverloadedError (wrapping
// ErrOverloaded, carrying the server's Retry-After), 404 becomes
// ErrModelNotFound, and any server-reported error is surfaced verbatim.
func (c *Client) post(ctx context.Context, path string, body any) (*wireResponse, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("serving: rpc: %w", err)
	}
	defer resp.Body.Close()
	// Map the status code before insisting on a JSON body: unmatched routes
	// are answered by net/http's mux with plain text, and the typed errors
	// must survive that.
	var wire wireResponse
	decodeErr := json.NewDecoder(resp.Body).Decode(&wire)
	switch resp.StatusCode {
	case http.StatusTooManyRequests:
		return nil, &OverloadedError{
			RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
			Server:     wire.Error,
		}
	case http.StatusNotFound:
		return nil, fmt.Errorf("%w (server: %s)", ErrModelNotFound, wire.Error)
	}
	if wire.Error != "" {
		return nil, fmt.Errorf("serving: server error: %s", wire.Error)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("serving: unexpected status %s", resp.Status)
	}
	if decodeErr != nil {
		return nil, fmt.Errorf("serving: decoding response: %w", decodeErr)
	}
	return &wire, nil
}

// get fetches a JSON document from the server.
func (c *Client) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("serving: rpc: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		var wire wireResponse
		json.NewDecoder(resp.Body).Decode(&wire) //nolint:errcheck
		return fmt.Errorf("%w (server: %s)", ErrModelNotFound, wire.Error)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("serving: unexpected status %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("serving: decoding response: %w", err)
	}
	return nil
}

// buildRequest assembles the wire request for a batch of inputs and
// resolved per-request options.
func buildRequest(inputs map[string]value.Value, po core.PredictOptions) (wireRequest, error) {
	cols, err := encodeInputs(inputs)
	if err != nil {
		return wireRequest{}, err
	}
	return wireRequest{Inputs: cols, Options: fromPredictOptions(po)}, nil
}

// Predict sends one prediction RPC against the server's default model (the
// legacy /predict route). The context's cancellation or deadline propagates
// to the server, which aborts the queued or in-flight work for this
// request.
func (c *Client) Predict(ctx context.Context, inputs map[string]value.Value) ([]float64, error) {
	req, err := buildRequest(inputs, core.PredictOptions{})
	if err != nil {
		return nil, err
	}
	wire, err := c.post(ctx, "/predict", req)
	if err != nil {
		return nil, err
	}
	return wire.Predictions, nil
}

// PredictModel sends one prediction RPC against a named model, carrying
// any per-request options (cascade-threshold override, point modality,
// server-side deadline) on the wire.
func (c *Client) PredictModel(ctx context.Context, model string, inputs map[string]value.Value, opts ...core.PredictOption) ([]float64, error) {
	req, err := buildRequest(inputs, core.ResolvePredict(opts...))
	if err != nil {
		return nil, err
	}
	wire, err := c.post(ctx, "/v1/models/"+url.PathEscape(model)+"/predict", req)
	if err != nil {
		return nil, err
	}
	return wire.Predictions, nil
}

// PredictResult is the full outcome of one prediction RPC: the predictions
// plus the server's degradation marker, empty on full-fidelity responses
// and one of "small-only", "budget", or "cache" when the answer was
// produced at reduced fidelity under brownout.
type PredictResult struct {
	Predictions []float64
	Degraded    string
}

// PredictModelResult is PredictModel surfacing the whole wire response:
// callers that care whether their answer was brownout-degraded (and how)
// use this; callers that only want numbers keep using PredictModel.
func (c *Client) PredictModelResult(ctx context.Context, model string, inputs map[string]value.Value, opts ...core.PredictOption) (PredictResult, error) {
	req, err := buildRequest(inputs, core.ResolvePredict(opts...))
	if err != nil {
		return PredictResult{}, err
	}
	wire, err := c.post(ctx, "/v1/models/"+url.PathEscape(model)+"/predict", req)
	if err != nil {
		return PredictResult{}, err
	}
	return PredictResult{Predictions: wire.Predictions, Degraded: wire.Degraded}, nil
}

// TopK asks a named model for the indices of the k top-scoring rows of the
// request batch, in descending predicted-score order. Per-request options
// may override the filter's candidate budget.
func (c *Client) TopK(ctx context.Context, model string, inputs map[string]value.Value, k int, opts ...core.PredictOption) ([]int, error) {
	po := core.ResolvePredict(opts...)
	po.K = k
	req, err := buildRequest(inputs, po)
	if err != nil {
		return nil, err
	}
	wire, err := c.post(ctx, "/v1/models/"+url.PathEscape(model)+"/topk", req)
	if err != nil {
		return nil, err
	}
	return wire.Indices, nil
}

// Models lists the server's deployed models.
func (c *Client) Models(ctx context.Context) ([]ModelInfo, error) {
	var list wireModelList
	if err := c.get(ctx, "/v1/models", &list); err != nil {
		return nil, err
	}
	out := make([]ModelInfo, len(list.Models))
	for i, wi := range list.Models {
		out[i] = fromWireModelInfo(wi)
	}
	return out, nil
}

// Stats fetches one model's serving telemetry.
func (c *Client) Stats(ctx context.Context, model string) (ModelStats, error) {
	var ws wireStats
	if err := c.get(ctx, "/v1/models/"+url.PathEscape(model)+"/stats", &ws); err != nil {
		return ModelStats{}, err
	}
	return fromWireStats(ws), nil
}

// Traces fetches the server's retained request traces, newest first. model
// filters to one deployed model ("" for all); n bounds the count (0 for
// all retained).
func (c *Client) Traces(ctx context.Context, model string, n int) ([]RequestTrace, error) {
	q := url.Values{}
	if model != "" {
		q.Set("model", model)
	}
	if n > 0 {
		q.Set("n", strconv.Itoa(n))
	}
	path := "/v1/traces"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var list wireTraceList
	if err := c.get(ctx, path, &list); err != nil {
		return nil, err
	}
	out := make([]RequestTrace, len(list.Traces))
	for i, wt := range list.Traces {
		out[i] = fromWireTrace(wt)
	}
	return out, nil
}
