package serving

import (
	"net/http"
	"sort"
	"strconv"
	"time"

	"willump/internal/observ"
	"willump/internal/trace"
)

// This file is the server's observability surface: the Prometheus text
// exposition on GET /metrics, the retained-trace listing on GET /v1/traces,
// and the optional pprof mount. Everything here reads snapshots — the hot
// request path never touches these handlers.

// mountObservability registers the observability routes on the serving mux.
func (s *Server) mountObservability(mux *http.ServeMux) {
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/traces", s.handleTraces)
	if s.pprof {
		observ.MountPprof(mux)
	}
}

// adaptStateValue encodes the adaptation controller phase as a gauge.
func adaptStateValue(state string) int {
	switch state {
	case "canarying":
		return 1
	case "cooldown":
		return 2
	default:
		return 0
	}
}

// breakerStateValue encodes the store breaker state as a gauge level.
func breakerStateValue(state string) int {
	switch state {
	case "open":
		return 2
	case "half-open":
		return 1
	default:
		return 0
	}
}

// modelMetrics is one model's snapshot for the exporter: telemetry counters
// plus instantaneous queue state, captured together so the families emitted
// below are mutually consistent.
type modelMetrics struct {
	name     string
	stats    ModelStats
	tracer   *trace.Tracer
	queueLen int
	queueCap int
	inflight int
}

// handleMetrics renders every deployed model's serving telemetry in
// Prometheus text exposition format. Families are emitted one at a time
// with all models' samples grouped under a single HELP/TYPE header, as the
// format requires.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	hosted := s.reg.hostedModels()
	snaps := make([]modelMetrics, 0, len(hosted))
	for _, h := range hosted {
		st, err := s.reg.Stats(h.name)
		if err != nil {
			continue // undeployed between listing and snapshot
		}
		mm := modelMetrics{name: h.name, stats: st, tracer: h.tracer(), inflight: len(h.direct)}
		if v := h.active.Load(); v != nil {
			mm.queueLen, mm.queueCap = len(v.queue), cap(v.queue)
		}
		snaps = append(snaps, mm)
	}

	w.Header().Set("Content-Type", observ.ContentType)
	mw := observ.NewWriter(w)
	mw.Counter("willump_server_requests_total", "Prediction RPC requests received by the server.", nil, float64(s.requests.Load()))
	for _, m := range snaps {
		mw.Counter("willump_requests_total", "Requests served per model.", observ.L("model", m.name), float64(m.stats.Requests))
	}
	for _, m := range snaps {
		mw.Counter("willump_request_errors_total", "Failed requests per model.", observ.L("model", m.name), float64(m.stats.Errors))
	}
	for _, m := range snaps {
		mw.Counter("willump_requests_rejected_total", "Requests rejected by admission control (HTTP 429) per model.", observ.L("model", m.name), float64(m.stats.Rejected))
	}
	for _, m := range snaps {
		mw.Gauge("willump_qps", "Request rate over the trailing minute per model.", observ.L("model", m.name), m.stats.QPS)
	}
	for _, m := range snaps {
		for _, qd := range [4]struct {
			q string
			d time.Duration
		}{
			{"0.5", m.stats.LatencyP50},
			{"0.9", m.stats.LatencyP90},
			{"0.99", m.stats.LatencyP99},
			{"0.999", m.stats.LatencyP999},
		} {
			mw.Gauge("willump_latency_seconds", "Windowed request latency quantiles per model.",
				observ.L("model", m.name).With("quantile", qd.q), qd.d.Seconds())
		}
	}
	for _, m := range snaps {
		mw.Gauge("willump_queue_depth", "Requests waiting in the active version's batch queue.", observ.L("model", m.name), float64(m.queueLen))
	}
	for _, m := range snaps {
		mw.Gauge("willump_queue_capacity", "Bound of the active version's batch queue.", observ.L("model", m.name), float64(m.queueCap))
	}
	for _, m := range snaps {
		mw.Gauge("willump_direct_inflight", "Direct-path (options, top-K) requests currently admitted.", observ.L("model", m.name), float64(m.inflight))
	}
	for _, m := range snaps {
		if m.stats.CascadeTotal == 0 {
			continue
		}
		mw.Counter("willump_cascade_rows_total", "Rows served through the model cascade.", observ.L("model", m.name), float64(m.stats.CascadeTotal))
	}
	for _, m := range snaps {
		if m.stats.CascadeTotal == 0 {
			continue
		}
		mw.Counter("willump_cascade_small_only_total", "Cascade rows answered by the small model alone.", observ.L("model", m.name), float64(m.stats.CascadeSmallOnly))
	}
	for _, m := range snaps {
		if fc := m.stats.FeatureCache; fc != nil {
			mw.Counter("willump_feature_cache_hits_total", "Feature-cache lookup hits per model.", observ.L("model", m.name), float64(fc.Hits))
		}
	}
	for _, m := range snaps {
		if fc := m.stats.FeatureCache; fc != nil {
			mw.Counter("willump_feature_cache_misses_total", "Feature-cache lookup misses per model.", observ.L("model", m.name), float64(fc.Misses))
		}
	}
	for _, m := range snaps {
		if fc := m.stats.FeatureCache; fc != nil {
			mw.Counter("willump_feature_cache_evictions_total", "Feature-cache entries displaced by eviction per model.", observ.L("model", m.name), float64(fc.Evictions))
		}
	}
	for _, m := range snaps {
		if fc := m.stats.FeatureCache; fc != nil {
			mw.Counter("willump_feature_cache_coalesced_total", "Feature-cache lookups served by in-flight miss coalescing per model.", observ.L("model", m.name), float64(fc.Coalesced))
		}
	}
	for _, m := range snaps {
		if fs := m.stats.FeatureStore; fs != nil {
			mw.Counter("willump_store_requests_total", "Remote feature-store multi-get requests per model.", observ.L("model", m.name), float64(fs.Requests))
		}
	}
	for _, m := range snaps {
		if fs := m.stats.FeatureStore; fs != nil {
			mw.Counter("willump_store_retries_total", "Remote feature-store retried attempts per model.", observ.L("model", m.name), float64(fs.Retries))
		}
	}
	for _, m := range snaps {
		if fs := m.stats.FeatureStore; fs != nil {
			mw.Counter("willump_store_hedges_won_total", "Hedged store requests that beat the primary attempt per model.", observ.L("model", m.name), float64(fs.HedgesWon))
		}
	}
	for _, m := range snaps {
		if fs := m.stats.FeatureStore; fs != nil {
			mw.Counter("willump_store_degraded_total", "Requests served from cached/default feature values while the store breaker was open per model.", observ.L("model", m.name), float64(fs.Degraded))
		}
	}
	for _, m := range snaps {
		if fs := m.stats.FeatureStore; fs != nil {
			mw.Gauge("willump_store_breaker_state", "Store circuit-breaker state per model (0 closed, 1 half-open, 2 open).", observ.L("model", m.name), float64(breakerStateValue(fs.BreakerState)))
		}
	}
	for _, m := range snaps {
		if fs := m.stats.FeatureStore; fs != nil {
			mw.Gauge("willump_store_inflight", "Store lookups currently on the wire per model.", observ.L("model", m.name), float64(fs.Inflight))
		}
	}
	for _, m := range snaps {
		fs := m.stats.FeatureStore
		if fs == nil {
			continue
		}
		for _, q := range []struct {
			q string
			d time.Duration
		}{{"0.5", fs.LatencyP50}, {"0.99", fs.LatencyP99}} {
			mw.Gauge("willump_store_latency_seconds", "Windowed store round-trip latency quantiles per model.",
				observ.L("model", m.name).With("quantile", q.q), q.d.Seconds())
		}
	}
	for _, m := range snaps {
		ad := m.stats.Admission
		if ad == nil {
			continue
		}
		for _, rc := range []struct {
			reason string
			n      int64
		}{{"predicted", ad.ShedPredicted}, {"limit", ad.ShedLimit}, {"brownout", ad.ShedBrownout}} {
			mw.Counter("willump_admission_shed_total", "Requests shed by the SLO admission controller per model, by reason.",
				observ.L("model", m.name).With("reason", rc.reason), float64(rc.n))
		}
	}
	for _, m := range snaps {
		ad := m.stats.Admission
		if ad == nil {
			continue
		}
		for _, mc := range []struct {
			mode string
			n    int64
		}{{"small-only", ad.DegradedSmallOnly}, {"budget", ad.DegradedBudget}, {"cache", ad.DegradedCache}} {
			mw.Counter("willump_degraded_total", "Successful brownout-degraded responses per model, by degradation mode.",
				observ.L("model", m.name).With("mode", mc.mode), float64(mc.n))
		}
	}
	for _, m := range snaps {
		if ad := m.stats.Admission; ad != nil {
			mw.Counter("willump_expired_total", "Admitted requests culled before execution because their deadline had already passed, per model.", observ.L("model", m.name), float64(ad.Expired))
		}
	}
	for _, m := range snaps {
		if ad := m.stats.Admission; ad != nil {
			mw.Gauge("willump_admission_limit", "Current adaptive (AIMD) concurrency limit per model.", observ.L("model", m.name), float64(ad.Limit))
		}
	}
	for _, m := range snaps {
		if ad := m.stats.Admission; ad != nil {
			mw.Gauge("willump_admission_inflight", "Work currently admitted under the concurrency limit per model.", observ.L("model", m.name), float64(ad.Inflight))
		}
	}
	for _, m := range snaps {
		if ad := m.stats.Admission; ad != nil {
			mw.Gauge("willump_brownout_level", "Brownout ladder rung per model (0 normal, 1 degrade, 2 cache-only).", observ.L("model", m.name), float64(ad.Level))
		}
	}
	for _, m := range snaps {
		if ad := m.stats.Admission; ad != nil {
			mw.Gauge("willump_forecast_service_seconds", "Online per-item service-time forecast per model.", observ.L("model", m.name), ad.ForecastService.Seconds())
		}
	}
	for _, m := range snaps {
		if ad := m.stats.Admission; ad != nil {
			mw.Gauge("willump_admission_pressure", "EWMA of end-to-end latency over the SLO per model (above 1 the SLO is missed).", observ.L("model", m.name), ad.Pressure)
		}
	}
	for _, m := range snaps {
		if ad := m.stats.Adaptation; ad != nil {
			mw.Gauge("willump_adapt_state", "Adaptation controller phase per model (0 idle, 1 canarying, 2 cooldown).", observ.L("model", m.name), float64(adaptStateValue(ad.State)))
		}
	}
	for _, m := range snaps {
		if ad := m.stats.Adaptation; ad != nil {
			mw.Counter("willump_adapt_sampled_total", "Requests shadow-sampled into the drift detectors per model.", observ.L("model", m.name), float64(ad.Sampled))
		}
	}
	for _, m := range snaps {
		ad := m.stats.Adaptation
		if ad == nil {
			continue
		}
		for _, sc := range []struct {
			signal string
			n      int64
		}{{"key_reuse", ad.KeyDriftEvents}, {"score", ad.ScoreDriftEvents}} {
			mw.Counter("willump_adapt_drift_events_total", "Confirmed drift detections per model, by signal.",
				observ.L("model", m.name).With("signal", sc.signal), float64(sc.n))
		}
	}
	for _, m := range snaps {
		if ad := m.stats.Adaptation; ad != nil {
			mw.Counter("willump_adapt_refits_total", "Statistical plan re-fits per model.", observ.L("model", m.name), float64(ad.Refits))
		}
	}
	for _, m := range snaps {
		if ad := m.stats.Adaptation; ad != nil {
			mw.Counter("willump_adapt_canaries_total", "Canary rollouts launched per model.", observ.L("model", m.name), float64(ad.Canaries))
		}
	}
	for _, m := range snaps {
		if ad := m.stats.Adaptation; ad != nil {
			mw.Counter("willump_adapt_promotions_total", "Canary plans promoted to active per model.", observ.L("model", m.name), float64(ad.Promotions))
		}
	}
	for _, m := range snaps {
		if ad := m.stats.Adaptation; ad != nil {
			mw.Counter("willump_adapt_rollbacks_total", "Canary plans rolled back on guard regression per model.", observ.L("model", m.name), float64(ad.Rollbacks))
		}
	}
	for _, m := range snaps {
		ad := m.stats.Adaptation
		if ad == nil {
			continue
		}
		for _, kr := range []struct {
			kind string
			v    float64
		}{{"observed", ad.KeyReuseObserved}, {"expected", ad.KeyReuseExpected}} {
			mw.Gauge("willump_adapt_key_reuse", "Live key-reuse measurement vs the cache plan's estimate per model.",
				observ.L("model", m.name).With("kind", kr.kind), kr.v)
		}
	}
	for _, m := range snaps {
		ad := m.stats.Adaptation
		if ad == nil {
			continue
		}
		for _, dt := range []struct {
			det string
			v   float64
		}{{"page_hinkley", ad.ScorePH}, {"ks", ad.ScoreKS}} {
			mw.Gauge("willump_adapt_score_drift", "Score-distribution drift detector statistics per model.",
				observ.L("model", m.name).With("detector", dt.det), dt.v)
		}
	}
	for _, m := range snaps {
		if m.tracer == nil {
			continue
		}
		sampled, _ := m.tracer.Counts()
		mw.Counter("willump_trace_sampled_total", "Requests retained by head sampling per model.", observ.L("model", m.name), float64(sampled))
	}
	for _, m := range snaps {
		if m.tracer == nil {
			continue
		}
		_, tailed := m.tracer.Counts()
		mw.Counter("willump_trace_tailed_total", "Slow or failed requests retained by tail sampling per model.", observ.L("model", m.name), float64(tailed))
	}
	for _, m := range snaps {
		if m.tracer == nil {
			continue
		}
		mw.Gauge("willump_trace_open", "Traces begun but not yet finished per model.", observ.L("model", m.name), float64(m.tracer.Open()))
	}
	for _, m := range snaps {
		if m.tracer == nil {
			continue
		}
		h := m.tracer.TotalHist()
		mw.Histogram("willump_request_duration_seconds", "End-to-end request latency over all traffic (sampled or not).",
			observ.L("model", m.name), h.Bounds, h.Counts, h.SumSeconds, h.Count)
	}
	for _, m := range snaps {
		if m.tracer == nil {
			continue
		}
		hists := m.tracer.StageHists()
		stages := make([]string, 0, len(hists))
		for stage := range hists {
			stages = append(stages, stage)
		}
		sort.Strings(stages)
		for _, stage := range stages {
			h := hists[stage]
			mw.Histogram("willump_stage_duration_seconds", "Per-stage latency of head-sampled requests.",
				observ.L("model", m.name).With("stage", stage), h.Bounds, h.Counts, h.SumSeconds, h.Count)
		}
	}
	observ.WriteRuntime(mw, "willump")
	_ = mw.Err() // the connection is gone; nothing useful to do
}

// handleTraces lists the retained request traces across all deployed
// models, newest first. ?model= filters to one model; ?n= bounds the count.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	model := r.URL.Query().Get("model")
	limit := 0
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, badRequestf("bad trace count n=%q", q))
			return
		}
		limit = v
	}
	var out []wireTrace
	for _, h := range s.reg.hostedModels() {
		if model != "" && h.name != model {
			continue
		}
		for _, snap := range h.tracer().Traces() {
			out = append(out, toWireTrace(h.name, snap))
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].StartUnixNano > out[j].StartUnixNano })
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	writeJSON(w, wireTraceList{Traces: out})
}

func toWireTrace(model string, s trace.Snapshot) wireTrace {
	wt := wireTrace{
		ID:            s.ID,
		Model:         model,
		StartUnixNano: s.Start.UnixNano(),
		TotalMS:       float64(s.Total) / float64(time.Millisecond),
		Error:         s.Err,
		Sampled:       s.Sampled,
	}
	for _, sp := range s.Spans {
		wt.Spans = append(wt.Spans, wireSpan{
			Stage:    sp.Stage,
			OffsetMS: float64(sp.Offset) / float64(time.Millisecond),
			DurMS:    float64(sp.Dur) / float64(time.Millisecond),
		})
	}
	return wt
}

// TraceSpan is one timed stage within a retained request trace, as reported
// by GET /v1/traces.
type TraceSpan struct {
	// Stage names the instrumented stage ("queue:wait", "step:<op>",
	// "cascade:small", ...).
	Stage string
	// Offset is the stage start relative to the request's begin time.
	Offset time.Duration
	// Dur is the stage's duration.
	Dur time.Duration
}

// RequestTrace is one retained request trace. Head-sampled requests carry
// their full stage spans; tail-sampled ones (slow or failed requests missed
// by head sampling) carry totals only.
type RequestTrace struct {
	// ID is the tracer-unique trace id (0 for tail-sampled entries).
	ID uint64
	// Model is the deployed model the request was served by.
	Model string
	// Start is when the request began; Total its end-to-end latency.
	Start time.Time
	Total time.Duration
	// Err is the request's error text, empty on success.
	Err string
	// Sampled reports a head-sampled trace (Spans populated).
	Sampled bool
	// Spans are the request's stage spans, in recording order.
	Spans []TraceSpan
}

func fromWireTrace(wt wireTrace) RequestTrace {
	rt := RequestTrace{
		ID:      wt.ID,
		Model:   wt.Model,
		Start:   time.Unix(0, wt.StartUnixNano),
		Total:   time.Duration(wt.TotalMS * float64(time.Millisecond)),
		Err:     wt.Error,
		Sampled: wt.Sampled,
	}
	for _, sp := range wt.Spans {
		rt.Spans = append(rt.Spans, TraceSpan{
			Stage:  sp.Stage,
			Offset: time.Duration(sp.OffsetMS * float64(time.Millisecond)),
			Dur:    time.Duration(sp.DurMS * float64(time.Millisecond)),
		})
	}
	return rt
}
