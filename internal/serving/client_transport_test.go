package serving

import (
	"net/http"
	"testing"
	"time"
)

// TestClientDefaultTransportTuned pins the high-concurrency transport
// defaults: a driver with hundreds of in-flight requests against one host
// must not serialize on net/http's default 2 idle conns per host.
func TestClientDefaultTransportTuned(t *testing.T) {
	c := NewClient("http://127.0.0.1:1")
	tr, ok := c.http.Transport.(*http.Transport)
	if !ok {
		t.Fatalf("default client transport is %T, want *http.Transport", c.http.Transport)
	}
	if tr.MaxIdleConnsPerHost < 64 {
		t.Fatalf("MaxIdleConnsPerHost = %d, want >= 64", tr.MaxIdleConnsPerHost)
	}
	if tr.MaxIdleConns < tr.MaxIdleConnsPerHost {
		t.Fatalf("MaxIdleConns = %d < MaxIdleConnsPerHost = %d", tr.MaxIdleConns, tr.MaxIdleConnsPerHost)
	}
	if tr.IdleConnTimeout <= 0 {
		t.Fatalf("IdleConnTimeout = %v, want > 0", tr.IdleConnTimeout)
	}
	if c.http.Timeout != 30*time.Second {
		t.Fatalf("default timeout = %v, want 30s", c.http.Timeout)
	}
	// Each client owns its clone: tuning one must not mutate the process-wide
	// http.DefaultTransport.
	if dt := http.DefaultTransport.(*http.Transport); dt.MaxIdleConnsPerHost == tr.MaxIdleConnsPerHost {
		t.Fatalf("DefaultTransport mutated: MaxIdleConnsPerHost = %d", dt.MaxIdleConnsPerHost)
	}
}

// TestClientWithHTTPClientVerbatim pins WithHTTPClient's reuse contract:
// the supplied *http.Client is used as-is — same pointer, untouched
// transport and timeout — so callers keep control of pooling and can share
// one client across many serving Clients.
func TestClientWithHTTPClientVerbatim(t *testing.T) {
	custom := &http.Client{Timeout: 123 * time.Millisecond}
	c := NewClient("http://127.0.0.1:1", WithHTTPClient(custom), WithHTTPTimeout(time.Second))
	if c.http != custom {
		t.Fatal("WithHTTPClient did not reuse the supplied client verbatim")
	}
	if custom.Timeout != 123*time.Millisecond {
		t.Fatalf("supplied client's timeout changed to %v", custom.Timeout)
	}
	if custom.Transport != nil {
		t.Fatalf("supplied client's transport replaced with %T", custom.Transport)
	}
}
