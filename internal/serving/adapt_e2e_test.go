package serving

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"willump/internal/adapt"
	"willump/internal/core"
	"willump/internal/fixture"
	"willump/internal/value"
)

// Deterministic drift script shared by the adaptation e2e tests: the
// pipeline is optimized under training traffic whose cheap_id keys are
// heavily reused (a hot set of trainHotKeys) while heavy_id keys are
// unique, so the statistical planner spends the whole feature-cache
// budget on the cheap IFV. Live traffic then inverts the skew — cheap_id
// cycles through thousands of keys while heavy_id hammers liveHotKeys —
// so the stale plan's hit rate collapses and only a re-planned budget
// split (cache the heavy IFV instead) can recover it.
const (
	trainHotKeys = 8
	liveHotKeys  = 8
	liveKeySpace = 4096
)

// buildSkewedCachedPipeline optimizes the two-lookup fixture pipeline
// under the skewed training distribution above and sanity-checks that the
// planner cached an IFV with a high estimated hit rate (the reference the
// key-reuse drift detector will compare live traffic against).
func buildSkewedCachedPipeline(t *testing.T, budget int) *core.Optimized {
	t.Helper()
	fx, err := fixture.NewClassification(17, 400, 150, 150, 0.7, 60)
	if err != nil {
		t.Fatal(err)
	}
	const n = 1024
	cheap := make([]int64, n)
	heavy := make([]int64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		cheap[i] = int64(i % trainHotKeys)
		heavy[i] = int64(i) // unique within the sample
		y[i] = float64((i / trainHotKeys) % 2)
	}
	train := core.Dataset{
		Inputs: map[string]value.Value{
			"cheap_id": value.NewInts(cheap),
			"heavy_id": value.NewInts(heavy),
		},
		Y: y,
	}
	p := &core.Pipeline{Graph: fx.Prog.G, Model: fx.Model}
	opt, rep, err := core.Optimize(context.Background(), p, train, core.Dataset{},
		core.Options{FeatureCache: true, FeatureCacheBudget: budget})
	if err != nil {
		t.Fatal(err)
	}
	cached := 0
	for _, st := range rep.CachePlan {
		if !st.Cached {
			continue
		}
		cached++
		if st.EstimatedHitRate < 0.9 {
			t.Fatalf("planner cached IFV %d with estimated hit rate %.3f, want > 0.9 (skewed training traffic)", st.IFV, st.EstimatedHitRate)
		}
	}
	if cached != 1 {
		t.Fatalf("planner cached %d IFVs, want exactly 1 (all budget on the hot cheap IFV): %+v", cached, rep.CachePlan)
	}
	return opt
}

// driftInputs is live request i under the inverted skew.
func driftInputs(i int64) map[string]value.Value {
	return map[string]value.Value{
		"cheap_id": value.NewInts([]int64{i % liveKeySpace}),
		"heavy_id": value.NewInts([]int64{i % liveHotKeys}),
	}
}

// compressed cadences for tests: every request sampled, small windows,
// fast judgement ticks. GuardLatencyTol is large so scheduler jitter on
// loaded CI machines can never fail a canary on p99 — these tests script
// cache-plan drift, and the hit-rate guard is the one under test.
func testAdaptConfig() adapt.Config {
	return adapt.Config{
		SampleEvery:       1,
		KeyWindow:         64,
		ReuseStrikes:      2,
		Reservoir:         128,
		MinReservoir:      64,
		CheckEvery:        20 * time.Millisecond,
		CanaryFraction:    0.5,
		CanaryMinRequests: 30,
		CanaryTimeout:     30 * time.Second,
		PassStreak:        2,
		FailStreak:        2,
		GuardLatencyTol:   10,
		Cooldown:          time.Hour, // rollback test asserts the cooldown state
	}
}

// TestAdaptationDriftRefitsAndPromotes is the end-to-end promote path:
// under scripted drift the controller detects the key-reuse collapse,
// re-plans the feature-cache budget from its live reservoir, canaries the
// re-fit plan, and promotes it — with the measured post-promotion cache
// hit rate strictly above the stale plan's baseline, zero hard errors,
// and the admission forecaster still primed across the swap.
func TestAdaptationDriftRefitsAndPromotes(t *testing.T) {
	opt := buildSkewedCachedPipeline(t, 64)
	reg := NewRegistry(Options{SLOTargetP99: 2 * time.Second})
	defer reg.Close(context.Background())
	if err := reg.Deploy("m", "v1", opt); err != nil {
		t.Fatal(err)
	}
	srv := NewRegistryServer(reg)
	url, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := NewClient(url)
	ctx := context.Background()

	var i int64
	predict := func() {
		t.Helper()
		if _, err := cl.PredictModel(ctx, "m", driftInputs(i)); err != nil {
			t.Fatalf("predict %d: %v", i, err)
		}
		i++
	}

	// Phase 1: the stale plan under drifted traffic — the baseline the
	// adapted plan must beat. The cheap cache sees an effectively unique
	// key stream, so its hit rate is ~0.
	for k := 0; k < 300; k++ {
		predict()
	}
	st1, err := reg.Stats("m")
	if err != nil {
		t.Fatal(err)
	}
	if st1.FeatureCache == nil {
		t.Fatal("stale plan reports no feature-cache stats")
	}
	baseHR := st1.FeatureCache.HitRate
	if baseHR > 0.05 {
		t.Fatalf("stale plan hit rate %.3f under drifted traffic, want ~0 (drift script broken)", baseHR)
	}

	// Phase 2: enable adaptation and keep driving drifted traffic until
	// the controller detects, re-fits, canaries, and promotes.
	if err := reg.EnableAdaptation("m", testAdaptConfig()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(90 * time.Second)
	var snap adapt.Snapshot
	for {
		predict()
		if i%8 == 0 {
			var ok bool
			snap, ok = reg.AdaptationSnapshot("m")
			if ok && snap.Promotions >= 1 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("no promotion after %d drifted requests; snapshot %+v", i, snap)
			}
		}
	}
	if snap.KeyDriftEvents < 1 {
		t.Errorf("promotion without a key-drift confirmation: %+v", snap)
	}
	if snap.Refits < 1 || snap.Canaries < 1 {
		t.Errorf("promotion without refit+canary accounting: %+v", snap)
	}

	// Phase 3: measure the promoted plan over a fresh window. The re-fit
	// plan caches the now-hot heavy IFV, so the hit rate must decisively
	// beat the stale baseline.
	stPre, err := reg.Stats("m")
	if err != nil {
		t.Fatal(err)
	}
	if stPre.Version != "adapt-1" {
		t.Errorf("active version after promotion = %q, want adapt-1", stPre.Version)
	}
	if stPre.FeatureCache == nil {
		t.Fatal("promoted plan reports no feature-cache stats")
	}
	for k := 0; k < 400; k++ {
		predict()
	}
	stPost, err := reg.Stats("m")
	if err != nil {
		t.Fatal(err)
	}
	dh := stPost.FeatureCache.Hits - stPre.FeatureCache.Hits
	dm := stPost.FeatureCache.Misses - stPre.FeatureCache.Misses
	if dh+dm <= 0 {
		t.Fatalf("promoted plan served no cache lookups (hits %d misses %d)", dh, dm)
	}
	postHR := float64(dh) / float64(dh+dm)
	if postHR <= baseHR {
		t.Errorf("post-promotion hit rate %.3f not above stale baseline %.3f", postHR, baseHR)
	}
	if postHR < 0.5 {
		t.Errorf("post-promotion hit rate %.3f, want > 0.5 (heavy hot set of %d keys in a %d-entry cache)", postHR, liveHotKeys, 64)
	}

	// No hard errors anywhere in the run, and the admission forecaster is
	// still primed after the promote swap (no cold-start admit window).
	if stPost.Errors != 0 || stPost.Rejected != 0 {
		t.Errorf("hard errors across adaptation: errors=%d rejected=%d", stPost.Errors, stPost.Rejected)
	}
	if stPost.Admission == nil || stPost.Admission.ForecastService <= 0 {
		t.Errorf("admission forecaster cold after promotion: %+v", stPost.Admission)
	}
}

// TestAdaptationBadCandidateRollsBack is the rollback path: the candidate
// plan is sabotaged through the fault-injection hook (its feature caches
// stripped), so the canary's hit-rate guard trips and the controller
// rolls back automatically — with zero hard errors, the incumbent still
// active, the admission forecaster still primed, and the controller in
// cooldown.
func TestAdaptationBadCandidateRollsBack(t *testing.T) {
	opt := buildSkewedCachedPipeline(t, 64)
	reg := NewRegistry(Options{SLOTargetP99: 2 * time.Second})
	defer reg.Close(context.Background())
	if err := reg.Deploy("m", "v1", opt); err != nil {
		t.Fatal(err)
	}
	srv := NewRegistryServer(reg)
	url, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := NewClient(url)
	ctx := context.Background()

	cfg := testAdaptConfig()
	cfg.MutateCandidate = func(o *core.Optimized) {
		o.ApplyCacheSpecs(nil, nil) // inject a degenerate plan: no caches at all
	}
	if err := reg.EnableAdaptation("m", cfg); err != nil {
		t.Fatal(err)
	}

	var i int64
	predict := func() {
		t.Helper()
		if _, err := cl.PredictModel(ctx, "m", driftInputs(i)); err != nil {
			t.Fatalf("predict %d: %v", i, err)
		}
		i++
	}

	deadline := time.Now().Add(90 * time.Second)
	var snap adapt.Snapshot
	for {
		predict()
		if i%8 == 0 {
			var ok bool
			snap, ok = reg.AdaptationSnapshot("m")
			if ok && snap.Rollbacks >= 1 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("no rollback after %d drifted requests; snapshot %+v", i, snap)
			}
		}
	}
	if snap.Promotions != 0 {
		t.Errorf("sabotaged candidate was promoted: %+v", snap)
	}
	if snap.LastRollback != "guard regression" {
		t.Errorf("rollback reason = %q, want \"guard regression\"", snap.LastRollback)
	}

	// The incumbent is still the active version and the canary scaffold is
	// gone.
	h, err := reg.lookup("m")
	if err != nil {
		t.Fatal(err)
	}
	if c := h.canary.Load(); c != nil {
		t.Errorf("canary version still routed after rollback (tag %q)", c.tag)
	}
	st, err := reg.Stats("m")
	if err != nil {
		t.Fatal(err)
	}
	if st.Version != "v1" {
		t.Errorf("active version after rollback = %q, want v1", st.Version)
	}

	// The rollback left the controller cooling down, not retrying.
	snap, _ = reg.AdaptationSnapshot("m")
	if snap.State != "cooldown" {
		t.Errorf("controller state after rollback = %q, want cooldown", snap.State)
	}

	// Service stayed clean through the whole failed rollout, keeps serving
	// after it, and the incumbent's admission forecaster was never cold.
	for k := 0; k < 100; k++ {
		predict()
	}
	st, err = reg.Stats("m")
	if err != nil {
		t.Fatal(err)
	}
	if st.Errors != 0 || st.Rejected != 0 {
		t.Errorf("hard errors across failed rollout: errors=%d rejected=%d", st.Errors, st.Rejected)
	}
	if st.Admission == nil || st.Admission.ForecastService <= 0 {
		t.Errorf("admission forecaster cold after rollback: %+v", st.Admission)
	}
	if !h.admit.Primed() {
		t.Error("hosted admission controller lost its forecast across the rollback")
	}
}

// TestShadowScoringBypassesIncumbentCaches pins guard integrity: shadow
// predictions run on a cache-free clone of the incumbent, so sampling
// live rows never inflates the incumbent's feature-cache counters — the
// counters the canary hit-rate guard judges arms by.
func TestShadowScoringBypassesIncumbentCaches(t *testing.T) {
	opt := buildSkewedCachedPipeline(t, 64)
	ctl := adapt.New(opt,
		// CheckEvery an hour out: only the shadow worker runs, no re-fit.
		adapt.Config{SampleEvery: 1, CheckEvery: time.Hour},
		adapt.Hooks{
			StartCanary: func(string, *core.Optimized, float64) error { return errors.New("no canary in this test") },
			Promote:     func() error { return nil },
			Rollback:    func() error { return nil },
			Guards:      func() (adapt.Guard, adapt.Guard, bool) { return adapt.Guard{}, adapt.Guard{}, false },
		})
	ctl.Start()
	defer ctl.Close()

	before, ok := opt.FeatureCacheStats()
	if !ok {
		t.Fatal("pipeline has no feature caches")
	}
	const n = 200
	for i := int64(0); i < n; i++ {
		ctl.ObserveRequest(driftInputs(i), 1)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		snap := ctl.Snapshot()
		if int64(snap.ReservoirRows)+snap.ShadowDropped >= n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shadow worker never drained the sample queue: %+v", snap)
		}
		time.Sleep(5 * time.Millisecond)
	}
	after, _ := opt.FeatureCacheStats()
	if after.Hits != before.Hits || after.Misses != before.Misses {
		t.Errorf("shadow scoring touched the incumbent's caches: hits %d -> %d, misses %d -> %d",
			before.Hits, after.Hits, before.Misses, after.Misses)
	}
}

// TestAdmissionReprimeAcrossSwapPaths pins the cold-start guarantee on
// every swap path: once the forecaster is primed by live traffic, a
// deploy-over, an undeploy+redeploy, a canary start, a canary promote,
// and a canary rollback — all under concurrent load — must each leave the
// serving admission controller primed, never reopening the admit-
// everything window.
func TestAdmissionReprimeAcrossSwapPaths(t *testing.T) {
	opt := buildSkewedCachedPipeline(t, 64)
	reg := NewRegistry(Options{SLOTargetP99: time.Second})
	defer reg.Close(context.Background())
	if err := reg.Deploy("m", "v1", opt); err != nil {
		t.Fatal(err)
	}
	srv := NewRegistryServer(reg)
	url, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := NewClient(url)
	ctx := context.Background()

	// Prime the forecaster with live traffic.
	for i := int64(0); i < 80; i++ {
		if _, err := cl.PredictModel(ctx, "m", driftInputs(i)); err != nil {
			t.Fatal(err)
		}
	}
	h, err := reg.lookup("m")
	if err != nil {
		t.Fatal(err)
	}
	if !h.admit.Primed() {
		t.Fatal("forecaster not primed after 80 live requests")
	}

	// Background load across every swap below. Lookups can 404 in the
	// undeploy->redeploy window; anything else is a hard failure.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var hardErrs atomic.Int64
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := seed; ; i += 2 {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := cl.PredictModel(ctx, "m", driftInputs(i)); err != nil &&
					!strings.Contains(err.Error(), "not found") {
					hardErrs.Add(1)
				}
			}
		}(int64(w))
	}
	defer func() {
		close(stop)
		wg.Wait()
		if n := hardErrs.Load(); n != 0 {
			t.Errorf("%d hard errors from load during swaps", n)
		}
	}()

	mustPrimed := func(path string) {
		t.Helper()
		hh, err := reg.lookup("m")
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if !hh.admit.Primed() {
			t.Fatalf("%s reopened the cold-start admit window", path)
		}
	}

	// Deploy-over: same Hosted model, the controller simply survives.
	if err := reg.Deploy("m", "v2", opt); err != nil {
		t.Fatal(err)
	}
	mustPrimed("deploy-over")

	// Undeploy + redeploy: a fresh Hosted model must re-prime from the
	// retired controller's stashed forecast, immediately, before any new
	// traffic lands.
	if err := reg.Undeploy("m"); err != nil {
		t.Fatal(err)
	}
	if err := reg.Deploy("m", "v3", opt); err != nil {
		t.Fatal(err)
	}
	mustPrimed("undeploy+redeploy")

	// Canary start: the canary arm runs its own controller, primed from
	// the incumbent's forecast at birth.
	cand := opt.CloneForRefit()
	if err := reg.StartCanary("m", "cand-1", cand, 0.3); err != nil {
		t.Fatal(err)
	}
	h, err = reg.lookup("m")
	if err != nil {
		t.Fatal(err)
	}
	c := h.canary.Load()
	if c == nil {
		t.Fatal("no canary version after StartCanary")
	}
	if !c.admit.Primed() {
		t.Fatal("canary admission controller born cold")
	}

	// Promote: the hosted controller adopts the canary arm's forecast.
	if err := reg.PromoteCanary("m"); err != nil {
		t.Fatal(err)
	}
	mustPrimed("canary promote")

	// Rollback: the incumbent controller served the majority arm all
	// along and must still be warm.
	cand2 := opt.CloneForRefit()
	if err := reg.StartCanary("m", "cand-2", cand2, 0.3); err != nil {
		t.Fatal(err)
	}
	if err := reg.RollbackCanary("m"); err != nil {
		t.Fatal(err)
	}
	mustPrimed("canary rollback")
}
