package serving

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"willump/internal/admission"
	"willump/internal/core"
	"willump/internal/trace"
	"willump/internal/value"
)

// Options configures the serving frontend.
type Options struct {
	// MaxBatch bounds adaptive batching: queued requests merge into batches
	// of at most this many rows (default 256).
	MaxBatch int
	// BatchTimeout is how long the batcher waits to fill a batch
	// (default 500us).
	BatchTimeout time.Duration
	// QueueDepth bounds each deployed model's request queue (default 1024).
	// A full queue rejects new requests with HTTP 429 — bounded-queue
	// admission control instead of unbounded memory growth under overload.
	QueueDepth int
	// CacheCapacity, when non-zero, enables a per-deployed-version
	// end-to-end prediction cache (< 0 for unbounded).
	CacheCapacity int
	// CacheKeyOrder fixes the input-column order for cache keys; when empty,
	// a deployed pipeline's own input schema is used.
	CacheKeyOrder []string
	// SLOTargetP99, when non-zero, enables SLO-aware admission control per
	// deployed model: an online service-time forecast sheds requests at
	// enqueue whose predicted completion would miss this target (or their
	// own tighter deadline), and an AIMD concurrency limit adapts to
	// observed latency vs. the target — the bounded queue becomes a hard
	// backstop rather than the only defense.
	SLOTargetP99 time.Duration
	// Brownout enables the graceful-degradation ladder (requires
	// SLOTargetP99): under measured pressure, requests are downgraded
	// stepwise — cascade small-model-only scoring, shrunken top-K budgets,
	// then prediction-cache answers — before anything is shed. Degraded
	// responses are successes carrying a `degraded` wire marker.
	Brownout bool
	// CriticalityHeader, when set, names an HTTP request header carrying
	// the request's criticality class ("low", "normal", "high") for
	// requests that don't set it in wire options. High-criticality traffic
	// degrades and sheds last.
	CriticalityHeader string
}

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 256
	}
	if o.BatchTimeout <= 0 {
		o.BatchTimeout = 500 * time.Microsecond
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 1024
	}
	return o
}

// DefaultModelName is the name NewServer deploys a lone predictor under.
const DefaultModelName = "default"

// errBadRequest marks errors caused by the request itself (HTTP 400).
var errBadRequest = errors.New("bad request")

func badRequestf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", errBadRequest, fmt.Sprintf(format, args...))
}

// Server is the HTTP serving frontend over a model Registry.
//
// Routes:
//
//	POST /v1/models/{name}/predict   prediction (batch, point, overrides)
//	POST /v1/models/{name}/topk      top-K ranking within the request batch
//	GET  /v1/models/{name}/stats     per-model serving telemetry
//	GET  /v1/models/{name}           describe one model
//	GET  /v1/models                  list deployed models
//	POST /predict                    legacy route: the default model
//	GET  /healthz                    liveness
//	GET  /metrics                    Prometheus text exposition
//	GET  /v1/traces                  retained request traces (?model=, ?n=)
//	GET  /debug/pprof/*              runtime profiling (EnablePprof only)
type Server struct {
	reg *Registry

	http  *http.Server
	ln    net.Listener
	wg    sync.WaitGroup
	pprof bool

	requests atomic.Int64
	closed   atomic.Bool
	// shutdownDone closes once the first Shutdown/Close finishes draining;
	// concurrent callers block on it and observe shutdownErr.
	shutdownDone chan struct{}
	shutdownErr  error
}

// NewPredictorServer wraps a single predictor with the serving frontend,
// deploying it as the registry's default model, and reports deployment
// failures — a nil predictor, or a prediction cache enabled without
// CacheKeyOrder — as errors instead of panicking. Use NewRegistryServer to
// host many named, versioned models behind one server.
func NewPredictorServer(p Predictor, opts Options) (*Server, error) {
	reg := NewRegistry(opts)
	if err := reg.DeployPredictor(DefaultModelName, "v1", p, opts.CacheKeyOrder); err != nil {
		reg.cancel()
		return nil, fmt.Errorf("serving: deploying default model: %w", err)
	}
	return NewRegistryServer(reg), nil
}

// NewServer wraps a single predictor with the serving frontend, deploying
// it as the registry's default model.
//
// Deprecated: NewServer panics on a configuration that could never serve a
// request (a nil predictor, or a prediction cache enabled without
// CacheKeyOrder). Use NewPredictorServer, which returns the error instead.
func NewServer(p Predictor, opts Options) *Server {
	s, err := NewPredictorServer(p, opts)
	if err != nil {
		panic(err.Error())
	}
	return s
}

// NewRegistryServer wraps a registry with the HTTP serving frontend. The
// server owns the registry's lifecycle: Shutdown (or Close) drains and
// closes it.
func NewRegistryServer(reg *Registry) *Server {
	return &Server{reg: reg, shutdownDone: make(chan struct{})}
}

// Registry returns the registry this server hosts, for deploying and
// undeploying models while the server runs.
func (s *Server) Registry() *Registry { return s.reg }

// EnablePprof mounts net/http/pprof under /debug/pprof/ when the server
// starts. Call it before Start/StartOn; the profiling endpoints expose
// process internals, so deployment binaries gate it behind an operator flag.
func (s *Server) EnablePprof() { s.pprof = true }

// Start listens on 127.0.0.1 (ephemeral port). It returns the base URL.
func (s *Server) Start() (string, error) {
	return s.StartOn("127.0.0.1:0")
}

// StartOn listens on an explicit address (host:port); deployment binaries
// use it to bind a stable serving endpoint. It returns the base URL.
func (s *Server) StartOn(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("serving: listen: %w", err)
	}
	s.ln = ln
	mux := http.NewServeMux()
	mux.HandleFunc("POST /predict", func(w http.ResponseWriter, r *http.Request) {
		s.handlePredict(w, r, "")
	})
	mux.HandleFunc("POST /v1/models/{name}/predict", func(w http.ResponseWriter, r *http.Request) {
		s.handlePredict(w, r, r.PathValue("name"))
	})
	mux.HandleFunc("POST /v1/models/{name}/topk", s.handleTopK)
	mux.HandleFunc("GET /v1/models/{name}/stats", s.handleStats)
	mux.HandleFunc("GET /v1/models/{name}", s.handleDescribe)
	mux.HandleFunc("GET /v1/models", s.handleList)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	s.mountObservability(mux)
	s.http = &http.Server{Handler: mux}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.http.Serve(ln) //nolint:errcheck // Serve always returns on Close
	}()
	return "http://" + ln.Addr().String(), nil
}

// Shutdown gracefully stops the server: new requests are rejected
// immediately, in-flight requests (including any batch a model's batcher is
// executing) drain to completion, and every batcher exits once its queue is
// empty. The context bounds how long the drain may take; when it expires,
// remaining work is cancelled through the execution context and pending
// waiters receive the cancellation error.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.closed.Swap(true) {
		// Another Shutdown/Close is (or was) draining: wait for it to finish
		// so no caller tears down the hosted models' resources early.
		<-s.shutdownDone
		return s.shutdownErr
	}
	var err error
	if s.http != nil {
		// Graceful HTTP drain: waits for in-flight handlers, which in turn
		// wait on the still-running batchers for their results.
		err = s.http.Shutdown(ctx)
		if err != nil {
			// The drain deadline expired with handlers still waiting: cancel
			// the execution context so their batches abort between graph
			// blocks and straggling handlers stop waiting on the batchers.
			s.reg.cancel()
		}
	}
	// Drain every model's batcher, then wait for the HTTP serve loop.
	if cerr := s.reg.Close(ctx); err == nil {
		err = cerr
	}
	s.wg.Wait()
	s.reg.cancel()
	s.shutdownErr = err
	close(s.shutdownDone)
	return err
}

// Close shuts the server down, draining in-flight batches without a
// deadline.
func (s *Server) Close() error {
	return s.Shutdown(context.Background())
}

// Requests returns the number of prediction RPC requests received.
func (s *Server) Requests() int64 { return s.requests.Load() }

var errShuttingDown = errors.New("serving: server shutting down")

// statusFor maps serving errors to HTTP status codes.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrModelNotFound):
		return http.StatusNotFound
	case errors.Is(err, errBadRequest):
		return http.StatusBadRequest
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled), errors.Is(err, errShuttingDown):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func writeError(w http.ResponseWriter, code int, err error) {
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(wireResponse{Error: err.Error()}) //nolint:errcheck
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v) //nolint:errcheck
}

// decodeRequest parses a prediction/top-K request body.
func decodeRequest(r *http.Request) (map[string]value.Value, int, core.PredictOptions, error) {
	var req wireRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return nil, 0, core.PredictOptions{}, badRequestf("decoding request: %v", err)
	}
	inputs, n, err := decodeInputs(req.Inputs)
	if err != nil {
		return nil, 0, core.PredictOptions{}, fmt.Errorf("%w: %s", errBadRequest, err)
	}
	po, err := req.Options.toPredictOptions()
	if err != nil {
		return nil, 0, core.PredictOptions{}, fmt.Errorf("%w: %s", errBadRequest, err)
	}
	return inputs, n, po, nil
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request, name string) {
	if s.closed.Load() {
		writeError(w, http.StatusServiceUnavailable, errShuttingDown)
		return
	}
	s.requests.Add(1)
	inputs, n, po, err := decodeRequest(r)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	h, err := s.reg.lookup(name)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	// Shadow-sample the request into the adaptation controller's drift
	// detectors (a nil controller is a no-op; the call never blocks).
	h.adaptCtl.Load().ObserveRequest(inputs, n)
	// The handler owns the request's trace lifecycle: the sampling decision
	// is made here and the trace rides the request context through queue,
	// batcher, and pipeline (whose own entry points see it and don't begin a
	// second one). The context is marked owned even when the request is
	// unsampled, so the pipeline's entry points never Begin/Finish a second
	// time on the same tracer (which would double-count every server-routed
	// request). Every tracer method is a nil-receiver no-op, so untraced
	// models pay nothing.
	start := time.Now()
	tw := h.tracer()
	tr := tw.Begin(h.name)
	rctx := r.Context()
	if tr != nil {
		rctx = trace.NewContext(rctx, tr)
	} else if tw != nil {
		rctx = trace.MarkOwned(rctx)
	}
	// Criticality may ride an operator-configured header when the wire
	// options don't carry it; unknown spellings are ignored rather than
	// rejected, so a garbage header never fails (or escalates) a request.
	if po.Criticality == "" && s.reg.opts.CriticalityHeader != "" {
		switch c := r.Header.Get(s.reg.opts.CriticalityHeader); c {
		case "low", "normal", "high":
			po.Criticality = c
		}
	}
	crit := admission.ParseCriticality(po.Criticality)
	var preds []float64
	var degraded string
	delivered := true
	if po.BatchableZero() {
		preds, degraded, delivered, err = s.executeBatched(rctx, h, inputs, n, crit)
	} else {
		// Direct path brownout: force cascade small-only scoring when the
		// ladder says degrade and the deployment has a cascade to degrade
		// to. Requests already asking for SmallOnly keep their own marker
		// off — they got exactly what they asked for.
		if !po.SmallOnly && h.admit.LevelFor(crit) >= admission.LevelDegrade {
			if v := h.active.Load(); v != nil && v.opt != nil && v.opt.Cascade != nil {
				po.SmallOnly = true
				degraded = admission.DegradedSmallOnly
			}
		}
		preds, err = s.executeDirect(rctx, h, inputs, n, po)
		if err != nil {
			degraded = ""
		} else {
			if degraded != "" {
				h.admit.CountDegraded(degraded)
			}
			// Direct requests never queue, so execution time is both the
			// service and the end-to-end observation.
			d := time.Since(start)
			h.admit.Observe(d, d, n)
		}
	}
	if delivered {
		tw.Finish(tr, h.name, start, err)
	} else {
		// The batcher still holds the pending whose context carries the
		// trace; it must not be recycled under the batcher's feet.
		tw.FinishAbandoned(tr, h.name, start, err)
	}
	if errors.Is(err, ErrOverloaded) {
		h.stats.reject()
	} else {
		h.stats.record(start, err)
	}
	if err != nil {
		code := statusFor(err)
		if code == http.StatusTooManyRequests {
			setRetryAfter(w, h)
		}
		writeError(w, code, err)
		return
	}
	writeJSON(w, wireResponse{Predictions: preds, Degraded: degraded})
}

// setRetryAfter attaches the admission controller's drain forecast to a
// 429: how long until the backlog ahead of a retry would have cleared,
// in whole seconds (HTTP Retry-After), floored at 1. Cold controllers
// (no forecast yet) send no header.
func setRetryAfter(w http.ResponseWriter, h *Hosted) {
	ra := h.admit.RetryAfter(h.queueLen())
	if ra <= 0 {
		return
	}
	secs := int(math.Ceil(ra.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}

// errPredictedMiss annotates predictive sheds so operators can tell them
// from queue-full rejections; it still matches ErrOverloaded.
var errPredictedMiss = fmt.Errorf("%w: predicted completion exceeds deadline", ErrOverloaded)

// executeBatched admits a batchable request (zero options apart from
// criticality) to the model's adaptive batcher, where it may merge with
// concurrent requests. Admission is SLO-aware: the brownout ladder may
// answer from the prediction cache or downgrade the request to
// small-model-only scoring (returned as the degraded marker), and the
// controller sheds requests whose forecast completion would miss their
// budget — before they waste queue space. The returned delivered flag
// reports whether the batcher completed the request: when false, the
// caller abandoned a pending the batcher may still reach, so anything the
// request's context carries (its trace) remains referenced by the batcher.
func (s *Server) executeBatched(rctx context.Context, h *Hosted, inputs map[string]value.Value, n int, crit admission.Criticality) (preds []float64, degraded string, delivered bool, err error) {
	// Canary routing happens before admission: each arm runs its own
	// admission controller (the canary's is primed from the incumbent's
	// forecast at start), so a misbehaving candidate sheds only its own
	// traffic slice and never drags the incumbent's forecast with it. For
	// versions installed by Deploy the arm controller IS the hosted one.
	v := h.route()
	admit := h.admit
	if v != nil {
		admit = v.admit
	}
	level := admit.LevelFor(crit)
	if level >= admission.LevelCacheOnly && v != nil && v.cache != nil {
		// Deepest brownout rung: answer from the prediction cache without
		// touching the saturated pipeline. A miss sheds low/normal traffic;
		// high-criticality requests fall through and still compute (one
		// rung down, they arrive here only under extreme pressure).
		if cached, ok := v.cache.Peek(inputs); ok {
			admit.CountDegraded(admission.DegradedCache)
			return cached, admission.DegradedCache, true, nil
		}
		if crit != admission.CritHigh {
			admit.CountShedBrownout()
			v.guard.sheds.Add(1)
			return nil, "", true, fmt.Errorf("%w: brownout cache-only, no cached answer", ErrOverloaded)
		}
	}
	var budget time.Duration
	if dl, ok := rctx.Deadline(); ok {
		budget = time.Until(dl)
	}
	queued := 0
	if v != nil {
		queued = len(v.queue)
	}
	if d := admit.Admit(queued, budget, crit); d.Shed {
		if v != nil {
			v.guard.sheds.Add(1)
		}
		return nil, "", true, errPredictedMiss
	}
	defer admit.Release()
	p := &pending{
		ctx: rctx, inputs: inputs, n: n, enq: time.Now(), done: make(chan batchResult, 1),
		small: level >= admission.LevelDegrade,
	}
	if err := h.enqueueTo(v, p); err != nil {
		return nil, "", true, err
	}
	// p.done is buffered, so the batcher never blocks on an abandoned waiter.
	select {
	case res := <-p.done:
		return res.preds, res.degraded, true, res.err
	case <-rctx.Done():
		// The client went away or its deadline expired; the batcher will
		// notice the dead context when it reaches this request.
		return nil, "", false, rctx.Err()
	case <-s.reg.baseCtx.Done():
		// Force-close: a Shutdown deadline expired and the batcher may have
		// exited without reaching this request. Don't wait for a result that
		// may never come.
		return nil, "", false, errShuttingDown
	}
}

// joinContext derives an execution context cancelled when either the
// request's context or the registry's base context dies.
func (s *Server) joinContext(rctx context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(rctx)
	detach := context.AfterFunc(s.reg.baseCtx, cancel)
	return ctx, func() { detach(); cancel() }
}

// executeDirect serves a request carrying per-request options. Such
// requests never merge into shared batches: one request's overrides must
// not leak into another's results (and deadlines stay the request's own).
// Direct execution is still admission-controlled: concurrent direct
// requests are bounded like the batch queue, rejecting with ErrOverloaded
// beyond the configured depth.
func (s *Server) executeDirect(rctx context.Context, h *Hosted, inputs map[string]value.Value, n int, po core.PredictOptions) ([]float64, error) {
	// SLO-aware gate first (shed work predicted to miss its budget, bound
	// concurrency adaptively), then the fixed direct-slot backstop.
	budget := po.Deadline
	if budget <= 0 {
		if dl, ok := rctx.Deadline(); ok {
			budget = time.Until(dl)
		}
	}
	if d := h.admit.Admit(0, budget, admission.ParseCriticality(po.Criticality)); d.Shed {
		return nil, errPredictedMiss
	}
	defer h.admit.Release()
	release, err := h.admitDirect()
	if err != nil {
		return nil, err
	}
	defer release()
	v := h.active.Load()
	if v == nil {
		return nil, fmt.Errorf("serving: model %q: %w", h.name, ErrModelNotFound)
	}
	ctx, cancel := s.joinContext(rctx)
	defer cancel()
	if v.opt == nil {
		// Black-box predictor: the registry cannot reach inside it to
		// override optimizer knobs, but deadline and point modality are
		// generic (a point query is a single-row batch).
		if po.CascadeThreshold != nil || po.Budget > 0 {
			return nil, badRequestf("model %q is a black-box predictor and does not support optimizer overrides", h.name)
		}
		if po.Point && n != 1 {
			return nil, badRequestf("point query carries %d rows, want 1", n)
		}
		if po.Deadline > 0 {
			var dcancel context.CancelFunc
			ctx, dcancel = context.WithTimeout(ctx, po.Deadline)
			defer dcancel()
		}
		return v.pred.PredictBatch(ctx, inputs)
	}
	if po.Point {
		if n != 1 {
			return nil, badRequestf("point query carries %d rows, want 1", n)
		}
		f, err := v.opt.PredictPointOptions(ctx, inputs, po)
		if err != nil {
			return nil, err
		}
		return []float64{f}, nil
	}
	preds, cs, err := v.opt.PredictBatchOptions(ctx, inputs, po)
	if err == nil {
		h.stats.recordCascade(cs)
	}
	return preds, err
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	if s.closed.Load() {
		writeError(w, http.StatusServiceUnavailable, errShuttingDown)
		return
	}
	s.requests.Add(1)
	inputs, _, po, err := decodeRequest(r)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	h, err := s.reg.lookup(r.PathValue("name"))
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	start := time.Now()
	tw := h.tracer()
	tr := tw.Begin(h.name)
	rctx := r.Context()
	if tr != nil {
		rctx = trace.NewContext(rctx, tr)
	} else if tw != nil {
		// Owned even when unsampled, so TopKOptions doesn't count the
		// request a second time (see handlePredict).
		rctx = trace.MarkOwned(rctx)
	}
	// Brownout budget shrink: under pressure, rank from the smallest legal
	// candidate subset (exactly K) instead of the trained c_k*K policy —
	// a cheaper, slightly-lower-recall answer rather than a shed.
	crit := admission.ParseCriticality(po.Criticality)
	var degraded string
	if po.K > 0 && h.admit.LevelFor(crit) >= admission.LevelDegrade && (po.Budget == 0 || po.Budget > po.K) {
		po.Budget = po.K
		degraded = admission.DegradedBudget
	}
	// executeTopK never enqueues to the batcher, so the handler keeps the
	// only trace reference and plain Finish is safe.
	idx, err := s.executeTopK(rctx, h, inputs, po)
	tw.Finish(tr, h.name, start, err)
	if errors.Is(err, ErrOverloaded) {
		h.stats.reject()
	} else {
		h.stats.record(start, err)
	}
	if err != nil {
		code := statusFor(err)
		if code == http.StatusTooManyRequests {
			setRetryAfter(w, h)
		}
		writeError(w, code, err)
		return
	}
	if degraded != "" {
		h.admit.CountDegraded(degraded)
	}
	writeJSON(w, wireResponse{Indices: idx, Degraded: degraded})
}

// executeTopK serves a top-K ranking over the request's batch. Top-K is a
// whole-batch query — the ranking is relative to the rows the client sent —
// so it never merges with other requests.
func (s *Server) executeTopK(rctx context.Context, h *Hosted, inputs map[string]value.Value, po core.PredictOptions) ([]int, error) {
	budget := po.Deadline
	if budget <= 0 {
		if dl, ok := rctx.Deadline(); ok {
			budget = time.Until(dl)
		}
	}
	if d := h.admit.Admit(0, budget, admission.ParseCriticality(po.Criticality)); d.Shed {
		return nil, errPredictedMiss
	}
	defer h.admit.Release()
	release, err := h.admitDirect()
	if err != nil {
		return nil, err
	}
	defer release()
	v := h.active.Load()
	if v == nil {
		return nil, fmt.Errorf("serving: model %q: %w", h.name, ErrModelNotFound)
	}
	if v.opt == nil || v.opt.Filter == nil {
		return nil, badRequestf("model %q was not optimized for top-K queries", h.name)
	}
	if po.K <= 0 {
		return nil, badRequestf("top-K query requires options.k > 0")
	}
	ctx, cancel := s.joinContext(rctx)
	defer cancel()
	return v.opt.TopKOptions(ctx, inputs, po)
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	infos := s.reg.Models()
	out := wireModelList{Models: make([]wireModelInfo, len(infos))}
	for i, mi := range infos {
		out.Models[i] = toWireModelInfo(mi)
	}
	writeJSON(w, out)
}

func (s *Server) handleDescribe(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	for _, mi := range s.reg.Models() {
		if mi.Name == name {
			writeJSON(w, toWireModelInfo(mi))
			return
		}
	}
	writeError(w, http.StatusNotFound, fmt.Errorf("serving: model %q: %w", name, ErrModelNotFound))
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st, err := s.reg.Stats(r.PathValue("name"))
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, toWireStats(st))
}

func toWireModelInfo(mi ModelInfo) wireModelInfo {
	return wireModelInfo{
		Name:             mi.Name,
		Version:          mi.Version,
		Default:          mi.Default,
		Inputs:           mi.Inputs,
		Cascade:          mi.Cascade,
		CascadeThreshold: mi.CascadeThreshold,
		TopK:             mi.TopK,
	}
}

func fromWireModelInfo(wi wireModelInfo) ModelInfo {
	return ModelInfo{
		Name:             wi.Name,
		Version:          wi.Version,
		Default:          wi.Default,
		Inputs:           wi.Inputs,
		Cascade:          wi.Cascade,
		CascadeThreshold: wi.CascadeThreshold,
		TopK:             wi.TopK,
	}
}

func toWireStats(st ModelStats) wireStats {
	out := wireStats{
		Model:    st.Model,
		Version:  st.Version,
		Requests: st.Requests,
		Errors:   st.Errors,
		Rejected: st.Rejected,
		QPS:      st.QPS,
		LatencyMS: wireLatency{
			P50:  float64(st.LatencyP50) / float64(time.Millisecond),
			P90:  float64(st.LatencyP90) / float64(time.Millisecond),
			P99:  float64(st.LatencyP99) / float64(time.Millisecond),
			P999: float64(st.LatencyP999) / float64(time.Millisecond),
		},
	}
	for _, sq := range st.RecentSlow {
		out.RecentSlow = append(out.RecentSlow, wireSlow{
			StartUnixNano: sq.Start.UnixNano(),
			LatencyMS:     float64(sq.Latency) / float64(time.Millisecond),
			Error:         sq.Err,
			Sampled:       sq.Sampled,
		})
	}
	if st.CascadeTotal > 0 {
		out.Cascade = &wireCascade{
			Total:     st.CascadeTotal,
			SmallOnly: st.CascadeSmallOnly,
			HitRate:   st.CascadeHitRate,
		}
	}
	if st.FeatureCache != nil {
		out.FeatureCache = &wireFeatureCache{
			Hits:      st.FeatureCache.Hits,
			Misses:    st.FeatureCache.Misses,
			Evictions: st.FeatureCache.Evictions,
			Coalesced: st.FeatureCache.Coalesced,
			HitRate:   st.FeatureCache.HitRate,
		}
	}
	if st.FeatureStore != nil {
		out.FeatureStore = &wireFeatureStore{
			Requests:     st.FeatureStore.Requests,
			Retries:      st.FeatureStore.Retries,
			HedgesIssued: st.FeatureStore.HedgesIssued,
			HedgesWon:    st.FeatureStore.HedgesWon,
			Degraded:     st.FeatureStore.Degraded,
			BreakerOpens: st.FeatureStore.BreakerOpens,
			BreakerState: st.FeatureStore.BreakerState,
			Inflight:     st.FeatureStore.Inflight,
			P50MS:        float64(st.FeatureStore.LatencyP50) / float64(time.Millisecond),
			P99MS:        float64(st.FeatureStore.LatencyP99) / float64(time.Millisecond),
		}
	}
	if st.Admission != nil {
		out.Admission = &wireAdmission{
			SLOMS:             float64(st.Admission.SLO) / float64(time.Millisecond),
			Limit:             st.Admission.Limit,
			Inflight:          st.Admission.Inflight,
			Level:             st.Admission.Level,
			ShedPredicted:     st.Admission.ShedPredicted,
			ShedLimit:         st.Admission.ShedLimit,
			ShedBrownout:      st.Admission.ShedBrownout,
			Expired:           st.Admission.Expired,
			DegradedSmallOnly: st.Admission.DegradedSmallOnly,
			DegradedBudget:    st.Admission.DegradedBudget,
			DegradedCache:     st.Admission.DegradedCache,
			ForecastServiceMS: float64(st.Admission.ForecastService) / float64(time.Millisecond),
			ForecastErrorMS:   float64(st.Admission.ForecastError) / float64(time.Millisecond),
			Pressure:          st.Admission.Pressure,
		}
	}
	if st.Adaptation != nil {
		out.Adaptation = &wireAdaptation{
			State:            st.Adaptation.State,
			CanaryTag:        st.Adaptation.CanaryTag,
			CanaryFraction:   st.Adaptation.CanaryFraction,
			Sampled:          st.Adaptation.Sampled,
			ShadowDropped:    st.Adaptation.ShadowDropped,
			ReservoirRows:    st.Adaptation.ReservoirRows,
			KeyReuseObserved: st.Adaptation.KeyReuseObserved,
			KeyReuseExpected: st.Adaptation.KeyReuseExpected,
			ScorePH:          st.Adaptation.ScorePH,
			ScoreKS:          st.Adaptation.ScoreKS,
			KeyDrift:         st.Adaptation.KeyDrift,
			ScoreDrift:       st.Adaptation.ScoreDrift,
			KeyDriftEvents:   st.Adaptation.KeyDriftEvents,
			ScoreDriftEvents: st.Adaptation.ScoreDriftEvents,
			Refits:           st.Adaptation.Refits,
			Canaries:         st.Adaptation.Canaries,
			Promotions:       st.Adaptation.Promotions,
			Rollbacks:        st.Adaptation.Rollbacks,
			CanaryErrors:     st.Adaptation.CanaryErrors,
			LastRollback:     st.Adaptation.LastRollback,
		}
	}
	return out
}

func fromWireStats(ws wireStats) ModelStats {
	out := ModelStats{
		Model:       ws.Model,
		Version:     ws.Version,
		Requests:    ws.Requests,
		Errors:      ws.Errors,
		Rejected:    ws.Rejected,
		QPS:         ws.QPS,
		LatencyP50:  time.Duration(ws.LatencyMS.P50 * float64(time.Millisecond)),
		LatencyP90:  time.Duration(ws.LatencyMS.P90 * float64(time.Millisecond)),
		LatencyP99:  time.Duration(ws.LatencyMS.P99 * float64(time.Millisecond)),
		LatencyP999: time.Duration(ws.LatencyMS.P999 * float64(time.Millisecond)),
	}
	for _, sq := range ws.RecentSlow {
		out.RecentSlow = append(out.RecentSlow, SlowQuery{
			Start:   time.Unix(0, sq.StartUnixNano),
			Latency: time.Duration(sq.LatencyMS * float64(time.Millisecond)),
			Err:     sq.Error,
			Sampled: sq.Sampled,
		})
	}
	if ws.Cascade != nil {
		out.CascadeTotal = ws.Cascade.Total
		out.CascadeSmallOnly = ws.Cascade.SmallOnly
		out.CascadeHitRate = ws.Cascade.HitRate
	}
	if ws.FeatureCache != nil {
		out.FeatureCache = &FeatureCacheStats{
			Hits:      ws.FeatureCache.Hits,
			Misses:    ws.FeatureCache.Misses,
			Evictions: ws.FeatureCache.Evictions,
			Coalesced: ws.FeatureCache.Coalesced,
			HitRate:   ws.FeatureCache.HitRate,
		}
	}
	if ws.FeatureStore != nil {
		out.FeatureStore = &FeatureStoreStats{
			Requests:     ws.FeatureStore.Requests,
			Retries:      ws.FeatureStore.Retries,
			HedgesIssued: ws.FeatureStore.HedgesIssued,
			HedgesWon:    ws.FeatureStore.HedgesWon,
			Degraded:     ws.FeatureStore.Degraded,
			BreakerOpens: ws.FeatureStore.BreakerOpens,
			BreakerState: ws.FeatureStore.BreakerState,
			Inflight:     ws.FeatureStore.Inflight,
			LatencyP50:   time.Duration(ws.FeatureStore.P50MS * float64(time.Millisecond)),
			LatencyP99:   time.Duration(ws.FeatureStore.P99MS * float64(time.Millisecond)),
		}
	}
	if ws.Admission != nil {
		out.Admission = &AdmissionStats{
			SLO:               time.Duration(ws.Admission.SLOMS * float64(time.Millisecond)),
			Limit:             ws.Admission.Limit,
			Inflight:          ws.Admission.Inflight,
			Level:             ws.Admission.Level,
			ShedPredicted:     ws.Admission.ShedPredicted,
			ShedLimit:         ws.Admission.ShedLimit,
			ShedBrownout:      ws.Admission.ShedBrownout,
			Expired:           ws.Admission.Expired,
			DegradedSmallOnly: ws.Admission.DegradedSmallOnly,
			DegradedBudget:    ws.Admission.DegradedBudget,
			DegradedCache:     ws.Admission.DegradedCache,
			ForecastService:   time.Duration(ws.Admission.ForecastServiceMS * float64(time.Millisecond)),
			ForecastError:     time.Duration(ws.Admission.ForecastErrorMS * float64(time.Millisecond)),
			Pressure:          ws.Admission.Pressure,
		}
	}
	if ws.Adaptation != nil {
		out.Adaptation = &AdaptationStats{
			State:            ws.Adaptation.State,
			CanaryTag:        ws.Adaptation.CanaryTag,
			CanaryFraction:   ws.Adaptation.CanaryFraction,
			Sampled:          ws.Adaptation.Sampled,
			ShadowDropped:    ws.Adaptation.ShadowDropped,
			ReservoirRows:    ws.Adaptation.ReservoirRows,
			KeyReuseObserved: ws.Adaptation.KeyReuseObserved,
			KeyReuseExpected: ws.Adaptation.KeyReuseExpected,
			ScorePH:          ws.Adaptation.ScorePH,
			ScoreKS:          ws.Adaptation.ScoreKS,
			KeyDrift:         ws.Adaptation.KeyDrift,
			ScoreDrift:       ws.Adaptation.ScoreDrift,
			KeyDriftEvents:   ws.Adaptation.KeyDriftEvents,
			ScoreDriftEvents: ws.Adaptation.ScoreDriftEvents,
			Refits:           ws.Adaptation.Refits,
			Canaries:         ws.Adaptation.Canaries,
			Promotions:       ws.Adaptation.Promotions,
			Rollbacks:        ws.Adaptation.Rollbacks,
			CanaryErrors:     ws.Adaptation.CanaryErrors,
			LastRollback:     ws.Adaptation.LastRollback,
		}
	}
	return out
}
