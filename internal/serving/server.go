package serving

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"willump/internal/value"
)

// wireColumn is the JSON wire format for one input column.
type wireColumn struct {
	Kind    string    `json:"kind"`
	Strings []string  `json:"strings,omitempty"`
	Floats  []float64 `json:"floats,omitempty"`
	Ints    []int64   `json:"ints,omitempty"`
}

// wireRequest is a prediction RPC request: a batch of raw inputs.
type wireRequest struct {
	Inputs map[string]wireColumn `json:"inputs"`
}

// wireResponse carries predictions or an error.
type wireResponse struct {
	Predictions []float64 `json:"predictions,omitempty"`
	Error       string    `json:"error,omitempty"`
}

func encodeInputs(inputs map[string]value.Value) (map[string]wireColumn, error) {
	out := make(map[string]wireColumn, len(inputs))
	for k, v := range inputs {
		switch v.Kind {
		case value.Strings:
			out[k] = wireColumn{Kind: "strings", Strings: v.Strings}
		case value.Floats:
			out[k] = wireColumn{Kind: "floats", Floats: v.Floats}
		case value.Ints:
			out[k] = wireColumn{Kind: "ints", Ints: v.Ints}
		default:
			return nil, fmt.Errorf("serving: cannot serialize %s column %q", v.Kind, k)
		}
	}
	return out, nil
}

func decodeInputs(cols map[string]wireColumn) (map[string]value.Value, int, error) {
	out := make(map[string]value.Value, len(cols))
	n := -1
	for k, c := range cols {
		var v value.Value
		switch c.Kind {
		case "strings":
			v = value.NewStrings(c.Strings)
		case "floats":
			v = value.NewFloats(c.Floats)
		case "ints":
			v = value.NewInts(c.Ints)
		default:
			return nil, 0, fmt.Errorf("serving: unknown column kind %q", c.Kind)
		}
		if n == -1 {
			n = v.Len()
		} else if v.Len() != n {
			return nil, 0, fmt.Errorf("serving: column %q has %d rows, want %d", k, v.Len(), n)
		}
		out[k] = v
	}
	if n <= 0 {
		return nil, 0, fmt.Errorf("serving: empty request")
	}
	return out, n, nil
}

// Options configures the serving frontend.
type Options struct {
	// MaxBatch bounds adaptive batching: queued requests merge into batches
	// of at most this many rows (default 256).
	MaxBatch int
	// BatchTimeout is how long the batcher waits to fill a batch
	// (default 500us).
	BatchTimeout time.Duration
	// CacheCapacity, when non-zero, enables the end-to-end prediction cache
	// (< 0 for unbounded).
	CacheCapacity int
	// CacheKeyOrder fixes the input-column order for cache keys; required
	// when the cache is enabled.
	CacheKeyOrder []string
}

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 256
	}
	if o.BatchTimeout <= 0 {
		o.BatchTimeout = 500 * time.Microsecond
	}
	return o
}

// Server is the Clipper-like serving frontend.
type Server struct {
	pred Predictor
	opts Options

	queue chan *pending
	http  *http.Server
	ln    net.Listener
	wg    sync.WaitGroup

	// baseCtx is the execution context for merged batches; cancelled only
	// when the server force-closes, so a graceful Shutdown drains in-flight
	// work to completion.
	baseCtx context.Context
	cancel  context.CancelFunc
	// stop tells the batcher to drain whatever is queued and exit.
	stop chan struct{}
	// shutdownDone closes once the first Shutdown/Close finishes draining;
	// concurrent callers block on it and observe shutdownErr.
	shutdownDone chan struct{}
	shutdownErr  error

	requests atomic.Int64
	closed   atomic.Bool
}

type pending struct {
	ctx    context.Context // the originating request's context
	inputs map[string]value.Value
	n      int
	done   chan batchResult
}

type batchResult struct {
	preds []float64
	err   error
}

// NewServer wraps a predictor with the serving frontend.
func NewServer(p Predictor, opts Options) *Server {
	opts = opts.withDefaults()
	if opts.CacheCapacity != 0 {
		capacity := opts.CacheCapacity
		if capacity < 0 {
			capacity = 0 // unbounded LRU
		}
		p = NewCachedPredictor(p, capacity, opts.CacheKeyOrder)
	}
	baseCtx, cancel := context.WithCancel(context.Background())
	return &Server{
		pred:         p,
		opts:         opts,
		queue:        make(chan *pending, 1024),
		baseCtx:      baseCtx,
		cancel:       cancel,
		stop:         make(chan struct{}),
		shutdownDone: make(chan struct{}),
	}
}

// Start listens on 127.0.0.1 (ephemeral port) and launches the batcher.
// It returns the base URL.
func (s *Server) Start() (string, error) {
	return s.StartOn("127.0.0.1:0")
}

// StartOn listens on an explicit address (host:port) and launches the
// batcher; deployment binaries use it to bind a stable serving endpoint.
// It returns the base URL.
func (s *Server) StartOn(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("serving: listen: %w", err)
	}
	s.ln = ln
	mux := http.NewServeMux()
	mux.HandleFunc("/predict", s.handlePredict)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	s.http = &http.Server{Handler: mux}
	s.wg.Add(2)
	go func() {
		defer s.wg.Done()
		s.http.Serve(ln) //nolint:errcheck // Serve always returns on Close
	}()
	go func() {
		defer s.wg.Done()
		s.batcher()
	}()
	return "http://" + ln.Addr().String(), nil
}

// Shutdown gracefully stops the server: new requests are rejected
// immediately, in-flight requests (including any batch the batcher is
// executing) drain to completion, and the batcher exits once the queue is
// empty. The context bounds how long the drain may take; when it expires,
// remaining work is cancelled through the execution context and pending
// waiters receive the cancellation error.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.closed.Swap(true) {
		// Another Shutdown/Close is (or was) draining: wait for it to finish
		// so no caller tears down the hosted predictor's resources early.
		<-s.shutdownDone
		return s.shutdownErr
	}
	// Graceful HTTP drain: waits for in-flight handlers, which in turn wait
	// on the still-running batcher for their results.
	err := s.http.Shutdown(ctx)
	if err != nil {
		// The drain deadline expired with handlers still waiting: cancel the
		// execution context so their batches abort between graph blocks and
		// straggling handlers stop waiting on the batcher.
		s.cancel()
	}
	// Tell the batcher to drain the queue and exit, then wait for it and the
	// HTTP serve loop.
	close(s.stop)
	s.wg.Wait()
	s.cancel()
	s.shutdownErr = err
	close(s.shutdownDone)
	return err
}

// Close shuts the server down, draining in-flight batches without a
// deadline.
func (s *Server) Close() error {
	return s.Shutdown(context.Background())
}

// Requests returns the number of RPC requests served.
func (s *Server) Requests() int64 { return s.requests.Load() }

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if s.closed.Load() {
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("serving: server shutting down"))
		return
	}
	s.requests.Add(1)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var req wireRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	inputs, n, err := decodeInputs(req.Inputs)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	p := &pending{ctx: r.Context(), inputs: inputs, n: n, done: make(chan batchResult, 1)}
	select {
	case s.queue <- p:
	default:
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("serving: queue full"))
		return
	}
	// p.done is buffered, so the batcher never blocks on an abandoned waiter.
	select {
	case res := <-p.done:
		if res.err != nil {
			writeError(w, http.StatusInternalServerError, res.err)
			return
		}
		json.NewEncoder(w).Encode(wireResponse{Predictions: res.preds}) //nolint:errcheck
	case <-p.ctx.Done():
		// The client went away or its deadline expired; the batcher will
		// notice the dead context when it reaches this request.
		writeError(w, http.StatusServiceUnavailable, p.ctx.Err())
	case <-s.baseCtx.Done():
		// Force-close: a Shutdown deadline expired and the batcher may have
		// exited without reaching this request. Don't wait for a result that
		// may never come.
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("serving: server shutting down"))
	}
}

func writeError(w http.ResponseWriter, code int, err error) {
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(wireResponse{Error: err.Error()}) //nolint:errcheck
}

// batcher implements adaptive batching: drain every request already queued
// (without waiting — a lone request must not pay a batching delay), then
// wait up to BatchTimeout for more only while work keeps arriving, execute
// the merged batch once, and scatter results back to waiters (Clipper's
// core serving loop). Requests whose contexts are already dead are answered
// with the context error instead of joining a batch. On shutdown the batcher
// drains everything still queued before exiting.
func (s *Server) batcher() {
	for {
		var first *pending
		select {
		case first = <-s.queue:
		case <-s.stop:
			// Shutdown: serve whatever is still queued, then exit.
			for {
				select {
				case p := <-s.queue:
					s.runBatch([]*pending{p})
				default:
					return
				}
			}
		}
		if first.ctx.Err() != nil {
			first.done <- batchResult{err: first.ctx.Err()}
			continue
		}
		batch := []*pending{first}
		rows := first.n
		// Non-blocking drain: take whatever is queued right now.
	drain:
		for rows < s.opts.MaxBatch {
			select {
			case p := <-s.queue:
				batch, rows = appendLive(batch, rows, p)
			default:
				break drain
			}
		}
		// If we found concurrent work, wait briefly for stragglers.
		if len(batch) > 1 && rows < s.opts.MaxBatch {
			deadline := time.NewTimer(s.opts.BatchTimeout)
		fill:
			for rows < s.opts.MaxBatch {
				select {
				case p := <-s.queue:
					batch, rows = appendLive(batch, rows, p)
				case <-deadline.C:
					break fill
				case <-s.stop:
					break fill
				}
			}
			deadline.Stop()
		}
		s.runBatch(batch)
	}
}

// requestCtx derives the execution context for a lone request: cancelled
// when either the request's own context or the server's base context dies.
func (s *Server) requestCtx(p *pending) (context.Context, context.CancelFunc) {
	if p.ctx == nil {
		return s.baseCtx, func() {}
	}
	ctx, cancel := context.WithCancel(p.ctx)
	detach := context.AfterFunc(s.baseCtx, cancel)
	return ctx, func() { detach(); cancel() }
}

// appendLive adds p to the batch unless its request context is already dead,
// in which case the waiter is answered immediately.
func appendLive(batch []*pending, rows int, p *pending) ([]*pending, int) {
	if err := p.ctx.Err(); err != nil {
		p.done <- batchResult{err: err}
		return batch, rows
	}
	return append(batch, p), rows + p.n
}

// runBatch merges the batch's inputs, predicts once under the server's
// execution context, and distributes results to the waiters.
func (s *Server) runBatch(batch []*pending) {
	if len(batch) == 0 {
		return
	}
	if len(batch) == 1 {
		// A lone request executes under its own context, so client
		// cancellation aborts the prediction itself. A server force-close
		// (expired Shutdown deadline) also cancels it via the base context.
		ctx, cancel := s.requestCtx(batch[0])
		preds, err := s.pred.PredictBatch(ctx, batch[0].inputs)
		cancel()
		batch[0].done <- batchResult{preds: preds, err: err}
		return
	}
	// Merge columns in the first request's key set.
	merged := make(map[string][]value.Value)
	for _, p := range batch {
		for k, v := range p.inputs {
			merged[k] = append(merged[k], v)
		}
	}
	inputs := make(map[string]value.Value, len(merged))
	for k, vs := range merged {
		cat, err := concatValues(vs)
		if err != nil {
			for _, p := range batch {
				p.done <- batchResult{err: err}
			}
			return
		}
		inputs[k] = cat
	}
	// A merged batch serves several independent requests, so one client's
	// cancellation must not abort the others: execute under the server's
	// context, which only a force-close cancels.
	preds, err := s.pred.PredictBatch(s.baseCtx, inputs)
	if err != nil {
		for _, p := range batch {
			p.done <- batchResult{err: err}
		}
		return
	}
	off := 0
	for _, p := range batch {
		p.done <- batchResult{preds: preds[off : off+p.n]}
		off += p.n
	}
}

func concatValues(vs []value.Value) (value.Value, error) {
	if len(vs) == 1 {
		return vs[0], nil
	}
	switch vs[0].Kind {
	case value.Strings:
		var out []string
		for _, v := range vs {
			out = append(out, v.Strings...)
		}
		return value.NewStrings(out), nil
	case value.Floats:
		var out []float64
		for _, v := range vs {
			out = append(out, v.Floats...)
		}
		return value.NewFloats(out), nil
	case value.Ints:
		var out []int64
		for _, v := range vs {
			out = append(out, v.Ints...)
		}
		return value.NewInts(out), nil
	default:
		return value.Value{}, fmt.Errorf("serving: cannot merge %s columns", vs[0].Kind)
	}
}

// Client is an RPC client for a serving frontend.
type Client struct {
	base string
	http *http.Client
}

// NewClient returns a client for the server at base URL.
func NewClient(base string) *Client {
	return &Client{base: base, http: &http.Client{Timeout: 30 * time.Second}}
}

// Predict sends one prediction RPC carrying a batch of raw inputs. The
// context's cancellation or deadline propagates to the server, which aborts
// the queued or in-flight work for this request.
func (c *Client) Predict(ctx context.Context, inputs map[string]value.Value) ([]float64, error) {
	cols, err := encodeInputs(inputs)
	if err != nil {
		return nil, err
	}
	body, err := json.Marshal(wireRequest{Inputs: cols})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/predict", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("serving: rpc: %w", err)
	}
	defer resp.Body.Close()
	var wire wireResponse
	if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
		return nil, fmt.Errorf("serving: decoding response: %w", err)
	}
	if wire.Error != "" {
		return nil, fmt.Errorf("serving: server error: %s", wire.Error)
	}
	return wire.Predictions, nil
}
