package serving

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"willump/internal/value"
)

// wireColumn is the JSON wire format for one input column.
type wireColumn struct {
	Kind    string    `json:"kind"`
	Strings []string  `json:"strings,omitempty"`
	Floats  []float64 `json:"floats,omitempty"`
	Ints    []int64   `json:"ints,omitempty"`
}

// wireRequest is a prediction RPC request: a batch of raw inputs.
type wireRequest struct {
	Inputs map[string]wireColumn `json:"inputs"`
}

// wireResponse carries predictions or an error.
type wireResponse struct {
	Predictions []float64 `json:"predictions,omitempty"`
	Error       string    `json:"error,omitempty"`
}

func encodeInputs(inputs map[string]value.Value) (map[string]wireColumn, error) {
	out := make(map[string]wireColumn, len(inputs))
	for k, v := range inputs {
		switch v.Kind {
		case value.Strings:
			out[k] = wireColumn{Kind: "strings", Strings: v.Strings}
		case value.Floats:
			out[k] = wireColumn{Kind: "floats", Floats: v.Floats}
		case value.Ints:
			out[k] = wireColumn{Kind: "ints", Ints: v.Ints}
		default:
			return nil, fmt.Errorf("serving: cannot serialize %s column %q", v.Kind, k)
		}
	}
	return out, nil
}

func decodeInputs(cols map[string]wireColumn) (map[string]value.Value, int, error) {
	out := make(map[string]value.Value, len(cols))
	n := -1
	for k, c := range cols {
		var v value.Value
		switch c.Kind {
		case "strings":
			v = value.NewStrings(c.Strings)
		case "floats":
			v = value.NewFloats(c.Floats)
		case "ints":
			v = value.NewInts(c.Ints)
		default:
			return nil, 0, fmt.Errorf("serving: unknown column kind %q", c.Kind)
		}
		if n == -1 {
			n = v.Len()
		} else if v.Len() != n {
			return nil, 0, fmt.Errorf("serving: column %q has %d rows, want %d", k, v.Len(), n)
		}
		out[k] = v
	}
	if n <= 0 {
		return nil, 0, fmt.Errorf("serving: empty request")
	}
	return out, n, nil
}

// Options configures the serving frontend.
type Options struct {
	// MaxBatch bounds adaptive batching: queued requests merge into batches
	// of at most this many rows (default 256).
	MaxBatch int
	// BatchTimeout is how long the batcher waits to fill a batch
	// (default 500us).
	BatchTimeout time.Duration
	// CacheCapacity, when non-zero, enables the end-to-end prediction cache
	// (< 0 for unbounded).
	CacheCapacity int
	// CacheKeyOrder fixes the input-column order for cache keys; required
	// when the cache is enabled.
	CacheKeyOrder []string
}

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 256
	}
	if o.BatchTimeout <= 0 {
		o.BatchTimeout = 500 * time.Microsecond
	}
	return o
}

// Server is the Clipper-like serving frontend.
type Server struct {
	pred Predictor
	opts Options

	queue chan *pending
	http  *http.Server
	ln    net.Listener
	wg    sync.WaitGroup

	requests atomic.Int64
	closed   atomic.Bool
}

type pending struct {
	inputs map[string]value.Value
	n      int
	done   chan batchResult
}

type batchResult struct {
	preds []float64
	err   error
}

// NewServer wraps a predictor with the serving frontend.
func NewServer(p Predictor, opts Options) *Server {
	opts = opts.withDefaults()
	if opts.CacheCapacity != 0 {
		capacity := opts.CacheCapacity
		if capacity < 0 {
			capacity = 0 // unbounded LRU
		}
		p = NewCachedPredictor(p, capacity, opts.CacheKeyOrder)
	}
	return &Server{
		pred:  p,
		opts:  opts,
		queue: make(chan *pending, 1024),
	}
}

// Start listens on 127.0.0.1 (ephemeral port) and launches the batcher.
// It returns the base URL.
func (s *Server) Start() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", fmt.Errorf("serving: listen: %w", err)
	}
	s.ln = ln
	mux := http.NewServeMux()
	mux.HandleFunc("/predict", s.handlePredict)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	s.http = &http.Server{Handler: mux}
	s.wg.Add(2)
	go func() {
		defer s.wg.Done()
		s.http.Serve(ln) //nolint:errcheck // Serve always returns on Close
	}()
	go func() {
		defer s.wg.Done()
		s.batcher()
	}()
	return "http://" + ln.Addr().String(), nil
}

// Close shuts the server down.
func (s *Server) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	err := s.http.Close()
	close(s.queue)
	s.wg.Wait()
	return err
}

// Requests returns the number of RPC requests served.
func (s *Server) Requests() int64 { return s.requests.Load() }

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var req wireRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	inputs, n, err := decodeInputs(req.Inputs)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	p := &pending{inputs: inputs, n: n, done: make(chan batchResult, 1)}
	select {
	case s.queue <- p:
	default:
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("serving: queue full"))
		return
	}
	res := <-p.done
	if res.err != nil {
		writeError(w, http.StatusInternalServerError, res.err)
		return
	}
	json.NewEncoder(w).Encode(wireResponse{Predictions: res.preds}) //nolint:errcheck
}

func writeError(w http.ResponseWriter, code int, err error) {
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(wireResponse{Error: err.Error()}) //nolint:errcheck
}

// batcher implements adaptive batching: drain every request already queued
// (without waiting — a lone request must not pay a batching delay), then
// wait up to BatchTimeout for more only while work keeps arriving, execute
// the merged batch once, and scatter results back to waiters (Clipper's
// core serving loop).
func (s *Server) batcher() {
	for first := range s.queue {
		batch := []*pending{first}
		rows := first.n
		// Non-blocking drain: take whatever is queued right now.
	drain:
		for rows < s.opts.MaxBatch {
			select {
			case p, ok := <-s.queue:
				if !ok {
					break drain
				}
				batch = append(batch, p)
				rows += p.n
			default:
				break drain
			}
		}
		// If we found concurrent work, wait briefly for stragglers.
		if len(batch) > 1 && rows < s.opts.MaxBatch {
			deadline := time.NewTimer(s.opts.BatchTimeout)
		fill:
			for rows < s.opts.MaxBatch {
				select {
				case p, ok := <-s.queue:
					if !ok {
						break fill
					}
					batch = append(batch, p)
					rows += p.n
				case <-deadline.C:
					break fill
				}
			}
			deadline.Stop()
		}
		s.runBatch(batch)
	}
}

// runBatch merges the batch's inputs, predicts once, and distributes.
func (s *Server) runBatch(batch []*pending) {
	if len(batch) == 1 {
		preds, err := s.pred.PredictBatch(batch[0].inputs)
		batch[0].done <- batchResult{preds: preds, err: err}
		return
	}
	// Merge columns in the first request's key set.
	merged := make(map[string][]value.Value)
	for _, p := range batch {
		for k, v := range p.inputs {
			merged[k] = append(merged[k], v)
		}
	}
	inputs := make(map[string]value.Value, len(merged))
	for k, vs := range merged {
		cat, err := concatValues(vs)
		if err != nil {
			for _, p := range batch {
				p.done <- batchResult{err: err}
			}
			return
		}
		inputs[k] = cat
	}
	preds, err := s.pred.PredictBatch(inputs)
	if err != nil {
		for _, p := range batch {
			p.done <- batchResult{err: err}
		}
		return
	}
	off := 0
	for _, p := range batch {
		p.done <- batchResult{preds: preds[off : off+p.n]}
		off += p.n
	}
}

func concatValues(vs []value.Value) (value.Value, error) {
	if len(vs) == 1 {
		return vs[0], nil
	}
	switch vs[0].Kind {
	case value.Strings:
		var out []string
		for _, v := range vs {
			out = append(out, v.Strings...)
		}
		return value.NewStrings(out), nil
	case value.Floats:
		var out []float64
		for _, v := range vs {
			out = append(out, v.Floats...)
		}
		return value.NewFloats(out), nil
	case value.Ints:
		var out []int64
		for _, v := range vs {
			out = append(out, v.Ints...)
		}
		return value.NewInts(out), nil
	default:
		return value.Value{}, fmt.Errorf("serving: cannot merge %s columns", vs[0].Kind)
	}
}

// Client is an RPC client for a serving frontend.
type Client struct {
	base string
	http *http.Client
}

// NewClient returns a client for the server at base URL.
func NewClient(base string) *Client {
	return &Client{base: base, http: &http.Client{Timeout: 30 * time.Second}}
}

// Predict sends one prediction RPC carrying a batch of raw inputs.
func (c *Client) Predict(inputs map[string]value.Value) ([]float64, error) {
	cols, err := encodeInputs(inputs)
	if err != nil {
		return nil, err
	}
	body, err := json.Marshal(wireRequest{Inputs: cols})
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Post(c.base+"/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("serving: rpc: %w", err)
	}
	defer resp.Body.Close()
	var wire wireResponse
	if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
		return nil, fmt.Errorf("serving: decoding response: %w", err)
	}
	if wire.Error != "" {
		return nil, fmt.Errorf("serving: server error: %s", wire.Error)
	}
	return wire.Predictions, nil
}
