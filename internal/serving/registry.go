package serving

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"willump/internal/adapt"
	"willump/internal/admission"
	"willump/internal/core"
	"willump/internal/metrics"
	"willump/internal/trace"
	"willump/internal/value"
	"willump/internal/weld"
)

// ErrOverloaded reports that a model's bounded request queue was full and
// admission control turned the request away (HTTP 429 on the wire). It is
// retryable: the queue drains at the model's service rate, so backing off
// and retrying is the correct client response.
var ErrOverloaded = errors.New("serving: server overloaded")

// ErrModelNotFound reports that no deployed model matches the requested
// name (HTTP 404 on the wire).
var ErrModelNotFound = errors.New("serving: model not found")

// errVersionStopped is the internal signal that an enqueue raced a version
// swap; the caller re-resolves the active version and retries.
var errVersionStopped = errors.New("serving: model version draining")

// Registry hosts many named, versioned models behind one serving frontend.
// Each deployed version owns a bounded request queue and an adaptive
// batcher; Deploy atomically swaps a model's active version while the old
// version's batcher drains its in-flight work, so a hot swap loses no
// requests. A Registry is hosted by (at most) one Server, whose Shutdown
// closes it.
type Registry struct {
	opts Options

	mu          sync.RWMutex
	models      map[string]*Hosted
	defaultName string
	closed      bool
	// retired stashes undeployed models' admission-controller state by
	// name: a later redeploy under the same name re-primes its fresh
	// controller from the retired forecast instead of reopening the
	// cold-start admit-everything window.
	retired map[string]admission.State

	// baseCtx is the execution context for batch prediction; cancelled only
	// on force-close, so graceful drains run work to completion.
	baseCtx context.Context
	cancel  context.CancelFunc
	// batchers tracks every version's batcher goroutine, including versions
	// already swapped out but still draining.
	batchers sync.WaitGroup
}

// NewRegistry returns an empty registry. opts supplies the serving defaults
// (batch bounds, queue depth, prediction cache) applied to every deployed
// model.
func NewRegistry(opts Options) *Registry {
	baseCtx, cancel := context.WithCancel(context.Background())
	return &Registry{
		opts:    opts.withDefaults(),
		models:  make(map[string]*Hosted),
		retired: make(map[string]admission.State),
		baseCtx: baseCtx,
		cancel:  cancel,
	}
}

// Hosted is one named model: an atomically swappable active version plus
// telemetry that survives swaps.
type Hosted struct {
	name   string
	active atomic.Pointer[version]
	stats  *modelStats
	// direct bounds concurrent direct-path requests (per-request options,
	// top-K) the same way the queue bounds batched ones: admission control
	// applies to every route, not just the batcher.
	direct chan struct{}
	// admit is the model's SLO controller: service-time forecast,
	// predictive shedding, adaptive concurrency limit, and the brownout
	// ladder. Like stats, it lives on the Hosted model so forecasts and
	// counters survive hot swaps. Always non-nil; disabled (SLO zero) it
	// admits everything and only counts expired pendings.
	admit *admission.Controller

	// canary is the guarded candidate version a bounded fraction of
	// batchable traffic routes to (nil outside canary rollouts).
	// canaryPermille is that fraction in thousandths of requests;
	// routeTick spreads routing decisions deterministically so the canary
	// sees exactly its share under any arrival order.
	canary         atomic.Pointer[version]
	canaryPermille atomic.Int64
	routeTick      atomic.Uint64

	// adaptCtl is the model's online adaptation controller when enabled
	// (EnableAdaptation); adaptCfg keeps its configuration for restarts
	// across operator deploys, guarded by the registry mutex.
	adaptCtl atomic.Pointer[adapt.Controller]
	adaptCfg *adapt.Config
}

// route picks the serving arm for one batchable request: the canary when
// one is live and the request's slot falls inside its traffic fraction,
// the active version otherwise.
func (h *Hosted) route() *version {
	c := h.canary.Load()
	if c == nil {
		return h.active.Load()
	}
	pm := h.canaryPermille.Load()
	if pm > 0 && int64(h.routeTick.Add(1)%1000) < pm {
		return c
	}
	return h.active.Load()
}

// enqueueTo admits p to the routed version, falling back to the model's
// active version when the routed arm is draining (a canary resolved
// between routing and enqueue) — a request never fails because a canary
// ended underneath it. The fallback keeps the admission slot acquired on
// the routed arm's controller (the caller's Release pairs with that
// Admit), so for the instant of canary resolution the work runs on the
// active arm while the drained arm's controller carries the inflight
// accounting and service-time observation: a bounded one-request skew
// that self-corrects on Release, preferable to double-admitting or
// failing the request.
func (h *Hosted) enqueueTo(v *version, p *pending) error {
	if v != nil {
		if err := v.enqueue(p); !errors.Is(err, errVersionStopped) {
			return err
		}
	}
	return h.enqueue(p)
}

// queueLen reports the active version's current queue depth (0 when the
// model is undeployed) — the backlog the admission controller's queueing
// model prices.
func (h *Hosted) queueLen() int {
	if v := h.active.Load(); v != nil {
		return len(v.queue)
	}
	return 0
}

// tracer returns the active version's request tracer, or nil when the
// model is a black box, undeployed, or tracing is disabled. Safe to call on
// every request: trace.Tracer methods are nil-receiver no-ops.
func (h *Hosted) tracer() *trace.Tracer {
	if v := h.active.Load(); v != nil && v.opt != nil {
		return v.opt.Tracer()
	}
	return nil
}

// admitDirect reserves a direct-execution slot; the caller must release().
func (h *Hosted) admitDirect() (release func(), err error) {
	select {
	case h.direct <- struct{}{}:
		return func() { <-h.direct }, nil
	default:
		return nil, ErrOverloaded
	}
}

// version is one immutable deployed model version with its own request
// queue and adaptive batcher.
type version struct {
	model  string
	tag    string
	opt    *core.Optimized // nil when hosting a black-box Predictor
	pred   Predictor       // default batch path (cache-wrapped when enabled)
	inputs []string
	opts   Options
	stats  *modelStats
	// admit is the arm's admission controller: the Hosted model's for
	// versions installed by Deploy, a private controller (primed from the
	// incumbent's forecast) for canaries, so a misbehaving candidate sheds
	// its own traffic slice without dragging the incumbent's forecast.
	admit *admission.Controller
	// guard is the arm's canary-guard telemetry: per-version request
	// outcomes, latency, cascade routing, and sheds (unlike modelStats,
	// which lives on the Hosted model and spans both arms).
	guard *guardStats
	// predSmall is the brownout degrade path: cascade small-model-only
	// scoring. Nil unless the pipeline deploys a cascade. Deliberately not
	// cache-wrapped — a degraded answer cached as a normal one would leak
	// into full-fidelity traffic after the brownout clears.
	predSmall Predictor
	// cache is the end-to-end prediction cache when enabled (pred wraps
	// it); the brownout cache-only rung peeks it directly.
	cache *CachedPredictor

	queue chan *pending
	stop  chan struct{} // closed to begin the drain
	done  chan struct{} // closed when the batcher has exited

	// mu fences enqueues against the swap: once stopped is set under the
	// write lock, no further request can slip into the queue, so the
	// batcher's final drain pass observes everything.
	mu      sync.RWMutex
	stopped bool

	// Batcher-owned merge scratch, reused across batches; the batcher
	// goroutine is its only user and every prediction completes before the
	// next batch is assembled.
	mergeCols  map[string][]value.Value
	mergeInput map[string]value.Value

	baseCtx context.Context
}

// guardStats is one serving arm's guard telemetry, judged by the
// adaptation controller as counter deltas from a canary's start.
type guardStats struct {
	requests atomic.Int64
	errors   atomic.Int64
	sheds    atomic.Int64

	latencies *metrics.Window // milliseconds, end-to-end from enqueue

	cascadeTotal atomic.Int64
	cascadeSmall atomic.Int64
}

func newGuardStats() *guardStats {
	return &guardStats{latencies: metrics.NewWindow(512)}
}

// record accounts one completed request on this arm.
func (g *guardStats) record(d time.Duration, err error) {
	g.requests.Add(1)
	g.latencies.Observe(float64(d) / float64(time.Millisecond))
	if err != nil {
		g.errors.Add(1)
	}
}

// guardSnapshot assembles the arm's adapt.Guard: outcome counters plus
// the windowed p99 and the arm's own feature-cache counters (canary
// pipelines clone their caches, so hit rates are genuinely per-arm).
func (v *version) guardSnapshot() adapt.Guard {
	g := adapt.Guard{
		Requests:     v.guard.requests.Load(),
		Errors:       v.guard.errors.Load(),
		Sheds:        v.guard.sheds.Load(),
		CascadeTotal: v.guard.cascadeTotal.Load(),
		CascadeSmall: v.guard.cascadeSmall.Load(),
	}
	g.P99 = time.Duration(v.guard.latencies.Quantiles(99)[0] * float64(time.Millisecond))
	if v.opt != nil {
		if cs, ok := v.opt.FeatureCacheStats(); ok {
			g.CacheHits, g.CacheMisses = cs.Hits, cs.Misses
		}
	}
	return g
}

// Deploy installs version tag of the optimized pipeline under name,
// atomically replacing any previously active version. The old version's
// batcher keeps running until its queued work drains, so requests in flight
// across the swap complete on the version that admitted them. The first
// model deployed becomes the registry default (the legacy /predict route).
func (r *Registry) Deploy(name, tag string, o *core.Optimized) error {
	if o == nil {
		return fmt.Errorf("serving: deploying %q: nil optimized pipeline", name)
	}
	if err := r.deploy(name, tag, o, nil, o.Inputs()); err != nil {
		return err
	}
	// An operator deploy invalidates the adaptation controller's incumbent
	// and displaces any canary it was judging: restart adaptation on the
	// new pipeline when the model had it enabled.
	r.readaptAfterDeploy(name, o)
	return nil
}

// DeployPredictor installs a black-box batch predictor under name. inputs
// is its request schema for describe routes and cache keys (may be nil).
// Black-box models serve default and deadline-bounded requests; requests
// overriding cascade thresholds or top-K budgets are rejected, since the
// registry cannot see inside the predictor.
func (r *Registry) DeployPredictor(name, tag string, p Predictor, inputs []string) error {
	if p == nil {
		return fmt.Errorf("serving: deploying %q: nil predictor", name)
	}
	if err := r.deploy(name, tag, nil, p, inputs); err != nil {
		return err
	}
	// Adaptation needs an optimized pipeline to re-fit; a black-box deploy
	// under an adapted name turns the controller off.
	r.mu.RLock()
	h, ok := r.models[name]
	adapted := ok && h.adaptCfg != nil
	r.mu.RUnlock()
	if adapted {
		r.DisableAdaptation(name) //nolint:errcheck // model just deployed
	}
	return nil
}

func validName(name string) error {
	if name == "" {
		return fmt.Errorf("serving: empty model name")
	}
	if strings.ContainsAny(name, "/ \t\n") {
		return fmt.Errorf("serving: model name %q may not contain slashes or whitespace", name)
	}
	return nil
}

func (r *Registry) deploy(name, tag string, o *core.Optimized, p Predictor, inputs []string) error {
	if err := validName(name); err != nil {
		return err
	}
	if tag == "" {
		return fmt.Errorf("serving: deploying %q: empty version tag", name)
	}
	if r.opts.CacheCapacity != 0 && len(r.opts.CacheKeyOrder) == 0 && len(inputs) == 0 {
		// Detectable now, fatal later: a keyless cache would fail every
		// prediction at request time.
		return fmt.Errorf("serving: deploying %q: prediction cache enabled but no cache key columns (set CacheKeyOrder or deploy a pipeline with a known input schema)", name)
	}

	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return fmt.Errorf("serving: registry is closed")
	}
	h, ok := r.models[name]
	if !ok {
		h = &Hosted{
			name:   name,
			stats:  newModelStats(),
			direct: make(chan struct{}, r.opts.QueueDepth),
			admit: admission.New(admission.Config{
				SLO:      r.opts.SLOTargetP99,
				Brownout: r.opts.Brownout,
			}),
		}
		if st, stashed := r.retired[name]; stashed {
			// Redeploy after an undeploy: re-prime the fresh controller
			// from the retired one's final forecast so the swap never
			// reopens the cold-start admit-everything window.
			h.admit.Reprime(st)
			delete(r.retired, name)
		}
		r.models[name] = h
		if r.defaultName == "" {
			r.defaultName = name
		}
	}
	v := &version{
		model:   name,
		tag:     tag,
		opt:     o,
		inputs:  append([]string(nil), inputs...),
		opts:    r.opts,
		stats:   h.stats,
		admit:   h.admit,
		guard:   newGuardStats(),
		queue:   make(chan *pending, r.opts.QueueDepth),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		baseCtx: r.baseCtx,
	}
	v.pred = v.buildPredictor(o, p)
	v.predSmall = v.buildSmallPredictor(o)
	r.batchers.Add(1)
	go func() {
		defer r.batchers.Done()
		defer close(v.done)
		v.batcher()
	}()
	old := h.active.Swap(v)
	r.mu.Unlock()

	if old != nil {
		old.beginDrain()
	}
	return nil
}

// buildPredictor assembles the version's default batch path: the optimized
// pipeline's zero-option entry point (recording cascade serve stats) or the
// supplied black box, wrapped in a per-version prediction cache when the
// registry enables one.
func (v *version) buildPredictor(o *core.Optimized, p Predictor) Predictor {
	var pred Predictor
	if o != nil {
		stats, guard := v.stats, v.guard
		pred = PredictorFunc(func(ctx context.Context, inputs map[string]value.Value) ([]float64, error) {
			preds, cs, err := o.PredictBatchOptions(ctx, inputs, core.PredictOptions{})
			if err == nil {
				stats.recordCascade(cs)
				guard.cascadeTotal.Add(int64(cs.Total))
				guard.cascadeSmall.Add(int64(cs.SmallOnly))
			}
			return preds, err
		})
	} else {
		pred = p
	}
	if v.opts.CacheCapacity != 0 {
		capacity := v.opts.CacheCapacity
		if capacity < 0 {
			capacity = 0 // unbounded LRU
		}
		keys := v.opts.CacheKeyOrder
		if len(keys) == 0 {
			keys = v.inputs
		}
		cached := NewCachedPredictor(pred, capacity, keys)
		v.cache = cached
		pred = cached
	}
	return pred
}

// buildSmallPredictor assembles the brownout degrade path: the cascade's
// small model answering every row (threshold 0, the full model never
// runs). Nil when the deployment has no cascade to degrade to.
func (v *version) buildSmallPredictor(o *core.Optimized) Predictor {
	if o == nil || o.Cascade == nil {
		return nil
	}
	stats, guard := v.stats, v.guard
	return PredictorFunc(func(ctx context.Context, inputs map[string]value.Value) ([]float64, error) {
		preds, cs, err := o.PredictBatchOptions(ctx, inputs, core.PredictOptions{SmallOnly: true})
		if err == nil {
			stats.recordCascade(cs)
			guard.cascadeTotal.Add(int64(cs.Total))
			guard.cascadeSmall.Add(int64(cs.SmallOnly))
		}
		return preds, err
	})
}

// Undeploy removes a model from the registry. Its active version drains in
// the background; requests already admitted complete, new requests 404.
// The model's admission-controller state is stashed so a redeploy under
// the same name re-primes instead of starting cold, its adaptation
// controller stops, and any in-flight canary drains.
func (r *Registry) Undeploy(name string) error {
	r.mu.Lock()
	h, ok := r.models[name]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("serving: undeploy %q: %w", name, ErrModelNotFound)
	}
	delete(r.models, name)
	if r.defaultName == name {
		r.defaultName = ""
	}
	if h.admit.Primed() {
		r.retired[name] = h.admit.State()
	}
	ctl := h.adaptCtl.Swap(nil)
	h.adaptCfg = nil
	r.mu.Unlock()

	if ctl != nil {
		ctl.Close()
	}
	h.canaryPermille.Store(0)
	if c := h.canary.Swap(nil); c != nil {
		c.beginDrain()
	}
	if v := h.active.Swap(nil); v != nil {
		v.beginDrain()
	}
	return nil
}

// SetDefault designates the model served by the legacy /predict route.
func (r *Registry) SetDefault(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.models[name]; !ok {
		return fmt.Errorf("serving: set default %q: %w", name, ErrModelNotFound)
	}
	r.defaultName = name
	return nil
}

// lookup resolves a model by name; the empty name resolves the default.
func (r *Registry) lookup(name string) (*Hosted, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if name == "" {
		name = r.defaultName
		if name == "" {
			return nil, fmt.Errorf("serving: no default model deployed: %w", ErrModelNotFound)
		}
	}
	h, ok := r.models[name]
	if !ok {
		return nil, fmt.Errorf("serving: model %q: %w", name, ErrModelNotFound)
	}
	return h, nil
}

// ModelInfo describes one deployed model, as reported on /v1/models.
type ModelInfo struct {
	// Name and Version identify the active deployment.
	Name    string
	Version string
	// Default marks the model behind the legacy /predict route.
	Default bool
	// Inputs is the request schema: the pipeline's raw input column names.
	Inputs []string
	// Cascade reports whether an end-to-end cascade is deployed, and
	// CascadeThreshold its Optimize-time confidence threshold.
	Cascade          bool
	CascadeThreshold float64
	// TopK reports whether the model answers /topk queries.
	TopK bool
}

// Models lists the deployed models, sorted by name.
func (r *Registry) Models() []ModelInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]ModelInfo, 0, len(r.models))
	for name, h := range r.models {
		v := h.active.Load()
		if v == nil {
			continue
		}
		out = append(out, v.info(name == r.defaultName))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (v *version) info(isDefault bool) ModelInfo {
	mi := ModelInfo{
		Name:    v.model,
		Version: v.tag,
		Default: isDefault,
		Inputs:  append([]string(nil), v.inputs...),
	}
	if v.opt != nil {
		if v.opt.Cascade != nil {
			mi.Cascade = true
			mi.CascadeThreshold = v.opt.Cascade.Threshold
		}
		mi.TopK = v.opt.Filter != nil
	}
	return mi
}

// Stats snapshots a model's serving telemetry, including the active
// version's feature-level cache counters when its pipeline carries caches.
func (r *Registry) Stats(name string) (ModelStats, error) {
	h, err := r.lookup(name)
	if err != nil {
		return ModelStats{}, err
	}
	tag := ""
	var fc *FeatureCacheStats
	var fs *FeatureStoreStats
	if v := h.active.Load(); v != nil {
		tag = v.tag
		if v.opt != nil {
			if cs, ok := v.opt.FeatureCacheStats(); ok {
				fc = &FeatureCacheStats{
					Hits:      cs.Hits,
					Misses:    cs.Misses,
					Evictions: cs.Evictions,
					Coalesced: cs.Coalesced,
					HitRate:   cs.HitRate(),
				}
			}
			if ss, ok := v.opt.FeatureStoreStats(); ok {
				fs = &FeatureStoreStats{
					Requests:     ss.Requests,
					Retries:      ss.Retries,
					HedgesIssued: ss.HedgesIssued,
					HedgesWon:    ss.HedgesWon,
					Degraded:     ss.Degraded,
					BreakerOpens: ss.BreakerOpens,
					BreakerState: ss.BreakerState,
					Inflight:     ss.Inflight,
					LatencyP50:   time.Duration(ss.P50Millis * float64(time.Millisecond)),
					LatencyP99:   time.Duration(ss.P99Millis * float64(time.Millisecond)),
				}
			}
		}
	}
	ms := h.stats.snapshot(h.name, tag)
	ms.FeatureCache = fc
	ms.FeatureStore = fs
	ms.Admission = admissionStats(h.admit)
	if ctl := h.adaptCtl.Load(); ctl != nil {
		ms.Adaptation = adaptationStats(ctl)
	}
	for _, s := range h.tracer().Slow() {
		ms.RecentSlow = append(ms.RecentSlow, SlowQuery{
			Start:   s.Start,
			Latency: s.Total,
			Err:     s.Err,
			Sampled: s.Sampled,
		})
	}
	return ms, nil
}

// LiveProfile snapshots the shadow profile the named model's active
// pipeline accumulated from traced production traffic: per-node costs
// measured on live requests, in the same form the Optimize-time cost model
// uses — the continuous-profiling feedback loop. It errors for black-box
// deployments and for pipelines without tracing enabled.
func (r *Registry) LiveProfile(name string) (*weld.Profile, error) {
	h, err := r.lookup(name)
	if err != nil {
		return nil, err
	}
	v := h.active.Load()
	if v == nil || v.opt == nil {
		return nil, fmt.Errorf("serving: model %q has no optimized pipeline deployed: %w", h.name, ErrModelNotFound)
	}
	lp := v.opt.LiveProfile()
	if lp == nil {
		return nil, fmt.Errorf("serving: model %q: tracing (shadow profiling) is not enabled", h.name)
	}
	return lp, nil
}

// hostedModels returns the deployed models sorted by name, for the
// observability handlers (/metrics, /v1/traces) that sweep every model.
func (r *Registry) hostedModels() []*Hosted {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Hosted, 0, len(r.models))
	for _, h := range r.models {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Close drains every deployed version's batcher and closes the registry
// against further deploys. ctx bounds the drain; when it expires, remaining
// work is cancelled through the execution context and Close keeps waiting
// for the (now rapidly exiting) batchers.
func (r *Registry) Close(ctx context.Context) error {
	r.mu.Lock()
	r.closed = true
	var active []*version
	var ctls []*adapt.Controller
	for _, h := range r.models {
		if ctl := h.adaptCtl.Swap(nil); ctl != nil {
			ctls = append(ctls, ctl)
		}
		h.canaryPermille.Store(0)
		if c := h.canary.Swap(nil); c != nil {
			active = append(active, c)
		}
		if v := h.active.Load(); v != nil {
			active = append(active, v)
		}
	}
	r.mu.Unlock()

	// Stop adaptation first (outside the lock: a controller mid-judgement
	// may be waiting on it), so no new canary starts during the drain.
	for _, ctl := range ctls {
		ctl.Close()
	}
	for _, v := range active {
		v.beginDrain()
	}
	drained := make(chan struct{})
	go func() {
		r.batchers.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
		r.cancel() // abort in-flight batches between graph blocks
		<-drained
	}
	r.cancel()
	return err
}

// StartCanary deploys a candidate pipeline beside the model's active
// version, routing the given fraction of batchable traffic to it (clamped
// to [0.001, 0.5]). The canary runs its own admission controller, primed
// from the incumbent's current forecast so the candidate never opens a
// cold-start admit-everything window; direct-path and top-K requests stay
// on the incumbent. One canary per model: starting a second fails.
func (r *Registry) StartCanary(name, tag string, o *core.Optimized, fraction float64) error {
	if o == nil {
		return fmt.Errorf("serving: canary %q: nil optimized pipeline", name)
	}
	if tag == "" {
		return fmt.Errorf("serving: canary %q: empty version tag", name)
	}
	pm := int64(fraction * 1000)
	if pm < 1 {
		pm = 1
	}
	if pm > 500 {
		pm = 500
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return fmt.Errorf("serving: registry is closed")
	}
	h, ok := r.models[name]
	if !ok || h.active.Load() == nil {
		return fmt.Errorf("serving: canary %q: %w", name, ErrModelNotFound)
	}
	if h.canary.Load() != nil {
		return fmt.Errorf("serving: canary %q: a canary is already in flight", name)
	}
	admit := admission.New(admission.Config{
		SLO:      r.opts.SLOTargetP99,
		Brownout: r.opts.Brownout,
	})
	admit.Reprime(h.admit.State())
	v := &version{
		model:   name,
		tag:     tag,
		opt:     o,
		inputs:  append([]string(nil), o.Inputs()...),
		opts:    r.opts,
		stats:   h.stats,
		admit:   admit,
		guard:   newGuardStats(),
		queue:   make(chan *pending, r.opts.QueueDepth),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		baseCtx: r.baseCtx,
	}
	v.pred = v.buildPredictor(o, nil)
	v.predSmall = v.buildSmallPredictor(o)
	r.batchers.Add(1)
	go func() {
		defer r.batchers.Done()
		defer close(v.done)
		v.batcher()
	}()
	// The p99 guard compares both arms' windowed latencies: reset the
	// incumbent's window at canary start (the analogue of the counter
	// baselines the controller snapshots) so its p99 covers the judgement
	// interval, not calmer pre-canary traffic — a load spike during the
	// canary must penalize both arms alike.
	if a := h.active.Load(); a != nil {
		a.guard.latencies.Reset()
	}
	h.canary.Store(v)
	h.canaryPermille.Store(pm)
	return nil
}

// PromoteCanary makes the model's canary the active version. The hosted
// admission controller adopts the canary arm's learned forecast (the
// controller that actually measured the candidate's service times), the
// candidate redeploys through the normal zero-downtime swap — keeping its
// warmed feature caches, since the pipeline object carries them — and
// both the displaced incumbent and the canary's serving scaffolding drain
// in the background.
func (r *Registry) PromoteCanary(name string) error {
	r.mu.RLock()
	h, ok := r.models[name]
	r.mu.RUnlock()
	if !ok {
		return fmt.Errorf("serving: promote %q: %w", name, ErrModelNotFound)
	}
	h.canaryPermille.Store(0)
	c := h.canary.Swap(nil)
	if c == nil {
		return fmt.Errorf("serving: promote %q: no canary in flight", name)
	}
	h.admit.Reprime(c.admit.State())
	err := r.deploy(name, c.tag, c.opt, nil, c.opt.Inputs())
	c.beginDrain()
	return err
}

// RollbackCanary discards the model's canary: routing reverts entirely to
// the incumbent — whose admission controller served the majority arm
// throughout and so was never cold — and the candidate drains.
func (r *Registry) RollbackCanary(name string) error {
	r.mu.RLock()
	h, ok := r.models[name]
	r.mu.RUnlock()
	if !ok {
		return fmt.Errorf("serving: rollback %q: %w", name, ErrModelNotFound)
	}
	h.canaryPermille.Store(0)
	c := h.canary.Swap(nil)
	if c == nil {
		return fmt.Errorf("serving: rollback %q: no canary in flight", name)
	}
	c.beginDrain()
	return nil
}

// canaryGuards snapshots both serving arms' guard metrics; ok is false
// when no canary is live (resolved, displaced, or never started).
func (r *Registry) canaryGuards(name string) (inc, can adapt.Guard, ok bool) {
	r.mu.RLock()
	h, found := r.models[name]
	r.mu.RUnlock()
	if !found {
		return adapt.Guard{}, adapt.Guard{}, false
	}
	c := h.canary.Load()
	a := h.active.Load()
	if c == nil || a == nil {
		return adapt.Guard{}, adapt.Guard{}, false
	}
	return a.guardSnapshot(), c.guardSnapshot(), true
}

// EnableAdaptation attaches an online adaptation controller to a deployed
// optimized model: live traffic is shadow-sampled into drift detectors
// (key-reuse against the cache plan's estimate, score distribution via
// Page–Hinkley and KS), confirmed drift re-fits the cascade threshold and
// feature-cache budget split from a reservoir of recent requests, and the
// re-fit plan rolls in as a guarded canary with automatic promotion or
// rollback. Re-enabling replaces the previous controller; an operator
// Deploy restarts adaptation on the new pipeline automatically.
func (r *Registry) EnableAdaptation(name string, cfg adapt.Config) error {
	r.mu.Lock()
	h, ok := r.models[name]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("serving: adapt %q: %w", name, ErrModelNotFound)
	}
	v := h.active.Load()
	if v == nil || v.opt == nil {
		r.mu.Unlock()
		return fmt.Errorf("serving: adapt %q: no optimized pipeline deployed", name)
	}
	cfgCopy := cfg
	h.adaptCfg = &cfgCopy
	ctl := r.newAdaptController(name, v.opt, cfg)
	old := h.adaptCtl.Swap(ctl)
	r.mu.Unlock()
	if old != nil {
		old.Close()
	}
	ctl.Start()
	return nil
}

// DisableAdaptation stops a model's adaptation controller and discards
// any canary it had in flight.
func (r *Registry) DisableAdaptation(name string) error {
	r.mu.Lock()
	h, ok := r.models[name]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("serving: adapt %q: %w", name, ErrModelNotFound)
	}
	ctl := h.adaptCtl.Swap(nil)
	h.adaptCfg = nil
	r.mu.Unlock()
	if ctl != nil {
		ctl.Close()
	}
	h.canaryPermille.Store(0)
	if c := h.canary.Swap(nil); c != nil {
		c.beginDrain()
	}
	return nil
}

// AdaptationSnapshot returns the model's adaptation-controller state; ok
// is false when adaptation is not enabled.
func (r *Registry) AdaptationSnapshot(name string) (adapt.Snapshot, bool) {
	r.mu.RLock()
	h, found := r.models[name]
	r.mu.RUnlock()
	if !found {
		return adapt.Snapshot{}, false
	}
	ctl := h.adaptCtl.Load()
	if ctl == nil {
		return adapt.Snapshot{}, false
	}
	return ctl.Snapshot(), true
}

// newAdaptController wires a controller to this registry's canary
// machinery through closures, so internal/adapt never imports serving.
func (r *Registry) newAdaptController(name string, opt *core.Optimized, cfg adapt.Config) *adapt.Controller {
	return adapt.New(opt, cfg, adapt.Hooks{
		StartCanary: func(tag string, cand *core.Optimized, fraction float64) error {
			return r.StartCanary(name, tag, cand, fraction)
		},
		Promote:  func() error { return r.PromoteCanary(name) },
		Rollback: func() error { return r.RollbackCanary(name) },
		Guards:   func() (adapt.Guard, adapt.Guard, bool) { return r.canaryGuards(name) },
	})
}

// readaptAfterDeploy restarts a model's adaptation controller on a newly
// deployed pipeline and abandons any canary the old controller had in
// flight. No-op for models without adaptation enabled.
func (r *Registry) readaptAfterDeploy(name string, o *core.Optimized) {
	r.mu.Lock()
	h, ok := r.models[name]
	if !ok || h.adaptCfg == nil {
		r.mu.Unlock()
		return
	}
	ctl := r.newAdaptController(name, o, *h.adaptCfg)
	old := h.adaptCtl.Swap(ctl)
	r.mu.Unlock()
	h.canaryPermille.Store(0)
	if c := h.canary.Swap(nil); c != nil {
		c.beginDrain()
	}
	if old != nil {
		old.Close()
	}
	ctl.Start()
}

// enqueue admits one request to the model's active version, retrying when
// the enqueue races a hot swap (the drained version refuses, the fresh one
// accepts). A full queue is an admission failure: ErrOverloaded.
func (h *Hosted) enqueue(p *pending) error {
	for attempt := 0; attempt < 8; attempt++ {
		v := h.active.Load()
		if v == nil {
			return fmt.Errorf("serving: model %q: %w", h.name, ErrModelNotFound)
		}
		err := v.enqueue(p)
		if !errors.Is(err, errVersionStopped) {
			return err
		}
		// A swap is installing a new active version; re-resolve it.
	}
	return fmt.Errorf("serving: model %q: version churn, request not admitted", h.name)
}

func (v *version) enqueue(p *pending) error {
	v.mu.RLock()
	defer v.mu.RUnlock()
	if v.stopped {
		return errVersionStopped
	}
	select {
	case v.queue <- p:
		return nil
	default:
		return ErrOverloaded
	}
}

// beginDrain stops admission to this version and tells its batcher to
// serve whatever is already queued, then exit. The write lock guarantees
// every successful enqueue happened before the queue's final drain pass.
func (v *version) beginDrain() {
	v.mu.Lock()
	if v.stopped {
		v.mu.Unlock()
		return
	}
	v.stopped = true
	v.mu.Unlock()
	close(v.stop)
}

type pending struct {
	ctx    context.Context // the originating request's context
	inputs map[string]value.Value
	n      int
	enq    time.Time // when the request entered the queue (queue-wait spans)
	done   chan batchResult
	// small asks the batcher for the degraded small-model-only path (set
	// by the brownout ladder at admission). A batch executes degraded only
	// when every member asks for it: one full-fidelity request — e.g.
	// criticality-high traffic riding below the ladder — upgrades the
	// whole batch.
	small bool
}

type batchResult struct {
	preds []float64
	err   error
	// degraded names the brownout rung that produced the answer
	// (admission.Degraded*); empty for full-fidelity results.
	degraded string
}

// batcher implements adaptive batching per deployed version: drain every
// request already queued (without waiting — a lone request must not pay a
// batching delay), then wait up to BatchTimeout for more only while work
// keeps arriving, execute the merged batch once, and scatter results back
// to waiters (Clipper's core serving loop). Requests whose contexts are
// already dead are answered with the context error instead of joining a
// batch. When the version is swapped out or the registry closes, the
// batcher drains everything still queued before exiting.
func (v *version) batcher() {
	for {
		var first *pending
		select {
		case first = <-v.queue:
		case <-v.stop:
			// Drain: serve whatever is still queued, then exit.
			for {
				select {
				case p := <-v.queue:
					v.runBatch([]*pending{p})
				default:
					return
				}
			}
		}
		if err := first.ctx.Err(); err != nil {
			v.admit.CountExpired(1)
			first.done <- batchResult{err: err}
			continue
		}
		batch := []*pending{first}
		rows := first.n
		// Non-blocking drain: take whatever is queued right now.
	drain:
		for rows < v.opts.MaxBatch {
			select {
			case p := <-v.queue:
				batch, rows = v.appendLive(batch, rows, p)
			default:
				break drain
			}
		}
		// If we found concurrent work, wait briefly for stragglers.
		if len(batch) > 1 && rows < v.opts.MaxBatch {
			deadline := time.NewTimer(v.opts.BatchTimeout)
		fill:
			for rows < v.opts.MaxBatch {
				select {
				case p := <-v.queue:
					batch, rows = v.appendLive(batch, rows, p)
				case <-deadline.C:
					break fill
				case <-v.stop:
					break fill
				}
			}
			deadline.Stop()
		}
		v.runBatch(batch)
	}
}

// requestCtx derives the execution context for a lone request: cancelled
// when either the request's own context or the registry's base context
// dies.
func (v *version) requestCtx(p *pending) (context.Context, context.CancelFunc) {
	if p.ctx == nil {
		return v.baseCtx, func() {}
	}
	ctx, cancel := context.WithCancel(p.ctx)
	detach := context.AfterFunc(v.baseCtx, cancel)
	return ctx, func() { detach(); cancel() }
}

// appendLive adds p to the batch unless its request context is already dead,
// in which case the waiter is answered immediately (counted expired).
func (v *version) appendLive(batch []*pending, rows int, p *pending) ([]*pending, int) {
	if err := p.ctx.Err(); err != nil {
		v.admit.CountExpired(1)
		p.done <- batchResult{err: err}
		return batch, rows
	}
	return append(batch, p), rows + p.n
}

// allSmall reports whether every member of the batch accepted brownout
// degradation: one full-fidelity request upgrades the whole batch.
func allSmall(batch []*pending) bool {
	for _, p := range batch {
		if !p.small {
			return false
		}
	}
	return true
}

// runBatch merges the batch's inputs, predicts once under the registry's
// execution context, and distributes results to the waiters. Members whose
// request context died between enqueue and assembly are culled first —
// counted expired, never executed — so a dead request can't waste the
// batch's compute. Completions feed the admission controller's service
// forecast.
func (v *version) runBatch(batch []*pending) {
	live := batch[:0]
	for _, p := range batch {
		if err := p.ctx.Err(); err != nil {
			v.admit.CountExpired(1)
			p.done <- batchResult{err: err}
			continue
		}
		live = append(live, p)
	}
	batch = live
	if len(batch) == 0 {
		return
	}
	// Degrade to small-model-only scoring when the whole batch asked for
	// it and the deployment has a small model to degrade to.
	pred, degraded := v.pred, ""
	if v.predSmall != nil && allSmall(batch) {
		pred, degraded = v.predSmall, admission.DegradedSmallOnly
	}
	if len(batch) == 1 {
		// A lone request executes under its own context, so client
		// cancellation aborts the prediction itself. A force-close (expired
		// Shutdown deadline) also cancels it via the base context.
		p0 := batch[0]
		trace.FromContext(p0.ctx).Record(trace.StageQueueWait, p0.enq)
		ctx, cancel := v.requestCtx(p0)
		execStart := time.Now()
		preds, err := pred.PredictBatch(ctx, p0.inputs)
		cancel()
		v.admit.Observe(time.Since(execStart), time.Since(p0.enq), p0.n)
		v.guard.record(time.Since(p0.enq), err)
		if err == nil && degraded != "" {
			v.admit.CountDegraded(degraded)
		}
		p0.done <- batchResult{preds: preds, err: err, degraded: degraded}
		return
	}
	// Record each member's queue wait; the first sampled member's trace
	// carries through the merged execution below, so weld/cascade stage
	// spans attach to it (the other members see only queue wait and total).
	var btr *trace.Trace
	for _, p := range batch {
		if tr := trace.FromContext(p.ctx); tr != nil {
			tr.Record(trace.StageQueueWait, p.enq)
			if btr == nil {
				btr = tr
			}
		}
	}
	var assembleStart time.Time
	if btr != nil {
		assembleStart = time.Now()
	}
	// Merge columns across the batch's requests, reusing the version's
	// batcher-owned scratch maps (column names are stable across batches).
	if v.mergeCols == nil {
		v.mergeCols = make(map[string][]value.Value)
		v.mergeInput = make(map[string]value.Value)
	}
	merged := v.mergeCols
	for k, s := range merged {
		clear(s) // drop the previous batch's column references, not just the length
		merged[k] = s[:0]
	}
	for _, p := range batch {
		for k, val := range p.inputs {
			merged[k] = append(merged[k], val)
		}
	}
	inputs := v.mergeInput
	clear(inputs)
	for k, vs := range merged {
		if len(vs) == 0 {
			continue // column absent from this batch's requests
		}
		cat, err := concatValues(vs)
		if err != nil {
			for _, p := range batch {
				v.guard.record(time.Since(p.enq), err)
				p.done <- batchResult{err: err}
			}
			return
		}
		inputs[k] = cat
	}
	if btr != nil {
		btr.Record(trace.StageBatchAssemble, assembleStart)
	}
	// A merged batch serves several independent requests, so one client's
	// cancellation must not abort the others: execute under the registry's
	// context, which only a force-close cancels. The sampled member's trace
	// is re-attached so execution spans still land on it.
	ectx := v.baseCtx
	if btr != nil {
		ectx = trace.NewContext(ectx, btr)
	}
	rows := 0
	for _, p := range batch {
		rows += p.n
	}
	execStart := time.Now()
	preds, err := pred.PredictBatch(ectx, inputs)
	v.admit.Observe(time.Since(execStart), time.Since(batch[0].enq), rows)
	if err != nil {
		for _, p := range batch {
			v.guard.record(time.Since(p.enq), err)
			p.done <- batchResult{err: err}
		}
		return
	}
	off := 0
	for _, p := range batch {
		if degraded != "" {
			v.admit.CountDegraded(degraded)
		}
		v.guard.record(time.Since(p.enq), nil)
		p.done <- batchResult{preds: preds[off : off+p.n], degraded: degraded}
		off += p.n
	}
}

func concatValues(vs []value.Value) (value.Value, error) {
	if len(vs) == 1 {
		return vs[0], nil
	}
	switch vs[0].Kind {
	case value.Strings:
		var out []string
		for _, v := range vs {
			out = append(out, v.Strings...)
		}
		return value.NewStrings(out), nil
	case value.Floats:
		var out []float64
		for _, v := range vs {
			out = append(out, v.Floats...)
		}
		return value.NewFloats(out), nil
	case value.Ints:
		var out []int64
		for _, v := range vs {
			out = append(out, v.Ints...)
		}
		return value.NewInts(out), nil
	default:
		return value.Value{}, fmt.Errorf("serving: cannot merge %s columns", vs[0].Kind)
	}
}
