package serving

import (
	"fmt"
	"time"

	"willump/internal/core"
	"willump/internal/value"
)

// This file pins the serving wire protocol: the JSON shapes exchanged by
// Client and Server. The format is part of the deployment contract the same
// way the artifact header is — golden-file tests in wire_test.go hold it
// stable, and every added field must be optional (omitempty) so old clients
// and servers interoperate with new ones.

// wireColumn is the JSON wire format for one input column.
type wireColumn struct {
	Kind    string    `json:"kind"`
	Strings []string  `json:"strings,omitempty"`
	Floats  []float64 `json:"floats,omitempty"`
	Ints    []int64   `json:"ints,omitempty"`
}

// wireOptions carries the per-request serving knobs of core.PredictOptions.
// Absent fields apply no override, so a request without options is served
// bit-identically to the pipeline's Optimize-time defaults.
type wireOptions struct {
	// CascadeThreshold overrides the cascade confidence threshold t_c.
	CascadeThreshold *float64 `json:"cascade_threshold,omitempty"`
	// K is the top-K result count (top-K route only).
	K int `json:"k,omitempty"`
	// Budget overrides the top-K filter's candidate subset size.
	Budget int `json:"budget,omitempty"`
	// Point selects the example-at-a-time modality (single-row requests).
	Point bool `json:"point,omitempty"`
	// DeadlineMillis bounds the server-side execution time in (possibly
	// fractional) milliseconds — sub-millisecond deadlines are realistic at
	// this serving layer's latencies and must survive the wire.
	DeadlineMillis float64 `json:"deadline_ms,omitempty"`
	// SmallOnly forces cascade small-model-only scoring (the brownout
	// degrade primitive, also available to clients directly).
	SmallOnly bool `json:"small_only,omitempty"`
	// Criticality classifies the request for brownout ordering ("low",
	// "normal", "high"); high-criticality traffic degrades and sheds last.
	Criticality string `json:"criticality,omitempty"`
}

// wireRequest is a prediction RPC request: a batch of raw inputs plus
// optional per-request options.
type wireRequest struct {
	Inputs  map[string]wireColumn `json:"inputs"`
	Options *wireOptions          `json:"options,omitempty"`
}

// wireResponse carries predictions (predict routes), indices (top-K route),
// or an error. Degraded marks brownout answers ("small-only", "budget",
// "cache"): successful responses produced at reduced fidelity under
// overload; absent on full-fidelity responses so legacy exchanges stay
// byte-identical.
type wireResponse struct {
	Predictions []float64 `json:"predictions,omitempty"`
	Indices     []int     `json:"indices,omitempty"`
	Error       string    `json:"error,omitempty"`
	Degraded    string    `json:"degraded,omitempty"`
}

// wireModelInfo describes one deployed model on the list/describe routes.
type wireModelInfo struct {
	Name             string   `json:"name"`
	Version          string   `json:"version"`
	Default          bool     `json:"default,omitempty"`
	Inputs           []string `json:"inputs,omitempty"`
	Cascade          bool     `json:"cascade,omitempty"`
	CascadeThreshold float64  `json:"cascade_threshold,omitempty"`
	TopK             bool     `json:"topk,omitempty"`
}

// wireModelList is the GET /v1/models response.
type wireModelList struct {
	Models []wireModelInfo `json:"models"`
}

// wireLatency carries latency quantiles in milliseconds. P999 is omitted
// at zero so pre-p999 stats serialize exactly as before the field existed.
type wireLatency struct {
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999,omitempty"`
}

// wireCascade carries cascade serving counters.
type wireCascade struct {
	Total     int64   `json:"total"`
	SmallOnly int64   `json:"small_only"`
	HitRate   float64 `json:"hit_rate"`
}

// wireFeatureCache carries feature-level cache counters (absent when the
// deployed pipeline has no feature caches, so pre-cache clients see the
// stats shape unchanged).
type wireFeatureCache struct {
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Evictions int64   `json:"evictions"`
	Coalesced int64   `json:"coalesced"`
	HitRate   float64 `json:"hit_rate"`
}

// wireFeatureStore carries remote feature-store client health (absent when
// no lookup table is backed by a reporting store client, so legacy stats
// responses keep their shape byte-identical).
type wireFeatureStore struct {
	Requests     int64   `json:"requests"`
	Retries      int64   `json:"retries"`
	HedgesIssued int64   `json:"hedges_issued,omitempty"`
	HedgesWon    int64   `json:"hedges_won"`
	Degraded     int64   `json:"degraded,omitempty"`
	BreakerOpens int64   `json:"breaker_opens,omitempty"`
	BreakerState string  `json:"breaker_state"`
	Inflight     int64   `json:"inflight,omitempty"`
	P50MS        float64 `json:"p50_ms,omitempty"`
	P99MS        float64 `json:"p99_ms"`
}

// wireAdmission carries the SLO admission controller's state on the stats
// response (absent when admission is disabled and nothing was ever shed,
// degraded, or expired, so legacy stats responses keep their shape).
type wireAdmission struct {
	SLOMS             float64 `json:"slo_ms,omitempty"`
	Limit             int64   `json:"limit,omitempty"`
	Inflight          int64   `json:"inflight,omitempty"`
	Level             int     `json:"level,omitempty"`
	ShedPredicted     int64   `json:"shed_predicted,omitempty"`
	ShedLimit         int64   `json:"shed_limit,omitempty"`
	ShedBrownout      int64   `json:"shed_brownout,omitempty"`
	Expired           int64   `json:"expired,omitempty"`
	DegradedSmallOnly int64   `json:"degraded_small_only,omitempty"`
	DegradedBudget    int64   `json:"degraded_budget,omitempty"`
	DegradedCache     int64   `json:"degraded_cache,omitempty"`
	ForecastServiceMS float64 `json:"forecast_service_ms,omitempty"`
	ForecastErrorMS   float64 `json:"forecast_error_ms,omitempty"`
	Pressure          float64 `json:"pressure,omitempty"`
}

// wireAdaptation carries the online adaptation controller's state on the
// stats response (absent when adaptation is not enabled on the model, so
// legacy stats responses keep their shape byte-identical).
type wireAdaptation struct {
	State            string  `json:"state"`
	CanaryTag        string  `json:"canary_tag,omitempty"`
	CanaryFraction   float64 `json:"canary_fraction,omitempty"`
	Sampled          int64   `json:"sampled,omitempty"`
	ShadowDropped    int64   `json:"shadow_dropped,omitempty"`
	ReservoirRows    int     `json:"reservoir_rows,omitempty"`
	KeyReuseObserved float64 `json:"key_reuse_observed,omitempty"`
	KeyReuseExpected float64 `json:"key_reuse_expected,omitempty"`
	ScorePH          float64 `json:"score_ph,omitempty"`
	ScoreKS          float64 `json:"score_ks,omitempty"`
	KeyDrift         bool    `json:"key_drift,omitempty"`
	ScoreDrift       bool    `json:"score_drift,omitempty"`
	KeyDriftEvents   int64   `json:"key_drift_events,omitempty"`
	ScoreDriftEvents int64   `json:"score_drift_events,omitempty"`
	Refits           int64   `json:"refits,omitempty"`
	Canaries         int64   `json:"canaries,omitempty"`
	Promotions       int64   `json:"promotions,omitempty"`
	Rollbacks        int64   `json:"rollbacks,omitempty"`
	CanaryErrors     int64   `json:"canary_errors,omitempty"`
	LastRollback     string  `json:"last_rollback,omitempty"`
}

// wireSlow is one retained slow or failed request on the stats response.
type wireSlow struct {
	StartUnixNano int64   `json:"start_unix_nano"`
	LatencyMS     float64 `json:"latency_ms"`
	Error         string  `json:"error,omitempty"`
	Sampled       bool    `json:"sampled,omitempty"`
}

// wireStats is the GET /v1/models/{name}/stats response. RecentSlow is
// absent unless tracing is enabled on the deployed pipeline, so pre-tracing
// clients see the stats shape unchanged.
type wireStats struct {
	Model        string            `json:"model"`
	Version      string            `json:"version"`
	Requests     int64             `json:"requests"`
	Errors       int64             `json:"errors"`
	Rejected     int64             `json:"rejected"`
	QPS          float64           `json:"qps"`
	LatencyMS    wireLatency       `json:"latency_ms"`
	Cascade      *wireCascade      `json:"cascade,omitempty"`
	FeatureCache *wireFeatureCache `json:"feature_cache,omitempty"`
	FeatureStore *wireFeatureStore `json:"feature_store,omitempty"`
	Admission    *wireAdmission    `json:"admission,omitempty"`
	Adaptation   *wireAdaptation   `json:"adaptation,omitempty"`
	RecentSlow   []wireSlow        `json:"recent_slow,omitempty"`
}

// wireSpan is one timed stage within a retained trace.
type wireSpan struct {
	Stage    string  `json:"stage"`
	OffsetMS float64 `json:"offset_ms"`
	DurMS    float64 `json:"dur_ms"`
}

// wireTrace is one retained request trace on the GET /v1/traces response.
// Tail-sampled entries (slow or failed requests missed by head sampling)
// have no id and no spans: only their totals survived.
type wireTrace struct {
	ID            uint64     `json:"id,omitempty"`
	Model         string     `json:"model"`
	StartUnixNano int64      `json:"start_unix_nano"`
	TotalMS       float64    `json:"total_ms"`
	Error         string     `json:"error,omitempty"`
	Sampled       bool       `json:"sampled,omitempty"`
	Spans         []wireSpan `json:"spans,omitempty"`
}

// wireTraceList is the GET /v1/traces response.
type wireTraceList struct {
	Traces []wireTrace `json:"traces"`
}

// toPredictOptions converts wire options to the internal per-request
// options. A nil receiver (request without options) yields the zero value.
func (o *wireOptions) toPredictOptions() (core.PredictOptions, error) {
	if o == nil {
		return core.PredictOptions{}, nil
	}
	po := core.PredictOptions{
		CascadeThreshold: o.CascadeThreshold,
		K:                o.K,
		Budget:           o.Budget,
		Point:            o.Point,
		Deadline:         time.Duration(o.DeadlineMillis * float64(time.Millisecond)),
		SmallOnly:        o.SmallOnly,
		Criticality:      o.Criticality,
	}
	if err := po.Validate(); err != nil {
		return core.PredictOptions{}, err
	}
	return po, nil
}

// fromPredictOptions converts internal options to the wire form, nil when
// no override is set so default requests serialize exactly as before the
// options field existed.
func fromPredictOptions(po core.PredictOptions) *wireOptions {
	if po.IsZero() {
		return nil
	}
	return &wireOptions{
		CascadeThreshold: po.CascadeThreshold,
		K:                po.K,
		Budget:           po.Budget,
		Point:            po.Point,
		DeadlineMillis:   float64(po.Deadline) / float64(time.Millisecond),
		SmallOnly:        po.SmallOnly,
		Criticality:      po.Criticality,
	}
}

func encodeInputs(inputs map[string]value.Value) (map[string]wireColumn, error) {
	out := make(map[string]wireColumn, len(inputs))
	for k, v := range inputs {
		switch v.Kind {
		case value.Strings:
			out[k] = wireColumn{Kind: "strings", Strings: v.Strings}
		case value.Floats:
			out[k] = wireColumn{Kind: "floats", Floats: v.Floats}
		case value.Ints:
			out[k] = wireColumn{Kind: "ints", Ints: v.Ints}
		default:
			return nil, fmt.Errorf("serving: cannot serialize %s column %q", v.Kind, k)
		}
	}
	return out, nil
}

func decodeInputs(cols map[string]wireColumn) (map[string]value.Value, int, error) {
	out := make(map[string]value.Value, len(cols))
	n := -1
	for k, c := range cols {
		var v value.Value
		switch c.Kind {
		case "strings":
			v = value.NewStrings(c.Strings)
		case "floats":
			v = value.NewFloats(c.Floats)
		case "ints":
			v = value.NewInts(c.Ints)
		default:
			return nil, 0, fmt.Errorf("serving: unknown column kind %q", c.Kind)
		}
		if n == -1 {
			n = v.Len()
		} else if v.Len() != n {
			return nil, 0, fmt.Errorf("serving: column %q has %d rows, want %d", k, v.Len(), n)
		}
		out[k] = v
	}
	if n <= 0 {
		return nil, 0, fmt.Errorf("serving: empty request")
	}
	return out, n, nil
}
