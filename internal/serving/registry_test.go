package serving

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"willump/internal/core"
	"willump/internal/value"
)

// constPredictor returns the same prediction for every row, so tests can
// tell which deployed version served a request.
func constPredictor(c float64) Predictor {
	return PredictorFunc(func(_ context.Context, inputs map[string]value.Value) ([]float64, error) {
		n := -1
		for _, v := range inputs {
			n = v.Len()
			break
		}
		out := make([]float64, n)
		for i := range out {
			out[i] = c
		}
		return out, nil
	})
}

func startRegistryServer(t *testing.T, opts Options) (*Registry, *Client) {
	t.Helper()
	reg := NewRegistry(opts)
	srv := NewRegistryServer(reg)
	base, err := srv.Start()
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return reg, NewClient(base)
}

func oneRow(x float64) map[string]value.Value {
	return map[string]value.Value{"x": value.NewFloats([]float64{x})}
}

func TestRegistryNamedRoutes(t *testing.T) {
	reg, cli := startRegistryServer(t, Options{})
	if err := reg.DeployPredictor("alpha", "v1", constPredictor(1), []string{"x"}); err != nil {
		t.Fatalf("Deploy alpha: %v", err)
	}
	if err := reg.DeployPredictor("beta", "v1", constPredictor(2), []string{"x"}); err != nil {
		t.Fatalf("Deploy beta: %v", err)
	}
	ctx := context.Background()

	preds, err := cli.PredictModel(ctx, "alpha", oneRow(0))
	if err != nil || preds[0] != 1 {
		t.Fatalf("alpha predict = %v, %v; want [1]", preds, err)
	}
	preds, err = cli.PredictModel(ctx, "beta", oneRow(0))
	if err != nil || preds[0] != 2 {
		t.Fatalf("beta predict = %v, %v; want [2]", preds, err)
	}
	// The first deployed model is the default behind the legacy route.
	preds, err = cli.Predict(ctx, oneRow(0))
	if err != nil || preds[0] != 1 {
		t.Fatalf("legacy predict = %v, %v; want [1] (default alpha)", preds, err)
	}
	if err := reg.SetDefault("beta"); err != nil {
		t.Fatalf("SetDefault: %v", err)
	}
	preds, err = cli.Predict(ctx, oneRow(0))
	if err != nil || preds[0] != 2 {
		t.Fatalf("legacy predict after SetDefault = %v, %v; want [2]", preds, err)
	}

	models, err := cli.Models(ctx)
	if err != nil {
		t.Fatalf("Models: %v", err)
	}
	if len(models) != 2 || models[0].Name != "alpha" || models[1].Name != "beta" {
		t.Fatalf("Models = %+v, want alpha, beta", models)
	}
	if models[0].Default || !models[1].Default {
		t.Errorf("default flags = %v/%v, want beta default", models[0].Default, models[1].Default)
	}
	if models[0].Version != "v1" || len(models[0].Inputs) != 1 || models[0].Inputs[0] != "x" {
		t.Errorf("alpha info = %+v", models[0])
	}
}

func TestRegistryUnknownModel(t *testing.T) {
	reg, cli := startRegistryServer(t, Options{})
	if err := reg.DeployPredictor("alpha", "v1", constPredictor(1), nil); err != nil {
		t.Fatal(err)
	}
	_, err := cli.PredictModel(context.Background(), "nope", oneRow(0))
	if !errors.Is(err, ErrModelNotFound) {
		t.Fatalf("unknown model error = %v, want ErrModelNotFound", err)
	}
	if _, err := cli.Stats(context.Background(), "nope"); !errors.Is(err, ErrModelNotFound) {
		t.Fatalf("unknown model stats error = %v, want ErrModelNotFound", err)
	}
}

func TestRegistryUndeploy(t *testing.T) {
	reg, cli := startRegistryServer(t, Options{})
	if err := reg.DeployPredictor("alpha", "v1", constPredictor(1), nil); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := cli.PredictModel(ctx, "alpha", oneRow(0)); err != nil {
		t.Fatalf("predict before undeploy: %v", err)
	}
	if err := reg.Undeploy("alpha"); err != nil {
		t.Fatalf("Undeploy: %v", err)
	}
	if _, err := cli.PredictModel(ctx, "alpha", oneRow(0)); !errors.Is(err, ErrModelNotFound) {
		t.Fatalf("predict after undeploy = %v, want ErrModelNotFound", err)
	}
	// The legacy route lost its default too.
	if _, err := cli.Predict(ctx, oneRow(0)); !errors.Is(err, ErrModelNotFound) {
		t.Fatalf("legacy predict after undeploy = %v, want ErrModelNotFound", err)
	}
	if err := reg.Undeploy("alpha"); !errors.Is(err, ErrModelNotFound) {
		t.Fatalf("double undeploy = %v, want ErrModelNotFound", err)
	}
}

func TestRegistryDeployValidation(t *testing.T) {
	reg := NewRegistry(Options{})
	defer reg.Close(context.Background())
	if err := reg.DeployPredictor("", "v1", constPredictor(1), nil); err == nil {
		t.Error("empty name accepted")
	}
	if err := reg.DeployPredictor("a/b", "v1", constPredictor(1), nil); err == nil {
		t.Error("slash in name accepted")
	}
	if err := reg.DeployPredictor("alpha", "", constPredictor(1), nil); err == nil {
		t.Error("empty version tag accepted")
	}
	if err := reg.DeployPredictor("alpha", "v1", nil, nil); err == nil {
		t.Error("nil predictor accepted")
	}
	if err := reg.Deploy("alpha", "v1", nil); err == nil {
		t.Error("nil optimized pipeline accepted")
	}
}

// TestHotSwapUnderLoadZeroFailures hammers one model from concurrent
// clients while versions hot-swap beneath them: every request must succeed,
// and each response must be internally consistent (served entirely by one
// version).
func TestHotSwapUnderLoadZeroFailures(t *testing.T) {
	reg, cli := startRegistryServer(t, Options{BatchTimeout: 200 * time.Microsecond})
	if err := reg.DeployPredictor("m", "v1", constPredictor(1), nil); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	stop := make(chan struct{})
	var failures atomic.Int64
	var served atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				preds, err := cli.PredictModel(ctx, "m", map[string]value.Value{
					"x": value.NewFloats([]float64{0, 0, 0}),
				})
				if err != nil {
					t.Errorf("request failed during hot swap: %v", err)
					failures.Add(1)
					return
				}
				for _, p := range preds[1:] {
					if p != preds[0] {
						t.Errorf("response mixes versions: %v", preds)
						failures.Add(1)
						return
					}
				}
				served.Add(1)
			}
		}()
	}

	// Swap versions every few milliseconds while the load runs.
	for i := 2; i <= 20; i++ {
		time.Sleep(5 * time.Millisecond)
		if err := reg.DeployPredictor("m", fmt.Sprintf("v%d", i), constPredictor(float64(i)), nil); err != nil {
			t.Fatalf("hot swap deploy v%d: %v", i, err)
		}
	}
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()

	if failures.Load() != 0 {
		t.Fatalf("%d requests failed across hot swaps", failures.Load())
	}
	if served.Load() == 0 {
		t.Fatal("no requests served during the swap storm")
	}
	// The final version is live.
	preds, err := cli.PredictModel(ctx, "m", oneRow(0))
	if err != nil || preds[0] != 20 {
		t.Fatalf("post-swap predict = %v, %v; want [20]", preds, err)
	}
	models, err := cli.Models(ctx)
	if err != nil || len(models) != 1 || models[0].Version != "v20" {
		t.Fatalf("Models = %+v, %v; want single v20", models, err)
	}
}

// TestAdmissionControl429 floods a tiny queue behind a blocked predictor:
// overflow requests must be rejected with the retryable ErrOverloaded, and
// the blocked ones must still complete once released.
func TestAdmissionControl429(t *testing.T) {
	release := make(chan struct{})
	var released sync.Once
	doRelease := func() { released.Do(func() { close(release) }) }
	// A test failure must still release the predictor, or the server's
	// drain (registered earlier, run later) would hang forever.
	t.Cleanup(doRelease)
	var entered sync.Once
	started := make(chan struct{})
	slow := PredictorFunc(func(_ context.Context, inputs map[string]value.Value) ([]float64, error) {
		entered.Do(func() { close(started) })
		<-release
		n := inputs["x"].Len()
		return make([]float64, n), nil
	})
	reg, cli := startRegistryServer(t, Options{QueueDepth: 1})
	if err := reg.DeployPredictor("m", "v1", slow, nil); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// The first request occupies the batcher; wait until it is inside the
	// predictor so nothing else can merge into its batch.
	results := make(chan error, 1)
	go func() {
		_, err := cli.PredictModel(ctx, "m", oneRow(1))
		results <- err
	}()
	<-started
	// Probes now fill the depth-1 queue: an admitted probe parks there
	// (bounded wait, then its client gives up while the entry stays
	// queued), after which further probes must be rejected with the
	// retryable ErrOverloaded.
	deadline := time.After(10 * time.Second)
	for {
		pctx, pcancel := context.WithTimeout(ctx, 200*time.Millisecond)
		_, err := cli.PredictModel(pctx, "m", oneRow(2))
		pcancel()
		if errors.Is(err, ErrOverloaded) {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("never saw ErrOverloaded; last err = %v", err)
		case <-time.After(2 * time.Millisecond):
		}
	}
	doRelease()
	if err := <-results; err != nil {
		t.Fatalf("admitted request failed: %v", err)
	}
	st, err := cli.Stats(ctx, "m")
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.Rejected == 0 {
		t.Errorf("stats rejected = 0, want > 0")
	}
}

// TestDirectPathAdmission: requests carrying per-request options bypass
// the batcher but not admission control — concurrent direct work is
// bounded by the same queue depth and rejected with ErrOverloaded beyond
// it.
func TestDirectPathAdmission(t *testing.T) {
	release := make(chan struct{})
	var released sync.Once
	t.Cleanup(func() { released.Do(func() { close(release) }) })
	started := make(chan struct{})
	var entered sync.Once
	slow := PredictorFunc(func(_ context.Context, inputs map[string]value.Value) ([]float64, error) {
		entered.Do(func() { close(started) })
		<-release
		return make([]float64, inputs["x"].Len()), nil
	})
	reg, cli := startRegistryServer(t, Options{QueueDepth: 1})
	if err := reg.DeployPredictor("m", "v1", slow, nil); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// A deadline option routes the request down the direct path; the first
	// occupies the single admission slot inside the predictor.
	first := make(chan error, 1)
	go func() {
		_, err := cli.PredictModel(ctx, "m", oneRow(1), core.WithPredictDeadline(time.Minute))
		first <- err
	}()
	<-started
	_, err := cli.PredictModel(ctx, "m", oneRow(2), core.WithPredictDeadline(time.Minute))
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second direct request = %v, want ErrOverloaded", err)
	}
	released.Do(func() { close(release) })
	if err := <-first; err != nil {
		t.Fatalf("admitted direct request failed: %v", err)
	}
}

func TestBlackBoxRejectsOptimizerOverrides(t *testing.T) {
	reg, cli := startRegistryServer(t, Options{})
	if err := reg.DeployPredictor("m", "v1", constPredictor(1), nil); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	_, err := cli.PredictModel(ctx, "m", oneRow(0), core.WithCascadeThreshold(0.8))
	if err == nil {
		t.Fatal("threshold override against a black-box predictor should fail")
	}
	// A top-K query against a model without a filter is also a client error.
	if _, err := cli.TopK(ctx, "m", oneRow(0), 1); err == nil {
		t.Fatal("topk against a filterless model should fail")
	}
}

func TestPerRequestDeadlineOverHTTP(t *testing.T) {
	slow := PredictorFunc(func(ctx context.Context, inputs map[string]value.Value) ([]float64, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(5 * time.Second):
			return make([]float64, inputs["x"].Len()), nil
		}
	})
	reg, cli := startRegistryServer(t, Options{})
	if err := reg.DeployPredictor("m", "v1", slow, nil); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err := cli.PredictModel(context.Background(), "m", oneRow(0),
		core.WithPredictDeadline(30*time.Millisecond))
	if err == nil {
		t.Fatal("deadline-bounded request against a 5s predictor should fail")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline took %v to fire", elapsed)
	}
}

func TestStatsEndpoint(t *testing.T) {
	reg, cli := startRegistryServer(t, Options{})
	if err := reg.DeployPredictor("m", "v7", constPredictor(1), nil); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := cli.PredictModel(ctx, "m", oneRow(float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	st, err := cli.Stats(ctx, "m")
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.Model != "m" || st.Version != "v7" {
		t.Errorf("identity = %s/%s, want m/v7", st.Model, st.Version)
	}
	if st.Requests != 5 {
		t.Errorf("requests = %d, want 5", st.Requests)
	}
	if st.Errors != 0 || st.Rejected != 0 {
		t.Errorf("errors/rejected = %d/%d, want 0/0", st.Errors, st.Rejected)
	}
	if st.QPS <= 0 {
		t.Errorf("qps = %v, want > 0", st.QPS)
	}
	if st.LatencyP50 < 0 || st.LatencyP99 < st.LatencyP50 {
		t.Errorf("latency quantiles inconsistent: p50=%v p99=%v", st.LatencyP50, st.LatencyP99)
	}
}

func TestClientHTTPOptions(t *testing.T) {
	reg, _ := startRegistryServer(t, Options{})
	if err := reg.DeployPredictor("m", "v1", constPredictor(1), nil); err != nil {
		t.Fatal(err)
	}
	// A shared http.Client is reused verbatim.
	shared := &http.Client{Timeout: 5 * time.Second}
	cli := NewClient("http://127.0.0.1:1", WithHTTPClient(shared))
	if cli.http != shared {
		t.Error("WithHTTPClient not reused verbatim")
	}
	// WithHTTPTimeout configures the owned client.
	cli = NewClient("http://127.0.0.1:1", WithHTTPTimeout(123*time.Millisecond))
	if cli.http.Timeout != 123*time.Millisecond {
		t.Errorf("timeout = %v, want 123ms", cli.http.Timeout)
	}
}

func TestCachedPredictorMissingColumn(t *testing.T) {
	p := NewCachedPredictor(doubler, 0, []string{"x", "y"})
	_, err := p.PredictBatch(context.Background(), map[string]value.Value{
		"x": value.NewFloats([]float64{1}),
	})
	if err == nil {
		t.Fatal("missing cache key column should error, not panic")
	}
	if want := `cache key column "y" missing`; !strings.Contains(err.Error(), want) {
		t.Errorf("error = %v, want mention of %q", err, want)
	}
	// Mismatched column lengths are rejected too.
	_, err = p.PredictBatch(context.Background(), map[string]value.Value{
		"x": value.NewFloats([]float64{1, 2}),
		"y": value.NewFloats([]float64{1}),
	})
	if err == nil {
		t.Fatal("ragged cache key columns should error")
	}
	// Empty key order is a configuration error.
	p = NewCachedPredictor(doubler, 0, nil)
	if _, err := p.PredictBatch(context.Background(), oneRow(1)); err == nil {
		t.Fatal("empty cache key order should error")
	}
}
