package serving

import (
	"sync/atomic"
	"time"

	"willump/internal/cascade"
	"willump/internal/metrics"
)

// modelStats accumulates per-model serving telemetry. One instance lives on
// each Hosted model and survives version hot swaps, so operators see a
// continuous series across deployments.
type modelStats struct {
	requests atomic.Int64
	errors   atomic.Int64
	rejected atomic.Int64

	latencies *metrics.Window // milliseconds
	meter     *metrics.Meter

	cascadeTotal atomic.Int64
	cascadeSmall atomic.Int64
}

func newModelStats() *modelStats {
	return &modelStats{
		latencies: metrics.NewWindow(2048),
		meter:     metrics.NewMeter(time.Minute),
	}
}

// record accounts one served request: its latency, its outcome, and its
// contribution to the QPS meter.
func (s *modelStats) record(start time.Time, err error) {
	now := time.Now()
	s.requests.Add(1)
	s.meter.Mark(now)
	s.latencies.Observe(float64(now.Sub(start)) / float64(time.Millisecond))
	if err != nil {
		s.errors.Add(1)
	}
}

// reject accounts one request turned away by admission control (HTTP 429).
func (s *modelStats) reject() { s.rejected.Add(1) }

// recordCascade folds one batch's cascade serving counters in.
func (s *modelStats) recordCascade(cs cascade.ServeStats) {
	if cs.Total == 0 {
		return
	}
	s.cascadeTotal.Add(int64(cs.Total))
	s.cascadeSmall.Add(int64(cs.SmallOnly))
}

// FeatureCacheStats is a snapshot of a deployed pipeline's feature-level
// cache counters, summed over its per-IFV caches. Unlike the other counters
// it lives on the pipeline (the active version), not the Hosted model, so a
// hot swap naturally starts it fresh with the new version's caches.
type FeatureCacheStats struct {
	// Hits and Misses count per-row cache lookups by outcome.
	Hits, Misses int64
	// Evictions counts entries displaced by the eviction policy.
	Evictions int64
	// Coalesced counts lookups served by waiting on another request's
	// in-flight computation of the same key (singleflight miss coalescing).
	Coalesced int64
	// HitRate is Hits / (Hits + Misses), 0 before any lookup.
	HitRate float64
}

// FeatureStoreStats is a snapshot of a deployed pipeline's remote
// feature-store client health, aggregated over its lookup tables' store
// clients. Like the feature-cache counters it lives on the active version's
// pipeline, so a hot swap starts it fresh.
type FeatureStoreStats struct {
	// Requests counts remote multi-get calls; Retries counts re-attempts
	// after transient failures.
	Requests int64
	Retries  int64
	// HedgesIssued / HedgesWon count speculative tail-latency attempts and
	// how many beat the primary.
	HedgesIssued int64
	HedgesWon    int64
	// Degraded counts requests served from cached/default feature values
	// while the circuit breaker was open.
	Degraded int64
	// BreakerOpens counts breaker open transitions; BreakerState is the
	// current state ("closed", "half-open", "open").
	BreakerOpens int64
	BreakerState string
	// Inflight is the number of store lookups currently on the wire.
	Inflight int64
	// LatencyP50 / LatencyP99 are windowed store round-trip quantiles.
	LatencyP50 time.Duration
	LatencyP99 time.Duration
}

// ModelStats is a point-in-time snapshot of one model's serving telemetry,
// as reported on /v1/models/{name}/stats.
type ModelStats struct {
	// Model and Version identify the deployment the snapshot was taken of.
	Model   string
	Version string
	// Requests, Errors, and Rejected count served, failed, and
	// admission-rejected (HTTP 429) requests since deployment.
	Requests int64
	Errors   int64
	Rejected int64
	// QPS is the request rate over the trailing minute.
	QPS float64
	// LatencyP50/P90/P99/P999 are streaming quantiles over recent requests.
	LatencyP50  time.Duration
	LatencyP90  time.Duration
	LatencyP99  time.Duration
	LatencyP999 time.Duration
	// CascadeTotal and CascadeSmallOnly count rows served through the
	// cascade and the subset answered by the small model alone;
	// CascadeHitRate is their ratio (0 when no cascade is deployed).
	CascadeTotal     int64
	CascadeSmallOnly int64
	CascadeHitRate   float64
	// FeatureCache carries the active version's feature-level cache
	// counters; nil when the deployed pipeline has no feature caches.
	FeatureCache *FeatureCacheStats
	// FeatureStore carries the active version's remote feature-store client
	// health; nil when no lookup table is backed by a reporting store
	// client.
	FeatureStore *FeatureStoreStats
	// RecentSlow lists the model's recently retained slow or failed
	// requests (newest first); empty unless tracing is enabled on the
	// deployed pipeline.
	RecentSlow []SlowQuery
}

// SlowQuery is one retained slow or failed request from the tracer's
// recent-slow ring.
type SlowQuery struct {
	// Start is when the request began.
	Start time.Time
	// Latency is the request's end-to-end latency.
	Latency time.Duration
	// Err is the request's error text, empty on success (retained because
	// it was slow).
	Err string
	// Sampled reports whether a full span trace was also retained for the
	// request (GET /v1/traces); tail-sampled requests have totals only.
	Sampled bool
}

// snapshot captures the current counters.
func (s *modelStats) snapshot(model, version string) ModelStats {
	ms := ModelStats{
		Model:            model,
		Version:          version,
		Requests:         s.requests.Load(),
		Errors:           s.errors.Load(),
		Rejected:         s.rejected.Load(),
		QPS:              s.meter.Rate(time.Now()),
		CascadeTotal:     s.cascadeTotal.Load(),
		CascadeSmallOnly: s.cascadeSmall.Load(),
	}
	qs := s.latencies.Quantiles(50, 90, 99, 99.9)
	ms.LatencyP50 = time.Duration(qs[0] * float64(time.Millisecond))
	ms.LatencyP90 = time.Duration(qs[1] * float64(time.Millisecond))
	ms.LatencyP99 = time.Duration(qs[2] * float64(time.Millisecond))
	ms.LatencyP999 = time.Duration(qs[3] * float64(time.Millisecond))
	if ms.CascadeTotal > 0 {
		ms.CascadeHitRate = float64(ms.CascadeSmallOnly) / float64(ms.CascadeTotal)
	}
	return ms
}
