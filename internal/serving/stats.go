package serving

import (
	"sync/atomic"
	"time"

	"willump/internal/adapt"
	"willump/internal/admission"
	"willump/internal/cascade"
	"willump/internal/metrics"
)

// modelStats accumulates per-model serving telemetry. One instance lives on
// each Hosted model and survives version hot swaps, so operators see a
// continuous series across deployments.
type modelStats struct {
	requests atomic.Int64
	errors   atomic.Int64
	rejected atomic.Int64

	latencies *metrics.Window // milliseconds
	meter     *metrics.Meter

	cascadeTotal atomic.Int64
	cascadeSmall atomic.Int64
}

func newModelStats() *modelStats {
	return &modelStats{
		latencies: metrics.NewWindow(2048),
		meter:     metrics.NewMeter(time.Minute),
	}
}

// record accounts one served request: its latency, its outcome, and its
// contribution to the QPS meter.
func (s *modelStats) record(start time.Time, err error) {
	now := time.Now()
	s.requests.Add(1)
	s.meter.Mark(now)
	s.latencies.Observe(float64(now.Sub(start)) / float64(time.Millisecond))
	if err != nil {
		s.errors.Add(1)
	}
}

// reject accounts one request turned away by admission control (HTTP 429).
func (s *modelStats) reject() { s.rejected.Add(1) }

// recordCascade folds one batch's cascade serving counters in.
func (s *modelStats) recordCascade(cs cascade.ServeStats) {
	if cs.Total == 0 {
		return
	}
	s.cascadeTotal.Add(int64(cs.Total))
	s.cascadeSmall.Add(int64(cs.SmallOnly))
}

// FeatureCacheStats is a snapshot of a deployed pipeline's feature-level
// cache counters, summed over its per-IFV caches. Unlike the other counters
// it lives on the pipeline (the active version), not the Hosted model, so a
// hot swap naturally starts it fresh with the new version's caches.
type FeatureCacheStats struct {
	// Hits and Misses count per-row cache lookups by outcome.
	Hits, Misses int64
	// Evictions counts entries displaced by the eviction policy.
	Evictions int64
	// Coalesced counts lookups served by waiting on another request's
	// in-flight computation of the same key (singleflight miss coalescing).
	Coalesced int64
	// HitRate is Hits / (Hits + Misses), 0 before any lookup.
	HitRate float64
}

// FeatureStoreStats is a snapshot of a deployed pipeline's remote
// feature-store client health, aggregated over its lookup tables' store
// clients. Like the feature-cache counters it lives on the active version's
// pipeline, so a hot swap starts it fresh.
type FeatureStoreStats struct {
	// Requests counts remote multi-get calls; Retries counts re-attempts
	// after transient failures.
	Requests int64
	Retries  int64
	// HedgesIssued / HedgesWon count speculative tail-latency attempts and
	// how many beat the primary.
	HedgesIssued int64
	HedgesWon    int64
	// Degraded counts requests served from cached/default feature values
	// while the circuit breaker was open.
	Degraded int64
	// BreakerOpens counts breaker open transitions; BreakerState is the
	// current state ("closed", "half-open", "open").
	BreakerOpens int64
	BreakerState string
	// Inflight is the number of store lookups currently on the wire.
	Inflight int64
	// LatencyP50 / LatencyP99 are windowed store round-trip quantiles.
	LatencyP50 time.Duration
	LatencyP99 time.Duration
}

// AdmissionStats is a snapshot of a model's SLO admission controller: the
// service-time forecast, adaptive concurrency limit, brownout ladder
// position, and shed/degraded/expired counters. It lives on the Hosted
// model (like the request counters), so it survives hot swaps.
type AdmissionStats struct {
	// SLO is the configured p99 completion target (0 when admission is
	// disabled — the snapshot then only carries the expired count).
	SLO time.Duration
	// Limit is the current adaptive (AIMD) concurrency limit; Inflight the
	// admitted work currently queued or executing under it.
	Limit    int64
	Inflight int64
	// Level is the measured brownout rung before per-request criticality
	// shifts: 0 normal, 1 degrade (small-only / shrunken budgets), 2
	// cache-only.
	Level int
	// ShedPredicted counts requests shed because their forecast completion
	// missed their budget; ShedLimit those shed at the concurrency limit;
	// ShedBrownout those turned away at the cache-only rung with no cached
	// answer.
	ShedPredicted int64
	ShedLimit     int64
	ShedBrownout  int64
	// Expired counts admitted requests culled from batches before
	// execution because their context was already done.
	Expired int64
	// DegradedSmallOnly / DegradedBudget / DegradedCache count successful
	// degraded responses by brownout rung.
	DegradedSmallOnly int64
	DegradedBudget    int64
	DegradedCache     int64
	// ForecastService is the per-item service-time forecast; ForecastError
	// its mean absolute deviation (the shedder's padding unit).
	ForecastService time.Duration
	ForecastError   time.Duration
	// Pressure is EWMA(end-to-end latency / SLO): above 1, the SLO is
	// being missed.
	Pressure float64
}

// admissionStats converts a controller snapshot to the public stats form,
// nil when there is nothing to report (admission disabled and every
// counter zero) so legacy stats responses keep their shape.
func admissionStats(c *admission.Controller) *AdmissionStats {
	snap := c.Snapshot()
	if !snap.Enabled && snap.Expired == 0 &&
		snap.ShedPredicted == 0 && snap.ShedLimit == 0 && snap.ShedBrownout == 0 &&
		snap.DegradedSmallOnly == 0 && snap.DegradedBudget == 0 && snap.DegradedCache == 0 {
		return nil
	}
	return &AdmissionStats{
		SLO:               snap.SLO,
		Limit:             snap.Limit,
		Inflight:          snap.Inflight,
		Level:             int(snap.Level),
		ShedPredicted:     snap.ShedPredicted,
		ShedLimit:         snap.ShedLimit,
		ShedBrownout:      snap.ShedBrownout,
		Expired:           snap.Expired,
		DegradedSmallOnly: snap.DegradedSmallOnly,
		DegradedBudget:    snap.DegradedBudget,
		DegradedCache:     snap.DegradedCache,
		ForecastService:   snap.ForecastService,
		ForecastError:     snap.ForecastError,
		Pressure:          snap.PressureRatio,
	}
}

// AdaptationStats is a snapshot of a model's online adaptation
// controller: drift-detector state, canary lifecycle, and cumulative
// adaptation counters. Nil on models without adaptation enabled, so
// legacy stats responses keep their shape.
type AdaptationStats struct {
	// State is the controller's phase: "idle", "canarying", "cooldown".
	State string
	// CanaryTag / CanaryFraction describe the in-flight canary ("" / 0
	// outside canary rollouts).
	CanaryTag      string
	CanaryFraction float64
	// Sampled counts requests shadow-sampled into the detectors;
	// ShadowDropped those lost to a full shadow queue (never blocking the
	// hot path); ReservoirRows the rows currently available for a re-fit.
	Sampled       int64
	ShadowDropped int64
	ReservoirRows int
	// KeyReuseObserved / KeyReuseExpected are the live key-reuse
	// measurement and the cache plan's estimate it is checked against;
	// ScorePH and ScoreKS the score-drift detector statistics. KeyDrift /
	// ScoreDrift latch confirmed-but-unresolved drift.
	KeyReuseObserved float64
	KeyReuseExpected float64
	ScorePH          float64
	ScoreKS          float64
	KeyDrift         bool
	ScoreDrift       bool
	// Lifecycle counters: drift confirmations by signal, plan re-fits,
	// canaries launched, promoted, rolled back, and canary hook errors.
	KeyDriftEvents   int64
	ScoreDriftEvents int64
	Refits           int64
	Canaries         int64
	Promotions       int64
	Rollbacks        int64
	CanaryErrors     int64
	// LastRollback is the most recent rollback's reason ("" before any).
	LastRollback string
}

// adaptationStats converts a controller snapshot to the public stats form.
func adaptationStats(c *adapt.Controller) *AdaptationStats {
	s := c.Snapshot()
	return &AdaptationStats{
		State:            s.State,
		CanaryTag:        s.CanaryTag,
		CanaryFraction:   s.CanaryFraction,
		Sampled:          s.Sampled,
		ShadowDropped:    s.ShadowDropped,
		ReservoirRows:    s.ReservoirRows,
		KeyReuseObserved: s.KeyReuseObserved,
		KeyReuseExpected: s.KeyReuseExpected,
		ScorePH:          s.ScorePH,
		ScoreKS:          s.ScoreKS,
		KeyDrift:         s.KeyDrift,
		ScoreDrift:       s.ScoreDrift,
		KeyDriftEvents:   s.KeyDriftEvents,
		ScoreDriftEvents: s.ScoreDriftEvents,
		Refits:           s.Refits,
		Canaries:         s.Canaries,
		Promotions:       s.Promotions,
		Rollbacks:        s.Rollbacks,
		CanaryErrors:     s.CanaryErrors,
		LastRollback:     s.LastRollback,
	}
}

// ModelStats is a point-in-time snapshot of one model's serving telemetry,
// as reported on /v1/models/{name}/stats.
type ModelStats struct {
	// Model and Version identify the deployment the snapshot was taken of.
	Model   string
	Version string
	// Requests, Errors, and Rejected count served, failed, and
	// admission-rejected (HTTP 429) requests since deployment.
	Requests int64
	Errors   int64
	Rejected int64
	// QPS is the request rate over the trailing minute.
	QPS float64
	// LatencyP50/P90/P99/P999 are streaming quantiles over recent requests.
	LatencyP50  time.Duration
	LatencyP90  time.Duration
	LatencyP99  time.Duration
	LatencyP999 time.Duration
	// CascadeTotal and CascadeSmallOnly count rows served through the
	// cascade and the subset answered by the small model alone;
	// CascadeHitRate is their ratio (0 when no cascade is deployed).
	CascadeTotal     int64
	CascadeSmallOnly int64
	CascadeHitRate   float64
	// FeatureCache carries the active version's feature-level cache
	// counters; nil when the deployed pipeline has no feature caches.
	FeatureCache *FeatureCacheStats
	// FeatureStore carries the active version's remote feature-store client
	// health; nil when no lookup table is backed by a reporting store
	// client.
	FeatureStore *FeatureStoreStats
	// Admission carries the SLO admission controller's snapshot; nil when
	// admission is disabled and nothing was ever shed, degraded, or
	// expired (legacy deployments see the stats shape unchanged).
	Admission *AdmissionStats
	// Adaptation carries the online adaptation controller's snapshot; nil
	// when adaptation is not enabled on the model.
	Adaptation *AdaptationStats
	// RecentSlow lists the model's recently retained slow or failed
	// requests (newest first); empty unless tracing is enabled on the
	// deployed pipeline.
	RecentSlow []SlowQuery
}

// SlowQuery is one retained slow or failed request from the tracer's
// recent-slow ring.
type SlowQuery struct {
	// Start is when the request began.
	Start time.Time
	// Latency is the request's end-to-end latency.
	Latency time.Duration
	// Err is the request's error text, empty on success (retained because
	// it was slow).
	Err string
	// Sampled reports whether a full span trace was also retained for the
	// request (GET /v1/traces); tail-sampled requests have totals only.
	Sampled bool
}

// snapshot captures the current counters.
func (s *modelStats) snapshot(model, version string) ModelStats {
	ms := ModelStats{
		Model:            model,
		Version:          version,
		Requests:         s.requests.Load(),
		Errors:           s.errors.Load(),
		Rejected:         s.rejected.Load(),
		QPS:              s.meter.Rate(time.Now()),
		CascadeTotal:     s.cascadeTotal.Load(),
		CascadeSmallOnly: s.cascadeSmall.Load(),
	}
	qs := s.latencies.Quantiles(50, 90, 99, 99.9)
	ms.LatencyP50 = time.Duration(qs[0] * float64(time.Millisecond))
	ms.LatencyP90 = time.Duration(qs[1] * float64(time.Millisecond))
	ms.LatencyP99 = time.Duration(qs[2] * float64(time.Millisecond))
	ms.LatencyP999 = time.Duration(qs[3] * float64(time.Millisecond))
	if ms.CascadeTotal > 0 {
		ms.CascadeHitRate = float64(ms.CascadeSmallOnly) / float64(ms.CascadeTotal)
	}
	return ms
}
