package serving

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"willump/internal/core"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite wire protocol golden files")

// goldenCheck marshals v (indented, stable key order) and compares it
// byte-for-byte against the named golden file, then decodes the golden file
// back into a fresh instance and compares structs — pinning both directions
// of the wire format the way the artifact header test pins its encoding.
func goldenCheck[T any](t *testing.T, name string, v T) {
	t.Helper()
	got, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatalf("writing golden: %v", err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("wire encoding drifted from %s:\n got: %s\nwant: %s", path, got, want)
	}
	var back T
	if err := json.Unmarshal(want, &back); err != nil {
		t.Fatalf("decoding golden: %v", err)
	}
	if !reflect.DeepEqual(back, v) {
		t.Errorf("golden round trip drifted:\n got: %+v\nwant: %+v", back, v)
	}
}

func TestWireRequestGolden(t *testing.T) {
	th := 0.85
	req := wireRequest{
		Inputs: map[string]wireColumn{
			"title": {Kind: "strings", Strings: []string{"abc", "def"}},
			"score": {Kind: "floats", Floats: []float64{1.5, -2.25}},
			"id":    {Kind: "ints", Ints: []int64{7, 8}},
		},
		Options: &wireOptions{
			CascadeThreshold: &th,
			K:                10,
			Budget:           200,
			Point:            false,
			DeadlineMillis:   1500,
		},
	}
	goldenCheck(t, "wire_request_options.golden.json", req)
}

// TestWireRequestLegacyGolden pins the pre-options request shape: a request
// without per-request options must serialize with no options key at all, so
// new clients speak byte-identically to old servers.
func TestWireRequestLegacyGolden(t *testing.T) {
	req := wireRequest{
		Inputs: map[string]wireColumn{
			"x": {Kind: "floats", Floats: []float64{1, 2, 3}},
		},
	}
	goldenCheck(t, "wire_request_legacy.golden.json", req)
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, []byte("options")) {
		t.Errorf("zero-option request leaks an options field: %s", raw)
	}
}

func TestWireResponseGolden(t *testing.T) {
	goldenCheck(t, "wire_response_predictions.golden.json",
		wireResponse{Predictions: []float64{0.25, 0.75}})
	goldenCheck(t, "wire_response_indices.golden.json",
		wireResponse{Indices: []int{4, 1, 3}})
	goldenCheck(t, "wire_response_error.golden.json",
		wireResponse{Error: "serving: empty request"})
}

func TestWireModelListGolden(t *testing.T) {
	goldenCheck(t, "wire_models.golden.json", wireModelList{Models: []wireModelInfo{
		{
			Name: "toxic", Version: "v2", Default: true,
			Inputs: []string{"comment"}, Cascade: true, CascadeThreshold: 0.7, TopK: true,
		},
		{Name: "product", Version: "v1", Inputs: []string{"title"}},
	}})
}

func TestWireStatsGolden(t *testing.T) {
	goldenCheck(t, "wire_stats.golden.json", wireStats{
		Model: "toxic", Version: "v2",
		Requests: 1200, Errors: 3, Rejected: 17, QPS: 56.5,
		LatencyMS: wireLatency{P50: 1.25, P90: 4.5, P99: 12.75},
		Cascade:   &wireCascade{Total: 4800, SmallOnly: 4100, HitRate: 0.8541666666666666},
	})
}

// TestWireStatsFeatureCacheGolden pins the stats shape for a model whose
// pipeline carries feature-level caches. The field is omitempty, so the
// pre-cache golden above also pins that cacheless models serialize
// byte-identically to older servers.
func TestWireStatsFeatureCacheGolden(t *testing.T) {
	goldenCheck(t, "wire_stats_feature_cache.golden.json", wireStats{
		Model: "music", Version: "v5",
		Requests: 900, QPS: 12.25,
		LatencyMS: wireLatency{P50: 0.5, P90: 1.5, P99: 3.75},
		FeatureCache: &wireFeatureCache{
			Hits: 8000, Misses: 2000, Evictions: 450, Coalesced: 120, HitRate: 0.8,
		},
	})
}

// TestWireStatsFeatureStoreGolden pins the stats shape for a model whose
// lookup tables are backed by a remote feature-store client. The block is
// omitempty, so the legacy goldens above also pin that store-less models
// serialize byte-identically to pre-store servers.
func TestWireStatsFeatureStoreGolden(t *testing.T) {
	goldenCheck(t, "wire_stats_feature_store.golden.json", wireStats{
		Model: "credit", Version: "v3",
		Requests: 640, QPS: 9.5,
		LatencyMS: wireLatency{P50: 1.75, P90: 3.25, P99: 8.5},
		FeatureStore: &wireFeatureStore{
			Requests: 640, Retries: 4, HedgesIssued: 31, HedgesWon: 12,
			Degraded: 2, BreakerOpens: 1, BreakerState: "closed",
			Inflight: 3, P50MS: 0.85, P99MS: 4.25,
		},
	})
}

// TestWireStatsTracingGolden pins the stats shape for a model with tracing
// enabled: the p999 quantile and the recent-slow list ride along. Both are
// omitempty, so the legacy golden above also pins that tracing-less models
// serialize byte-identically to pre-tracing servers.
func TestWireStatsTracingGolden(t *testing.T) {
	goldenCheck(t, "wire_stats_tracing.golden.json", wireStats{
		Model: "toxic", Version: "v3",
		Requests: 5000, Errors: 2, QPS: 80,
		LatencyMS: wireLatency{P50: 1, P90: 2.5, P99: 9, P999: 27.5},
		RecentSlow: []wireSlow{
			{StartUnixNano: 1700000000000000000, LatencyMS: 31.5, Sampled: true},
			{StartUnixNano: 1700000000100000000, LatencyMS: 2.25, Error: "context deadline exceeded"},
		},
	})
}

// TestWireRequestBrownoutGolden pins the request shape carrying the PR's
// overload knobs: small-model-only scoring and a criticality class.
func TestWireRequestBrownoutGolden(t *testing.T) {
	goldenCheck(t, "wire_request_brownout.golden.json", wireRequest{
		Inputs: map[string]wireColumn{
			"x": {Kind: "floats", Floats: []float64{1.5}},
		},
		Options: &wireOptions{SmallOnly: true, Criticality: "high"},
	})
}

// TestWireResponseDegradedGolden pins the degraded-response shape — and that
// the marker is omitempty, so full-fidelity responses stay byte-identical to
// the legacy goldens above.
func TestWireResponseDegradedGolden(t *testing.T) {
	goldenCheck(t, "wire_response_degraded.golden.json",
		wireResponse{Predictions: []float64{0.5}, Degraded: "small-only"})
	raw, err := json.Marshal(wireResponse{Predictions: []float64{0.25, 0.75}})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, []byte("degraded")) {
		t.Errorf("full-fidelity response leaks a degraded field: %s", raw)
	}
}

// TestWireStatsAdmissionGolden pins the stats shape for a model under SLO
// admission control. The block is omitempty, so the legacy stats goldens
// above also pin that admission-less models serialize byte-identically.
func TestWireStatsAdmissionGolden(t *testing.T) {
	goldenCheck(t, "wire_stats_admission.golden.json", wireStats{
		Model: "toxic", Version: "v4",
		Requests: 20000, Errors: 12, Rejected: 340, QPS: 410.5,
		LatencyMS: wireLatency{P50: 1.5, P90: 4.25, P99: 9.75},
		Admission: &wireAdmission{
			SLOMS: 10, Limit: 96, Inflight: 41, Level: 1,
			ShedPredicted: 220, ShedLimit: 85, ShedBrownout: 35,
			Expired: 14, DegradedSmallOnly: 1200, DegradedBudget: 90,
			DegradedCache: 310, ForecastServiceMS: 2.25,
			ForecastErrorMS: 0.75, Pressure: 0.95,
		},
	})
	// Options without overload knobs must not leak the new fields either.
	raw, err := json.Marshal(wireOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, leak := range []string{"small_only", "criticality"} {
		if bytes.Contains(raw, []byte(leak)) {
			t.Errorf("legacy options leak %q: %s", leak, raw)
		}
	}
}

// TestWireStatsAdaptationGolden pins the stats shape for a model with
// online adaptation enabled, mid-canary. The block is omitempty, so the
// legacy stats goldens above also pin that non-adapted models serialize
// byte-identically.
func TestWireStatsAdaptationGolden(t *testing.T) {
	goldenCheck(t, "wire_stats_adaptation.golden.json", wireStats{
		Model: "toxic", Version: "v5",
		Requests: 48000, Errors: 9, QPS: 520.25,
		LatencyMS: wireLatency{P50: 1.25, P90: 3.5, P99: 8.25},
		Adaptation: &wireAdaptation{
			State: "canarying", CanaryTag: "adapt-3", CanaryFraction: 0.1,
			Sampled: 6000, ShadowDropped: 14, ReservoirRows: 512,
			KeyReuseObserved: 0.31, KeyReuseExpected: 0.88,
			ScorePH: 0.12, ScoreKS: 0.04,
			KeyDrift: true, KeyDriftEvents: 3, ScoreDriftEvents: 1,
			Refits: 3, Canaries: 3, Promotions: 1, Rollbacks: 1,
			LastRollback: "guard regression",
		},
	})
	// Non-adapted stats must not leak the block.
	raw, err := json.Marshal(wireStats{Model: "toxic", Version: "v5"})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, []byte("adaptation")) {
		t.Errorf("non-adapted stats leak an adaptation field: %s", raw)
	}
}

// TestWireTracesGolden pins the GET /v1/traces shape: a head-sampled trace
// with stage spans and a tail-sampled entry with totals only.
func TestWireTracesGolden(t *testing.T) {
	goldenCheck(t, "wire_traces.golden.json", wireTraceList{Traces: []wireTrace{
		{
			ID: 42, Model: "toxic", StartUnixNano: 1700000000000000000,
			TotalMS: 3.5, Sampled: true,
			Spans: []wireSpan{
				{Stage: "queue:wait", OffsetMS: 0, DurMS: 0.125},
				{Stage: "ifv:0", OffsetMS: 0.125, DurMS: 1.5},
				{Stage: "model:score", OffsetMS: 1.75, DurMS: 0.5},
			},
		},
		{
			Model: "toxic", StartUnixNano: 1700000000200000000,
			TotalMS: 42.5, Error: "context canceled",
		},
	}})
}

// TestWireOptionsConversion checks the wire <-> core options mapping both
// ways, including the nil (no overrides) fast path.
func TestWireOptionsConversion(t *testing.T) {
	po, err := (*wireOptions)(nil).toPredictOptions()
	if err != nil || !po.IsZero() {
		t.Fatalf("nil options = %+v, %v; want zero", po, err)
	}
	if w := fromPredictOptions(core.PredictOptions{}); w != nil {
		t.Fatalf("zero options encoded as %+v, want nil", w)
	}
	th := 0.6
	in := core.ResolvePredict(
		core.WithCascadeThreshold(th),
		core.WithTopKBudget(42),
		core.WithPointQuery(),
		core.WithPredictDeadline(250*1e6), // 250ms
	)
	w := fromPredictOptions(in)
	back, err := w.toPredictOptions()
	if err != nil {
		t.Fatal(err)
	}
	if *back.CascadeThreshold != th || back.Budget != 42 || !back.Point || back.Deadline != 250*1e6 {
		t.Errorf("round trip = %+v, want %+v", back, in)
	}
	// Sub-millisecond deadlines survive the wire exactly.
	sub := fromPredictOptions(core.ResolvePredict(core.WithPredictDeadline(500 * 1e3))) // 500us
	subBack, err := sub.toPredictOptions()
	if err != nil {
		t.Fatal(err)
	}
	if subBack.Deadline != 500*1e3 {
		t.Errorf("sub-ms deadline round trip = %v, want 500us", subBack.Deadline)
	}
	// Invalid options are rejected at the boundary.
	if _, err := (&wireOptions{K: -1}).toPredictOptions(); err == nil {
		t.Error("negative k accepted")
	}
	if _, err := (&wireOptions{DeadlineMillis: -5}).toPredictOptions(); err == nil {
		t.Error("negative deadline accepted")
	}
}

// TestWireUnknownFieldsIgnored: older servers must tolerate requests from
// newer clients that add optional fields.
func TestWireUnknownFieldsIgnored(t *testing.T) {
	raw := []byte(`{"inputs":{"x":{"kind":"floats","floats":[1]}},"options":{"k":3,"future_knob":true},"future_field":1}`)
	var req wireRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		t.Fatalf("decoding forward-compatible request: %v", err)
	}
	if req.Options == nil || req.Options.K != 3 {
		t.Errorf("options = %+v, want k=3", req.Options)
	}
	if _, _, err := decodeInputs(req.Inputs); err != nil {
		t.Errorf("decodeInputs: %v", err)
	}
}
