// Package serving implements the Clipper-like model serving system the
// paper integrates Willump with (section 6.3, Table 6): an HTTP/JSON RPC
// frontend with request queueing, adaptive batching, and a Clipper-style
// end-to-end prediction cache. Like Clipper, it treats the hosted pipeline
// as a black box — Willump's optimizations happen beneath it, inside the
// hosted predictor.
package serving

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"willump/internal/cache"
	"willump/internal/value"
)

// Predictor is a batch prediction function: the black box a serving system
// hosts. Both the unoptimized interpreted pipeline and a Willump-optimized
// pipeline satisfy it. The context carries request cancellation and
// deadlines through to pipeline execution.
type Predictor interface {
	PredictBatch(ctx context.Context, inputs map[string]value.Value) ([]float64, error)
}

// PredictorFunc adapts a function to the Predictor interface.
type PredictorFunc func(ctx context.Context, inputs map[string]value.Value) ([]float64, error)

// PredictBatch implements Predictor.
func (f PredictorFunc) PredictBatch(ctx context.Context, inputs map[string]value.Value) ([]float64, error) {
	return f(ctx, inputs)
}

// CachedPredictor wraps a Predictor with a Clipper-style end-to-end
// prediction cache: the key is the entire raw input tuple, the value the
// prediction. It is the baseline of the paper's Tables 2 and 3 — contrast
// with feature-level caching, which keys on each IFV's sources instead. The
// cache is the same sharded concurrent structure the feature-level caches
// use, so concurrent requests through one deployed version do not serialize
// on a cache mutex.
type CachedPredictor struct {
	Inner Predictor
	cache *cache.Sharded
	keys  []string // input column order for stable keys
}

// NewCachedPredictor wraps inner with an end-to-end sharded cache (capacity
// <= 0 for unbounded). keyOrder fixes the input-column order used in cache
// keys.
func NewCachedPredictor(inner Predictor, capacity int, keyOrder []string) *CachedPredictor {
	ks := make([]string, len(keyOrder))
	copy(ks, keyOrder)
	return &CachedPredictor{Inner: inner, cache: cache.NewSharded(capacity, 0), keys: ks}
}

// PredictBatch implements Predictor, serving repeated input tuples from the
// cache and computing only the misses. Every column named in the cache key
// order must be present and the same length — a missing column would
// otherwise silently key the cache on a zero value and miscount the batch.
// Cached predictions are copied out (CopyInto), never aliased.
func (p *CachedPredictor) PredictBatch(ctx context.Context, inputs map[string]value.Value) ([]float64, error) {
	if len(p.keys) == 0 {
		return nil, fmt.Errorf("serving: cached predictor has an empty cache key order")
	}
	cols := make([]value.Value, len(p.keys))
	n := -1
	for i, k := range p.keys {
		v, ok := inputs[k]
		if !ok {
			return nil, fmt.Errorf("serving: cache key column %q missing from request (have %s)", k, columnNames(inputs))
		}
		if n == -1 {
			n = v.Len()
		} else if v.Len() != n {
			return nil, fmt.Errorf("serving: cache key column %q has %d rows, want %d", k, v.Len(), n)
		}
		cols[i] = v
	}
	out := make([]float64, n)
	var missRows []int
	var keyBuf []byte
	offs := make([]int, n+1)
	hashes := make([]uint64, n)
	for r := 0; r < n; r++ {
		keyBuf = cache.AppendRowKey(keyBuf, cols, r)
		offs[r+1] = len(keyBuf)
		key := keyBuf[offs[r]:offs[r+1]]
		hashes[r] = cache.Hash64(key)
		if !p.cache.CopyInto(hashes[r], key, out[r:r+1]) {
			missRows = append(missRows, r)
		}
	}
	if len(missRows) > 0 {
		sub := make(map[string]value.Value, len(inputs))
		for k, v := range inputs {
			sub[k] = v.Gather(missRows)
		}
		preds, err := p.Inner.PredictBatch(ctx, sub)
		if err != nil {
			return nil, err
		}
		for i, r := range missRows {
			out[r] = preds[i]
			p.cache.Put(hashes[r], keyBuf[offs[r]:offs[r+1]], preds[i:i+1])
		}
	}
	return out, nil
}

// Peek answers the batch purely from the cache: every row must hit, no
// prediction is computed. The brownout cache-only rung uses it to serve a
// degraded-but-real answer without touching the saturated pipeline. The
// lookups count toward the cache's hit/miss stats like any other.
func (p *CachedPredictor) Peek(inputs map[string]value.Value) ([]float64, bool) {
	if len(p.keys) == 0 {
		return nil, false
	}
	cols := make([]value.Value, len(p.keys))
	n := -1
	for i, k := range p.keys {
		v, ok := inputs[k]
		if !ok {
			return nil, false
		}
		if n == -1 {
			n = v.Len()
		} else if v.Len() != n {
			return nil, false
		}
		cols[i] = v
	}
	out := make([]float64, n)
	var keyBuf []byte
	for r := 0; r < n; r++ {
		off := len(keyBuf)
		keyBuf = cache.AppendRowKey(keyBuf, cols, r)
		key := keyBuf[off:]
		if !p.cache.CopyInto(cache.Hash64(key), key, out[r:r+1]) {
			return nil, false
		}
	}
	return out, true
}

// Stats returns the end-to-end cache's hit and miss counts.
func (p *CachedPredictor) Stats() (hits, misses int64) {
	s := p.cache.Stats()
	return s.Hits, s.Misses
}

// columnNames renders a request's column names for error messages.
func columnNames(inputs map[string]value.Value) string {
	names := make([]string, 0, len(inputs))
	for k := range inputs {
		names = append(names, k)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
