package serving

import (
	"context"
	"net/http"
	"strings"
	"testing"
	"time"

	"willump/internal/admission"
	"willump/internal/core"
	"willump/internal/fixture"
	"willump/internal/observ"
	"willump/internal/value"
)

// tracedFixtureServer deploys the standard fixture pipeline with tracing
// enabled (every request head-sampled) behind a started server.
func tracedFixtureServer(t *testing.T) (*core.Optimized, *Registry, *Server, *Client) {
	t.Helper()
	return tracedFixtureServerEvery(t, 1)
}

// tracedFixtureServerEvery is tracedFixtureServer with the head-sampling
// 1-in-N knob exposed.
func tracedFixtureServerEvery(t *testing.T, sampleEvery int) (*core.Optimized, *Registry, *Server, *Client) {
	t.Helper()
	fx, err := fixture.NewClassification(11, 600, 200, 200, 0.7, 10)
	if err != nil {
		t.Fatal(err)
	}
	p := &core.Pipeline{Graph: fx.Prog.G, Model: fx.Model}
	train := core.Dataset{Inputs: fx.Train.Inputs, Y: fx.Train.Y}
	valid := core.Dataset{Inputs: fx.Valid.Inputs, Y: fx.Valid.Y}
	o, _, err := core.Optimize(context.Background(), p, train, valid, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	o.EnableTracing(sampleEvery, 64)
	reg := NewRegistry(Options{})
	if err := reg.Deploy("fixture", "v1", o); err != nil {
		t.Fatal(err)
	}
	srv := NewRegistryServer(reg)
	url, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return o, reg, srv, NewClient(url)
}

func fixtureRow() map[string]value.Value {
	return map[string]value.Value{
		"cheap_id": value.NewInts([]int64{7}),
		"heavy_id": value.NewInts([]int64{9}),
	}
}

// TestNewPredictorServerError pins the error-returning constructor path: a
// configuration that could never serve a request is reported, not panicked,
// while the deprecated NewServer keeps its panicking contract.
func TestNewPredictorServerError(t *testing.T) {
	if _, err := NewPredictorServer(nil, Options{}); err == nil {
		t.Error("nil predictor accepted")
	}
	if _, err := NewPredictorServer(doubler, Options{CacheCapacity: 128}); err == nil {
		t.Error("prediction cache without key columns accepted")
	}
	s, err := NewPredictorServer(doubler, Options{})
	if err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	defer s.Close()

	defer func() {
		if recover() == nil {
			t.Error("deprecated NewServer did not panic on a nil predictor")
		}
	}()
	NewServer(nil, Options{})
}

// TestMetricsEndpoint scrapes /metrics from a traced deployment and checks
// the exposition parses, the core families are present, and span-derived
// stage histograms appear once traffic has flowed.
func TestMetricsEndpoint(t *testing.T) {
	_, _, _, cl := tracedFixtureServer(t)
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := cl.PredictModel(ctx, "fixture", fixtureRow()); err != nil {
			t.Fatal(err)
		}
	}

	resp, err := http.Get(strings.TrimRight(cl.base, "/") + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != observ.ContentType {
		t.Errorf("Content-Type = %q, want %q", ct, observ.ContentType)
	}
	counts, err := observ.ParseExposition(resp.Body)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	for _, name := range []string{
		"willump_server_requests_total",
		"willump_requests_total",
		"willump_request_errors_total",
		"willump_requests_rejected_total",
		"willump_qps",
		"willump_latency_seconds",
		"willump_queue_depth",
		"willump_trace_sampled_total",
		"willump_request_duration_seconds_bucket",
		"willump_request_duration_seconds_count",
		"willump_stage_duration_seconds_bucket",
		"willump_goroutines",
	} {
		if counts[name] == 0 {
			t.Errorf("metric %s missing from exposition", name)
		}
	}
	if got := counts["willump_latency_seconds"]; got != 4 {
		t.Errorf("latency quantile samples = %d, want 4 (p50/p90/p99/p999)", got)
	}
}

// TestTracesEndpoint drives traced traffic and reads it back through the
// client: head-sampled traces must carry queue-wait and execution spans, and
// the model filter and count bound must hold.
func TestTracesEndpoint(t *testing.T) {
	_, _, _, cl := tracedFixtureServer(t)
	ctx := context.Background()
	for i := 0; i < 6; i++ {
		if _, err := cl.PredictModel(ctx, "fixture", fixtureRow()); err != nil {
			t.Fatal(err)
		}
	}
	trs, err := cl.Traces(ctx, "fixture", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(trs) != 6 {
		t.Fatalf("got %d traces, want 6", len(trs))
	}
	stages := make(map[string]bool)
	for _, tr := range trs {
		if tr.Model != "fixture" {
			t.Errorf("trace model = %q, want fixture", tr.Model)
		}
		if !tr.Sampled || len(tr.Spans) == 0 {
			t.Errorf("trace %d not head-sampled with spans: %+v", tr.ID, tr)
		}
		for _, sp := range tr.Spans {
			stages[sp.Stage] = true
		}
	}
	for _, want := range []string{"queue:wait", "model:score"} {
		if !stages[want] {
			t.Errorf("no trace carries a %q span (saw %v)", want, stages)
		}
	}
	// Newest first, bounded by n.
	bounded, err := cl.Traces(ctx, "fixture", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(bounded) != 2 {
		t.Fatalf("n=2 returned %d traces", len(bounded))
	}
	if bounded[0].Start.Before(bounded[1].Start) {
		t.Error("traces not newest-first")
	}
	// Unknown model filters to empty; bad n is a client error.
	none, err := cl.Traces(ctx, "nosuch", 0)
	if err != nil || len(none) != 0 {
		t.Errorf("unknown model: traces=%v err=%v, want empty", none, err)
	}
	resp, err := http.Get(strings.TrimRight(cl.base, "/") + "/v1/traces?n=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad n status = %d, want 400", resp.StatusCode)
	}
}

// TestStatsCarryP999AndRecentSlow checks the additive stats fields end to
// end: the p999 quantile is populated and a failed request lands on the
// recent-slow list with its error text (error tail sampling retains every
// failure regardless of latency).
func TestStatsCarryP999AndRecentSlow(t *testing.T) {
	_, reg, _, cl := tracedFixtureServer(t)
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		if _, err := cl.PredictModel(ctx, "fixture", fixtureRow()); err != nil {
			t.Fatal(err)
		}
	}
	// A request with an expired deadline fails inside the pipeline and must
	// be retained as a slow/error entry.
	_, err := cl.PredictModel(ctx, "fixture", fixtureRow(),
		core.WithPredictDeadline(time.Nanosecond))
	if err == nil {
		t.Fatal("nanosecond deadline did not fail")
	}
	st, err := cl.Stats(ctx, "fixture")
	if err != nil {
		t.Fatal(err)
	}
	if st.LatencyP999 <= 0 {
		t.Errorf("LatencyP999 = %v, want > 0", st.LatencyP999)
	}
	if st.LatencyP999 < st.LatencyP99 {
		t.Errorf("p999 %v < p99 %v", st.LatencyP999, st.LatencyP99)
	}
	if len(st.RecentSlow) == 0 {
		t.Fatal("failed request missing from RecentSlow")
	}
	found := false
	for _, sq := range st.RecentSlow {
		if sq.Err != "" {
			found = true
		}
	}
	if !found {
		t.Errorf("no RecentSlow entry carries the error: %+v", st.RecentSlow)
	}
	// The in-process registry view matches the wire view's shape.
	direct, err := reg.Stats("fixture")
	if err != nil {
		t.Fatal(err)
	}
	if len(direct.RecentSlow) == 0 {
		t.Error("registry stats missing RecentSlow")
	}
}

// TestUnsampledServerRequestsCountedOnce pins single-counting: a
// server-routed request the handler left unsampled must not be counted a
// second time by the pipeline's own entry points — the handler owns the
// whole lifecycle, sampled or not. A double count would inflate the
// request-duration histogram (and the seq/sampled counters) to ~2x traffic
// and mislabel ring entries "batch"/"point" instead of the model name.
func TestUnsampledServerRequestsCountedOnce(t *testing.T) {
	o, _, _, cl := tracedFixtureServerEvery(t, 1<<20) // nothing head-samples
	ctx := context.Background()
	const n = 7
	for i := 0; i < n; i++ {
		if _, err := cl.PredictModel(ctx, "fixture", fixtureRow()); err != nil {
			t.Fatal(err)
		}
	}
	// One direct (non-batched) request too: per-request options route through
	// executeDirect into PredictBatchOptions, the other double-count path.
	if _, err := cl.PredictModel(ctx, "fixture", fixtureRow(),
		core.WithPredictDeadline(time.Minute)); err != nil {
		t.Fatal(err)
	}
	if got := o.Tracer().TotalHist().Count; got != n+1 {
		t.Errorf("request_duration count = %d after %d requests, want exactly %d (core re-counted handler-owned requests)", got, n+1, n+1)
	}
	if sampled, _ := o.Tracer().Counts(); sampled != 0 {
		t.Errorf("head-sampled = %d, want 0 (core began its own trace on an unsampled server request)", sampled)
	}
	for _, tr := range o.Tracer().Traces() {
		if tr.Label != "fixture" {
			t.Errorf("retained entry labeled %q, want the model name \"fixture\"", tr.Label)
		}
	}
}

// TestExecuteBatchedReportsAbandonment pins the delivered flag: a waiter
// that gives up on a queued pending must say so, because the batcher may
// still reach the pending's context (and the trace it carries) — the
// handler must then hand the trace to the GC, never back to the pool.
func TestExecuteBatchedReportsAbandonment(t *testing.T) {
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	slow := PredictorFunc(func(_ context.Context, inputs map[string]value.Value) ([]float64, error) {
		entered <- struct{}{}
		<-release
		return make([]float64, inputs["x"].Len()), nil
	})
	s, err := NewPredictorServer(slow, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	h, err := s.reg.lookup("")
	if err != nil {
		t.Fatal(err)
	}
	inputs := map[string]value.Value{"x": value.NewFloats([]float64{3})}

	// Occupy the batcher inside the predictor, so the abandoned pending below
	// deterministically stays queued until after its waiter gives up.
	go s.executeBatched(context.Background(), h, inputs, 1, admission.CritNormal) //nolint:errcheck
	<-entered
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, delivered, err := s.executeBatched(ctx, h, inputs, 1, admission.CritNormal)
	if delivered {
		t.Error("cancelled waiter reported delivered = true; its trace would be recycled under the batcher")
	}
	if err == nil {
		t.Error("cancelled waiter returned nil error")
	}
	close(release)

	preds, _, delivered, err := s.executeBatched(context.Background(), h, inputs, 1, admission.CritNormal)
	if err != nil || !delivered || len(preds) != 1 {
		t.Fatalf("live request: preds=%v delivered=%v err=%v, want a delivered result", preds, delivered, err)
	}
}

// TestShutdownClosesTraces: after a graceful shutdown drains concurrent
// traced traffic, no trace may remain open (spans all finished, pooled
// traces recycled).
func TestShutdownClosesTraces(t *testing.T) {
	o, _, srv, cl := tracedFixtureServer(t)
	ctx := context.Background()
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 25; i++ {
				cl.PredictModel(ctx, "fixture", fixtureRow()) //nolint:errcheck
			}
		}()
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if n := o.Tracer().Open(); n != 0 {
		t.Fatalf("%d traces still open after graceful shutdown", n)
	}
	sampled, _ := o.Tracer().Counts()
	if sampled == 0 {
		t.Fatal("no requests were head-sampled")
	}
}
