package admission

import (
	"testing"
	"time"
)

func feed(c *Controller, d time.Duration, n int) {
	for i := 0; i < n; i++ {
		c.Observe(d, d, 1)
	}
}

func TestDisabledControllerAlwaysAdmits(t *testing.T) {
	c := New(Config{}) // SLO zero: admission off
	if c.Enabled() {
		t.Fatal("zero-SLO controller reports Enabled")
	}
	for i := 0; i < 10_000; i++ {
		if d := c.Admit(1<<20, time.Nanosecond, CritLow); d.Shed {
			t.Fatalf("disabled controller shed at i=%d", i)
		}
	}
	if got := c.Snapshot().Inflight; got != 10_000 {
		t.Fatalf("inflight = %d, want 10000", got)
	}
}

func TestNilControllerSafe(t *testing.T) {
	var c *Controller
	if d := c.Admit(5, time.Second, CritNormal); d.Shed {
		t.Fatal("nil controller shed")
	}
	c.Release()
	c.Observe(time.Millisecond, time.Millisecond, 1)
	c.CountExpired(3)
	c.CountDegraded(DegradedCache)
	if c.LevelFor(CritLow) != LevelNormal {
		t.Fatal("nil controller not at LevelNormal")
	}
	if c.RetryAfter(10) != 0 {
		t.Fatal("nil controller RetryAfter != 0")
	}
	if s := c.Snapshot(); s.Enabled {
		t.Fatal("nil controller snapshot enabled")
	}
}

func TestForecastConvergesToServiceTime(t *testing.T) {
	c := New(Config{SLO: time.Second})
	feed(c, 2*time.Millisecond, 64)
	s := c.Snapshot()
	if s.ForecastService < time.Millisecond || s.ForecastService > 3*time.Millisecond {
		t.Fatalf("forecast %v, want ~2ms", s.ForecastService)
	}
	// Steady input: deviation collapses toward zero.
	if s.ForecastError > time.Millisecond {
		t.Fatalf("forecast error %v, want small under steady input", s.ForecastError)
	}
}

func TestPredictiveShedOnDeepQueue(t *testing.T) {
	c := New(Config{SLO: 100 * time.Millisecond})
	feed(c, 10*time.Millisecond, 64) // forecast ~10ms/item

	// Queue of 2: predicted finish ~30ms, inside the SLO.
	if d := c.Admit(2, 0, CritNormal); d.Shed {
		t.Fatalf("shed with shallow queue: %+v", d)
	}
	c.Release()
	// Queue of 50: predicted finish ~510ms, far past the SLO.
	d := c.Admit(50, 0, CritNormal)
	if !d.Shed {
		t.Fatal("did not shed with 50-deep queue and 10ms/item forecast")
	}
	if d.RetryAfter < 400*time.Millisecond || d.RetryAfter > 700*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want ~500ms drain forecast", d.RetryAfter)
	}
	if got := c.Snapshot().ShedPredicted; got != 1 {
		t.Fatalf("ShedPredicted = %d, want 1", got)
	}
}

func TestPredictiveShedUsesRequestDeadline(t *testing.T) {
	c := New(Config{SLO: time.Second})
	feed(c, 10*time.Millisecond, 64)
	// Tight caller budget sheds even though the SLO would admit.
	if d := c.Admit(5, 20*time.Millisecond, CritNormal); !d.Shed {
		t.Fatal("did not shed a request whose own deadline cannot be met")
	}
	if d := c.Admit(5, 900*time.Millisecond, CritNormal); d.Shed {
		t.Fatal("shed a request with ample budget")
	}
	c.Release()
}

func TestCriticalityShiftsShedDecision(t *testing.T) {
	c := New(Config{SLO: 100 * time.Millisecond})
	// Noisy service times: big deviation, so the padding matters.
	for i := 0; i < 64; i++ {
		d := 5 * time.Millisecond
		if i%2 == 0 {
			d = 15 * time.Millisecond
		}
		c.Observe(d, d, 1)
	}
	s := c.Snapshot()
	// Pick a queue depth where mean fits but mean+3dev does not.
	perItem := s.ForecastService
	q := int((100*time.Millisecond - perItem - 2*s.ForecastError) / perItem)
	dn := c.Admit(q, 0, CritNormal)
	dh := c.Admit(q, 0, CritHigh)
	if !dh.Shed {
		c.Release()
	}
	if dn.Shed && dh.Shed {
		t.Fatal("high criticality got no extra admission headroom")
	}
	if !dn.Shed {
		c.Release()
		t.Skipf("forecast landed outside the discriminating band (svc=%v dev=%v q=%d)", perItem, s.ForecastError, q)
	}
}

func TestAdaptiveLimitShedsAndRecovers(t *testing.T) {
	c := New(Config{SLO: 10 * time.Millisecond, MinLimit: 4, MaxLimit: 64})
	// Whole-request latency way over SLO (but cheap service time, so the
	// predictive gate stays open): multiplicative decrease to the floor.
	for i := 0; i < 64; i++ {
		c.Observe(100*time.Microsecond, 100*time.Millisecond, 1)
	}
	if got := c.Snapshot().Limit; got != 4 {
		t.Fatalf("limit = %d after sustained SLO misses, want floor 4", got)
	}
	// Fill the limit, next arrival sheds at the limit gate.
	for i := 0; i < 4; i++ {
		if d := c.Admit(0, time.Hour, CritNormal); d.Shed {
			t.Fatalf("shed below limit at i=%d", i)
		}
	}
	if d := c.Admit(0, time.Hour, CritNormal); !d.Shed {
		t.Fatal("did not shed at the adaptive limit")
	}
	if got := c.Snapshot().ShedLimit; got != 1 {
		t.Fatalf("ShedLimit = %d, want 1", got)
	}
	for i := 0; i < 4; i++ {
		c.Release()
	}
	// Latency back inside the SLO: additive increase reopens the limit.
	feed(c, time.Millisecond, 256)
	if got := c.Snapshot().Limit; got <= 4 {
		t.Fatalf("limit = %d after recovery, want growth above floor", got)
	}
}

func TestHighCriticalityLimitHeadroom(t *testing.T) {
	c := New(Config{SLO: 10 * time.Millisecond, MinLimit: 4, MaxLimit: 64})
	for i := 0; i < 64; i++ {
		c.Observe(100*time.Microsecond, 100*time.Millisecond, 1) // limit at floor 4
	}
	for i := 0; i < 4; i++ {
		c.Admit(0, time.Hour, CritHigh)
	}
	// Normal sheds at 4, high rides the +25% headroom (limit 5).
	if d := c.Admit(0, time.Hour, CritNormal); !d.Shed {
		t.Fatal("normal criticality did not shed at the limit")
	}
	if d := c.Admit(0, time.Hour, CritHigh); d.Shed {
		t.Fatal("high criticality shed without using its headroom")
	}
}

func TestBrownoutLadderWithHysteresis(t *testing.T) {
	c := New(Config{SLO: 10 * time.Millisecond, Brownout: true})
	if got := c.LevelFor(CritNormal); got != LevelNormal {
		t.Fatalf("initial level %v, want LevelNormal", got)
	}
	// Pressure just under the SLO: degrade.
	feed(c, 9*time.Millisecond, 64)
	if got := c.LevelFor(CritNormal); got != LevelDegrade {
		t.Fatalf("level %v at 0.9×SLO, want LevelDegrade", got)
	}
	// Pressure past the SLO: cache-only.
	feed(c, 15*time.Millisecond, 64)
	if got := c.LevelFor(CritNormal); got != LevelCacheOnly {
		t.Fatalf("level %v at 1.5×SLO, want LevelCacheOnly", got)
	}
	// Criticality shifts the rung: high sees one less, low is pinned at max.
	if got := c.LevelFor(CritHigh); got != LevelDegrade {
		t.Fatalf("high-crit level %v under cache-only pressure, want LevelDegrade", got)
	}
	if got := c.LevelFor(CritLow); got != LevelCacheOnly {
		t.Fatalf("low-crit level %v, want LevelCacheOnly", got)
	}
	// Pressure falls: recover through the ladder, not straight to normal.
	feed(c, 6*time.Millisecond, 64)
	if got := c.LevelFor(CritNormal); got != LevelDegrade {
		t.Fatalf("level %v at 0.6×SLO on the way down, want LevelDegrade (hysteresis)", got)
	}
	feed(c, time.Millisecond, 64)
	if got := c.LevelFor(CritNormal); got != LevelNormal {
		t.Fatalf("level %v after pressure cleared, want LevelNormal", got)
	}
}

func TestBrownoutDisabledStaysNormal(t *testing.T) {
	c := New(Config{SLO: 10 * time.Millisecond})
	feed(c, time.Second, 64)
	for _, crit := range []Criticality{CritLow, CritNormal, CritHigh} {
		if got := c.LevelFor(crit); got != LevelNormal {
			t.Fatalf("LevelFor(%d) = %v without brownout, want LevelNormal", crit, got)
		}
	}
}

func TestRetryAfterColdAndWarm(t *testing.T) {
	c := New(Config{SLO: time.Second})
	if got := c.RetryAfter(100); got != 0 {
		t.Fatalf("cold RetryAfter = %v, want 0 (no forecast yet)", got)
	}
	feed(c, 10*time.Millisecond, 64)
	if got := c.RetryAfter(0); got < 5*time.Millisecond {
		t.Fatalf("warm empty-queue RetryAfter = %v, want >= one service time", got)
	}
	got := c.RetryAfter(20)
	if got < 150*time.Millisecond || got > 300*time.Millisecond {
		t.Fatalf("RetryAfter(20) = %v, want ~200ms", got)
	}
}

func TestCounters(t *testing.T) {
	c := New(Config{SLO: time.Second, Brownout: true})
	c.CountExpired(3)
	c.CountExpired(0)
	c.CountExpired(-1)
	c.CountDegraded(DegradedSmallOnly)
	c.CountDegraded(DegradedSmallOnly)
	c.CountDegraded(DegradedBudget)
	c.CountDegraded(DegradedCache)
	c.CountDegraded("nonsense")
	s := c.Snapshot()
	if s.Expired != 3 {
		t.Fatalf("Expired = %d, want 3", s.Expired)
	}
	if s.DegradedSmallOnly != 2 || s.DegradedBudget != 1 || s.DegradedCache != 1 {
		t.Fatalf("degraded counts = %d/%d/%d, want 2/1/1",
			s.DegradedSmallOnly, s.DegradedBudget, s.DegradedCache)
	}
}

func TestParseCriticality(t *testing.T) {
	cases := map[string]Criticality{
		"low": CritLow, "high": CritHigh, "normal": CritNormal,
		"": CritNormal, "urgent": CritNormal,
	}
	for in, want := range cases {
		if got := ParseCriticality(in); got != want {
			t.Fatalf("ParseCriticality(%q) = %d, want %d", in, got, want)
		}
	}
}

func TestInflightReleaseBalance(t *testing.T) {
	c := New(Config{SLO: time.Second})
	for i := 0; i < 100; i++ {
		c.Admit(0, 0, CritNormal)
	}
	for i := 0; i < 100; i++ {
		c.Release()
	}
	if got := c.Snapshot().Inflight; got != 0 {
		t.Fatalf("inflight = %d after balanced admit/release, want 0", got)
	}
}

func TestReprimeClosesColdStartWindow(t *testing.T) {
	old := New(Config{SLO: 5 * time.Millisecond, Brownout: true, MinLimit: 4, MaxLimit: 64})
	// Drive the incumbent into a learned overload equilibrium: service
	// times near the SLO, pressure above 1, limit cut, ladder raised.
	feed(old, 8*time.Millisecond, 64)
	st := old.State()
	if st.ForecastService <= 0 || st.PressureMilli <= 1000 || st.Level == LevelNormal {
		t.Fatalf("incumbent not in overload equilibrium: %+v", st)
	}

	fresh := New(Config{SLO: 5 * time.Millisecond, Brownout: true, MinLimit: 4, MaxLimit: 64})
	if fresh.Primed() {
		t.Fatal("fresh controller reports primed")
	}
	// The cold-start window: with srtt == 0 the probe rule admits
	// everything, even with a deep backlog and a tiny budget.
	if d := fresh.Admit(1000, time.Microsecond, CritNormal); d.Shed {
		t.Fatal("cold controller shed (expected admit-everything window)")
	}
	fresh.Release()

	fresh.Reprime(st)
	if !fresh.Primed() {
		t.Fatal("reprimed controller not primed")
	}
	got := fresh.State()
	if got.ForecastService != st.ForecastService || got.Level != st.Level || got.Limit != st.Limit {
		t.Fatalf("reprimed state %+v, want %+v", got, st)
	}
	// Occupy one slot so the probe rule's idle bypass doesn't apply, then
	// check a doomed arrival is shed immediately — no relearning window.
	if d := fresh.Admit(0, time.Second, CritNormal); d.Shed {
		t.Fatal("first admitted request shed")
	}
	if d := fresh.Admit(1000, time.Microsecond, CritNormal); !d.Shed {
		t.Fatal("reprimed controller admitted a doomed request (cold-start window reopened)")
	}
	fresh.Release()
}

func TestReprimeClampsAndIgnoresZero(t *testing.T) {
	c := New(Config{SLO: time.Second, MinLimit: 8, MaxLimit: 32})
	c.Reprime(State{}) // zero state: no-op
	if c.Primed() {
		t.Fatal("zero-state Reprime primed the controller")
	}
	c.Reprime(State{ForecastService: time.Millisecond, Limit: 1 << 20})
	if got := c.State().Limit; got != 32 {
		t.Fatalf("limit %d, want clamped to MaxLimit 32", got)
	}
	c.Reprime(State{ForecastService: time.Millisecond, Limit: 1})
	if got := c.State().Limit; got != 8 {
		t.Fatalf("limit %d, want clamped to MinLimit 8", got)
	}
	// Brownout disabled: the ladder rung must not be imported.
	c.Reprime(State{ForecastService: time.Millisecond, Level: LevelCacheOnly})
	if got := c.LevelFor(CritNormal); got != LevelNormal {
		t.Fatalf("level %v imported with brownout disabled", got)
	}
}
