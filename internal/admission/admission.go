// Package admission is the serving tier's SLO-aware overload defense: a
// per-model controller that replaces "fixed queue depth, 429 when full"
// with three cooperating mechanisms, applied in order of increasing
// desperation:
//
//  1. Predictive shedding. The controller maintains an online service-time
//     forecast (EWMA mean + EWMA deviation over observed per-request
//     execution times, the TCP RTT estimator) and a queueing model that
//     predicts a new arrival's completion time from the current queue
//     length. A request whose predicted finish exceeds its deadline — or
//     the model's configured SLO — is shed at enqueue, before it wastes
//     queue space and compute on an answer nobody will wait for.
//  2. Adaptive concurrency. Instead of a fixed queue depth, an AIMD limit
//     (Netflix concurrency-limits style) tracks how much concurrent work
//     the model can carry while staying inside its SLO: additive increase
//     while observed latency meets the target, multiplicative decrease
//     when it does not. The bounded channel remains only as a hard
//     backstop against controller bugs.
//  3. Brownout degradation. Under measured pressure — observed latency
//     approaching the SLO — the serving tier degrades answers before it
//     sheds them: force cascade small-model-only scoring, shrink top-K
//     budgets, then answer from the prediction cache. Degraded responses
//     are successes carrying a wire marker; a per-request criticality
//     class shifts where on the ladder a request lands, so high-priority
//     traffic degrades last and low-priority traffic degrades first.
//
// The controller sits on every request's admission path, so all state is
// atomic: admit/observe/release never lock and never allocate.
package admission

import (
	"math"
	"sync/atomic"
	"time"
)

// Criticality classes order request importance for the brownout ladder.
// The zero value is CritNormal so requests that say nothing get the
// default treatment.
type Criticality int8

const (
	// CritLow traffic degrades (and sheds) first.
	CritLow Criticality = -1
	// CritNormal is the default class.
	CritNormal Criticality = 0
	// CritHigh traffic degrades last: the ladder and the predictive
	// shedder both give it extra headroom.
	CritHigh Criticality = 1
)

// ParseCriticality maps the wire/header spelling to a class. Unknown
// spellings (and "") are CritNormal, so garbage never escalates a request.
func ParseCriticality(s string) Criticality {
	switch s {
	case "low":
		return CritLow
	case "high":
		return CritHigh
	default:
		return CritNormal
	}
}

// Level is a rung on the brownout degradation ladder.
type Level int32

const (
	// LevelNormal serves full-fidelity answers.
	LevelNormal Level = iota
	// LevelDegrade forces cascade small-model-only scoring and shrinks
	// top-K candidate budgets: cheaper answers, still computed.
	LevelDegrade
	// LevelCacheOnly answers from the prediction cache when possible and
	// shows shedding pressure to everything else.
	LevelCacheOnly
)

// Config sizes one model's controller.
type Config struct {
	// SLO is the model's target completion bound (p99-flavored: the
	// forecast the shedder compares against is mean + 3 deviations).
	// Zero disables predictive shedding and the adaptive limit — the
	// controller still counts expired pendings and exposes snapshots.
	SLO time.Duration
	// Brownout enables the degradation ladder. Without it the controller
	// stays at LevelNormal and only sheds.
	Brownout bool
	// MinLimit / MaxLimit bound the adaptive concurrency limit.
	// Defaults: 4 and 4096.
	MinLimit int64
	MaxLimit int64
}

func (c Config) withDefaults() Config {
	if c.MinLimit <= 0 {
		c.MinLimit = 4
	}
	if c.MaxLimit <= 0 {
		c.MaxLimit = 4096
	}
	if c.MaxLimit < c.MinLimit {
		c.MaxLimit = c.MinLimit
	}
	return c
}

// Controller is one model's admission state. It lives on the Hosted model
// (not the version), so forecasts and counters survive hot swaps the same
// way serving telemetry does.
type Controller struct {
	cfg Config

	// Service-time forecast, Jacobson/Karels style: srtt tracks the EWMA
	// of observed per-item service time, rttvar the EWMA of its absolute
	// deviation. Both in nanoseconds, updated with atomic CAS-free
	// store-after-load (a lost update under a race skews one sample's
	// weight, which the EWMA absorbs — the same tolerance the trace
	// histograms accept).
	srttNs   atomic.Int64
	rttvarNs atomic.Int64

	// latRatioMilli is EWMA(observed end-to-end latency / SLO) in
	// thousandths: the brownout pressure signal.
	latRatioMilli atomic.Int64

	// Adaptive concurrency limit and the work currently admitted under it
	// (queued + executing items, batched and direct paths together).
	limit    atomic.Int64
	inflight atomic.Int64

	level atomic.Int32

	// Counters, exposed on stats and /metrics.
	shedPredicted  atomic.Int64
	shedLimit      atomic.Int64
	shedBrownout   atomic.Int64
	expired        atomic.Int64
	degradedSmall  atomic.Int64
	degradedBudget atomic.Int64
	degradedCache  atomic.Int64
}

// New returns a controller for one model.
func New(cfg Config) *Controller {
	cfg = cfg.withDefaults()
	c := &Controller{cfg: cfg}
	// Start the limit high: AIMD should discover the constraint by
	// observing latency, not strangle a cold model.
	c.limit.Store(cfg.MaxLimit)
	return c
}

// Enabled reports whether SLO-aware admission (shedding + adaptive limit)
// is active.
func (c *Controller) Enabled() bool { return c != nil && c.cfg.SLO > 0 }

// BrownoutEnabled reports whether the degradation ladder is active.
func (c *Controller) BrownoutEnabled() bool { return c != nil && c.cfg.SLO > 0 && c.cfg.Brownout }

// ewma folds sample into the running estimate with gain 1/8 (the classic
// RTT estimator constant).
func ewma(prev, sample int64) int64 {
	if prev == 0 {
		return sample
	}
	return prev + (sample-prev)/8
}

// Observe records one completed request. service is the time spent
// executing (the queueing model's per-item cost — queue wait excluded,
// or the drain forecast would compound it); total is end-to-end latency
// inside the serving tier including queue wait (what the SLO is about);
// items the number of rows carried. It updates the forecast, the
// brownout pressure, and the AIMD limit. Call it for every completion,
// successful or not — failures consumed service time too.
func (c *Controller) Observe(service, total time.Duration, items int) {
	if c == nil || items <= 0 {
		return
	}
	perItem := int64(service) / int64(items)
	srtt := c.srttNs.Load()
	diff := perItem - srtt
	if diff < 0 {
		diff = -diff
	}
	c.srttNs.Store(ewma(srtt, perItem))
	c.rttvarNs.Store(ewma(c.rttvarNs.Load(), diff))

	if c.cfg.SLO <= 0 {
		return
	}
	// Brownout pressure: how close observed whole-request latency runs to
	// the SLO. >1000 means the SLO is already being missed.
	ratio := int64(total) * 1000 / int64(c.cfg.SLO)
	lr := ewma(c.latRatioMilli.Load(), ratio)
	c.latRatioMilli.Store(lr)
	c.adjustLimit(lr)
	c.adjustLevel(lr)
}

// adjustLimit is the AIMD loop: latency within the SLO grows the limit
// additively (fractionally per observation, so one window of completions
// adds about one slot); latency beyond it cuts multiplicatively.
func (c *Controller) adjustLimit(latRatioMilli int64) {
	lim := c.limit.Load()
	switch {
	case latRatioMilli <= 900: // comfortably inside the SLO
		next := lim + maxI64(1, lim/64)
		if next > c.cfg.MaxLimit {
			next = c.cfg.MaxLimit
		}
		c.limit.Store(next)
	case latRatioMilli > 1000: // missing the SLO
		next := lim * 3 / 4
		if next < c.cfg.MinLimit {
			next = c.cfg.MinLimit
		}
		c.limit.Store(next)
	}
	// Between 0.9 and 1.0: hold — the deadband keeps the limit from
	// oscillating when the system sits right at its target.
}

// adjustLevel moves the brownout ladder with hysteresis: degrade eagerly
// (pressure crosses the rung's threshold), recover only after pressure
// falls well below it.
func (c *Controller) adjustLevel(latRatioMilli int64) {
	if !c.cfg.Brownout {
		return
	}
	cur := Level(c.level.Load())
	next := cur
	switch {
	case latRatioMilli >= 1100:
		next = LevelCacheOnly
	case latRatioMilli >= 800:
		if cur < LevelDegrade {
			next = LevelDegrade
		} else if cur == LevelCacheOnly && latRatioMilli < 900 {
			next = LevelDegrade
		}
	case latRatioMilli < 600:
		next = LevelNormal
	case latRatioMilli < 700 && cur == LevelCacheOnly:
		next = LevelDegrade
	}
	if next != cur {
		c.level.Store(int32(next))
	}
}

// LevelFor returns the degradation rung a request of the given criticality
// experiences right now: high-criticality traffic sees one rung less than
// the measured level, low-criticality traffic one rung more.
func (c *Controller) LevelFor(crit Criticality) Level {
	if c == nil || !c.cfg.Brownout {
		return LevelNormal
	}
	l := Level(c.level.Load()) - Level(crit)
	if l < LevelNormal {
		l = LevelNormal
	}
	if l > LevelCacheOnly {
		l = LevelCacheOnly
	}
	return l
}

// Decision is the outcome of one admission check.
type Decision struct {
	// Shed is true when the request must be rejected (HTTP 429).
	Shed bool
	// RetryAfter is the drain forecast attached to a shed decision: how
	// long until the backlog ahead of this request would have cleared.
	RetryAfter time.Duration
}

// Admit decides whether a request may join the queue. queued is the
// model's current queue length (pendings), budget the request's remaining
// time allowance (its deadline, or 0 to use the model SLO). The caller
// must Release() exactly once for every admitted request.
//
// The check is two predicates, cheapest first:
//
//   - Adaptive limit: admitted concurrent work beyond the AIMD limit is
//     shed outright (high-criticality requests get 25% extra headroom).
//   - Predictive completion: the arrival's forecast finish — the backlog
//     ahead of it plus its own service forecast, padded by 3 forecast
//     deviations — must fit inside the budget. High-criticality requests
//     drop the deviation padding (shed only when the mean forecast
//     already misses); low-criticality requests pad by 4 deviations.
func (c *Controller) Admit(queued int, budget time.Duration, crit Criticality) Decision {
	if c == nil {
		return Decision{}
	}
	if !c.Enabled() {
		c.inflight.Add(1)
		return Decision{}
	}
	inflight := c.inflight.Load()
	lim := c.limit.Load()
	if crit == CritHigh {
		lim += lim / 4
	}
	if inflight >= lim {
		c.shedLimit.Add(1)
		return Decision{Shed: true, RetryAfter: c.drainForecast(queued)}
	}

	if budget <= 0 {
		budget = c.cfg.SLO
	} else if c.cfg.SLO > 0 && c.cfg.SLO < budget {
		budget = c.cfg.SLO
	}
	srtt := c.srttNs.Load()
	// Probe rule: an idle model always admits. Without it, a stale
	// pessimistic forecast could shed every arrival, nothing would ever
	// complete, and the forecast would stay frozen — shed forever.
	if srtt > 0 && (queued > 0 || inflight > 0) {
		rttvar := c.rttvarNs.Load()
		pad := int64(3)
		switch crit {
		case CritHigh:
			pad = 0
		case CritLow:
			pad = 4
		}
		predicted := c.drainForecast(queued) + time.Duration(srtt+pad*rttvar)
		if predicted > budget {
			c.shedPredicted.Add(1)
			return Decision{Shed: true, RetryAfter: c.drainForecast(queued)}
		}
	}
	c.inflight.Add(1)
	return Decision{}
}

// Release returns one admitted request's concurrency slot.
func (c *Controller) Release() {
	if c != nil {
		c.inflight.Add(-1)
	}
}

// drainForecast predicts how long the current backlog takes to clear:
// queued pendings at the forecast per-item service time, assuming the
// batcher's single execution stream.
func (c *Controller) drainForecast(queued int) time.Duration {
	srtt := c.srttNs.Load()
	if srtt <= 0 || queued <= 0 {
		return 0
	}
	return time.Duration(int64(queued) * srtt)
}

// RetryAfter is the backoff hint attached to any 429 from this model —
// including hard-backstop (full channel) rejections that never reached
// Admit: the drain forecast for the current backlog, floored at one
// forecast service time so a cold controller still hints something.
func (c *Controller) RetryAfter(queued int) time.Duration {
	if c == nil {
		return 0
	}
	d := c.drainForecast(queued)
	if srtt := c.srttNs.Load(); d < time.Duration(srtt) {
		d = time.Duration(srtt)
	}
	return d
}

// CountShedBrownout records one request turned away at the cache-only
// brownout rung (no cached answer, criticality too low to proceed).
func (c *Controller) CountShedBrownout() {
	if c != nil {
		c.shedBrownout.Add(1)
	}
}

// CountExpired records pendings culled from a batch because their context
// was already done — work shed after admission but before execution.
func (c *Controller) CountExpired(n int) {
	if c != nil && n > 0 {
		c.expired.Add(int64(n))
	}
}

// CountDegraded records one degraded-but-successful response by mode.
func (c *Controller) CountDegraded(mode string) {
	if c == nil {
		return
	}
	switch mode {
	case DegradedSmallOnly:
		c.degradedSmall.Add(1)
	case DegradedBudget:
		c.degradedBudget.Add(1)
	case DegradedCache:
		c.degradedCache.Add(1)
	}
}

// Degraded wire-marker values: the response's `degraded` field names the
// ladder rung that produced it.
const (
	DegradedSmallOnly = "small-only"
	DegradedBudget    = "budget"
	DegradedCache     = "cache"
)

// Snapshot is a point-in-time copy of the controller for stats and
// metrics export.
type Snapshot struct {
	// Enabled mirrors Config.SLO > 0; disabled controllers still count
	// expired pendings.
	Enabled bool
	// SLO is the configured target.
	SLO time.Duration
	// Limit is the current adaptive concurrency limit; Inflight the work
	// admitted under it right now.
	Limit    int64
	Inflight int64
	// Level is the measured brownout rung (before criticality shifts).
	Level Level
	// ShedPredicted counts requests shed because their forecast finish
	// missed the budget; ShedLimit those shed at the concurrency limit;
	// ShedBrownout those turned away at the cache-only rung.
	ShedPredicted int64
	ShedLimit     int64
	ShedBrownout  int64
	// Expired counts admitted pendings culled before execution because
	// their context was already done.
	Expired int64
	// DegradedSmallOnly / DegradedBudget / DegradedCache count degraded
	// responses by ladder rung.
	DegradedSmallOnly int64
	DegradedBudget    int64
	DegradedCache     int64
	// ForecastService is the per-item service-time forecast;
	// ForecastError its mean absolute deviation (the error bound the
	// shedder pads predictions with).
	ForecastService time.Duration
	ForecastError   time.Duration
	// PressureRatio is EWMA(latency/SLO): > 1 means the SLO is being
	// missed.
	PressureRatio float64
}

// Snapshot copies the controller state.
func (c *Controller) Snapshot() Snapshot {
	if c == nil {
		return Snapshot{}
	}
	return Snapshot{
		Enabled:           c.Enabled(),
		SLO:               c.cfg.SLO,
		Limit:             c.limit.Load(),
		Inflight:          c.inflight.Load(),
		Level:             Level(c.level.Load()),
		ShedPredicted:     c.shedPredicted.Load(),
		ShedLimit:         c.shedLimit.Load(),
		ShedBrownout:      c.shedBrownout.Load(),
		Expired:           c.expired.Load(),
		DegradedSmallOnly: c.degradedSmall.Load(),
		DegradedBudget:    c.degradedBudget.Load(),
		DegradedCache:     c.degradedCache.Load(),
		ForecastService:   time.Duration(c.srttNs.Load()),
		ForecastError:     time.Duration(c.rttvarNs.Load()),
		PressureRatio:     float64(c.latRatioMilli.Load()) / 1000,
	}
}

// State is the primable subset of a controller: the service-time
// forecast, the brownout pressure signal, the adaptive limit, and the
// ladder rung. It deliberately excludes counters (telemetry, not control
// state) and inflight (owned by the requests currently admitted).
type State struct {
	ForecastService time.Duration
	ForecastError   time.Duration
	PressureMilli   int64
	Limit           int64
	Level           Level
}

// State captures the controller's control state for re-priming a
// successor across a swap.
func (c *Controller) State() State {
	if c == nil {
		return State{}
	}
	return State{
		ForecastService: time.Duration(c.srttNs.Load()),
		ForecastError:   time.Duration(c.rttvarNs.Load()),
		PressureMilli:   c.latRatioMilli.Load(),
		Limit:           c.limit.Load(),
		Level:           Level(c.level.Load()),
	}
}

// Primed reports whether the controller has a service-time forecast. An
// unprimed controller admits everything until observations accumulate
// (the probe rule in Admit), so a swap that installs an unprimed
// controller under load reopens the cold-start admit-everything window —
// exactly what Reprime closes.
func (c *Controller) Primed() bool { return c != nil && c.srttNs.Load() > 0 }

// Reprime seeds the controller's forecast, pressure, limit, and ladder
// rung from a predecessor's State, so a controller installed by a hot
// swap (new deployment, canary, promote) starts from the incumbent's
// learned equilibrium instead of relearning from cold mid-overload.
// Counters and inflight are untouched. A zero State is a no-op, and the
// limit is clamped to the controller's own bounds.
func (c *Controller) Reprime(st State) {
	if c == nil || st.ForecastService <= 0 {
		return
	}
	c.srttNs.Store(int64(st.ForecastService))
	if st.ForecastError > 0 {
		c.rttvarNs.Store(int64(st.ForecastError))
	}
	if st.PressureMilli > 0 {
		c.latRatioMilli.Store(st.PressureMilli)
	}
	if st.Limit > 0 {
		lim := st.Limit
		if lim < c.cfg.MinLimit {
			lim = c.cfg.MinLimit
		}
		if lim > c.cfg.MaxLimit {
			lim = c.cfg.MaxLimit
		}
		c.limit.Store(lim)
	}
	if c.cfg.Brownout && st.Level >= LevelNormal && st.Level <= LevelCacheOnly {
		c.level.Store(int32(st.Level))
	}
}

// ForecastErrorBound returns the current shed-decision padding for normal
// criticality (3 deviations): the bound the acceptance criterion "no
// admitted request exceeds its deadline by more than the forecast error"
// refers to.
func (c *Controller) ForecastErrorBound() time.Duration {
	if c == nil {
		return 0
	}
	return time.Duration(3 * c.rttvarNs.Load())
}

func maxI64(a, b int64) int64 {
	return int64(math.Max(float64(a), float64(b)))
}
