package value

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"willump/internal/feature"
)

func TestKindsAndLen(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		n    int
		w    int
	}{
		{NewStrings([]string{"a", "b"}), Strings, 2, 1},
		{NewFloats([]float64{1, 2, 3}), Floats, 3, 1},
		{NewInts([]int64{5}), Ints, 1, 1},
		{NewTokens([][]string{{"x"}, {"y", "z"}}), Tokens, 2, 1},
		{NewMat(feature.NewDense(4, 7)), Mat, 4, 7},
		{Value{}, Invalid, 0, 0},
	}
	for _, tc := range cases {
		if tc.v.Kind != tc.kind {
			t.Errorf("kind = %v, want %v", tc.v.Kind, tc.kind)
		}
		if got := tc.v.Len(); got != tc.n {
			t.Errorf("%v.Len() = %d, want %d", tc.kind, got, tc.n)
		}
		if got := tc.v.Width(); got != tc.w {
			t.Errorf("%v.Width() = %d, want %d", tc.kind, got, tc.w)
		}
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		Strings: "strings", Floats: "floats", Ints: "ints",
		Mat: "matrix", Tokens: "tokens", Invalid: "invalid",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
}

func TestGatherAllKinds(t *testing.T) {
	rows := []int{2, 0}
	s := NewStrings([]string{"a", "b", "c"}).Gather(rows)
	if !reflect.DeepEqual(s.Strings, []string{"c", "a"}) {
		t.Errorf("strings gather = %v", s.Strings)
	}
	f := NewFloats([]float64{1, 2, 3}).Gather(rows)
	if !reflect.DeepEqual(f.Floats, []float64{3, 1}) {
		t.Errorf("floats gather = %v", f.Floats)
	}
	i := NewInts([]int64{10, 20, 30}).Gather(rows)
	if !reflect.DeepEqual(i.Ints, []int64{30, 10}) {
		t.Errorf("ints gather = %v", i.Ints)
	}
	tk := NewTokens([][]string{{"a"}, {"b"}, {"c", "d"}}).Gather(rows)
	if !reflect.DeepEqual(tk.Tokens, [][]string{{"c", "d"}, {"a"}}) {
		t.Errorf("tokens gather = %v", tk.Tokens)
	}
	m := feature.DenseFromRows([][]float64{{1}, {2}, {3}})
	mg := NewMat(m).Gather(rows)
	if mg.Mat.At(0, 0) != 3 || mg.Mat.At(1, 0) != 1 {
		t.Error("matrix gather wrong")
	}
	if (Value{}).Gather(rows).Kind != Invalid {
		t.Error("gather of invalid should be invalid")
	}
}

func TestAsMatrix(t *testing.T) {
	m, err := NewFloats([]float64{1, 2}).AsMatrix()
	if err != nil || m.Rows() != 2 || m.Cols() != 1 || m.At(1, 0) != 2 {
		t.Errorf("floats AsMatrix = %v, %v", m, err)
	}
	mi, err := NewInts([]int64{7}).AsMatrix()
	if err != nil || mi.At(0, 0) != 7 {
		t.Errorf("ints AsMatrix = %v, %v", mi, err)
	}
	if _, err := NewStrings([]string{"x"}).AsMatrix(); err == nil {
		t.Error("strings AsMatrix should error")
	}
	d := feature.NewDense(1, 1)
	mm, err := NewMat(d).AsMatrix()
	if err != nil || mm != feature.Matrix(d) {
		t.Error("mat AsMatrix should return the same matrix")
	}
}

func TestBoxAllKinds(t *testing.T) {
	if got := NewStrings([]string{"x"}).Box(0); got != "x" {
		t.Errorf("Box string = %v", got)
	}
	if got := NewFloats([]float64{1.5}).Box(0); got != 1.5 {
		t.Errorf("Box float = %v", got)
	}
	if got := NewInts([]int64{3}).Box(0); got != int64(3) {
		t.Errorf("Box int = %v", got)
	}
	if got := NewTokens([][]string{{"a", "b"}}).Box(0); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("Box tokens = %v", got)
	}
	m := feature.DenseFromRows([][]float64{{4, 5}})
	if got := NewMat(m).Box(0); !reflect.DeepEqual(got, []float64{4, 5}) {
		t.Errorf("Box matrix row = %v", got)
	}
	if (Value{}).Box(0) != nil {
		t.Error("Box of invalid should be nil")
	}
}

func TestFromBoxed(t *testing.T) {
	v, err := FromBoxed([]any{"a", "b"})
	if err != nil || v.Kind != Strings {
		t.Fatalf("FromBoxed strings: %v, %v", v, err)
	}
	v, err = FromBoxed([]any{1.0, 2.0})
	if err != nil || v.Kind != Floats {
		t.Fatalf("FromBoxed floats: %v, %v", v, err)
	}
	v, err = FromBoxed([]any{int64(1)})
	if err != nil || v.Kind != Ints {
		t.Fatalf("FromBoxed ints: %v, %v", v, err)
	}
	v, err = FromBoxed([]any{[]float64{1, 2}, []float64{3, 4}})
	if err != nil || v.Kind != Mat || v.Mat.At(1, 1) != 4 {
		t.Fatalf("FromBoxed matrix: %v, %v", v, err)
	}
	v, err = FromBoxed([]any{[]string{"t"}})
	if err != nil || v.Kind != Tokens {
		t.Fatalf("FromBoxed tokens: %v, %v", v, err)
	}
	if _, err := FromBoxed(nil); err == nil {
		t.Error("FromBoxed(empty) should error")
	}
	if _, err := FromBoxed([]any{"a", 1.0}); err == nil {
		t.Error("mixed boxed types should error")
	}
	if _, err := FromBoxed([]any{struct{}{}}); err == nil {
		t.Error("unsupported boxed type should error")
	}
}

// Property: Box then FromBoxed round-trips every supported column kind.
func TestBoxRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		var v Value
		switch rng.Intn(4) {
		case 0:
			ss := make([]string, n)
			for i := range ss {
				ss[i] = string(rune('a' + rng.Intn(26)))
			}
			v = NewStrings(ss)
		case 1:
			fs := make([]float64, n)
			for i := range fs {
				fs[i] = rng.NormFloat64()
			}
			v = NewFloats(fs)
		case 2:
			is := make([]int64, n)
			for i := range is {
				is[i] = rng.Int63n(100)
			}
			v = NewInts(is)
		default:
			d := feature.NewDense(n, 1+rng.Intn(4))
			for r := 0; r < n; r++ {
				for c := 0; c < d.Cols(); c++ {
					d.Set(r, c, rng.NormFloat64())
				}
			}
			v = NewMat(d)
		}
		boxed := make([]any, n)
		for i := range boxed {
			boxed[i] = v.Box(i)
		}
		back, err := FromBoxed(boxed)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if !reflect.DeepEqual(back.Box(i), v.Box(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
