// Package value defines the data values that flow along transformation-graph
// edges. The compiled (Weld-like) executor moves whole columnar batches of
// typed data; the interpreted ("Python-like") executor moves boxed per-row
// values. Both representations are defined here, together with the O(1)-style
// conversions between them that the paper calls drivers.
package value

import (
	"fmt"

	"willump/internal/feature"
)

// Kind enumerates the columnar value kinds.
type Kind uint8

// Value kinds.
const (
	Invalid Kind = iota
	Strings      // a column of strings (raw text inputs)
	Floats       // a column of float64 scalars
	Ints         // a column of int64 scalars (identifiers, categories)
	Mat          // a batch of feature vectors (one row per data input)
	Tokens       // a column of token lists (intermediate text state)
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case Strings:
		return "strings"
	case Floats:
		return "floats"
	case Ints:
		return "ints"
	case Mat:
		return "matrix"
	case Tokens:
		return "tokens"
	default:
		return "invalid"
	}
}

// Value is a columnar batch of data for one graph edge. Exactly one payload
// field corresponding to Kind is set.
type Value struct {
	Kind    Kind
	Strings []string
	Floats  []float64
	Ints    []int64
	Mat     feature.Matrix
	Tokens  [][]string
}

// NewStrings wraps a string column.
func NewStrings(s []string) Value { return Value{Kind: Strings, Strings: s} }

// NewFloats wraps a float column.
func NewFloats(f []float64) Value { return Value{Kind: Floats, Floats: f} }

// NewInts wraps an int column.
func NewInts(i []int64) Value { return Value{Kind: Ints, Ints: i} }

// NewMat wraps a feature matrix.
func NewMat(m feature.Matrix) Value { return Value{Kind: Mat, Mat: m} }

// NewTokens wraps a column of token lists.
func NewTokens(t [][]string) Value { return Value{Kind: Tokens, Tokens: t} }

// Len returns the number of rows in the batch.
func (v Value) Len() int {
	switch v.Kind {
	case Strings:
		return len(v.Strings)
	case Floats:
		return len(v.Floats)
	case Ints:
		return len(v.Ints)
	case Mat:
		return v.Mat.Rows()
	case Tokens:
		return len(v.Tokens)
	default:
		return 0
	}
}

// Width returns the per-row width: 1 for scalar columns, Cols for matrices.
func (v Value) Width() int {
	if v.Kind == Mat {
		return v.Mat.Cols()
	}
	if v.Kind == Invalid {
		return 0
	}
	return 1
}

// Gather returns a new Value restricted to the given rows, in order.
func (v Value) Gather(rows []int) Value {
	switch v.Kind {
	case Strings:
		out := make([]string, len(rows))
		for i, r := range rows {
			out[i] = v.Strings[r]
		}
		return NewStrings(out)
	case Floats:
		out := make([]float64, len(rows))
		for i, r := range rows {
			out[i] = v.Floats[r]
		}
		return NewFloats(out)
	case Ints:
		out := make([]int64, len(rows))
		for i, r := range rows {
			out[i] = v.Ints[r]
		}
		return NewInts(out)
	case Mat:
		return NewMat(v.Mat.Gather(rows))
	case Tokens:
		out := make([][]string, len(rows))
		for i, r := range rows {
			out[i] = v.Tokens[r]
		}
		return NewTokens(out)
	default:
		return Value{}
	}
}

// GatherInto gathers the given rows of src into dst, reusing dst's backing
// buffers when its kind matches src's and capacity allows. dst must be
// exclusively owned by the caller and must not alias src; the pooled
// executor tracks buffer ownership per plan slot to guarantee both.
func GatherInto(dst *Value, src Value, rows []int) {
	switch src.Kind {
	case Strings:
		out := growSlice(dst.Strings, len(rows), src.Kind == dst.Kind)
		for i, r := range rows {
			out[i] = src.Strings[r]
		}
		*dst = NewStrings(out)
	case Floats:
		out := growSlice(dst.Floats, len(rows), src.Kind == dst.Kind)
		for i, r := range rows {
			out[i] = src.Floats[r]
		}
		*dst = NewFloats(out)
	case Ints:
		out := growSlice(dst.Ints, len(rows), src.Kind == dst.Kind)
		for i, r := range rows {
			out[i] = src.Ints[r]
		}
		*dst = NewInts(out)
	case Tokens:
		out := growSlice(dst.Tokens, len(rows), src.Kind == dst.Kind)
		for i, r := range rows {
			out[i] = src.Tokens[r]
		}
		*dst = NewTokens(out)
	case Mat:
		switch m := src.Mat.(type) {
		case *feature.Dense:
			prev, _ := dst.Mat.(*feature.Dense)
			if dst.Kind != Mat {
				prev = nil
			}
			*dst = NewMat(m.GatherReuse(rows, prev))
		case *feature.CSR:
			prev, _ := dst.Mat.(*feature.CSR)
			if dst.Kind != Mat {
				prev = nil
			}
			*dst = NewMat(m.GatherReuse(rows, prev))
		default:
			*dst = NewMat(src.Mat.Gather(rows))
		}
	default:
		*dst = Value{}
	}
}

// growSlice returns a slice of length n, reusing s when reuse is requested
// and capacity allows. Contents are unspecified.
func growSlice[T any](s []T, n int, reuse bool) []T {
	if !reuse || cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// AsMatrix converts the value to a feature matrix: scalar columns become
// single-column dense matrices.
func (v Value) AsMatrix() (feature.Matrix, error) {
	switch v.Kind {
	case Mat:
		return v.Mat, nil
	case Floats:
		return feature.DenseFromColumn(v.Floats), nil
	case Ints:
		col := make([]float64, len(v.Ints))
		for i, x := range v.Ints {
			col[i] = float64(x)
		}
		return feature.DenseFromColumn(col), nil
	default:
		return nil, fmt.Errorf("value: cannot view %s as matrix", v.Kind)
	}
}

// Box returns the boxed ("Python object") representation of row r: string,
// float64, int64, or []float64. This is the driver direction compiled->
// interpreted; boxing a matrix row materializes it, like handing a NumPy row
// to pure Python.
func (v Value) Box(r int) any {
	switch v.Kind {
	case Strings:
		return v.Strings[r]
	case Floats:
		return v.Floats[r]
	case Ints:
		return v.Ints[r]
	case Mat:
		return feature.RowDense(v.Mat, r, nil)
	case Tokens:
		return v.Tokens[r]
	default:
		return nil
	}
}

// FromBoxed assembles a columnar Value from boxed per-row values, the driver
// direction interpreted->compiled. All rows must have the same boxed type.
// Rows boxed as []float64 become a dense matrix.
func FromBoxed(rows []any) (Value, error) {
	var v Value
	if err := FromBoxedInto(rows, &v); err != nil {
		return Value{}, err
	}
	return v, nil
}

// FromBoxedInto is FromBoxed writing into dst, reusing dst's buffers when
// its kind matches the boxed rows and capacity allows. dst must be
// exclusively owned by the caller.
func FromBoxedInto(rows []any, dst *Value) error {
	v, err := fromBoxedReuse(rows, *dst)
	if err != nil {
		return err
	}
	*dst = v
	return nil
}

func fromBoxedReuse(rows []any, prev Value) (Value, error) {
	if len(rows) == 0 {
		return Value{}, fmt.Errorf("value: FromBoxed on empty batch")
	}
	switch rows[0].(type) {
	case string:
		out := growSlice(prev.Strings, len(rows), prev.Kind == Strings)
		for i, r := range rows {
			s, ok := r.(string)
			if !ok {
				return Value{}, fmt.Errorf("value: FromBoxed: row %d is %T, want string", i, r)
			}
			out[i] = s
		}
		return NewStrings(out), nil
	case float64:
		out := growSlice(prev.Floats, len(rows), prev.Kind == Floats)
		for i, r := range rows {
			f, ok := r.(float64)
			if !ok {
				return Value{}, fmt.Errorf("value: FromBoxed: row %d is %T, want float64", i, r)
			}
			out[i] = f
		}
		return NewFloats(out), nil
	case int64:
		out := growSlice(prev.Ints, len(rows), prev.Kind == Ints)
		for i, r := range rows {
			n, ok := r.(int64)
			if !ok {
				return Value{}, fmt.Errorf("value: FromBoxed: row %d is %T, want int64", i, r)
			}
			out[i] = n
		}
		return NewInts(out), nil
	case []float64:
		first := rows[0].([]float64)
		var prevDense *feature.Dense
		if prev.Kind == Mat {
			prevDense, _ = prev.Mat.(*feature.Dense)
		}
		m := feature.GrowDense(prevDense, len(rows), len(first))
		for i, r := range rows {
			vec, ok := r.([]float64)
			if !ok {
				return Value{}, fmt.Errorf("value: FromBoxed: row %d is %T, want []float64", i, r)
			}
			if len(vec) != len(first) {
				return Value{}, fmt.Errorf("value: FromBoxed: row %d has %d cols, want %d", i, len(vec), len(first))
			}
			copy(m.Row(i), vec)
		}
		return NewMat(m), nil
	case []string:
		out := growSlice(prev.Tokens, len(rows), prev.Kind == Tokens)
		for i, r := range rows {
			ts, ok := r.([]string)
			if !ok {
				return Value{}, fmt.Errorf("value: FromBoxed: row %d is %T, want []string", i, r)
			}
			out[i] = ts
		}
		return NewTokens(out), nil
	default:
		return Value{}, fmt.Errorf("value: FromBoxed: unsupported boxed type %T", rows[0])
	}
}
