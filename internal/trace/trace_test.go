package trace

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestFinishAbandonedLeavesTraceToLateRecorder pins the abandoned-request
// contract: after FinishAbandoned, a goroutine still holding the trace (a
// batcher that outlived its cancelled waiter) may keep Recording while new
// requests Begin and Finish against the same tracer. If FinishAbandoned
// recycled the trace into the pool, a new Begin would reuse it concurrently
// with the late recorder — the race detector catches exactly that.
func TestFinishAbandonedLeavesTraceToLateRecorder(t *testing.T) {
	tr := NewTracer(Config{SampleEvery: 1, Buffer: 8})
	start := time.Now()
	tc := tr.Begin("m")
	if tc == nil {
		t.Fatal("Begin returned nil with SampleEvery=1")
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the batcher, still recording after the waiter gave up
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				tc.Record(StageQueueWait, time.Now())
			}
		}
	}()
	tr.FinishAbandoned(tc, "m", start, errors.New("context canceled"))
	// The abandoned request is still retained and attributed (checked before
	// the churn below evicts it from the small ring).
	found := false
	for _, snap := range tr.Traces() {
		if snap.Err == "context canceled" && snap.Sampled {
			found = true
		}
	}
	if !found {
		t.Error("abandoned request missing from the retained ring")
	}
	// Churn the pool: a recycled abandoned trace would be handed back out by
	// one of these Begins while the recorder above still writes to it.
	for i := 0; i < 200; i++ {
		s := time.Now()
		nt := tr.Begin("m")
		if nt == tc {
			t.Fatal("abandoned trace was recycled into a new request while a late recorder still holds it")
		}
		nt.Record(StageModelScore, s)
		tr.Finish(nt, "m", s, nil)
	}
	close(stop)
	wg.Wait()
	if n := tr.Open(); n != 0 {
		t.Errorf("Open = %d after FinishAbandoned, want 0", n)
	}
}

func TestHeadSamplingEveryN(t *testing.T) {
	tr := NewTracer(Config{SampleEvery: 4, Buffer: 64})
	sampled := 0
	for i := 0; i < 40; i++ {
		start := time.Now()
		tc := tr.Begin("m")
		if tc != nil {
			sampled++
		}
		tr.Finish(tc, "m", start, nil)
	}
	if sampled != 10 {
		t.Fatalf("sampled %d of 40 with SampleEvery=4, want 10", sampled)
	}
	if got, _ := tr.Counts(); got != 10 {
		t.Fatalf("Counts sampled = %d, want 10", got)
	}
	if n := len(tr.Traces()); n != 10 {
		t.Fatalf("retained %d traces, want 10", n)
	}
	if tr.Open() != 0 {
		t.Fatalf("Open = %d after all Finish, want 0", tr.Open())
	}
}

func TestSampleEveryOneRetainsSpans(t *testing.T) {
	tr := NewTracer(Config{SampleEvery: 1, Buffer: 8})
	start := time.Now()
	tc := tr.Begin("m")
	if tc == nil {
		t.Fatal("Begin returned nil with SampleEvery=1")
	}
	s0 := time.Now()
	time.Sleep(time.Millisecond)
	tc.Record("step:a", s0)
	tc.Record("ifv:0", s0)
	tr.Finish(tc, "m", start, nil)

	traces := tr.Traces()
	if len(traces) != 1 {
		t.Fatalf("retained %d traces, want 1", len(traces))
	}
	snap := traces[0]
	if !snap.Sampled || snap.Label != "m" || len(snap.Spans) != 2 {
		t.Fatalf("snapshot = %+v, want sampled label=m with 2 spans", snap)
	}
	if snap.Spans[0].Stage != "step:a" || snap.Spans[0].Dur <= 0 {
		t.Fatalf("span[0] = %+v, want step:a with positive duration", snap.Spans[0])
	}
	if snap.Total < snap.Spans[0].Dur {
		t.Fatalf("total %v < span dur %v", snap.Total, snap.Spans[0].Dur)
	}
	hists := tr.StageHists()
	if hists["step:a"].Count != 1 || hists["ifv:0"].Count != 1 {
		t.Fatalf("stage hists = %+v, want one observation each", hists)
	}
}

func TestTailSamplingSlowAndError(t *testing.T) {
	tr := NewTracer(Config{SampleEvery: 1 << 30, Buffer: 8, SlowThreshold: time.Microsecond})
	// Slow unsampled request: retained spanless.
	start := time.Now().Add(-time.Millisecond)
	tr.Finish(nil, "m", start, nil)
	// Fast unsampled error: retained too.
	tr.Finish(nil, "m", time.Now(), errors.New("boom"))
	// Fast unsampled success with a generous threshold tracer: dropped.
	tr2 := NewTracer(Config{SampleEvery: 1 << 30})
	tr2.Finish(nil, "m", time.Now(), nil)

	slow := tr.Slow()
	if len(slow) != 2 {
		t.Fatalf("slow list has %d entries, want 2", len(slow))
	}
	if slow[0].Err != "boom" || slow[0].Sampled {
		t.Fatalf("newest slow entry = %+v, want unsampled error", slow[0])
	}
	if slow[1].Total < time.Millisecond {
		t.Fatalf("slow entry total = %v, want >= 1ms", slow[1].Total)
	}
	if _, tailed := tr.Counts(); tailed != 2 {
		t.Fatalf("tailed = %d, want 2", tailed)
	}
	if len(tr.Traces()) != 2 {
		t.Fatalf("tail-sampled entries missing from trace ring: %d", len(tr.Traces()))
	}
	if len(tr2.Slow()) != 0 {
		t.Fatal("fast successful request was tail-sampled")
	}
}

func TestRingEvictionNewestFirst(t *testing.T) {
	tr := NewTracer(Config{SampleEvery: 1, Buffer: 4})
	for i := 0; i < 10; i++ {
		start := time.Now()
		tc := tr.Begin(fmt.Sprintf("m%d", i))
		tr.Finish(tc, "", start, nil)
	}
	traces := tr.Traces()
	if len(traces) != 4 {
		t.Fatalf("ring holds %d, want 4", len(traces))
	}
	for i, want := range []string{"m9", "m8", "m7", "m6"} {
		if traces[i].Label != want {
			t.Fatalf("traces[%d].Label = %q, want %q (newest first)", i, traces[i].Label, want)
		}
	}
}

func TestContextRoundTrip(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("FromContext on empty ctx should be nil")
	}
	if FromContext(nil) != nil { //nolint:staticcheck // nil ctx tolerated by design
		t.Fatal("FromContext(nil) should be nil")
	}
	ctx := context.Background()
	if NewContext(ctx, nil) != ctx {
		t.Fatal("NewContext with nil trace must return ctx unchanged")
	}
	tc := &Trace{start: time.Now()}
	if got := FromContext(NewContext(ctx, tc)); got != tc {
		t.Fatalf("FromContext = %p, want %p", got, tc)
	}
	// Record on the nil trace is a no-op, not a panic.
	var nilT *Trace
	nilT.Record("x", time.Now())
}

// TestOwnedContext pins the ownership mark the serving handler places on
// every request context — sampled (via the carried trace) or not (via
// MarkOwned) — so inner entry points skip their own Begin/Finish.
func TestOwnedContext(t *testing.T) {
	if Owned(nil) {
		t.Error("Owned(nil) = true")
	}
	if Owned(context.Background()) {
		t.Error("background context reported owned")
	}
	if !Owned(MarkOwned(context.Background())) {
		t.Error("MarkOwned context not reported owned")
	}
	tr := NewTracer(Config{SampleEvery: 1, Buffer: 8})
	start := time.Now()
	tc := tr.Begin("m")
	if !Owned(NewContext(context.Background(), tc)) {
		t.Error("trace-carrying context not reported owned")
	}
	tr.Finish(tc, "m", start, nil)
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	if tc := tr.Begin("m"); tc != nil {
		t.Fatal("nil tracer sampled a request")
	}
	tr.Finish(nil, "m", time.Now(), nil)
	if tr.Traces() != nil || tr.Slow() != nil || tr.Open() != 0 {
		t.Fatal("nil tracer retained state")
	}
	if s, tl := tr.Counts(); s != 0 || tl != 0 {
		t.Fatal("nil tracer counted")
	}
}

func TestConcurrentRecordAndFinish(t *testing.T) {
	tr := NewTracer(Config{SampleEvery: 1, Buffer: 128})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				start := time.Now()
				tc := tr.Begin("m")
				// Parallel workers sharing one trace.
				var inner sync.WaitGroup
				for w := 0; w < 2; w++ {
					inner.Add(1)
					go func() {
						defer inner.Done()
						tc.Record("ifv:0", time.Now())
					}()
				}
				inner.Wait()
				tr.Finish(tc, "m", start, nil)
			}
		}()
	}
	wg.Wait()
	if tr.Open() != 0 {
		t.Fatalf("Open = %d after all goroutines finished, want 0", tr.Open())
	}
	if got := tr.TotalHist().Count; got != 8*200 {
		t.Fatalf("total hist count = %d, want %d", got, 8*200)
	}
}

func TestHistBuckets(t *testing.T) {
	h := newHist()
	h.Observe(5 * time.Microsecond)  // bucket 0 (<=10µs)
	h.Observe(30 * time.Microsecond) // bucket 2 (<=50µs)
	h.Observe(10 * time.Second)      // +Inf bucket
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count = %d, want 3", s.Count)
	}
	if s.Counts[0] != 1 || s.Counts[2] != 1 || s.Counts[len(s.Counts)-1] != 1 {
		t.Fatalf("bucket counts = %v", s.Counts)
	}
	if s.SumSeconds < 10 || s.SumSeconds > 10.1 {
		t.Fatalf("sum = %v s, want ~10", s.SumSeconds)
	}
	if len(s.Bounds)+1 != len(s.Counts) {
		t.Fatalf("bounds/counts mismatch: %d vs %d", len(s.Bounds), len(s.Counts))
	}
}

func TestBeginAllocFreeWhenUnsampled(t *testing.T) {
	tr := NewTracer(Config{SampleEvery: 1 << 30, SlowThreshold: time.Hour})
	start := time.Now()
	allocs := testing.AllocsPerRun(200, func() {
		tc := tr.Begin("m")
		tr.Finish(tc, "m", start, nil)
	})
	if allocs != 0 {
		t.Fatalf("unsampled Begin/Finish allocates %.1f/op, want 0", allocs)
	}
}
