package trace

import (
	"sync/atomic"
	"time"
)

// histBounds are the fixed latency bucket upper bounds in seconds,
// Prometheus-style (each bucket counts observations <= bound; an implicit
// +Inf bucket catches the rest). The range spans 10µs..2.5s: compiled point
// queries land in the first buckets, remote-feature batch queries in the
// last.
var histBounds = []float64{
	10e-6, 25e-6, 50e-6,
	100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3,
	10e-3, 25e-3, 50e-3,
	100e-3, 250e-3, 500e-3,
	1, 2.5,
}

// histBoundsNs mirrors histBounds in integer nanoseconds so Observe
// compares durations without float conversion.
var histBoundsNs = func() []int64 {
	ns := make([]int64, len(histBounds))
	for i, b := range histBounds {
		ns[i] = int64(b * 1e9)
	}
	return ns
}()

// Hist is a fixed-bucket latency histogram with atomic counters: Observe is
// lock-free and allocation-free, so it sits on the unsampled request path.
type Hist struct {
	counts []atomic.Int64 // len(histBounds)+1; last is +Inf
	sumNs  atomic.Int64
	n      atomic.Int64
}

func newHist() *Hist {
	return &Hist{counts: make([]atomic.Int64, len(histBounds)+1)}
}

// Observe records one duration.
func (h *Hist) Observe(d time.Duration) {
	ns := int64(d)
	i := 0
	for i < len(histBoundsNs) && ns > histBoundsNs[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNs.Add(ns)
	h.n.Add(1)
}

// HistSnapshot is a point-in-time copy of a histogram in Prometheus terms:
// Bounds in seconds, Counts per bucket (non-cumulative, with the final
// element the +Inf bucket), plus the observation sum and count.
type HistSnapshot struct {
	Bounds     []float64
	Counts     []int64
	SumSeconds float64
	Count      int64
}

// Snapshot copies the histogram. Concurrent Observes may tear between
// buckets and sum; the skew is bounded by in-flight observations.
func (h *Hist) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := HistSnapshot{
		Bounds:     histBounds,
		Counts:     make([]int64, len(h.counts)),
		SumSeconds: float64(h.sumNs.Load()) / 1e9,
		Count:      h.n.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}
