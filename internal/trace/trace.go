// Package trace provides allocation-conscious per-request span recording
// for the serving path: queue wait, batch assembly, fused weld steps, IFV
// computation, cache lookup/fill, cascade small-model vs. resume, and model
// scoring each record a stage span into the request's Trace.
//
// Sampling is two-sided. Head sampling retains every Nth request in full
// (all stage spans); the deterministic 1-in-N decision is a single atomic
// add, so the unsampled fast path performs no heap allocation — preserving
// the 0-alloc compiled point-query guarantee. Tail sampling additionally
// retains slow or failed requests that head sampling missed, as spanless
// entries (tail requests were not instrumented while running — by the time
// they are known slow, their stage timings are gone; only the total
// survives).
//
// Retained traces land in a fixed ring buffer (served by GET /v1/traces)
// and slow/error requests in a second per-tracer ring (the recent-slow list
// on per-model stats). Every finished request — sampled or not — feeds
// fixed-bucket atomic latency histograms, so /metrics histograms cover all
// traffic, not just the sampled slice.
package trace

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Well-known stage names recorded by the serving path. Weld step and IFV
// spans use dynamic labels ("step:<op>", "ifv:<index>") instead.
const (
	StageQueueWait     = "queue:wait"
	StageBatchAssemble = "batch:assemble"
	StageCacheLookup   = "cache:lookup"
	StageCacheFill     = "cache:fill"
	StageCacheCoalesce = "cache:coalesce"
	StageCascadeSmall  = "cascade:small"
	StageCascadeResume = "cascade:resume"
	StageModelScore    = "model:score"
	StageInterp        = "interp:batch"
	StageStoreMGet     = "store:mget"
	StageStoreHedge    = "store:hedge"
)

// Default configuration values, applied by NewTracer for zero fields.
const (
	DefaultSampleEvery   = 128
	DefaultBuffer        = 256
	DefaultSlowBuffer    = 32
	DefaultSlowThreshold = 25 * time.Millisecond
)

// Span is one timed stage within a trace. Offset is the stage start
// relative to the trace's begin time (clamped to zero: the owner may start
// its clock a hair before Begin).
type Span struct {
	Stage  string
	Offset time.Duration
	Dur    time.Duration
}

// Trace accumulates the stage spans of one sampled request. Record is
// mutex-guarded because parallel IFV workers share a single run (and thus a
// single Trace). A nil *Trace is valid everywhere and records nothing.
type Trace struct {
	id    uint64
	label string
	start time.Time

	mu    sync.Mutex
	spans []Span
}

// ID returns the trace's tracer-unique id.
func (t *Trace) ID() uint64 { return t.id }

// Record appends a span for stage that started at the given time and ends
// now. Safe on a nil Trace and safe for concurrent use.
func (t *Trace) Record(stage string, start time.Time) {
	if t == nil {
		return
	}
	now := time.Now()
	off := start.Sub(t.start)
	if off < 0 {
		off = 0
	}
	t.mu.Lock()
	t.spans = append(t.spans, Span{Stage: stage, Offset: off, Dur: now.Sub(start)})
	t.mu.Unlock()
}

// Snapshot is the immutable, retained form of a finished request: either a
// head-sampled trace (Sampled true, Spans populated) or a tail-sampled
// slow/error entry (Sampled false, Spans nil).
type Snapshot struct {
	ID      uint64
	Label   string
	Start   time.Time
	Total   time.Duration
	Err     string
	Sampled bool
	Spans   []Span
}

// Config tunes a Tracer. Zero fields take the package defaults.
type Config struct {
	// SampleEvery head-samples one request in N (1 = every request).
	SampleEvery int
	// Buffer is the retained-trace ring capacity (GET /v1/traces).
	Buffer int
	// SlowThreshold tail-samples requests at or above this latency.
	SlowThreshold time.Duration
	// SlowBuffer is the recent-slow ring capacity (per-model stats).
	SlowBuffer int
}

// Tracer owns sampling decisions and retention for one pipeline. All
// methods are safe for concurrent use and safe on a nil receiver (no-ops),
// so callers thread a possibly-nil *Tracer without branching.
type Tracer struct {
	every uint64
	slow  time.Duration

	seq     atomic.Uint64
	ids     atomic.Uint64
	open    atomic.Int64
	sampled atomic.Int64
	tailed  atomic.Int64

	pool sync.Pool // *Trace

	total  *Hist
	histMu sync.RWMutex
	hists  map[string]*Hist

	ringMu   sync.Mutex
	ring     []Snapshot
	ringNext int
	ringLen  int

	slowMu   sync.Mutex
	slowRing []Snapshot
	slowNext int
	slowLen  int
}

// NewTracer returns a tracer with cfg's zero fields defaulted.
func NewTracer(cfg Config) *Tracer {
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = DefaultSampleEvery
	}
	if cfg.Buffer <= 0 {
		cfg.Buffer = DefaultBuffer
	}
	if cfg.SlowThreshold <= 0 {
		cfg.SlowThreshold = DefaultSlowThreshold
	}
	if cfg.SlowBuffer <= 0 {
		cfg.SlowBuffer = DefaultSlowBuffer
	}
	tr := &Tracer{
		every:    uint64(cfg.SampleEvery),
		slow:     cfg.SlowThreshold,
		total:    newHist(),
		hists:    make(map[string]*Hist),
		ring:     make([]Snapshot, cfg.Buffer),
		slowRing: make([]Snapshot, cfg.SlowBuffer),
	}
	tr.pool.New = func() any { return &Trace{spans: make([]Span, 0, 32)} }
	return tr
}

// Begin makes the head-sampling decision for one request labeled label
// (typically the model name). It returns a pooled *Trace when the request
// is sampled and nil otherwise; the unsampled path is one atomic add.
func (tr *Tracer) Begin(label string) *Trace {
	if tr == nil {
		return nil
	}
	if tr.seq.Add(1)%tr.every != 0 {
		return nil
	}
	t := tr.pool.Get().(*Trace)
	t.id = tr.ids.Add(1)
	t.label = label
	t.start = time.Now()
	t.spans = t.spans[:0]
	tr.open.Add(1)
	tr.sampled.Add(1)
	return t
}

// Finish completes one request that started at start. t is the trace from
// Begin and may be nil (unsampled); label must match the Begin label so
// tail-sampled entries are attributed without a trace in hand. Every call
// observes the total-latency histogram; sampled traces are snapshotted into
// the ring (and their spans into per-stage histograms), and slow or failed
// requests are retained on the recent-slow ring either way. The unsampled
// happy path allocates nothing.
//
// Finish recycles t into the tracer's pool, so the caller must hold the
// only live reference: no other goroutine may Record on t after Finish
// returns. When another component may still reach the trace (a batcher
// holding the abandoned request's context), use FinishAbandoned instead.
func (tr *Tracer) Finish(t *Trace, label string, start time.Time, err error) {
	tr.finish(t, label, start, err, true)
}

// FinishAbandoned completes a request whose trace may still be referenced
// by another goroutine — the caller gave up waiting (client cancellation,
// forced shutdown) while the request is still queued or executing in the
// batcher, whose context carries the trace. It records exactly like Finish
// but leaves the trace to the garbage collector instead of resetting and
// pooling it, so a late Record from the batcher can never race with the
// trace's reuse by a new request.
func (tr *Tracer) FinishAbandoned(t *Trace, label string, start time.Time, err error) {
	tr.finish(t, label, start, err, false)
}

func (tr *Tracer) finish(t *Trace, label string, start time.Time, err error, recycle bool) {
	if tr == nil {
		return
	}
	d := time.Since(start)
	tr.total.Observe(d)
	if t == nil {
		if err != nil || d >= tr.slow {
			tr.tailed.Add(1)
			snap := Snapshot{Label: label, Start: start, Total: d}
			if err != nil {
				snap.Err = err.Error()
			}
			tr.push(snap)
			tr.pushSlow(snap)
		}
		return
	}
	tr.open.Add(-1)
	t.mu.Lock()
	spans := append([]Span(nil), t.spans...)
	t.mu.Unlock()
	snap := Snapshot{
		ID:      t.id,
		Label:   t.label,
		Start:   t.start,
		Total:   d,
		Sampled: true,
		Spans:   spans,
	}
	if err != nil {
		snap.Err = err.Error()
	}
	for i := range spans {
		tr.stageHist(spans[i].Stage).Observe(spans[i].Dur)
	}
	tr.push(snap)
	if err != nil || d >= tr.slow {
		tr.pushSlow(snap)
	}
	if recycle {
		t.mu.Lock()
		t.spans = t.spans[:0]
		t.mu.Unlock()
		tr.pool.Put(t)
	}
}

func (tr *Tracer) push(s Snapshot) {
	tr.ringMu.Lock()
	tr.ring[tr.ringNext] = s
	tr.ringNext = (tr.ringNext + 1) % len(tr.ring)
	if tr.ringLen < len(tr.ring) {
		tr.ringLen++
	}
	tr.ringMu.Unlock()
}

func (tr *Tracer) pushSlow(s Snapshot) {
	s.Spans = nil // the slow list reports totals; full spans live in the trace ring
	tr.slowMu.Lock()
	tr.slowRing[tr.slowNext] = s
	tr.slowNext = (tr.slowNext + 1) % len(tr.slowRing)
	if tr.slowLen < len(tr.slowRing) {
		tr.slowLen++
	}
	tr.slowMu.Unlock()
}

// Traces returns the retained snapshots, newest first.
func (tr *Tracer) Traces() []Snapshot {
	if tr == nil {
		return nil
	}
	tr.ringMu.Lock()
	defer tr.ringMu.Unlock()
	return ringCopy(tr.ring, tr.ringNext, tr.ringLen)
}

// Slow returns the recent slow/error entries, newest first.
func (tr *Tracer) Slow() []Snapshot {
	if tr == nil {
		return nil
	}
	tr.slowMu.Lock()
	defer tr.slowMu.Unlock()
	return ringCopy(tr.slowRing, tr.slowNext, tr.slowLen)
}

func ringCopy(ring []Snapshot, next, n int) []Snapshot {
	out := make([]Snapshot, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, ring[(next-i+len(ring))%len(ring)])
	}
	return out
}

// Open returns the number of traces begun but not yet finished. A drained
// server must report zero.
func (tr *Tracer) Open() int64 {
	if tr == nil {
		return 0
	}
	return tr.open.Load()
}

// Counts returns how many requests were head-sampled and tail-sampled.
func (tr *Tracer) Counts() (sampled, tailed int64) {
	if tr == nil {
		return 0, 0
	}
	return tr.sampled.Load(), tr.tailed.Load()
}

// SlowThreshold returns the tail-sampling latency threshold.
func (tr *Tracer) SlowThreshold() time.Duration {
	if tr == nil {
		return 0
	}
	return tr.slow
}

// TotalHist snapshots the all-requests latency histogram.
func (tr *Tracer) TotalHist() HistSnapshot {
	if tr == nil {
		return HistSnapshot{}
	}
	return tr.total.Snapshot()
}

// StageHists snapshots the per-stage latency histograms, keyed by stage.
// Stage histograms only see head-sampled requests.
func (tr *Tracer) StageHists() map[string]HistSnapshot {
	if tr == nil {
		return nil
	}
	tr.histMu.RLock()
	defer tr.histMu.RUnlock()
	out := make(map[string]HistSnapshot, len(tr.hists))
	for stage, h := range tr.hists {
		out[stage] = h.Snapshot()
	}
	return out
}

func (tr *Tracer) stageHist(stage string) *Hist {
	tr.histMu.RLock()
	h, ok := tr.hists[stage]
	tr.histMu.RUnlock()
	if ok {
		return h
	}
	tr.histMu.Lock()
	defer tr.histMu.Unlock()
	if h, ok = tr.hists[stage]; ok {
		return h
	}
	h = newHist()
	tr.hists[stage] = h
	return h
}

// ctxKey is the zero-size context key; Value lookups with it do not
// allocate.
type ctxKey struct{}

// NewContext returns ctx carrying t. A nil trace returns ctx unchanged, so
// the unsampled path never allocates a context.
func NewContext(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the trace carried by ctx, or nil.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}

// ownedKey marks a context whose request already has a trace owner: the
// component that called Begin and will call Finish. Zero-size, so Value
// lookups with it do not allocate.
type ownedKey struct{}

// MarkOwned returns ctx marked as trace-owned. The serving handler owns
// every server-routed request's trace lifecycle — including the unsampled
// ones, whose Begin returned nil and left nothing in the context — so it
// marks the context unconditionally; pipeline entry points seeing the mark
// skip their own Begin/Finish and the request is counted exactly once.
func MarkOwned(ctx context.Context) context.Context {
	return context.WithValue(ctx, ownedKey{}, ownedKey{})
}

// Owned reports whether an outer component owns the request's trace
// lifecycle: ctx carries a live trace or the MarkOwned mark.
func Owned(ctx context.Context) bool {
	if ctx == nil {
		return false
	}
	return ctx.Value(ctxKey{}) != nil || ctx.Value(ownedKey{}) != nil
}
