package kvstore

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Wire framing shared by the toy pooled Client and the production
// internal/store client. Both speak to the same Server, so the byte-level
// encode/decode lives here once instead of being duplicated per client.
//
//	mget request:  'M' | uint32 n | n x int64 keys
//	mget response: uint32 n | n x (uint32 dim | dim x float64)
//	dim  request:  'D' | uint32 0
//	dim  response: uint32 dim
//
// All integers little-endian. A row dim of MissingDim marks an absent key.

// MissingDim is the on-wire row width marking a key the server does not
// hold; clients surface such rows as nil.
const MissingDim = 0xFFFFFFFF

const missingDim = MissingDim

// maxBatch bounds the per-request key count a server will accept.
const maxBatch = 1 << 20

// AppendMGet appends the framed MGET request for keys to dst and returns
// the extended slice.
func AppendMGet(dst []byte, keys []int64) []byte {
	dst = append(dst, 'M')
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(keys)))
	for _, k := range keys {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(k))
	}
	return dst
}

// AppendDimProbe appends the framed dim-query request to dst. Servers
// predating the probe drop the connection on the unknown frame byte, which
// callers should treat as "dim unknown", not as a hard failure.
func AppendDimProbe(dst []byte) []byte {
	return append(dst, 'D', 0, 0, 0, 0)
}

// ReadMGetResponse reads one MGET response for nkeys keys of width dim from
// r. Missing keys come back as nil rows. The returned rows are freshly
// allocated; r is left positioned at the next response frame.
func ReadMGetResponse(r io.Reader, nkeys, dim int) ([][]float64, error) {
	var cnt [4]byte
	if _, err := io.ReadFull(r, cnt[:]); err != nil {
		return nil, fmt.Errorf("kvstore: read count: %w", err)
	}
	n := binary.LittleEndian.Uint32(cnt[:])
	if int(n) != nkeys {
		return nil, fmt.Errorf("kvstore: response count %d, want %d", n, nkeys)
	}
	out := make([][]float64, n)
	var dimBuf [4]byte
	valBuf := make([]byte, dim*8)
	for i := 0; i < int(n); i++ {
		if _, err := io.ReadFull(r, dimBuf[:]); err != nil {
			return nil, fmt.Errorf("kvstore: read dim: %w", err)
		}
		d := binary.LittleEndian.Uint32(dimBuf[:])
		if d == MissingDim {
			continue
		}
		if int(d) != dim {
			return nil, fmt.Errorf("kvstore: row dim %d, want %d", d, dim)
		}
		if _, err := io.ReadFull(r, valBuf); err != nil {
			return nil, fmt.Errorf("kvstore: read values: %w", err)
		}
		row := make([]float64, dim)
		for j := range row {
			row[j] = math.Float64frombits(binary.LittleEndian.Uint64(valBuf[j*8:]))
		}
		out[i] = row
	}
	return out, nil
}

// ReadDimResponse reads the dim-query response from r.
func ReadDimResponse(r io.Reader) (int, error) {
	var buf [4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, fmt.Errorf("kvstore: read dim probe: %w", err)
	}
	return int(binary.LittleEndian.Uint32(buf[:])), nil
}
