// Package kvstore implements the remote feature store used by the lookup
// benchmarks: an in-process TCP key-value server and a pipelining client.
// It substitutes for the Redis instance in the paper's experimental setup
// (section 6.1). A configurable per-request latency models the datacenter
// round trip; the client counts remote requests, the metric of paper Table 2.
//
// Protocol (binary, little-endian):
//
//	request:  'M' | uint32 n | n x int64 keys
//	response: uint32 n | n x (uint32 dim | dim x float64), dim==0xFFFFFFFF => missing
package kvstore

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Server is a single-table remote feature store.
type Server struct {
	dim     int
	latency time.Duration

	mu   sync.RWMutex
	rows map[int64][]float64

	latMu sync.RWMutex
	latFn func() time.Duration

	ln        net.Listener
	requests  atomic.Int64
	dropConns atomic.Int64
	closed    atomic.Bool
	wg        sync.WaitGroup
}

// NewServer creates a server holding feature vectors of width dim that
// sleeps for latency before answering each request, emulating a remote
// round trip. latency may be zero for tests.
func NewServer(dim int, latency time.Duration) *Server {
	return &Server{dim: dim, latency: latency, rows: make(map[int64][]float64)}
}

// Load bulk-inserts rows into the table.
func (s *Server) Load(rows map[int64][]float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, v := range rows {
		if len(v) != s.dim {
			return fmt.Errorf("kvstore: Load: key %d has %d features, want %d", k, len(v), s.dim)
		}
		s.rows[k] = v
	}
	return nil
}

// Dim returns the feature width.
func (s *Server) Dim() int { return s.dim }

// SetLatencyFunc replaces the fixed per-request latency with a model called
// once per MGET, letting tests inject tail latency (for example, every Nth
// request slow). A nil fn restores the fixed latency from NewServer.
func (s *Server) SetLatencyFunc(fn func() time.Duration) {
	s.latMu.Lock()
	s.latFn = fn
	s.latMu.Unlock()
}

// DropNextConns makes the server close the next n accepted connections
// before reading a single byte, simulating transient network failures for
// retry tests. The listener itself stays up.
func (s *Server) DropNextConns(n int) { s.dropConns.Store(int64(n)) }

// TailLatency builds a latency model for SetLatencyFunc that answers every
// Nth request in slow and the rest in base — deterministic tail injection
// for chaos scenarios and hedging tests. every <= 1 makes every request
// slow; the returned func is safe for concurrent use.
func TailLatency(every int, base, slow time.Duration) func() time.Duration {
	if every <= 1 {
		return func() time.Duration { return slow }
	}
	var n atomic.Int64
	return func() time.Duration {
		if n.Add(1)%int64(every) == 0 {
			return slow
		}
		return base
	}
}

func (s *Server) requestLatency() time.Duration {
	s.latMu.RLock()
	fn := s.latFn
	s.latMu.RUnlock()
	if fn != nil {
		return fn()
	}
	return s.latency
}

// Requests returns the number of MGET requests served (each batched MGET
// counts as one remote request, like one Redis pipeline round trip).
func (s *Server) Requests() int64 { return s.requests.Load() }

// Start begins listening on 127.0.0.1 (ephemeral port) and serving
// connections. It returns the server's address.
func (s *Server) Start() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", fmt.Errorf("kvstore: listen: %w", err)
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

// Close stops the listener and waits for connection handlers to finish.
func (s *Server) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	conns := make(map[net.Conn]bool)
	var mu sync.Mutex
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			mu.Lock()
			for c := range conns {
				c.Close()
			}
			mu.Unlock()
			return // listener closed
		}
		if s.dropConns.Load() > 0 && s.dropConns.Add(-1) >= 0 {
			conn.Close()
			continue
		}
		mu.Lock()
		conns[conn] = true
		mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			mu.Lock()
			delete(conns, conn)
			mu.Unlock()
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	hdr := make([]byte, 5)
	keyBuf := make([]byte, 0, 1024)
	out := make([]byte, 0, 4096)
	for {
		if _, err := io.ReadFull(conn, hdr); err != nil {
			return
		}
		if hdr[0] == 'D' {
			// Dim probe: answer the table width so clients can validate
			// schema at bind time instead of failing on the first lookup.
			out = out[:0]
			out = binary.LittleEndian.AppendUint32(out, uint32(s.dim))
			if _, err := conn.Write(out); err != nil {
				return
			}
			continue
		}
		if hdr[0] != 'M' {
			return // protocol error: drop connection
		}
		n := binary.LittleEndian.Uint32(hdr[1:])
		if n > maxBatch {
			return
		}
		need := int(n) * 8
		if cap(keyBuf) < need {
			keyBuf = make([]byte, need)
		}
		keyBuf = keyBuf[:need]
		if _, err := io.ReadFull(conn, keyBuf); err != nil {
			return
		}
		if d := s.requestLatency(); d > 0 {
			time.Sleep(d)
		}
		s.requests.Add(1)

		out = out[:0]
		out = binary.LittleEndian.AppendUint32(out, n)
		s.mu.RLock()
		for i := 0; i < int(n); i++ {
			key := int64(binary.LittleEndian.Uint64(keyBuf[i*8:]))
			row, ok := s.rows[key]
			if !ok {
				out = binary.LittleEndian.AppendUint32(out, missingDim)
				continue
			}
			out = binary.LittleEndian.AppendUint32(out, uint32(len(row)))
			for _, v := range row {
				out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
			}
		}
		s.mu.RUnlock()
		if _, err := conn.Write(out); err != nil {
			return
		}
	}
}
