package kvstore

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// defaultIOTimeout bounds a single MGET round trip when the caller's
// context carries no deadline of its own, so a stalled server can never
// hang a lookup forever.
const defaultIOTimeout = 10 * time.Second

// Client is a connection-pooled client for a kvstore Server. It implements
// the ops.Table interface, so Lookup operators can run against a remote
// store transparently. Each MGET is one remote request regardless of key
// count (the client pipelines whole batches), which is what makes batched
// compiled lookups cheaper than the interpreted one-request-per-row pattern.
type Client struct {
	addr string
	dim  int

	mu    sync.Mutex
	conns []*clientConn

	requests atomic.Int64
	closed   atomic.Bool
}

type clientConn struct {
	mu   sync.Mutex
	conn net.Conn
}

// Dial connects to a server and validates the table width against dim.
func Dial(addr string, dim int) (*Client, error) {
	c := &Client{addr: addr, dim: dim}
	// Open one connection eagerly so dial errors surface here.
	cc, err := c.newConn()
	if err != nil {
		return nil, err
	}
	c.conns = append(c.conns, cc)
	return c, nil
}

func (c *Client) newConn() (*clientConn, error) {
	conn, err := net.DialTimeout("tcp", c.addr, defaultIOTimeout)
	if err != nil {
		return nil, fmt.Errorf("kvstore: dial %s: %w", c.addr, err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return &clientConn{conn: conn}, nil
}

// acquire pops a pooled connection or dials a new one.
func (c *Client) acquire() (*clientConn, error) {
	c.mu.Lock()
	if n := len(c.conns); n > 0 {
		cc := c.conns[n-1]
		c.conns = c.conns[:n-1]
		c.mu.Unlock()
		return cc, nil
	}
	c.mu.Unlock()
	return c.newConn()
}

func (c *Client) release(cc *clientConn) {
	c.mu.Lock()
	if len(c.conns) < 8 && !c.closed.Load() {
		c.conns = append(c.conns, cc)
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	cc.conn.Close()
}

// Dim implements ops.Table.
func (c *Client) Dim() int { return c.dim }

// Requests implements ops.Table: the cumulative count of remote MGET
// round trips issued by this client.
func (c *Client) Requests() int64 { return c.requests.Load() }

// CheckSchema implements ops.SchemaChecker: it probes the server for its
// table width and reports a descriptive mismatch error, so a bad binding
// surfaces at Load/bind time instead of on the first predict.
func (c *Client) CheckSchema(dim int) error {
	ctx, cancel := context.WithTimeout(context.Background(), defaultIOTimeout)
	defer cancel()
	serverDim, err := c.probeDim(ctx)
	if err != nil {
		return fmt.Errorf("kvstore: schema probe of %s failed: %w", c.addr, err)
	}
	if serverDim != dim {
		return fmt.Errorf("kvstore: server %s holds %d-wide rows, lookup expects %d", c.addr, serverDim, dim)
	}
	return nil
}

// probeDim asks the server for its table width via the 'D' frame.
func (c *Client) probeDim(ctx context.Context) (int, error) {
	cc, err := c.acquire()
	if err != nil {
		return 0, err
	}
	dim, err := withDeadlineConn(ctx, cc.conn, func() (int, error) {
		if _, err := cc.conn.Write(AppendDimProbe(nil)); err != nil {
			return 0, fmt.Errorf("kvstore: write probe: %w", err)
		}
		return ReadDimResponse(cc.conn)
	})
	if err != nil {
		cc.conn.Close()
		return 0, err
	}
	c.release(cc)
	return dim, nil
}

// LookupBatch fetches all keys in one pipelined MGET.
//
// Deprecated: LookupBatch cannot be canceled and falls back to a fixed
// 10-second I/O timeout; use LookupBatchCtx so request deadlines propagate
// to the wire.
func (c *Client) LookupBatch(keys []int64) ([][]float64, error) {
	return c.LookupBatchCtx(context.Background(), keys)
}

// LookupBatchCtx implements the context-aware MGET: the request is bounded
// by ctx's deadline (or a 10s default when ctx has none), and cancellation
// aborts the in-flight read by expiring the connection deadline. A
// connection that saw a deadline abort or any I/O error is discarded, never
// pooled.
func (c *Client) LookupBatchCtx(ctx context.Context, keys []int64) ([][]float64, error) {
	if c.closed.Load() {
		return nil, fmt.Errorf("kvstore: client closed")
	}
	if len(keys) == 0 {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cc, err := c.acquire()
	if err != nil {
		return nil, err
	}
	out, err := withDeadlineConn(ctx, cc.conn, func() ([][]float64, error) {
		return cc.mget(keys, c.dim)
	})
	if err != nil {
		cc.conn.Close()
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, err
	}
	c.requests.Add(1)
	c.release(cc)
	return out, nil
}

// withDeadlineConn runs one wire exchange under ctx: the conn deadline is the
// earlier of ctx's deadline and the default I/O timeout, and a ctx
// cancellation mid-exchange expires the deadline immediately so blocked
// reads return. Reports whether the conn is still clean for pooling via
// the error (non-nil means the caller must discard it).
func withDeadlineConn[T any](ctx context.Context, conn net.Conn, f func() (T, error)) (T, error) {
	dl := time.Now().Add(defaultIOTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(dl) {
		dl = d
	}
	conn.SetDeadline(dl)
	stop := context.AfterFunc(ctx, func() {
		conn.SetDeadline(time.Unix(1, 0)) // expire: unblock in-flight I/O
	})
	out, err := f()
	if !stop() {
		// The cancel callback ran (or is running): the conn's deadline is
		// poisoned, so it must not be pooled. Surface the cancellation.
		var zero T
		if err == nil {
			err = ctx.Err()
			if err == nil {
				err = context.Canceled
			}
			return zero, err
		}
		return zero, err
	}
	if err != nil {
		var zero T
		return zero, err
	}
	conn.SetDeadline(time.Time{})
	return out, nil
}

func (cc *clientConn) mget(keys []int64, dim int) ([][]float64, error) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	req := AppendMGet(make([]byte, 0, 5+8*len(keys)), keys)
	if _, err := cc.conn.Write(req); err != nil {
		return nil, fmt.Errorf("kvstore: write: %w", err)
	}
	return ReadMGetResponse(cc.conn, len(keys), dim)
}

// ResetRequests zeroes the request counter (between experiment phases).
func (c *Client) ResetRequests() { c.requests.Store(0) }

// Close closes all pooled connections.
func (c *Client) Close() error {
	c.closed.Store(true)
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, cc := range c.conns {
		cc.conn.Close()
	}
	c.conns = nil
	return nil
}
