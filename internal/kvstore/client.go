package kvstore

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"sync/atomic"
)

// Client is a connection-pooled client for a kvstore Server. It implements
// the ops.Table interface, so Lookup operators can run against a remote
// store transparently. Each MGET is one remote request regardless of key
// count (the client pipelines whole batches), which is what makes batched
// compiled lookups cheaper than the interpreted one-request-per-row pattern.
type Client struct {
	addr string
	dim  int

	mu    sync.Mutex
	conns []*clientConn

	requests atomic.Int64
	closed   atomic.Bool
}

type clientConn struct {
	mu   sync.Mutex
	conn net.Conn
	rw   struct {
		hdr []byte
	}
}

// Dial connects to a server and validates the table width against dim.
func Dial(addr string, dim int) (*Client, error) {
	c := &Client{addr: addr, dim: dim}
	// Open one connection eagerly so dial errors surface here.
	cc, err := c.newConn()
	if err != nil {
		return nil, err
	}
	c.conns = append(c.conns, cc)
	return c, nil
}

func (c *Client) newConn() (*clientConn, error) {
	conn, err := net.Dial("tcp", c.addr)
	if err != nil {
		return nil, fmt.Errorf("kvstore: dial %s: %w", c.addr, err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	cc := &clientConn{conn: conn}
	cc.rw.hdr = make([]byte, 5)
	return cc, nil
}

// acquire pops a pooled connection or dials a new one.
func (c *Client) acquire() (*clientConn, error) {
	c.mu.Lock()
	if n := len(c.conns); n > 0 {
		cc := c.conns[n-1]
		c.conns = c.conns[:n-1]
		c.mu.Unlock()
		return cc, nil
	}
	c.mu.Unlock()
	return c.newConn()
}

func (c *Client) release(cc *clientConn) {
	c.mu.Lock()
	if len(c.conns) < 8 && !c.closed.Load() {
		c.conns = append(c.conns, cc)
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	cc.conn.Close()
}

// Dim implements ops.Table.
func (c *Client) Dim() int { return c.dim }

// Requests implements ops.Table: the cumulative count of remote MGET
// round trips issued by this client.
func (c *Client) Requests() int64 { return c.requests.Load() }

// LookupBatch implements ops.Table: fetches all keys in one pipelined MGET.
func (c *Client) LookupBatch(keys []int64) ([][]float64, error) {
	if c.closed.Load() {
		return nil, fmt.Errorf("kvstore: client closed")
	}
	if len(keys) == 0 {
		return nil, nil
	}
	cc, err := c.acquire()
	if err != nil {
		return nil, err
	}
	out, err := cc.mget(keys, c.dim)
	if err != nil {
		cc.conn.Close()
		return nil, err
	}
	c.requests.Add(1)
	c.release(cc)
	return out, nil
}

func (cc *clientConn) mget(keys []int64, dim int) ([][]float64, error) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	req := make([]byte, 0, 5+8*len(keys))
	req = append(req, 'M')
	req = binary.LittleEndian.AppendUint32(req, uint32(len(keys)))
	for _, k := range keys {
		req = binary.LittleEndian.AppendUint64(req, uint64(k))
	}
	if _, err := cc.conn.Write(req); err != nil {
		return nil, fmt.Errorf("kvstore: write: %w", err)
	}
	var cnt [4]byte
	if _, err := io.ReadFull(cc.conn, cnt[:]); err != nil {
		return nil, fmt.Errorf("kvstore: read count: %w", err)
	}
	n := binary.LittleEndian.Uint32(cnt[:])
	if int(n) != len(keys) {
		return nil, fmt.Errorf("kvstore: response count %d, want %d", n, len(keys))
	}
	out := make([][]float64, n)
	var dimBuf [4]byte
	valBuf := make([]byte, dim*8)
	for i := 0; i < int(n); i++ {
		if _, err := io.ReadFull(cc.conn, dimBuf[:]); err != nil {
			return nil, fmt.Errorf("kvstore: read dim: %w", err)
		}
		d := binary.LittleEndian.Uint32(dimBuf[:])
		if d == missingDim {
			continue
		}
		if int(d) != dim {
			return nil, fmt.Errorf("kvstore: row dim %d, want %d", d, dim)
		}
		if _, err := io.ReadFull(cc.conn, valBuf); err != nil {
			return nil, fmt.Errorf("kvstore: read values: %w", err)
		}
		row := make([]float64, dim)
		for j := range row {
			row[j] = math.Float64frombits(binary.LittleEndian.Uint64(valBuf[j*8:]))
		}
		out[i] = row
	}
	return out, nil
}

// ResetRequests zeroes the request counter (between experiment phases).
func (c *Client) ResetRequests() { c.requests.Store(0) }

// Close closes all pooled connections.
func (c *Client) Close() error {
	c.closed.Store(true)
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, cc := range c.conns {
		cc.conn.Close()
	}
	c.conns = nil
	return nil
}
