package kvstore

import (
	"context"
	"sync"
	"testing"
	"time"
)

func startServer(t *testing.T, dim int, latency time.Duration, rows map[int64][]float64) (*Server, *Client) {
	t.Helper()
	srv := NewServer(dim, latency)
	if err := srv.Load(rows); err != nil {
		t.Fatalf("Load: %v", err)
	}
	addr, err := srv.Start()
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	cli, err := Dial(addr, dim)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { cli.Close() })
	return srv, cli
}

func TestLookupRoundTrip(t *testing.T) {
	_, cli := startServer(t, 3, 0, map[int64][]float64{
		1: {1, 2, 3},
		2: {4, 5, 6},
	})
	got, err := cli.LookupBatch([]int64{2, 1, 7})
	if err != nil {
		t.Fatalf("LookupBatch: %v", err)
	}
	if got[0][1] != 5 || got[1][2] != 3 {
		t.Errorf("values wrong: %v", got)
	}
	if got[2] != nil {
		t.Errorf("missing key should be nil, got %v", got[2])
	}
}

func TestBatchCountsAsOneRequest(t *testing.T) {
	srv, cli := startServer(t, 1, 0, map[int64][]float64{1: {1}, 2: {2}, 3: {3}})
	if _, err := cli.LookupBatch([]int64{1, 2, 3}); err != nil {
		t.Fatalf("LookupBatch: %v", err)
	}
	if srv.Requests() != 1 {
		t.Errorf("server requests = %d, want 1 for a pipelined batch", srv.Requests())
	}
	if cli.Requests() != 1 {
		t.Errorf("client requests = %d, want 1", cli.Requests())
	}
	// Three separate point lookups are three requests: the pattern the
	// unoptimized interpreted pipeline produces.
	for k := int64(1); k <= 3; k++ {
		if _, err := cli.LookupBatch([]int64{k}); err != nil {
			t.Fatalf("LookupBatch: %v", err)
		}
	}
	if srv.Requests() != 4 {
		t.Errorf("server requests = %d, want 4", srv.Requests())
	}
}

func TestLoadValidatesDim(t *testing.T) {
	srv := NewServer(2, 0)
	if err := srv.Load(map[int64][]float64{1: {1, 2, 3}}); err == nil {
		t.Error("want error for wrong-width row")
	}
}

func TestLatencyInjection(t *testing.T) {
	const lat = 20 * time.Millisecond
	_, cli := startServer(t, 1, lat, map[int64][]float64{1: {1}})
	start := time.Now()
	if _, err := cli.LookupBatch([]int64{1}); err != nil {
		t.Fatalf("LookupBatch: %v", err)
	}
	if el := time.Since(start); el < lat {
		t.Errorf("lookup returned in %v, want >= %v injected latency", el, lat)
	}
}

func TestConcurrentClients(t *testing.T) {
	rows := make(map[int64][]float64)
	for k := int64(0); k < 100; k++ {
		rows[k] = []float64{float64(k)}
	}
	_, cli := startServer(t, 1, 0, rows)
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := int64((w*50 + i) % 100)
				got, err := cli.LookupBatch([]int64{k})
				if err != nil {
					errs[w] = err
					return
				}
				if got[0][0] != float64(k) {
					errs[w] = errWrongValue
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatalf("concurrent lookup: %v", err)
		}
	}
}

var errWrongValue = &wrongValueError{}

type wrongValueError struct{}

func (*wrongValueError) Error() string { return "wrong value" }

func TestClientAfterClose(t *testing.T) {
	_, cli := startServer(t, 1, 0, map[int64][]float64{1: {1}})
	cli.Close()
	if _, err := cli.LookupBatch([]int64{1}); err == nil {
		t.Error("want error after Close")
	}
}

func TestResetRequests(t *testing.T) {
	_, cli := startServer(t, 1, 0, map[int64][]float64{1: {1}})
	if _, err := cli.LookupBatch([]int64{1}); err != nil {
		t.Fatal(err)
	}
	cli.ResetRequests()
	if cli.Requests() != 0 {
		t.Errorf("requests = %d after reset, want 0", cli.Requests())
	}
}

func TestEmptyBatch(t *testing.T) {
	_, cli := startServer(t, 1, 0, map[int64][]float64{1: {1}})
	got, err := cli.LookupBatch(nil)
	if err != nil {
		t.Fatalf("LookupBatch(nil): %v", err)
	}
	if got != nil {
		t.Errorf("empty batch should return nil, got %v", got)
	}
	if cli.Requests() != 0 {
		t.Error("empty batch should not count as a request")
	}
}

// TestLookupBatchCtxHonorsDeadline pins the fix for the historical hang:
// a lookup against a stalled server must return when its context expires
// instead of blocking on the read forever.
func TestLookupBatchCtxHonorsDeadline(t *testing.T) {
	srv, cli := startServer(t, 1, 0, map[int64][]float64{1: {1}})
	srv.SetLatencyFunc(func() time.Duration { return 500 * time.Millisecond })
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := cli.LookupBatchCtx(ctx, []int64{1})
	if err == nil {
		t.Fatal("lookup against a stalled server returned no error")
	}
	if el := time.Since(start); el > 300*time.Millisecond {
		t.Errorf("lookup blocked %v past a 20ms deadline", el)
	}
	// The poisoned connection is discarded; the next call dials fresh and
	// succeeds once the server answers promptly again.
	srv.SetLatencyFunc(nil)
	got, err := cli.LookupBatchCtx(context.Background(), []int64{1})
	if err != nil || got[0][0] != 1 {
		t.Errorf("post-timeout lookup = %v, %v; want [[1]]", got, err)
	}
}

// TestLookupBatchCtxCancellation: an already-canceled context fails fast
// without a network round trip.
func TestLookupBatchCtxCancellation(t *testing.T) {
	srv, cli := startServer(t, 1, 0, map[int64][]float64{1: {1}})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cli.LookupBatchCtx(ctx, []int64{1}); err == nil {
		t.Error("canceled context accepted")
	}
	if srv.Requests() != 0 {
		t.Errorf("canceled lookup reached the server (%d requests)", srv.Requests())
	}
}

// TestCheckSchema: the dim probe validates the server's table width up
// front, so a mis-bound table fails with a descriptive error at bind time
// rather than corrupt rows at predict time.
func TestCheckSchema(t *testing.T) {
	_, cli := startServer(t, 3, 0, map[int64][]float64{1: {1, 2, 3}})
	if err := cli.CheckSchema(3); err != nil {
		t.Errorf("CheckSchema(3): %v", err)
	}
	if err := cli.CheckSchema(4); err == nil {
		t.Error("CheckSchema(4) accepted a width mismatch")
	}
}
