package loadgen

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"willump/internal/serving"
)

func steadyEvents(n int, gap time.Duration) []Event {
	events := make([]Event, n)
	for i := range events {
		events[i] = Event{At: time.Duration(i) * gap, Key: int64(i)}
	}
	return events
}

// TestRunOpenLoopPin is the open-loop acceptance test: a server an order of
// magnitude slower than the offered rate must not reduce the number of
// request starts — every event is emitted on schedule, queues behind the
// slow workers, and its queueing delay is charged to measured latency
// (coordinated-omission correction).
func TestRunOpenLoopPin(t *testing.T) {
	const n = 100
	events := steadyEvents(n, time.Millisecond) // 1000 qps offered
	const svc = 20 * time.Millisecond
	target := TargetFunc(func(ctx context.Context, ev Event) error {
		time.Sleep(svc) // capacity 4 workers / 20ms = 200 qps, 5x oversubscribed
		return nil
	})
	res := Run(context.Background(), target, RunConfig{Events: events, Workers: 4})

	if res.Started != n {
		t.Fatalf("slow server reduced request starts: %d of %d", res.Started, n)
	}
	if res.Success != n {
		t.Fatalf("success %d, want %d (errors %d)", res.Success, n, res.Errors)
	}
	// A closed-loop driver would measure ~svc per request. Open-loop with a
	// 5x oversubscribed server, the tail must carry queueing delay many
	// times the service time.
	if p99 := res.Latency.Quantile(0.99); p99 < int64(5*svc) {
		t.Errorf("p99 %s carries no queueing delay; want >> %s (closed-loop symptom)",
			time.Duration(p99), svc)
	}
	// The backlog (~80 events at 200/s) must drain after the 100ms horizon.
	if res.Elapsed < 300*time.Millisecond {
		t.Errorf("run finished in %s; the backlog should have taken ~500ms", res.Elapsed)
	}
}

// TestRunDispatchOnSchedule pins the other half of open-loop: with an
// unloaded server, workers receive events close to their scheduled times.
func TestRunDispatchOnSchedule(t *testing.T) {
	const n = 50
	events := steadyEvents(n, 2*time.Millisecond)
	start := time.Now()
	var maxSkew atomic.Int64
	target := TargetFunc(func(ctx context.Context, ev Event) error {
		skew := time.Since(start.Add(ev.At))
		for {
			cur := maxSkew.Load()
			if int64(skew) <= cur || maxSkew.CompareAndSwap(cur, int64(skew)) {
				return nil
			}
		}
	})
	res := Run(context.Background(), target, RunConfig{Events: events, Workers: 8})
	if res.Success != n {
		t.Fatalf("success %d, want %d", res.Success, n)
	}
	if skew := time.Duration(maxSkew.Load()); skew > 100*time.Millisecond {
		t.Errorf("max dispatch skew %s; events are not being fed on schedule", skew)
	}
}

// TestRunClassification pins the error taxonomy: nil → success,
// ErrOverloaded (however wrapped) → overloaded, anything else → errors, and
// the counts always balance.
func TestRunClassification(t *testing.T) {
	events := steadyEvents(90, 100*time.Microsecond)
	target := TargetFunc(func(ctx context.Context, ev Event) error {
		switch ev.Key % 3 {
		case 1:
			return fmt.Errorf("admission: %w", serving.ErrOverloaded)
		case 2:
			return errors.New("boom")
		}
		return nil
	})
	res := Run(context.Background(), target, RunConfig{Events: events, Workers: 4})
	if res.Success != 30 || res.Overloaded != 30 || res.Errors != 30 {
		t.Fatalf("got success=%d overloaded=%d errors=%d, want 30/30/30",
			res.Success, res.Overloaded, res.Errors)
	}
	if res.Completed != res.Success+res.Overloaded+res.Errors {
		t.Fatalf("accounting imbalance: completed %d != %d+%d+%d",
			res.Completed, res.Success, res.Overloaded, res.Errors)
	}
	if res.Latency.Count() != res.Success {
		t.Fatalf("success histogram holds %d samples, want %d", res.Latency.Count(), res.Success)
	}
	if res.FailureLat.Count() != res.Overloaded+res.Errors {
		t.Fatalf("failure histogram holds %d samples, want %d",
			res.FailureLat.Count(), res.Overloaded+res.Errors)
	}
}

// TestRunHooksFireOnOwnClock pins that chaos hooks fire near their offsets
// even when every worker is wedged, and that hook errors reach the result.
func TestRunHooksFireOnOwnClock(t *testing.T) {
	events := steadyEvents(8, time.Millisecond)
	start := time.Now()
	var firedAt atomic.Int64
	target := TargetFunc(func(ctx context.Context, ev Event) error {
		time.Sleep(150 * time.Millisecond) // wedge all workers past the hook offset
		return nil
	})
	res := Run(context.Background(), target, RunConfig{
		Events:  events,
		Workers: 2,
		Hooks: []Hook{
			{At: 50 * time.Millisecond, Name: "mark", Fn: func(context.Context) error {
				firedAt.Store(int64(time.Since(start)))
				return nil
			}},
			{At: 60 * time.Millisecond, Name: "fail", Fn: func(context.Context) error {
				return errors.New("hook exploded")
			}},
		},
	})
	at := time.Duration(firedAt.Load())
	if at == 0 || at > 140*time.Millisecond {
		t.Errorf("hook fired at %s, want ~50ms despite wedged workers", at)
	}
	if len(res.HookErrs) != 1 || res.HookErrs[0] != "fail: hook exploded" {
		t.Errorf("hook errors %v, want the failing hook recorded", res.HookErrs)
	}
}

// TestRunContextCancel pins that cancelling the run context stops emission
// and drains cleanly rather than hanging.
func TestRunContextCancel(t *testing.T) {
	events := steadyEvents(10000, time.Millisecond) // 10s schedule
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	done := make(chan *Result, 1)
	go func() {
		done <- Run(ctx, TargetFunc(func(context.Context, Event) error { return nil }),
			RunConfig{Events: events, Workers: 4})
	}()
	select {
	case res := <-done:
		if res.Started >= 10000 {
			t.Errorf("cancelled run started all %d events", res.Started)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled run did not finish")
	}
}

// TestBudgetCheck pins budget semantics: negative rate = unchecked, zero =
// strict, latency bounds only when set.
func TestBudgetCheck(t *testing.T) {
	res := &Result{
		Started: 100, Completed: 100, Success: 90, Overloaded: 8, Errors: 2,
		Elapsed: time.Second, Latency: NewHistogram(), FailureLat: NewHistogram(),
	}
	res.Latency.Record(int64(10 * time.Millisecond))

	strict := BuildReport("s", res, time.Second, Budget{MaxErrorRate: 0, MaxOverloadRate: 0})
	if len(strict.Violations) != 2 {
		t.Errorf("strict budget: %d violations, want 2 (errors and overload): %v",
			len(strict.Violations), strict.Violations)
	}
	loose := BuildReport("l", res, time.Second, Budget{MaxErrorRate: Unchecked, MaxOverloadRate: Unchecked})
	if !loose.Passed() {
		t.Errorf("unchecked budget violated: %v", loose.Violations)
	}
	lat := BuildReport("lat", res, time.Second, Budget{
		MaxErrorRate: Unchecked, MaxOverloadRate: Unchecked, MaxP99: time.Millisecond,
	})
	if lat.Passed() {
		t.Error("p99 budget of 1ms not violated by 10ms latency")
	}
}
