package loadgen

import (
	"fmt"
	"io"
	"time"

	"willump/internal/benchfmt"
)

// Budget is the SLO a scenario must meet. Rate fields are fractions of
// started requests; a negative rate means "unchecked", zero means "none
// allowed" (strict). Latency fields are unchecked when zero.
type Budget struct {
	MaxErrorRate    float64       `json:"max_error_rate"`
	MaxOverloadRate float64       `json:"max_overload_rate"`
	MaxP99          time.Duration `json:"max_p99,omitempty"`
	MaxP999         time.Duration `json:"max_p999,omitempty"`
	// MinGoodput, when > 0, is the minimum count of successful responses
	// the run must deliver — degraded answers count, they are successes
	// (the brownout scenario's goodput floor).
	MinGoodput int64 `json:"min_goodput,omitempty"`
	// MaxHighCritHardErrors caps hard failures (errors other than 429
	// sheds) of criticality-high requests; negative = unchecked. Only
	// checked when the scenario drove criticality-classified traffic, so
	// legacy budgets (zero value) are unaffected.
	MaxHighCritHardErrors int64 `json:"max_high_crit_hard_errors,omitempty"`
	// MinCacheHitRate, when > 0, is the minimum end-of-run feature-cache
	// hit rate on the primary model's active version — the drift
	// scenario's floor, sitting above what a stale plan can deliver after
	// the skew rotation, so it passes only when adaptation re-planned and
	// promoted.
	MinCacheHitRate float64 `json:"min_cache_hit_rate,omitempty"`
}

// Unchecked is the rate value meaning "no limit" (overload scenarios
// deliberately shed, so their shed rate is unbounded).
const Unchecked = -1

// Report is the per-scenario SLO report: the runner's raw Result plus
// env-level enrichment (degraded lookups) and derived rates/quantiles.
type Report struct {
	Scenario   string        `json:"scenario"`
	Requests   int64         `json:"requests"` // started on schedule
	Completed  int64         `json:"completed"`
	Success    int64         `json:"success"`
	Overloaded int64         `json:"overloaded"`
	Errors     int64         `json:"errors"`
	Degraded   int64         `json:"degraded"` // answered via store fallback
	Elapsed    time.Duration `json:"elapsed_ns"`

	// DegradedResponses counts successful answers the serving tier marked
	// brownout-degraded (small-only / budget / cache) — distinct from
	// Degraded, which counts store-fallback feature lookups.
	DegradedResponses int64 `json:"degraded_responses,omitempty"`
	// HighCritStarted / HighCritHardErrors count criticality-high requests
	// issued and their hard failures (errors other than 429 sheds).
	HighCritStarted    int64 `json:"high_crit_started,omitempty"`
	HighCritHardErrors int64 `json:"high_crit_hard_errors,omitempty"`

	// CacheHitRate is the primary model's active-version feature-cache
	// hit rate at run end (post-promotion counters when adaptation
	// promoted a re-fit plan mid-run). AdaptPromotions / AdaptRollbacks
	// count the adaptation controller's canary resolutions across the run.
	CacheHitRate    float64 `json:"cache_hit_rate,omitempty"`
	AdaptPromotions int64   `json:"adapt_promotions,omitempty"`
	AdaptRollbacks  int64   `json:"adapt_rollbacks,omitempty"`

	OfferedQPS  float64 `json:"offered_qps"`
	AchievedQPS float64 `json:"achieved_qps"`

	MeanNs int64 `json:"mean_ns"` // successful requests, scheduled-start latency
	P50Ns  int64 `json:"p50_ns"`
	P99Ns  int64 `json:"p99_ns"`
	P999Ns int64 `json:"p999_ns"`
	MaxNs  int64 `json:"max_ns"`

	HookErrs   []string `json:"hook_errs,omitempty"`
	Violations []string `json:"violations,omitempty"`
}

// BuildReport derives a Report from a runner Result and checks it against
// the budget. horizon is the scheduled run length (offered QPS denominator);
// the achieved rate uses the actual elapsed wall time.
func BuildReport(scenario string, res *Result, horizon time.Duration, budget Budget) Report {
	r := Report{
		Scenario:   scenario,
		Requests:   res.Started,
		Completed:  res.Completed,
		Success:    res.Success,
		Overloaded: res.Overloaded,
		Errors:     res.Errors,
		Elapsed:    res.Elapsed,
		MeanNs:     int64(res.Latency.Mean()),
		P50Ns:      res.Latency.Quantile(0.50),
		P99Ns:      res.Latency.Quantile(0.99),
		P999Ns:     res.Latency.Quantile(0.999),
		MaxNs:      res.Latency.Max(),
		HookErrs:   res.HookErrs,
	}
	if horizon > 0 {
		r.OfferedQPS = float64(res.Started) / horizon.Seconds()
	}
	if res.Elapsed > 0 {
		r.AchievedQPS = float64(res.Success) / res.Elapsed.Seconds()
	}
	r.Violations = r.check(budget)
	return r
}

func (r Report) check(b Budget) []string {
	var v []string
	if r.Requests > 0 {
		errRate := float64(r.Errors) / float64(r.Requests)
		if b.MaxErrorRate >= 0 && errRate > b.MaxErrorRate {
			v = append(v, fmt.Sprintf("error rate %.4f exceeds budget %.4f (%d/%d)",
				errRate, b.MaxErrorRate, r.Errors, r.Requests))
		}
		ovRate := float64(r.Overloaded) / float64(r.Requests)
		if b.MaxOverloadRate >= 0 && ovRate > b.MaxOverloadRate {
			v = append(v, fmt.Sprintf("overload rate %.4f exceeds budget %.4f (%d/%d)",
				ovRate, b.MaxOverloadRate, r.Overloaded, r.Requests))
		}
	}
	if b.MaxP99 > 0 && r.P99Ns > b.MaxP99.Nanoseconds() {
		v = append(v, fmt.Sprintf("p99 %s exceeds budget %s",
			time.Duration(r.P99Ns), b.MaxP99))
	}
	if b.MaxP999 > 0 && r.P999Ns > b.MaxP999.Nanoseconds() {
		v = append(v, fmt.Sprintf("p999 %s exceeds budget %s",
			time.Duration(r.P999Ns), b.MaxP999))
	}
	if b.MinGoodput > 0 && r.Success < b.MinGoodput {
		v = append(v, fmt.Sprintf("goodput %d below floor %d (degraded answers count as successes)",
			r.Success, b.MinGoodput))
	}
	if b.MinCacheHitRate > 0 && r.CacheHitRate < b.MinCacheHitRate {
		v = append(v, fmt.Sprintf("cache hit rate %.3f below floor %.3f (adaptation did not recover the plan)",
			r.CacheHitRate, b.MinCacheHitRate))
	}
	if r.HighCritStarted > 0 && b.MaxHighCritHardErrors >= 0 && r.HighCritHardErrors > b.MaxHighCritHardErrors {
		v = append(v, fmt.Sprintf("criticality-high hard errors %d exceed budget %d (%d high-crit requests)",
			r.HighCritHardErrors, b.MaxHighCritHardErrors, r.HighCritStarted))
	}
	for _, he := range r.HookErrs {
		v = append(v, "hook failed: "+he)
	}
	return v
}

// Passed reports whether the run met its budget.
func (r Report) Passed() bool { return len(r.Violations) == 0 }

// Row converts the report into a BENCH trajectory row. The workload name is
// prefixed "loadgen/" so scenario rows sort apart from the perf workloads
// sharing the file.
func (r Report) Row() benchfmt.Row {
	return benchfmt.Row{
		Workload:    "loadgen/" + r.Scenario,
		NsPerOp:     float64(r.MeanNs),
		P50Ns:       r.P50Ns,
		P99Ns:       r.P99Ns,
		P999Ns:      r.P999Ns,
		Requests:    r.Requests,
		Errors:      r.Errors,
		Overloaded:  r.Overloaded,
		Degraded:    r.Degraded,
		OfferedQPS:  r.OfferedQPS,
		AchievedQPS: r.AchievedQPS,
	}
}

// Print writes a human-readable scenario summary.
func (r Report) Print(w io.Writer) {
	status := "PASS"
	if !r.Passed() {
		status = "FAIL"
	}
	fmt.Fprintf(w, "%-24s %s  %6.0f qps offered, %6.0f achieved  %d req (%d ok, %d shed, %d err, %d degraded)\n",
		r.Scenario, status, r.OfferedQPS, r.AchievedQPS, r.Requests, r.Success, r.Overloaded, r.Errors, r.Degraded)
	fmt.Fprintf(w, "%-24s       p50 %-10s p99 %-10s p999 %-10s max %s\n", "",
		time.Duration(r.P50Ns), time.Duration(r.P99Ns), time.Duration(r.P999Ns), time.Duration(r.MaxNs))
	if r.DegradedResponses > 0 || r.HighCritStarted > 0 {
		fmt.Fprintf(w, "%-24s       brownout: %d degraded responses, %d high-crit (%d hard errors)\n", "",
			r.DegradedResponses, r.HighCritStarted, r.HighCritHardErrors)
	}
	if r.CacheHitRate > 0 || r.AdaptPromotions > 0 || r.AdaptRollbacks > 0 {
		fmt.Fprintf(w, "%-24s       adaptation: cache hit rate %.3f, %d promotions, %d rollbacks\n", "",
			r.CacheHitRate, r.AdaptPromotions, r.AdaptRollbacks)
	}
	for _, v := range r.Violations {
		fmt.Fprintf(w, "%-24s       VIOLATION: %s\n", "", v)
	}
}
