package loadgen

import (
	"math"
	"testing"
	"time"
)

func TestSteadyArrivalsExactSpacing(t *testing.T) {
	sched := SteadyArrivals{QPS: 1000}.Schedule(100 * time.Millisecond)
	if len(sched) != 100 {
		t.Fatalf("got %d arrivals, want 100", len(sched))
	}
	for i, at := range sched {
		if want := time.Duration(i) * time.Millisecond; at != want {
			t.Fatalf("arrival %d at %s, want %s", i, at, want)
		}
	}
}

func TestPoissonArrivalsRateAndDeterminism(t *testing.T) {
	const qps = 500.0
	horizon := 20 * time.Second
	a := PoissonArrivals{QPS: qps, Seed: 7}
	s1 := a.Schedule(horizon)
	s2 := a.Schedule(horizon)
	if len(s1) != len(s2) {
		t.Fatalf("same seed produced %d vs %d arrivals", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("same seed diverged at arrival %d: %s vs %s", i, s1[i], s2[i])
		}
	}
	// Count within 5 sigma of the Poisson mean.
	mean := qps * horizon.Seconds()
	if diff := math.Abs(float64(len(s1)) - mean); diff > 5*math.Sqrt(mean) {
		t.Errorf("got %d arrivals, want ~%.0f", len(s1), mean)
	}
	// Different seed, different schedule.
	s3 := PoissonArrivals{QPS: qps, Seed: 8}.Schedule(horizon)
	same := len(s3) == len(s1)
	for i := 0; same && i < len(s1); i++ {
		same = s1[i] == s3[i]
	}
	if same {
		t.Error("different seeds produced identical schedules")
	}
}

// TestFlashCrowdConcentratesLoad checks that the thinned non-homogeneous
// process actually ramps: the peak-window arrival rate is several times the
// baseline-window rate.
func TestFlashCrowdConcentratesLoad(t *testing.T) {
	horizon := 50 * time.Second
	c := FlashCrowd(100, 800, horizon)
	c.Seed = 3
	sched := c.Schedule(horizon)
	fifth := horizon / 5
	inWindow := func(lo, hi time.Duration) int {
		n := 0
		for _, at := range sched {
			if at >= lo && at < hi {
				n++
			}
		}
		return n
	}
	base := inWindow(0, fifth)                 // pre-ramp fifth at 100 qps
	peak := inWindow(2*fifth+fifth/4, 3*fifth) // held peak at 800 qps
	baseRate := float64(base) / fifth.Seconds()
	peakRate := float64(peak) / (3*fifth - (2*fifth + fifth/4)).Seconds()
	if peakRate < 4*baseRate {
		t.Errorf("peak rate %.0f qps not >= 4x base rate %.0f qps", peakRate, baseRate)
	}
	if baseRate < 50 || baseRate > 200 {
		t.Errorf("base rate %.0f qps, want ~100", baseRate)
	}
}

func TestCurveRateInterpolation(t *testing.T) {
	c := CurveArrivals{Points: []RatePoint{
		{At: 0, QPS: 100},
		{At: 10 * time.Second, QPS: 300},
	}}
	if got := c.rateAt(5 * time.Second); math.Abs(got-200) > 1e-9 {
		t.Errorf("rate at midpoint = %.1f, want 200", got)
	}
	if got := c.rateAt(20 * time.Second); got != 300 {
		t.Errorf("rate past last point = %.1f, want 300", got)
	}
}

func TestReplayArrivalsSortsAndClips(t *testing.T) {
	r := ReplayArrivals{Offsets: []time.Duration{
		3 * time.Second, time.Second, 9 * time.Second, -time.Second,
	}}
	got := r.Schedule(5 * time.Second)
	want := []time.Duration{time.Second, 3 * time.Second}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestZipfKeysSkewAndDeterminism(t *testing.T) {
	k1 := NewZipfKeys(1<<20, 1.1, 5)
	k2 := NewZipfKeys(1<<20, 1.1, 5)
	counts := make(map[int64]int)
	const n = 100000
	for i := 0; i < n; i++ {
		a, b := k1.Next(), k2.Next()
		if a != b {
			t.Fatalf("same seed diverged at draw %d: %d vs %d", i, a, b)
		}
		counts[a]++
	}
	// Zipfian skew: the hottest key dominates.
	if counts[0] < n/20 {
		t.Errorf("hottest key drew %d of %d, want heavy skew", counts[0], n)
	}
}

func TestHotsetKeysFraction(t *testing.T) {
	k := NewHotsetKeys(1_000_000, 100, 0.9, 11)
	hot := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if k.Next() < 100 {
			hot++
		}
	}
	frac := float64(hot) / n
	if frac < 0.85 || frac > 0.95 {
		t.Errorf("hot fraction %.3f, want ~0.9", frac)
	}
}
