package loadgen

import (
	"fmt"
	"math/rand"
)

// Keys produces the per-request lookup key stream. Like Arrivals, a Keys
// implementation is fully determined by its parameters and seed, so a
// (seed, spec) pair replays bit-identically.
type Keys interface {
	// Next returns the key for the i-th request of the run.
	Next() int64
}

// ZipfKeys draws keys from a Zipfian distribution over [0, N): the
// power-law popularity skew of real feature-store traffic, where a small
// set of hot entities dominates lookups. Exponent S > 1 controls the skew
// (1.07 ≈ YCSB default).
type ZipfKeys struct {
	zipf *rand.Zipf
}

// NewZipfKeys builds a Zipfian key stream over [0, n) with exponent s
// (clamped to > 1) from the given seed.
func NewZipfKeys(n int64, s float64, seed int64) *ZipfKeys {
	if s <= 1 {
		s = 1.0001
	}
	if n < 1 {
		n = 1
	}
	rng := rand.New(rand.NewSource(seed))
	return &ZipfKeys{zipf: rand.NewZipf(rng, s, 1, uint64(n-1))}
}

// Next implements Keys.
func (z *ZipfKeys) Next() int64 { return int64(z.zipf.Uint64()) }

// HotsetKeys sends HotFrac of requests to a small hot set of HotKeys keys
// and the remainder uniformly over the full [0, N) space — the classic
// cache-friendliness knob for testing reuse/caching tiers.
type HotsetKeys struct {
	n       int64
	hotKeys int64
	hotFrac float64
	rng     *rand.Rand
}

// NewHotsetKeys builds a hotset stream: hotFrac of draws land in
// [0, hotKeys), the rest uniform over [0, n).
func NewHotsetKeys(n, hotKeys int64, hotFrac float64, seed int64) *HotsetKeys {
	if n < 1 {
		n = 1
	}
	if hotKeys < 1 {
		hotKeys = 1
	}
	if hotKeys > n {
		hotKeys = n
	}
	return &HotsetKeys{n: n, hotKeys: hotKeys, hotFrac: hotFrac, rng: rand.New(rand.NewSource(seed))}
}

// Next implements Keys.
func (h *HotsetKeys) Next() int64 {
	if h.rng.Float64() < h.hotFrac {
		return h.rng.Int63n(h.hotKeys)
	}
	return h.rng.Int63n(h.n)
}

// UniformKeys draws keys uniformly over [0, N) — the no-skew baseline.
type UniformKeys struct {
	n   int64
	rng *rand.Rand
}

// NewUniformKeys builds a uniform key stream over [0, n).
func NewUniformKeys(n int64, seed int64) *UniformKeys {
	if n < 1 {
		n = 1
	}
	return &UniformKeys{n: n, rng: rand.New(rand.NewSource(seed))}
}

// Next implements Keys.
func (u *UniformKeys) Next() int64 { return u.rng.Int63n(u.n) }

// ReplayKeys replays a recorded key sequence, cycling if the run is longer
// than the recording.
type ReplayKeys struct {
	keys []int64
	i    int
}

// NewReplayKeys wraps a recorded key slice.
func NewReplayKeys(keys []int64) *ReplayKeys { return &ReplayKeys{keys: keys} }

// Next implements Keys.
func (r *ReplayKeys) Next() int64 {
	if len(r.keys) == 0 {
		return 0
	}
	k := r.keys[r.i%len(r.keys)]
	r.i++
	return k
}

// keysFromSpec builds a Keys stream from a scenario spec. The key seed is
// offset from the arrival seed so the two streams are independent.
func keysFromSpec(s ScenarioSpec) (Keys, error) {
	n := s.KeySpace
	if n <= 0 {
		n = 1 << 20
	}
	seed := s.Seed + 0x9e3779b9
	switch s.Keys {
	case "zipf", "":
		skew := s.ZipfS
		if skew <= 0 {
			skew = 1.07
		}
		return NewZipfKeys(n, skew, seed), nil
	case "hotset":
		hot := s.HotKeys
		if hot <= 0 {
			hot = n / 100
		}
		frac := s.HotFrac
		if frac <= 0 {
			frac = 0.9
		}
		return NewHotsetKeys(n, hot, frac, seed), nil
	case "uniform":
		return NewUniformKeys(n, seed), nil
	default:
		return nil, fmt.Errorf("loadgen: unknown key distribution %q", s.Keys)
	}
}
