// Package loadgen is Willump's trace-driven load-generation subsystem: it
// drives the real HTTP serving tier with open-loop arrivals over realistic
// key-popularity distributions, and measures what closed-loop
// micro-benchmarks structurally cannot — queueing delay, tail latency, and
// error budgets under overload, flash crowds, store failures, and
// mid-flight redeploys.
//
// The pieces compose:
//
//   - Arrivals generate a request schedule independent of response latency
//     (Poisson, deterministic steady-rate, and piecewise-linear QPS curves
//     for flash crowds and diurnal replays).
//   - Keys generate the per-request lookup key (Zipfian, hotset, uniform).
//   - A Stream zips the two into scheduled events, and the on-disk trace
//     format records any stream for bit-identical replay.
//   - Run executes a Scenario: a dispatcher emits events at their scheduled
//     times into a queue sized to hold the entire schedule (so a slow
//     server can never throttle offered load), a fixed-concurrency worker
//     pool issues the requests, and latency is measured from each event's
//     scheduled start — the coordinated-omission-corrected, open-loop
//     measure that charges queueing delay to the server.
//   - Chaos hooks fire at scheduled offsets inside a run (store tail
//     injection, connection drops, zero-downtime hot swap, server drain),
//     and each scenario declares an error Budget the report is checked
//     against.
//   - Reports carry p50/p99/p999 (HDR-style histogram), shed/degraded/error
//     counts, and convert into the shared BENCH_<rev>.json trajectory rows.
package loadgen
