//go:build !race

package loadgen

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = false
