package loadgen

import (
	"context"
	"testing"
	"time"
)

// driftSpec is the shared drift script: steady load whose key skew
// inverts a quarter of the way in, invalidating the trained cache plan.
func driftSpec(name string) ScenarioSpec {
	return ScenarioSpec{
		Name: name, Arrivals: "steady", QPS: 400, Duration: 6 * time.Second,
		Keys: "uniform", Seed: 12, Drift: true,
		Budget: Budget{MaxErrorRate: 0.01, MaxOverloadRate: 0.05},
		Hooks: func(e *Env, h time.Duration) []Hook {
			return []Hook{{At: h / 4, Name: "rotate-skew", Fn: func(context.Context) error {
				e.RotateSkew()
				return nil
			}}}
		},
	}
}

// TestDriftAdaptationBeatsStalePlan is the drift acceptance test: under
// the same skew-rotation script, an adaptation-enabled env must detect
// the key-reuse collapse, re-plan the cache budget from live traffic,
// canary and promote the re-fit plan — ending the run with a cache hit
// rate strictly above the no-adaptation baseline (whose trained plan
// stays stale) and goodput no worse.
func TestDriftAdaptationBeatsStalePlan(t *testing.T) {
	adapted, err := NewLocalEnv(EnvConfig{
		Seed: 12, StoreLatency: time.Millisecond,
		FeatureCacheBudget: 64, Adapt: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer adapted.Close()
	spec := driftSpec("drift-adapt")
	spec.Budget.MinCacheHitRate = 0.4
	rep, err := RunScenario(context.Background(), adapted, spec)
	if err != nil {
		t.Fatal(err)
	}

	stale, err := NewLocalEnv(EnvConfig{
		Seed: 12, StoreLatency: time.Millisecond,
		FeatureCacheBudget: 64, // same trained plan, no adaptation
	})
	if err != nil {
		t.Fatal(err)
	}
	defer stale.Close()
	base, err := RunScenario(context.Background(), stale, driftSpec("drift-baseline"))
	if err != nil {
		t.Fatal(err)
	}

	if rep.AdaptPromotions < 1 {
		t.Fatalf("adaptation never promoted a re-fit plan: promotions=%d rollbacks=%d hit rate %.3f",
			rep.AdaptPromotions, rep.AdaptRollbacks, rep.CacheHitRate)
	}
	if base.CacheHitRate >= 0.4 {
		t.Errorf("stale plan hit rate %.3f did not collapse after rotation; the drift script is not drifting", base.CacheHitRate)
	}
	if rep.CacheHitRate <= base.CacheHitRate {
		t.Errorf("adapted hit rate %.3f not above stale baseline %.3f", rep.CacheHitRate, base.CacheHitRate)
	}
	if rep.Success < base.Success {
		t.Errorf("adapted goodput %d below stale baseline %d", rep.Success, base.Success)
	}
	if rep.Errors != 0 {
		t.Errorf("%d hard errors during adaptation; canary swaps must be zero-downtime", rep.Errors)
	}
	if !rep.Passed() {
		t.Errorf("drift budget violated: %v", rep.Violations)
	}
	if rep.Completed != rep.Success+rep.Overloaded+rep.Errors {
		t.Fatalf("accounting imbalance: %d completed vs %d+%d+%d",
			rep.Completed, rep.Success, rep.Overloaded, rep.Errors)
	}
}
