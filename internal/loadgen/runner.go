package loadgen

import (
	"context"
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"willump/internal/serving"
)

// Target issues one request on behalf of the runner. Implementations
// classify nothing — the runner maps the returned error (nil, ErrOverloaded,
// other) into the report.
type Target interface {
	Do(ctx context.Context, ev Event) error
}

// TargetFunc adapts a function to the Target interface.
type TargetFunc func(ctx context.Context, ev Event) error

// Do implements Target.
func (f TargetFunc) Do(ctx context.Context, ev Event) error { return f(ctx, ev) }

// Hook is a chaos action fired once at a scheduled offset inside a run —
// inject store tail latency, hot-swap the deployed model, drain the server.
type Hook struct {
	At   time.Duration
	Name string
	Fn   func(ctx context.Context) error
}

// RunConfig parameterizes one open-loop run.
type RunConfig struct {
	Events  []Event       // the full schedule, built before the run starts
	Workers int           // fixed worker-pool size (default 32)
	Timeout time.Duration // per-request deadline (default 5s)
	Hooks   []Hook        // chaos actions, fired at their offsets
}

// Result is the raw outcome of a run, before env-level enrichment.
type Result struct {
	Started    int64 // events emitted on schedule (the open-loop invariant)
	Completed  int64 // requests that finished (any outcome)
	Success    int64
	Overloaded int64 // shed with ErrOverloaded (HTTP 429)
	Errors     int64 // any other failure, including drain-window refusals
	Elapsed    time.Duration
	HookErrs   []string

	// Latency is measured from each event's *scheduled* start, so time a
	// request spends queued behind a slow server is charged to the server
	// (coordinated-omission corrected). Success and failure are kept in
	// separate histograms: shed requests return in microseconds and would
	// otherwise mask a collapsing success tail.
	Latency    *Histogram // successful requests only
	FailureLat *Histogram // overloaded + errored requests
}

type timedEvent struct {
	ev    Event
	sched time.Time
}

// Run executes the schedule against target. The dispatcher emits every
// event at start+ev.At into a queue buffered to hold the entire schedule,
// so emission can never block on slow workers: offered load is a property
// of the schedule alone. A fixed pool of cfg.Workers goroutines drains the
// queue and issues requests; late responses delay *completion*, never
// *arrival*.
//
// ctx cancels the run early (dispatcher stops emitting, workers drain).
func Run(ctx context.Context, target Target, cfg RunConfig) *Result {
	workers := cfg.Workers
	if workers <= 0 {
		workers = 32
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	res := &Result{
		Latency:    NewHistogram(),
		FailureLat: NewHistogram(),
	}

	queue := make(chan timedEvent, len(cfg.Events))
	start := time.Now()

	// Chaos hooks fire on their own clock, sorted by offset, so a hook is
	// never delayed by dispatch or worker backlog.
	hooks := append([]Hook(nil), cfg.Hooks...)
	sort.SliceStable(hooks, func(i, j int) bool { return hooks[i].At < hooks[j].At })
	var hookMu sync.Mutex
	var hookWG sync.WaitGroup
	hookWG.Add(1)
	go func() {
		defer hookWG.Done()
		for _, h := range hooks {
			select {
			case <-time.After(time.Until(start.Add(h.At))):
			case <-ctx.Done():
				return
			}
			if err := h.Fn(ctx); err != nil {
				hookMu.Lock()
				res.HookErrs = append(res.HookErrs, h.Name+": "+err.Error())
				hookMu.Unlock()
			}
		}
	}()

	// Dispatcher: one goroutine walking the schedule. The send never blocks
	// (buffer == len(events)), so Started counts exactly the on-schedule
	// emissions.
	var dispatchWG sync.WaitGroup
	dispatchWG.Add(1)
	go func() {
		defer dispatchWG.Done()
		defer close(queue)
		for _, ev := range cfg.Events {
			sched := start.Add(ev.At)
			select {
			case <-time.After(time.Until(sched)):
			case <-ctx.Done():
				return
			}
			queue <- timedEvent{ev: ev, sched: sched}
			atomic.AddInt64(&res.Started, 1)
		}
	}()

	var workerWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		workerWG.Add(1)
		go func() {
			defer workerWG.Done()
			for te := range queue {
				rctx, cancel := context.WithTimeout(ctx, timeout)
				err := target.Do(rctx, te.ev)
				cancel()
				lat := time.Since(te.sched).Nanoseconds()
				atomic.AddInt64(&res.Completed, 1)
				switch {
				case err == nil:
					atomic.AddInt64(&res.Success, 1)
					res.Latency.Record(lat)
				case errors.Is(err, serving.ErrOverloaded):
					atomic.AddInt64(&res.Overloaded, 1)
					res.FailureLat.Record(lat)
				default:
					atomic.AddInt64(&res.Errors, 1)
					res.FailureLat.Record(lat)
				}
			}
		}()
	}

	dispatchWG.Wait()
	workerWG.Wait()
	hookWG.Wait()
	res.Elapsed = time.Since(start)
	return res
}
