package loadgen

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"
)

// Event is one scheduled request: start At (offset from run start) with
// lookup key Key. A []Event is the fully materialized open-loop schedule —
// building it up front is what guarantees the offered load cannot depend on
// response latency.
type Event struct {
	At  time.Duration `json:"at_ns"`
	Key int64         `json:"key"`
}

// BuildEvents zips an arrival process and a key stream into a schedule.
func BuildEvents(a Arrivals, k Keys, horizon time.Duration) []Event {
	offsets := a.Schedule(horizon)
	events := make([]Event, len(offsets))
	for i, t := range offsets {
		events[i] = Event{At: t, Key: k.Next()}
	}
	return events
}

// Trace file format: a JSON header line followed by one "at_ns key" pair
// per line. Line-oriented and human-greppable so recorded production
// traffic can be inspected, truncated, or spliced with standard tools.
//
//	{"willump_trace":1,"events":N}
//	1047 83
//	2210 5
//	...
type traceHeader struct {
	Magic  int `json:"willump_trace"`
	Events int `json:"events"`
}

const traceVersion = 1

// WriteTrace records a schedule to w in the trace file format.
func WriteTrace(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	hdr, err := json.Marshal(traceHeader{Magic: traceVersion, Events: len(events)})
	if err != nil {
		return err
	}
	bw.Write(hdr)
	bw.WriteByte('\n')
	for _, e := range events {
		fmt.Fprintf(bw, "%d %d\n", int64(e.At), e.Key)
	}
	return bw.Flush()
}

// ReadTrace parses a trace file back into a schedule. Replaying the result
// with ReplayArrivals/ReplayKeys reproduces the recorded run exactly.
func ReadTrace(r io.Reader) ([]Event, error) {
	br := bufio.NewReader(r)
	line, err := br.ReadBytes('\n')
	if err != nil {
		return nil, fmt.Errorf("loadgen: trace header: %w", err)
	}
	var hdr traceHeader
	if err := json.Unmarshal(line, &hdr); err != nil || hdr.Magic != traceVersion {
		return nil, fmt.Errorf("loadgen: not a willump trace file (version %d)", traceVersion)
	}
	events := make([]Event, 0, hdr.Events)
	for {
		var at, key int64
		_, err := fmt.Fscanf(br, "%d %d\n", &at, &key)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("loadgen: trace event %d: %w", len(events), err)
		}
		events = append(events, Event{At: time.Duration(at), Key: key})
	}
	if hdr.Events > 0 && len(events) != hdr.Events {
		return nil, fmt.Errorf("loadgen: trace truncated: header says %d events, read %d", hdr.Events, len(events))
	}
	return events, nil
}

// SaveTrace writes a schedule to path.
func SaveTrace(path string, events []Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteTrace(f, events); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadTrace reads a schedule from path.
func LoadTrace(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTrace(f)
}
