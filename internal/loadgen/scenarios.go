package loadgen

import (
	"context"
	"fmt"
	"time"
)

// ScenarioSpec declares one load scenario: an arrival process, a key
// distribution, chaos hooks, and the SLO budget the resulting report is
// checked against.
type ScenarioSpec struct {
	Name     string
	Arrivals string // steady | poisson | flash-crowd | diurnal
	QPS      float64
	PeakQPS  float64 // flash-crowd/diurnal peak (0: derived from QPS)
	Duration time.Duration

	Keys     string // zipf | hotset | uniform
	KeySpace int64
	ZipfS    float64
	HotKeys  int64
	HotFrac  float64

	Seed    int64
	Workers int
	Timeout time.Duration

	// TracePath, when set, replays a recorded trace file instead of
	// generating the schedule (Arrivals/Keys/QPS are ignored).
	TracePath string

	Budget Budget

	// Hooks builds the scenario's chaos actions against the live env;
	// offsets are relative to the scheduled horizon.
	Hooks func(e *Env, horizon time.Duration) []Hook

	// MultiModel routes requests across both of the env's deployed models
	// instead of the primary one.
	MultiModel bool

	// Criticality classifies every request by key (~10% high, ~30% low)
	// and carries the class on the wire, so brownout scenarios can assert
	// that high-priority traffic degrades and sheds last.
	Criticality bool

	// Drift routes requests through the env's drift target: the key skew
	// the cache plan was trained for until the RotateSkew hook fires,
	// inverted after — the scripted distribution shift adaptation
	// scenarios assert recovery from.
	Drift bool

	// EnvOverride runs the scenario in its own dedicated environment (the
	// overload scenario needs a deliberately undersized queue); nil shares
	// the suite's env.
	EnvOverride *EnvConfig
}

// Events materializes the scenario's schedule.
func (s ScenarioSpec) Events() ([]Event, error) {
	if s.TracePath != "" {
		return LoadTrace(s.TracePath)
	}
	a, err := arrivalsFromSpec(s)
	if err != nil {
		return nil, err
	}
	k, err := keysFromSpec(s)
	if err != nil {
		return nil, err
	}
	return BuildEvents(a, k, s.Duration), nil
}

// RunScenario executes one scenario against env and returns its report,
// enriched with the env's degraded-lookup delta across the run.
func RunScenario(ctx context.Context, e *Env, s ScenarioSpec) (Report, error) {
	events, err := s.Events()
	if err != nil {
		return Report{}, fmt.Errorf("loadgen: scenario %s: %w", s.Name, err)
	}
	horizon := s.Duration
	if s.TracePath != "" && len(events) > 0 {
		horizon = events[len(events)-1].At + time.Millisecond
	}
	var hooks []Hook
	if s.Hooks != nil {
		hooks = s.Hooks(e, horizon)
	}
	target := e.Target()
	if s.MultiModel {
		target = e.MixTarget()
	}
	if s.Criticality {
		target = e.CritTarget()
	}
	if s.Drift {
		target = e.DriftTarget()
	}
	deg0 := e.Degraded()
	dr0, hs0, he0 := e.CritCounts()
	res := Run(ctx, target, RunConfig{
		Events:  events,
		Workers: s.Workers,
		Timeout: s.Timeout,
		Hooks:   hooks,
	})
	rep := BuildReport(s.Name, res, horizon, s.Budget)
	rep.Degraded = e.Degraded() - deg0
	dr1, hs1, he1 := e.CritCounts()
	rep.DegradedResponses = dr1 - dr0
	rep.HighCritStarted = hs1 - hs0
	rep.HighCritHardErrors = he1 - he0
	rep.CacheHitRate = e.CacheHitRate()
	if snap, ok := e.Adaptation(); ok {
		rep.AdaptPromotions = snap.Promotions
		rep.AdaptRollbacks = snap.Rollbacks
	}
	// The goodput floor and criticality checks read enrichment the raw
	// Result doesn't carry, so the budget is re-evaluated now that the
	// report is complete (check rebuilds the violation list from scratch).
	rep.Violations = rep.check(s.Budget)
	return rep, nil
}

// Catalog returns the built-in scenario suite. scale compresses or
// stretches both QPS and duration around the defaults (1.0), so CI smoke
// runs (scale ~0.25) and long soaks share one catalog.
func Catalog(scale float64) []ScenarioSpec {
	if scale <= 0 {
		scale = 1
	}
	dur := func(d time.Duration) time.Duration { return time.Duration(float64(d) * scale) }
	qps := func(q float64) float64 {
		s := q * scale
		if s < 50 {
			s = 50
		}
		return s
	}
	lenient := Budget{MaxErrorRate: 0.01, MaxOverloadRate: 0.05}
	return []ScenarioSpec{
		{
			Name: "poisson", Arrivals: "poisson", QPS: qps(400), Duration: dur(8 * time.Second),
			Keys: "zipf", Seed: 1,
			Budget: lenient,
		},
		{
			Name: "flash-crowd", Arrivals: "flash-crowd", QPS: qps(150), PeakQPS: qps(900),
			Duration: dur(10 * time.Second), Keys: "zipf", Seed: 2,
			Budget: Budget{MaxErrorRate: 0.01, MaxOverloadRate: 0.10},
		},
		{
			Name: "diurnal", Arrivals: "diurnal", QPS: qps(100), PeakQPS: qps(500),
			Duration: dur(12 * time.Second), Keys: "hotset", Seed: 3,
			Budget: lenient,
		},
		{
			// Multi-model mix: the same open-loop schedule split across both
			// deployed models, exercising per-model queues and routing.
			Name: "multi-model", Arrivals: "poisson", QPS: qps(300), Duration: dur(8 * time.Second),
			Keys: "zipf", Seed: 10, MultiModel: true,
			Budget: lenient,
		},
		{
			// Offered load far past capacity: the point is that admission
			// control sheds (429) instead of collapsing, so the shed rate is
			// unbounded but hard failures stay rare.
			Name: "overload", Arrivals: "steady", QPS: qps(3000), Duration: dur(5 * time.Second),
			Keys: "uniform", Seed: 4, Workers: 128,
			Budget:      Budget{MaxErrorRate: 0.02, MaxOverloadRate: Unchecked},
			EnvOverride: &EnvConfig{QueueDepth: 4, StoreLatency: 5 * time.Millisecond, Seed: 4},
		},
		{
			// Brownout: the same 5x-capacity offered load as "overload", but
			// the serving tier defends with SLO-aware admission and the
			// degradation ladder instead of 429-only shedding — answers
			// degrade (small-only, prediction-cache) before they shed. The
			// hot key set keeps the prediction cache useful, modeling a
			// flash crowd on popular content. Criticality-high traffic may
			// be shed (counted overloaded) but must never hard-fail.
			Name: "brownout", Arrivals: "steady", QPS: qps(3000), Duration: dur(5 * time.Second),
			Keys: "hotset", HotKeys: 64, HotFrac: 0.9, Seed: 11, Workers: 128,
			Criticality: true,
			Budget:      Budget{MaxErrorRate: 0.02, MaxOverloadRate: Unchecked, MaxHighCritHardErrors: 0},
			EnvOverride: &EnvConfig{
				QueueDepth: 4, StoreLatency: 5 * time.Millisecond, Seed: 4,
				SLO: 10 * time.Millisecond, Brownout: true, CacheCapacity: 8192,
			},
		},
		{
			// Drift: the statistical cache plan is trained for user-hot /
			// item-unique traffic; a quarter of the way in, the live skew
			// inverts so the planned cache goes cold. The adaptation
			// controller must detect the key-reuse collapse, re-plan the
			// budget from its live reservoir onto the item side, canary the
			// re-fit plan, and promote it — the hit-rate floor sits well
			// above what the stale plan delivers post-rotation, so the
			// scenario passes only when adaptation recovers.
			Name: "drift", Arrivals: "steady", QPS: qps(1200), Duration: dur(16 * time.Second),
			Keys: "uniform", Seed: 12, Drift: true,
			Budget: Budget{MaxErrorRate: 0.01, MaxOverloadRate: 0.05, MinCacheHitRate: 0.35},
			EnvOverride: &EnvConfig{
				Seed: 12, StoreLatency: time.Millisecond,
				FeatureCacheBudget: 64, Adapt: true,
			},
			Hooks: func(e *Env, h time.Duration) []Hook {
				return []Hook{{At: h / 4, Name: "rotate-skew", Fn: func(context.Context) error {
					e.RotateSkew()
					return nil
				}}}
			},
		},
		{
			Name: "chaos-store-tail", Arrivals: "poisson", QPS: qps(300), Duration: dur(8 * time.Second),
			Keys: "zipf", Seed: 5,
			Budget: lenient,
			Hooks: func(e *Env, h time.Duration) []Hook {
				return []Hook{
					{At: h / 4, Name: "inject-store-tail", Fn: func(context.Context) error {
						e.InjectStoreTail(4, 20*time.Millisecond)
						return nil
					}},
					{At: 3 * h / 4, Name: "restore-store", Fn: func(context.Context) error {
						e.RestoreStore()
						return nil
					}},
				}
			},
		},
		{
			Name: "chaos-store-drop", Arrivals: "poisson", QPS: qps(300), Duration: dur(8 * time.Second),
			Keys: "zipf", Seed: 6,
			Budget: lenient,
			Hooks: func(e *Env, h time.Duration) []Hook {
				return []Hook{{At: h / 2, Name: "drop-store-conns", Fn: func(context.Context) error {
					e.DropStoreConns(8)
					return nil
				}}}
			},
		},
		{
			// Zero-downtime redeploy: two hot swaps under sustained load, with
			// a zero hard-error budget — a request lost across the swap fails
			// the scenario.
			Name: "chaos-hot-swap", Arrivals: "poisson", QPS: qps(300), Duration: dur(8 * time.Second),
			Keys: "zipf", Seed: 7,
			Budget: Budget{MaxErrorRate: 0, MaxOverloadRate: 0.05},
			Hooks: func(e *Env, h time.Duration) []Hook {
				swap := func(context.Context) error { return e.Swap() }
				return []Hook{
					{At: 2 * h / 5, Name: "hot-swap-1", Fn: swap},
					{At: 7 * h / 10, Name: "hot-swap-2", Fn: swap},
				}
			},
		},
		{
			// Graceful drain mid-run (the SIGTERM path): requests arriving
			// after the drain fail at the refused socket, so the error budget
			// is uncheckable — the invariants are that pre-drain work succeeds
			// and drained requests never report success (pinned by test).
			Name: "drain", Arrivals: "poisson", QPS: qps(200), Duration: dur(5 * time.Second),
			Keys: "zipf", Seed: 8,
			Budget:      Budget{MaxErrorRate: Unchecked, MaxOverloadRate: Unchecked},
			EnvOverride: &EnvConfig{Seed: 8},
			Hooks: func(e *Env, h time.Duration) []Hook {
				return []Hook{{At: 3 * h / 5, Name: "drain", Fn: func(ctx context.Context) error {
					return e.Drain(ctx)
				}}}
			},
		},
		{
			// Soak: sustained load with the whole chaos menu — tail injection,
			// connection drops, and two hot swaps — recovering to a clean
			// final stretch.
			Name: "soak", Arrivals: "poisson", QPS: qps(250), Duration: dur(30 * time.Second),
			Keys: "zipf", Seed: 9,
			Budget: Budget{MaxErrorRate: 0.02, MaxOverloadRate: 0.10},
			Hooks: func(e *Env, h time.Duration) []Hook {
				return []Hook{
					{At: h / 6, Name: "inject-store-tail", Fn: func(context.Context) error {
						e.InjectStoreTail(8, 15*time.Millisecond)
						return nil
					}},
					{At: h / 3, Name: "hot-swap-1", Fn: func(context.Context) error { return e.Swap() }},
					{At: h / 2, Name: "drop-store-conns", Fn: func(context.Context) error {
						e.DropStoreConns(4)
						return nil
					}},
					{At: 2 * h / 3, Name: "hot-swap-2", Fn: func(context.Context) error { return e.Swap() }},
					{At: 5 * h / 6, Name: "restore-store", Fn: func(context.Context) error {
						e.RestoreStore()
						return nil
					}},
				}
			},
		},
	}
}

// SmokeScenarios is the subset CI runs: one plain open-loop scenario, one
// ramp, the brownout overload defense, the drift-adaptation recovery, and
// the two chaos modes the acceptance criteria name.
var SmokeScenarios = []string{"poisson", "flash-crowd", "brownout", "drift", "chaos-store-tail", "chaos-hot-swap"}

// SelectScenarios filters the catalog by name; empty names selects all.
func SelectScenarios(specs []ScenarioSpec, names []string) ([]ScenarioSpec, error) {
	if len(names) == 0 {
		return specs, nil
	}
	byName := make(map[string]ScenarioSpec, len(specs))
	for _, s := range specs {
		byName[s.Name] = s
	}
	out := make([]ScenarioSpec, 0, len(names))
	for _, n := range names {
		s, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("loadgen: unknown scenario %q", n)
		}
		out = append(out, s)
	}
	return out, nil
}
