package loadgen

import (
	"context"
	"strings"
	"testing"
	"time"

	"willump/internal/value"
)

// TestOverloadShedsWithoutCollapse is the sustained-overload test: offered
// load far past capacity must be turned away at admission (429 →
// ErrOverloaded), hard errors must stay rare, and the requests that were
// admitted must still be served with a sane tail — shedding, not collapse.
func TestOverloadShedsWithoutCollapse(t *testing.T) {
	e, err := NewLocalEnv(EnvConfig{QueueDepth: 4, StoreLatency: 5 * time.Millisecond, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	spec := ScenarioSpec{
		Name: "overload-test", Arrivals: "steady", QPS: 1500, Duration: 2 * time.Second,
		Keys: "uniform", Seed: 21, Workers: 128,
		Budget: Budget{MaxErrorRate: 0.02, MaxOverloadRate: Unchecked},
	}
	rep, err := RunScenario(context.Background(), e, spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests < 2500 {
		t.Fatalf("only %d requests started; offered load was throttled", rep.Requests)
	}
	if rep.Completed != rep.Success+rep.Overloaded+rep.Errors {
		t.Fatalf("accounting imbalance: %d completed vs %d+%d+%d",
			rep.Completed, rep.Success, rep.Overloaded, rep.Errors)
	}
	if rep.Overloaded == 0 {
		t.Fatal("5x-oversubscribed server shed nothing; admission control not engaged")
	}
	if rep.Success == 0 {
		t.Fatal("overloaded server served nothing; shedding collapsed into outage")
	}
	// Admitted requests must not see an unbounded queueing tail: the whole
	// point of bounded-queue shedding is that latency stays flat while
	// excess load is refused. Instrumented builds run the handler several
	// times slower, so driver-side queueing inflates the corrected tail.
	bound := 1500 * time.Millisecond
	if raceEnabled {
		bound = 5 * time.Second
	}
	if p99 := time.Duration(rep.P99Ns); p99 > bound {
		t.Errorf("success p99 %s under overload; shedding should keep the tail bounded", p99)
	}
	if !rep.Passed() {
		t.Errorf("overload budget violated: %v", rep.Violations)
	}
}

// TestBrownoutBeatsShedOnlyGoodput is the brownout acceptance test: under
// the same 5x-capacity offered load, an SLO-aware env with the degradation
// ladder must deliver strictly more goodput (successful answers, degraded
// included) than a 429-only baseline, while criticality-high traffic sees
// zero hard errors (sheds are allowed; 500s are not) and at least some
// answers really were served degraded.
func TestBrownoutBeatsShedOnlyGoodput(t *testing.T) {
	spec := ScenarioSpec{
		Name: "brownout-test", Arrivals: "steady", QPS: 1500, Duration: 2 * time.Second,
		Keys: "hotset", HotKeys: 64, HotFrac: 0.9, Seed: 11, Workers: 128,
		Criticality: true,
		Budget:      Budget{MaxErrorRate: 0.02, MaxOverloadRate: Unchecked, MaxHighCritHardErrors: 0},
	}

	brownout, err := NewLocalEnv(EnvConfig{
		QueueDepth: 4, StoreLatency: 5 * time.Millisecond, Seed: 4,
		SLO: 10 * time.Millisecond, Brownout: true, CacheCapacity: 8192,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer brownout.Close()
	rep, err := RunScenario(context.Background(), brownout, spec)
	if err != nil {
		t.Fatal(err)
	}

	baseSpec := spec
	baseSpec.Name = "brownout-baseline"
	baseSpec.Budget = Budget{MaxErrorRate: 0.02, MaxOverloadRate: Unchecked, MaxHighCritHardErrors: Unchecked}
	baseline, err := NewLocalEnv(EnvConfig{
		QueueDepth: 4, StoreLatency: 5 * time.Millisecond, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer baseline.Close()
	base, err := RunScenario(context.Background(), baseline, baseSpec)
	if err != nil {
		t.Fatal(err)
	}

	if base.Overloaded == 0 {
		t.Fatal("429-only baseline shed nothing; the comparison load is not an overload")
	}
	if rep.Success <= base.Success {
		t.Errorf("brownout goodput %d does not beat 429-only baseline %d", rep.Success, base.Success)
	}
	if rep.DegradedResponses == 0 {
		t.Error("brownout run served no degraded answers; the ladder never engaged")
	}
	if rep.HighCritStarted == 0 {
		t.Fatal("no criticality-high requests started; classification is broken")
	}
	if rep.HighCritHardErrors != 0 {
		t.Errorf("%d criticality-high hard errors; high-priority traffic must shed, not fail", rep.HighCritHardErrors)
	}
	if !rep.Passed() {
		t.Errorf("brownout budget violated: %v", rep.Violations)
	}
	if rep.Completed != rep.Success+rep.Overloaded+rep.Errors {
		t.Fatalf("accounting imbalance: %d completed vs %d+%d+%d",
			rep.Completed, rep.Success, rep.Overloaded, rep.Errors)
	}
}

// TestDrainNeverReportsSuccess pins the drain invariant: a graceful
// mid-run shutdown refuses late arrivals (they surface as errors, never as
// successes), accounting stays balanced, and the server really is down
// afterwards.
func TestDrainNeverReportsSuccess(t *testing.T) {
	e, err := NewLocalEnv(EnvConfig{Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	spec := ScenarioSpec{
		Name: "drain-test", Arrivals: "steady", QPS: 200, Duration: 2 * time.Second,
		Keys: "uniform", Seed: 22,
		Budget: Budget{MaxErrorRate: Unchecked, MaxOverloadRate: Unchecked},
		Hooks: func(e *Env, h time.Duration) []Hook {
			return []Hook{{At: h / 2, Name: "drain", Fn: func(ctx context.Context) error {
				return e.Drain(ctx)
			}}}
		},
	}
	rep, err := RunScenario(context.Background(), e, spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != rep.Success+rep.Overloaded+rep.Errors {
		t.Fatalf("accounting imbalance: %d completed vs %d+%d+%d",
			rep.Completed, rep.Success, rep.Overloaded, rep.Errors)
	}
	if rep.Errors == 0 {
		t.Fatal("no errors recorded; the drain refused nothing")
	}
	if rep.Success == 0 {
		t.Fatal("no successes before the drain")
	}
	// Roughly half the schedule arrives after the drain: successes cannot
	// cover the whole run. The margin tolerates in-flight work completing
	// across the shutdown (which is the graceful part of graceful drain).
	if rep.Success > rep.Requests*3/4 {
		t.Errorf("%d of %d requests succeeded; post-drain requests are reporting success",
			rep.Success, rep.Requests)
	}
	// The server must actually be down.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_, probeErr := e.Client().PredictModel(ctx, e.ModelName, map[string]value.Value{
		"user_id": value.NewInts([]int64{1}),
		"item_id": value.NewInts([]int64{1}),
	})
	if probeErr == nil {
		t.Fatal("request after drain succeeded")
	}
}

// TestChaosSuiteWithinBudget is the chaos acceptance test: store tail
// injection and a zero-downtime hot swap both run mid-flight, and each
// scenario completes within its declared error budget with populated
// latency quantiles.
func TestChaosSuiteWithinBudget(t *testing.T) {
	var out strings.Builder
	reports, err := RunSuite(context.Background(), SuiteConfig{
		Scale:     0.25,
		Scenarios: []string{"chaos-store-tail", "chaos-hot-swap"},
		Out:       &out,
	})
	if err != nil {
		t.Fatalf("suite failed: %v\n%s", err, out.String())
	}
	if len(reports) != 2 {
		t.Fatalf("got %d reports, want 2", len(reports))
	}
	for _, rep := range reports {
		if rep.Requests == 0 {
			t.Errorf("%s: no requests", rep.Scenario)
		}
		if len(rep.HookErrs) > 0 {
			t.Errorf("%s: chaos hooks failed: %v", rep.Scenario, rep.HookErrs)
		}
		if !rep.Passed() {
			t.Errorf("%s: error budget violated: %v", rep.Scenario, rep.Violations)
		}
		if rep.P50Ns <= 0 || rep.P99Ns < rep.P50Ns || rep.P999Ns < rep.P99Ns {
			t.Errorf("%s: implausible quantiles p50=%d p99=%d p999=%d",
				rep.Scenario, rep.P50Ns, rep.P99Ns, rep.P999Ns)
		}
		row := rep.Row()
		if !strings.HasPrefix(row.Workload, "loadgen/") {
			t.Errorf("BENCH row workload %q missing loadgen/ prefix", row.Workload)
		}
		if row.Requests != rep.Requests || row.OfferedQPS != rep.OfferedQPS {
			t.Errorf("%s: BENCH row does not carry the report's counters", rep.Scenario)
		}
	}
	// The hot-swap scenario's budget is zero hard errors: spell it out so a
	// budget edit can't silently weaken the zero-downtime guarantee.
	for _, rep := range reports {
		if rep.Scenario == "chaos-hot-swap" && rep.Errors != 0 {
			t.Errorf("hot swap dropped %d requests; redeploys must be zero-downtime", rep.Errors)
		}
	}
}

// TestCatalogSpecsAreRunnable pins that every catalog entry generates a
// non-empty schedule and selects cleanly by name.
func TestCatalogSpecsAreRunnable(t *testing.T) {
	specs := Catalog(0.1)
	if len(specs) == 0 {
		t.Fatal("empty catalog")
	}
	for _, s := range specs {
		events, err := s.Events()
		if err != nil {
			t.Errorf("%s: %v", s.Name, err)
			continue
		}
		if len(events) == 0 {
			t.Errorf("%s: empty schedule", s.Name)
		}
	}
	if _, err := SelectScenarios(specs, []string{"no-such-scenario"}); err == nil {
		t.Error("unknown scenario name accepted")
	}
	smoke, err := SelectScenarios(specs, SmokeScenarios)
	if err != nil {
		t.Fatal(err)
	}
	if len(smoke) != len(SmokeScenarios) {
		t.Fatalf("smoke subset selected %d of %d", len(smoke), len(SmokeScenarios))
	}
}
