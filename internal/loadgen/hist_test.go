package loadgen

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// TestHistogramQuantileAccuracy checks reconstructed quantiles against the
// exact sorted-sample quantiles within the histogram's ~3% relative error
// bound.
func TestHistogramQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := NewHistogram()
	n := 50000
	vals := make([]int64, n)
	for i := range vals {
		// Log-uniform over ~6 decades, like latencies ns..ms.
		v := int64(1) << uint(rng.Intn(40))
		v += rng.Int63n(v + 1)
		vals[i] = v
		h.Record(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := vals[int(q*float64(n-1))]
		got := h.Quantile(q)
		rel := float64(got-exact) / float64(exact)
		if rel < 0 {
			rel = -rel
		}
		if rel > 0.05 {
			t.Errorf("q%.3f: got %d, exact %d (rel err %.3f)", q, got, exact, rel)
		}
	}
	if h.Count() != int64(n) {
		t.Errorf("count %d, want %d", h.Count(), n)
	}
	if h.Quantile(1) != h.Max() {
		t.Errorf("p100 %d != max %d", h.Quantile(1), h.Max())
	}
}

// TestHistogramSmallExact pins that values below 64 are recorded exactly.
func TestHistogramSmallExact(t *testing.T) {
	h := NewHistogram()
	for v := int64(0); v < 64; v++ {
		h.Record(v)
	}
	if got := h.Quantile(0.5); got < 31 || got > 32 {
		t.Errorf("median of 0..63 = %d, want 31 or 32", got)
	}
	if got := h.Max(); got != 63 {
		t.Errorf("max %d, want 63", got)
	}
}

// TestHistogramConcurrent exercises the lock-free recording path; run under
// -race this pins that workers never need coordination.
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	const workers, per = 8, 10000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Record(rng.Int63n(1 << 30))
			}
		}(int64(w))
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Errorf("count %d, want %d", h.Count(), workers*per)
	}
}

// TestHistogramUnderflow pins that negative observations keep totals
// balanced instead of panicking or skewing quantiles upward.
func TestHistogramUnderflow(t *testing.T) {
	h := NewHistogram()
	h.Record(-5)
	h.Record(100)
	if h.Count() != 2 {
		t.Errorf("count %d, want 2", h.Count())
	}
	if got := h.Quantile(0.25); got != 0 {
		t.Errorf("quantile below underflow rank = %d, want 0", got)
	}
}
