package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"willump/internal/adapt"
	"willump/internal/core"
	"willump/internal/graph"
	"willump/internal/kvstore"
	"willump/internal/model"
	"willump/internal/ops"
	"willump/internal/serving"
	"willump/internal/store"
	"willump/internal/value"
)

// Env is a self-contained serving stack the load generator can drive
// without external infrastructure: an in-process kvstore (the remote
// feature store), a production store.Client with retries/hedging/breaker,
// a two-lookup pipeline optimized twice (so hot swaps flip between two
// genuinely different deployments), and the real HTTP serving tier in
// front. Chaos scenarios reach through it to the fault-injection knobs.
type Env struct {
	ModelName    string
	AltModelName string
	NKeys        int64

	kv       *kvstore.Server
	kvBase   time.Duration
	storeCli *store.Client
	reg      *serving.Registry
	srv      *serving.Server
	client   *serving.Client
	addr     string

	opts    [2]*core.Optimized
	nextTag int

	// Criticality-classified traffic accounting (CritTarget): responses
	// served brownout-degraded, and criticality-high requests started /
	// hard-failed (errors other than 429 sheds).
	degradedResp atomic.Int64
	highStarted  atomic.Int64
	highHardErr  atomic.Int64

	// Drift-traffic state (DriftTarget): rotated flips the live key skew
	// mid-run, driftSeq supplies the unique side of the key stream.
	rotated  atomic.Bool
	driftSeq atomic.Int64
}

// envDriftHotKeys is the hot-set size for skewed training and drift
// traffic: small enough that a planned cache covers it entirely.
const envDriftHotKeys = 16

// EnvConfig sizes the local environment.
type EnvConfig struct {
	// QueueDepth is the serving tier's admission-control queue depth
	// (default 1024; set small to force overload shedding).
	QueueDepth int
	// StoreLatency is the kvstore's base per-request latency (default 0).
	StoreLatency time.Duration
	// NKeys is the loaded key-space size (default 2048).
	NKeys int64
	// Seed drives table contents and training data.
	Seed int64
	// SLO, when non-zero, enables SLO-aware admission control on the
	// serving tier (predictive shedding + adaptive concurrency).
	SLO time.Duration
	// Brownout enables the graceful-degradation ladder (requires SLO).
	Brownout bool
	// CacheCapacity enables the per-version end-to-end prediction cache —
	// the brownout ladder's cache-only rung answers from it (< 0 unbounded).
	CacheCapacity int
	// FeatureCacheBudget, when positive, optimizes the pipelines with the
	// statistical feature-cache planner under skewed training traffic —
	// user keys drawn from a small hot set, item keys unique — so the plan
	// spends the whole budget on the user-side IFV. Drift scenarios invert
	// that skew live (RotateSkew) to make the plan go stale.
	FeatureCacheBudget int
	// Adapt enables online adaptation on the primary model (drift
	// detection, guarded re-fit, canaried swap) with cadences compressed
	// for scenario-length runs.
	Adapt bool
}

// NewLocalEnv builds and starts the full local stack. Callers own Close.
func NewLocalEnv(cfg EnvConfig) (env *Env, err error) {
	nKeys := cfg.NKeys
	if nKeys <= 0 {
		nKeys = 2048
	}
	e := &Env{ModelName: "demo", AltModelName: "demo-alt", NKeys: nKeys, kvBase: cfg.StoreLatency}
	defer func() {
		if err != nil {
			e.Close()
		}
	}()

	// Remote feature store plus the production client in front of it.
	rng := rand.New(rand.NewSource(cfg.Seed))
	e.kv = kvstore.NewServer(2, cfg.StoreLatency)
	remoteRows := make(map[int64][]float64, nKeys)
	localRows := make(map[int64][]float64, nKeys)
	for k := int64(0); k < nKeys; k++ {
		remoteRows[k] = []float64{rng.NormFloat64(), rng.NormFloat64()}
		localRows[k] = []float64{rng.NormFloat64()}
	}
	if err := e.kv.Load(remoteRows); err != nil {
		return nil, err
	}
	addr, err := e.kv.Start()
	if err != nil {
		return nil, err
	}
	e.storeCli, err = store.Dial(context.Background(), store.Config{
		Addr:      addr,
		ExpectDim: 2,
		Hedge:     true,
	})
	if err != nil {
		return nil, err
	}

	// Pipeline: local lookup ⋈ remote lookup → logistic model, the minimal
	// shape that exercises async prefetch and the store client under load.
	b := graph.NewBuilder()
	uid := b.Input("user_id")
	iid := b.Input("item_id")
	uf := b.Add("user_features", ops.NewLookup("local", ops.NewLocalTable(1, localRows)), uid)
	itf := b.Add("item_features", ops.NewLookup("remote", e.storeCli), iid)
	cat := b.Add("concat", ops.NewConcat(), uf, itf)
	b.SetOutput(cat)
	g, err := b.Build()
	if err != nil {
		return nil, err
	}

	gen := func(n int) core.Dataset {
		uids := make([]int64, n)
		iids := make([]int64, n)
		y := make([]float64, n)
		for i := range uids {
			uk, ik := rng.Int63n(nKeys), rng.Int63n(nKeys)
			if cfg.FeatureCacheBudget > 0 {
				// Skewed training traffic for the statistical cache
				// planner: hot user keys, unique item keys.
				uk, ik = int64(i)%envDriftHotKeys, int64(i)%nKeys
			}
			uids[i], iids[i] = uk, ik
			if localRows[uk][0]+remoteRows[ik][0]-remoteRows[ik][1] > 0 {
				y[i] = 1
			}
		}
		return core.Dataset{
			Inputs: map[string]value.Value{
				"user_id": value.NewInts(uids),
				"item_id": value.NewInts(iids),
			},
			Y: y,
		}
	}
	train, valid := gen(512), gen(128)

	// Optimize the pipeline twice: two independent deployables, so a hot
	// swap under load flips between real, separately-compiled versions.
	for i := range e.opts {
		p := &core.Pipeline{Graph: g, Model: model.NewLogistic(model.LinearConfig{})}
		opt, _, err := core.Optimize(context.Background(), p, train, valid, core.Options{
			FeatureCache:       cfg.FeatureCacheBudget > 0,
			FeatureCacheBudget: cfg.FeatureCacheBudget,
		})
		if err != nil {
			return nil, fmt.Errorf("loadgen: optimizing env pipeline: %w", err)
		}
		e.opts[i] = opt
	}

	// Serving tier: registry + HTTP frontend + tuned client. A second model
	// rides behind the same frontend so mix scenarios exercise the
	// registry's multi-model routing, not just one hot path.
	e.reg = serving.NewRegistry(serving.Options{
		QueueDepth:    cfg.QueueDepth,
		SLOTargetP99:  cfg.SLO,
		Brownout:      cfg.Brownout,
		CacheCapacity: cfg.CacheCapacity,
	})
	if err := e.reg.Deploy(e.ModelName, "v1", e.opts[0]); err != nil {
		return nil, err
	}
	if err := e.reg.Deploy(e.AltModelName, "v1", e.opts[1]); err != nil {
		return nil, err
	}
	e.nextTag = 2
	if cfg.Adapt {
		if err := e.reg.EnableAdaptation(e.ModelName, adapt.Config{
			SampleEvery:       1,
			KeyWindow:         64,
			ReuseStrikes:      2,
			Reservoir:         128,
			CheckEvery:        25 * time.Millisecond,
			CanaryFraction:    0.5,
			CanaryMinRequests: 50,
			CanaryTimeout:     10 * time.Second,
			PassStreak:        2,
			FailStreak:        3,
			GuardLatencyTol:   10, // scripted cache drift; don't judge p99 jitter
			Cooldown:          2 * time.Second,
		}); err != nil {
			return nil, fmt.Errorf("loadgen: enabling adaptation: %w", err)
		}
	}
	e.srv = serving.NewRegistryServer(e.reg)
	e.addr, err = e.srv.Start()
	if err != nil {
		return nil, err
	}
	e.client = serving.NewClient(e.addr)
	return e, nil
}

// Addr returns the serving frontend's address.
func (e *Env) Addr() string { return e.addr }

// Client returns the serving client bound to the env's frontend.
func (e *Env) Client() *serving.Client { return e.client }

// Target returns the load-generation target: one single-row prediction RPC
// per event, the key folded into the loaded key space for both lookups.
func (e *Env) Target() Target {
	return TargetFunc(func(ctx context.Context, ev Event) error {
		_, err := e.client.PredictModel(ctx, e.ModelName, e.inputs(ev.Key))
		return err
	})
}

// MixTarget returns a multi-model target: requests split across both
// deployed models by key, exercising the registry's routing and per-model
// queues rather than one hot path.
func (e *Env) MixTarget() Target {
	return TargetFunc(func(ctx context.Context, ev Event) error {
		name := e.ModelName
		if ev.Key%3 == 0 {
			name = e.AltModelName
		}
		_, err := e.client.PredictModel(ctx, name, e.inputs(ev.Key))
		return err
	})
}

// CritTarget returns a criticality-classified target: each event's key
// deterministically assigns a class (~10% high, ~30% low, ~60% normal), the
// class rides the wire as a per-request option, and the env counts degraded
// responses and high-criticality hard failures (errors other than 429
// sheds) for the report's brownout assertions.
func (e *Env) CritTarget() Target {
	return TargetFunc(func(ctx context.Context, ev Event) error {
		crit := "normal"
		switch m := ev.Key % 10; {
		case m == 0:
			crit = "high"
		case m >= 1 && m <= 3:
			crit = "low"
		}
		if crit == "high" {
			e.highStarted.Add(1)
		}
		res, err := e.client.PredictModelResult(ctx, e.ModelName, e.inputs(ev.Key), core.WithCriticality(crit))
		if err == nil && res.Degraded != "" {
			e.degradedResp.Add(1)
		}
		if err != nil && crit == "high" && !errors.Is(err, serving.ErrOverloaded) {
			e.highHardErr.Add(1)
		}
		return err
	})
}

// CritCounts snapshots the criticality-traffic counters: brownout-degraded
// responses, criticality-high requests started, and their hard failures.
func (e *Env) CritCounts() (degraded, highStarted, highHardErrs int64) {
	return e.degradedResp.Load(), e.highStarted.Load(), e.highHardErr.Load()
}

// DriftTarget returns a drift-scripted target: until RotateSkew fires,
// user keys come from the hot set the cache plan was trained for while
// item keys are effectively unique; after rotation the skew inverts, so
// the planned user-side cache goes cold and only re-planning the budget
// onto the item side can recover the hit rate.
func (e *Env) DriftTarget() Target {
	return TargetFunc(func(ctx context.Context, ev Event) error {
		_, err := e.client.PredictModel(ctx, e.ModelName, e.driftInputs(ev.Key))
		return err
	})
}

func (e *Env) driftInputs(key int64) map[string]value.Value {
	hot := key % envDriftHotKeys
	if hot < 0 {
		hot += envDriftHotKeys
	}
	uniq := e.driftSeq.Add(1) % e.NKeys
	u, it := hot, uniq
	if e.rotated.Load() {
		u, it = uniq, hot
	}
	return map[string]value.Value{
		"user_id": value.NewInts([]int64{u}),
		"item_id": value.NewInts([]int64{it}),
	}
}

// RotateSkew inverts the drift target's key skew mid-run — the scripted
// distribution shift the adaptation controller must detect and re-plan
// for.
func (e *Env) RotateSkew() { e.rotated.Store(true) }

// CacheHitRate returns the primary model's active-version feature-cache
// hit rate (0 when the deployed plan has no caches). After an adaptation
// promote this reads the re-fit plan's counters, which start at its
// canary launch — the post-adaptation hit rate drift budgets check.
func (e *Env) CacheHitRate() float64 {
	ms, err := e.reg.Stats(e.ModelName)
	if err != nil || ms.FeatureCache == nil {
		return 0
	}
	return ms.FeatureCache.HitRate
}

// Adaptation snapshots the primary model's adaptation controller; ok is
// false when adaptation is not enabled.
func (e *Env) Adaptation() (adapt.Snapshot, bool) {
	return e.reg.AdaptationSnapshot(e.ModelName)
}

func (e *Env) inputs(key int64) map[string]value.Value {
	k := key % e.NKeys
	if k < 0 {
		k += e.NKeys
	}
	return map[string]value.Value{
		"user_id": value.NewInts([]int64{k}),
		"item_id": value.NewInts([]int64{(k * 7) % e.NKeys}),
	}
}

// Swap hot-deploys the alternate optimized pipeline under a fresh version
// tag — the zero-downtime redeploy the chaos scenario asserts on.
func (e *Env) Swap() error {
	opt := e.opts[e.nextTag%2]
	tag := fmt.Sprintf("v%d", e.nextTag)
	e.nextTag++
	return e.reg.Deploy(e.ModelName, tag, opt)
}

// InjectStoreTail makes every Nth kvstore request take slow, modeling a
// feature-store tail-latency incident.
func (e *Env) InjectStoreTail(every int, slow time.Duration) {
	e.kv.SetLatencyFunc(kvstore.TailLatency(every, e.kvBase, slow))
}

// RestoreStore removes injected store faults.
func (e *Env) RestoreStore() { e.kv.SetLatencyFunc(nil) }

// DropStoreConns makes the kvstore drop the next n connections.
func (e *Env) DropStoreConns(n int) { e.kv.DropNextConns(n) }

// Drain gracefully shuts the serving frontend down (the SIGTERM path):
// in-flight and queued requests complete, new connections are refused.
func (e *Env) Drain(ctx context.Context) error { return e.srv.Shutdown(ctx) }

// Degraded returns the cumulative count of lookups answered from the store
// client's degraded fallback path (0 when the pipeline reports no store).
func (e *Env) Degraded() int64 {
	ms, err := e.reg.Stats(e.ModelName)
	if err != nil || ms.FeatureStore == nil {
		return 0
	}
	return ms.FeatureStore.Degraded
}

// Close tears the stack down in dependency order. Safe on a partially
// constructed env and after Drain.
func (e *Env) Close() {
	if e.srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		e.srv.Shutdown(ctx) //nolint:errcheck // already-drained servers error harmlessly
		cancel()
	}
	if e.storeCli != nil {
		e.storeCli.Close()
	}
	if e.kv != nil {
		e.kv.Close()
	}
}
