package loadgen

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestTraceRoundTrip pins the acceptance criterion "a seed reproduces a
// byte-identical trace": the same spec generates the same events, the trace
// file round-trips exactly, and replaying the loaded trace yields the same
// schedule again.
func TestTraceRoundTrip(t *testing.T) {
	spec := ScenarioSpec{
		Name: "rt", Arrivals: "poisson", QPS: 200, Duration: 2 * time.Second,
		Keys: "zipf", Seed: 99,
	}
	e1, err := spec.Events()
	if err != nil {
		t.Fatal(err)
	}
	e2, err := spec.Events()
	if err != nil {
		t.Fatal(err)
	}
	if len(e1) == 0 {
		t.Fatal("empty schedule")
	}
	requireEqual := func(a, b []Event, what string) {
		t.Helper()
		if len(a) != len(b) {
			t.Fatalf("%s: %d vs %d events", what, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: event %d differs: %+v vs %+v", what, i, a[i], b[i])
			}
		}
	}
	requireEqual(e1, e2, "same seed regeneration")

	var buf1, buf2 bytes.Buffer
	if err := WriteTrace(&buf1, e1); err != nil {
		t.Fatal(err)
	}
	if err := WriteTrace(&buf2, e2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatal("same seed did not produce byte-identical trace files")
	}

	loaded, err := ReadTrace(&buf1)
	if err != nil {
		t.Fatal(err)
	}
	requireEqual(e1, loaded, "file round trip")

	// Replay through the file-based path of a scenario spec.
	path := filepath.Join(t.TempDir(), "trace")
	if err := SaveTrace(path, e1); err != nil {
		t.Fatal(err)
	}
	replayed, err := ScenarioSpec{Name: "replay", TracePath: path}.Events()
	if err != nil {
		t.Fatal(err)
	}
	requireEqual(e1, replayed, "scenario replay")
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("not a trace\n")); err == nil {
		t.Fatal("garbage header accepted")
	}
	if _, err := ReadTrace(strings.NewReader(`{"willump_trace":1,"events":5}` + "\n1 2\n")); err == nil {
		t.Fatal("truncated trace accepted")
	}
}
