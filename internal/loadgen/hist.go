package loadgen

import (
	"math/bits"
	"sync/atomic"
)

// Histogram is an HDR-style log-linear latency histogram with lock-free
// concurrent recording. Values below 2^exactBits land in exact unit-wide
// buckets; above that each power-of-two octave is split into 2^subBits
// linear sub-buckets, bounding relative quantile error at 1/2^subBits
// (~3%) across the full int64 range. All counters are atomic, so workers
// record without coordination and a reader may snapshot mid-run.
type Histogram struct {
	buckets   []atomic.Int64
	count     atomic.Int64
	sum       atomic.Int64
	max       atomic.Int64
	underflow atomic.Int64 // negative values (clock skew); counted, not bucketed
}

const (
	histSubBits   = 5 // 32 linear sub-buckets per octave
	histExactBits = 6 // values < 64 recorded exactly
	histSubCount  = 1 << histSubBits
	histExact     = 1 << histExactBits
	// Octaves from exponent histExactBits up to 62 inclusive.
	histBuckets = histExact + (63-histExactBits)*histSubCount
)

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{buckets: make([]atomic.Int64, histBuckets)}
}

func histIndex(v int64) int {
	if v < histExact {
		return int(v)
	}
	k := 63 - bits.LeadingZeros64(uint64(v)) // floor(log2 v), >= histExactBits
	sub := int((v >> (uint(k) - histSubBits)) & (histSubCount - 1))
	return histExact + (k-histExactBits)*histSubCount + sub
}

// histValue reconstructs a representative value (bucket midpoint) for index i.
func histValue(i int) int64 {
	if i < histExact {
		return int64(i)
	}
	i -= histExact
	k := histExactBits + i/histSubCount
	sub := i % histSubCount
	lo := (int64(1) << uint(k)) + int64(sub)<<(uint(k)-histSubBits)
	return lo + (int64(1) << (uint(k) - histSubBits - 1)) // midpoint of sub-bucket
}

// Record adds one observation. Negative values are counted as underflow so
// totals stay balanced even under clock adjustments.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		h.underflow.Add(1)
		h.count.Add(1)
		return
	}
	h.buckets[histIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Max returns the largest recorded value (0 if empty).
func (h *Histogram) Max() int64 { return h.max.Load() }

// Mean returns the mean of recorded non-negative values (0 if empty).
func (h *Histogram) Mean() float64 {
	n := h.count.Load() - h.underflow.Load()
	if n <= 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns the value at quantile q in [0,1]. Underflowed (negative)
// observations rank below zero. The answer is the bucket midpoint, except
// the exact maximum is returned for the topmost populated bucket so p100
// (and high quantiles landing there) never overshoot the observed max.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	max := h.max.Load()
	if rank >= total {
		return max // the top rank is the observed maximum, not a bucket midpoint
	}
	cum := h.underflow.Load()
	if rank <= cum {
		return 0
	}
	for i := range h.buckets {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		if cum >= rank {
			v := histValue(i)
			if v > max {
				return max
			}
			return v
		}
	}
	return max
}
