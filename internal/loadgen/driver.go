package loadgen

import (
	"context"
	"fmt"
	"io"

	"willump/internal/benchfmt"
)

// SuiteConfig parameterizes a scenario-suite run against a local env.
type SuiteConfig struct {
	// Env is the shared environment (scenarios with EnvOverride get their
	// own regardless).
	Env EnvConfig
	// Scale compresses/stretches catalog QPS and durations (default 1.0).
	Scale float64
	// Scenarios filters the catalog by name (nil: all).
	Scenarios []string
	// Out receives human-readable per-scenario summaries (nil: discarded).
	Out io.Writer
}

// RunSuite runs the selected scenarios and returns their reports. A
// scenario with EnvOverride runs in a dedicated env torn down afterwards;
// the rest share one env, so cross-scenario state (warm connections, cache
// contents) carries over like it would in a long-lived deployment. The
// returned error covers infrastructure failures only — budget violations
// live in the reports.
func RunSuite(ctx context.Context, cfg SuiteConfig) ([]Report, error) {
	out := cfg.Out
	if out == nil {
		out = io.Discard
	}
	specs, err := SelectScenarios(Catalog(cfg.Scale), cfg.Scenarios)
	if err != nil {
		return nil, err
	}

	var shared *Env
	sharedEnv := func() (*Env, error) {
		if shared == nil {
			shared, err = NewLocalEnv(cfg.Env)
			if err != nil {
				return nil, fmt.Errorf("loadgen: building env: %w", err)
			}
		}
		return shared, nil
	}
	defer func() {
		if shared != nil {
			shared.Close()
		}
	}()

	reports := make([]Report, 0, len(specs))
	for _, s := range specs {
		if err := ctx.Err(); err != nil {
			return reports, err
		}
		e := shared
		if s.EnvOverride != nil {
			e, err = NewLocalEnv(*s.EnvOverride)
			if err != nil {
				return reports, fmt.Errorf("loadgen: building env for %s: %w", s.Name, err)
			}
		} else if e, err = sharedEnv(); err != nil {
			return reports, err
		}
		rep, err := RunScenario(ctx, e, s)
		if s.EnvOverride != nil {
			e.Close()
		}
		if err != nil {
			return reports, err
		}
		rep.Print(out)
		reports = append(reports, rep)
	}
	return reports, nil
}

// Rows converts reports to BENCH trajectory rows.
func Rows(reports []Report) []benchfmt.Row {
	rows := make([]benchfmt.Row, len(reports))
	for i, r := range reports {
		rows[i] = r.Row()
	}
	return rows
}

// Failed returns the reports that violated their budgets.
func Failed(reports []Report) []Report {
	var out []Report
	for _, r := range reports {
		if !r.Passed() {
			out = append(out, r)
		}
	}
	return out
}
