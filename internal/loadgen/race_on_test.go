//go:build race

package loadgen

// raceEnabled reports whether the race detector instruments this build.
// Latency-bound assertions scale up under race: instrumented request
// handling is several times slower, which shows up as driver-side queueing
// in coordinated-omission-corrected latencies.
const raceEnabled = true
