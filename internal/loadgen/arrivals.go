package loadgen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// Arrivals produces a schedule of request start times as offsets from the
// run's start. The schedule depends only on the process definition and its
// seed — never on how fast the server answers — which is what makes the
// generator open-loop.
type Arrivals interface {
	// Schedule returns strictly non-decreasing offsets covering [0, horizon).
	Schedule(horizon time.Duration) []time.Duration
}

// SteadyArrivals emits requests at a fixed rate with deterministic,
// evenly-spaced offsets. Zero jitter makes it the reference process for
// open-loop pin tests: the k-th request starts at exactly k/QPS.
type SteadyArrivals struct {
	QPS float64
}

// Schedule implements Arrivals.
func (s SteadyArrivals) Schedule(horizon time.Duration) []time.Duration {
	if s.QPS <= 0 || horizon <= 0 {
		return nil
	}
	interval := time.Duration(float64(time.Second) / s.QPS)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	n := int(horizon / interval)
	out := make([]time.Duration, 0, n+1)
	for t := time.Duration(0); t < horizon; t += interval {
		out = append(out, t)
	}
	return out
}

// PoissonArrivals emits a homogeneous Poisson process at rate QPS:
// exponentially distributed inter-arrival gaps, the standard model for
// independent user traffic.
type PoissonArrivals struct {
	QPS  float64
	Seed int64
}

// Schedule implements Arrivals.
func (p PoissonArrivals) Schedule(horizon time.Duration) []time.Duration {
	if p.QPS <= 0 || horizon <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(p.Seed))
	var out []time.Duration
	t := time.Duration(0)
	for {
		gap := time.Duration(rng.ExpFloat64() / p.QPS * float64(time.Second))
		t += gap
		if t >= horizon {
			return out
		}
		out = append(out, t)
	}
}

// RatePoint anchors a piecewise-linear QPS curve: the offered rate at
// offset At is QPS, interpolated linearly between adjacent points.
type RatePoint struct {
	At  time.Duration `json:"at_ns"`
	QPS float64       `json:"qps"`
}

// CurveArrivals emits a non-homogeneous Poisson process whose rate follows
// the piecewise-linear curve through Points, via thinning against the peak
// rate. This models flash crowds (baseline → spike → recovery) and replayed
// diurnal QPS curves from production traffic.
type CurveArrivals struct {
	Points []RatePoint
	Seed   int64
}

// FlashCrowd builds a curve that holds base QPS, ramps to peak over the
// middle fifth of the horizon, holds the peak for a fifth, then recovers.
func FlashCrowd(base, peak float64, horizon time.Duration) CurveArrivals {
	fifth := horizon / 5
	return CurveArrivals{Points: []RatePoint{
		{At: 0, QPS: base},
		{At: 2 * fifth, QPS: base},
		{At: 2*fifth + fifth/4, QPS: peak},
		{At: 3 * fifth, QPS: peak},
		{At: 3*fifth + fifth/2, QPS: base},
		{At: horizon, QPS: base},
	}}
}

// Diurnal builds a one-"day" sinusoidal QPS curve compressed into horizon,
// oscillating between low (trough) and high (peak), sampled at 24 points
// like an hourly production traffic replay.
func Diurnal(low, high float64, horizon time.Duration) CurveArrivals {
	const samples = 24
	pts := make([]RatePoint, samples+1)
	mid := (low + high) / 2
	amp := (high - low) / 2
	for i := 0; i <= samples; i++ {
		frac := float64(i) / samples
		// Trough at start/end, peak mid-"day".
		q := mid - amp*math.Cos(2*math.Pi*frac)
		pts[i] = RatePoint{At: time.Duration(frac * float64(horizon)), QPS: q}
	}
	return CurveArrivals{Points: pts}
}

func (c CurveArrivals) rateAt(t time.Duration) float64 {
	pts := c.Points
	if len(pts) == 0 {
		return 0
	}
	if t <= pts[0].At {
		return pts[0].QPS
	}
	for i := 1; i < len(pts); i++ {
		if t <= pts[i].At {
			span := pts[i].At - pts[i-1].At
			if span <= 0 {
				return pts[i].QPS
			}
			frac := float64(t-pts[i-1].At) / float64(span)
			return pts[i-1].QPS + frac*(pts[i].QPS-pts[i-1].QPS)
		}
	}
	return pts[len(pts)-1].QPS
}

// Schedule implements Arrivals by thinning a homogeneous Poisson process at
// the curve's peak rate: candidate arrivals are kept with probability
// rate(t)/peak, yielding exact non-homogeneous Poisson arrivals.
func (c CurveArrivals) Schedule(horizon time.Duration) []time.Duration {
	if len(c.Points) == 0 || horizon <= 0 {
		return nil
	}
	peak := 0.0
	for _, p := range c.Points {
		if p.QPS > peak {
			peak = p.QPS
		}
	}
	if peak <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(c.Seed))
	var out []time.Duration
	t := time.Duration(0)
	for {
		gap := time.Duration(rng.ExpFloat64() / peak * float64(time.Second))
		t += gap
		if t >= horizon {
			return out
		}
		if rng.Float64()*peak <= c.rateAt(t) {
			out = append(out, t)
		}
	}
}

// ReplayArrivals replays a fixed schedule verbatim — the arrival side of a
// recorded trace.
type ReplayArrivals struct {
	Offsets []time.Duration
}

// Schedule implements Arrivals, returning the offsets inside the horizon in
// sorted order.
func (r ReplayArrivals) Schedule(horizon time.Duration) []time.Duration {
	out := make([]time.Duration, 0, len(r.Offsets))
	for _, t := range r.Offsets {
		if t >= 0 && t < horizon {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// arrivalsFromSpec builds an Arrivals from a scenario spec.
func arrivalsFromSpec(s ScenarioSpec) (Arrivals, error) {
	switch s.Arrivals {
	case "steady":
		return SteadyArrivals{QPS: s.QPS}, nil
	case "poisson", "":
		return PoissonArrivals{QPS: s.QPS, Seed: s.Seed}, nil
	case "flash-crowd":
		peak := s.PeakQPS
		if peak <= 0 {
			peak = 4 * s.QPS
		}
		c := FlashCrowd(s.QPS, peak, s.Duration)
		c.Seed = s.Seed
		return c, nil
	case "diurnal":
		peak := s.PeakQPS
		if peak <= 0 {
			peak = 3 * s.QPS
		}
		c := Diurnal(s.QPS, peak, s.Duration)
		c.Seed = s.Seed
		return c, nil
	default:
		return nil, fmt.Errorf("loadgen: unknown arrival process %q", s.Arrivals)
	}
}
