package fixture

import (
	"context"
	"testing"

	"willump/internal/model"
)

func TestClassificationFixture(t *testing.T) {
	fx, err := NewClassification(1, 800, 300, 300, 0.7, 200)
	if err != nil {
		t.Fatalf("NewClassification: %v", err)
	}
	if err := fx.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	if got := len(fx.Prog.A.IFVs); got != 2 {
		t.Errorf("IFVs = %d, want 2", got)
	}
	// The heavy generator must profile as more expensive than the cheap one
	// (this is the premise every cascade test builds on).
	cheap := fx.Prog.Prof.IFVCost(fx.Prog.A, 0)
	heavy := fx.Prog.Prof.IFVCost(fx.Prog.A, 1)
	if heavy <= cheap {
		t.Errorf("heavy IFV cost %v <= cheap %v", heavy, cheap)
	}
	if fx.Train.Inputs["cheap_id"].Len() != 800 {
		t.Errorf("train rows = %d", fx.Train.Inputs["cheap_id"].Len())
	}
}

func TestRegressionFixture(t *testing.T) {
	fx, err := NewRegression(2, 800, 300, 300, 200)
	if err != nil {
		t.Fatalf("NewRegression: %v", err)
	}
	x, err := fx.Prog.RunBatch(context.Background(), fx.Test.Inputs)
	if err != nil {
		t.Fatal(err)
	}
	mse := model.MSE(fx.Model.Predict(x), fx.Test.Y)
	var mean, variance float64
	for _, v := range fx.Test.Y {
		mean += v
	}
	mean /= float64(len(fx.Test.Y))
	for _, v := range fx.Test.Y {
		variance += (v - mean) * (v - mean)
	}
	variance /= float64(len(fx.Test.Y))
	if !(mse <= 0.5*variance) {
		t.Errorf("fixture model MSE %.4f vs variance %.4f: no signal learned", mse, variance)
	}
}

func TestHeavyOpMatchesPlainLookupValues(t *testing.T) {
	fx, err := NewClassification(3, 200, 50, 50, 0.7, 100)
	if err != nil {
		t.Fatal(err)
	}
	// The heavy op's burn must not change lookup values: recompute features
	// twice and compare.
	a, err := fx.Prog.RunBatch(context.Background(), fx.Test.Inputs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fx.Prog.RunBatch(context.Background(), fx.Test.Inputs)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < a.Rows(); r++ {
		for c := 0; c < a.Cols(); c++ {
			if a.At(r, c) != b.At(r, c) {
				t.Fatalf("nondeterministic feature at (%d,%d)", r, c)
			}
		}
	}
}
