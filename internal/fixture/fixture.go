// Package fixture builds small synthetic pipelines with the statistical
// structure Willump's optimizations exploit, for use in unit and integration
// tests: multiple feature generators with asymmetric computational costs and
// a planted mix of easy inputs (classifiable from the cheap features alone)
// and hard inputs (requiring the expensive features).
package fixture

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"willump/internal/feature"
	"willump/internal/graph"
	"willump/internal/model"
	"willump/internal/ops"
	"willump/internal/value"
	"willump/internal/weld"
)

// HeavyOp wraps a lookup-like transform with deliberate extra computation so
// that profiled costs differ strongly between feature generators. Work is
// deterministic in the key.
type HeavyOp struct {
	Table ops.Table
	Spin  int // busy-work iterations per row
	inner *ops.Lookup
}

// NewHeavyOp returns a lookup against table with Spin iterations of extra
// per-row work.
func NewHeavyOp(name string, table ops.Table, spin int) *HeavyOp {
	return &HeavyOp{Table: table, Spin: spin, inner: ops.NewLookup(name, table)}
}

// Name implements graph.Op.
func (h *HeavyOp) Name() string { return "heavy_" + h.inner.Name() }

// Compilable implements graph.Op.
func (h *HeavyOp) Compilable() bool { return true }

// Commutative implements graph.Op.
func (h *HeavyOp) Commutative() bool { return false }

func (h *HeavyOp) burn(k int64) float64 {
	x := float64(k%97) + 1
	for i := 0; i < h.Spin; i++ {
		x = math.Sqrt(x*x + 1)
	}
	return x
}

// Apply implements graph.Op.
func (h *HeavyOp) Apply(ins []value.Value) (value.Value, error) {
	out, err := h.inner.Apply(ins)
	if err != nil {
		return value.Value{}, err
	}
	m := out.Mat.(*feature.Dense)
	for r := 0; r < m.Rows(); r++ {
		// The burn result perturbs nothing (multiplied by 0) but cannot be
		// optimized away by the compiler because it lands in the matrix.
		m.Set(r, 0, m.At(r, 0)+0*h.burn(ins[0].Ints[r]))
	}
	return out, nil
}

// ApplyInto implements graph.IntoApplier, delegating to the wrapped
// lookup's reuse path so fixture pipelines exercise the executor's
// allocation-free contract end to end.
func (h *HeavyOp) ApplyInto(ins []value.Value, out *value.Value, scratch *any) error {
	if err := h.inner.ApplyInto(ins, out, scratch); err != nil {
		return err
	}
	m := out.Mat.(*feature.Dense)
	for r := 0; r < m.Rows(); r++ {
		m.Set(r, 0, m.At(r, 0)+0*h.burn(ins[0].Ints[r]))
	}
	return nil
}

// ApplyBoxed implements graph.Op.
func (h *HeavyOp) ApplyBoxed(ins []any) (any, error) {
	out, err := h.inner.ApplyBoxed(ins)
	if err != nil {
		return nil, err
	}
	vec := out.([]float64)
	vec[0] += 0 * h.burn(ins[0].(int64))
	return vec, nil
}

// Data is a generated dataset split.
type Data struct {
	Inputs map[string]value.Value
	Y      []float64
}

// Classification holds a complete fitted classification fixture.
type Classification struct {
	Prog       *weld.Program
	Model      model.Model
	Train      Data
	TrainX     feature.Matrix
	Valid      Data
	Test       Data
	CheapTable *ops.LocalTable
	HeavyTable *ops.LocalTable
}

// NewClassification builds, fits, and trains a two-generator classification
// pipeline:
//
//	cheap_id -> lookup(cheap)  \
//	                            concat -> GBDT
//	heavy_id -> heavy lookup   /
//
// Labels are decided by the cheap features for easyFrac of the rows and by
// the heavy features for the rest, so a small model on the cheap IFV is
// confident exactly on the easy rows.
func NewClassification(seed int64, nTrain, nValid, nTest int, easyFrac float64, spin int) (*Classification, error) {
	rng := rand.New(rand.NewSource(seed))
	const nKeys = 4096
	cheapRows := make(map[int64][]float64, nKeys)
	heavyRows := make(map[int64][]float64, nKeys)
	for k := int64(0); k < nKeys; k++ {
		cheapRows[k] = []float64{rng.NormFloat64(), rng.NormFloat64()}
		heavyRows[k] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	cheapTable := ops.NewLocalTable(2, cheapRows)
	heavyTable := ops.NewLocalTable(2, heavyRows)

	b := graph.NewBuilder()
	cheapID := b.Input("cheap_id")
	heavyID := b.Input("heavy_id")
	cf := b.Add("cheap_features", ops.NewLookup("cheap", cheapTable), cheapID)
	hf := b.Add("heavy_features", NewHeavyOp("heavy", heavyTable, spin), heavyID)
	cat := b.Add("concat", ops.NewConcat(), cf, hf)
	b.SetOutput(cat)
	g, err := b.Build()
	if err != nil {
		return nil, err
	}

	gen := func(n int) Data {
		cheapIDs := make([]int64, n)
		heavyIDs := make([]int64, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			ck := rng.Int63n(nKeys)
			hk := rng.Int63n(nKeys)
			cheapIDs[i] = ck
			heavyIDs[i] = hk
			cvec := cheapRows[ck]
			hvec := heavyRows[hk]
			if rng.Float64() < easyFrac {
				// Easy: label determined by a strong cheap-feature signal.
				if cvec[0]+0.5*cvec[1] > 0 {
					y[i] = 1
				}
			} else {
				// Hard: cheap features near the boundary don't decide; the
				// heavy features do.
				if hvec[0]-hvec[1] > 0 {
					y[i] = 1
				}
			}
		}
		return Data{
			Inputs: map[string]value.Value{
				"cheap_id": value.NewInts(cheapIDs),
				"heavy_id": value.NewInts(heavyIDs),
			},
			Y: y,
		}
	}
	train := gen(nTrain)
	valid := gen(nValid)
	test := gen(nTest)

	prog, err := weld.Compile(g)
	if err != nil {
		return nil, err
	}
	out, err := prog.Fit(context.Background(), train.Inputs)
	if err != nil {
		return nil, err
	}
	x, err := out.AsMatrix()
	if err != nil {
		return nil, err
	}
	m := model.NewGBDT(model.GBDTConfig{Task: model.Classification, Trees: 30, MaxDepth: 4, Seed: seed})
	if err := m.Train(x, train.Y); err != nil {
		return nil, err
	}
	return &Classification{
		Prog:       prog,
		Model:      m,
		Train:      train,
		TrainX:     x,
		Valid:      valid,
		Test:       test,
		CheapTable: cheapTable,
		HeavyTable: heavyTable,
	}, nil
}

// Regression holds a fitted regression fixture with the same topology.
type Regression struct {
	Prog   *weld.Program
	Model  model.Model
	Train  Data
	TrainX feature.Matrix
	Valid  Data
	Test   Data
}

// NewRegression mirrors NewClassification with a continuous target:
// y = cheap signal + smaller heavy signal + noise.
func NewRegression(seed int64, nTrain, nValid, nTest int, spin int) (*Regression, error) {
	rng := rand.New(rand.NewSource(seed))
	const nKeys = 4096
	cheapRows := make(map[int64][]float64, nKeys)
	heavyRows := make(map[int64][]float64, nKeys)
	for k := int64(0); k < nKeys; k++ {
		cheapRows[k] = []float64{rng.NormFloat64(), rng.NormFloat64()}
		heavyRows[k] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	cheapTable := ops.NewLocalTable(2, cheapRows)
	heavyTable := ops.NewLocalTable(2, heavyRows)

	b := graph.NewBuilder()
	cheapID := b.Input("cheap_id")
	heavyID := b.Input("heavy_id")
	cf := b.Add("cheap_features", ops.NewLookup("cheap", cheapTable), cheapID)
	hf := b.Add("heavy_features", NewHeavyOp("heavy", heavyTable, spin), heavyID)
	cat := b.Add("concat", ops.NewConcat(), cf, hf)
	b.SetOutput(cat)
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	gen := func(n int) Data {
		cheapIDs := make([]int64, n)
		heavyIDs := make([]int64, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			ck := rng.Int63n(nKeys)
			hk := rng.Int63n(nKeys)
			cheapIDs[i] = ck
			heavyIDs[i] = hk
			cvec := cheapRows[ck]
			hvec := heavyRows[hk]
			y[i] = 2*cvec[0] + cvec[1] + 0.3*hvec[0] + 0.1*rng.NormFloat64()
		}
		return Data{
			Inputs: map[string]value.Value{
				"cheap_id": value.NewInts(cheapIDs),
				"heavy_id": value.NewInts(heavyIDs),
			},
			Y: y,
		}
	}
	train := gen(nTrain)
	valid := gen(nValid)
	test := gen(nTest)
	prog, err := weld.Compile(g)
	if err != nil {
		return nil, err
	}
	out, err := prog.Fit(context.Background(), train.Inputs)
	if err != nil {
		return nil, err
	}
	x, err := out.AsMatrix()
	if err != nil {
		return nil, err
	}
	m := model.NewGBDT(model.GBDTConfig{Task: model.Regression, Trees: 30, MaxDepth: 4, Seed: seed})
	if err := m.Train(x, train.Y); err != nil {
		return nil, err
	}
	return &Regression{Prog: prog, Model: m, Train: train, TrainX: x, Valid: valid, Test: test}, nil
}

// Check verifies a fixture's model is meaningfully better than chance on its
// test split; fixtures failing this are useless for cascade tests.
func (c *Classification) Check() error {
	x, err := c.Prog.RunBatch(context.Background(), c.Test.Inputs)
	if err != nil {
		return err
	}
	acc := model.Accuracy(c.Model.Predict(x), c.Test.Y)
	if acc < 0.75 {
		return fmt.Errorf("fixture: test accuracy %.3f too low", acc)
	}
	return nil
}
