package store

import (
	"context"
	"errors"
	"math/rand/v2"
	"time"
)

// permanentError marks failures that retrying cannot fix (protocol or
// schema mismatches); transient network failures retry, these do not.
type permanentError struct{ err error }

func (e permanentError) Error() string { return e.err.Error() }
func (e permanentError) Unwrap() error { return e.err }

func isTransient(err error) bool {
	var pe permanentError
	if errors.As(err, &pe) {
		return false
	}
	// Context expiry is handled by the caller; everything else (dial
	// refused, reset, EOF mid-frame, deadline-expired read) is a transient
	// network condition worth one more try.
	return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

// lookupRetry runs the hedged attempt under the bounded-retry loop:
// transient failures back off (jittered exponential, capped) and retry;
// permanent failures and context expiry return immediately.
func (c *Client) lookupRetry(ctx context.Context, keys []int64) (rows [][]float64, hedgeStart time.Time, err error) {
	backoff := c.cfg.BackoffBase
	var lastErr error
	for try := 0; try <= c.cfg.Retries; try++ {
		if try > 0 {
			c.retries.Add(1)
			// Full-jitter backoff: uniform in (0, backoff], then double.
			d := time.Duration(rand.Int64N(int64(backoff))) + 1
			t := time.NewTimer(d)
			select {
			case <-ctx.Done():
				t.Stop()
				return nil, hedgeStart, ctx.Err()
			case <-t.C:
			}
			if backoff *= 2; backoff > c.cfg.BackoffMax {
				backoff = c.cfg.BackoffMax
			}
		}
		rows, hs, err := c.lookupHedged(ctx, keys)
		if !hs.IsZero() {
			hedgeStart = hs
		}
		if err == nil {
			return rows, hedgeStart, nil
		}
		lastErr = err
		if ctx.Err() != nil || !isTransient(err) {
			return nil, hedgeStart, err
		}
	}
	return nil, hedgeStart, lastErr
}

// lookupHedged runs one attempt, racing a speculative second attempt
// launched after the hedge delay when the first is slow. First response
// wins; the loser's context is canceled, which expires its connection
// deadline and unblocks its I/O. hedgeStart is non-zero iff a hedge was
// launched, whichever attempt won.
func (c *Client) lookupHedged(ctx context.Context, keys []int64) ([][]float64, time.Time, error) {
	if !c.cfg.Hedge {
		rows, err := c.attempt(ctx, keys)
		return rows, time.Time{}, err
	}
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	type result struct {
		rows  [][]float64
		err   error
		hedge bool
	}
	ch := make(chan result, 2) // buffered: the losing attempt must not block
	go func() {
		rows, err := c.attempt(actx, keys)
		ch <- result{rows, err, false}
	}()
	timer := time.NewTimer(c.hedgeDelay())
	defer timer.Stop()
	var hedgeStart time.Time
	launched := false
	outstanding := 1
	for {
		select {
		case r := <-ch:
			if r.err == nil {
				if r.hedge {
					c.hedgesWon.Add(1)
				}
				return r.rows, hedgeStart, nil
			}
			outstanding--
			if !launched || outstanding == 0 {
				// Primary failed before the hedge fired, or both attempts
				// failed: report to the retry loop.
				return nil, hedgeStart, r.err
			}
		case <-timer.C:
			if !launched {
				launched = true
				hedgeStart = time.Now()
				c.hedgesIssued.Add(1)
				outstanding++
				go func() {
					rows, err := c.attempt(actx, keys)
					ch <- result{rows, err, true}
				}()
			}
		case <-ctx.Done():
			return nil, hedgeStart, ctx.Err()
		}
	}
}

// hedgeDelay picks the speculative-attempt trigger: the configured fixed
// delay, or adaptively the p90 of recent attempt latencies clamped to
// [200µs, RequestTimeout/2].
func (c *Client) hedgeDelay() time.Duration {
	if c.cfg.HedgeDelay > 0 {
		return c.cfg.HedgeDelay
	}
	if c.lat.Total() < minAdaptiveObservations {
		return defaultHedgeDelay
	}
	d := time.Duration(c.lat.Quantile(90) * float64(time.Millisecond))
	if lo := 200 * time.Microsecond; d < lo {
		d = lo
	}
	if hi := c.cfg.RequestTimeout / 2; d > hi {
		d = hi
	}
	return d
}
