package store

import "sync"

// fallback is the bounded last-known-value cache answering degraded
// requests while the circuit breaker is open. Every healthy lookup
// refreshes it; a degraded lookup serves the last value seen for each key
// and a zero (default) vector for keys never seen. Capacity is bounded: a
// full cache updates known keys in place but admits no new ones, so memory
// stays fixed however large the key space is.
type fallback struct {
	capacity int
	mu       sync.RWMutex
	vals     map[int64][]float64
}

func (f *fallback) init(capacity int) {
	f.capacity = capacity
	if capacity > 0 {
		f.vals = make(map[int64][]float64, min(capacity, 1024))
	}
}

// store refreshes the cache from a healthy lookup's results.
func (f *fallback) store(keys []int64, rows [][]float64) {
	if f.capacity <= 0 {
		return
	}
	f.mu.Lock()
	for i, k := range keys {
		if rows[i] == nil {
			continue
		}
		if dst, ok := f.vals[k]; ok {
			copy(dst, rows[i])
			continue
		}
		if len(f.vals) >= f.capacity {
			continue
		}
		cp := make([]float64, len(rows[i]))
		copy(cp, rows[i])
		f.vals[k] = cp
	}
	f.mu.Unlock()
}

// rows answers a degraded lookup: cached values where known, zero vectors
// otherwise. Returned rows are copies; callers own them.
func (f *fallback) rows(keys []int64, dim int) [][]float64 {
	out := make([][]float64, len(keys))
	if f.capacity <= 0 {
		return out // all nil: lookup substitutes default vectors
	}
	f.mu.RLock()
	for i, k := range keys {
		if v, ok := f.vals[k]; ok {
			cp := make([]float64, dim)
			copy(cp, v)
			out[i] = cp
		}
	}
	f.mu.RUnlock()
	return out
}
