package store_test

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"willump/internal/kvstore"
	"willump/internal/store"
)

// newTestStore starts a kvstore server holding rows of width dim and
// returns its address. The server is closed with the test.
func newTestStore(t *testing.T, dim int, latency time.Duration, rows map[int64][]float64) (*kvstore.Server, string) {
	t.Helper()
	srv := kvstore.NewServer(dim, latency)
	if rows != nil {
		if err := srv.Load(rows); err != nil {
			t.Fatalf("Load: %v", err)
		}
	}
	addr, err := srv.Start()
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr
}

func dialTest(t *testing.T, cfg store.Config) *store.Client {
	t.Helper()
	c, err := store.Dial(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestDialProbesDimAndValidates(t *testing.T) {
	_, addr := newTestStore(t, 3, 0, nil)
	c := dialTest(t, store.Config{Addr: addr})
	if c.Dim() != 3 {
		t.Errorf("Dim() = %d, want 3 (probed from server)", c.Dim())
	}
	if err := c.CheckSchema(3); err != nil {
		t.Errorf("CheckSchema(3): %v", err)
	}
	if err := c.CheckSchema(7); err == nil {
		t.Error("CheckSchema(7) accepted a width mismatch")
	}
	// An explicit expectation mismatch is a dial-time error, so artifact
	// bindings fail fast with a descriptive message instead of on the first
	// prediction.
	if _, err := store.Dial(context.Background(), store.Config{Addr: addr, ExpectDim: 5}); err == nil {
		t.Error("Dial with ExpectDim 5 against a 3-wide server succeeded")
	} else if !strings.Contains(err.Error(), "3") || !strings.Contains(err.Error(), "5") {
		t.Errorf("dim mismatch error %q does not name both widths", err)
	}
}

func TestLookupBatchRoundtrip(t *testing.T) {
	rows := map[int64][]float64{
		1: {1, 10},
		2: {2, 20},
		5: {5, 50},
	}
	_, addr := newTestStore(t, 2, 0, rows)
	c := dialTest(t, store.Config{Addr: addr})
	got, err := c.LookupBatchCtx(context.Background(), []int64{5, 999, 1})
	if err != nil {
		t.Fatalf("LookupBatchCtx: %v", err)
	}
	if len(got) != 3 || got[0][1] != 50 || got[1] != nil || got[2][0] != 1 {
		t.Errorf("rows = %v, want [[5 50] nil [1 10]]", got)
	}
	if n := c.Requests(); n != 1 {
		t.Errorf("Requests() = %d, want 1 (one pipelined round trip per batch)", n)
	}
	// The deprecated context-free entry point still works.
	got, err = c.LookupBatch([]int64{2})
	if err != nil || got[0][1] != 20 {
		t.Errorf("LookupBatch = %v, %v; want [[2 20]]", got, err)
	}
}

func TestLookupHonorsContextDeadline(t *testing.T) {
	srv, addr := newTestStore(t, 1, 0, map[int64][]float64{1: {1}})
	c := dialTest(t, store.Config{Addr: addr, Retries: -1, BreakerThreshold: -1})
	srv.SetLatencyFunc(func() time.Duration { return 300 * time.Millisecond })
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := c.LookupBatchCtx(ctx, []int64{1}); err == nil {
		t.Fatal("lookup against a stalled server returned before its context expired")
	}
	if el := time.Since(start); el > 200*time.Millisecond {
		t.Errorf("lookup blocked %v past a 20ms context deadline", el)
	}
}

// TestRetriesTransientConnDrops drops the next two accepted connections:
// the lookups that land on them must transparently retry and succeed.
func TestRetriesTransientConnDrops(t *testing.T) {
	srv, addr := newTestStore(t, 1, 5*time.Millisecond, map[int64][]float64{7: {7}})
	c := dialTest(t, store.Config{Addr: addr, BreakerThreshold: -1})
	srv.DropNextConns(2)

	// Dial pooled exactly one connection, so with four concurrent lookups
	// three dial fresh and two of those dials are dropped. The 5ms server
	// latency holds the lookups open long enough that all four acquire
	// connections before any is returned to the pool.
	start := make(chan struct{})
	errs := make([]error, 4)
	var wg sync.WaitGroup
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			rows, err := c.LookupBatchCtx(context.Background(), []int64{7})
			if err == nil && rows[0][0] != 7 {
				err = context.Canceled // wrong data: flag it
			}
			errs[i] = err
		}(i)
	}
	close(start)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("lookup %d: %v", i, err)
		}
	}
	// Each dropped connection fails exactly one attempt, and every failed
	// attempt triggers exactly one retry.
	if st := c.StoreStats(); st.Retries != 2 {
		t.Errorf("Retries = %d, want 2 (one per dropped conn)", st.Retries)
	}
}

// TestHedgingCutsTailLatency injects deterministic tail latency (every 4th
// MGET sleeps 50ms) and checks that hedged lookups dodge it: the hedge
// fires after 1ms, lands on a fast ordinal, and wins.
func TestHedgingCutsTailLatency(t *testing.T) {
	srv, addr := newTestStore(t, 1, 0, map[int64][]float64{3: {3}})
	const slow = 50 * time.Millisecond
	var ordinal atomic.Int64
	srv.SetLatencyFunc(func() time.Duration {
		if ordinal.Add(1)%4 == 0 {
			return slow
		}
		return 0
	})

	run := func(c *store.Client, n int) time.Duration {
		var worst time.Duration
		for i := 0; i < n; i++ {
			start := time.Now()
			if _, err := c.LookupBatchCtx(context.Background(), []int64{3}); err != nil {
				t.Fatalf("lookup %d: %v", i, err)
			}
			if el := time.Since(start); el > worst {
				worst = el
			}
		}
		return worst
	}

	plain := dialTest(t, store.Config{Addr: addr, Retries: -1})
	worstPlain := run(plain, 24)
	if worstPlain < slow {
		t.Fatalf("unhedged worst latency %v, want >= %v (latency injection broken)", worstPlain, slow)
	}

	hedged := dialTest(t, store.Config{Addr: addr, Retries: -1, Hedge: true, HedgeDelay: time.Millisecond})
	worstHedged := run(hedged, 24)
	if worstHedged >= slow/2 {
		t.Errorf("hedged worst latency %v, want well under the %v tail", worstHedged, slow)
	}
	st := hedged.StoreStats()
	if st.HedgesIssued == 0 || st.HedgesWon == 0 {
		t.Errorf("hedge counters = issued %d / won %d, want both > 0", st.HedgesIssued, st.HedgesWon)
	}
}

// TestBreakerDegradesAndRecovers walks the full breaker cycle: consecutive
// failures open it, open-breaker lookups succeed with last-known values
// instead of erroring, and a half-open probe closes it once the store heals.
func TestBreakerDegradesAndRecovers(t *testing.T) {
	srv, addr := newTestStore(t, 2, 0, map[int64][]float64{1: {1, 10}, 2: {2, 20}})
	c := dialTest(t, store.Config{
		Addr:             addr,
		RequestTimeout:   25 * time.Millisecond,
		Retries:          -1,
		BreakerThreshold: 2,
		BreakerCooldown:  50 * time.Millisecond,
	})
	ctx := context.Background()

	// Healthy lookup: warms the fallback cache.
	if _, err := c.LookupBatchCtx(ctx, []int64{1, 2}); err != nil {
		t.Fatalf("warm lookup: %v", err)
	}

	// Stall the server: attempts now exceed the 25ms request timeout.
	srv.SetLatencyFunc(func() time.Duration { return 500 * time.Millisecond })
	if _, err := c.LookupBatchCtx(ctx, []int64{1}); err == nil {
		t.Fatal("first failure surfaced no error (breaker should still be closed)")
	}
	// Second consecutive failure reaches the threshold; the request that
	// opens the breaker itself degrades rather than erroring.
	rows, err := c.LookupBatchCtx(ctx, []int64{1, 2, 99})
	if err != nil {
		t.Fatalf("breaker-opening lookup errored instead of degrading: %v", err)
	}
	if rows[0][1] != 10 || rows[1][0] != 2 {
		t.Errorf("degraded rows = %v, want last-known values for keys 1,2", rows)
	}
	// A key never seen healthy degrades like a missing key: nil row, which
	// downstream materialization turns into a default (zero) vector.
	if rows[2] != nil {
		t.Errorf("degraded row for unseen key = %v, want nil", rows[2])
	}
	st := c.StoreStats()
	if st.BreakerState != "open" || st.BreakerOpens != 1 || st.Degraded == 0 {
		t.Errorf("after open: state=%q opens=%d degraded=%d, want open/1/>0", st.BreakerState, st.BreakerOpens, st.Degraded)
	}

	// While open, lookups skip the network entirely and stay fast.
	start := time.Now()
	if rows, err = c.LookupBatchCtx(ctx, []int64{2}); err != nil || rows[0][1] != 20 {
		t.Errorf("open-breaker lookup = %v, %v; want cached [2 20]", rows, err)
	}
	if el := time.Since(start); el > 10*time.Millisecond {
		t.Errorf("open-breaker lookup took %v, should not touch the network", el)
	}

	// Heal the server and wait out the cooldown: the next lookup is the
	// half-open probe, succeeds, and closes the breaker.
	srv.SetLatencyFunc(nil)
	time.Sleep(80 * time.Millisecond)
	rows, err = c.LookupBatchCtx(ctx, []int64{1})
	if err != nil || rows[0][1] != 10 {
		t.Fatalf("post-recovery lookup = %v, %v; want fresh [1 10]", rows, err)
	}
	if st := c.StoreStats(); st.BreakerState != "closed" {
		t.Errorf("breaker state after recovery = %q, want closed", st.BreakerState)
	}
}

// TestStartLookupAsync covers the prefetch handle: results published before
// Wait returns, and an expired Wait context cancels the in-flight fetch.
func TestStartLookupAsync(t *testing.T) {
	srv, addr := newTestStore(t, 1, 0, map[int64][]float64{4: {4}})
	c := dialTest(t, store.Config{Addr: addr, Retries: -1, BreakerThreshold: -1})

	p := c.StartLookup(context.Background(), []int64{4})
	rows, err := p.Wait(context.Background())
	if err != nil || rows[0][0] != 4 {
		t.Fatalf("Wait = %v, %v; want [[4]]", rows, err)
	}

	srv.SetLatencyFunc(func() time.Duration { return 300 * time.Millisecond })
	p = c.StartLookup(context.Background(), []int64{4})
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := p.Wait(ctx); err == nil {
		t.Error("Wait returned no error after its context expired mid-fetch")
	}
	if el := time.Since(start); el > 200*time.Millisecond {
		t.Errorf("Wait blocked %v past a 15ms deadline", el)
	}

	// Cancel abandons an in-flight fetch without waiting.
	p = c.StartLookup(context.Background(), []int64{4})
	p.Cancel()
}

// TestConcurrentPooledLookups hammers one client from many goroutines with
// hedging enabled; run under -race in CI it pins the pool, breaker, window,
// and fallback for data races.
func TestConcurrentPooledLookups(t *testing.T) {
	const dim = 4
	rows := make(map[int64][]float64, 64)
	for k := int64(0); k < 64; k++ {
		rows[k] = []float64{float64(k), float64(k) * 2, float64(k) * 3, float64(k) * 4}
	}
	_, addr := newTestStore(t, dim, 0, rows)
	c := dialTest(t, store.Config{Addr: addr, Hedge: true, HedgeDelay: 100 * time.Microsecond})

	var wg sync.WaitGroup
	var failures atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				keys := []int64{int64((g*50 + i) % 64), int64((g + i) % 64)}
				got, err := c.LookupBatchCtx(context.Background(), keys)
				if err != nil {
					failures.Add(1)
					continue
				}
				for j, k := range keys {
					if got[j][0] != float64(k) || got[j][3] != float64(k)*4 {
						failures.Add(1)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if n := failures.Load(); n != 0 {
		t.Errorf("%d failed or corrupt concurrent lookups", n)
	}
	if st := c.StoreStats(); st.Requests < 400 {
		t.Errorf("Requests = %d, want >= 400", st.Requests)
	}
}
