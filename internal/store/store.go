// Package store implements the production remote feature-store client that
// replaces the toy kvstore.Client on the predict path. It speaks the same
// wire protocol (one pipelined MGET round trip per batch, the property the
// paper's Table 2 request counts measure) but owns everything a production
// deployment needs around that round trip:
//
//   - a connection pool with per-request context deadlines, so a stalled
//     store can never wedge a prediction;
//   - bounded retries with jittered exponential backoff on transient
//     connection failures;
//   - request hedging against tail latency: a speculative second attempt
//     after an adaptive p90 delay, first response wins, loser canceled;
//   - a circuit breaker that degrades to cached/default feature values
//     while the store is down — requests succeed (marked degraded) instead
//     of erroring;
//   - async prefetch handles (ops.AsyncTable) the weld runtime uses to
//     overlap the network round trip with local feature compute.
//
// The client implements ops.Table, ops.CtxTable, ops.AsyncTable,
// ops.SchemaChecker and ops.StoreStatsReporter, so it drops into lookup
// operators anywhere a kvstore.Client did.
package store

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"willump/internal/kvstore"
	"willump/internal/metrics"
	"willump/internal/ops"
	"willump/internal/trace"
)

// Config carries the client knobs. The zero value of every field selects a
// production-reasonable default; only Addr is required.
type Config struct {
	// Addr is the store's TCP address (required).
	Addr string
	// ExpectDim, when non-zero, is validated against the server's table
	// width at dial time; zero accepts whatever the server reports.
	ExpectDim int
	// PoolSize caps idle pooled connections (default 8).
	PoolSize int
	// DialTimeout bounds connection establishment (default 2s).
	DialTimeout time.Duration
	// RequestTimeout bounds one multi-get attempt when the request context
	// carries no tighter deadline (default 1s).
	RequestTimeout time.Duration
	// Retries is the number of re-attempts after a transient failure
	// (default 2; negative disables retries).
	Retries int
	// BackoffBase / BackoffMax shape the jittered exponential backoff
	// between retries (defaults 2ms / 100ms).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Hedge enables tail-latency hedging: when an attempt is slower than
	// the hedge delay, a second attempt races it and the first response
	// wins (default off; DefaultsHedged turns it on).
	Hedge bool
	// HedgeDelay fixes the hedge trigger delay. Zero selects an adaptive
	// delay: the p90 of recent attempt latencies, clamped to
	// [200µs, RequestTimeout/2].
	HedgeDelay time.Duration
	// BreakerThreshold is the consecutive-failure count that opens the
	// circuit breaker (default 5; negative disables the breaker).
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before a
	// half-open probe is allowed through (default 1s).
	BreakerCooldown time.Duration
	// FallbackCapacity caps the last-known-value cache used to answer
	// degraded requests while the breaker is open (default 4096 keys;
	// negative disables the cache, degrading to zero vectors only).
	FallbackCapacity int
}

func (cfg Config) withDefaults() Config {
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = 8
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = time.Second
	}
	if cfg.Retries == 0 {
		cfg.Retries = 2
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 2 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 100 * time.Millisecond
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = 5
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = time.Second
	}
	if cfg.FallbackCapacity == 0 {
		cfg.FallbackCapacity = 4096
	}
	return cfg
}

// latencyWindow is the number of recent attempt latencies kept for the
// adaptive hedge delay and the reported p50/p99.
const latencyWindow = 1024

// minAdaptiveObservations gates the adaptive hedge delay: until this many
// attempts have completed, the fallback delay is used.
const minAdaptiveObservations = 16

// defaultHedgeDelay is the hedge trigger before the latency window has
// enough observations to adapt.
const defaultHedgeDelay = 2 * time.Millisecond

// Client is a pooled, hedged, breaker-protected remote feature-store
// client. It is safe for concurrent use.
type Client struct {
	cfg Config
	dim int

	mu    sync.Mutex
	conns []*conn

	lat *metrics.Window // successful attempt latency, milliseconds

	requests     atomic.Int64
	retries      atomic.Int64
	hedgesIssued atomic.Int64
	hedgesWon    atomic.Int64
	degraded     atomic.Int64
	inflight     atomic.Int64

	brk breaker
	fb  fallback

	closed atomic.Bool
}

// Dial connects to the store, probes its table width, and returns a ready
// client. When cfg.ExpectDim is non-zero a width mismatch is a dial error,
// so artifact bindings fail fast with a descriptive message.
func Dial(ctx context.Context, cfg Config) (*Client, error) {
	cfg = cfg.withDefaults()
	if cfg.Addr == "" {
		return nil, fmt.Errorf("store: no address configured")
	}
	c := &Client{
		cfg: cfg,
		lat: metrics.NewWindow(latencyWindow),
	}
	c.brk.init(cfg.BreakerThreshold, cfg.BreakerCooldown)
	c.fb.init(cfg.FallbackCapacity)
	cn, err := c.dialConn(ctx)
	if err != nil {
		return nil, err
	}
	dim, err := cn.probeDim(ctx, cfg.RequestTimeout)
	if err != nil {
		cn.close()
		return nil, fmt.Errorf("store: dim probe of %s: %w", cfg.Addr, err)
	}
	if cfg.ExpectDim != 0 && dim != cfg.ExpectDim {
		cn.close()
		return nil, fmt.Errorf("store: server %s holds %d-wide rows, caller expects %d", cfg.Addr, dim, cfg.ExpectDim)
	}
	c.dim = dim
	c.put(cn)
	return c, nil
}

// Dim implements ops.Table.
func (c *Client) Dim() int { return c.dim }

// Requests implements ops.Table: multi-get calls that reached the network.
func (c *Client) Requests() int64 { return c.requests.Load() }

// ResetRequests zeroes the request counter (between experiment phases).
func (c *Client) ResetRequests() { c.requests.Store(0) }

// CheckSchema implements ops.SchemaChecker. The width was probed from the
// server at dial time, so this is a local comparison.
func (c *Client) CheckSchema(dim int) error {
	if c.dim != dim {
		return fmt.Errorf("store: server %s holds %d-wide rows, lookup expects %d", c.cfg.Addr, c.dim, dim)
	}
	return nil
}

// StoreStats implements ops.StoreStatsReporter.
func (c *Client) StoreStats() ops.StoreStats {
	qs := c.lat.Quantiles(50, 99)
	return ops.StoreStats{
		Requests:     c.requests.Load(),
		Retries:      c.retries.Load(),
		HedgesIssued: c.hedgesIssued.Load(),
		HedgesWon:    c.hedgesWon.Load(),
		Degraded:     c.degraded.Load(),
		BreakerOpens: c.brk.opens.Load(),
		Inflight:     c.inflight.Load(),
		BreakerState: c.brk.stateString(),
		P50Millis:    qs[0],
		P99Millis:    qs[1],
	}
}

// LookupBatch implements ops.Table (context-free callers: interpreted
// point path, fit-time profiling).
func (c *Client) LookupBatch(keys []int64) ([][]float64, error) {
	return c.LookupBatchCtx(context.Background(), keys)
}

// LookupBatchCtx implements ops.CtxTable: one robust multi-get under the
// request context, recording store:mget / store:hedge trace spans on the
// calling goroutine.
func (c *Client) LookupBatchCtx(ctx context.Context, keys []int64) ([][]float64, error) {
	start := time.Now()
	rows, hedgeStart, err := c.lookup(ctx, keys)
	if tr := trace.FromContext(ctx); tr != nil {
		tr.Record(trace.StageStoreMGet, start)
		if !hedgeStart.IsZero() {
			tr.Record(trace.StageStoreHedge, hedgeStart)
		}
	}
	return rows, err
}

// StartLookup implements ops.AsyncTable: the robust multi-get runs on a
// background goroutine while the caller computes local features; trace
// spans are recorded by Wait, on the waiter's goroutine.
func (c *Client) StartLookup(ctx context.Context, keys []int64) ops.PendingLookup {
	pctx, cancel := context.WithCancel(ctx)
	p := &pending{c: c, cancel: cancel, done: make(chan struct{}), start: time.Now()}
	go func() {
		defer close(p.done)
		p.rows, p.hedgeStart, p.err = c.lookup(pctx, keys)
	}()
	return p
}

// lookup is the robust multi-get: breaker gate, retry loop, hedged
// attempts, fallback fill. It never touches the trace (callers record
// spans on a request-owned goroutine). hedgeStart is non-zero when a hedge
// was launched, regardless of which attempt won.
func (c *Client) lookup(ctx context.Context, keys []int64) (rows [][]float64, hedgeStart time.Time, err error) {
	if c.closed.Load() {
		return nil, time.Time{}, fmt.Errorf("store: client closed")
	}
	if len(keys) == 0 {
		return nil, time.Time{}, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, time.Time{}, err
	}
	c.inflight.Add(1)
	defer c.inflight.Add(-1)
	if !c.brk.allow() {
		// Breaker open: degrade to last-known/default values, but still
		// succeed. The caller sees a normal (degraded) prediction.
		c.degraded.Add(1)
		return c.fb.rows(keys, c.dim), time.Time{}, nil
	}
	start := time.Now()
	rows, hedgeStart, err = c.lookupRetry(ctx, keys)
	if err != nil {
		c.brk.failure()
		if c.brk.isOpen() && ctx.Err() == nil {
			// The failure that opened (or kept open) the breaker: this
			// request degrades too rather than erroring.
			c.degraded.Add(1)
			return c.fb.rows(keys, c.dim), hedgeStart, nil
		}
		return nil, hedgeStart, err
	}
	c.brk.success()
	c.lat.Observe(float64(time.Since(start)) / float64(time.Millisecond))
	c.fb.store(keys, rows)
	return rows, hedgeStart, nil
}

// Close closes all pooled connections. In-flight lookups fail.
func (c *Client) Close() error {
	c.closed.Store(true)
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, cn := range c.conns {
		cn.close()
	}
	c.conns = nil
	return nil
}

// conn is one pooled TCP connection.
type conn struct {
	c net.Conn
}

func (cn *conn) close() { cn.c.Close() }

func (c *Client) dialConn(ctx context.Context) (*conn, error) {
	d := net.Dialer{Timeout: c.cfg.DialTimeout}
	nc, err := d.DialContext(ctx, "tcp", c.cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("store: dial %s: %w", c.cfg.Addr, err)
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return &conn{c: nc}, nil
}

// get pops an idle pooled connection or dials a fresh one.
func (c *Client) get(ctx context.Context) (*conn, error) {
	c.mu.Lock()
	if n := len(c.conns); n > 0 {
		cn := c.conns[n-1]
		c.conns = c.conns[:n-1]
		c.mu.Unlock()
		return cn, nil
	}
	c.mu.Unlock()
	return c.dialConn(ctx)
}

// put returns a clean connection to the idle pool.
func (c *Client) put(cn *conn) {
	c.mu.Lock()
	if len(c.conns) < c.cfg.PoolSize && !c.closed.Load() {
		c.conns = append(c.conns, cn)
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	cn.close()
}

// probeDim asks the server for its table width ('D' frame).
func (cn *conn) probeDim(ctx context.Context, timeout time.Duration) (int, error) {
	dl := time.Now().Add(timeout)
	if d, ok := ctx.Deadline(); ok && d.Before(dl) {
		dl = d
	}
	cn.c.SetDeadline(dl)
	defer cn.c.SetDeadline(time.Time{})
	if _, err := cn.c.Write(kvstore.AppendDimProbe(nil)); err != nil {
		return 0, err
	}
	return kvstore.ReadDimResponse(cn.c)
}

// attempt is one multi-get over one connection, bounded by the earlier of
// ctx's deadline and the configured request timeout. A canceled or failed
// attempt discards its connection; only clean exchanges pool the conn.
func (c *Client) attempt(ctx context.Context, keys []int64) ([][]float64, error) {
	cn, err := c.get(ctx)
	if err != nil {
		return nil, err
	}
	dl := time.Now().Add(c.cfg.RequestTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(dl) {
		dl = d
	}
	cn.c.SetDeadline(dl)
	stop := context.AfterFunc(ctx, func() {
		cn.c.SetDeadline(time.Unix(1, 0)) // expire: unblock in-flight I/O
	})
	rows, err := cn.mget(keys, c.dim)
	if !stop() {
		// Cancel fired mid-exchange; the conn deadline is poisoned.
		cn.close()
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		if err != nil {
			return nil, err
		}
		return nil, context.Canceled
	}
	if err != nil {
		cn.close()
		return nil, err
	}
	cn.c.SetDeadline(time.Time{})
	c.put(cn)
	c.requests.Add(1)
	return rows, nil
}

func (cn *conn) mget(keys []int64, dim int) ([][]float64, error) {
	req := kvstore.AppendMGet(make([]byte, 0, 5+8*len(keys)), keys)
	if _, err := cn.c.Write(req); err != nil {
		return nil, fmt.Errorf("store: write: %w", err)
	}
	return kvstore.ReadMGetResponse(cn.c, len(keys), dim)
}
