package store

import (
	"sync/atomic"
	"time"
)

// Breaker states. Transitions: closed --threshold consecutive failures-->
// open --cooldown--> half-open (one probe) --> closed on success, open on
// failure.
const (
	brkClosed int32 = iota
	brkOpen
	brkHalfOpen
)

// breaker is a lock-free circuit breaker. While open, lookups skip the
// network entirely and degrade to fallback values; after the cooldown a
// single half-open probe decides whether to close again.
type breaker struct {
	threshold int32
	cooldown  time.Duration

	state    atomic.Int32
	fails    atomic.Int32 // consecutive failures while closed
	openedAt atomic.Int64 // unix nanos of the open transition
	opens    atomic.Int64 // cumulative closed/half-open -> open transitions
}

func (b *breaker) init(threshold int, cooldown time.Duration) {
	if threshold < 0 {
		// Breaker disabled: an unreachable threshold keeps it closed.
		threshold = 1<<31 - 1
	}
	b.threshold = int32(threshold)
	b.cooldown = cooldown
}

// allow reports whether a lookup may hit the network. While open it returns
// false until the cooldown elapses, then admits exactly one caller as the
// half-open probe.
func (b *breaker) allow() bool {
	switch b.state.Load() {
	case brkClosed:
		return true
	case brkOpen:
		if time.Now().UnixNano()-b.openedAt.Load() >= int64(b.cooldown) &&
			b.state.CompareAndSwap(brkOpen, brkHalfOpen) {
			return true // this caller is the probe
		}
		return false
	default: // half-open: a probe is already in flight
		return false
	}
}

// success records a healthy round trip: the breaker closes and the failure
// streak resets.
func (b *breaker) success() {
	b.fails.Store(0)
	b.state.Store(brkClosed)
}

// failure records a failed lookup (after retries were exhausted), opening
// the breaker when the consecutive-failure threshold is reached or when a
// half-open probe fails.
func (b *breaker) failure() {
	now := time.Now().UnixNano()
	if b.state.CompareAndSwap(brkHalfOpen, brkOpen) {
		b.openedAt.Store(now)
		b.opens.Add(1)
		return
	}
	if b.fails.Add(1) >= b.threshold && b.state.CompareAndSwap(brkClosed, brkOpen) {
		b.openedAt.Store(now)
		b.opens.Add(1)
	}
}

func (b *breaker) isOpen() bool { return b.state.Load() == brkOpen }

func (b *breaker) stateString() string {
	switch b.state.Load() {
	case brkOpen:
		return "open"
	case brkHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}
