package store

import (
	"context"
	"time"

	"willump/internal/ops"
	"willump/internal/trace"
)

// pending is one in-flight async prefetch (ops.PendingLookup). The fetch
// runs on a background goroutine; results are published before done is
// closed, so Wait's read happens-after the write. Trace spans are recorded
// only in Wait, on the waiting request's goroutine — the background
// goroutine never touches the trace, which may be recycled the moment the
// request finishes.
type pending struct {
	c      *Client
	cancel context.CancelFunc
	done   chan struct{}

	start      time.Time
	rows       [][]float64
	hedgeStart time.Time
	err        error
}

// Wait implements ops.PendingLookup. A ctx expiry cancels the fetch and
// still waits for the background goroutine to finish (its connection
// deadline is expired by the cancel, so this is prompt), keeping the
// result fields race-free.
func (p *pending) Wait(ctx context.Context) ([][]float64, error) {
	select {
	case <-p.done:
	case <-ctx.Done():
		p.cancel()
		<-p.done
	}
	if tr := trace.FromContext(ctx); tr != nil {
		tr.Record(trace.StageStoreMGet, p.start)
		if !p.hedgeStart.IsZero() {
			tr.Record(trace.StageStoreHedge, p.hedgeStart)
		}
	}
	return p.rows, p.err
}

// Cancel implements ops.PendingLookup: abandon without waiting.
func (p *pending) Cancel() { p.cancel() }

var _ ops.PendingLookup = (*pending)(nil)
var _ ops.AsyncTable = (*Client)(nil)
var _ ops.CtxTable = (*Client)(nil)
var _ ops.SchemaChecker = (*Client)(nil)
var _ ops.StoreStatsReporter = (*Client)(nil)
