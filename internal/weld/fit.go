package weld

import (
	"context"
	"fmt"
	"time"

	"willump/internal/graph"
	"willump/internal/ops"
	"willump/internal/value"
)

// Fit runs the pipeline over the training inputs, fitting every stateful
// operator (vocabularies, encoders, scalers) in dataflow order, profiling
// per-node runtimes (the cascades cost model), recording IFV output widths
// and column spans, and finally fusing the compiled plan. It returns the
// full training-set feature matrix for model training. The context is
// checked between nodes, so cancellation aborts a long fit promptly.
func (p *Program) Fit(ctx context.Context, inputs map[string]value.Value) (value.Value, error) {
	vals, _, err := p.resolveInputs(inputs)
	if err != nil {
		return value.Value{}, err
	}
	// Unfused execution in block order with per-node timing.
	for _, id := range p.Order {
		if err := ctx.Err(); err != nil {
			return value.Value{}, err
		}
		n := p.G.Node(id)
		if n.IsSource() {
			continue
		}
		ins := make([]value.Value, len(n.Inputs))
		for i, in := range n.Inputs {
			ins[i] = vals[in]
		}
		if f, ok := n.Op.(ops.Fitter); ok && !f.Fitted() {
			if err := f.Fit(ins); err != nil {
				return value.Value{}, fmt.Errorf("weld: fitting node %d (%s): %w", id, n.Label, err)
			}
		}
		start := time.Now()
		out, err := n.Op.Apply(ins)
		if err != nil {
			return value.Value{}, fmt.Errorf("weld: node %d (%s): %w", id, n.Label, err)
		}
		p.Prof.addNode(id, out.Len(), time.Since(start).Seconds())
		vals[id] = out
	}

	// Record IFV widths and column spans.
	p.Widths = make(map[graph.NodeID]int, len(p.A.IFVs))
	for _, ifv := range p.A.IFVs {
		p.Widths[ifv.Root] = vals[ifv.Root].Width()
	}
	spans, err := p.A.ColumnSpans(p.Widths)
	if err != nil {
		return value.Value{}, fmt.Errorf("weld: %w", err)
	}
	p.Spans = spans

	p.fitted = true
	p.Fuse()
	return vals[p.G.Output()], nil
}
