package weld

import (
	"sync"

	"willump/internal/artifact"
	"willump/internal/graph"
)

// Profile records per-node execution statistics. Node timings are gathered
// during Fit (unfused, sequential execution over the training set), exactly
// as the paper estimates computational cost: "by measuring the runtime of
// the nodes in the IFV's feature generator during model training" (section
// 4.2). Driver time accumulates whenever compiled execution crosses into the
// interpreted runtime and back (marshaling, section 5.2 "Drivers").
type Profile struct {
	mu sync.Mutex

	nodeSeconds map[graph.NodeID]float64
	nodeRows    map[graph.NodeID]int64

	driverSeconds float64
	totalSeconds  float64
}

// NewProfile returns an empty profile.
func NewProfile() *Profile {
	return &Profile{
		nodeSeconds: make(map[graph.NodeID]float64),
		nodeRows:    make(map[graph.NodeID]int64),
	}
}

// addNode records an execution of node id over rows taking sec seconds.
func (p *Profile) addNode(id graph.NodeID, rows int, sec float64) {
	p.mu.Lock()
	p.nodeSeconds[id] += sec
	p.nodeRows[id] += int64(rows)
	p.mu.Unlock()
}

// addDriver records marshaling time.
func (p *Profile) addDriver(sec float64) {
	p.mu.Lock()
	p.driverSeconds += sec
	p.mu.Unlock()
}

// addTotal records end-to-end execution time.
func (p *Profile) addTotal(sec float64) {
	p.mu.Lock()
	p.totalSeconds += sec
	p.mu.Unlock()
}

// Clone returns an independent copy of the profile's measurements.
func (p *Profile) Clone() *Profile {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := NewProfile()
	for id, sec := range p.nodeSeconds {
		out.nodeSeconds[id] = sec
	}
	for id, rows := range p.nodeRows {
		out.nodeRows[id] = rows
	}
	out.driverSeconds = p.driverSeconds
	out.totalSeconds = p.totalSeconds
	return out
}

// Merge folds from's measurements into p. Costs are additive: merged node
// seconds and rows accumulate, so per-row costs become the sample-weighted
// blend of both profiles.
func (p *Profile) Merge(from *Profile) {
	from.mu.Lock()
	defer from.mu.Unlock()
	p.mu.Lock()
	defer p.mu.Unlock()
	for id, sec := range from.nodeSeconds {
		p.nodeSeconds[id] += sec
	}
	for id, rows := range from.nodeRows {
		p.nodeRows[id] += rows
	}
	p.driverSeconds += from.driverSeconds
	p.totalSeconds += from.totalSeconds
}

// drain moves the profile's measurements into a fresh profile, leaving p
// empty. Adoption uses it so the same measurement is never merged twice.
func (p *Profile) drain() *Profile {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := &Profile{
		nodeSeconds:   p.nodeSeconds,
		nodeRows:      p.nodeRows,
		driverSeconds: p.driverSeconds,
		totalSeconds:  p.totalSeconds,
	}
	p.nodeSeconds = make(map[graph.NodeID]float64)
	p.nodeRows = make(map[graph.NodeID]int64)
	p.driverSeconds = 0
	p.totalSeconds = 0
	return out
}

// NodeCost returns the measured per-row cost of a node in seconds.
func (p *Profile) NodeCost(id graph.NodeID) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	rows := p.nodeRows[id]
	if rows == 0 {
		return 0
	}
	return p.nodeSeconds[id] / float64(rows)
}

// IFVCost returns the measured per-row cost of computing IFV i: the summed
// node costs of its feature generator.
func (p *Profile) IFVCost(a *graph.Analysis, i int) float64 {
	var total float64
	for _, id := range a.IFVs[i].Nodes {
		total += p.NodeCost(id)
	}
	return total
}

// DriverSeconds returns accumulated marshaling time.
func (p *Profile) DriverSeconds() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.driverSeconds
}

// TotalSeconds returns accumulated end-to-end execution time.
func (p *Profile) TotalSeconds() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.totalSeconds
}

// DriverOverheadFraction returns driver time as a fraction of total
// execution time (the section 6.4 Weld-drivers microbenchmark).
func (p *Profile) DriverOverheadFraction() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.totalSeconds == 0 {
		return 0
	}
	return p.driverSeconds / p.totalSeconds
}

// ResetDriver zeroes driver and total accumulators (between experiments).
func (p *Profile) ResetDriver() {
	p.mu.Lock()
	p.driverSeconds = 0
	p.totalSeconds = 0
	p.mu.Unlock()
}

// Snapshot captures the per-node cost measurements for artifact
// serialization, so a deployment process keeps the cost model the pipeline
// was optimized under (query-aware parallelization schedules by these).
func (p *Profile) Snapshot() artifact.Profile {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := artifact.Profile{
		NodeSeconds: make(map[int]artifact.Scalar, len(p.nodeSeconds)),
		NodeRows:    make(map[int]int64, len(p.nodeRows)),
	}
	for id, sec := range p.nodeSeconds {
		out.NodeSeconds[int(id)] = artifact.Scalar(sec)
	}
	for id, rows := range p.nodeRows {
		out.NodeRows[int(id)] = rows
	}
	return out
}

// ProfileFromSnapshot rebuilds a profile from its serialized form.
func ProfileFromSnapshot(spec artifact.Profile) *Profile {
	p := NewProfile()
	for id, sec := range spec.NodeSeconds {
		p.nodeSeconds[graph.NodeID(id)] = float64(sec)
	}
	for id, rows := range spec.NodeRows {
		p.nodeRows[graph.NodeID(id)] = rows
	}
	return p
}
