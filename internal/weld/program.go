// Package weld implements the compilation and execution substrate that plays
// the role of the Weld IR and runtime in the paper (sections 3 and 5.2). A
// transformation graph compiles into a Program: nodes are block-sorted to
// minimize language transitions, compilable single-consumer chains are fused
// through parameterized templates, and two executors evaluate the result:
//
//   - the compiled executor: typed columnar batches, fused operators, zero
//     per-row boxing — the optimized pipeline;
//   - the interpreted executor: row-at-a-time evaluation over boxed values
//     with per-node dynamic dispatch — the stand-in for the original Python
//     pipeline, whose costs (boxing, per-row allocation, no fusion) mirror
//     CPython's.
//
// The Program also hosts the per-node profiler whose measurements become the
// computational-cost side of the cascades cost model, the per-IFV feature
// caches, and the subset/resume execution used by cascades and top-K
// serving.
package weld

import (
	"fmt"
	"strconv"
	"sync"

	"willump/internal/cache"
	"willump/internal/graph"
	"willump/internal/ops"
	"willump/internal/value"
)

// step is one unit of compiled execution: a single operator or a fused chain
// standing in for several original nodes.
type step struct {
	op    graph.Op
	out   graph.NodeID   // node id whose value this step produces
	ins   []graph.NodeID // input node ids
	nodes []graph.NodeID // original nodes this step covers (len > 1 if fused)
	ifv   int            // index of the IFV whose generator contains this step; -1 for preprocessing
	spine bool           // true for spine (concat / elementwise) steps
	label string         // precomputed trace span label ("step:<op>"), so recording allocates nothing
}

// Program is a compiled ML inference pipeline: the optimized executable the
// paper's compilation stage returns.
type Program struct {
	G *graph.Graph
	A *graph.Analysis

	// Order is the block-sorted node order used by unfused (profiling)
	// execution.
	Order []graph.NodeID
	// Steps is the fused compiled plan in execution order.
	Steps []step

	// Widths maps IFV roots to output widths; set by Fit.
	Widths map[graph.NodeID]int
	// Spans are per-IFV column spans in the full feature vector; set by Fit.
	Spans []graph.Span

	// Prof accumulates node timings during Fit (the cascades cost model)
	// and driver marshaling time during interpreted-boundary crossings.
	Prof *Profile

	// live, when non-nil, is the shadow profile: traced (head-sampled)
	// production requests accumulate per-node timings here, so the cost
	// model can be re-fit from live traffic instead of training-time
	// microbenchmarks. Enabled by EnableLiveProfile; nil costs nothing.
	live *Profile

	// ifvLabels[i] is IFV i's precomputed trace span label ("ifv:<i>").
	ifvLabels []string

	// caches[i], when non-nil, is the sharded feature-level cache for IFV i.
	// cacheSpecs records the plan the caches were built from, so artifacts
	// can persist and replay it without re-deriving it from training data.
	caches     []*cache.Sharded
	cacheSpecs []CacheSpec

	// pool recycles run states shaped for the fused plan (see state.go).
	// Installed by Fuse; nil before the program is fitted.
	pool *sync.Pool

	// ifvSpine[i] lists the non-concat spine operators applicable to IFV i,
	// in spine order; precomputed so Matrix/MatrixShared need no per-call
	// ancestor analysis. spineFallback is true when any of them does not
	// implement graph.Elementwise, forcing the generic Apply-based path.
	ifvSpine      [][]graph.Op
	spineFallback bool

	// allIFVs is the cached [0, len(IFVs)) index list (shared, read-only).
	allIFVs []int

	// prefetch lists the plan's async remote-lookup steps: single-node
	// Lookup steps keyed directly by a source column whose table supports
	// ops.AsyncTable. A run kicks these fetches off before local feature
	// compute begins, so the store round trip overlaps CPU work.
	// prefetchOf maps step index -> prefetch spec index (-1 otherwise).
	// Both are built by Fuse; nil before.
	prefetch   []prefetchSpec
	prefetchOf []int

	fitted bool
}

// prefetchSpec is one async-prefetchable lookup step.
type prefetchSpec struct {
	step int            // index into Steps
	ifv  int            // IFV whose generator contains the step
	src  graph.NodeID   // the source node carrying the key column
	at   ops.AsyncTable // the step's table, asserted once at fuse time
}

// Compile builds a Program from a transformation graph: analysis, block
// sorting, and step construction. Fusion requires fitted operators, so
// Compile defers it; call Fit and then Fuse (Fit calls Fuse automatically).
func Compile(g *graph.Graph) (*Program, error) {
	a, err := graph.Analyze(g)
	if err != nil {
		return nil, fmt.Errorf("weld: %w", err)
	}
	p := &Program{
		G:     g,
		A:     a,
		Order: graph.BlockSort(g),
		Prof:  NewProfile(),
	}
	p.allIFVs = make([]int, len(a.IFVs))
	p.ifvLabels = make([]string, len(a.IFVs))
	for i := range p.allIFVs {
		p.allIFVs[i] = i
		p.ifvLabels[i] = "ifv:" + strconv.Itoa(i)
	}
	p.buildSpineIndex()
	p.buildSteps(false)
	return p, nil
}

// buildSpineIndex precomputes, per IFV, the chain of non-concat spine
// operators that apply to it (the elementwise transforms Matrix folds over
// each IFV's output before concatenation).
func (p *Program) buildSpineIndex() {
	p.ifvSpine = make([][]graph.Op, len(p.A.IFVs))
	p.spineFallback = false
	for _, sid := range p.A.Spine {
		op := p.G.Node(sid).Op
		if _, isConcat := op.(*ops.Concat); isConcat {
			continue
		}
		if _, ok := op.(graph.Elementwise); !ok {
			p.spineFallback = true
		} else if ss, ok := op.(interface{ SparseSafe() bool }); ok && !ss.SparseSafe() {
			// The op's in-place sparse application would diverge from its
			// Apply semantics (e.g. a clip whose bounds exclude zero); keep
			// such plans on the generic path.
			p.spineFallback = true
		}
		anc := p.G.AncestorsOf(sid)
		for i, ifv := range p.A.IFVs {
			if anc[ifv.Root] {
				p.ifvSpine[i] = append(p.ifvSpine[i], op)
			}
		}
	}
}

// buildSteps constructs the execution plan, fusing compilable
// single-consumer chains when fuse is true.
func (p *Program) buildSteps(fuse bool) {
	g, a := p.G, p.A
	spine := make(map[graph.NodeID]bool)
	for _, id := range a.Spine {
		spine[id] = true
	}
	consumed := make(map[graph.NodeID]bool) // nodes folded into a fused step

	var steps []step
	order := p.Order
	for idx := 0; idx < len(order); idx++ {
		id := order[idx]
		n := g.Node(id)
		if n.IsSource() || consumed[id] {
			continue
		}
		st := step{op: n.Op, out: id, ins: n.Inputs, nodes: []graph.NodeID{id}, ifv: a.IFVOf(id), spine: spine[id]}
		if fuse && !spine[id] {
			chainNodes, chainOps := p.maximalChain(id)
			if len(chainNodes) > 1 {
				if fused, ok := ops.FuseTextChain(chainOps); ok {
					last := chainNodes[len(chainNodes)-1]
					st = step{
						op:    fused,
						out:   last,
						ins:   n.Inputs,
						nodes: chainNodes,
						ifv:   a.IFVOf(last),
						spine: false,
					}
					for _, cn := range chainNodes[1:] {
						consumed[cn] = true
					}
				}
			}
		}
		st.label = "step:" + st.op.Name()
		steps = append(steps, st)
	}
	// Fused steps may produce their output before other plan entries expect
	// it; re-sort steps topologically by produced node availability.
	p.Steps = topoSortSteps(steps, g)
}

// maximalChain extends a linear chain downstream from id while each node has
// exactly one consumer, the consumer's sole input is the chain, and both
// nodes stay within the same IFV/preprocessing region.
func (p *Program) maximalChain(id graph.NodeID) ([]graph.NodeID, []graph.Op) {
	g, a := p.G, p.A
	nodes := []graph.NodeID{id}
	ops_ := []graph.Op{g.Node(id).Op}
	cur := id
	for {
		consumers := g.Consumers(cur)
		if len(consumers) != 1 {
			break
		}
		next := consumers[0]
		n := g.Node(next)
		if len(n.Inputs) != 1 || n.Inputs[0] != cur {
			break
		}
		if n.Op.Commutative() {
			break // never fuse into the spine
		}
		if a.IFVOf(next) != a.IFVOf(cur) && a.IFVOf(cur) != -1 {
			break
		}
		nodes = append(nodes, next)
		ops_ = append(ops_, n.Op)
		cur = next
	}
	return nodes, ops_
}

// topoSortSteps orders steps so every step's inputs are produced first
// (inputs are either sources or other steps' outputs).
func topoSortSteps(steps []step, g *graph.Graph) []step {
	produced := make(map[graph.NodeID]int, len(steps)) // node -> step index
	for i, st := range steps {
		produced[st.out] = i
	}
	var order []step
	done := make(map[graph.NodeID]bool)
	var visit func(i int)
	visiting := make(map[int]bool)
	visit = func(i int) {
		if visiting[i] {
			return // cycle cannot happen in a DAG; defensive
		}
		visiting[i] = true
		for _, in := range steps[i].ins {
			if g.Node(in).IsSource() || done[in] {
				continue
			}
			if j, ok := produced[in]; ok {
				visit(j)
			}
		}
		if !done[steps[i].out] {
			done[steps[i].out] = true
			order = append(order, steps[i])
		}
		visiting[i] = false
	}
	for i := range steps {
		visit(i)
	}
	return order
}

// Fuse rebuilds the plan with chain fusion enabled. It requires fitted
// operators and is called automatically at the end of Fit (and Restore).
// Fusing also installs the run-state pool sized for the final plan shape.
func (p *Program) Fuse() {
	p.buildSteps(true)
	p.buildPrefetchIndex()
	p.initPool()
}

// buildPrefetchIndex finds the fused plan's async-prefetchable lookup
// steps: a Lookup whose only input is a raw source (its key column is
// available the moment a run starts) and whose table can begin a fetch
// without blocking. Plans without such steps get an empty index and pay
// nothing at run time.
func (p *Program) buildPrefetchIndex() {
	p.prefetch = nil
	p.prefetchOf = make([]int, len(p.Steps))
	for si := range p.Steps {
		p.prefetchOf[si] = -1
		st := &p.Steps[si]
		lk, ok := st.op.(*ops.Lookup)
		if !ok || st.ifv < 0 || len(st.ins) != 1 {
			continue
		}
		if !p.G.Node(st.ins[0]).IsSource() {
			continue
		}
		at, ok := lk.Table().(ops.AsyncTable)
		if !ok {
			continue
		}
		p.prefetchOf[si] = len(p.prefetch)
		p.prefetch = append(p.prefetch, prefetchSpec{step: si, ifv: st.ifv, src: st.ins[0], at: at})
	}
}

// CacheSpec assigns one IFV a feature-level cache of the given entry
// capacity (<= 0 for unbounded). The statistically-aware cache planner in
// internal/core produces these from profiled generator costs and
// training-set key reuse; artifacts persist them so deployments replay the
// same plan.
type CacheSpec struct {
	IFV      int
	Capacity int
}

// EnableFeatureCachingSpecs attaches a sharded feature-level cache per spec,
// replacing any previous caching configuration. Specs naming out-of-range
// IFVs are ignored.
func (p *Program) EnableFeatureCachingSpecs(specs []CacheSpec) {
	p.caches = make([]*cache.Sharded, len(p.A.IFVs))
	p.cacheSpecs = p.cacheSpecs[:0]
	for _, sp := range specs {
		if sp.IFV < 0 || sp.IFV >= len(p.A.IFVs) {
			continue
		}
		p.caches[sp.IFV] = cache.NewSharded(sp.Capacity, 0)
		p.cacheSpecs = append(p.cacheSpecs, sp)
	}
}

// EnableFeatureCaching attaches a feature-level cache of one flat capacity
// (<= 0 for unbounded) to the listed IFVs; passing nil selects all IFVs.
// This is the pre-planner flat configuration, kept for callers that tune
// capacity by hand.
func (p *Program) EnableFeatureCaching(capacity int, ifvs []int) {
	if ifvs == nil {
		ifvs = p.allIFVs
	}
	specs := make([]CacheSpec, len(ifvs))
	for j, i := range ifvs {
		specs[j] = CacheSpec{IFV: i, Capacity: capacity}
	}
	p.EnableFeatureCachingSpecs(specs)
}

// DisableFeatureCaching removes all feature-level caches.
func (p *Program) DisableFeatureCaching() {
	p.caches = nil
	p.cacheSpecs = nil
}

// CacheSpecs returns the active caching plan (nil when caching is off). The
// slice is shared; callers must not mutate it.
func (p *Program) CacheSpecs() []CacheSpec { return p.cacheSpecs }

// FeatureCacheStats sums counters over all feature-level caches.
func (p *Program) FeatureCacheStats() cache.Stats {
	var out cache.Stats
	for _, c := range p.caches {
		if c != nil {
			s := c.Stats()
			out.Hits += s.Hits
			out.Misses += s.Misses
			out.Evictions += s.Evictions
			out.Coalesced += s.Coalesced
		}
	}
	return out
}

// IFVCacheStats returns IFV i's cache counters and whether it has a cache.
func (p *Program) IFVCacheStats(i int) (cache.Stats, bool) {
	if p.caches == nil || i < 0 || i >= len(p.caches) || p.caches[i] == nil {
		return cache.Stats{}, false
	}
	return p.caches[i].Stats(), true
}

// CacheStats sums hits and misses over all feature-level caches (the legacy
// two-counter form; FeatureCacheStats reports the full counter set).
func (p *Program) CacheStats() (hits, misses int64) {
	s := p.FeatureCacheStats()
	return s.Hits, s.Misses
}

// EnableLiveProfile turns on shadow profiling: traced requests accumulate
// per-node timings into a live profile, queryable with LiveProfile and
// folded into the cost model with AdoptLiveProfile. Idempotent.
func (p *Program) EnableLiveProfile() {
	if p.live == nil {
		p.live = NewProfile()
	}
}

// LiveProfile returns a snapshot of the shadow profile accumulated from
// traced production traffic, or nil when shadow profiling is disabled.
func (p *Program) LiveProfile() *Profile {
	if p.live == nil {
		return nil
	}
	return p.live.Clone()
}

// AdoptLiveProfile drains the shadow profile into the cost model (Prof),
// re-fitting profiled per-node costs from production traffic — the
// continuous-profiling feedback loop. Draining (rather than copying) means
// repeated adoption never double-counts a measurement. Reports whether any
// live measurements were adopted.
func (p *Program) AdoptLiveProfile() bool {
	if p.live == nil {
		return false
	}
	drained := p.live.drain()
	if len(drained.nodeSeconds) == 0 {
		return false
	}
	p.Prof.Merge(drained)
	return true
}

// Fitted reports whether Fit has completed.
func (p *Program) Fitted() bool { return p.fitted }

// CloneRuntime returns a runtime clone of a fitted program for trialing an
// alternative plan (a canary candidate) beside the original. The clone
// shares everything that is read-only at inference time — graph, analysis,
// fused steps, fitted operators, spine/prefetch indexes — but owns its own
// mutable runtime state: a copied cost model, fresh feature caches built
// from the same plan (so the candidate's hit counters don't pollute the
// incumbent's), a fresh run-state pool (pooled states hold per-program
// cache references), and its own live-profile accumulator when the
// original had one.
func (p *Program) CloneRuntime() *Program {
	c := &Program{
		G:             p.G,
		A:             p.A,
		Order:         p.Order,
		Steps:         p.Steps,
		Widths:        p.Widths,
		Spans:         p.Spans,
		Prof:          p.Prof.Clone(),
		ifvLabels:     p.ifvLabels,
		ifvSpine:      p.ifvSpine,
		spineFallback: p.spineFallback,
		allIFVs:       p.allIFVs,
		prefetch:      p.prefetch,
		prefetchOf:    p.prefetchOf,
		fitted:        p.fitted,
	}
	if p.live != nil {
		c.live = NewProfile()
	}
	if len(p.cacheSpecs) > 0 {
		specs := make([]CacheSpec, len(p.cacheSpecs))
		copy(specs, p.cacheSpecs)
		c.EnableFeatureCachingSpecs(specs)
	}
	if p.pool != nil {
		c.initPool()
	}
	return c
}

// resolveInputs maps source labels to columnar values and validates equal
// batch lengths.
func (p *Program) resolveInputs(inputs map[string]value.Value) ([]value.Value, int, error) {
	vals := make([]value.Value, p.G.NumNodes())
	n := -1
	for _, sid := range p.G.Sources() {
		label := p.G.Node(sid).Label
		v, ok := inputs[label]
		if !ok {
			return nil, 0, fmt.Errorf("weld: missing input %q", label)
		}
		if n == -1 {
			n = v.Len()
		} else if v.Len() != n {
			return nil, 0, fmt.Errorf("weld: input %q has %d rows, want %d", label, v.Len(), n)
		}
		vals[sid] = v
	}
	if n < 0 {
		return nil, 0, fmt.Errorf("weld: graph has no sources")
	}
	return vals, n, nil
}
