package weld

import (
	"context"
	"fmt"
	"sync"

	"willump/internal/feature"
	"willump/internal/graph"
	"willump/internal/ops"
	"willump/internal/trace"
	"willump/internal/value"
)

// The pooled execution subsystem: every fused Program owns a sync.Pool of
// run states whose buffers are preallocated from the plan shape (node count,
// step count, per-step arity, IFV widths). A BatchRun acquired from the pool
// and recycled with Close reuses, on its next acquisition:
//
//   - the per-node value, availability, and ownership slices;
//   - the per-step input slices (no per-step make([]value.Value, ...));
//   - the per-step operator scratch cells driving ApplyInto buffer reuse;
//   - the interpreted-boundary driver buffers;
//   - the point-query feature vector and its 1-row matrix wrapper;
//   - the shared-output matrix buffers behind MatrixShared.
//
// After warm-up a compiled point query executes with zero heap allocations,
// and batch predictions allocate only their result slices. The ownership
// slice is the safety mechanism: a slot is reused as an ApplyInto or
// GatherInto destination only when the state itself allocated its buffers,
// so caller-provided input columns are never scribbled on.

// initPool sizes and installs the state pool for the current fused plan.
// Called at the end of Fuse, so re-fusing drops states shaped for the old
// plan.
func (p *Program) initPool() {
	p.pool = &sync.Pool{New: func() any { return p.newState() }}
}

// newState allocates a run state shaped for the program's plan.
func (p *Program) newState() *BatchRun {
	nn := p.G.NumNodes()
	r := &BatchRun{
		p:        p,
		vals:     make([]value.Value, nn),
		owned:    make([]bool, nn),
		have:     make([]bool, nn),
		ifvDone:  make([]bool, len(p.A.IFVs)),
		stepIns:  make([][]value.Value, len(p.Steps)),
		scratch:  make([]any, len(p.Steps)),
		cacheScr: make([]ifvCacheScratch, len(p.A.IFVs)),
		pending:  make([]ops.PendingLookup, len(p.prefetch)),
	}
	for i := range p.Steps {
		r.stepIns[i] = make([]value.Value, len(p.Steps[i].ins))
	}
	total := 0
	for _, ifv := range p.A.IFVs {
		total += p.Widths[ifv.Root]
	}
	r.vec = make([]float64, total)
	r.mat1 = feature.WrapDense(1, total, r.vec)
	return r
}

// getRun acquires a reset run state from the pool (or a fresh one when the
// program has not been fused yet).
func (p *Program) getRun(ctx context.Context) *BatchRun {
	var r *BatchRun
	if p.pool != nil {
		r = p.pool.Get().(*BatchRun)
	} else {
		r = p.newState()
	}
	r.ctx = ctx
	r.tr = trace.FromContext(ctx)
	r.preDone = false
	for i := range r.have {
		r.have[i] = false
	}
	for i := range r.ifvDone {
		r.ifvDone[i] = false
	}
	// Sub-runs and fresh acquisitions must never see another run's
	// outstanding prefetch handles.
	for i := range r.pending {
		r.pending[i] = nil
	}
	return r
}

// Close recycles the run's buffers into its Program's pool. After Close,
// the run and every matrix, vector, or value obtained from it are invalid.
// Only call Close when nothing derived from the run escaped: the predict
// paths use MatrixShared/PointMatrix (whose outputs they consume before
// closing), while callers that return matrices onward (Features, training
// helpers) simply skip Close and let the GC reclaim the state.
func (r *BatchRun) Close() {
	if r == nil || r.p == nil || r.p.pool == nil {
		return
	}
	// Drop references to values the state does not own (caller input
	// columns) so pooling does not extend their lifetime; state-owned
	// buffers are retained as the reuse arena.
	for i := range r.vals {
		if !r.owned[i] {
			r.vals[i] = value.Value{}
		}
	}
	for _, ins := range r.stepIns {
		for i := range ins {
			ins[i] = value.Value{}
		}
	}
	// Cache scratch holds views of node-slot values (which may be caller
	// input columns); drop them too. Key/row/dense buffers stay as the reuse
	// arena.
	for i := range r.cacheScr {
		for j := range r.cacheScr[i].srcVals {
			r.cacheScr[i].srcVals[j] = value.Value{}
		}
	}
	// Abandoned prefetches (a cascade that never consumed the lookup, an
	// early error) must not keep fetching after the run is recycled.
	for i, pd := range r.pending {
		if pd != nil {
			pd.Cancel()
			r.pending[i] = nil
		}
	}
	r.ctx = nil
	r.tr = nil
	r.p.pool.Put(r)
}

// resolveInto maps source labels onto the run's value slots and validates
// equal batch lengths, without allocating.
func (r *BatchRun) resolveInto(inputs map[string]value.Value) error {
	p := r.p
	n := -1
	for _, sid := range p.G.Sources() {
		label := p.G.Node(sid).Label
		v, ok := inputs[label]
		if !ok {
			return fmt.Errorf("weld: missing input %q", label)
		}
		if n == -1 {
			n = v.Len()
		} else if v.Len() != n {
			return fmt.Errorf("weld: input %q has %d rows, want %d", label, v.Len(), n)
		}
		r.vals[sid] = v
		r.owned[sid] = false
		r.have[sid] = true
	}
	if n < 0 {
		return fmt.Errorf("weld: graph has no sources")
	}
	r.n = n
	return nil
}

// setOwnedValue gathers src's selected rows into slot id, reusing the
// slot's buffers only when the state owns them.
func (r *BatchRun) setOwnedValue(id int, src value.Value, rows []int) {
	if !r.owned[id] {
		r.vals[id] = value.Value{}
	}
	value.GatherInto(&r.vals[id], src, rows)
	r.owned[id] = true
}

// growScratch returns a slice of length n reusing s's backing array when
// possible. Contents are unspecified.
func growScratch[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// applyElementwise maps an elementwise spine operator over a dense segment
// in place.
func applyElementwise(op graph.Elementwise, seg []float64) {
	for i, v := range seg {
		seg[i] = op.ApplyScalar(v)
	}
}
