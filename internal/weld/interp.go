package weld

import (
	"context"
	"fmt"
	"time"

	"willump/internal/feature"
	"willump/internal/graph"
	"willump/internal/trace"
	"willump/internal/value"
)

// RunInterpreted executes the pipeline the way the original unoptimized
// Python program would: row at a time, in source order, passing boxed values
// between operators through dynamic dispatch, with a fresh allocation for
// every intermediate. This is the repository's stand-in for the paper's
// Python baseline; the compiled executor's speedups over it come from the
// same levers Weld compilation provides (typed columnar batches, fusion, no
// per-row boxing).
func (p *Program) RunInterpreted(ctx context.Context, inputs map[string]value.Value) (feature.Matrix, error) {
	vals, n, err := p.resolveInputs(inputs)
	if err != nil {
		return nil, err
	}
	if tr := trace.FromContext(ctx); tr != nil {
		// One coarse span for the whole interpreted sweep: the baseline has
		// no fused steps to attribute to, and per-row spans would swamp the
		// trace.
		defer tr.Record(trace.StageInterp, time.Now())
	}
	g := p.G
	rows := make([][]float64, n)
	boxed := make([]any, g.NumNodes())
	// Per-node argument scratch, hoisted out of the row loop: the baseline
	// models per-row boxing and dynamic dispatch, not gratuitous slice
	// churn, so the argument buffers are allocated once per run (operators
	// do not retain their argument slice).
	insBuf := make([][]any, g.NumNodes())
	for _, id := range g.Topo() {
		if node := g.Node(id); !node.IsSource() {
			insBuf[id] = make([]any, len(node.Inputs))
		}
	}
	for r := 0; r < n; r++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for _, id := range g.Topo() {
			node := g.Node(id)
			if node.IsSource() {
				boxed[id] = vals[id].Box(r)
				continue
			}
			ins := insBuf[id]
			for i, in := range node.Inputs {
				ins[i] = boxed[in]
			}
			// Prefer the ctx-aware boxed path where the operator offers one
			// (remote lookups), so per-row I/O sees the request's deadline.
			var out any
			var err error
			if ca, ok := node.Op.(graph.CtxBoxedApplier); ok {
				out, err = ca.ApplyBoxedCtx(ctx, ins)
			} else {
				out, err = node.Op.ApplyBoxed(ins)
			}
			if err != nil {
				return nil, fmt.Errorf("weld: interpreted node %d (%s): %w", id, node.Label, err)
			}
			boxed[id] = out
		}
		vec, ok := boxed[g.Output()].([]float64)
		if !ok {
			// A scalar output still forms a one-feature vector.
			switch v := boxed[g.Output()].(type) {
			case float64:
				vec = []float64{v}
			case int64:
				vec = []float64{float64(v)}
			default:
				return nil, fmt.Errorf("weld: interpreted output is %T, want []float64", boxed[g.Output()])
			}
		}
		rows[r] = vec
	}
	return feature.DenseFromRows(rows), nil
}

// RunInterpretedPoint executes one example-at-a-time query on the
// interpreted path.
func (p *Program) RunInterpretedPoint(ctx context.Context, inputs map[string]value.Value) ([]float64, error) {
	m, err := p.RunInterpreted(ctx, inputs)
	if err != nil {
		return nil, err
	}
	if m.Rows() != 1 {
		return nil, fmt.Errorf("weld: point query got %d rows", m.Rows())
	}
	return feature.RowDense(m, 0, nil), nil
}
