package weld

import (
	"context"
	"testing"
	"time"

	"willump/internal/graph"
	"willump/internal/kvstore"
	"willump/internal/ops"
	"willump/internal/store"
	"willump/internal/value"
)

// sleepLookup is a local lookup with a fixed per-batch compute delay,
// standing in for an expensive local feature generator in overlap tests.
type sleepLookup struct {
	inner *ops.Lookup
	d     time.Duration
}

func newSleepLookup(name string, table ops.Table, d time.Duration) *sleepLookup {
	return &sleepLookup{inner: ops.NewLookup(name, table), d: d}
}

func (s *sleepLookup) Name() string      { return "sleep_" + s.inner.Name() }
func (s *sleepLookup) Compilable() bool  { return true }
func (s *sleepLookup) Commutative() bool { return false }

func (s *sleepLookup) Apply(ins []value.Value) (value.Value, error) {
	time.Sleep(s.d)
	return s.inner.Apply(ins)
}

func (s *sleepLookup) ApplyBoxed(ins []any) (any, error) {
	time.Sleep(s.d)
	return s.inner.ApplyBoxed(ins)
}

// startRemoteStore spins up a kvstore server with nKeys rows of width 2
// (row k = [k, 2k]) and dials a production store client against it.
func startRemoteStore(t *testing.T, nKeys int, latency time.Duration, cfg store.Config) (*kvstore.Server, *store.Client) {
	t.Helper()
	srv := kvstore.NewServer(2, latency)
	rows := make(map[int64][]float64, nKeys)
	for k := int64(0); k < int64(nKeys); k++ {
		rows[k] = []float64{float64(k), float64(2 * k)}
	}
	if err := srv.Load(rows); err != nil {
		t.Fatalf("Load: %v", err)
	}
	addr, err := srv.Start()
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	cfg.Addr = addr
	c, err := store.Dial(context.Background(), cfg)
	if err != nil {
		t.Fatalf("store.Dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return srv, c
}

// remotePipeline builds and fits
//
//	rid -> lookup(remote store)  \
//	                              concat
//	lid -> slow local lookup     /
//
// so the remote round trip and the local compute can overlap.
func remotePipeline(t *testing.T, remote ops.Table, localDelay time.Duration) (*Program, map[string]value.Value) {
	t.Helper()
	localRows := make(map[int64][]float64, 64)
	for k := int64(0); k < 64; k++ {
		localRows[k] = []float64{float64(k) / 2}
	}
	local := ops.NewLocalTable(1, localRows)

	b := graph.NewBuilder()
	rid := b.Input("rid")
	lid := b.Input("lid")
	rf := b.Add("remote_features", ops.NewLookup("remote", remote), rid)
	lf := b.Add("local_features", newSleepLookup("local", local, localDelay), lid)
	cat := b.Add("concat", ops.NewConcat(), rf, lf)
	b.SetOutput(cat)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	p, err := Compile(g)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	inputs := map[string]value.Value{
		"rid": value.NewInts([]int64{3, 7, 11, 20}),
		"lid": value.NewInts([]int64{1, 2, 3, 4}),
	}
	if _, err := p.Fit(context.Background(), inputs); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	return p, inputs
}

// TestPrefetchIndexSelectsRemoteLookups: only source-keyed lookups against
// async-capable tables become prefetch specs; local tables never do.
func TestPrefetchIndexSelectsRemoteLookups(t *testing.T) {
	_, client := startRemoteStore(t, 64, 0, store.Config{})
	p, _ := remotePipeline(t, client, 0)
	if len(p.prefetch) != 1 {
		t.Fatalf("prefetch specs = %d, want 1 (the remote lookup only)", len(p.prefetch))
	}
	if got := p.prefetch[0].at; got != ops.AsyncTable(client) {
		t.Errorf("prefetch table = %v, want the store client", got)
	}
	// A plan with only local tables carries an empty index and an all-skip
	// map, keeping the non-remote path zero-overhead.
	localOnly, localInputs := remotePipeline(t, ops.NewLocalTable(2, map[int64][]float64{3: {3, 6}, 7: {7, 14}, 11: {11, 22}, 20: {20, 40}}), 0)
	if len(localOnly.prefetch) != 0 {
		t.Errorf("local-table plan has %d prefetch specs, want 0", len(localOnly.prefetch))
	}
	r, err := localOnly.NewRun(context.Background(), localInputs)
	if err != nil {
		t.Fatalf("NewRun: %v", err)
	}
	defer r.Close()
	if r.hasPending() {
		t.Error("local-table run reports pending prefetches")
	}
}

// TestPrefetchOverlapsRemoteFetchWithLocalCompute pins the latency win the
// async prefetch exists for: with a 30ms store round trip and 30ms of local
// compute, the fused run must finish well under their 60ms sum because the
// fetch is in flight while the local feature computes.
func TestPrefetchOverlapsRemoteFetchWithLocalCompute(t *testing.T) {
	const lat = 30 * time.Millisecond
	_, client := startRemoteStore(t, 64, lat, store.Config{})
	p, inputs := remotePipeline(t, client, lat)

	// One warm run to populate pools and the connection pool.
	warm, err := p.NewRun(context.Background(), inputs)
	if err != nil {
		t.Fatalf("NewRun: %v", err)
	}
	if _, err := warm.Matrix(p.AllIFVs()); err != nil {
		t.Fatalf("warm Matrix: %v", err)
	}
	warm.Close()

	start := time.Now()
	r, err := p.NewRun(context.Background(), inputs)
	if err != nil {
		t.Fatalf("NewRun: %v", err)
	}
	defer r.Close()
	m, err := r.Matrix(p.AllIFVs())
	if err != nil {
		t.Fatalf("Matrix: %v", err)
	}
	elapsed := time.Since(start)

	if elapsed < lat {
		t.Errorf("run finished in %v, faster than one %v round trip — latency injection broken", elapsed, lat)
	}
	if limit := lat * 8 / 5; elapsed >= limit {
		t.Errorf("fused run took %v; want < %v (remote fetch must overlap local compute, sequential sum is %v)", elapsed, limit, 2*lat)
	}
	// Correctness under overlap: remote columns then the local column.
	if m.Rows() != 4 || m.Cols() != 3 {
		t.Fatalf("matrix shape %dx%d, want 4x3", m.Rows(), m.Cols())
	}
	if m.At(1, 0) != 7 || m.At(1, 1) != 14 || m.At(1, 2) != 1 {
		t.Errorf("row 1 = [%v %v %v], want [7 14 1]", m.At(1, 0), m.At(1, 1), m.At(1, 2))
	}
}

// TestPrefetchSkipsCachedIFVs: an IFV with a feature cache must not
// prefetch — the cached path fetches only its misses, and a warm cache
// makes zero remote requests.
func TestPrefetchSkipsCachedIFVs(t *testing.T) {
	_, client := startRemoteStore(t, 64, 0, store.Config{})
	p, inputs := remotePipeline(t, client, 0)

	remoteIFV := p.prefetch[0].ifv
	p.EnableFeatureCaching(128, []int{remoteIFV})
	client.ResetRequests()

	run := func() {
		t.Helper()
		r, err := p.NewRun(context.Background(), inputs)
		if err != nil {
			t.Fatalf("NewRun: %v", err)
		}
		defer r.Close()
		if _, err := r.Matrix(p.AllIFVs()); err != nil {
			t.Fatalf("Matrix: %v", err)
		}
	}
	run()
	if n := client.Requests(); n != 1 {
		t.Errorf("cold cached run made %d remote requests, want 1 (miss fill only, no prefetch)", n)
	}
	run()
	if n := client.Requests(); n != 1 {
		t.Errorf("warm cached run made %d total remote requests, want still 1 (all hits, prefetch gated off)", n)
	}
}

// TestBreakerOpenDegradesPredictionsEndToEnd: with the store stalled past
// its request timeout, every fused run still succeeds — the circuit breaker
// opens and predictions degrade to last-known feature values instead of
// failing.
func TestBreakerOpenDegradesPredictionsEndToEnd(t *testing.T) {
	srv, client := startRemoteStore(t, 64, 0, store.Config{
		RequestTimeout:   20 * time.Millisecond,
		Retries:          -1,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Minute, // stays open for the whole test
	})
	p, inputs := remotePipeline(t, client, 0)

	// Stall the store: every attempt now times out.
	srv.SetLatencyFunc(func() time.Duration { return time.Second })

	for i := 0; i < 20; i++ {
		r, err := p.NewRun(context.Background(), inputs)
		if err != nil {
			t.Fatalf("run %d: NewRun: %v", i, err)
		}
		m, err := r.Matrix(p.AllIFVs())
		if err != nil {
			t.Fatalf("run %d failed; breaker must degrade, not error: %v", i, err)
		}
		// Keys were fetched healthy during Fit, so degraded rows carry their
		// last-known values.
		if m.At(0, 0) != 3 || m.At(0, 1) != 6 {
			t.Errorf("run %d degraded row 0 = [%v %v], want last-known [3 6]", i, m.At(0, 0), m.At(0, 1))
		}
		r.Close()
	}
	st := client.StoreStats()
	if st.BreakerState != "open" {
		t.Errorf("breaker state = %q, want open", st.BreakerState)
	}
	if st.Degraded < 19 {
		t.Errorf("degraded lookups = %d, want >= 19 (every run after the breaker opened)", st.Degraded)
	}
}
