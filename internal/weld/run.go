package weld

import (
	"context"
	"fmt"
	"sync"
	"time"

	"willump/internal/cache"
	"willump/internal/feature"
	"willump/internal/graph"
	"willump/internal/ops"
	"willump/internal/parallel"
	"willump/internal/trace"
	"willump/internal/value"
)

// BatchRun is one compiled execution over a batch of inputs. IFVs compute
// lazily and incrementally: cascades first compute the efficient IFVs, then
// resume the same run (or a row subset of it) to compute the rest, reusing
// everything already materialized.
//
// A run carries the context it was started with; execution checks it between
// plan steps (the graph blocks of section 5.2), so cancelling the context
// aborts a long batch promptly instead of at the end.
//
// Runs are pooled per Program: NewRun acquires a state whose buffers were
// preallocated from the plan shape, and Close recycles it (see state.go for
// the reuse and ownership contract). Callers that let derived matrices
// escape must not Close.
type BatchRun struct {
	p   *Program
	ctx context.Context
	n   int

	// tr is the request's trace, extracted once from ctx at acquisition.
	// nil for unsampled requests: every hook below is guarded on it, so
	// the unsampled fast path stays allocation-free.
	tr *trace.Trace

	vals  []value.Value // per-node computed values; sources prefilled
	owned []bool        // slot buffers allocated (and exclusively held) by this state
	have  []bool

	preDone bool
	ifvDone []bool

	// Per-step reusable execution state.
	stepIns [][]value.Value
	scratch []any

	// Point-query output: the concatenated feature vector and its 1-row
	// dense wrapper.
	vec  []float64
	mat1 *feature.Dense

	// MatrixShared output buffers.
	hsDense   *feature.Dense
	hsCSR     *feature.CSR
	hsBuilder feature.CSRBuilder
	ordered   []int

	// cacheScr[i] is IFV i's cached-execution scratch. Indexed per IFV so
	// ComputeIFVsParallel workers (which own disjoint IFV sets) never share
	// a buffer.
	cacheScr []ifvCacheScratch

	// pending[j] is the outstanding async store prefetch for the program's
	// prefetch spec j, started by NewRun and joined (or canceled) exactly
	// once. Empty for plans without async remote lookups. Indexed per spec
	// — each spec's step lives in one IFV, so parallel IFV workers touch
	// disjoint entries.
	pending []ops.PendingLookup
}

// ifvCacheScratch holds one IFV's reusable cached-path state: source-column
// views, encoded key bytes with per-row offsets and hashes, the gathered
// miss rows, a row-extraction buffer, and the pooled dense output the cache
// copies hits into. After warm-up an all-hit batch (and every warm point
// hit) allocates nothing.
type ifvCacheScratch struct {
	srcVals  []value.Value
	keyBuf   []byte
	offs     []int
	hashes   []uint64
	missRows []int
	rowBuf   []float64
	dense    *feature.Dense
}

// NewRun starts a compiled run over the given inputs. ctx governs the whole
// run: every subsequent ComputeIFVs/Matrix call on the run observes it.
func (p *Program) NewRun(ctx context.Context, inputs map[string]value.Value) (*BatchRun, error) {
	if !p.fitted {
		return nil, fmt.Errorf("weld: run before Fit")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r := p.getRun(ctx)
	if err := r.resolveInto(inputs); err != nil {
		r.Close()
		return nil, err
	}
	if len(p.prefetch) > 0 {
		r.startPrefetch()
	}
	return r, nil
}

// startPrefetch kicks off the plan's async remote lookups before any local
// compute runs, so the store round trips overlap CPU work. IFVs with a
// feature cache are skipped: the cached path fetches only its misses, and
// prefetching every key would defeat the cache.
func (r *BatchRun) startPrefetch() {
	for j := range r.p.prefetch {
		sp := &r.p.prefetch[j]
		if r.p.caches != nil && r.p.caches[sp.ifv] != nil {
			continue
		}
		if v := r.vals[sp.src]; v.Kind == value.Ints {
			r.pending[j] = sp.at.StartLookup(r.ctx, v.Ints)
		}
	}
}

// hasPending reports whether any prefetch is still outstanding.
func (r *BatchRun) hasPending() bool {
	for _, pd := range r.pending {
		if pd != nil {
			return true
		}
	}
	return false
}

// ifvPending reports whether IFV i is waiting on an outstanding prefetch.
func (r *BatchRun) ifvPending(i int) bool {
	for j := range r.p.prefetch {
		if r.p.prefetch[j].ifv == i && r.pending[j] != nil {
			return true
		}
	}
	return false
}

// Len returns the batch size.
func (r *BatchRun) Len() int { return r.n }

// runStep executes plan step si, reading and writing r.vals. The run's
// context is checked first, so cancellation lands on a block boundary.
// Operators implementing graph.IntoApplier execute through the reuse path,
// recycling the slot's previous output buffers and the step's scratch cell.
func (r *BatchRun) runStep(si int) error {
	if err := r.ctx.Err(); err != nil {
		return err
	}
	if r.tr == nil {
		return r.execStep(si)
	}
	// Traced execution: record a span per fused step, and feed the shadow
	// profile (when enabled) with the step's per-node share — the live cost
	// measurements AdoptLiveProfile later folds into the cost model.
	st := &r.p.Steps[si]
	t0 := time.Now()
	err := r.execStep(si)
	r.tr.Record(st.label, t0)
	if lp := r.p.live; lp != nil && err == nil {
		sec := time.Since(t0).Seconds()
		for _, id := range st.nodes {
			lp.addNode(id, r.n, sec/float64(len(st.nodes)))
		}
	}
	return err
}

// execStep is runStep's body: it executes plan step si without tracing.
func (r *BatchRun) execStep(si int) error {
	st := &r.p.Steps[si]
	ins := r.stepIns[si]
	for i, in := range st.ins {
		if !r.have[in] {
			return fmt.Errorf("weld: step %d input %d not computed", st.out, in)
		}
		ins[i] = r.vals[in]
	}
	if !st.op.Compilable() {
		return r.runPythonStep(si, ins)
	}
	if lk, ok := st.op.(*ops.Lookup); ok {
		// Join an outstanding async prefetch here — where the lookup's
		// output is first consumed — bounded by the run's (request) context.
		if r.p.prefetchOf != nil {
			if pi := r.p.prefetchOf[si]; pi >= 0 && r.pending[pi] != nil {
				pd := r.pending[pi]
				r.pending[pi] = nil
				rows, err := pd.Wait(r.ctx)
				if err != nil {
					return fmt.Errorf("weld: step %s: %w", st.op.Name(), err)
				}
				out, err := lk.Materialize(rows, r.n)
				if err != nil {
					return fmt.Errorf("weld: step %s: %w", st.op.Name(), err)
				}
				r.vals[st.out] = out
				r.owned[st.out] = true
				r.have[st.out] = true
				return nil
			}
		}
		// Synchronous remote lookups still get deadline/cancellation
		// propagation when the table honors contexts; local tables keep the
		// allocation-free ApplyInto path below.
		if _, isCtx := lk.Table().(ops.CtxTable); isCtx {
			out, err := lk.ApplyCtx(r.ctx, ins)
			if err != nil {
				return fmt.Errorf("weld: step %s: %w", st.op.Name(), err)
			}
			r.vals[st.out] = out
			r.owned[st.out] = true
			r.have[st.out] = true
			return nil
		}
	}
	if ia, ok := st.op.(graph.IntoApplier); ok {
		if !r.owned[st.out] {
			r.vals[st.out] = value.Value{}
		}
		if err := ia.ApplyInto(ins, &r.vals[st.out], &r.scratch[si]); err != nil {
			return fmt.Errorf("weld: step %s: %w", st.op.Name(), err)
		}
	} else {
		out, err := st.op.Apply(ins)
		if err != nil {
			return fmt.Errorf("weld: step %s: %w", st.op.Name(), err)
		}
		r.vals[st.out] = out
	}
	r.owned[st.out] = true
	r.have[st.out] = true
	return nil
}

// pyScratch is the per-step driver buffer pair for interpreted-boundary
// crossings. It lives in the step's scratch cell, not on the run: parallel
// IFV workers execute disjoint steps, so per-step buffers stay race-free
// where run-level ones would not.
type pyScratch struct {
	boxed, outs []any
}

// runPythonStep crosses into the interpreted runtime: it unboxes the
// columnar inputs row by row, applies the operator's boxed path, and reboxes
// the results into a column. The marshaling time on both sides is the
// "driver" overhead of section 5.2. The out-driver reuses the step's boxed
// buffers across runs (operators do not retain their argument slice),
// mirroring the O(1)-conversion drivers the paper built.
func (r *BatchRun) runPythonStep(si int, ins []value.Value) error {
	st := &r.p.Steps[si]
	n := r.n
	ps, _ := r.scratch[si].(*pyScratch)
	if ps == nil {
		ps = &pyScratch{}
		r.scratch[si] = ps
	}
	// Driver out: columnar -> boxed argument rows.
	start := time.Now()
	ps.boxed = growScratch(ps.boxed, len(ins)*n)
	boxed := ps.boxed
	for row := 0; row < n; row++ {
		for i := range ins {
			boxed[row*len(ins)+i] = ins[i].Box(row)
		}
	}
	r.p.Prof.addDriver(time.Since(start).Seconds())

	// Interpreted execution. Operators with a ctx-aware boxed path (remote
	// lookups) see the run's request context, so deadlines reach the wire
	// even across the interpreted boundary.
	opStart := time.Now()
	ps.outs = growScratch(ps.outs, n)
	outs := ps.outs
	ca, hasCtx := st.op.(graph.CtxBoxedApplier)
	for row := 0; row < n; row++ {
		var out any
		var err error
		if hasCtx {
			out, err = ca.ApplyBoxedCtx(r.ctx, boxed[row*len(ins):(row+1)*len(ins)])
		} else {
			out, err = st.op.ApplyBoxed(boxed[row*len(ins) : (row+1)*len(ins)])
		}
		if err != nil {
			return fmt.Errorf("weld: python step %s: %w", st.op.Name(), err)
		}
		outs[row] = out
	}
	opSec := time.Since(opStart).Seconds()
	for _, id := range st.nodes {
		r.p.Prof.addNode(id, n, opSec/float64(len(st.nodes)))
	}

	// Driver in: boxed -> columnar, reusing the slot's previous column when
	// the state owns it.
	start = time.Now()
	if !r.owned[st.out] {
		r.vals[st.out] = value.Value{}
	}
	err := value.FromBoxedInto(outs[:n], &r.vals[st.out])
	// Drop the boxed references either way: they point into caller input
	// columns, and a pooled state must not extend their lifetime.
	clear(boxed)
	clear(outs)
	if err != nil {
		return fmt.Errorf("weld: python step %s: %w", st.op.Name(), err)
	}
	r.p.Prof.addDriver(time.Since(start).Seconds())

	r.owned[st.out] = true
	r.have[st.out] = true
	return nil
}

// computePreprocessing runs all preprocessing steps once per run.
func (r *BatchRun) computePreprocessing() error {
	if r.preDone {
		return nil
	}
	for si := range r.p.Steps {
		st := &r.p.Steps[si]
		if st.ifv == -1 && !st.spine {
			if r.have[st.out] {
				continue
			}
			if err := r.runStep(si); err != nil {
				return err
			}
		}
	}
	r.preDone = true
	return nil
}

// ComputeIFVs materializes the selected IFVs (by index), going through the
// per-IFV feature cache when one is attached. While async prefetches are
// outstanding, IFVs that do not wait on one compute first: their local CPU
// work overlaps the store round trips, and the prefetched IFVs join last,
// right where their output is consumed.
func (r *BatchRun) ComputeIFVs(idx []int) error {
	if err := r.computePreprocessing(); err != nil {
		return err
	}
	if r.hasPending() {
		for _, i := range idx {
			if !r.ifvPending(i) {
				if err := r.computeIFV(i); err != nil {
					return err
				}
			}
		}
		for _, i := range idx {
			if r.ifvPending(i) {
				if err := r.computeIFV(i); err != nil {
					return err
				}
			}
		}
		return nil
	}
	for _, i := range idx {
		if err := r.computeIFV(i); err != nil {
			return err
		}
	}
	return nil
}

// computeIFV materializes one IFV (cached or direct), once.
func (r *BatchRun) computeIFV(i int) error {
	if r.ifvDone[i] {
		return nil
	}
	var t0 time.Time
	if r.tr != nil {
		t0 = time.Now()
	}
	var c *cache.Sharded
	if r.p.caches != nil {
		c = r.p.caches[i]
	}
	if c != nil {
		if err := r.computeIFVCached(i, c); err != nil {
			return err
		}
	} else {
		if err := r.computeIFVDirect(i); err != nil {
			return err
		}
	}
	if r.tr != nil {
		r.tr.Record(r.p.ifvLabels[i], t0)
	}
	r.ifvDone[i] = true
	return nil
}

// computeIFVDirect executes the IFV's generator steps over the whole batch.
func (r *BatchRun) computeIFVDirect(i int) error {
	for si := range r.p.Steps {
		st := &r.p.Steps[si]
		if st.ifv != i || r.have[st.out] {
			continue
		}
		if err := r.runStep(si); err != nil {
			return err
		}
	}
	return nil
}

// computeIFVCached serves rows from the IFV's sharded feature cache and
// computes only the misses. Cached entries hold the IFV's dense
// feature-vector rows, keyed by the length-prefixed encoding of the
// generator's raw sources (section 4.5). All per-call state lives in the
// run's per-IFV scratch, so a warm all-hit batch — and every warm point hit
// — performs zero heap allocations.
func (r *BatchRun) computeIFVCached(i int, c *cache.Sharded) error {
	ifv := r.p.A.IFVs[i]
	width := r.p.Widths[ifv.Root]
	cs := &r.cacheScr[i]
	cs.srcVals = growScratch(cs.srcVals, len(ifv.Sources))
	for j, s := range ifv.Sources {
		cs.srcVals[j] = r.vals[s]
	}
	if r.n == 1 {
		return r.computePointCached(i, c, width, cs)
	}

	out := feature.GrowDense(cs.dense, r.n, width)
	cs.dense = out
	cs.offs = growScratch(cs.offs, r.n+1)
	cs.hashes = growScratch(cs.hashes, r.n)
	cs.missRows = cs.missRows[:0]
	cs.keyBuf = cs.keyBuf[:0]
	cs.offs[0] = 0
	var t0 time.Time
	if r.tr != nil {
		t0 = time.Now()
	}
	for row := 0; row < r.n; row++ {
		cs.keyBuf = cache.AppendRowKey(cs.keyBuf, cs.srcVals, row)
		cs.offs[row+1] = len(cs.keyBuf)
		key := cs.keyBuf[cs.offs[row]:cs.offs[row+1]]
		cs.hashes[row] = cache.Hash64(key)
		if !c.CopyInto(cs.hashes[row], key, out.Row(row)) {
			cs.missRows = append(cs.missRows, row)
		}
	}
	if r.tr != nil {
		r.tr.Record(trace.StageCacheLookup, t0)
	}
	if len(cs.missRows) > 0 {
		var t1 time.Time
		if r.tr != nil {
			t1 = time.Now()
		}
		// Deduplicate misses within the batch: one computation per distinct
		// key, scattered to every row sharing it. This is where feature-level
		// caching beats end-to-end caching — repeated sub-keys recur across
		// data inputs even when full inputs never repeat (section 4.5).
		rowsByKey := make(map[string][]int, len(cs.missRows))
		var reprRows []int
		for _, row := range cs.missRows {
			key := cs.keyBuf[cs.offs[row]:cs.offs[row+1]]
			if _, seen := rowsByKey[string(key)]; !seen {
				reprRows = append(reprRows, row)
			}
			rowsByKey[string(key)] = append(rowsByKey[string(key)], row)
		}
		sub, err := r.gatherForIFV(i, reprRows)
		if err != nil {
			return err
		}
		if err := sub.computeIFVDirect(i); err != nil {
			return err
		}
		for k, repr := range reprRows {
			vec, err := appendRowVec(cs.rowBuf[:0], sub.vals[ifv.Root], k)
			if err != nil {
				return fmt.Errorf("weld: IFV %d output: %w", i, err)
			}
			cs.rowBuf = vec
			key := cs.keyBuf[cs.offs[repr]:cs.offs[repr+1]]
			for _, row := range rowsByKey[string(key)] {
				copy(out.Row(row), vec)
			}
			c.Put(cs.hashes[repr], key, vec)
		}
		sub.Close()
		if r.tr != nil {
			r.tr.Record(trace.StageCacheFill, t1)
		}
	}
	r.vals[ifv.Root] = value.NewMat(out)
	r.owned[ifv.Root] = true
	r.have[ifv.Root] = true
	return nil
}

// computePointCached is the compiled point fast path through the feature
// cache: encode the key into the run's reused buffer, hash it inline, and on
// a hit copy the cached row straight into the run's pooled output dense —
// zero heap allocations once warm. Misses are coalesced: concurrent point
// queries for the same hot key compute the feature vector once (critical for
// Zipfian traffic against remote/lookup features), with everyone else
// waiting and then reading the published entry.
func (r *BatchRun) computePointCached(i int, c *cache.Sharded, width int, cs *ifvCacheScratch) error {
	root := r.p.A.IFVs[i].Root
	cs.keyBuf = cache.AppendRowKey(cs.keyBuf[:0], cs.srcVals, 0)
	key := cs.keyBuf
	h := cache.Hash64(key)
	out := feature.GrowDense(cs.dense, 1, width)
	cs.dense = out
	var t0 time.Time
	if r.tr != nil {
		t0 = time.Now()
	}
	hit := c.CopyInto(h, key, out.Row(0))
	if r.tr != nil {
		r.tr.Record(trace.StageCacheLookup, t0)
	}
	if hit {
		r.vals[root] = value.NewMat(out)
		r.owned[root] = true
		r.have[root] = true
		return nil
	}
	var t1 time.Time
	if r.tr != nil {
		t1 = time.Now()
	}
	err := r.pointCacheFill(i, c, cs, out, key, h, root)
	if r.tr != nil {
		r.tr.Record(trace.StageCacheFill, t1)
	}
	return err
}

// pointCacheFill is the point-query miss path: coalesce with concurrent
// misses on the same key, compute as the leader or re-read the published
// entry as a waiter, falling back to direct computation when either fails.
func (r *BatchRun) pointCacheFill(i int, c *cache.Sharded, cs *ifvCacheScratch, out *feature.Dense, key []byte, h uint64, root graph.NodeID) error {
	leader, err := c.Coalesce(r.ctx, key, func() error {
		// The leader computes the generator directly on this run (the output
		// lands in the root slot, exactly like the uncached path) and
		// publishes the materialized row.
		if err := r.computeIFVDirect(i); err != nil {
			return err
		}
		vec, err := appendRowVec(cs.rowBuf[:0], r.vals[root], 0)
		if err != nil {
			return fmt.Errorf("weld: IFV %d output: %w", i, err)
		}
		cs.rowBuf = vec
		c.Put(h, key, vec)
		return nil
	})
	if err != nil {
		if leader {
			return err
		}
		// The leader failed, or this waiter's own context died while waiting
		// — neither may silently corrupt this request. Compute locally: a
		// dead context fails fast on the first plan-step check.
		return r.computeIFVDirect(i)
	}
	if leader {
		return nil // the root slot already holds the computed value
	}
	// PeekInto, not CopyInto: this lookup already counted its miss above,
	// and the coalesced re-read must not also count a hit.
	if c.PeekInto(h, key, out.Row(0)) {
		r.vals[root] = value.NewMat(out)
		r.owned[root] = true
		r.have[root] = true
		return nil
	}
	// The published entry was evicted before we could read it (tiny cache
	// under hostile churn): compute locally, without re-coalescing.
	return r.computeIFVDirect(i)
}

// appendRowVec materializes one row of an IFV root's value into dst
// (appending, buffer reused by the caller). Scalar columns widen to their
// 1-element vector form, matching Value.AsMatrix.
func appendRowVec(dst []float64, v value.Value, row int) ([]float64, error) {
	switch v.Kind {
	case value.Mat:
		return feature.RowDense(v.Mat, row, dst), nil
	case value.Floats:
		return append(dst, v.Floats[row]), nil
	case value.Ints:
		return append(dst, float64(v.Ints[row])), nil
	default:
		return dst, fmt.Errorf("cannot view %s as matrix", v.Kind)
	}
}

// gatherForIFV builds a sub-run over the given rows containing everything
// the IFV's generator reads: raw sources and preprocessing outputs.
func (r *BatchRun) gatherForIFV(i int, rows []int) (*BatchRun, error) {
	sub := r.p.getRun(r.ctx)
	sub.n = len(rows)
	sub.preDone = true
	for id, ok := range r.have {
		if ok {
			sub.setOwnedValue(id, r.vals[id], rows)
			sub.have[id] = true
		}
	}
	// The IFV's own root must be recomputed even if a previous pass stored a
	// value for it.
	root := r.p.A.IFVs[i].Root
	sub.have[root] = false
	return sub, nil
}

// SubsetRun returns a new run restricted to the given rows, carrying over
// every value already computed (gathered to the subset). Cascades use it to
// run the full model only on low-confidence rows; top-K uses it to re-rank
// the filtered subset. The sub-run is pooled like any other: Close it when
// nothing derived from it escapes.
func (r *BatchRun) SubsetRun(rows []int) *BatchRun {
	sub := r.p.getRun(r.ctx)
	sub.n = len(rows)
	sub.preDone = r.preDone
	copy(sub.ifvDone, r.ifvDone)
	for id, ok := range r.have {
		if ok {
			sub.setOwnedValue(id, r.vals[id], rows)
			sub.have[id] = true
		}
	}
	return sub
}

// Matrix computes and horizontally concatenates the selected IFVs in leaf
// order, applying elementwise spine operators per IFV (valid because they
// commute with concatenation). Selecting every IFV reproduces the full
// feature vector of the original pipeline.
//
// Matrix allocates its result; runs whose Matrix output escapes must not be
// Closed. Predict paths that consume the features in place use MatrixShared
// instead.
func (r *BatchRun) Matrix(idx []int) (feature.Matrix, error) {
	if err := r.ComputeIFVs(idx); err != nil {
		return nil, err
	}
	ordered := append([]int(nil), idx...)
	sortInts(ordered)
	mats := make([]feature.Matrix, len(ordered))
	for j, i := range ordered {
		m, err := r.vals[r.p.A.IFVs[i].Root].AsMatrix()
		if err != nil {
			return nil, fmt.Errorf("weld: IFV %d output: %w", i, err)
		}
		mats[j] = m
	}
	// Apply elementwise (non-concat) spine ops to the IFVs beneath them.
	for j, i := range ordered {
		for _, op := range r.p.ifvSpine[i] {
			v, err := op.Apply([]value.Value{value.NewMat(mats[j])})
			if err != nil {
				return nil, fmt.Errorf("weld: spine op %s: %w", op.Name(), err)
			}
			m, err := v.AsMatrix()
			if err != nil {
				return nil, err
			}
			mats[j] = m
		}
	}
	return feature.HStack(mats...), nil
}

// MatrixShared computes the same matrix as Matrix into run-owned pooled
// buffers: after warm-up it performs no heap allocation. The result is valid
// only until the next MatrixShared/PointMatrix call on this run or Close;
// it must be consumed (model prediction, row extraction) before either.
func (r *BatchRun) MatrixShared(idx []int) (feature.Matrix, error) {
	if r.p.spineFallback {
		// A non-elementwise spine operator is present; only the generic
		// Apply-based path can evaluate it.
		return r.Matrix(idx)
	}
	if err := r.ComputeIFVs(idx); err != nil {
		return nil, err
	}
	r.ordered = append(r.ordered[:0], idx...)
	ordered := r.ordered
	sortInts(ordered)

	total, allDense := 0, true
	for _, i := range ordered {
		root := r.p.A.IFVs[i].Root
		v := r.vals[root]
		switch v.Kind {
		case value.Floats, value.Ints:
			total++
		case value.Mat:
			total += v.Mat.Cols()
			if _, ok := v.Mat.(*feature.Dense); !ok {
				allDense = false
			}
		default:
			return nil, fmt.Errorf("weld: IFV %d output: cannot view %s as matrix", i, v.Kind)
		}
	}

	if allDense {
		dst := feature.GrowDense(r.hsDense, r.n, total)
		r.hsDense = dst
		off := 0
		for _, i := range ordered {
			root := r.p.A.IFVs[i].Root
			v := r.vals[root]
			w := 1
			if v.Kind == value.Mat {
				w = v.Mat.Cols()
			}
			for row := 0; row < r.n; row++ {
				seg := dst.Row(row)[off : off+w]
				switch v.Kind {
				case value.Floats:
					seg[0] = v.Floats[row]
				case value.Ints:
					seg[0] = float64(v.Ints[row])
				case value.Mat:
					copy(seg, v.Mat.(*feature.Dense).Row(row))
				}
				for _, op := range r.p.ifvSpine[i] {
					applyElementwise(op.(graph.Elementwise), seg)
				}
			}
			off += w
		}
		return dst, nil
	}

	// Sparse (or mixed) path: stream every row straight into a reused CSR
	// builder, applying elementwise spine ops per stored entry — their
	// sparse semantics (implicit zeros stay zero) by construction.
	b := &r.hsBuilder
	prev := r.hsCSR
	b.ResetFrom(total, prev)
	for row := 0; row < r.n; row++ {
		off := 0
		for _, i := range ordered {
			root := r.p.A.IFVs[i].Root
			v := r.vals[root]
			ew := r.p.ifvSpine[i]
			switch v.Kind {
			case value.Floats:
				b.Add(off, applySpineScalar(ew, v.Floats[row]))
				off++
			case value.Ints:
				b.Add(off, applySpineScalar(ew, float64(v.Ints[row])))
				off++
			case value.Mat:
				switch m := v.Mat.(type) {
				case *feature.Dense:
					// Skip zeros like the ForEachNZ-based HStack path did:
					// storing them would inflate nnz for mostly-zero dense
					// blocks (spine ops here are sparse-safe, f(0) == 0).
					for c, x := range m.Row(row) {
						if x != 0 {
							b.Add(off+c, applySpineScalar(ew, x))
						}
					}
				case *feature.CSR:
					cols, vals := m.RowView(row)
					for k, c := range cols {
						b.Add(off+c, applySpineScalar(ew, vals[k]))
					}
				default:
					m.ForEachNZ(row, func(c int, x float64) {
						b.Add(off+c, applySpineScalar(ew, x))
					})
				}
				off += v.Mat.Cols()
			}
		}
		b.EndRow()
	}
	if prev == nil {
		prev = b.Build()
	} else {
		b.BuildInto(prev)
	}
	r.hsCSR = prev
	return r.hsCSR, nil
}

// applySpineScalar folds a chain of elementwise spine ops over one value.
func applySpineScalar(ops []graph.Op, v float64) float64 {
	for _, op := range ops {
		v = op.(graph.Elementwise).ApplyScalar(v)
	}
	return v
}

// PointMatrix computes the selected IFVs of a single-row run and returns a
// pooled 1 x w dense matrix over the run's feature-vector buffer. After
// warm-up the call performs no heap allocation for fully compiled plans.
// The result is valid until the next PointMatrix/MatrixShared call on this
// run or Close. Calling it again with a superset of IFVs (the cascade
// resume) reuses everything already computed.
func (r *BatchRun) PointMatrix(idx []int) (feature.Matrix, error) {
	if r.n != 1 {
		return nil, fmt.Errorf("weld: point query got %d rows", r.n)
	}
	if r.p.spineFallback {
		m, err := r.Matrix(idx)
		if err != nil {
			return nil, err
		}
		return m, nil
	}
	if err := r.ComputeIFVs(idx); err != nil {
		return nil, err
	}
	r.ordered = append(r.ordered[:0], idx...)
	ordered := r.ordered
	sortInts(ordered)
	total := 0
	for _, i := range ordered {
		total += r.p.Widths[r.p.A.IFVs[i].Root]
	}
	if cap(r.vec) < total {
		r.vec = make([]float64, total)
	}
	vec := r.vec[:total]
	off := 0
	for _, i := range ordered {
		root := r.p.A.IFVs[i].Root
		w := r.p.Widths[root]
		seg := vec[off : off+w]
		v := r.vals[root]
		switch v.Kind {
		case value.Floats:
			seg[0] = v.Floats[0]
		case value.Ints:
			seg[0] = float64(v.Ints[0])
		case value.Mat:
			switch m := v.Mat.(type) {
			case *feature.Dense:
				copy(seg, m.Row(0))
			case *feature.CSR:
				for j := range seg {
					seg[j] = 0
				}
				cols, vals := m.RowView(0)
				for k, c := range cols {
					seg[c] = vals[k]
				}
			default:
				for j := range seg {
					seg[j] = 0
				}
				m.ForEachNZ(0, func(c int, x float64) { seg[c] = x })
			}
		default:
			return nil, fmt.Errorf("weld: IFV %d output: cannot view %s as matrix", i, v.Kind)
		}
		for _, op := range r.p.ifvSpine[i] {
			applyElementwise(op.(graph.Elementwise), seg)
		}
		off += w
	}
	r.mat1.SetData(1, total, vec)
	return r.mat1, nil
}

// AllIFVs returns the index list [0, len(IFVs)). The slice is shared and
// must not be mutated.
func (p *Program) AllIFVs() []int { return p.allIFVs }

// RunBatch compiles-and-executes the whole pipeline over a batch, returning
// the full feature matrix. The context is checked between plan steps, so
// cancelling it aborts a long batch promptly. The returned matrix escapes
// the run, so the state is left to the GC instead of the pool; predict
// paths that consume features in place use NewRun + MatrixShared + Close.
func (p *Program) RunBatch(ctx context.Context, inputs map[string]value.Value) (feature.Matrix, error) {
	start := time.Now()
	r, err := p.NewRun(ctx, inputs)
	if err != nil {
		return nil, err
	}
	m, err := r.Matrix(p.AllIFVs())
	p.Prof.addTotal(time.Since(start).Seconds())
	return m, err
}

// RunBatchShared executes the whole pipeline over a batch on a pooled run,
// returning the run together with its shared feature matrix. The caller
// consumes the matrix (e.g. model prediction) and then Closes the run to
// recycle every buffer. End-to-end timing is recorded like RunBatch, so the
// profiler's driver-overhead accounting is preserved.
func (p *Program) RunBatchShared(ctx context.Context, inputs map[string]value.Value) (*BatchRun, feature.Matrix, error) {
	start := time.Now()
	r, err := p.NewRun(ctx, inputs)
	if err != nil {
		return nil, nil, err
	}
	m, err := r.MatrixShared(p.AllIFVs())
	if err != nil {
		r.Close()
		return nil, nil, err
	}
	p.Prof.addTotal(time.Since(start).Seconds())
	return r, m, nil
}

// RunBatchSharded executes the pipeline data-parallel across workers, each
// handling a contiguous row shard (the paper's batch parallelization mode:
// different inputs end-to-end on different threads). Each shard runs on its
// own pooled state; the shard matrices are merged into a fresh result and
// the states recycled.
func (p *Program) RunBatchSharded(ctx context.Context, inputs map[string]value.Value, workers int) (feature.Matrix, error) {
	if !p.fitted {
		return nil, fmt.Errorf("weld: run before Fit")
	}
	// Validate presence and equal lengths up front: a mismatch must be an
	// error here, not an out-of-range panic inside a shard goroutine.
	n := -1
	for _, sid := range p.G.Sources() {
		label := p.G.Node(sid).Label
		v, ok := inputs[label]
		if !ok {
			return nil, fmt.Errorf("weld: missing input %q", label)
		}
		if n == -1 {
			n = v.Len()
		} else if v.Len() != n {
			return nil, fmt.Errorf("weld: input %q has %d rows, want %d", label, v.Len(), n)
		}
	}
	if n <= 0 {
		return p.RunBatch(ctx, inputs) // resolve reports the precise error
	}
	shards := parallel.Shard(n, workers)
	if len(shards) <= 1 {
		return p.RunBatch(ctx, inputs)
	}
	start := time.Now()
	runs := make([]*BatchRun, len(shards))
	mats := make([]feature.Matrix, len(shards))
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for w, sh := range shards {
		wg.Add(1)
		go func(w int, sh [2]int) {
			defer wg.Done()
			rows := make([]int, 0, sh[1]-sh[0])
			for i := sh[0]; i < sh[1]; i++ {
				rows = append(rows, i)
			}
			sub := make(map[string]value.Value, len(inputs))
			for k, v := range inputs {
				sub[k] = v.Gather(rows)
			}
			r, err := p.NewRun(ctx, sub)
			if err != nil {
				errs[w] = err
				return
			}
			runs[w] = r
			mats[w], errs[w] = r.MatrixShared(p.AllIFVs())
		}(w, sh)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	// VStack copies the shard matrices into the merged result, so the shard
	// states can be recycled immediately after.
	out := feature.VStack(mats...)
	for _, r := range runs {
		r.Close()
	}
	p.Prof.addTotal(time.Since(start).Seconds())
	return out, nil
}

// RunPoint executes the pipeline for a single data input (an
// example-at-a-time query), sequentially. The returned matrix escapes; the
// allocation-free point path is NewRun + PointMatrix + Close.
func (p *Program) RunPoint(ctx context.Context, inputs map[string]value.Value) (feature.Matrix, error) {
	return p.RunBatch(ctx, inputs)
}

// ComputeIFVsParallel computes the given IFVs with their generators
// distributed across workers by LPT over profiled costs (section 4.4:
// feature generators are computationally independent, so they run
// concurrently; static assignment avoids scheduling overhead). Feature
// generators are disjoint subgraphs, so each worker writes only its own
// generators' node slots and the shared state stays race-free.
func (r *BatchRun) ComputeIFVsParallel(idx []int, workers int) error {
	if workers <= 1 || len(idx) <= 1 {
		return r.ComputeIFVs(idx)
	}
	if err := r.computePreprocessing(); err != nil {
		return err
	}
	costs := make([]float64, len(idx))
	for j, i := range idx {
		costs[j] = r.p.Prof.IFVCost(r.p.A, i)
	}
	groups := parallel.Assign(costs, workers)
	errs := make([]error, len(groups))
	var wg sync.WaitGroup
	for w, g := range groups {
		if len(g) == 0 {
			continue
		}
		wg.Add(1)
		go func(w int, g []int) {
			defer wg.Done()
			ifvs := make([]int, len(g))
			for j, gi := range g {
				ifvs[j] = idx[gi]
			}
			errs[w] = r.ComputeIFVs(ifvs)
		}(w, g)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// RunPointParallel executes a single-input query with query-aware
// parallelization. The returned matrix escapes; the pooled path is NewRun +
// ComputeIFVsParallel + PointMatrix + Close.
func (p *Program) RunPointParallel(ctx context.Context, inputs map[string]value.Value, workers int) (feature.Matrix, error) {
	if workers <= 1 || len(p.A.IFVs) <= 1 {
		return p.RunBatch(ctx, inputs)
	}
	r, err := p.NewRun(ctx, inputs)
	if err != nil {
		return nil, err
	}
	if err := r.ComputeIFVsParallel(p.AllIFVs(), workers); err != nil {
		return nil, err
	}
	return r.Matrix(p.AllIFVs())
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
