package weld

import (
	"context"
	"fmt"
	"sync"
	"time"

	"willump/internal/cache"
	"willump/internal/feature"
	"willump/internal/graph"
	"willump/internal/ops"
	"willump/internal/parallel"
	"willump/internal/value"
)

// BatchRun is one compiled execution over a batch of inputs. IFVs compute
// lazily and incrementally: cascades first compute the efficient IFVs, then
// resume the same run (or a row subset of it) to compute the rest, reusing
// everything already materialized.
//
// A run carries the context it was started with; execution checks it between
// plan steps (the graph blocks of section 5.2), so cancelling the context
// aborts a long batch promptly instead of at the end.
type BatchRun struct {
	p    *Program
	ctx  context.Context
	vals []value.Value // per-node computed values; sources prefilled
	have []bool
	n    int

	preDone bool
	ifvDone []bool
}

// NewRun starts a compiled run over the given inputs. ctx governs the whole
// run: every subsequent ComputeIFVs/Matrix call on the run observes it.
func (p *Program) NewRun(ctx context.Context, inputs map[string]value.Value) (*BatchRun, error) {
	if !p.fitted {
		return nil, fmt.Errorf("weld: run before Fit")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	vals, n, err := p.resolveInputs(inputs)
	if err != nil {
		return nil, err
	}
	r := &BatchRun{
		p:       p,
		ctx:     ctx,
		vals:    vals,
		have:    make([]bool, p.G.NumNodes()),
		n:       n,
		ifvDone: make([]bool, len(p.A.IFVs)),
	}
	for _, sid := range p.G.Sources() {
		r.have[sid] = true
	}
	return r, nil
}

// Len returns the batch size.
func (r *BatchRun) Len() int { return r.n }

// runStep executes one plan step, reading and writing r.vals. The run's
// context is checked first, so cancellation lands on a block boundary.
func (r *BatchRun) runStep(st step) error {
	if err := r.ctx.Err(); err != nil {
		return err
	}
	ins := make([]value.Value, len(st.ins))
	for i, in := range st.ins {
		if !r.have[in] {
			return fmt.Errorf("weld: step %d input %d not computed", st.out, in)
		}
		ins[i] = r.vals[in]
	}
	if !st.op.Compilable() {
		return r.runPythonStep(st, ins)
	}
	out, err := st.op.Apply(ins)
	if err != nil {
		return fmt.Errorf("weld: step %s: %w", st.op.Name(), err)
	}
	r.vals[st.out] = out
	r.have[st.out] = true
	return nil
}

// runPythonStep crosses into the interpreted runtime: it unboxes the
// columnar inputs row by row, applies the operator's boxed path, and reboxes
// the results into a column. The marshaling time on both sides is the
// "driver" overhead of section 5.2. The out-driver reuses one boxed-argument
// buffer across rows (operators do not retain their argument slice),
// mirroring the O(1)-conversion drivers the paper built.
func (r *BatchRun) runPythonStep(st step, ins []value.Value) error {
	n := r.n
	// Driver out: columnar -> boxed argument rows.
	start := time.Now()
	boxed := make([]any, len(ins)*n)
	for row := 0; row < n; row++ {
		for i := range ins {
			boxed[row*len(ins)+i] = ins[i].Box(row)
		}
	}
	r.p.Prof.addDriver(time.Since(start).Seconds())

	// Interpreted execution.
	opStart := time.Now()
	outs := make([]any, n)
	for row := 0; row < n; row++ {
		out, err := st.op.ApplyBoxed(boxed[row*len(ins) : (row+1)*len(ins)])
		if err != nil {
			return fmt.Errorf("weld: python step %s: %w", st.op.Name(), err)
		}
		outs[row] = out
	}
	opSec := time.Since(opStart).Seconds()
	for _, id := range st.nodes {
		r.p.Prof.addNode(id, n, opSec/float64(len(st.nodes)))
	}

	// Driver in: boxed -> columnar.
	start = time.Now()
	col, err := value.FromBoxed(outs)
	if err != nil {
		return fmt.Errorf("weld: python step %s: %w", st.op.Name(), err)
	}
	r.p.Prof.addDriver(time.Since(start).Seconds())

	r.vals[st.out] = col
	r.have[st.out] = true
	return nil
}

// computePreprocessing runs all preprocessing steps once per run.
func (r *BatchRun) computePreprocessing() error {
	if r.preDone {
		return nil
	}
	for _, st := range r.p.Steps {
		if st.ifv == -1 && !st.spine {
			if r.have[st.out] {
				continue
			}
			if err := r.runStep(st); err != nil {
				return err
			}
		}
	}
	r.preDone = true
	return nil
}

// ComputeIFVs materializes the selected IFVs (by index), going through the
// per-IFV feature cache when one is attached.
func (r *BatchRun) ComputeIFVs(idx []int) error {
	if err := r.computePreprocessing(); err != nil {
		return err
	}
	for _, i := range idx {
		if r.ifvDone[i] {
			continue
		}
		var c *cache.LRU
		if r.p.caches != nil {
			c = r.p.caches[i]
		}
		if c != nil {
			if err := r.computeIFVCached(i, c); err != nil {
				return err
			}
		} else {
			if err := r.computeIFVDirect(i); err != nil {
				return err
			}
		}
		r.ifvDone[i] = true
	}
	return nil
}

// computeIFVDirect executes the IFV's generator steps over the whole batch.
func (r *BatchRun) computeIFVDirect(i int) error {
	for _, st := range r.p.Steps {
		if st.ifv != i || r.have[st.out] {
			continue
		}
		if err := r.runStep(st); err != nil {
			return err
		}
	}
	return nil
}

// computeIFVCached serves rows from the IFV's LRU and computes only the
// misses, via a gathered sub-run of the generator. Cached entries hold the
// IFV's dense feature-vector rows, keyed by the generator's raw sources
// (section 4.5).
func (r *BatchRun) computeIFVCached(i int, c *cache.LRU) error {
	ifv := r.p.A.IFVs[i]
	width := r.p.Widths[ifv.Root]
	srcVals := make([]value.Value, len(ifv.Sources))
	for j, s := range ifv.Sources {
		srcVals[j] = r.vals[s]
	}
	out := feature.NewDense(r.n, width)
	keys := make([]string, r.n)
	// Deduplicate misses within the batch: one computation per distinct key,
	// scattered to every row sharing it. This is where feature-level caching
	// beats end-to-end caching — repeated sub-keys recur across data inputs
	// even when full inputs never repeat (section 4.5).
	missRowsByKey := make(map[string][]int)
	var reprRows []int
	for row := 0; row < r.n; row++ {
		keys[row] = cache.RowKey(srcVals, row)
		if vec, ok := c.Get(keys[row]); ok {
			copy(out.Row(row), vec)
			continue
		}
		if _, seen := missRowsByKey[keys[row]]; !seen {
			reprRows = append(reprRows, row)
		}
		missRowsByKey[keys[row]] = append(missRowsByKey[keys[row]], row)
	}
	if len(reprRows) > 0 {
		sub, err := r.gatherForIFV(i, reprRows)
		if err != nil {
			return err
		}
		if err := sub.computeIFVDirect(i); err != nil {
			return err
		}
		m, err := sub.vals[ifv.Root].AsMatrix()
		if err != nil {
			return fmt.Errorf("weld: IFV %d output: %w", i, err)
		}
		for k, repr := range reprRows {
			vec := feature.RowDense(m, k, nil)
			for _, row := range missRowsByKey[keys[repr]] {
				copy(out.Row(row), vec)
			}
			c.Put(keys[repr], vec)
		}
	}
	r.vals[ifv.Root] = value.NewMat(out)
	r.have[ifv.Root] = true
	return nil
}

// gatherForIFV builds a sub-run over the given rows containing everything
// the IFV's generator reads: raw sources and preprocessing outputs.
func (r *BatchRun) gatherForIFV(i int, rows []int) (*BatchRun, error) {
	sub := &BatchRun{
		p:       r.p,
		ctx:     r.ctx,
		vals:    make([]value.Value, len(r.vals)),
		have:    make([]bool, len(r.have)),
		n:       len(rows),
		preDone: true,
		ifvDone: make([]bool, len(r.ifvDone)),
	}
	for id, ok := range r.have {
		if ok {
			sub.vals[id] = r.vals[id].Gather(rows)
			sub.have[id] = true
		}
	}
	// The IFV's own root must be recomputed even if a previous pass stored a
	// value for it.
	root := r.p.A.IFVs[i].Root
	sub.have[root] = false
	return sub, nil
}

// SubsetRun returns a new run restricted to the given rows, carrying over
// every value already computed (gathered to the subset). Cascades use it to
// run the full model only on low-confidence rows; top-K uses it to re-rank
// the filtered subset.
func (r *BatchRun) SubsetRun(rows []int) *BatchRun {
	sub := &BatchRun{
		p:       r.p,
		ctx:     r.ctx,
		vals:    make([]value.Value, len(r.vals)),
		have:    make([]bool, len(r.have)),
		n:       len(rows),
		preDone: r.preDone,
		ifvDone: make([]bool, len(r.ifvDone)),
	}
	copy(sub.ifvDone, r.ifvDone)
	for id, ok := range r.have {
		if ok {
			sub.vals[id] = r.vals[id].Gather(rows)
			sub.have[id] = true
		}
	}
	return sub
}

// spineApplicable returns the IFV indices (among idx) that are ancestors of
// the given spine node, i.e. whose features flow through it.
func (r *BatchRun) spineApplicable(spineID graph.NodeID, idx []int) map[int]bool {
	anc := r.p.G.AncestorsOf(spineID)
	out := make(map[int]bool)
	for _, i := range idx {
		if anc[r.p.A.IFVs[i].Root] {
			out[i] = true
		}
	}
	return out
}

// Matrix computes and horizontally concatenates the selected IFVs in leaf
// order, applying elementwise spine operators per IFV (valid because they
// commute with concatenation). Selecting every IFV reproduces the full
// feature vector of the original pipeline.
func (r *BatchRun) Matrix(idx []int) (feature.Matrix, error) {
	if err := r.ComputeIFVs(idx); err != nil {
		return nil, err
	}
	ordered := append([]int(nil), idx...)
	sortInts(ordered)
	mats := make([]feature.Matrix, len(ordered))
	for j, i := range ordered {
		m, err := r.vals[r.p.A.IFVs[i].Root].AsMatrix()
		if err != nil {
			return nil, fmt.Errorf("weld: IFV %d output: %w", i, err)
		}
		mats[j] = m
	}
	// Apply elementwise (non-concat) spine ops to the IFVs beneath them.
	for _, sid := range r.p.A.Spine {
		op := r.p.G.Node(sid).Op
		if _, isConcat := op.(*ops.Concat); isConcat {
			continue
		}
		applies := r.spineApplicable(sid, ordered)
		for j, i := range ordered {
			if !applies[i] {
				continue
			}
			v, err := op.Apply([]value.Value{value.NewMat(mats[j])})
			if err != nil {
				return nil, fmt.Errorf("weld: spine op %s: %w", op.Name(), err)
			}
			m, err := v.AsMatrix()
			if err != nil {
				return nil, err
			}
			mats[j] = m
		}
	}
	return feature.HStack(mats...), nil
}

// AllIFVs returns the index list [0, len(IFVs)).
func (p *Program) AllIFVs() []int {
	idx := make([]int, len(p.A.IFVs))
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// RunBatch compiles-and-executes the whole pipeline over a batch, returning
// the full feature matrix. The context is checked between plan steps, so
// cancelling it aborts a long batch promptly.
func (p *Program) RunBatch(ctx context.Context, inputs map[string]value.Value) (feature.Matrix, error) {
	start := time.Now()
	r, err := p.NewRun(ctx, inputs)
	if err != nil {
		return nil, err
	}
	m, err := r.Matrix(p.AllIFVs())
	p.Prof.addTotal(time.Since(start).Seconds())
	return m, err
}

// RunBatchSharded executes the pipeline data-parallel across workers, each
// handling a contiguous row shard (the paper's batch parallelization mode:
// different inputs end-to-end on different threads).
func (p *Program) RunBatchSharded(ctx context.Context, inputs map[string]value.Value, workers int) (feature.Matrix, error) {
	vals, n, err := p.resolveInputs(inputs)
	if err != nil {
		return nil, err
	}
	_ = vals
	shards := parallel.Shard(n, workers)
	if len(shards) <= 1 {
		return p.RunBatch(ctx, inputs)
	}
	mats := make([]feature.Matrix, len(shards))
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for w, sh := range shards {
		wg.Add(1)
		go func(w int, sh [2]int) {
			defer wg.Done()
			rows := make([]int, 0, sh[1]-sh[0])
			for i := sh[0]; i < sh[1]; i++ {
				rows = append(rows, i)
			}
			sub := make(map[string]value.Value, len(inputs))
			for k, v := range inputs {
				sub[k] = v.Gather(rows)
			}
			mats[w], errs[w] = p.RunBatch(ctx, sub)
		}(w, sh)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	return feature.VStack(mats...), nil
}

// RunPoint executes the pipeline for a single data input (an
// example-at-a-time query), sequentially.
func (p *Program) RunPoint(ctx context.Context, inputs map[string]value.Value) (feature.Matrix, error) {
	return p.RunBatch(ctx, inputs)
}

// RunPointParallel executes a single-input query with the IFV generators
// distributed across workers by LPT over their profiled costs (section 4.4:
// feature generators are computationally independent, so they run
// concurrently; static assignment avoids scheduling overhead).
func (p *Program) RunPointParallel(ctx context.Context, inputs map[string]value.Value, workers int) (feature.Matrix, error) {
	if workers <= 1 || len(p.A.IFVs) <= 1 {
		return p.RunBatch(ctx, inputs)
	}
	r, err := p.NewRun(ctx, inputs)
	if err != nil {
		return nil, err
	}
	if err := r.computePreprocessing(); err != nil {
		return nil, err
	}
	costs := make([]float64, len(p.A.IFVs))
	for i := range costs {
		costs[i] = p.Prof.IFVCost(p.A, i)
	}
	groups := parallel.Assign(costs, workers)
	errs := make([]error, len(groups))
	var wg sync.WaitGroup
	for w, g := range groups {
		if len(g) == 0 {
			continue
		}
		wg.Add(1)
		go func(w int, g []int) {
			defer wg.Done()
			// Feature generators are disjoint subgraphs: each worker writes
			// only its own generators' node slots, so the shared slices are
			// written race-free.
			errs[w] = r.ComputeIFVs(g)
		}(w, g)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	return r.Matrix(p.AllIFVs())
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
