package weld

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"willump/internal/feature"
	"willump/internal/graph"
	"willump/internal/ops"
	"willump/internal/value"
)

// textPipeline builds a Toxic-style two-generator text graph:
// text -> clean -> tok -> ngram -> tfidf  (generator 0)
//
//	\--> stats                      (generator 1)
//
// concat(tfidf, stats)
func textPipeline(t *testing.T) (*graph.Graph, map[string]value.Value) {
	t.Helper()
	b := graph.NewBuilder()
	text := b.Input("text")
	clean := b.Add("clean", ops.NewClean(), text)
	tok := b.Add("tok", ops.NewTokenize(), clean)
	ng := b.Add("ngram", ops.NewWordNGrams(1, 2), tok)
	tfidf := b.Add("tfidf", ops.NewTFIDF(64, ops.NormL2), ng)
	stats := b.Add("stats", ops.NewTextStats([]string{"bad"}), text)
	cat := b.Add("concat", ops.NewConcat(), tfidf, stats)
	b.SetOutput(cat)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	docs := []string{
		"good dog plays fetch", "bad cat is bad", "the quick brown fox",
		"bad weather today", "nice sunny day", "dogs and cats living together",
	}
	return g, map[string]value.Value{"text": value.NewStrings(docs)}
}

// lookupPipeline builds a MusicRec-style graph with two local lookup tables.
func lookupPipeline(t *testing.T) (*graph.Graph, map[string]value.Value, *ops.LocalTable, *ops.LocalTable) {
	t.Helper()
	userTable := ops.NewLocalTable(2, map[int64][]float64{
		0: {0.1, 0.2}, 1: {1.1, 1.2}, 2: {2.1, 2.2},
	})
	songTable := ops.NewLocalTable(3, map[int64][]float64{
		0: {10, 11, 12}, 1: {20, 21, 22},
	})
	b := graph.NewBuilder()
	user := b.Input("user")
	song := b.Input("song")
	uf := b.Add("user_features", ops.NewLookup("users", userTable), user)
	sf := b.Add("song_features", ops.NewLookup("songs", songTable), song)
	cat := b.Add("concat", ops.NewConcat(), uf, sf)
	b.SetOutput(cat)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	inputs := map[string]value.Value{
		"user": value.NewInts([]int64{0, 1, 2, 0, 1}),
		"song": value.NewInts([]int64{0, 1, 0, 1, 0}),
	}
	return g, inputs, userTable, songTable
}

func fitProgram(t *testing.T, g *graph.Graph, inputs map[string]value.Value) (*Program, feature.Matrix) {
	t.Helper()
	p, err := Compile(g)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	out, err := p.Fit(context.Background(), inputs)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	m, err := out.AsMatrix()
	if err != nil {
		t.Fatalf("output: %v", err)
	}
	return p, m
}

func matricesClose(t *testing.T, a, b feature.Matrix, tol float64) {
	t.Helper()
	if a.Rows() != b.Rows() || a.Cols() != b.Cols() {
		t.Fatalf("shape (%d,%d) != (%d,%d)", a.Rows(), a.Cols(), b.Rows(), b.Cols())
	}
	for r := 0; r < a.Rows(); r++ {
		for c := 0; c < a.Cols(); c++ {
			if math.Abs(a.At(r, c)-b.At(r, c)) > tol {
				t.Fatalf("(%d,%d): %v != %v", r, c, a.At(r, c), b.At(r, c))
			}
		}
	}
}

func TestFitProducesTrainingMatrix(t *testing.T) {
	g, inputs := textPipeline(t)
	p, m := fitProgram(t, g, inputs)
	if m.Rows() != 6 {
		t.Fatalf("rows = %d, want 6", m.Rows())
	}
	if m.Cols() < 5 {
		t.Fatalf("cols = %d, want tfidf width + 4 stats", m.Cols())
	}
	if len(p.Spans) != 2 {
		t.Fatalf("spans = %v, want 2 IFVs", p.Spans)
	}
	if p.Spans[1].Width() != 4 {
		t.Errorf("stats IFV width = %d, want 4", p.Spans[1].Width())
	}
	if !p.Fitted() {
		t.Error("Fitted() = false after Fit")
	}
}

func TestCompiledMatchesFitOutput(t *testing.T) {
	g, inputs := textPipeline(t)
	p, want := fitProgram(t, g, inputs)
	got, err := p.RunBatch(context.Background(), inputs)
	if err != nil {
		t.Fatalf("RunBatch: %v", err)
	}
	matricesClose(t, got, want, 1e-12)
}

func TestInterpretedMatchesCompiled(t *testing.T) {
	g, inputs := textPipeline(t)
	p, want := fitProgram(t, g, inputs)
	got, err := p.RunInterpreted(context.Background(), inputs)
	if err != nil {
		t.Fatalf("RunInterpreted: %v", err)
	}
	matricesClose(t, got, want, 1e-9)
}

func TestInterpretedMatchesCompiledLookups(t *testing.T) {
	g, inputs, _, _ := lookupPipeline(t)
	p, want := fitProgram(t, g, inputs)
	got, err := p.RunInterpreted(context.Background(), inputs)
	if err != nil {
		t.Fatalf("RunInterpreted: %v", err)
	}
	matricesClose(t, got, want, 1e-12)
}

func TestFusionHappensAndMatches(t *testing.T) {
	g, inputs := textPipeline(t)
	p, want := fitProgram(t, g, inputs)
	// After Fit, the clean->tok->ngram->tfidf chain should be fused into one
	// step: plan steps < graph transformation nodes.
	fusedSteps := 0
	for _, st := range p.Steps {
		if len(st.nodes) > 1 {
			fusedSteps++
		}
	}
	if fusedSteps == 0 {
		t.Error("no fused steps produced for a canonical text chain")
	}
	got, err := p.RunBatch(context.Background(), inputs)
	if err != nil {
		t.Fatalf("RunBatch: %v", err)
	}
	matricesClose(t, got, want, 1e-12)
}

func TestSubsetIFVMatrix(t *testing.T) {
	g, inputs, userTable, songTable := lookupPipeline(t)
	p, full := fitProgram(t, g, inputs)
	r, err := p.NewRun(context.Background(), inputs)
	if err != nil {
		t.Fatalf("NewRun: %v", err)
	}
	m0, err := r.Matrix([]int{0})
	if err != nil {
		t.Fatalf("Matrix([0]): %v", err)
	}
	if m0.Cols() != 2 {
		t.Fatalf("IFV 0 cols = %d, want 2 (user features)", m0.Cols())
	}
	for row := 0; row < m0.Rows(); row++ {
		for c := 0; c < 2; c++ {
			if m0.At(row, c) != full.At(row, c) {
				t.Fatalf("subset matrix differs at (%d,%d)", row, c)
			}
		}
	}
	// Computing only IFV 0 must not touch the song table.
	songBefore := songTable.Requests()
	r2, _ := p.NewRun(context.Background(), inputs)
	if _, err := r2.Matrix([]int{0}); err != nil {
		t.Fatal(err)
	}
	if songTable.Requests() != songBefore {
		t.Error("computing user IFV touched the song table")
	}
	_ = userTable
}

func TestResumeRunCompletesFullMatrix(t *testing.T) {
	g, inputs, _, _ := lookupPipeline(t)
	p, full := fitProgram(t, g, inputs)
	r, err := p.NewRun(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Matrix([]int{0}); err != nil {
		t.Fatal(err)
	}
	// Resume: computing the rest must reuse IFV 0 and produce the full matrix.
	m, err := r.Matrix(p.AllIFVs())
	if err != nil {
		t.Fatal(err)
	}
	matricesClose(t, m, full, 1e-12)
}

func TestSubsetRunGathersComputedState(t *testing.T) {
	g, inputs, userTable, _ := lookupPipeline(t)
	p, full := fitProgram(t, g, inputs)
	r, err := p.NewRun(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Matrix([]int{0}); err != nil {
		t.Fatal(err)
	}
	userReqsBefore := userTable.Requests()
	sub := r.SubsetRun([]int{1, 3})
	m, err := sub.Matrix(p.AllIFVs())
	if err != nil {
		t.Fatal(err)
	}
	if userTable.Requests() != userReqsBefore {
		t.Error("subset run recomputed the already-computed user IFV")
	}
	if m.Rows() != 2 {
		t.Fatalf("rows = %d, want 2", m.Rows())
	}
	for c := 0; c < m.Cols(); c++ {
		if m.At(0, c) != full.At(1, c) || m.At(1, c) != full.At(3, c) {
			t.Fatalf("subset row mismatch at col %d", c)
		}
	}
}

func TestFeatureCachingReducesTableRequests(t *testing.T) {
	g, inputs, userTable, songTable := lookupPipeline(t)
	p, full := fitProgram(t, g, inputs)
	p.EnableFeatureCaching(0, nil)
	reqU := userTable.Requests()
	reqS := songTable.Requests()
	got, err := p.RunBatch(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	matricesClose(t, got, full, 1e-12)
	// Batch has users {0,1,2,0,1}: first run misses 3 unique keys.
	if delta := userTable.Requests() - reqU; delta != 3 {
		t.Errorf("user lookups = %d, want 3 (unique keys only)", delta)
	}
	if delta := songTable.Requests() - reqS; delta != 2 {
		t.Errorf("song lookups = %d, want 2", delta)
	}
	// Second identical run: all hits, zero new requests.
	reqU = userTable.Requests()
	got2, err := p.RunBatch(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	matricesClose(t, got2, full, 1e-12)
	if userTable.Requests() != reqU {
		t.Error("second run should be fully served from the feature cache")
	}
	hits, _ := p.CacheStats()
	if hits == 0 {
		t.Error("cache reported no hits")
	}
}

func TestPointParallelMatchesSequential(t *testing.T) {
	g, inputs := textPipeline(t)
	p, _ := fitProgram(t, g, inputs)
	point := map[string]value.Value{"text": value.NewStrings([]string{"bad dog bad"})}
	seq, err := p.RunPoint(context.Background(), point)
	if err != nil {
		t.Fatal(err)
	}
	par, err := p.RunPointParallel(context.Background(), point, 4)
	if err != nil {
		t.Fatal(err)
	}
	matricesClose(t, par, seq, 1e-12)
}

func TestBatchShardedMatchesSequential(t *testing.T) {
	g, inputs := textPipeline(t)
	p, want := fitProgram(t, g, inputs)
	got, err := p.RunBatchSharded(context.Background(), inputs, 3)
	if err != nil {
		t.Fatal(err)
	}
	matricesClose(t, got, want, 1e-12)
}

func TestPythonNodeDriverAccounting(t *testing.T) {
	// Insert a non-compilable op and confirm driver time is recorded and the
	// result still matches the interpreted reference.
	b := graph.NewBuilder()
	x := b.Input("x")
	ns := b.Add("stats", ops.NewNumericStats(), x)
	py := b.Add("py_clip", pythonClip{}, ns)
	cat := b.Add("concat", ops.NewConcat(), py)
	b.SetOutput(cat)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = float64(i%200) - 100
	}
	inputs := map[string]value.Value{"x": value.NewFloats(xs)}
	p, fitOut := fitProgram(t, g, inputs)
	got, err := p.RunBatch(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	matricesClose(t, got, fitOut, 1e-12)
	if p.Prof.DriverSeconds() <= 0 {
		t.Error("no driver time recorded crossing a Python node during compiled execution")
	}
	interp, err := p.RunInterpreted(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	matricesClose(t, interp, fitOut, 1e-12)
}

// pythonClip is a non-compilable clip used to exercise the driver path.
type pythonClip struct{}

func (pythonClip) Name() string      { return "python_clip" }
func (pythonClip) Compilable() bool  { return false }
func (pythonClip) Commutative() bool { return false }
func (pythonClip) Apply(ins []value.Value) (value.Value, error) {
	return ops.NewClip(-10, 10).Apply(ins)
}
func (pythonClip) ApplyBoxed(ins []any) (any, error) {
	return ops.NewClip(-10, 10).ApplyBoxed(ins)
}

func TestProfileCostsPopulated(t *testing.T) {
	g, inputs := textPipeline(t)
	p, _ := fitProgram(t, g, inputs)
	total := 0.0
	for i := range p.A.IFVs {
		c := p.Prof.IFVCost(p.A, i)
		if c < 0 {
			t.Errorf("IFV %d cost negative", i)
		}
		total += c
	}
	if total <= 0 {
		t.Error("no IFV costs recorded during Fit")
	}
}

func TestRunBeforeFitErrors(t *testing.T) {
	g, inputs := textPipeline(t)
	p, err := Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.NewRun(context.Background(), inputs); err == nil {
		t.Error("want error running before Fit")
	}
}

func TestMissingInputErrors(t *testing.T) {
	g, inputs := textPipeline(t)
	p, _ := fitProgram(t, g, inputs)
	if _, err := p.RunBatch(context.Background(), map[string]value.Value{}); err == nil {
		t.Error("want error for missing input")
	}
	if _, err := p.RunBatch(context.Background(), map[string]value.Value{"wrong": value.NewStrings([]string{"x"})}); err == nil {
		t.Error("want error for misnamed input")
	}
}

func TestSpineElementwiseOpAppliedPerIFV(t *testing.T) {
	// clip(concat(a, b)) must equal concat(clip(a), clip(b)); the subset path
	// applies clip per IFV.
	b := graph.NewBuilder()
	x := b.Input("x")
	y := b.Input("y")
	nx := b.Add("nx", ops.NewNumericStats(), x)
	ny := b.Add("ny", ops.NewNumericStats(), y)
	cat := b.Add("concat", ops.NewConcat(), nx, ny)
	clip := b.Add("clip", ops.NewClip(-2, 2), cat)
	b.SetOutput(clip)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	inputs := map[string]value.Value{
		"x": value.NewFloats([]float64{-5, 1, 7}),
		"y": value.NewFloats([]float64{3, -9, 0}),
	}
	p, want := fitProgram(t, g, inputs)
	got, err := p.RunBatch(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	matricesClose(t, got, want, 1e-12)
	// And the interpreted path agrees too.
	interp, err := p.RunInterpreted(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	matricesClose(t, interp, want, 1e-12)
}

// Property: compiled and interpreted agree on random text batches.
func TestCompiledInterpretedAgreeProperty(t *testing.T) {
	g, inputs := textPipeline(t)
	p, _ := fitProgram(t, g, inputs)
	words := []string{"bad", "dog", "cat", "fox", "sun", "rain", "good", "day"}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(5)
		docs := make([]string, n)
		for i := range docs {
			k := 1 + rng.Intn(6)
			s := ""
			for j := 0; j < k; j++ {
				if j > 0 {
					s += " "
				}
				s += words[rng.Intn(len(words))]
			}
			docs[i] = s
		}
		in := map[string]value.Value{"text": value.NewStrings(docs)}
		a, err := p.RunBatch(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		b, err := p.RunInterpreted(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		matricesClose(t, a, b, 1e-9)
	}
}

// TestParallelPythonStepsRaceFree pins the per-step driver-buffer contract:
// two non-compilable feature generators executed by ComputeIFVsParallel
// must not share interpreted-boundary scratch (run with -race to enforce),
// and the parallel result must match sequential execution exactly.
func TestParallelPythonStepsRaceFree(t *testing.T) {
	b := graph.NewBuilder()
	a := b.Input("a")
	c := b.Input("b")
	g0 := b.Add("ratio0", ops.NewRatio(), a, c)
	g1 := b.Add("ratio1", ops.NewRatio(), c, a)
	cat := b.Add("concat", ops.NewConcat(), g0, g1)
	b.SetOutput(cat)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	n := 64
	av := make([]float64, n)
	bv := make([]float64, n)
	for i := range av {
		av[i] = float64(i + 1)
		bv[i] = float64(2*i + 3)
	}
	inputs := map[string]value.Value{"a": value.NewFloats(av), "b": value.NewFloats(bv)}
	if _, err := p.Fit(context.Background(), inputs); err != nil {
		t.Fatal(err)
	}
	want, err := p.RunBatch(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 20; rep++ {
		r, err := p.NewRun(context.Background(), inputs)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.ComputeIFVsParallel(p.AllIFVs(), 2); err != nil {
			t.Fatal(err)
		}
		got, err := r.MatrixShared(p.AllIFVs())
		if err != nil {
			t.Fatal(err)
		}
		if !feature.Equal(want, got) {
			t.Fatalf("rep %d: parallel python-step result differs from sequential", rep)
		}
		r.Close()
	}
}
