package weld

import (
	"fmt"

	"willump/internal/graph"
)

// Restore marks a freshly compiled program as fitted from state captured in
// an artifact, instead of running Fit over training data: the IFV output
// widths recorded at training time (which determine the column spans of the
// full feature vector) and the profiled cost model. Every operator in the
// program's graph must already carry its fitted state — decoded operators
// do. Restore finishes by fusing the compiled plan, exactly like Fit.
func (p *Program) Restore(widths map[graph.NodeID]int, prof *Profile) error {
	if p.fitted {
		return fmt.Errorf("weld: Restore on an already fitted program")
	}
	p.Widths = make(map[graph.NodeID]int, len(widths))
	for id, w := range widths {
		if int(id) < 0 || int(id) >= p.G.NumNodes() {
			return fmt.Errorf("weld: restored width for node %d out of range", id)
		}
		p.Widths[id] = w
	}
	spans, err := p.A.ColumnSpans(p.Widths)
	if err != nil {
		return fmt.Errorf("weld: %w", err)
	}
	p.Spans = spans
	if prof != nil {
		p.Prof = prof
	}
	p.fitted = true
	p.Fuse()
	return nil
}
