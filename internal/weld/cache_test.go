package weld

import (
	"context"
	"sync"
	"testing"

	"willump/internal/value"
)

// TestCachedMatchesUncached pins the cached execution paths bit-identically
// to the uncached ones, for batches (mixed hits/misses, then all hits) and
// point queries, across repeated runs on pooled states.
func TestCachedMatchesUncached(t *testing.T) {
	g, inputs, _, _ := lookupPipeline(t)
	p, full := fitProgram(t, g, inputs)
	p.EnableFeatureCaching(0, nil)
	ctx := context.Background()
	for pass := 0; pass < 3; pass++ {
		got, err := p.RunBatch(ctx, inputs)
		if err != nil {
			t.Fatal(err)
		}
		matricesClose(t, got, full, 0) // bit-identical: lookups copy rows
	}
	for row := 0; row < 5; row++ {
		point := map[string]value.Value{
			"user": inputs["user"].Gather([]int{row}),
			"song": inputs["song"].Gather([]int{row}),
		}
		for pass := 0; pass < 2; pass++ { // miss then hit
			m, err := p.RunPoint(ctx, point)
			if err != nil {
				t.Fatal(err)
			}
			for c := 0; c < full.Cols(); c++ {
				if m.At(0, c) != full.At(row, c) {
					t.Fatalf("pass %d row %d col %d: cached %v, want %v", pass, row, c, m.At(0, c), full.At(row, c))
				}
			}
		}
	}
	if s := p.FeatureCacheStats(); s.Hits == 0 {
		t.Error("cached runs recorded no hits")
	}
}

// TestCachedEvictionCorrectness forces constant eviction with a tiny
// bounded cache and checks results never drift from the uncached baseline.
func TestCachedEvictionCorrectness(t *testing.T) {
	g, inputs, _, _ := lookupPipeline(t)
	p, full := fitProgram(t, g, inputs)
	p.EnableFeatureCachingSpecs([]CacheSpec{{IFV: 0, Capacity: 2}, {IFV: 1, Capacity: 2}})
	ctx := context.Background()
	for pass := 0; pass < 10; pass++ {
		got, err := p.RunBatch(ctx, inputs)
		if err != nil {
			t.Fatal(err)
		}
		matricesClose(t, got, full, 0)
	}
}

// TestCacheSpecsPartialCoverage caches only one IFV; the other computes
// directly every time, and the plan is reported back verbatim.
func TestCacheSpecsPartialCoverage(t *testing.T) {
	g, inputs, userTable, songTable := lookupPipeline(t)
	p, full := fitProgram(t, g, inputs)
	p.EnableFeatureCachingSpecs([]CacheSpec{{IFV: 0, Capacity: 64}})
	specs := p.CacheSpecs()
	if len(specs) != 1 || specs[0] != (CacheSpec{IFV: 0, Capacity: 64}) {
		t.Fatalf("CacheSpecs = %+v", specs)
	}
	ctx := context.Background()
	if _, err := p.RunBatch(ctx, inputs); err != nil {
		t.Fatal(err)
	}
	u1, s1 := userTable.Requests(), songTable.Requests()
	got, err := p.RunBatch(ctx, inputs)
	if err != nil {
		t.Fatal(err)
	}
	matricesClose(t, got, full, 0)
	if userTable.Requests() != u1 {
		t.Error("cached user IFV re-issued lookups on the second run")
	}
	if songTable.Requests() == s1 {
		t.Error("uncached song IFV issued no lookups on the second run")
	}
	if _, ok := p.IFVCacheStats(0); !ok {
		t.Error("IFV 0 should report cache stats")
	}
	if _, ok := p.IFVCacheStats(1); ok {
		t.Error("IFV 1 has no cache but reports stats")
	}
}

// TestCachedConcurrentPointRuns hammers the cached point path from many
// goroutines over a shared Program — the serving traffic shape the sharded
// cache exists for. Each run's result must match the baseline row exactly.
func TestCachedConcurrentPointRuns(t *testing.T) {
	g, inputs, _, _ := lookupPipeline(t)
	p, full := fitProgram(t, g, inputs)
	p.EnableFeatureCaching(4, nil) // small: hits, misses, and evictions mix
	ctx := context.Background()
	users := inputs["user"].Ints
	songs := inputs["song"].Ints
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				row := (w + i) % len(users)
				point := map[string]value.Value{
					"user": value.NewInts(users[row : row+1]),
					"song": value.NewInts(songs[row : row+1]),
				}
				run, err := p.NewRun(ctx, point)
				if err != nil {
					errs <- err
					return
				}
				m, err := run.PointMatrix(p.AllIFVs())
				if err != nil {
					errs <- err
					return
				}
				for c := 0; c < full.Cols(); c++ {
					if m.At(0, c) != full.At(row, c) {
						t.Errorf("worker %d row %d col %d: %v != %v", w, row, c, m.At(0, c), full.At(row, c))
						run.Close()
						return
					}
				}
				run.Close()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
