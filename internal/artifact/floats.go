package artifact

import (
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"strconv"
)

// Scalar is a float64 whose JSON form is an exact-round-trip hexadecimal
// float string (strconv 'x' format). Unlike a plain JSON number it also
// represents +Inf, -Inf, and NaN, which the cascade threshold can take
// (a threshold above 1 sends every input to the full model).
type Scalar float64

// MarshalJSON implements json.Marshaler.
func (s Scalar) MarshalJSON() ([]byte, error) {
	return json.Marshal(strconv.FormatFloat(float64(s), 'x', -1, 64))
}

// UnmarshalJSON implements json.Unmarshaler.
func (s *Scalar) UnmarshalJSON(data []byte) error {
	var str string
	if err := json.Unmarshal(data, &str); err != nil {
		// Accept plain JSON numbers too, for hand-edited artifacts.
		var f float64
		if nerr := json.Unmarshal(data, &f); nerr == nil {
			*s = Scalar(f)
			return nil
		}
		return fmt.Errorf("artifact: scalar: %w", err)
	}
	f, err := strconv.ParseFloat(str, 64)
	if err != nil {
		return fmt.Errorf("artifact: scalar %q: %w", str, err)
	}
	*s = Scalar(f)
	return nil
}

// Vector is a []float64 whose JSON form is the base64 encoding of the
// little-endian IEEE-754 bit patterns. Every value round-trips bit-exactly
// (including negative zero, Inf, and NaN), and large weight vectors encode
// far more compactly than decimal numbers.
type Vector []float64

// MarshalJSON implements json.Marshaler.
func (v Vector) MarshalJSON() ([]byte, error) {
	buf := make([]byte, 8*len(v))
	for i, f := range v {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(f))
	}
	return json.Marshal(base64.StdEncoding.EncodeToString(buf))
}

// UnmarshalJSON implements json.Unmarshaler.
func (v *Vector) UnmarshalJSON(data []byte) error {
	var str string
	if err := json.Unmarshal(data, &str); err != nil {
		return fmt.Errorf("artifact: vector: %w", err)
	}
	buf, err := base64.StdEncoding.DecodeString(str)
	if err != nil {
		return fmt.Errorf("artifact: vector: %w", err)
	}
	if len(buf)%8 != 0 {
		return fmt.Errorf("artifact: vector has %d bytes, not a multiple of 8", len(buf))
	}
	out := make([]float64, len(buf)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	*v = out
	return nil
}

// Vectors converts a [][]float64 into a slice of Vectors (sharing backing
// arrays).
func Vectors(m [][]float64) []Vector {
	out := make([]Vector, len(m))
	for i, row := range m {
		out[i] = Vector(row)
	}
	return out
}

// Floats converts a slice of Vectors back into [][]float64 (sharing backing
// arrays).
func Floats(vs []Vector) [][]float64 {
	out := make([][]float64, len(vs))
	for i, v := range vs {
		out[i] = []float64(v)
	}
	return out
}
