// Package artifact defines the versioned, serializable wire format that
// carries a trained and optimized Willump pipeline from the offline
// optimization process to online serving processes (the train-once /
// deploy-many split). An artifact captures everything Optimize learned —
// graph topology, fitted operator state, trained model weights, cascade and
// top-K filter configuration, profiled costs, and the resolved options — so
// a fresh process can recompile and serve identical predictions without any
// access to training data.
//
// The format is a single JSON document whose first two fields are a magic
// string and a format version; floats that affect predictions are encoded
// bit-exactly (see Scalar and Vector). Operator and model payloads are
// opaque (kind, state) pairs resolved through the registries in
// internal/ops and internal/model, so user-registered implementations
// participate without this package knowing about them.
package artifact

import (
	"encoding/json"
	"fmt"
	"io"
)

// Magic identifies a Willump artifact stream.
const Magic = "willump/artifact"

// Version is the current artifact format version. Readers reject artifacts
// with a different version rather than guessing at compatibility.
const Version = 1

// OpState is one operator's serialized payload: the registry kind plus the
// operator's own MarshalState output (empty for stateless operators).
type OpState struct {
	Kind  string          `json:"kind"`
	State json.RawMessage `json:"state,omitempty"`
}

// Node is one transformation-graph node. Source nodes (raw pipeline inputs)
// have a nil Op and no inputs. Node order is NodeID order, so positions
// double as ids.
type Node struct {
	Label  string   `json:"label"`
	Inputs []int    `json:"inputs,omitempty"`
	Op     *OpState `json:"op,omitempty"`
}

// Graph is the serialized transformation-graph topology.
type Graph struct {
	Nodes  []Node `json:"nodes"`
	Output int    `json:"output"`
}

// Model is one model's serialized payload, resolved through the model
// registry.
type Model struct {
	Kind  string          `json:"kind"`
	State json.RawMessage `json:"state"`
}

// CacheSpec is one IFV's planned feature-cache capacity (0 = unbounded).
// The plan is computed from training statistics at Optimize time and
// persisted so deployment processes — which never see training data —
// replay exactly the same statistically-aware cache layout.
type CacheSpec struct {
	IFV      int `json:"ifv"`
	Capacity int `json:"capacity,omitempty"`
}

// Options mirrors the resolved optimization options the pipeline was
// optimized with.
type Options struct {
	Cascades             bool    `json:"cascades,omitempty"`
	AccuracyTarget       float64 `json:"accuracy_target,omitempty"`
	Gamma                float64 `json:"gamma,omitempty"`
	TopK                 bool    `json:"top_k,omitempty"`
	CK                   int     `json:"ck,omitempty"`
	MinSubsetFrac        float64 `json:"min_subset_frac,omitempty"`
	FeatureCache         bool    `json:"feature_cache,omitempty"`
	FeatureCacheCapacity int     `json:"feature_cache_capacity,omitempty"`
	FeatureCacheBudget   int     `json:"feature_cache_budget,omitempty"`
	// FeatureCachePlanned marks artifacts written by the statistical cache
	// planner: FeatureCachePlan is then authoritative even when empty (the
	// planner selected nothing). Without it — artifacts from pre-planner
	// builds — readers fall back to the legacy flat-capacity layout.
	FeatureCachePlanned bool        `json:"feature_cache_planned,omitempty"`
	FeatureCachePlan    []CacheSpec `json:"feature_cache_plan,omitempty"`
	Workers             int         `json:"workers,omitempty"`
}

// IFVStat is one IFV's cascade statistics (importance and measured cost).
type IFVStat struct {
	Index      int    `json:"index"`
	Importance Scalar `json:"importance"`
	Cost       Scalar `json:"cost"`
}

// Approx is the approximate-model half of a cascade or top-K filter: the
// small model, the efficient/rest IFV partition, and the statistics the
// selection was based on.
type Approx struct {
	Small     Model     `json:"small"`
	Efficient []int     `json:"efficient"`
	Rest      []int     `json:"rest,omitempty"`
	Stats     []IFVStat `json:"stats,omitempty"`
}

// Cascade is the deployed cascade's threshold state. The threshold is a
// Scalar because it is +Inf when no candidate threshold met the accuracy
// target.
type Cascade struct {
	Threshold       Scalar `json:"threshold"`
	FullAccuracy    Scalar `json:"full_accuracy"`
	CascadeAccuracy Scalar `json:"cascade_accuracy"`
}

// Profile carries the per-node cost measurements gathered during Fit. They
// drive query-aware parallelization (LPT assignment over IFV costs) in the
// serving process, so deployment preserves them.
type Profile struct {
	NodeSeconds map[int]Scalar `json:"node_seconds,omitempty"`
	NodeRows    map[int]int64  `json:"node_rows,omitempty"`
}

// Artifact is the complete serialized form of an optimized pipeline. Magic
// and Version are the first fields of the struct so every artifact stream
// begins with a stable, pinnable header.
type Artifact struct {
	Magic   string  `json:"magic"`
	Version int     `json:"version"`
	Options Options `json:"options"`
	Graph   Graph   `json:"graph"`
	// Widths maps IFV-root node ids to their fitted output widths (known
	// only after fitting, e.g. TF-IDF vocabulary size).
	Widths  map[int]int `json:"widths"`
	Profile Profile     `json:"profile"`
	Model   Model       `json:"model"`
	Approx  *Approx     `json:"approx,omitempty"`
	Cascade *Cascade    `json:"cascade,omitempty"`
}

// Write stamps the header onto a and encodes it to w.
func Write(w io.Writer, a *Artifact) error {
	a.Magic = Magic
	a.Version = Version
	enc := json.NewEncoder(w)
	if err := enc.Encode(a); err != nil {
		return fmt.Errorf("artifact: encoding: %w", err)
	}
	return nil
}

// Read decodes an artifact from r, validating the header before trusting
// any of the payload.
func Read(r io.Reader) (*Artifact, error) {
	var a Artifact
	dec := json.NewDecoder(r)
	if err := dec.Decode(&a); err != nil {
		return nil, fmt.Errorf("artifact: decoding: %w", err)
	}
	if a.Magic != Magic {
		return nil, fmt.Errorf("artifact: bad magic %q: not a willump artifact", a.Magic)
	}
	if a.Version != Version {
		return nil, fmt.Errorf("artifact: version %d not supported (this build reads version %d)", a.Version, Version)
	}
	return &a, nil
}
