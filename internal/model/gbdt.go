package model

import (
	"math/rand"

	"willump/internal/feature"
)

// GBDTConfig holds gradient-boosting hyperparameters.
type GBDTConfig struct {
	Task         Task
	Trees        int     // boosting rounds (default 40)
	MaxDepth     int     // tree depth (default 5)
	LearningRate float64 // shrinkage (default 0.1)
	MinChild     int     // minimum samples per leaf child (default 10)
	Lambda       float64 // L2 on leaf values (default 1.0)
	MaxBins      int     // histogram bins per feature, <= 64 (default 32)
	Subsample    float64 // per-tree row subsampling in (0, 1] (default 1.0)
	Seed         int64
}

func (c GBDTConfig) withDefaults() GBDTConfig {
	if c.Trees <= 0 {
		c.Trees = 40
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 5
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.1
	}
	if c.MinChild <= 0 {
		c.MinChild = 10
	}
	if c.Lambda <= 0 {
		c.Lambda = 1.0
	}
	if c.MaxBins <= 1 || c.MaxBins > 64 {
		c.MaxBins = 32
	}
	if c.Subsample <= 0 || c.Subsample > 1 {
		c.Subsample = 1.0
	}
	return c
}

// GBDT is a histogram-based gradient-boosted decision tree ensemble with
// Newton leaf updates: logistic loss for classification, squared loss for
// regression. It stands in for the LightGBM models of the Music, Credit and
// Tracking benchmarks.
type GBDT struct {
	cfg GBDTConfig

	base        float64
	trees       []*tree
	numFeatures int
	gains       []float64
}

// NewGBDT returns an untrained GBDT.
func NewGBDT(cfg GBDTConfig) *GBDT {
	return &GBDT{cfg: cfg.withDefaults()}
}

// Task implements Model.
func (m *GBDT) Task() Task { return m.cfg.Task }

// Fresh implements Model.
func (m *GBDT) Fresh() Model { return NewGBDT(m.cfg) }

// NumFeatures implements Model.
func (m *GBDT) NumFeatures() int { return m.numFeatures }

// NumTrees returns the number of fitted trees.
func (m *GBDT) NumTrees() int { return len(m.trees) }

// Train implements Model.
func (m *GBDT) Train(x feature.Matrix, y []float64) error {
	if err := validateTrainInputs("GBDT", x, y); err != nil {
		return err
	}
	n, d := x.Rows(), x.Cols()
	m.numFeatures = d
	m.gains = make([]float64, d)
	m.trees = nil

	bn := newBinner(x, m.cfg.MaxBins)
	bins := bn.binned(x)

	// Initial score.
	var mean float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(n)
	if m.cfg.Task == Classification {
		m.base = clampLogOdds(mean)
	} else {
		m.base = mean
	}

	scores := make([]float64, n)
	for i := range scores {
		scores[i] = m.base
	}
	grad := make([]float64, n)
	hess := make([]float64, n)
	rng := rand.New(rand.NewSource(m.cfg.Seed))

	for t := 0; t < m.cfg.Trees; t++ {
		if m.cfg.Task == Classification {
			for i := range grad {
				p := sigmoid(scores[i])
				grad[i] = p - y[i]
				h := p * (1 - p)
				if h < 1e-6 {
					h = 1e-6
				}
				hess[i] = h
			}
		} else {
			for i := range grad {
				grad[i] = scores[i] - y[i]
				hess[i] = 1
			}
		}
		g := &treeGrower{
			bins:          bins,
			binner:        bn,
			grad:          grad,
			hess:          hess,
			maxDepth:      m.cfg.MaxDepth,
			minChild:      m.cfg.MinChild,
			lambda:        m.cfg.Lambda,
			minGain:       1e-9,
			gainByFeature: m.gains,
		}
		if m.cfg.Subsample < 1 {
			// Zero out gradients of unsampled rows (gradient one-pass
			// subsampling: unsampled rows contribute nothing).
			for i := range grad {
				if rng.Float64() > m.cfg.Subsample {
					grad[i] = 0
					hess[i] = 1e-9
				}
			}
		}
		tr := g.grow()
		m.trees = append(m.trees, tr)
		lr := m.cfg.LearningRate
		for i := 0; i < n; i++ {
			scores[i] += lr * tr.predictRow(x, i)
		}
	}
	return nil
}

// rawScore sums base plus shrunken tree outputs for row r.
func (m *GBDT) rawScore(x feature.Matrix, r int) float64 {
	s := m.base
	for _, t := range m.trees {
		s += m.cfg.LearningRate * t.predictRow(x, r)
	}
	return s
}

// PredictRow implements Model. Dense inputs take the row-slice tree walk;
// either way the call is allocation-free (the trees are walked iteratively,
// no explicit stack needed).
func (m *GBDT) PredictRow(x feature.Matrix, r int) float64 {
	var s float64
	if d, ok := x.(*feature.Dense); ok {
		row := d.Row(r)
		s = m.base
		for _, t := range m.trees {
			s += m.cfg.LearningRate * t.predictVec(row)
		}
	} else {
		s = m.rawScore(x, r)
	}
	if m.cfg.Task == Classification {
		return sigmoid(s)
	}
	return s
}

// Predict implements Model. Dense inputs use a row-slice fast path.
func (m *GBDT) Predict(x feature.Matrix) []float64 {
	out := make([]float64, x.Rows())
	if d, ok := x.(*feature.Dense); ok {
		lr := m.cfg.LearningRate
		for r := range out {
			row := d.Row(r)
			s := m.base
			for _, t := range m.trees {
				s += lr * t.predictVec(row)
			}
			if m.cfg.Task == Classification {
				s = sigmoid(s)
			}
			out[r] = s
		}
		return out
	}
	for r := range out {
		out[r] = m.PredictRow(x, r)
	}
	return out
}

// Importances implements Importancer: total split gain per feature, the
// standard ensemble importance the paper relies on for GBDT models.
func (m *GBDT) Importances() []float64 {
	out := make([]float64, len(m.gains))
	copy(out, m.gains)
	return out
}

// PermutationImportances estimates importances by measuring the increase in
// loss when one feature column is permuted, holding others fixed (the
// paper's alternative ensemble importance). It mutates nothing; the matrix
// is copied per feature.
func (m *GBDT) PermutationImportances(x feature.Matrix, y []float64, seed int64) []float64 {
	n, d := x.Rows(), x.Cols()
	if n == 0 || d == 0 {
		return make([]float64, d)
	}
	dense := feature.NewDense(n, d)
	for r := 0; r < n; r++ {
		row := dense.Row(r)
		x.ForEachNZ(r, func(c int, v float64) { row[c] = v })
	}
	baseLoss := m.loss(dense, y)
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, d)
	perm := make([]float64, n)
	saved := make([]float64, n)
	for f := 0; f < d; f++ {
		for r := 0; r < n; r++ {
			saved[r] = dense.At(r, f)
			perm[r] = saved[r]
		}
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		for r := 0; r < n; r++ {
			dense.Set(r, f, perm[r])
		}
		delta := m.loss(dense, y) - baseLoss
		if delta < 0 {
			delta = 0
		}
		out[f] = delta
		for r := 0; r < n; r++ {
			dense.Set(r, f, saved[r])
		}
	}
	return out
}

func (m *GBDT) loss(x feature.Matrix, y []float64) float64 {
	preds := m.Predict(x)
	if m.cfg.Task == Classification {
		return 1 - Accuracy(preds, y)
	}
	return MSE(preds, y)
}
