package model

import (
	"fmt"
	"math"
	"math/rand"

	"willump/internal/feature"
)

// LinearConfig holds hyperparameters shared by the linear models.
type LinearConfig struct {
	Epochs       int     // SGD passes over the data (default 10)
	LearningRate float64 // AdaGrad base step (default 0.1)
	L2           float64 // L2 regularization strength (default 1e-6)
	Seed         int64   // shuffle seed
}

func (c LinearConfig) withDefaults() LinearConfig {
	if c.Epochs <= 0 {
		c.Epochs = 10
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.1
	}
	if c.L2 < 0 {
		c.L2 = 0
	}
	return c
}

// Logistic is an L2-regularized logistic regression classifier trained with
// AdaGrad SGD. It supports sparse inputs natively, which matters for the
// TF-IDF benchmarks (Product, Toxic).
type Logistic struct {
	cfg LinearConfig

	w       []float64
	b       float64
	meanAbs []float64
}

// NewLogistic returns an untrained logistic regression model.
func NewLogistic(cfg LinearConfig) *Logistic {
	return &Logistic{cfg: cfg.withDefaults()}
}

// Task implements Model.
func (m *Logistic) Task() Task { return Classification }

// Fresh implements Model.
func (m *Logistic) Fresh() Model { return NewLogistic(m.cfg) }

// NumFeatures implements Model.
func (m *Logistic) NumFeatures() int { return len(m.w) }

// Weights returns the trained coefficient vector (shared; do not mutate).
func (m *Logistic) Weights() []float64 { return m.w }

func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// Train implements Model.
func (m *Logistic) Train(x feature.Matrix, y []float64) error {
	if x.Rows() != len(y) {
		return fmt.Errorf("model: Logistic.Train: %d rows vs %d labels", x.Rows(), len(y))
	}
	if x.Rows() == 0 {
		return fmt.Errorf("model: Logistic.Train: empty training set")
	}
	n, d := x.Rows(), x.Cols()
	m.w = make([]float64, d)
	m.b = 0
	g2 := make([]float64, d+1) // AdaGrad accumulators, last slot for bias
	rng := rand.New(rand.NewSource(m.cfg.Seed))
	order := rng.Perm(n)
	lr, l2 := m.cfg.LearningRate, m.cfg.L2
	for epoch := 0; epoch < m.cfg.Epochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, r := range order {
			z := feature.Dot(x, r, m.w) + m.b
			p := sigmoid(z)
			grad := p - y[r]
			x.ForEachNZ(r, func(c int, v float64) {
				g := grad*v + l2*m.w[c]
				g2[c] += g * g
				m.w[c] -= lr * g / (math.Sqrt(g2[c]) + 1e-8)
			})
			g2[d] += grad * grad
			m.b -= lr * grad / (math.Sqrt(g2[d]) + 1e-8)
		}
	}
	m.meanAbs = feature.MeanAbs(x)
	return nil
}

// Predict implements Model.
func (m *Logistic) Predict(x feature.Matrix) []float64 {
	out := make([]float64, x.Rows())
	for r := range out {
		out[r] = m.PredictRow(x, r)
	}
	return out
}

// PredictRow implements Model.
func (m *Logistic) PredictRow(x feature.Matrix, r int) float64 {
	return sigmoid(feature.Dot(x, r, m.w) + m.b)
}

// Importances implements Importancer: |coefficient| x mean |feature value|,
// the paper's linear-model prediction importance.
func (m *Logistic) Importances() []float64 {
	out := make([]float64, len(m.w))
	for i, w := range m.w {
		out[i] = math.Abs(w) * m.meanAbs[i]
	}
	return out
}

// LinearRegression is an L2-regularized least-squares model trained with
// AdaGrad SGD.
type LinearRegression struct {
	cfg LinearConfig

	w       []float64
	b       float64
	meanAbs []float64
}

// NewLinearRegression returns an untrained linear regression model.
func NewLinearRegression(cfg LinearConfig) *LinearRegression {
	return &LinearRegression{cfg: cfg.withDefaults()}
}

// Task implements Model.
func (m *LinearRegression) Task() Task { return Regression }

// Fresh implements Model.
func (m *LinearRegression) Fresh() Model { return NewLinearRegression(m.cfg) }

// NumFeatures implements Model.
func (m *LinearRegression) NumFeatures() int { return len(m.w) }

// Train implements Model.
func (m *LinearRegression) Train(x feature.Matrix, y []float64) error {
	if x.Rows() != len(y) {
		return fmt.Errorf("model: LinearRegression.Train: %d rows vs %d labels", x.Rows(), len(y))
	}
	if x.Rows() == 0 {
		return fmt.Errorf("model: LinearRegression.Train: empty training set")
	}
	n, d := x.Rows(), x.Cols()
	m.w = make([]float64, d)
	m.b = 0
	g2 := make([]float64, d+1)
	rng := rand.New(rand.NewSource(m.cfg.Seed))
	order := rng.Perm(n)
	lr, l2 := m.cfg.LearningRate, m.cfg.L2
	for epoch := 0; epoch < m.cfg.Epochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, r := range order {
			pred := feature.Dot(x, r, m.w) + m.b
			grad := pred - y[r]
			x.ForEachNZ(r, func(c int, v float64) {
				g := grad*v + l2*m.w[c]
				g2[c] += g * g
				m.w[c] -= lr * g / (math.Sqrt(g2[c]) + 1e-8)
			})
			g2[d] += grad * grad
			m.b -= lr * grad / (math.Sqrt(g2[d]) + 1e-8)
		}
	}
	m.meanAbs = feature.MeanAbs(x)
	return nil
}

// Predict implements Model.
func (m *LinearRegression) Predict(x feature.Matrix) []float64 {
	out := make([]float64, x.Rows())
	for r := range out {
		out[r] = m.PredictRow(x, r)
	}
	return out
}

// PredictRow implements Model.
func (m *LinearRegression) PredictRow(x feature.Matrix, r int) float64 {
	return feature.Dot(x, r, m.w) + m.b
}

// Importances implements Importancer.
func (m *LinearRegression) Importances() []float64 {
	out := make([]float64, len(m.w))
	for i, w := range m.w {
		out[i] = math.Abs(w) * m.meanAbs[i]
	}
	return out
}
