// Package model implements the ML models behind the paper's benchmarks
// (Table 1), from scratch: logistic and linear regression trained with
// AdaGrad SGD, histogram-based gradient-boosted decision trees (the LightGBM
// stand-in used by Music, Credit, and Tracking), and a small multilayer
// perceptron (the Price benchmark's NN).
//
// Two model capabilities drive Willump's statistical optimizations:
//
//   - Confidences: classifiers return calibrated-ish probabilities, and the
//     cascade confidence of a prediction p is max(p, 1-p) (section 4.2).
//   - Prediction importances: linear models report |coefficient| x mean
//     |feature value|; ensembles report split-gain importances; models with
//     no native importances (the MLP) get a proxy GBDT trained on the same
//     data (section 4.2, "Computing IFV Statistics").
package model

import (
	"sync"

	"willump/internal/feature"
)

// Task distinguishes classification from regression models. End-to-end
// cascades apply only to classification (section 6.3).
type Task int

// Supported tasks.
const (
	Classification Task = iota
	Regression
)

// Model is a trainable predictor over feature matrices.
type Model interface {
	// Task reports whether the model classifies or regresses.
	Task() Task
	// Fresh returns a new untrained model with the same hyperparameters.
	// Cascades use it to train the small model of the same family.
	Fresh() Model
	// Train fits the model. For classification, y must be 0/1 labels; for
	// regression, real-valued targets.
	Train(x feature.Matrix, y []float64) error
	// Predict returns one score per row: P(class=1) for classification,
	// the predicted value for regression.
	Predict(x feature.Matrix) []float64
	// PredictRow returns the score of a single row of x.
	PredictRow(x feature.Matrix, r int) float64
	// NumFeatures returns the trained input width (0 before Train).
	NumFeatures() int
}

// Scratch holds reusable per-call inference buffers (currently the MLP's
// hidden-layer activations). A Scratch may be reused across calls on one
// goroutine but never concurrently; the serving point path keeps one per
// pooled execution state so warm predictions allocate nothing.
type Scratch struct {
	hidden []float64
}

// grow returns a length-n buffer, reusing the scratch's backing array.
func (s *Scratch) grow(n int) []float64 {
	if cap(s.hidden) < n {
		s.hidden = make([]float64, n)
	}
	s.hidden = s.hidden[:n]
	return s.hidden
}

var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// GetScratch fetches an inference scratch from the shared pool.
func GetScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// PutScratch recycles a scratch obtained from GetScratch.
func PutScratch(s *Scratch) { scratchPool.Put(s) }

// RowScorer is implemented by models whose single-row scoring needs working
// buffers: PredictRowScratch behaves exactly like PredictRow but draws its
// buffers from the caller-owned Scratch instead of the heap.
type RowScorer interface {
	PredictRowScratch(x feature.Matrix, r int, s *Scratch) float64
}

// ScoreRow scores row r of x with m, routing through the model's scratch
// fast path when it has one. The remaining families' PredictRow is already
// allocation-free (GBDT walks its trees iteratively; the linear models use
// the devirtualized feature.Dot), so they need no scratch.
func ScoreRow(m Model, x feature.Matrix, r int, s *Scratch) float64 {
	if rs, ok := m.(RowScorer); ok {
		return rs.PredictRowScratch(x, r, s)
	}
	return m.PredictRow(x, r)
}

// Importancer is implemented by models with native per-feature prediction
// importances, available after Train.
type Importancer interface {
	// Importances returns non-negative per-feature importance scores.
	Importances() []float64
}

// Confidence converts a classification probability into the cascade
// confidence of section 4.2: the probability of the predicted class.
func Confidence(p float64) float64 {
	if p >= 0.5 {
		return p
	}
	return 1 - p
}

// Accuracy computes 0/1 accuracy of probability predictions against 0/1
// labels using a 0.5 decision threshold.
func Accuracy(probs, y []float64) float64 {
	if len(probs) == 0 {
		return 0
	}
	correct := 0
	for i, p := range probs {
		pred := 0.0
		if p >= 0.5 {
			pred = 1
		}
		if pred == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(probs))
}

// MSE computes mean squared error.
func MSE(preds, y []float64) float64 {
	if len(preds) == 0 {
		return 0
	}
	var s float64
	for i, p := range preds {
		d := p - y[i]
		s += d * d
	}
	return s / float64(len(preds))
}
