package model

import (
	"math/rand"
	"testing"

	"willump/internal/feature"
)

func benchData(n, d int) (*feature.Dense, []float64) {
	rng := rand.New(rand.NewSource(1))
	x := feature.NewDense(n, d)
	y := make([]float64, n)
	for r := 0; r < n; r++ {
		var z float64
		for c := 0; c < d; c++ {
			v := rng.NormFloat64()
			x.Set(r, c, v)
			if c%2 == 0 {
				z += v
			}
		}
		if z > 0 {
			y[r] = 1
		}
	}
	return x, y
}

func BenchmarkGBDTTrain(b *testing.B) {
	x, y := benchData(1000, 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewGBDT(GBDTConfig{Task: Classification, Trees: 20, MaxDepth: 4, Seed: 1})
		if err := m.Train(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGBDTPredict(b *testing.B) {
	x, y := benchData(1000, 20)
	m := NewGBDT(GBDTConfig{Task: Classification, Trees: 40, MaxDepth: 5, Seed: 1})
	if err := m.Train(x, y); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(x)
	}
}

func BenchmarkLogisticTrain(b *testing.B) {
	x, y := benchData(1000, 50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewLogistic(LinearConfig{Epochs: 5, Seed: 1})
		if err := m.Train(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMLPPredict(b *testing.B) {
	x, y := benchData(500, 30)
	m := NewMLP(MLPConfig{Task: Classification, Hidden: 16, Epochs: 3, Seed: 1})
	if err := m.Train(x, y); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(x)
	}
}
