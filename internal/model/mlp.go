package model

import (
	"math"
	"math/rand"

	"willump/internal/feature"
)

// MLPConfig holds hyperparameters for the multilayer perceptron.
type MLPConfig struct {
	Task         Task
	Hidden       int     // hidden units (default 32)
	Epochs       int     // passes over the data (default 15)
	LearningRate float64 // AdaGrad base step (default 0.05)
	Seed         int64
}

func (c MLPConfig) withDefaults() MLPConfig {
	if c.Hidden <= 0 {
		c.Hidden = 32
	}
	if c.Epochs <= 0 {
		c.Epochs = 15
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.05
	}
	return c
}

// MLP is a one-hidden-layer perceptron (ReLU) with a linear (regression) or
// sigmoid (classification) output, trained with AdaGrad SGD. Per-parameter
// adaptive steps keep training stable across feature scales (TF-IDF in
// [0,1] next to raw numeric features). The forward and backward passes are
// sparse-aware: only non-zero inputs touch the first weight layer, which
// keeps the Price benchmark's TF-IDF inputs tractable.
//
// The MLP has no native feature importances; cascades fall back to a proxy
// GBDT for its IFV statistics, as the paper prescribes for neural nets.
type MLP struct {
	cfg MLPConfig

	w1 [][]float64 // [hidden][in]
	b1 []float64
	w2 []float64 // [hidden]
	b2 float64

	numFeatures int
}

// NewMLP returns an untrained MLP.
func NewMLP(cfg MLPConfig) *MLP {
	return &MLP{cfg: cfg.withDefaults()}
}

// Task implements Model.
func (m *MLP) Task() Task { return m.cfg.Task }

// Fresh implements Model.
func (m *MLP) Fresh() Model { return NewMLP(m.cfg) }

// NumFeatures implements Model.
func (m *MLP) NumFeatures() int { return m.numFeatures }

// Train implements Model.
func (m *MLP) Train(x feature.Matrix, y []float64) error {
	if err := validateTrainInputs("MLP", x, y); err != nil {
		return err
	}
	n, d := x.Rows(), x.Cols()
	h := m.cfg.Hidden
	m.numFeatures = d
	rng := rand.New(rand.NewSource(m.cfg.Seed))
	scale := math.Sqrt(2.0 / float64(d+1))
	m.w1 = make([][]float64, h)
	g1 := make([][]float64, h) // AdaGrad accumulators
	for j := 0; j < h; j++ {
		m.w1[j] = make([]float64, d)
		g1[j] = make([]float64, d)
		for i := range m.w1[j] {
			m.w1[j][i] = rng.NormFloat64() * scale
		}
	}
	m.b1 = make([]float64, h)
	m.w2 = make([]float64, h)
	g2 := make([]float64, h)
	gb1 := make([]float64, h)
	var gb2 float64
	for j := range m.w2 {
		m.w2[j] = rng.NormFloat64() * math.Sqrt(2.0/float64(h))
	}
	// Center the output on the target mean so early epochs don't chase a
	// large constant offset.
	if m.cfg.Task == Regression {
		var mean float64
		for _, v := range y {
			mean += v
		}
		m.b2 = mean / float64(n)
	}

	order := rng.Perm(n)
	hidden := make([]float64, h)
	act := make([]float64, h)
	lr := m.cfg.LearningRate
	const eps = 1e-8
	for epoch := 0; epoch < m.cfg.Epochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, r := range order {
			// Forward.
			for j := 0; j < h; j++ {
				hidden[j] = m.b1[j]
			}
			x.ForEachNZ(r, func(c int, v float64) {
				for j := 0; j < h; j++ {
					hidden[j] += m.w1[j][c] * v
				}
			})
			out := m.b2
			for j := 0; j < h; j++ {
				if hidden[j] > 0 {
					act[j] = hidden[j]
				} else {
					act[j] = 0
				}
				out += m.w2[j] * act[j]
			}
			// Output gradient: both losses reduce to (pred - y).
			var grad float64
			if m.cfg.Task == Classification {
				grad = sigmoid(out) - y[r]
			} else {
				grad = out - y[r]
				// Clip exploding regression gradients for stability.
				if grad > 3 {
					grad = 3
				} else if grad < -3 {
					grad = -3
				}
			}
			// Backward with AdaGrad updates. The hidden-layer error signal
			// uses the pre-update output weights.
			for j := 0; j < h; j++ {
				gw2 := grad * act[j]
				g2[j] += gw2 * gw2
				deltaW2 := lr * gw2 / (math.Sqrt(g2[j]) + eps)
				// Hidden-layer gradients use w2 before its update.
				if hidden[j] > 0 {
					errj := grad * m.w2[j]
					x.ForEachNZ(r, func(c int, v float64) {
						gw1 := errj * v
						g1[j][c] += gw1 * gw1
						m.w1[j][c] -= lr * gw1 / (math.Sqrt(g1[j][c]) + eps)
					})
					gb1[j] += errj * errj
					m.b1[j] -= lr * errj / (math.Sqrt(gb1[j]) + eps)
				}
				m.w2[j] -= deltaW2
			}
			gb2 += grad * grad
			m.b2 -= lr * grad / (math.Sqrt(gb2) + eps)
		}
	}
	return nil
}

// PredictRow implements Model.
func (m *MLP) PredictRow(x feature.Matrix, r int) float64 {
	s := GetScratch()
	out := m.PredictRowScratch(x, r, s)
	PutScratch(s)
	return out
}

// PredictRowScratch implements RowScorer: the forward pass reuses the
// scratch's hidden-activation buffer, and the first layer devirtualizes the
// input iteration for the concrete matrix types, so a warm call performs no
// heap allocation.
func (m *MLP) PredictRowScratch(x feature.Matrix, r int, s *Scratch) float64 {
	h := m.cfg.Hidden
	hidden := s.grow(h)
	copy(hidden, m.b1)
	switch t := x.(type) {
	case *feature.Dense:
		for c, v := range t.Row(r) {
			if v == 0 {
				continue
			}
			w1c := v
			for j := 0; j < h; j++ {
				hidden[j] += m.w1[j][c] * w1c
			}
		}
	case *feature.CSR:
		cols, vals := t.RowView(r)
		for i, c := range cols {
			v := vals[i]
			for j := 0; j < h; j++ {
				hidden[j] += m.w1[j][c] * v
			}
		}
	default:
		x.ForEachNZ(r, func(c int, v float64) {
			for j := 0; j < h; j++ {
				hidden[j] += m.w1[j][c] * v
			}
		})
	}
	out := m.b2
	for j := 0; j < h; j++ {
		if hidden[j] > 0 {
			out += m.w2[j] * hidden[j]
		}
	}
	if m.cfg.Task == Classification {
		return sigmoid(out)
	}
	return out
}

// Predict implements Model.
func (m *MLP) Predict(x feature.Matrix) []float64 {
	out := make([]float64, x.Rows())
	s := GetScratch()
	for r := range out {
		out[r] = m.PredictRowScratch(x, r, s)
	}
	PutScratch(s)
	return out
}
