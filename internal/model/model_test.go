package model

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"willump/internal/feature"
)

// linearlySeparable generates n points in d dims with labels from a planted
// hyperplane plus optional flip noise.
func linearlySeparable(rng *rand.Rand, n, d int, noise float64) (*feature.Dense, []float64) {
	w := make([]float64, d)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	x := feature.NewDense(n, d)
	y := make([]float64, n)
	for r := 0; r < n; r++ {
		row := x.Row(r)
		var z float64
		for c := 0; c < d; c++ {
			row[c] = rng.NormFloat64()
			z += row[c] * w[c]
		}
		if z > 0 {
			y[r] = 1
		}
		if rng.Float64() < noise {
			y[r] = 1 - y[r]
		}
	}
	return x, y
}

func TestLogisticLearnsSeparableData(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y := linearlySeparable(rng, 800, 6, 0)
	m := NewLogistic(LinearConfig{Epochs: 15, Seed: 2})
	if err := m.Train(x, y); err != nil {
		t.Fatalf("Train: %v", err)
	}
	acc := Accuracy(m.Predict(x), y)
	if acc < 0.95 {
		t.Errorf("train accuracy = %.3f, want >= 0.95", acc)
	}
	if m.NumFeatures() != 6 {
		t.Errorf("NumFeatures = %d, want 6", m.NumFeatures())
	}
}

func TestLogisticPredictInUnitInterval(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, y := linearlySeparable(rng, 200, 4, 0.1)
	m := NewLogistic(LinearConfig{Seed: 4})
	if err := m.Train(x, y); err != nil {
		t.Fatalf("Train: %v", err)
	}
	for _, p := range m.Predict(x) {
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("probability %v out of [0,1]", p)
		}
	}
}

func TestLogisticTrainValidation(t *testing.T) {
	m := NewLogistic(LinearConfig{})
	if err := m.Train(feature.NewDense(2, 2), []float64{1}); err == nil {
		t.Error("want error on row/label mismatch")
	}
	if err := m.Train(feature.NewDense(0, 2), nil); err == nil {
		t.Error("want error on empty training set")
	}
}

func TestLogisticImportancesTrackSignal(t *testing.T) {
	// Feature 0 carries all the signal; feature 1 is noise.
	rng := rand.New(rand.NewSource(5))
	n := 600
	x := feature.NewDense(n, 2)
	y := make([]float64, n)
	for r := 0; r < n; r++ {
		s := rng.NormFloat64()
		x.Set(r, 0, s)
		x.Set(r, 1, rng.NormFloat64())
		if s > 0 {
			y[r] = 1
		}
	}
	m := NewLogistic(LinearConfig{Epochs: 12, Seed: 6})
	if err := m.Train(x, y); err != nil {
		t.Fatalf("Train: %v", err)
	}
	imp := m.Importances()
	if imp[0] <= imp[1] {
		t.Errorf("importances = %v, want feature 0 dominant", imp)
	}
}

func TestLinearRegressionRecoversLine(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 500
	x := feature.NewDense(n, 2)
	y := make([]float64, n)
	for r := 0; r < n; r++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		x.Set(r, 0, a)
		x.Set(r, 1, b)
		y[r] = 3*a - 2*b + 0.5
	}
	m := NewLinearRegression(LinearConfig{Epochs: 30, Seed: 8})
	if err := m.Train(x, y); err != nil {
		t.Fatalf("Train: %v", err)
	}
	if mse := MSE(m.Predict(x), y); mse > 0.05 {
		t.Errorf("MSE = %.4f, want <= 0.05", mse)
	}
}

// xorData is not linearly separable; trees and nets must fit it.
func xorData(rng *rand.Rand, n int) (*feature.Dense, []float64) {
	x := feature.NewDense(n, 2)
	y := make([]float64, n)
	for r := 0; r < n; r++ {
		a, b := rng.Float64()*2-1, rng.Float64()*2-1
		x.Set(r, 0, a)
		x.Set(r, 1, b)
		if (a > 0) != (b > 0) {
			y[r] = 1
		}
	}
	return x, y
}

func TestGBDTClassificationLearnsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x, y := xorData(rng, 1000)
	m := NewGBDT(GBDTConfig{Task: Classification, Trees: 30, MaxDepth: 3, Seed: 10})
	if err := m.Train(x, y); err != nil {
		t.Fatalf("Train: %v", err)
	}
	if acc := Accuracy(m.Predict(x), y); acc < 0.95 {
		t.Errorf("XOR accuracy = %.3f, want >= 0.95", acc)
	}
	if m.NumTrees() != 30 {
		t.Errorf("NumTrees = %d, want 30", m.NumTrees())
	}
}

func TestGBDTRegressionFitsNonlinear(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 800
	x := feature.NewDense(n, 2)
	y := make([]float64, n)
	for r := 0; r < n; r++ {
		a, b := rng.Float64()*4-2, rng.Float64()*4-2
		x.Set(r, 0, a)
		x.Set(r, 1, b)
		y[r] = a*a + math.Sin(b)
	}
	m := NewGBDT(GBDTConfig{Task: Regression, Trees: 60, MaxDepth: 4, Seed: 12})
	if err := m.Train(x, y); err != nil {
		t.Fatalf("Train: %v", err)
	}
	var variance float64
	for _, v := range y {
		variance += v * v
	}
	variance /= float64(n)
	if mse := MSE(m.Predict(x), y); mse > 0.1*variance {
		t.Errorf("MSE = %.4f, want <= 10%% of variance %.4f", mse, variance)
	}
}

func TestGBDTImportancesIdentifySignalFeature(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 600
	x := feature.NewDense(n, 3)
	y := make([]float64, n)
	for r := 0; r < n; r++ {
		s := rng.NormFloat64()
		x.Set(r, 0, rng.NormFloat64()) // noise
		x.Set(r, 1, s)                 // signal
		x.Set(r, 2, rng.NormFloat64()) // noise
		if s > 0.2 {
			y[r] = 1
		}
	}
	m := NewGBDT(GBDTConfig{Task: Classification, Trees: 20, MaxDepth: 3, Seed: 14})
	if err := m.Train(x, y); err != nil {
		t.Fatalf("Train: %v", err)
	}
	imp := m.Importances()
	if imp[1] <= imp[0] || imp[1] <= imp[2] {
		t.Errorf("gain importances = %v, want feature 1 dominant", imp)
	}
	perm := m.PermutationImportances(x, y, 15)
	if perm[1] <= perm[0] || perm[1] <= perm[2] {
		t.Errorf("permutation importances = %v, want feature 1 dominant", perm)
	}
}

func TestGBDTPredictSparseDenseAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	x, y := xorData(rng, 300)
	m := NewGBDT(GBDTConfig{Task: Classification, Trees: 10, MaxDepth: 3, Seed: 17})
	if err := m.Train(x, y); err != nil {
		t.Fatalf("Train: %v", err)
	}
	// Build a CSR copy and compare predictions entry-wise.
	b := feature.NewCSRBuilder(x.Cols())
	for r := 0; r < x.Rows(); r++ {
		x.ForEachNZ(r, func(c int, v float64) { b.Add(c, v) })
		b.EndRow()
	}
	sp := b.Build()
	dp := m.Predict(x)
	spPred := m.Predict(sp)
	for i := range dp {
		if math.Abs(dp[i]-spPred[i]) > 1e-12 {
			t.Fatalf("row %d: dense %v != sparse %v", i, dp[i], spPred[i])
		}
	}
}

func TestMLPRegressionFitsNonlinear(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	n := 800
	x := feature.NewDense(n, 2)
	y := make([]float64, n)
	for r := 0; r < n; r++ {
		a, b := rng.Float64()*2-1, rng.Float64()*2-1
		x.Set(r, 0, a)
		x.Set(r, 1, b)
		y[r] = a*b + 0.5*a
	}
	m := NewMLP(MLPConfig{Task: Regression, Hidden: 24, Epochs: 40, LearningRate: 0.02, Seed: 19})
	if err := m.Train(x, y); err != nil {
		t.Fatalf("Train: %v", err)
	}
	var variance float64
	for _, v := range y {
		variance += v * v
	}
	variance /= float64(n)
	if mse := MSE(m.Predict(x), y); mse > 0.25*variance {
		t.Errorf("MSE = %.4f, want <= 25%% of variance %.4f", mse, variance)
	}
}

func TestMLPClassificationLearnsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	x, y := xorData(rng, 800)
	m := NewMLP(MLPConfig{Task: Classification, Hidden: 16, Epochs: 60, LearningRate: 0.05, Seed: 21})
	if err := m.Train(x, y); err != nil {
		t.Fatalf("Train: %v", err)
	}
	if acc := Accuracy(m.Predict(x), y); acc < 0.9 {
		t.Errorf("XOR accuracy = %.3f, want >= 0.9", acc)
	}
}

func TestFreshReturnsUntrainedSameFamily(t *testing.T) {
	models := []Model{
		NewLogistic(LinearConfig{Seed: 1}),
		NewLinearRegression(LinearConfig{Seed: 1}),
		NewGBDT(GBDTConfig{Task: Classification, Seed: 1}),
		NewMLP(MLPConfig{Task: Regression, Seed: 1}),
	}
	for _, m := range models {
		f := m.Fresh()
		if f.NumFeatures() != 0 {
			t.Errorf("%T.Fresh() is already trained", m)
		}
		if f.Task() != m.Task() {
			t.Errorf("%T.Fresh() changed task", m)
		}
	}
}

func TestConfidence(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.9, 0.9}, {0.1, 0.9}, {0.5, 0.5}, {1, 1}, {0, 1},
	}
	for _, tc := range cases {
		if got := Confidence(tc.p); got != tc.want {
			t.Errorf("Confidence(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestAccuracyAndMSE(t *testing.T) {
	if acc := Accuracy([]float64{0.9, 0.2, 0.6}, []float64{1, 0, 0}); math.Abs(acc-2.0/3) > 1e-12 {
		t.Errorf("Accuracy = %v, want 2/3", acc)
	}
	if Accuracy(nil, nil) != 0 {
		t.Error("Accuracy of empty should be 0")
	}
	if mse := MSE([]float64{1, 2}, []float64{0, 4}); mse != 2.5 {
		t.Errorf("MSE = %v, want 2.5", mse)
	}
}

func TestBinnerMapsValuesConsistently(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	x := feature.NewDense(200, 3)
	for r := 0; r < 200; r++ {
		for c := 0; c < 3; c++ {
			x.Set(r, c, rng.NormFloat64())
		}
	}
	bn := newBinner(x, 16)
	bins := bn.binned(x)
	for f := 0; f < 3; f++ {
		if bn.numBins(f) > 16 {
			t.Errorf("feature %d has %d bins, want <= 16", f, bn.numBins(f))
		}
		for r := 0; r < 200; r++ {
			if got := bn.bin(f, x.At(r, f)); got != int(bins[f][r]) {
				t.Fatalf("bin mismatch at (%d,%d): %d vs %d", r, f, got, bins[f][r])
			}
		}
	}
}

// Property: binning is monotone — larger values never land in smaller bins.
func TestBinnerMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(100)
		x := feature.NewDense(n, 1)
		for r := 0; r < n; r++ {
			x.Set(r, 0, rng.NormFloat64()*10)
		}
		bn := newBinner(x, 2+rng.Intn(30))
		a, b := rng.NormFloat64()*10, rng.NormFloat64()*10
		if a > b {
			a, b = b, a
		}
		return bn.bin(0, a) <= bn.bin(0, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: GBDT raw-threshold prediction agrees with bin-threshold logic on
// training rows (the rawThresh stored in nodes reproduces binned routing).
func TestGBDTDeterministicAcrossRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	x, y := xorData(rng, 300)
	m1 := NewGBDT(GBDTConfig{Task: Classification, Trees: 8, Seed: 24})
	m2 := NewGBDT(GBDTConfig{Task: Classification, Trees: 8, Seed: 24})
	if err := m1.Train(x, y); err != nil {
		t.Fatalf("Train: %v", err)
	}
	if err := m2.Train(x, y); err != nil {
		t.Fatalf("Train: %v", err)
	}
	p1, p2 := m1.Predict(x), m2.Predict(x)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("row %d differs across identical seeds: %v vs %v", i, p1[i], p2[i])
		}
	}
}
