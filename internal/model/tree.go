package model

import (
	"fmt"
	"math"
	"sort"

	"willump/internal/feature"
)

// binner quantizes each feature column into at most maxBins quantile bins,
// the histogram trick of modern GBDT implementations. Trees split on bin
// boundaries; raw feature values map to bins at prediction time through the
// stored upper edges.
type binner struct {
	maxBins int
	// edges[f] holds ascending bin upper edges for feature f; a value v maps
	// to the first bin whose edge >= v.
	edges [][]float64
}

func newBinner(x feature.Matrix, maxBins int) *binner {
	d := x.Cols()
	b := &binner{maxBins: maxBins, edges: make([][]float64, d)}
	n := x.Rows()
	vals := make([]float64, 0, n)
	for f := 0; f < d; f++ {
		vals = vals[:0]
		for r := 0; r < n; r++ {
			vals = append(vals, x.At(r, f))
		}
		sort.Float64s(vals)
		// Candidate edges at quantiles; deduplicate.
		var edges []float64
		for q := 1; q < maxBins; q++ {
			idx := q * (n - 1) / maxBins
			e := vals[idx]
			if len(edges) == 0 || e > edges[len(edges)-1] {
				edges = append(edges, e)
			}
		}
		b.edges[f] = edges
	}
	return b
}

// numBins returns the bin count for feature f (edges + overflow bin).
func (b *binner) numBins(f int) int { return len(b.edges[f]) + 1 }

// bin maps value v of feature f to its bin index.
func (b *binner) bin(f int, v float64) int {
	edges := b.edges[f]
	lo, hi := 0, len(edges)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= edges[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// binned quantizes the whole matrix feature-major: out[f][r] = bin index.
func (b *binner) binned(x feature.Matrix) [][]uint8 {
	n, d := x.Rows(), x.Cols()
	out := make([][]uint8, d)
	for f := 0; f < d; f++ {
		col := make([]uint8, n)
		for r := 0; r < n; r++ {
			col[r] = uint8(b.bin(f, x.At(r, f)))
		}
		out[f] = col
	}
	return out
}

// treeNode is one node of a regression tree. Leaves have feature == -1.
type treeNode struct {
	feature   int     // split feature, -1 for leaf
	binThresh uint8   // go left if bin <= binThresh
	rawThresh float64 // raw-value equivalent used at prediction time
	left      int32   // child indices within the tree's node slice
	right     int32
	value     float64 // leaf output
}

// tree is a regression tree over binned features.
type tree struct {
	nodes []treeNode
}

// predictRow evaluates the tree on raw feature values of row r.
func (t *tree) predictRow(x feature.Matrix, r int) float64 {
	i := int32(0)
	for {
		n := &t.nodes[i]
		if n.feature < 0 {
			return n.value
		}
		if x.At(r, n.feature) <= n.rawThresh {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// predictVec evaluates the tree on a dense feature slice.
func (t *tree) predictVec(row []float64) float64 {
	i := int32(0)
	for {
		n := &t.nodes[i]
		if n.feature < 0 {
			return n.value
		}
		if row[n.feature] <= n.rawThresh {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// treeGrower builds one tree from gradients and hessians using histogram
// accumulation (sum of g and h per bin per feature).
type treeGrower struct {
	bins     [][]uint8
	binner   *binner
	grad     []float64
	hess     []float64
	maxDepth int
	minChild int     // minimum samples per child
	lambda   float64 // L2 on leaf weights
	minGain  float64

	gainByFeature []float64 // accumulated split gains (importance)
}

type growNode struct {
	rows  []int
	depth int
	idx   int32 // index of this node in tree.nodes
}

func (g *treeGrower) grow() *tree {
	t := &tree{}
	all := make([]int, len(g.grad))
	for i := range all {
		all[i] = i
	}
	t.nodes = append(t.nodes, treeNode{feature: -1})
	queue := []growNode{{rows: all, depth: 0, idx: 0}}
	for len(queue) > 0 {
		nd := queue[0]
		queue = queue[1:]
		g.buildNode(t, nd, &queue)
	}
	return t
}

func (g *treeGrower) leafValue(rows []int) float64 {
	var sg, sh float64
	for _, r := range rows {
		sg += g.grad[r]
		sh += g.hess[r]
	}
	return -sg / (sh + g.lambda)
}

func (g *treeGrower) buildNode(t *tree, nd growNode, queue *[]growNode) {
	// Note: t.nodes is indexed, never held by pointer across appends, because
	// appending children may reallocate the backing array.
	if nd.depth >= g.maxDepth || len(nd.rows) < 2*g.minChild {
		t.nodes[nd.idx].feature = -1
		t.nodes[nd.idx].value = g.leafValue(nd.rows)
		return
	}
	var totG, totH float64
	for _, r := range nd.rows {
		totG += g.grad[r]
		totH += g.hess[r]
	}
	parentScore := totG * totG / (totH + g.lambda)

	bestGain := g.minGain
	bestFeat := -1
	var bestBin uint8
	nFeat := len(g.bins)
	const maxBins = 64
	var histG, histH [maxBins]float64
	var histN [maxBins]int
	for f := 0; f < nFeat; f++ {
		nb := g.binner.numBins(f)
		if nb < 2 {
			continue
		}
		for b := 0; b < nb; b++ {
			histG[b], histH[b], histN[b] = 0, 0, 0
		}
		col := g.bins[f]
		for _, r := range nd.rows {
			b := col[r]
			histG[b] += g.grad[r]
			histH[b] += g.hess[r]
			histN[b]++
		}
		var lg, lh float64
		ln := 0
		for b := 0; b < nb-1; b++ {
			lg += histG[b]
			lh += histH[b]
			ln += histN[b]
			rn := len(nd.rows) - ln
			if ln < g.minChild || rn < g.minChild {
				continue
			}
			rg, rh := totG-lg, totH-lh
			gain := lg*lg/(lh+g.lambda) + rg*rg/(rh+g.lambda) - parentScore
			if gain > bestGain {
				bestGain = gain
				bestFeat = f
				bestBin = uint8(b)
			}
		}
	}
	if bestFeat < 0 {
		t.nodes[nd.idx].feature = -1
		t.nodes[nd.idx].value = g.leafValue(nd.rows)
		return
	}
	col := g.bins[bestFeat]
	var leftRows, rightRows []int
	for _, r := range nd.rows {
		if col[r] <= bestBin {
			leftRows = append(leftRows, r)
		} else {
			rightRows = append(rightRows, r)
		}
	}
	g.gainByFeature[bestFeat] += bestGain
	li := int32(len(t.nodes))
	t.nodes = append(t.nodes, treeNode{feature: -1}, treeNode{feature: -1})
	t.nodes[nd.idx] = treeNode{
		feature:   bestFeat,
		binThresh: bestBin,
		rawThresh: g.binner.edges[bestFeat][bestBin],
		left:      li,
		right:     li + 1,
	}
	*queue = append(*queue,
		growNode{rows: leftRows, depth: nd.depth + 1, idx: li},
		growNode{rows: rightRows, depth: nd.depth + 1, idx: li + 1},
	)
}

func validateTrainInputs(name string, x feature.Matrix, y []float64) error {
	if x.Rows() != len(y) {
		return fmt.Errorf("model: %s.Train: %d rows vs %d labels", name, x.Rows(), len(y))
	}
	if x.Rows() == 0 {
		return fmt.Errorf("model: %s.Train: empty training set", name)
	}
	if x.Cols() == 0 {
		return fmt.Errorf("model: %s.Train: zero feature columns", name)
	}
	return nil
}

// clampLogOdds keeps initial scores finite for degenerate label balances.
func clampLogOdds(p float64) float64 {
	if p < 1e-6 {
		p = 1e-6
	}
	if p > 1-1e-6 {
		p = 1 - 1e-6
	}
	return math.Log(p / (1 - p))
}
