package model

import (
	"encoding/json"
	"fmt"
	"reflect"
	"sync"

	"willump/internal/artifact"
)

// StateMarshaler is implemented by models that can persist their trained
// state (hyperparameters plus learned weights) into an artifact.
type StateMarshaler interface {
	MarshalState() ([]byte, error)
}

// StateUnmarshaler is the decoding half of StateMarshaler: a freshly
// constructed model restores itself from serialized state.
type StateUnmarshaler interface {
	UnmarshalState(state []byte) error
}

// modelRegistry maps stable kind strings to model factories and model types
// back to their kinds, exactly like the operator registry in internal/ops.
type modelRegistry struct {
	mu        sync.RWMutex
	factories map[string]func() Model
	kinds     map[reflect.Type]string
}

var modelsReg = &modelRegistry{
	factories: make(map[string]func() Model),
	kinds:     make(map[reflect.Type]string),
}

// RegisterModel registers a model implementation under a stable kind string
// for artifact (de)serialization. The factory must return a new, empty
// model of a single concrete type implementing StateUnmarshaler (and
// StateMarshaler for saving). Registering a duplicate kind or type panics.
func RegisterModel(kind string, factory func() Model) {
	if kind == "" {
		panic("model: RegisterModel with empty kind")
	}
	proto := factory()
	if proto == nil {
		panic(fmt.Sprintf("model: RegisterModel(%q): factory returned nil", kind))
	}
	t := reflect.TypeOf(proto)
	modelsReg.mu.Lock()
	defer modelsReg.mu.Unlock()
	if _, dup := modelsReg.factories[kind]; dup {
		panic(fmt.Sprintf("model: RegisterModel: kind %q already registered", kind))
	}
	if prev, dup := modelsReg.kinds[t]; dup {
		panic(fmt.Sprintf("model: RegisterModel: type %v already registered as %q", t, prev))
	}
	modelsReg.factories[kind] = factory
	modelsReg.kinds[t] = kind
}

// EncodeModel serializes a model into its registry kind and state payload.
func EncodeModel(m Model) (kind string, state []byte, err error) {
	modelsReg.mu.RLock()
	kind, ok := modelsReg.kinds[reflect.TypeOf(m)]
	modelsReg.mu.RUnlock()
	if !ok {
		return "", nil, fmt.Errorf("model: %T is not registered; call RegisterModel to make it serializable", m)
	}
	sm, has := m.(StateMarshaler)
	if !has {
		return "", nil, fmt.Errorf("model: %T implements no MarshalState", m)
	}
	state, err = sm.MarshalState()
	if err != nil {
		return "", nil, fmt.Errorf("model: marshaling %q state: %w", kind, err)
	}
	return kind, state, nil
}

// DecodeModel reconstructs a model from its registry kind and state.
func DecodeModel(kind string, state []byte) (Model, error) {
	modelsReg.mu.RLock()
	factory, ok := modelsReg.factories[kind]
	modelsReg.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("model: unknown model kind %q; register it with RegisterModel before loading", kind)
	}
	m := factory()
	u, has := m.(StateUnmarshaler)
	if !has {
		return nil, fmt.Errorf("model: %T implements no UnmarshalState", m)
	}
	if err := u.UnmarshalState(state); err != nil {
		return nil, fmt.Errorf("model: unmarshaling %q state: %w", kind, err)
	}
	return m, nil
}

func init() {
	RegisterModel("logistic", func() Model { return &Logistic{} })
	RegisterModel("linear_regression", func() Model { return &LinearRegression{} })
	RegisterModel("gbdt", func() Model { return &GBDT{} })
	RegisterModel("mlp", func() Model { return &MLP{} })
}

// linearState is the serialized form of both linear model families.
type linearState struct {
	Config  LinearConfig    `json:"config"`
	Weights artifact.Vector `json:"weights,omitempty"`
	Bias    artifact.Scalar `json:"bias"`
	MeanAbs artifact.Vector `json:"mean_abs,omitempty"`
}

// MarshalState implements StateMarshaler.
func (m *Logistic) MarshalState() ([]byte, error) {
	return json.Marshal(linearState{Config: m.cfg, Weights: artifact.Vector(m.w), Bias: artifact.Scalar(m.b), MeanAbs: artifact.Vector(m.meanAbs)})
}

// UnmarshalState implements StateUnmarshaler.
func (m *Logistic) UnmarshalState(state []byte) error {
	var st linearState
	if err := json.Unmarshal(state, &st); err != nil {
		return err
	}
	m.cfg = st.Config.withDefaults()
	m.w = []float64(st.Weights)
	m.b = float64(st.Bias)
	m.meanAbs = []float64(st.MeanAbs)
	return nil
}

// MarshalState implements StateMarshaler.
func (m *LinearRegression) MarshalState() ([]byte, error) {
	return json.Marshal(linearState{Config: m.cfg, Weights: artifact.Vector(m.w), Bias: artifact.Scalar(m.b), MeanAbs: artifact.Vector(m.meanAbs)})
}

// UnmarshalState implements StateUnmarshaler.
func (m *LinearRegression) UnmarshalState(state []byte) error {
	var st linearState
	if err := json.Unmarshal(state, &st); err != nil {
		return err
	}
	m.cfg = st.Config.withDefaults()
	m.w = []float64(st.Weights)
	m.b = float64(st.Bias)
	m.meanAbs = []float64(st.MeanAbs)
	return nil
}

// treeState is one regression tree in column-major (parallel-array) form.
// RawThresh and Value affect predictions and are stored bit-exactly.
type treeState struct {
	Feature   []int           `json:"feature"`
	BinThresh []int           `json:"bin_thresh"`
	RawThresh artifact.Vector `json:"raw_thresh"`
	Left      []int           `json:"left"`
	Right     []int           `json:"right"`
	Value     artifact.Vector `json:"value"`
}

// gbdtState is the serialized form of a GBDT ensemble.
type gbdtState struct {
	Config      GBDTConfig      `json:"config"`
	Base        artifact.Scalar `json:"base"`
	NumFeatures int             `json:"num_features"`
	Gains       artifact.Vector `json:"gains,omitempty"`
	Trees       []treeState     `json:"trees"`
}

// MarshalState implements StateMarshaler.
func (m *GBDT) MarshalState() ([]byte, error) {
	st := gbdtState{
		Config:      m.cfg,
		Base:        artifact.Scalar(m.base),
		NumFeatures: m.numFeatures,
		Gains:       artifact.Vector(m.gains),
		Trees:       make([]treeState, len(m.trees)),
	}
	for i, t := range m.trees {
		ts := treeState{
			Feature:   make([]int, len(t.nodes)),
			BinThresh: make([]int, len(t.nodes)),
			RawThresh: make(artifact.Vector, len(t.nodes)),
			Left:      make([]int, len(t.nodes)),
			Right:     make([]int, len(t.nodes)),
			Value:     make(artifact.Vector, len(t.nodes)),
		}
		for j, n := range t.nodes {
			ts.Feature[j] = n.feature
			ts.BinThresh[j] = int(n.binThresh)
			ts.RawThresh[j] = n.rawThresh
			ts.Left[j] = int(n.left)
			ts.Right[j] = int(n.right)
			ts.Value[j] = n.value
		}
		st.Trees[i] = ts
	}
	return json.Marshal(st)
}

// UnmarshalState implements StateUnmarshaler.
func (m *GBDT) UnmarshalState(state []byte) error {
	var st gbdtState
	if err := json.Unmarshal(state, &st); err != nil {
		return err
	}
	m.cfg = st.Config.withDefaults()
	m.base = float64(st.Base)
	m.numFeatures = st.NumFeatures
	m.gains = []float64(st.Gains)
	m.trees = make([]*tree, len(st.Trees))
	for i, ts := range st.Trees {
		n := len(ts.Feature)
		if len(ts.BinThresh) != n || len(ts.RawThresh) != n || len(ts.Left) != n || len(ts.Right) != n || len(ts.Value) != n {
			return fmt.Errorf("model: gbdt tree %d has ragged node arrays", i)
		}
		t := &tree{nodes: make([]treeNode, n)}
		for j := 0; j < n; j++ {
			if ts.Feature[j] >= 0 {
				if ts.Left[j] < 0 || ts.Left[j] >= n || ts.Right[j] < 0 || ts.Right[j] >= n {
					return fmt.Errorf("model: gbdt tree %d node %d has child out of range", i, j)
				}
			}
			t.nodes[j] = treeNode{
				feature:   ts.Feature[j],
				binThresh: uint8(ts.BinThresh[j]),
				rawThresh: ts.RawThresh[j],
				left:      int32(ts.Left[j]),
				right:     int32(ts.Right[j]),
				value:     ts.Value[j],
			}
		}
		m.trees[i] = t
	}
	return nil
}

// mlpState is the serialized form of an MLP.
type mlpState struct {
	Config      MLPConfig         `json:"config"`
	W1          []artifact.Vector `json:"w1,omitempty"`
	B1          artifact.Vector   `json:"b1,omitempty"`
	W2          artifact.Vector   `json:"w2,omitempty"`
	B2          artifact.Scalar   `json:"b2"`
	NumFeatures int               `json:"num_features"`
}

// MarshalState implements StateMarshaler.
func (m *MLP) MarshalState() ([]byte, error) {
	return json.Marshal(mlpState{
		Config:      m.cfg,
		W1:          artifact.Vectors(m.w1),
		B1:          artifact.Vector(m.b1),
		W2:          artifact.Vector(m.w2),
		B2:          artifact.Scalar(m.b2),
		NumFeatures: m.numFeatures,
	})
}

// UnmarshalState implements StateUnmarshaler.
func (m *MLP) UnmarshalState(state []byte) error {
	var st mlpState
	if err := json.Unmarshal(state, &st); err != nil {
		return err
	}
	m.cfg = st.Config.withDefaults()
	if len(st.W1) > 0 && m.cfg.Hidden != len(st.W1) {
		return fmt.Errorf("model: mlp state has %d hidden rows for %d hidden units", len(st.W1), m.cfg.Hidden)
	}
	m.w1 = artifact.Floats(st.W1)
	m.b1 = []float64(st.B1)
	m.w2 = []float64(st.W2)
	m.b2 = float64(st.B2)
	m.numFeatures = st.NumFeatures
	return nil
}
