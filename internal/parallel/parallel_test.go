package parallel

import (
	"math/rand"
	"reflect"
	"runtime"
	"sort"
	"testing"
	"testing/quick"
)

func TestAssignBalancesLoad(t *testing.T) {
	costs := []float64{8, 7, 6, 5, 4}
	groups := Assign(costs, 2)
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
	// LPT places 8->w0, 7->w1, 6->w1, 5->w0, 4->w0: loads 17 vs 13.
	// (Optimal is 15; LPT's guarantee for two workers is 7/6 of optimal.)
	if got := MaxLoad(costs, groups); got != 17 {
		t.Errorf("MaxLoad = %v, want LPT's deterministic 17", got)
	}
	// A case where LPT is optimal.
	groups2 := Assign([]float64{6, 6, 4, 4}, 2)
	if got := MaxLoad([]float64{6, 6, 4, 4}, groups2); got != 10 {
		t.Errorf("MaxLoad = %v, want optimal 10", got)
	}
}

func TestAssignEdgeCases(t *testing.T) {
	if g := Assign(nil, 4); g != nil {
		t.Errorf("Assign(nil) = %v, want nil", g)
	}
	g := Assign([]float64{1, 2}, 10)
	if len(g) != 2 {
		t.Errorf("groups = %d, want capped at item count", len(g))
	}
	g = Assign([]float64{1, 2, 3}, 0)
	if len(g) != 1 || len(g[0]) != 3 {
		t.Errorf("workers<1 should collapse to one group, got %v", g)
	}
}

func TestAssignCoversAllItemsOnceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		costs := make([]float64, n)
		for i := range costs {
			costs[i] = rng.Float64() * 10
		}
		groups := Assign(costs, 1+rng.Intn(6))
		seen := make(map[int]int)
		for _, g := range groups {
			for _, item := range g {
				seen[item]++
			}
		}
		if len(seen) != n {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: list scheduling guarantees makespan <= total/m + max item (the
// last job placed on the busiest machine started no later than total/m).
func TestAssignListSchedulingBoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		w := 1 + rng.Intn(8)
		costs := make([]float64, n)
		var total, maxItem float64
		for i := range costs {
			costs[i] = rng.Float64() * 10
			total += costs[i]
			if costs[i] > maxItem {
				maxItem = costs[i]
			}
		}
		groups := Assign(costs, w)
		m := len(groups)
		if m == 0 {
			return n == 0
		}
		bound := total/float64(m) + maxItem
		return MaxLoad(costs, groups) <= bound+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestShard(t *testing.T) {
	shards := Shard(10, 3)
	want := [][2]int{{0, 4}, {4, 7}, {7, 10}}
	if len(shards) != 3 {
		t.Fatalf("shards = %v", shards)
	}
	for i := range want {
		if shards[i] != want[i] {
			t.Errorf("shard %d = %v, want %v", i, shards[i], want[i])
		}
	}
	if s := Shard(2, 5); len(s) != 2 {
		t.Errorf("Shard(2,5) = %v, want 2 shards", s)
	}
	if s := Shard(0, 3); s != nil {
		t.Errorf("Shard(0,3) = %v, want nil", s)
	}
}

func TestShardCoversRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(100)
		w := 1 + rng.Intn(10)
		shards := Shard(n, w)
		pos := 0
		for _, s := range shards {
			if s[0] != pos || s[1] < s[0] {
				return false
			}
			pos = s[1]
		}
		return pos == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// naiveAssign is the reference O(items*workers) least-loaded scan the
// min-heap implementation replaced; Assign must reproduce it exactly.
func naiveAssign(costs []float64, workers int) [][]int {
	if workers < 1 {
		workers = 1
	}
	if workers > len(costs) {
		workers = len(costs)
	}
	if workers == 0 {
		return nil
	}
	order := make([]int, len(costs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if costs[order[a]] != costs[order[b]] {
			return costs[order[a]] > costs[order[b]]
		}
		return order[a] < order[b]
	})
	groups := make([][]int, workers)
	load := make([]float64, workers)
	for _, item := range order {
		best := 0
		for w := 1; w < workers; w++ {
			if load[w] < load[best] {
				best = w
			}
		}
		groups[best] = append(groups[best], item)
		load[best] += costs[item]
	}
	for _, g := range groups {
		sort.Ints(g)
	}
	return groups
}

func TestAssignMatchesNaiveScan(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		costs := make([]float64, n)
		for i := range costs {
			costs[i] = float64(rng.Intn(8)) // ties on purpose
		}
		workers := 1 + rng.Intn(12)
		got := Assign(costs, workers)
		want := naiveAssign(costs, workers)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (n=%d, w=%d): heap %v != scan %v (costs %v)", trial, n, workers, got, want, costs)
		}
	}
}

// TestAssignWorkerCounts covers the deployment-relevant worker counts: a
// single worker, the machine's CPU count, and more workers than items.
func TestAssignWorkerCounts(t *testing.T) {
	costs := []float64{5, 3, 9, 1, 7, 2, 8, 4}
	for _, workers := range []int{1, runtime.NumCPU(), len(costs) + 7} {
		groups := Assign(costs, workers)
		wantGroups := workers
		if wantGroups > len(costs) {
			wantGroups = len(costs)
		}
		if wantGroups < 1 {
			wantGroups = 1
		}
		if len(groups) != wantGroups {
			t.Fatalf("workers=%d: got %d groups, want %d", workers, len(groups), wantGroups)
		}
		seen := make(map[int]bool)
		for _, g := range groups {
			if len(g) == 0 && workers <= len(costs) {
				t.Errorf("workers=%d: empty group despite items >= workers", workers)
			}
			for _, item := range g {
				if seen[item] {
					t.Fatalf("workers=%d: item %d assigned twice", workers, item)
				}
				seen[item] = true
			}
		}
		if len(seen) != len(costs) {
			t.Fatalf("workers=%d: %d items assigned, want %d", workers, len(seen), len(costs))
		}
	}
}
